// Command gridccm-gen is the GridCCM compiler of the paper's Figure 5: it
// reads a component's IDL description and the XML description of its
// parallelism, and emits the derived internal interface the GridCCM layer
// invokes (distributed sequence arguments replaced by chunk+view).
//
// Usage:
//
//	gridccm-gen -idl component.idl -par parallel.xml [-iface Module::Iface]
//
// Without -iface, every interface referenced by the descriptor's ports is
// derived.
package main

import (
	"flag"
	"fmt"
	"os"

	"padico/internal/gridccm"
	"padico/internal/idl"
)

func main() {
	idlPath := flag.String("idl", "", "IDL file of the component interface")
	parPath := flag.String("par", "", "XML parallelism descriptor")
	ifaceName := flag.String("iface", "", "interface to derive (default: all parsed interfaces)")
	flag.Parse()
	if *idlPath == "" || *parPath == "" {
		fmt.Fprintln(os.Stderr, "usage: gridccm-gen -idl component.idl -par parallel.xml [-iface Module::Iface]")
		os.Exit(2)
	}
	idlSrc, err := os.ReadFile(*idlPath)
	die(err)
	parSrc, err := os.ReadFile(*parPath)
	die(err)

	repo := idl.NewRepository()
	die(repo.Parse(string(idlSrc)))
	desc, err := gridccm.ParseParallelDesc(parSrc)
	die(err)

	names := repo.Interfaces()
	if *ifaceName != "" {
		names = []string{*ifaceName}
	}
	for _, name := range names {
		iface, ok := repo.Interface(name)
		if !ok {
			die(fmt.Errorf("interface %q not found in %s", name, *idlPath))
		}
		for _, port := range desc.Ports {
			port := port
			derived, err := gridccm.Derive(repo, iface, &port)
			if err != nil {
				die(fmt.Errorf("deriving %s port %s: %w", name, port.Name, err))
			}
			fmt.Printf("// Component %s, port %s, original interface %s\n",
				desc.Component, port.Name, name)
			fmt.Println(gridccm.RenderIDL(derived))
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridccm-gen:", err)
		os.Exit(1)
	}
}
