// Command padico-run deploys a CCM assembly onto a simulated grid: it
// builds the topology from a grid XML, launches a Padico process and a
// container per node, resolves constraint-style host queries
// ("?zone=companyX"), executes the assembly with demo component classes,
// and reports the wiring — the paper's deployment chain end to end.
//
// Usage:
//
//	padico-run -grid topology.xml -assembly assembly.xml
//
// The binary ships two demo component classes, "PingComp" (facet "svc" of
// Demo::Ping, attribute "label") and "PongComp" (receptacle "peer"), so
// assemblies can be exercised without writing Go code.
package main

import (
	"flag"
	"fmt"
	"os"

	"padico/internal/ccm"
	"padico/internal/deploy"
	"padico/internal/orb"
	"padico/internal/simnet"
)

const demoIDL = `
module Demo {
    interface Ping { string ping(in string payload); };
};
`

type pingComp struct {
	ccm.Base
	label string
}

func (p *pingComp) Facet(name string) orb.Servant {
	return orb.HandlerMap{
		"ping": func(args []any) ([]any, error) {
			return []any{p.label + ":" + args[0].(string)}, nil
		},
	}
}

func (p *pingComp) SetAttr(name string, v any) error {
	p.label, _ = v.(string)
	return nil
}

var pingClass = &ccm.Class{
	Name:   "PingComp",
	Facets: map[string]string{"svc": "Demo::Ping"},
	Attrs:  map[string]string{"label": "string"},
	New:    func() ccm.Impl { return &pingComp{label: "ping"} },
}

type pongComp struct {
	ccm.Base
	peer *orb.ObjRef
}

func (p *pongComp) Connect(recep string, ref *orb.ObjRef) error {
	p.peer = ref
	return nil
}

var pongClass = &ccm.Class{
	Name:        "PongComp",
	Receptacles: map[string]string{"peer": "Demo::Ping"},
	New:         func() ccm.Impl { return &pongComp{} },
}

func main() {
	gridPath := flag.String("grid", "", "grid topology XML")
	asmPath := flag.String("assembly", "", "CCM assembly XML")
	flag.Parse()
	if *gridPath == "" || *asmPath == "" {
		fmt.Fprintln(os.Stderr, "usage: padico-run -grid topology.xml -assembly assembly.xml")
		os.Exit(2)
	}
	gridSrc, err := os.ReadFile(*gridPath)
	die(err)
	asmSrc, err := os.ReadFile(*asmPath)
	die(err)

	topo, err := deploy.ParseTopology(gridSrc)
	die(err)
	platform, err := deploy.Build(topo)
	die(err)
	asm, err := ccm.ParseAssembly(asmSrc)
	die(err)

	// Resolve constraint-style hosts against the discovered inventory.
	used := map[string]bool{}
	for i := range asm.Instances {
		host, err := platform.ResolveHost(asm.Instances[i].Host, used)
		die(err)
		if host != asm.Instances[i].Host {
			fmt.Printf("placement: %s %q -> %s\n", asm.Instances[i].ID, asm.Instances[i].Host, host)
			asm.Instances[i].Host = host
		}
	}

	platform.Grid.Run(func() {
		procs, err := platform.LaunchAll()
		die(err)
		for name, p := range procs {
			p.Repo().MustParse(demoIDL)
			o, err := p.ORB(simnet.OmniORB3)
			die(err)
			c, err := ccm.NewContainer(o, "container@"+name)
			die(err)
			die(c.Install(pingClass))
			die(c.Install(pongClass))
		}
		// Deploy from the first node's process.
		deployerProc := procs[asm.Instances[0].Host]
		o, err := deployerProc.ORB(simnet.OmniORB3)
		die(err)
		dep, err := ccm.NewDeployer(o).Execute(asm)
		die(err)
		fmt.Printf("deployed assembly %q: %d instance(s), %d connection(s)\n",
			asm.Name, len(asm.Instances), len(asm.Connections))
		for _, inst := range asm.Instances {
			ref := dep.Refs[inst.ID]
			vals, err := ref.Invoke("describe")
			die(err)
			fmt.Printf("  %s on %s: %v\n", inst.ID, inst.Host, vals[0])
		}
		die(dep.Teardown())
		fmt.Println("teardown complete")
	})
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "padico-run:", err)
		os.Exit(1)
	}
}
