package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"padico/internal/deploy"
)

const testTopo = `<grid name="t">
  <node name="a" zone="z1"/>
  <node name="b" zone="z1"/>
  <fabric name="eth0" kind="ethernet" nodes="a,b"/>
</grid>`

func writeTopo(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "grid.xml")
	if err := os.WriteFile(p, []byte(testTopo), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCommandErrorStillTearsDown is the regression for the die()-inside-
// Grid.Run bug: a command failing mid-run used to os.Exit(1) from within
// the Run body, skipping the deployment's two-phase teardown — registry
// entries were never withdrawn and only lease TTL cleaned them up. The fix
// routes every error exit through a normal return, so Grid.Run's deferred
// shutdown (drain → withdraw → stop) always executes. Before the fix this
// test could not even run to completion: the os.Exit inside realMain would
// kill the whole test binary.
func TestCommandErrorStillTearsDown(t *testing.T) {
	topo := writeTopo(t)
	var out, errOut bytes.Buffer
	code := realMain([]string{"-grid", topo, "load", "no-such-module"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("failing command exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	// The deployment came up and the per-node errors were reported, i.e.
	// the failure happened inside Run (not at argument validation).
	if !strings.Contains(out.String(), "deployment") || !strings.Contains(out.String(), "ERROR") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	// The process is still alive and a subsequent run works: nothing
	// leaked, nothing exited.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-grid", topo, "list"}, &out, &errOut); code != 0 {
		t.Fatalf("follow-up list exited %d\nstderr:\n%s", code, errOut.String())
	}
}

// TestSimulatedCommands smoke-tests the simulated mode end to end through
// the real CLI entry point.
func TestSimulatedCommands(t *testing.T) {
	topo := writeTopo(t)
	for _, cmd := range [][]string{
		{"list"}, {"ping"}, {"services"}, {"registry", "status"},
		{"lookup", "module", "vlink"}, {"demo"},
	} {
		var out, errOut bytes.Buffer
		argv := append([]string{"-grid", topo}, cmd...)
		if code := realMain(argv, &out, &errOut); code != 0 {
			t.Fatalf("%v exited %d\nstdout:\n%s\nstderr:\n%s", cmd, code, out.String(), errOut.String())
		}
	}
}

// TestArgumentValidation rejects malformed invocations before any
// deployment is built or attached.
func TestArgumentValidation(t *testing.T) {
	topo := writeTopo(t)
	for _, tc := range []struct {
		argv []string
		code int
	}{
		{[]string{"-grid", topo}, 2},                           // no command
		{[]string{"list"}, 2},                                  // neither -grid nor -attach
		{[]string{"-grid", topo, "-attach", "x:1", "list"}, 2}, // both modes
		{[]string{"-grid", topo, "load"}, 1},                   // missing module
		{[]string{"-grid", topo, "bogus"}, 1},                  // unknown command
		{[]string{"-grid", topo, "registry", "bogus"}, 1},      // bad subcommand
		{[]string{"-attach", "x:1", "-from", "a", "list"}, 1},  // sim-only flag
		{[]string{"-grid", topo, "-nodes", "zz", "list"}, 1},   // unknown target
		{[]string{"-attach", "127.0.0.1:1", "list"}, 1},        // nothing listening
	} {
		var out, errOut bytes.Buffer
		if code := realMain(tc.argv, &out, &errOut); code != tc.code {
			t.Fatalf("%v exited %d, want %d\nstderr:\n%s", tc.argv, code, tc.code, errOut.String())
		}
	}
}

// TestAttachAllEndpointsDead: when NO named endpoint answers, attach must
// fail fast with one clear error and a nonzero exit — the all-dead case is
// an error, not a pile of per-endpoint warnings over an empty grid view.
func TestAttachAllEndpointsDead(t *testing.T) {
	// Reserve two loopback ports and close them again: both endpoints are
	// real addresses with nothing listening.
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		l.Close()
	}

	start := time.Now()
	var out, errOut bytes.Buffer
	code := realMain([]string{"-attach", strings.Join(addrs, ","), "ping"}, &out, &errOut)
	if code == 0 {
		t.Fatalf("attach to all-dead endpoints exited 0\nstdout:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "no daemon reachable") {
		t.Fatalf("stderr does not state the all-dead condition:\n%s", errOut.String())
	}
	// Dead loopback ports refuse instantly; anything near the handshake
	// timeout would mean the tool hung per endpoint instead of failing
	// fast.
	if took := time.Since(start); took > 4*time.Second {
		t.Fatalf("all-dead attach took %v — not fail-fast", took)
	}
	// No partial command output: the failure happened before steering.
	if strings.Contains(out.String(), "attached:") {
		t.Fatalf("tool claimed an attach:\n%s", out.String())
	}
}

// TestAttachedCommands runs every operator command against live in-process
// daemons over real loopback TCP — the CLI face of the wall deployment
// layer. No simulated network exists in the controller path.
func TestAttachedCommands(t *testing.T) {
	regs := []string{"d0", "d1"}
	d0, err := deploy.StartDaemon(deploy.DaemonConfig{Node: "d0", Registries: regs,
		LeaseTTL: time.Second, SyncInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d0.Close()
	d1, err := deploy.StartDaemon(deploy.DaemonConfig{Node: "d1", Registries: regs,
		Peers: map[string]string{"d0": d0.Addr()}, LeaseTTL: time.Second, SyncInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	attach := d0.Addr() + "," + d1.Addr()

	for _, cmd := range [][]string{
		{"ping"}, {"list"}, {"services"}, {"stats"},
		{"registry", "status"}, {"lookup"}, {"demo"},
		{"load", "hla"}, {"unload", "hla"},
	} {
		var out, errOut bytes.Buffer
		argv := append([]string{"-attach", attach}, cmd...)
		if code := realMain(argv, &out, &errOut); code != 0 {
			t.Fatalf("%v exited %d\nstdout:\n%s\nstderr:\n%s", cmd, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "attached:") {
			t.Fatalf("%v did not report the attach:\n%s", cmd, out.String())
		}
	}

	// resolve needs a dialable service in the registry: hot-load soap on
	// d1, then poll until its lease re-announce publishes soap:sys (the
	// announce rides an async actor, so the entry appears within a moment).
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-attach", attach, "-nodes", "d1", "load", "soap"}, &out, &errOut); code != 0 {
		t.Fatalf("load soap exited %d\nstderr:\n%s", code, errOut.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		errOut.Reset()
		if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys"}, &out, &errOut); code == 0 {
			if !strings.Contains(out.String(), "dialed soap:sys by name") {
				t.Fatalf("resolve output:\n%s", out.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resolve never succeeded\nstdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Several names resolve as one batched flight; a name nobody published
	// is a per-name miss, not a batch failure — it fails the exit code but
	// the published names still print their endpoints.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys", "no:such"}, &out, &errOut); code == 0 {
		t.Fatalf("batch resolve with a miss exited 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "soap:sys") || !strings.Contains(out.String(), "-> node d1") {
		t.Fatalf("batch resolve lost the published name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no:such") || !strings.Contains(out.String(), "no dialable candidates") {
		t.Fatalf("batch resolve did not report the miss:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys", "soap:sys"}, &out, &errOut); code != 0 {
		t.Fatalf("all-hit batch resolve exited %d:\n%s\n%s", code, out.String(), errOut.String())
	}

	// The deployment must have survived the steering: daemons still answer.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", d1.Addr(), "ping"}, &out, &errOut); code != 0 {
		t.Fatalf("deployment did not survive steering\nstderr:\n%s", errOut.String())
	}
}
