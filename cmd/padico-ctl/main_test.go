package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"padico/internal/deploy"
)

const testTopo = `<grid name="t">
  <node name="a" zone="z1"/>
  <node name="b" zone="z1"/>
  <fabric name="eth0" kind="ethernet" nodes="a,b"/>
</grid>`

func writeTopo(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "grid.xml")
	if err := os.WriteFile(p, []byte(testTopo), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCommandErrorStillTearsDown is the regression for the die()-inside-
// Grid.Run bug: a command failing mid-run used to os.Exit(1) from within
// the Run body, skipping the deployment's two-phase teardown — registry
// entries were never withdrawn and only lease TTL cleaned them up. The fix
// routes every error exit through a normal return, so Grid.Run's deferred
// shutdown (drain → withdraw → stop) always executes. Before the fix this
// test could not even run to completion: the os.Exit inside realMain would
// kill the whole test binary.
func TestCommandErrorStillTearsDown(t *testing.T) {
	topo := writeTopo(t)
	var out, errOut bytes.Buffer
	code := realMain([]string{"-grid", topo, "load", "no-such-module"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("failing command exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	// The deployment came up and the per-node errors were reported, i.e.
	// the failure happened inside Run (not at argument validation).
	if !strings.Contains(out.String(), "deployment") || !strings.Contains(out.String(), "ERROR") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	// The process is still alive and a subsequent run works: nothing
	// leaked, nothing exited.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-grid", topo, "list"}, &out, &errOut); code != 0 {
		t.Fatalf("follow-up list exited %d\nstderr:\n%s", code, errOut.String())
	}
}

// TestSimulatedCommands smoke-tests the simulated mode end to end through
// the real CLI entry point.
func TestSimulatedCommands(t *testing.T) {
	topo := writeTopo(t)
	for _, cmd := range [][]string{
		{"list"}, {"ping"}, {"services"}, {"registry", "status"},
		{"lookup", "module", "vlink"}, {"demo"}, {"events", "-grid", "5"},
	} {
		var out, errOut bytes.Buffer
		argv := append([]string{"-grid", topo}, cmd...)
		if code := realMain(argv, &out, &errOut); code != 0 {
			t.Fatalf("%v exited %d\nstdout:\n%s\nstderr:\n%s", cmd, code, out.String(), errOut.String())
		}
	}
}

// TestArgumentValidation rejects malformed invocations before any
// deployment is built or attached.
func TestArgumentValidation(t *testing.T) {
	topo := writeTopo(t)
	for _, tc := range []struct {
		argv []string
		code int
	}{
		{[]string{"-grid", topo}, 2},                           // no command
		{[]string{"list"}, 2},                                  // neither -grid nor -attach
		{[]string{"-grid", topo, "-attach", "x:1", "list"}, 2}, // both modes
		{[]string{"-grid", topo, "load"}, 1},                   // missing module
		{[]string{"-grid", topo, "bogus"}, 1},                  // unknown command
		{[]string{"-grid", topo, "registry", "bogus"}, 1},      // bad subcommand
		{[]string{"-grid", topo, "trace"}, 1},                  // trace wants an ID
		{[]string{"-grid", topo, "events", "x"}, 1},            // bad event count
		{[]string{"-grid", topo, "events", "-grid", "x"}, 1},   // bad count after -grid
		{[]string{"-attach", "x:1", "-from", "a", "list"}, 1},  // sim-only flag
		{[]string{"-grid", topo, "-nodes", "zz", "list"}, 1},   // unknown target
		{[]string{"-attach", "127.0.0.1:1", "list"}, 1},        // nothing listening
	} {
		var out, errOut bytes.Buffer
		if code := realMain(tc.argv, &out, &errOut); code != tc.code {
			t.Fatalf("%v exited %d, want %d\nstderr:\n%s", tc.argv, code, tc.code, errOut.String())
		}
	}
}

// TestAttachAllEndpointsDead: when NO named endpoint answers, attach must
// fail fast with one clear error and a nonzero exit — the all-dead case is
// an error, not a pile of per-endpoint warnings over an empty grid view.
func TestAttachAllEndpointsDead(t *testing.T) {
	// Reserve two loopback ports and close them again: both endpoints are
	// real addresses with nothing listening.
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		l.Close()
	}

	start := time.Now()
	var out, errOut bytes.Buffer
	code := realMain([]string{"-attach", strings.Join(addrs, ","), "ping"}, &out, &errOut)
	if code == 0 {
		t.Fatalf("attach to all-dead endpoints exited 0\nstdout:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "no daemon reachable") {
		t.Fatalf("stderr does not state the all-dead condition:\n%s", errOut.String())
	}
	// Dead loopback ports refuse instantly; anything near the handshake
	// timeout would mean the tool hung per endpoint instead of failing
	// fast.
	if took := time.Since(start); took > 4*time.Second {
		t.Fatalf("all-dead attach took %v — not fail-fast", took)
	}
	// No partial command output: the failure happened before steering.
	if strings.Contains(out.String(), "attached:") {
		t.Fatalf("tool claimed an attach:\n%s", out.String())
	}
}

// TestAttachedCommands runs every operator command against live in-process
// daemons over real loopback TCP — the CLI face of the wall deployment
// layer. No simulated network exists in the controller path.
func TestAttachedCommands(t *testing.T) {
	regs := []string{"d0", "d1"}
	d0, err := deploy.StartDaemon(deploy.DaemonConfig{Node: "d0", Registries: regs,
		LeaseTTL: time.Second, SyncInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d0.Close()
	d1, err := deploy.StartDaemon(deploy.DaemonConfig{Node: "d1", Registries: regs,
		Peers: map[string]string{"d0": d0.Addr()}, LeaseTTL: time.Second, SyncInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	attach := d0.Addr() + "," + d1.Addr()

	for _, cmd := range [][]string{
		{"ping"}, {"list"}, {"services"}, {"stats"},
		{"registry", "status"}, {"lookup"}, {"demo"},
		{"load", "hla"}, {"unload", "hla"},
	} {
		var out, errOut bytes.Buffer
		argv := append([]string{"-attach", attach}, cmd...)
		if code := realMain(argv, &out, &errOut); code != 0 {
			t.Fatalf("%v exited %d\nstdout:\n%s\nstderr:\n%s", cmd, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "attached:") {
			t.Fatalf("%v did not report the attach:\n%s", cmd, out.String())
		}
	}

	// resolve needs a dialable service in the registry: hot-load soap on
	// d1, then poll until its lease re-announce publishes soap:sys (the
	// announce rides an async actor, so the entry appears within a moment).
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-attach", attach, "-nodes", "d1", "load", "soap"}, &out, &errOut); code != 0 {
		t.Fatalf("load soap exited %d\nstderr:\n%s", code, errOut.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		errOut.Reset()
		if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys"}, &out, &errOut); code == 0 {
			if !strings.Contains(out.String(), "dialed soap:sys by name") {
				t.Fatalf("resolve output:\n%s", out.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resolve never succeeded\nstdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Several names resolve as one batched flight; a name nobody published
	// is a per-name miss, not a batch failure — it fails the exit code but
	// the published names still print their endpoints.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys", "no:such"}, &out, &errOut); code == 0 {
		t.Fatalf("batch resolve with a miss exited 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "soap:sys") || !strings.Contains(out.String(), "-> node d1") {
		t.Fatalf("batch resolve lost the published name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no:such") || !strings.Contains(out.String(), "no dialable candidates") {
		t.Fatalf("batch resolve did not report the miss:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys", "soap:sys"}, &out, &errOut); code != 0 {
		t.Fatalf("all-hit batch resolve exited %d:\n%s\n%s", code, out.String(), errOut.String())
	}

	// The deployment must have survived the steering: daemons still answer.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", d1.Addr(), "ping"}, &out, &errOut); code != 0 {
		t.Fatalf("deployment did not survive steering\nstderr:\n%s", errOut.String())
	}
}

// TestTraceAcrossWallGrid is the tracing acceptance e2e: a by-name resolve
// from an attached seat against a 3-daemon, 2-shard wall grid, then a
// separate `padico-ctl trace -last` invocation — a fresh process with an
// empty span buffer — reconstructs the command into ONE causal tree holding
// spans from the ctl seat, the hosting node's gatekeeper, and a registry
// replica of each shard group the per-replica lookups touched.
func TestTraceAcrossWallGrid(t *testing.T) {
	groups := [][]string{{"e0"}, {"e1"}}
	mk := func(node string, peers map[string]string) *deploy.Daemon {
		d, err := deploy.StartDaemon(deploy.DaemonConfig{
			Node: node, ShardGroups: groups, Peers: peers,
			LeaseTTL: time.Second, SyncInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d
	}
	d0 := mk("e0", nil)
	d1 := mk("e1", map[string]string{"e0": d0.Addr()})
	d2 := mk("e2", map[string]string{"e0": d0.Addr(), "e1": d1.Addr()})
	attach := d0.Addr() + "," + d1.Addr() + "," + d2.Addr()

	// A dialable service on e2: hot-load soap and wait for its announce.
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-attach", attach, "-nodes", "e2", "load", "soap"}, &out, &errOut); code != 0 {
		t.Fatalf("load soap exited %d\nstderr:\n%s", code, errOut.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		errOut.Reset()
		if code := realMain([]string{"-attach", attach, "resolve", "vlink", "soap:sys"}, &out, &errOut); code == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resolve never succeeded\nstdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "node e2 confirms") {
		t.Fatalf("resolve did not confirm over the control plane:\n%s", out.String())
	}

	// A fresh invocation reconstructs the resolve from the grid alone.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "trace", "-last"}, &out, &errOut); code != 0 {
		t.Fatalf("trace -last exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	rendered := out.String()
	for _, want := range []string{
		"ctl.resolve",      // the seat's root span, recovered from the flushed buffer
		"node=padico-ctl",  // seat spans
		"node=e0",          // replica of shard group 0 (per-replica lookup)
		"node=e1",          // replica of shard group 1
		"node=e2",          // the hosting gatekeeper's confirm span
		"gk.list-services", // the control-plane confirmation hop
		"reg.reg-lookup",   // replica serve spans
		"kind=vlink",       // root annotations survived the flush
	} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("trace -last output missing %q:\n%s", want, rendered)
		}
	}
	// One tree, not a forest: every span hangs under the single root —
	// no orphan markers, and the root's line is the least indented.
	if strings.Contains(rendered, "missing)") {
		t.Fatalf("tree has orphaned spans:\n%s", rendered)
	}
	var rootIndent, childIndent = -1, -1
	for _, line := range strings.Split(rendered, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		switch {
		case strings.HasPrefix(trimmed, "ctl.resolve"):
			rootIndent = indent
		case strings.HasPrefix(trimmed, "gk.list-services"):
			childIndent = indent
		}
	}
	if rootIndent < 0 || childIndent <= rootIndent {
		t.Fatalf("gatekeeper span (indent %d) does not hang under the root (indent %d):\n%s",
			childIndent, rootIndent, rendered)
	}

	// An explicit trace ID collects the same tree; an unknown one is a
	// clean miss.
	id := ""
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, "trace ") {
			id = strings.TrimSuffix(strings.Fields(line)[1], ":")
			break
		}
	}
	if id == "" {
		t.Fatalf("no trace header in output:\n%s", rendered)
	}
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "trace", id}, &out, &errOut); code != 0 ||
		!strings.Contains(out.String(), "ctl.resolve") {
		t.Fatalf("trace %s exited %d:\n%s", id, code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "trace", "no-such-trace"}, &out, &errOut); code == 0 {
		t.Fatalf("unknown trace ID exited 0:\n%s", out.String())
	}

	// The grid-wide events view merges all three daemons' rings into one
	// time-sorted timeline.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-attach", attach, "events", "-grid"}, &out, &errOut); code != 0 {
		t.Fatalf("events -grid exited %d\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "event(s) across 3 node(s)") ||
		!strings.Contains(out.String(), "gk.recv") {
		t.Fatalf("events -grid output:\n%s", out.String())
	}
}
