// Command padico-ctl is the PadicoControl operator tool: it brings a grid
// described in XML up as a simnet deployment (every process spawned with a
// gatekeeper, a registry replica on the first node of each zone, replicas
// reconciling through anti-entropy sync) and steers it through the
// gatekeeper protocol — listing, hot-loading and unloading modules on one
// process or on the whole deployment at once, inspecting arbitration
// counters, and querying the replicated grid-wide service registry.
//
// Usage:
//
//	padico-ctl -grid topology.xml [-from node] [-nodes a,b|all] [-registry r1,r2] [-cascade] command [args]
//
// The -registry flag overrides replica placement: each named node hosts
// one registry replica (default: the first node of every zone).
//
// Commands:
//
//	list                 module table of every targeted process
//	services             VLink service table of every targeted process
//	stats                modules, services, ORBs and device counters
//	ping                 control-plane round trip
//	load <module>        hot-load a module (concurrent fan-out)
//	unload <module>      unload a module; -cascade unloads dependents first
//	lookup [kind [name]] query the grid-wide service registry
//	resolve <kind> <name> show every replica's matching entries (node,
//	                     kind, TTL remaining — the replication state), the
//	                     endpoint fabric-aware resolution picks, and verify
//	                     the seat can dial it by name
//	registry status      per-replica replication report: live node/entry
//	                     counts and anti-entropy sync lag per peer
//	demo                 scripted scenario: list everywhere, hot-load the
//	                     SOAP middleware into the last node, invoke it over
//	                     SOAP, then unload it again
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"padico/internal/core"
	"padico/internal/deploy"
	"padico/internal/gatekeeper"
	"padico/internal/soap"
)

func main() {
	gridPath := flag.String("grid", "", "grid topology XML")
	from := flag.String("from", "", "node to seat the controller on (default: first node)")
	targets := flag.String("nodes", "all", "comma-separated target nodes, or \"all\"")
	registries := flag.String("registry", "", "comma-separated registry replica hosts (default: first node of each zone)")
	cascade := flag.Bool("cascade", false, "unload dependents before the module itself")
	flag.Parse()
	if *gridPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: padico-ctl -grid topology.xml [-from node] [-nodes a,b|all] [-registry r1,r2] [-cascade] command [args]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	// Reject malformed invocations before spending a whole deployment
	// bring-up on them (die inside Grid.Run would also skip its shutdown).
	switch cmd {
	case "list", "services", "stats", "ping", "demo":
		if len(args) != 0 {
			die(fmt.Errorf("%s takes no arguments", cmd))
		}
	case "load", "unload":
		if len(args) != 1 {
			die(fmt.Errorf("%s wants exactly one module name", cmd))
		}
	case "resolve":
		if len(args) != 2 {
			die(fmt.Errorf("resolve wants a kind and a name"))
		}
	case "lookup":
		if len(args) > 2 {
			die(fmt.Errorf("lookup takes at most a kind and a name"))
		}
	case "registry":
		if len(args) != 1 || args[0] != "status" {
			die(fmt.Errorf(`registry wants the subcommand "status"`))
		}
	default:
		die(fmt.Errorf("unknown command %q", cmd))
	}

	src, err := os.ReadFile(*gridPath)
	die(err)
	topo, err := deploy.ParseTopology(src)
	die(err)
	platform, err := deploy.Build(topo)
	die(err)

	var names []string
	for n := range platform.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	nodes := names
	if *targets != "all" {
		nodes = strings.Split(*targets, ",")
		for _, n := range nodes {
			if _, ok := platform.Nodes[n]; !ok {
				die(fmt.Errorf("unknown target node %q", n))
			}
		}
	}
	seat := names[0]
	if *from != "" {
		seat = *from
	}
	if _, ok := platform.Nodes[seat]; !ok {
		die(fmt.Errorf("unknown controller seat %q", seat))
	}

	var regNodes []string
	if *registries != "" {
		regNodes = strings.Split(*registries, ",")
	}

	exit := 0
	platform.Grid.Run(func() {
		procs, err := platform.LaunchAllOn(regNodes)
		die(err)
		fmt.Printf("deployment %q up: %d process(es), registry replicas on %s\n",
			topo.Name, len(procs), strings.Join(platform.Registries, ","))
		ctl := gatekeeper.FromProcess(procs[seat])
		if !run(ctl, platform, procs, seat, nodes, cmd, args, *cascade) {
			exit = 1
		}
	})
	os.Exit(exit)
}

// run executes one operator command; it reports success.
func run(ctl *gatekeeper.Controller, platform *deploy.Platform, procs map[string]*core.Process,
	seat string, nodes []string, cmd string, args []string, cascade bool) bool {
	fan := func(req *gatekeeper.Request, show func(gatekeeper.FanResult)) bool {
		ok := true
		for _, r := range ctl.Fanout(nodes, req) {
			if r.Err != nil {
				fmt.Printf("%-8s ERROR %v\n", r.Node, r.Err)
				ok = false
				continue
			}
			show(r)
		}
		return ok
	}
	switch cmd {
	case "list":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpListModules}, func(r gatekeeper.FanResult) {
			fmt.Printf("%-8s %v\n", r.Node, r.Resp.Modules)
		})
	case "services":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpListServices}, func(r gatekeeper.FanResult) {
			fmt.Printf("%-8s %v\n", r.Node, r.Resp.Services)
		})
	case "ping":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpPing}, func(r gatekeeper.FanResult) {
			fmt.Printf("%-8s ok\n", r.Node)
		})
	case "stats":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpStats}, func(r gatekeeper.FanResult) {
			s := r.Resp.Stats
			fmt.Printf("%-8s modules=%v services=%v orbs=%v\n", s.Node, s.Modules, s.Services, s.ORBs)
			for _, d := range s.Devices {
				fmt.Printf("         device %s (%s): routed=%d dropped=%d pending=%d\n",
					d.Name, d.Kind, d.Routed, d.Dropped, d.Pending)
			}
		})
	case "load", "unload":
		req := &gatekeeper.Request{Op: gatekeeper.OpLoad, Module: args[0]}
		if cmd == "unload" {
			req = &gatekeeper.Request{Op: gatekeeper.OpUnload, Module: args[0], Cascade: cascade}
		}
		return fan(req, func(r gatekeeper.FanResult) {
			fmt.Printf("%-8s %sed %s -> %v\n", r.Node, cmd, args[0], r.Resp.Modules)
		})
	case "lookup":
		kind, name := "", ""
		if len(args) > 0 {
			kind = args[0]
		}
		if len(args) > 1 {
			name = args[1]
		}
		gk, ok := gatekeeper.For(procs[seat])
		if !ok || gk.Registry() == nil {
			fmt.Printf("lookup: no registry client on %s\n", seat)
			return false
		}
		entries, err := gk.Registry().Lookup(kind, name)
		if err != nil {
			fmt.Printf("lookup: %v\n", err)
			return false
		}
		for _, e := range entries {
			fmt.Printf("%-8s %-8s %-24s %s\n", e.Node, e.Kind, e.Name, e.Service)
		}
		fmt.Printf("%d entr%s\n", len(entries), map[bool]string{true: "y", false: "ies"}[len(entries) == 1])
		return true
	case "resolve":
		kind, name := args[0], args[1]
		gk, ok := gatekeeper.For(procs[seat])
		if !ok || gk.Registry() == nil {
			fmt.Printf("resolve: no registry client on %s\n", seat)
			return false
		}
		rc := gk.Registry()
		// Every replica's view first, so the operator sees replication
		// state: a freshly published entry appears on its zone's replica
		// immediately and on the rest within one sync interval.
		for _, rep := range platform.Registries {
			entries, err := rc.LookupAt(rep, kind, name)
			if err != nil {
				fmt.Printf("replica %-8s ERROR %v\n", rep, err)
				continue
			}
			if len(entries) == 0 {
				fmt.Printf("replica %-8s no matching entries\n", rep)
				continue
			}
			for _, e := range entries {
				ttl := "permanent"
				if e.TTLMillis > 0 {
					ttl = fmt.Sprintf("ttl %dms", e.TTLMillis)
				}
				fmt.Printf("replica %-8s %-8s %-8s %-24s %-24s %s\n",
					rep, e.Node, e.Kind, e.Name, e.Service, ttl)
			}
		}
		e, err := rc.Resolve(kind, name)
		if err != nil {
			fmt.Printf("resolve: %v\n", err)
			return false
		}
		fmt.Printf("%s %s -> node %s, service %s\n", kind, name, e.Node, e.Service)
		// The deployment installed the registry client as every linker's
		// resolver, so the seat dials purely by name — no node given.
		st, err := procs[seat].Linker().DialService(kind, name)
		if err != nil {
			fmt.Printf("resolve: dial by name: %v\n", err)
			return false
		}
		st.Close()
		fmt.Printf("dialed %s by name from %s ok\n", name, seat)
		return true
	case "registry": // registry status
		gk, ok := gatekeeper.For(procs[seat])
		if !ok || gk.Registry() == nil {
			fmt.Printf("registry status: no registry client on %s\n", seat)
			return false
		}
		ok = true
		for _, rep := range platform.Registries {
			st, err := gk.Registry().StatusOf(rep)
			if err != nil {
				fmt.Printf("replica %-8s ERROR %v\n", rep, err)
				ok = false
				continue
			}
			fmt.Printf("replica %-8s %d node(s), %d entr%s\n",
				st.Node, st.Nodes, st.Entries, map[bool]string{true: "y", false: "ies"}[st.Entries == 1])
			for _, p := range st.Peers {
				lag := "never synced"
				if p.LagMillis >= 0 {
					lag = fmt.Sprintf("synced %dms ago", p.LagMillis)
				}
				fmt.Printf("         peer %-8s %d sync(s), %d failure(s), %s\n",
					p.Node, p.Syncs, p.Fails, lag)
			}
		}
		return ok
	case "demo":
		return demo(ctl, procs, seat, nodes)
	default: // unreachable: commands are validated before launch
		fmt.Fprintf(os.Stderr, "padico-ctl: unknown command %q\n", cmd)
		return false
	}
}

// demo is the acceptance scenario: list modules on every process, hot-load
// the SOAP middleware into one of them, invoke it, then unload it.
func demo(ctl *gatekeeper.Controller, procs map[string]*core.Process, seat string, nodes []string) bool {
	fmt.Println("-- module tables before:")
	for _, r := range ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpListModules}) {
		if r.Err != nil {
			fmt.Printf("%-8s ERROR %v\n", r.Node, r.Err)
			return false
		}
		fmt.Printf("%-8s %v\n", r.Node, r.Resp.Modules)
	}
	victim := nodes[len(nodes)-1]
	fmt.Printf("-- hot-loading soap into %s\n", victim)
	mods, err := ctl.Load(victim, "soap")
	if err != nil {
		fmt.Printf("load: %v\n", err)
		return false
	}
	fmt.Printf("%-8s %v\n", victim, mods)
	out, err := soap.NewClient(procs[seat].Linker()).Call(
		procs[victim].Node(), "sys", "modules")
	if err != nil {
		fmt.Printf("soap call: %v\n", err)
		return false
	}
	fmt.Printf("-- SOAP sys/modules on %s answered: %v\n", victim, out)
	if _, err := ctl.Unload(victim, "soap", false); err != nil {
		fmt.Printf("unload: %v\n", err)
		return false
	}
	fmt.Printf("-- unloaded soap from %s, final table: ", victim)
	mods, err = ctl.Modules(victim)
	if err != nil {
		fmt.Printf("list: %v\n", err)
		return false
	}
	fmt.Println(mods)
	return true
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "padico-ctl:", err)
		os.Exit(1)
	}
}
