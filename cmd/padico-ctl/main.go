// Command padico-ctl is the PadicoControl operator tool. It steers a Padico
// grid through the gatekeeper protocol — listing, hot-loading and unloading
// modules on one process or on the whole deployment at once, inspecting
// arbitration counters, and querying the replicated grid-wide service
// registry — in either of two modes:
//
//   - Simulated (-grid): the grid described in XML is brought up as a simnet
//     deployment inside this process (every process spawned with a
//     gatekeeper, a registry replica on the first node of each zone,
//     replicas reconciling through anti-entropy sync) and steered in
//     virtual time.
//
//   - Live (-attach): the tool attaches to running padico-d daemons over
//     real TCP and steers them without constructing any simulated network —
//     the deployment outlives the tool, which is the point. One reachable
//     endpoint suffices: its deployment descriptor names the registry
//     replicas, and registry entries (each advertising its daemon's
//     endpoint) reveal the rest of the grid.
//
// Usage:
//
//	padico-ctl -grid topology.xml [-from node] [-nodes a,b|all] [-registry r1,r2] [-cascade] command [args]
//	padico-ctl -attach host:port[,host:port...] [-nodes a,b|all] [-cascade] command [args]
//
// The -registry flag (simulated mode) overrides replica placement: each
// named node hosts one registry replica (default: the first node of every
// zone).
//
// Commands (identical in both modes):
//
//	list                 module table of every targeted process
//	services             VLink service table of every targeted process
//	stats                modules, services, ORBs and device counters
//	ping                 control-plane round trip
//	load <module>        hot-load a module (concurrent fan-out)
//	unload <module>      unload a module; -cascade unloads dependents first
//	lookup [kind [name]] query the grid-wide service registry
//	resolve <kind> <name> show every replica's matching entries (node,
//	                     kind, TTL remaining — the replication state), the
//	                     endpoint fabric-aware resolution picks, and verify
//	                     the seat can dial it by name
//	registry status      per-replica replication report: live node/entry
//	                     counts and anti-entropy sync lag per peer
//	metrics              full telemetry snapshot of every targeted process:
//	                     counters, gauges and latency histograms
//	top                  one-line health table per node — dial rate, resolve
//	                     p99, sync-round p99, lease renewals, restarts
//	events [max]         recent control-plane trace events from each node's
//	                     ring, trace IDs stitchable across nodes
//	events -grid [max]   the same rings merged into one time-sorted grid
//	                     view, one line per event across every node
//	trace <id>|-last     collect the buffered spans of one trace from every
//	                     node and render the causal tree: parent/child
//	                     edges, per-span durations, failover markers.
//	                     -last picks the most recent operator-command trace
//	                     the grid has seen
//	demo                 scripted scenario: list everywhere, hot-load the
//	                     SOAP middleware into the last node, invoke it over
//	                     SOAP, then unload it again
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"padico/internal/core"
	"padico/internal/deploy"
	"padico/internal/gatekeeper"
	"padico/internal/soap"
	"padico/internal/telemetry"
	"padico/internal/vlink"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// realMain is main minus os.Exit, so error paths are testable and — in
// simulated mode — run *inside* Grid.Run's teardown: a failed command must
// still drain every process (withdrawing its registry entries) before the
// tool exits. Exiting from within the Run body would skip that.
func realMain(argv []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("padico-ctl", flag.ContinueOnError)
	fs.SetOutput(errOut)
	gridPath := fs.String("grid", "", "grid topology XML (simulated mode)")
	attach := fs.String("attach", "", "comma-separated padico-d endpoints (live mode)")
	from := fs.String("from", "", "node to seat the controller on (simulated mode; default: first node)")
	targets := fs.String("nodes", "all", "comma-separated target nodes, or \"all\"")
	registries := fs.String("registry", "", "comma-separated registry replica hosts (simulated mode; default: first node of each zone)")
	shards := fs.Int("shards", 0, "shard the registry directory this many ways (simulated mode; 0/1 = unsharded)")
	cascade := fs.Bool("cascade", false, "unload dependents before the module itself")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func() int {
		fmt.Fprintln(errOut, "usage: padico-ctl -grid topology.xml [-from node] [-nodes a,b|all] [-registry r1,r2] [-cascade] command [args]")
		fmt.Fprintln(errOut, "       padico-ctl -attach host:port[,host:port...] [-nodes a,b|all] [-cascade] command [args]")
		return 2
	}
	if (*gridPath == "") == (*attach == "") || fs.NArg() == 0 {
		return usage()
	}
	cmd, args := fs.Arg(0), fs.Args()[1:]
	// Reject malformed invocations before spending a whole deployment
	// bring-up (or a live attach) on them.
	switch cmd {
	case "list", "services", "stats", "ping", "metrics", "top", "demo":
		if len(args) != 0 {
			return fail(errOut, fmt.Errorf("%s takes no arguments", cmd))
		}
	case "events":
		rest := args
		if len(rest) > 0 && rest[0] == "-grid" {
			rest = rest[1:]
		}
		if len(rest) > 1 {
			return fail(errOut, fmt.Errorf("events takes at most -grid and a maximum event count"))
		}
		if len(rest) == 1 {
			if _, err := strconv.Atoi(rest[0]); err != nil {
				return fail(errOut, fmt.Errorf("events: bad count %q", rest[0]))
			}
		}
	case "trace":
		if len(args) != 1 {
			return fail(errOut, fmt.Errorf("trace wants a trace ID or -last"))
		}
	case "load", "unload":
		if len(args) != 1 {
			return fail(errOut, fmt.Errorf("%s wants exactly one module name", cmd))
		}
	case "resolve":
		if len(args) < 2 {
			return fail(errOut, fmt.Errorf("resolve wants a kind and at least one name"))
		}
	case "lookup":
		if len(args) > 2 {
			return fail(errOut, fmt.Errorf("lookup takes at most a kind and a name"))
		}
	case "registry":
		if len(args) != 1 || args[0] != "status" {
			return fail(errOut, fmt.Errorf(`registry wants the subcommand "status"`))
		}
	default:
		return fail(errOut, fmt.Errorf("unknown command %q", cmd))
	}

	if *attach != "" {
		if *from != "" || *registries != "" || *shards != 0 {
			return fail(errOut, fmt.Errorf("-from, -registry and -shards apply to simulated mode only"))
		}
		return runAttached(out, errOut, deploy.SplitList(*attach), *targets, cmd, args, *cascade)
	}
	if *shards > 1 && *registries != "" {
		return fail(errOut, fmt.Errorf("-registry names a single-shard placement; -shards places replicas itself"))
	}
	return runSimulated(out, errOut, *gridPath, *from, *targets, *registries, *shards, cmd, args, *cascade)
}

// runSimulated builds the grid in-process and steers it in virtual time.
func runSimulated(out, errOut io.Writer, gridPath, from, targets, registries string, shards int, cmd string, args []string, cascade bool) int {
	src, err := os.ReadFile(gridPath)
	if err != nil {
		return fail(errOut, err)
	}
	topo, err := deploy.ParseTopology(src)
	if err != nil {
		return fail(errOut, err)
	}
	platform, err := deploy.Build(topo)
	if err != nil {
		return fail(errOut, err)
	}

	var names []string
	for n := range platform.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	nodes := names
	if targets != "all" {
		nodes = strings.Split(targets, ",")
		for _, n := range nodes {
			if _, ok := platform.Nodes[n]; !ok {
				return fail(errOut, fmt.Errorf("unknown target node %q", n))
			}
		}
	}
	seatNode := names[0]
	if from != "" {
		seatNode = from
	}
	if _, ok := platform.Nodes[seatNode]; !ok {
		return fail(errOut, fmt.Errorf("unknown controller seat %q", seatNode))
	}

	var regNodes []string
	if registries != "" {
		regNodes = strings.Split(registries, ",")
	}

	// From here on, no early exits: a failure inside Run sets the code and
	// returns normally, so Grid.Run's two-phase teardown (drain everywhere
	// — withdrawing registry entries — then stop) always executes.
	exit := 0
	platform.Grid.Run(func() {
		var procs map[string]*core.Process
		var err error
		if shards > 1 {
			procs, err = platform.LaunchAllSharded(shards)
		} else {
			procs, err = platform.LaunchAllOn(regNodes)
		}
		if err != nil {
			fmt.Fprintln(errOut, "padico-ctl:", err)
			exit = 1
			return
		}
		suffix := ""
		if shards > 1 {
			suffix = fmt.Sprintf(" (%d shards)", shards)
		}
		fmt.Fprintf(out, "deployment %q up: %d process(es), registry replicas on %s%s\n",
			topo.Name, len(procs), strings.Join(platform.Registries, ","), suffix)
		// Operator commands from the seat are always traced, matching
		// live mode where Attach samples everything the ctl initiates.
		procs[seatNode].Telemetry().SetSpanSampling(1)
		s := &simSeat{platform: platform, procs: procs, seat: seatNode}
		if !run(out, errOut, s, nodes, cmd, args, cascade) {
			exit = 1
		}
	})
	return exit
}

// runAttached steers a live deployment of padico-d daemons over real TCP.
func runAttached(out, errOut io.Writer, addrs []string, targets, cmd string, args []string, cascade bool) int {
	dep, err := deploy.Attach(addrs)
	if err != nil {
		return fail(errOut, err)
	}
	defer dep.Close()
	for _, w := range dep.Warnings() {
		fmt.Fprintln(errOut, "padico-ctl: warning:", w)
	}
	nodes := dep.Nodes()
	fmt.Fprintf(out, "attached: %d process(es), registry replicas on %s\n",
		len(nodes), strings.Join(dep.Registries(), ","))
	if targets != "all" {
		known := map[string]bool{}
		for _, n := range nodes {
			known[n] = true
		}
		// Same parsing as simulated mode: empty elements are kept and
		// rejected below, rather than silently shrinking the target set.
		nodes = strings.Split(targets, ",")
		for _, n := range nodes {
			if !known[n] {
				return fail(errOut, fmt.Errorf("unknown target node %q", n))
			}
		}
	}
	ok := run(out, errOut, &wallSeat{dep: dep}, nodes, cmd, args, cascade)
	flushSeatSpans(dep, nodes, cmd)
	if !ok {
		return 1
	}
	return 0
}

// flushSeatSpans ships the spans the ctl seat recorded during this command
// to the first reachable daemon. The tool is a fresh process every
// invocation, so without the push its half of the causal tree would die
// with it: a later `padico-ctl trace` run could never show the root.
// Pushing also anchors `trace -last` — the receiving daemon remembers the
// freshest root span it was handed as the grid's most recent operator
// trace. Observability commands themselves are not flushed, so inspecting
// a trace never becomes the next "last trace".
func flushSeatSpans(dep *deploy.WallDeployment, nodes []string, cmd string) {
	if cmd == "trace" || cmd == "events" {
		return
	}
	tel := dep.Telemetry()
	spans := tel.Spans("")
	if len(spans) == 0 {
		return
	}
	// Pre-stamped trace ID: the push is plumbing, not an operator action,
	// and must not mint a root span of its own.
	req := &gatekeeper.Request{Op: gatekeeper.OpTracePut, Spans: spans, TraceID: tel.NextTraceID()}
	for _, n := range nodes {
		if _, err := dep.Ctl.Do(n, req); err == nil {
			return
		}
	}
}

// seat is the operator's steering surface — identical over a freshly built
// simulated deployment and a live one attached over TCP, which is what lets
// every command work unchanged in both modes.
type seat interface {
	Controller() *gatekeeper.Controller
	Registry() *gatekeeper.RegistryClient // nil when the seat has none
	Registries() []string
	// Telemetry is the seat's own span recorder: operator commands mint
	// their root spans here (always sampled — they are rare and always
	// interesting).
	Telemetry() *telemetry.Registry
	// DialService resolves a published service by name and dials it from
	// the seat.
	DialService(kind, name string) (vlink.Stream, error)
	// DialServiceCtx is DialService under the caller's span: the resolve
	// and dial legs become children of ctx.
	DialServiceCtx(ctx telemetry.SpanContext, kind, name string) (vlink.Stream, error)
	// SoapCall invokes a SOAP method on a node's service from the seat.
	SoapCall(node, service, method string, params ...string) ([]string, error)
}

// simSeat seats the controller inside a process of the simulated grid.
type simSeat struct {
	platform *deploy.Platform
	procs    map[string]*core.Process
	seat     string
}

func (s *simSeat) Controller() *gatekeeper.Controller {
	return gatekeeper.FromProcess(s.procs[s.seat])
}

func (s *simSeat) Registry() *gatekeeper.RegistryClient {
	gk, ok := gatekeeper.For(s.procs[s.seat])
	if !ok {
		return nil
	}
	return gk.Registry()
}

func (s *simSeat) Registries() []string { return s.platform.Registries }

func (s *simSeat) Telemetry() *telemetry.Registry { return s.procs[s.seat].Telemetry() }

func (s *simSeat) DialService(kind, name string) (vlink.Stream, error) {
	// The deployment installed the registry client as every linker's
	// resolver, so the seat dials purely by name — no node given.
	return s.procs[s.seat].Linker().DialService(kind, name)
}

func (s *simSeat) DialServiceCtx(ctx telemetry.SpanContext, kind, name string) (vlink.Stream, error) {
	ln := s.procs[s.seat].Linker()
	return ln.DialServiceSpan(ctx, ln.Resolver(), kind, name)
}

func (s *simSeat) SoapCall(node, service, method string, params ...string) ([]string, error) {
	return soap.NewClient(s.procs[s.seat].Linker()).Call(
		s.procs[node].Node(), service, method, params...)
}

// wallSeat seats the controller outside the deployment, on real TCP.
type wallSeat struct{ dep *deploy.WallDeployment }

func (s *wallSeat) Controller() *gatekeeper.Controller   { return s.dep.Ctl }
func (s *wallSeat) Registry() *gatekeeper.RegistryClient { return s.dep.Registry() }
func (s *wallSeat) Registries() []string                 { return s.dep.Registries() }
func (s *wallSeat) Telemetry() *telemetry.Registry       { return s.dep.Telemetry() }

func (s *wallSeat) DialService(kind, name string) (vlink.Stream, error) {
	return s.dep.DialService(kind, name)
}

func (s *wallSeat) DialServiceCtx(ctx telemetry.SpanContext, kind, name string) (vlink.Stream, error) {
	return gatekeeper.DialServiceOnCtx(ctx, s.dep.Tr, s.dep.Registry(), kind, name)
}

func (s *wallSeat) SoapCall(node, service, method string, params ...string) ([]string, error) {
	// Dialed through the daemon's wall gateway into its in-process SOAP
	// server — the same envelopes, over the kernel network.
	st, err := s.dep.Tr.Dial(node, "soap:"+service)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return soap.Call(st, method, params...)
}

// run executes one operator command; it reports success.
func run(out, errOut io.Writer, s seat, nodes []string, cmd string, args []string, cascade bool) bool {
	ctl := s.Controller()
	fan := func(req *gatekeeper.Request, show func(gatekeeper.FanResult)) bool {
		ok := true
		for _, r := range ctl.Fanout(nodes, req) {
			if r.Err != nil {
				fmt.Fprintf(out, "%-8s ERROR %v\n", r.Node, r.Err)
				ok = false
				continue
			}
			show(r)
		}
		return ok
	}
	switch cmd {
	case "list":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpListModules}, func(r gatekeeper.FanResult) {
			fmt.Fprintf(out, "%-8s %v\n", r.Node, r.Resp.Modules)
		})
	case "services":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpListServices}, func(r gatekeeper.FanResult) {
			fmt.Fprintf(out, "%-8s %v\n", r.Node, r.Resp.Services)
		})
	case "ping":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpPing}, func(r gatekeeper.FanResult) {
			fmt.Fprintf(out, "%-8s ok\n", r.Node)
		})
	case "stats":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpStats}, func(r gatekeeper.FanResult) {
			st := r.Resp.Stats
			extra := ""
			if st.UptimeMillis > 0 {
				extra = fmt.Sprintf(" uptime=%dms renewals=%d", st.UptimeMillis, st.LeaseRenewals)
			}
			fmt.Fprintf(out, "%-8s modules=%v services=%v orbs=%v%s\n", st.Node, st.Modules, st.Services, st.ORBs, extra)
			// Sorted here too, not just server-side: an older daemon answers
			// in map order, and the operator view must stay stable.
			sort.Slice(st.Devices, func(i, j int) bool { return st.Devices[i].Name < st.Devices[j].Name })
			for _, d := range st.Devices {
				fmt.Fprintf(out, "         device %s (%s): routed=%d dropped=%d pending=%d\n",
					d.Name, d.Kind, d.Routed, d.Dropped, d.Pending)
			}
		})
	case "load", "unload":
		req := &gatekeeper.Request{Op: gatekeeper.OpLoad, Module: args[0]}
		if cmd == "unload" {
			req = &gatekeeper.Request{Op: gatekeeper.OpUnload, Module: args[0], Cascade: cascade}
		}
		return fan(req, func(r gatekeeper.FanResult) {
			fmt.Fprintf(out, "%-8s %sed %s -> %v\n", r.Node, cmd, args[0], r.Resp.Modules)
		})
	case "lookup":
		kind, name := "", ""
		if len(args) > 0 {
			kind = args[0]
		}
		if len(args) > 1 {
			name = args[1]
		}
		rc := s.Registry()
		if rc == nil {
			fmt.Fprintln(out, "lookup: no registry client on this seat")
			return false
		}
		entries, err := rc.Lookup(kind, name)
		if err != nil {
			fmt.Fprintf(out, "lookup: %v\n", err)
			return false
		}
		for _, e := range entries {
			fmt.Fprintf(out, "%-8s %-8s %-24s %s\n", e.Node, e.Kind, e.Name, e.Service)
		}
		fmt.Fprintf(out, "%d entr%s\n", len(entries), map[bool]string{true: "y", false: "ies"}[len(entries) == 1])
		return true
	case "resolve":
		kind, name := args[0], args[1]
		rc := s.Registry()
		if rc == nil {
			fmt.Fprintln(out, "resolve: no registry client on this seat")
			return false
		}
		if len(args) > 2 {
			// Several names resolve as one batch: the client splits the set
			// by owning shard and answers it with one pipelined flight per
			// replica group, instead of one round trip per name.
			names := args[1:]
			cands, err := vlink.ResolveAll(rc, kind, names)
			if err != nil {
				fmt.Fprintf(out, "resolve: %v\n", err)
				return false
			}
			ok := true
			for i, name := range names {
				if len(cands[i]) == 0 {
					fmt.Fprintf(out, "%s %-24s no dialable candidates\n", kind, name)
					ok = false
					continue
				}
				fmt.Fprintf(out, "%s %-24s -> node %s, service %s (%d candidate%s)\n",
					kind, name, cands[i][0].Node, cands[i][0].Service,
					len(cands[i]), map[bool]string{true: "s"}[len(cands[i]) > 1])
			}
			return ok
		}
		// One root span covers the whole command: the per-replica lookups,
		// the fabric-aware resolution, the by-name dial and the control-
		// plane confirmation all become children, so `padico-ctl trace`
		// later reconstructs the command as a single causal tree spanning
		// the seat, the registry replicas and the hosting gatekeeper.
		sp := s.Telemetry().StartSpan("ctl.resolve")
		sp.Annotate("kind", kind)
		sp.Annotate("name", name)
		defer sp.End()
		// Every replica's view first, so the operator sees replication
		// state: a freshly published entry appears on its zone's replica
		// immediately and on the rest within one sync interval.
		for _, rep := range s.Registries() {
			entries, err := rc.LookupAtCtx(sp.Context(), rep, kind, name)
			if err != nil {
				fmt.Fprintf(out, "replica %-8s ERROR %v\n", rep, err)
				continue
			}
			if len(entries) == 0 {
				fmt.Fprintf(out, "replica %-8s no matching entries\n", rep)
				continue
			}
			for _, e := range entries {
				ttl := "permanent"
				if e.TTLMillis > 0 {
					ttl = fmt.Sprintf("ttl %dms", e.TTLMillis)
				}
				fmt.Fprintf(out, "replica %-8s %-8s %-8s %-24s %-24s %s\n",
					rep, e.Node, e.Kind, e.Name, e.Service, ttl)
			}
		}
		e, err := rc.ResolveCtx(sp.Context(), kind, name)
		if err != nil {
			sp.Annotate("error", err.Error())
			fmt.Fprintf(out, "resolve: %v\n", err)
			return false
		}
		sp.Annotate("host", e.Node)
		fmt.Fprintf(out, "%s %s -> node %s, service %s\n", kind, name, e.Node, e.Service)
		st, err := s.DialServiceCtx(sp.Context(), kind, name)
		if err != nil {
			sp.Annotate("error", err.Error())
			fmt.Fprintf(out, "resolve: dial by name: %v\n", err)
			return false
		}
		st.Close()
		fmt.Fprintf(out, "dialed %s by name from the seat ok\n", name)
		// Confirm over the control plane that the hosting node still
		// advertises the service — a pre-stamped exchange, so the remote
		// gatekeeper's hop lands in this same tree.
		creq := &gatekeeper.Request{Op: gatekeeper.OpListServices}
		if sc := sp.Context(); sc.Valid() {
			creq.TraceID, creq.Span = sc.Trace, sc.Span
		}
		cresp, err := ctl.Do(e.Node, creq)
		if err != nil {
			fmt.Fprintf(out, "resolve: confirm on %s: %v\n", e.Node, err)
			return false
		}
		fmt.Fprintf(out, "node %s confirms %d service(s) over the control plane\n", e.Node, len(cresp.Services))
		return true
	case "registry": // registry status
		rc := s.Registry()
		if rc == nil {
			fmt.Fprintln(out, "registry status: no registry client on this seat")
			return false
		}
		ok := true
		for _, rep := range s.Registries() {
			st, err := rc.StatusOf(rep)
			if err != nil {
				fmt.Fprintf(out, "replica %-8s ERROR %v\n", rep, err)
				ok = false
				continue
			}
			fmt.Fprintf(out, "replica %-8s %d node(s), %d entr%s\n",
				st.Node, st.Nodes, st.Entries, map[bool]string{true: "y", false: "ies"}[st.Entries == 1])
			// A sharded replica reports per shard: each hosted shard's slice
			// of the directory and its own group's sync lag. Unsharded
			// replicas keep the flat per-peer report.
			for _, sh := range st.Shards {
				fmt.Fprintf(out, "         SHARD %-3d %d node(s), %d entr%s\n",
					sh.Shard, sh.Nodes, sh.Entries, map[bool]string{true: "y", false: "ies"}[sh.Entries == 1])
				for _, p := range sh.Peers {
					lag := "never synced"
					if p.LagMillis >= 0 {
						lag = fmt.Sprintf("synced %dms ago", p.LagMillis)
					}
					fmt.Fprintf(out, "                   peer %-8s %d sync(s), %d failure(s), %s\n",
						p.Node, p.Syncs, p.Fails, lag)
				}
			}
			if len(st.Shards) > 0 {
				continue
			}
			for _, p := range st.Peers {
				lag := "never synced"
				if p.LagMillis >= 0 {
					lag = fmt.Sprintf("synced %dms ago", p.LagMillis)
				}
				fmt.Fprintf(out, "         peer %-8s %d sync(s), %d failure(s), %s\n",
					p.Node, p.Syncs, p.Fails, lag)
			}
		}
		return ok
	case "metrics":
		return fan(&gatekeeper.Request{Op: gatekeeper.OpMetrics}, func(r gatekeeper.FanResult) {
			m := r.Resp.Metrics
			if m == nil {
				fmt.Fprintf(out, "%-8s no metrics\n", r.Node)
				return
			}
			fmt.Fprintf(out, "%s:\n", r.Node)
			for _, k := range sortedKeys(m.Counters) {
				fmt.Fprintf(out, "         %-28s %d\n", k, m.Counters[k])
			}
			for _, k := range sortedKeys(m.Gauges) {
				fmt.Fprintf(out, "         %-28s %d (gauge)\n", k, m.Gauges[k])
			}
			for _, k := range sortedKeys(m.Hists) {
				h := m.Hists[k]
				fmt.Fprintf(out, "         %-28s count=%d p50=%dus p99=%dus max=%dus\n",
					k, h.Count, h.P50Micros, h.P99Micros, h.MaxMicros)
			}
		})
	case "top":
		return top(out, ctl, nodes)
	case "events":
		grid := false
		rest := args
		if len(rest) > 0 && rest[0] == "-grid" {
			grid, rest = true, rest[1:]
		}
		max := 0
		if len(rest) == 1 {
			max, _ = strconv.Atoi(rest[0])
		}
		if grid {
			return gridEvents(out, ctl, nodes, max)
		}
		return fan(&gatekeeper.Request{Op: gatekeeper.OpEvents, Max: max}, func(r gatekeeper.FanResult) {
			if len(r.Resp.Events) == 0 {
				fmt.Fprintf(out, "%-8s no events\n", r.Node)
				return
			}
			for _, e := range r.Resp.Events {
				fmt.Fprintf(out, "%-8s %s\n", r.Node, e.String())
			}
		})
	case "trace":
		return traceCmd(out, s, ctl, nodes, args[0])
	case "demo":
		return demo(out, s, nodes)
	default: // unreachable: commands are validated before launch
		fmt.Fprintf(errOut, "padico-ctl: unknown command %q\n", cmd)
		return false
	}
}

// gridEvents merges every node's event ring into one time-sorted grid view —
// the control plane as a single timeline rather than per-node fragments.
// Time orders first (virtual time under Sim makes the merge deterministic),
// then node name, then each ring's own sequence.
func gridEvents(out io.Writer, ctl *gatekeeper.Controller, nodes []string, max int) bool {
	type row struct {
		node string
		ev   telemetry.Event
	}
	var rows []row
	answered, ok := 0, true
	for _, r := range ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpEvents, Max: max}) {
		if r.Err != nil {
			fmt.Fprintf(out, "%-8s ERROR %v\n", r.Node, r.Err)
			ok = false
			continue
		}
		answered++
		for _, e := range r.Resp.Events {
			rows = append(rows, row{r.Node, e})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.ev.AtMicros != b.ev.AtMicros {
			return a.ev.AtMicros < b.ev.AtMicros
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.ev.Seq < b.ev.Seq
	})
	for _, r := range rows {
		fmt.Fprintf(out, "%-8s %s\n", r.node, r.ev.String())
	}
	fmt.Fprintf(out, "%d event(s) across %d node(s)\n", len(rows), answered)
	return ok
}

// traceCmd collects one trace's spans from every node — plus the seat's own
// buffer, which holds the live half of a command issued from this very
// process — and renders the causal tree. "-last" first asks every node for
// the most recent operator trace it was handed and picks the freshest.
func traceCmd(out io.Writer, s seat, ctl *gatekeeper.Controller, nodes []string, id string) bool {
	if id == "-last" {
		var bestAt int64
		best := ""
		for _, r := range ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpTrace}) {
			if r.Err != nil || r.Resp.LastTrace == "" {
				continue
			}
			if best == "" || r.Resp.LastTraceAtMicros > bestAt {
				best, bestAt = r.Resp.LastTrace, r.Resp.LastTraceAtMicros
			}
		}
		if best == "" {
			fmt.Fprintln(out, "trace: the grid has no recorded operator trace yet")
			return false
		}
		id = best
	}
	spans := s.Telemetry().Spans(id)
	ok := true
	for _, r := range ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpTrace, Name: id}) {
		if r.Err != nil {
			fmt.Fprintf(out, "%-8s ERROR %v\n", r.Node, r.Err)
			ok = false
			continue
		}
		spans = append(spans, r.Resp.Spans...)
	}
	return renderTrace(out, id, spans) && ok
}

// renderTrace renders a span set as one causal tree: roots first, children
// indented under their parents in start order. Starts are printed relative
// to the trace's earliest span, so the operator reads per-hop offsets
// rather than clock values. A span whose parent never arrived (evicted from
// a busy node's buffer, or the node was unreachable) renders as a root,
// marked, instead of disappearing.
func renderTrace(out io.Writer, id string, spans []telemetry.Span) bool {
	// Dedup on (node, span ID): in simulated mode the seat's own buffer and
	// the seat node's fan-out answer are the same recorder.
	seen := map[string]bool{}
	uniq := spans[:0]
	for _, sp := range spans {
		k := sp.Node + "\x00" + sp.ID
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, sp)
	}
	if len(uniq) == 0 {
		fmt.Fprintf(out, "trace %s: no spans found on any node\n", id)
		return false
	}
	byID := map[string]bool{}
	nodeSet := map[string]bool{}
	base := uniq[0].StartMicros
	for _, sp := range uniq {
		byID[sp.ID] = true
		nodeSet[sp.Node] = true
		if sp.StartMicros < base {
			base = sp.StartMicros
		}
	}
	children := map[string][]telemetry.Span{}
	var roots []telemetry.Span
	for _, sp := range uniq {
		if sp.Parent == "" || !byID[sp.Parent] {
			roots = append(roots, sp)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	order := func(s []telemetry.Span) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].StartMicros != s[j].StartMicros {
				return s[i].StartMicros < s[j].StartMicros
			}
			return s[i].ID < s[j].ID
		})
	}
	order(roots)
	for _, c := range children {
		order(c)
	}
	fmt.Fprintf(out, "trace %s: %d span(s) across %d node(s)\n", id, len(uniq), len(nodeSet))
	var render func(sp telemetry.Span, depth int)
	render = func(sp telemetry.Span, depth int) {
		notes := ""
		for _, k := range sortedKeys(sp.Notes) {
			notes += fmt.Sprintf(" %s=%s", k, sp.Notes[k])
		}
		orphan := ""
		if sp.Parent != "" && !byID[sp.Parent] {
			orphan = " (parent " + sp.Parent + " missing)"
		}
		fmt.Fprintf(out, "%s%-16s node=%-8s +%dus %dus%s%s\n",
			strings.Repeat("  ", depth+1), sp.Op, sp.Node,
			sp.StartMicros-base, sp.DurationMicros, notes, orphan)
		for _, c := range children[sp.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return true
}

// top renders a one-line-per-node health table from each node's metrics
// snapshot: dial rate, mux health (pooled sessions and live streams —
// SESS stays flat while STREAMS churns on a healthy data plane; SESS
// tracking dial volume means connection pooling is not engaging), resolve
// and sync-round p99 latency, lease renewals, request count, and the
// restart generation the supervisor respawned the daemon with.
func top(out io.Writer, ctl *gatekeeper.Controller, nodes []string) bool {
	results := ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpMetrics})
	sort.Slice(results, func(i, j int) bool { return results[i].Node < results[j].Node })
	fmt.Fprintf(out, "%-8s %9s %5s %8s %12s %12s %9s %9s %9s\n",
		"NODE", "DIALS/S", "SESS", "STREAMS", "RESOLVE-P99", "SYNC-P99", "RENEWALS", "REQS", "RESTARTS")
	p99 := func(h telemetry.HistStat) string {
		if h.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%dus", h.P99Micros)
	}
	ok := true
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(out, "%-8s ERROR %v\n", r.Node, r.Err)
			ok = false
			continue
		}
		m := r.Resp.Metrics // nil-safe: accessors answer zero values
		dials := m.Counter("vlink.dials_ok") + m.Counter("wall.dials")
		rate := "-"
		if up := m.Gauge("uptime_ms"); up > 0 {
			rate = fmt.Sprintf("%.2f", float64(dials)/(float64(up)/1000))
		}
		fmt.Fprintf(out, "%-8s %9s %5d %8d %12s %12s %9d %9d %9d\n",
			r.Node, rate, m.Gauge("wall.sessions"), m.Gauge("wall.streams_active"),
			p99(m.Hist("vlink.resolve")), p99(m.Hist("reg.sync_round")),
			m.Counter("gk.lease_renewals"), m.Counter("gk.requests"),
			m.Gauge("daemon_restarts"))
	}
	return ok
}

// sortedKeys returns a map's keys in sorted order — stable operator output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// demo is the acceptance scenario: list modules on every process, hot-load
// the SOAP middleware into one of them, invoke it, then unload it.
func demo(out io.Writer, s seat, nodes []string) bool {
	ctl := s.Controller()
	fmt.Fprintln(out, "-- module tables before:")
	for _, r := range ctl.Fanout(nodes, &gatekeeper.Request{Op: gatekeeper.OpListModules}) {
		if r.Err != nil {
			fmt.Fprintf(out, "%-8s ERROR %v\n", r.Node, r.Err)
			return false
		}
		fmt.Fprintf(out, "%-8s %v\n", r.Node, r.Resp.Modules)
	}
	victim := nodes[len(nodes)-1]
	fmt.Fprintf(out, "-- hot-loading soap into %s\n", victim)
	mods, err := ctl.Load(victim, "soap")
	if err != nil {
		fmt.Fprintf(out, "load: %v\n", err)
		return false
	}
	fmt.Fprintf(out, "%-8s %v\n", victim, mods)
	answer, err := s.SoapCall(victim, "sys", "modules")
	if err != nil {
		fmt.Fprintf(out, "soap call: %v\n", err)
		return false
	}
	fmt.Fprintf(out, "-- SOAP sys/modules on %s answered: %v\n", victim, answer)
	if _, err := ctl.Unload(victim, "soap", false); err != nil {
		fmt.Fprintf(out, "unload: %v\n", err)
		return false
	}
	fmt.Fprintf(out, "-- unloaded soap from %s, final table: ", victim)
	mods, err = ctl.Modules(victim)
	if err != nil {
		fmt.Fprintf(out, "list: %v\n", err)
		return false
	}
	fmt.Fprintln(out, mods)
	return true
}

func fail(errOut io.Writer, err error) int {
	fmt.Fprintln(errOut, "padico-ctl:", err)
	return 1
}
