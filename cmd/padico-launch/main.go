// Command padico-launch is the grid launcher & supervisor: it reads the
// same grid XML the simulator and padico-ctl use, spawns one padico-d per
// node with every flag computed (control ports, zones, registry-replica
// placement, peer endpoint seeding — replicas mesh without operator
// input), and babysits the live grid: health probes against each daemon's
// gatekeeper, supervised restart with exponential backoff when a daemon
// crashes or wedges, re-announce verification through the registry,
// rolling restart by zone, and graceful teardown (SIGTERM first, so
// daemons withdraw their registry entries; SIGKILL after a grace window).
//
// Usage:
//
//	padico-launch -grid topology.xml [-base-port 7710] [-control 127.0.0.1:7709]
//	              [-padico-d path | -exec "ssh {host} padico-d"] [-hosts n0=h0,...]
//	              [-registry r1,r2] [-modules soap,...] [-lease 5s] [-sync 1s]
//	              [-probe 1s] [-grace 5s] [-http-base 7800] up
//	padico-launch -control host:port status
//	padico-launch -control host:port restart [-zone z | -node n]
//	padico-launch -control host:port down
//
// `up` runs in the foreground until SIGINT/SIGTERM or a `down` request;
// `status`, `restart` and `down` steer a running launcher through its
// control endpoint. Daemons are spawned by re-executing this binary in
// daemon mode by default, so a loopback grid needs no other binary; -padico-d
// spawns a padico-d binary instead, and -exec substitutes any command
// template ({node}, {host}, {port}, {addr} expand per node) — "ssh {host}
// padico-d" with -hosts mapping nodes to machines launches one daemon per
// real host.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"padico/internal/deploy"
	"padico/internal/launch"
)

// daemonMode is the hidden first argument under which this binary runs as
// a padico-d daemon — the self-contained default executor re-execs
// `padico-launch __daemon__ <padico-d flags>` per node.
const daemonMode = "__daemon__"

func main() {
	if len(os.Args) > 1 && os.Args[1] == daemonMode {
		os.Exit(launch.DaemonMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main minus os.Exit, for testability.
func realMain(argv []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("padico-launch", flag.ContinueOnError)
	fs.SetOutput(errOut)
	gridPath := fs.String("grid", "", "grid topology XML (required for up)")
	basePort := fs.Int("base-port", launch.DefaultBasePort, "first daemon control port; node i gets base-port+i")
	control := fs.String("control", "", "launcher control endpoint (up: bind address, default 127.0.0.1:0; other commands: address to steer)")
	daemonBin := fs.String("padico-d", "", "spawn this padico-d binary (default: re-exec padico-launch in daemon mode)")
	execTmpl := fs.String("exec", "", `executor command template, e.g. "ssh {host} padico-d" ({node},{host},{port},{addr} expand per node)`)
	hosts := fs.String("hosts", "", "comma-separated node=host mappings for multi-machine grids (default: 127.0.0.1 everywhere)")
	registries := fs.String("registry", "", "comma-separated registry replica nodes (default: first node of each zone)")
	shards := fs.Int("shards", 0, "shard the registry directory this many ways (replica groups placed per zone; 0/1 = unsharded)")
	modules := fs.String("modules", "", "comma-separated modules every daemon loads at boot")
	httpBase := fs.Int("http-base", 0, "first observability HTTP port; node i serves /metrics and /debug/pprof on http-base+i (0 = off)")
	lease := fs.Duration("lease", 0, "registry lease TTL handed to daemons (default 5s)")
	syncIv := fs.Duration("sync", 0, "anti-entropy sync interval handed to replica hosts (default 1s)")
	probe := fs.Duration("probe", 0, "health-probe interval (default 1s)")
	grace := fs.Duration("grace", 0, "SIGTERM-to-SIGKILL grace on stop/restart (default 5s)")
	zone := fs.String("zone", "", "restart: roll over this zone's nodes")
	node := fs.String("node", "", "restart: restart this one node")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func() int {
		fmt.Fprintln(errOut, "usage: padico-launch -grid topology.xml [flags] up")
		fmt.Fprintln(errOut, "       padico-launch -control host:port status")
		fmt.Fprintln(errOut, "       padico-launch -control host:port restart [-zone z | -node n]")
		fmt.Fprintln(errOut, "       padico-launch -control host:port down")
		return 2
	}
	if fs.NArg() == 0 {
		return usage()
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	if cmd == "restart" && len(rest) > 0 {
		// The documented shape puts the selector after the verb
		// ("restart -zone b"); top-level parsing stopped at the verb, so
		// parse the remainder here. Flags-before-verb work too.
		sub := flag.NewFlagSet("padico-launch restart", flag.ContinueOnError)
		sub.SetOutput(errOut)
		sub.StringVar(zone, "zone", *zone, "roll over this zone's nodes")
		sub.StringVar(node, "node", *node, "restart this one node")
		if err := sub.Parse(rest); err != nil {
			return 2
		}
		rest = sub.Args()
	}
	if len(rest) != 0 {
		return usage()
	}

	switch cmd {
	case "up":
		if *gridPath == "" {
			return usage()
		}
		if *daemonBin != "" && *execTmpl != "" {
			return fail(errOut, fmt.Errorf("-padico-d and -exec are mutually exclusive"))
		}
		return runUp(out, errOut, upConfig{
			gridPath: *gridPath, basePort: *basePort, httpBase: *httpBase, control: *control,
			daemonBin: *daemonBin, execTmpl: *execTmpl, hosts: *hosts,
			registries: *registries, shards: *shards, modules: *modules,
			lease: *lease, syncIv: *syncIv, probe: *probe, grace: *grace,
		})
	case "status":
		if *control == "" {
			return usage()
		}
		sts, err := launch.ControlStatus(*control)
		if err != nil {
			return fail(errOut, err)
		}
		printStatus(out, sts)
		return 0
	case "restart":
		if *control == "" {
			return usage()
		}
		msg, sts, err := launch.ControlRestart(*control, *zone, *node)
		if err != nil {
			return fail(errOut, err)
		}
		fmt.Fprintln(out, "padico-launch:", msg)
		printStatus(out, sts)
		return 0
	case "down":
		if *control == "" {
			return usage()
		}
		msg, err := launch.ControlDown(*control)
		if err != nil {
			return fail(errOut, err)
		}
		fmt.Fprintln(out, "padico-launch:", msg)
		return 0
	default:
		return fail(errOut, fmt.Errorf("unknown command %q", cmd))
	}
}

type upConfig struct {
	gridPath, control, daemonBin, execTmpl, hosts, registries, modules string
	basePort, httpBase, shards                                         int
	lease, syncIv, probe, grace                                        time.Duration
}

// hostMapper parses -hosts ("node=host,...") into a PlanOptions.Host
// function; unmapped nodes stay on loopback. Nil when no mapping is given.
func hostMapper(spec string) (func(string) string, error) {
	if spec == "" {
		return nil, nil
	}
	m := map[string]string{}
	for _, kv := range deploy.SplitList(spec) {
		n, h, ok := strings.Cut(kv, "=")
		if !ok || h == "" {
			return nil, fmt.Errorf("bad -hosts entry %q (want node=host)", kv)
		}
		m[n] = h
	}
	return func(node string) string {
		if h, ok := m[node]; ok {
			return h
		}
		return "127.0.0.1"
	}, nil
}

// runUp plans, spawns and supervises the grid until a signal or a control
// "down" ends it.
func runUp(out, errOut io.Writer, cfg upConfig) int {
	src, err := os.ReadFile(cfg.gridPath)
	if err != nil {
		return fail(errOut, err)
	}
	topo, err := deploy.ParseTopology(src)
	if err != nil {
		return fail(errOut, err)
	}
	hostFor, err := hostMapper(cfg.hosts)
	if err != nil {
		return fail(errOut, err)
	}
	plan, err := launch.BuildPlan(topo, launch.PlanOptions{
		BasePort:     cfg.basePort,
		HTTPBase:     cfg.httpBase,
		Host:         hostFor,
		Registries:   deploy.SplitList(cfg.registries),
		Shards:       cfg.shards,
		Modules:      deploy.SplitList(cfg.modules),
		LeaseTTL:     cfg.lease,
		SyncInterval: cfg.syncIv,
	})
	if err != nil {
		return fail(errOut, err)
	}
	ex, err := executorFor(cfg)
	if err != nil {
		return fail(errOut, err)
	}

	sup := launch.NewSupervisor(plan, ex, launch.Options{
		Out:           out,
		ProbeInterval: cfg.probe,
		Grace:         cfg.grace,
	})
	downc := make(chan struct{}, 1)
	ctlSrv, err := launch.ServeControl(cfg.control, sup, func() {
		select {
		case downc <- struct{}{}:
		default:
		}
	})
	if err != nil {
		return fail(errOut, err)
	}
	defer ctlSrv.Close()
	fmt.Fprintf(out, "padico-launch: grid %q: %d node(s), registries on %s, control on %s\n",
		plan.Grid, len(plan.Specs), strings.Join(plan.Registries, ","), ctlSrv.Addr())
	if err := sup.Start(); err != nil {
		return fail(errOut, err)
	}
	go func() {
		if err := sup.WaitReady(2 * time.Minute); err != nil {
			fmt.Fprintln(errOut, "padico-launch: warning:", err)
			return
		}
		fmt.Fprintf(out, "padico-launch: all %d node(s) running — attach with: padico-ctl -attach %s\n",
			len(plan.Specs), strings.Join(plan.Endpoints(), ","))
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
	case <-downc:
	}
	fmt.Fprintln(out, "padico-launch: tearing down")
	sup.Stop()
	return 0
}

// executorFor picks the executor: an explicit command template, an
// explicit padico-d binary, or — the self-contained default — this very
// binary re-execed in daemon mode.
func executorFor(cfg upConfig) (launch.Executor, error) {
	if cfg.execTmpl != "" {
		return &launch.ExecExecutor{Prefix: strings.Fields(cfg.execTmpl)}, nil
	}
	if cfg.daemonBin != "" {
		return launch.LocalDaemon(cfg.daemonBin), nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("padico-launch: cannot locate own binary (use -padico-d): %w", err)
	}
	return &launch.ExecExecutor{Prefix: []string{self, daemonMode}}, nil
}

func printStatus(out io.Writer, sts []launch.NodeStatus) {
	for _, st := range sts {
		zone := st.Zone
		if zone == "" {
			zone = "-"
		}
		probe := "-"
		if st.LastProbeMillis >= 0 {
			probe = fmt.Sprintf("%dms", st.LastProbeMillis)
		}
		up := "-"
		if st.ReadyForMillis > 0 {
			up = (time.Duration(st.ReadyForMillis) * time.Millisecond).Truncate(time.Second).String()
		}
		fmt.Fprintf(out, "%-8s zone=%-8s state=%-9s addr=%-21s pid=%-7d restarts=%-3d probe=%-6s up=%-8s announced=%v\n",
			st.Node, zone, st.State, st.Addr, st.PID, st.Restarts, probe, up, st.Announced)
		if st.LastExit != "" {
			fmt.Fprintf(out, "         last exit: %s\n", st.LastExit)
		}
	}
}

func fail(errOut io.Writer, err error) int {
	fmt.Fprintln(errOut, "padico-launch:", err)
	return 1
}
