package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"padico/internal/launch"
)

// TestHelperDaemon is the daemon body for the CLI cycle test: the test
// binary is handed to `-exec` and re-execs itself here (see
// internal/launch/launch_test.go for the pattern).
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("PADICO_LAUNCH_CLI_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(launch.DaemonMain(args, os.Stdout, os.Stderr))
}

func writeGrid(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "grid.xml")
	src := `<grid name="cli">
  <node name="a0" zone="a"/>
  <node name="b0" zone="b"/>
  <fabric name="eth" kind="ethernet" nodes="a0,b0"/>
</grid>`
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestArgumentValidation rejects malformed invocations before any grid
// work happens.
func TestArgumentValidation(t *testing.T) {
	grid := writeGrid(t)
	for _, tc := range []struct {
		argv []string
		code int
	}{
		{[]string{}, 2},                                               // no command
		{[]string{"-grid", grid}, 2},                                  // still no command
		{[]string{"up"}, 2},                                           // up without -grid
		{[]string{"status"}, 2},                                       // status without -control
		{[]string{"restart"}, 2},                                      // restart without -control
		{[]string{"down"}, 2},                                         // down without -control
		{[]string{"-grid", grid, "bogus"}, 1},                         // unknown command
		{[]string{"-grid", grid, "up", "extra"}, 2},                   // trailing args
		{[]string{"-control", "127.0.0.1:1", "restart", "-bogus"}, 2}, // bad restart flag
		{[]string{"-grid", grid, "-padico-d", "/x", "-exec", "ssh {host} padico-d", "up"}, 1}, // exclusive
		{[]string{"-grid", grid, "-hosts", "noequals", "up"}, 1},                              // bad -hosts entry
		{[]string{"-grid", "/does/not/exist.xml", "up"}, 1},
	} {
		var out, errOut bytes.Buffer
		if code := realMain(tc.argv, &out, &errOut); code != tc.code {
			t.Fatalf("%v exited %d, want %d\nstderr:\n%s", tc.argv, code, tc.code, errOut.String())
		}
	}

	// Control commands against a dead endpoint fail with exit 1.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-control", dead, "status"}, &out, &errOut); code != 1 {
		t.Fatalf("status against dead control exited %d, want 1", code)
	}
}

// TestHostMapper: -hosts feeds BuildPlan's Host seam, so planned
// endpoints (and hence {host} expansion, peers and probes) point at the
// mapped machines; unmapped nodes stay on loopback.
func TestHostMapper(t *testing.T) {
	hostFor, err := hostMapper("a0=10.0.0.1,b0=grid-b0.example.org")
	if err != nil {
		t.Fatal(err)
	}
	for node, want := range map[string]string{
		"a0": "10.0.0.1", "b0": "grid-b0.example.org", "c0": "127.0.0.1",
	} {
		if got := hostFor(node); got != want {
			t.Fatalf("hostFor(%s) = %s, want %s", node, got, want)
		}
	}
	if _, err := hostMapper("a0="); err == nil {
		t.Fatal("empty host accepted")
	}
	if none, err := hostMapper(""); err != nil || none != nil {
		t.Fatalf("empty spec: mapper non-nil=%v, err=%v", none != nil, err)
	}
}

// TestUpStatusRestartDownCycle drives the whole CLI surface end to end:
// `up` boots a 2-daemon grid from XML (daemons are this test binary
// re-execed via -exec), `status` reports both running, `restart -zone b`
// rolls one zone, and `down` tears the launcher down with exit 0.
func TestUpStatusRestartDownCycle(t *testing.T) {
	t.Setenv("PADICO_LAUNCH_CLI_HELPER", "1")
	grid := writeGrid(t)
	ports := make([]int, 3)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	control := fmt.Sprintf("127.0.0.1:%d", ports[0])
	tmpl := fmt.Sprintf("%s -test.run=^TestHelperDaemon$ --", os.Args[0])

	var upOut, upErr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- realMain([]string{
			"-grid", grid, "-base-port", fmt.Sprint(ports[1]), "-control", control,
			"-exec", tmpl, "-lease", "750ms", "-sync", "75ms", "-probe", "100ms",
			"up",
		}, &upOut, &upErr)
	}()

	// status: wait until both daemons run and announce.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var out, errOut bytes.Buffer
		code := realMain([]string{"-control", control, "status"}, &out, &errOut)
		if code == 0 && strings.Count(out.String(), "state=running") == 2 &&
			strings.Count(out.String(), "announced=true") == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid never became ready\nstatus:\n%s\nup log:\n%s%s",
				out.String(), upOut.String(), upErr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// restart -zone b (the documented selector-after-verb order) rolls b0
	// once.
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-control", control, "restart", "-zone", "b"}, &out, &errOut); code != 0 {
		t.Fatalf("zone restart exited %d\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "restarted b0") {
		t.Fatalf("restart output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "restarts=1") {
		t.Fatalf("restart status does not show the bump:\n%s", out.String())
	}

	// down ends the foreground `up` with exit 0.
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-control", control, "down"}, &out, &errOut); code != 0 {
		t.Fatalf("down exited %d\nstderr:\n%s", code, errOut.String())
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("up exited %d\nlog:\n%s%s", code, upOut.String(), upErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("up did not exit after down\nlog:\n%s%s", upOut.String(), upErr.String())
	}
	if !strings.Contains(upOut.String(), "all 2 node(s) running") {
		t.Fatalf("up never reported readiness:\n%s", upOut.String())
	}
}

// syncBuffer is a concurrency-safe bytes.Buffer (the up goroutine and the
// test read/write it concurrently).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
