// Command padico-bench regenerates the paper's evaluation: every table and
// figure of §4.4 plus the ablations listed in DESIGN.md, printing measured
// values next to the published ones.
//
// Usage:
//
//	padico-bench            # run everything
//	padico-bench -run fig8  # run one experiment (fig7|lat|concurrent|fig8|eth|overhead|cross|security)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"padico/internal/bench"
)

func main() {
	run := flag.String("run", "", "run a single experiment by id")
	flag.Parse()

	experiments := map[string]func() bench.Result{
		"fig7":       bench.Fig7Bandwidth,
		"lat":        bench.Latency,
		"concurrent": bench.Concurrent,
		"fig8":       bench.Fig8GridCCM,
		"eth":        bench.EthernetScaling,
		"overhead":   bench.PadicoOverhead,
		"cross":      bench.CrossParadigm,
		"security":   bench.SecurityZones,
	}
	if *run != "" {
		f, ok := experiments[*run]
		if !ok {
			ids := make([]string, 0, len(experiments))
			for id := range experiments {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "padico-bench: unknown experiment %q (have: %s)\n",
				*run, strings.Join(ids, ", "))
			os.Exit(2)
		}
		fmt.Print(f().Format())
		return
	}
	for _, r := range bench.All() {
		fmt.Println(r.Format())
	}
}
