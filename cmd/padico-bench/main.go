// Command padico-bench regenerates the paper's evaluation: every table and
// figure of §4.4 plus the ablations listed in DESIGN.md, printing measured
// values next to the published ones.
//
// Usage:
//
//	padico-bench            # run everything
//	padico-bench -run fig8  # run one experiment (fig7|lat|concurrent|fig8|eth|overhead|cross|security)
//	padico-bench -out dir   # measure a live loopback grid and write the
//	                        # BENCH_registry.json / BENCH_wall.json artifacts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"padico/internal/bench"
)

func main() {
	run := flag.String("run", "", "run a single experiment by id")
	outDir := flag.String("out", "", "write observability artifacts (BENCH_*.json) into this directory")
	entries := flag.Int("entries", 100000, "directory entries for the registry-load artifact (CI scales this down)")
	flag.Parse()

	if *outDir != "" {
		if err := writeArtifacts(*outDir, *entries); err != nil {
			fmt.Fprintln(os.Stderr, "padico-bench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := map[string]func() bench.Result{
		"fig7":       bench.Fig7Bandwidth,
		"lat":        bench.Latency,
		"concurrent": bench.Concurrent,
		"fig8":       bench.Fig8GridCCM,
		"eth":        bench.EthernetScaling,
		"overhead":   bench.PadicoOverhead,
		"cross":      bench.CrossParadigm,
		"security":   bench.SecurityZones,
	}
	if *run != "" {
		f, ok := experiments[*run]
		if !ok {
			ids := make([]string, 0, len(experiments))
			for id := range experiments {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "padico-bench: unknown experiment %q (have: %s)\n",
				*run, strings.Join(ids, ", "))
			os.Exit(2)
		}
		fmt.Print(f().Format())
		return
	}
	for _, r := range bench.All() {
		fmt.Println(r.Format())
	}
}

// writeArtifacts runs the live-grid observability benchmarks and writes
// one JSON artifact per suite — the files CI uploads and the repo commits
// as a reference point.
func writeArtifacts(dir string, entries int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, run := range []func() (bench.Artifact, error){
		func() (bench.Artifact, error) { return bench.RegistryArtifact(entries) },
		bench.WallArtifact,
		bench.DataplaneArtifact,
	} {
		a, err := run()
		if err != nil {
			return err
		}
		buf, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+a.Name+".json")
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
