// Command padico-d is the Padico node daemon: one long-lived OS process per
// grid machine, hosting a genuine Padico process (module system, VLink,
// middleware mix) on the wall clock and serving its gatekeeper — plus,
// where placed, a registry replica — on a real TCP listener. Operators
// steer a running set of daemons with `padico-ctl -attach host:port[,...]`;
// daemons find each other through seeded peer endpoints and the endpoints
// advertised in registry entries.
//
// Usage:
//
//	padico-d -node n0 [-listen 127.0.0.1:7701] [-advertise host:port]
//	         [-grid topology.xml] [-zone z] [-registry] [-registries n0,n1]
//	         [-peers n1=host:port,...] [-modules soap,...]
//	         [-lease 5s] [-sync 1s]
//
// With -grid, the node's zone and the default registry placement (first
// node of every zone) come from the same topology XML the simulator uses,
// so a live deployment and a simulated one agree on where replicas live.
// -registry forces a replica onto this node; -registries overrides the
// placement entirely. Peer endpoints seed the address book — minimally the
// replicas, so the first announce can land; everything else is learned from
// the registry at run time.
//
// The daemon prints "padico-d: <node> serving on <addr>" once up, and shuts
// down cleanly on SIGINT/SIGTERM: it withdraws its registry entries while
// its links are still up, so the grid forgets it within one sync interval
// instead of a lease TTL.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"

	"padico/internal/deploy"
)

func main() {
	node := flag.String("node", "", "this daemon's node name")
	zone := flag.String("zone", "", "administrative zone (default: from -grid, if given)")
	listen := flag.String("listen", "127.0.0.1:0", "bind address of the TCP control listener")
	advertise := flag.String("advertise", "", "endpoint other processes dial (default: actual listen address)")
	gridPath := flag.String("grid", "", "grid topology XML (zones and default registry placement)")
	registry := flag.Bool("registry", false, "host a registry replica on this node")
	registries := flag.String("registries", "", "comma-separated registry replica node names (overrides -grid placement)")
	peers := flag.String("peers", "", "comma-separated node=host:port endpoint seeds")
	modules := flag.String("modules", "", "comma-separated modules to load at boot")
	lease := flag.Duration("lease", 0, "registry lease TTL (default 5s)")
	sync := flag.Duration("sync", 0, "anti-entropy sync interval for a hosted replica (default 1s)")
	flag.Parse()

	cfg := deploy.DaemonConfig{
		Node:         *node,
		Zone:         *zone,
		Listen:       *listen,
		Advertise:    *advertise,
		LeaseTTL:     *lease,
		SyncInterval: *sync,
		Peers:        map[string]string{},
	}
	if cfg.Node == "" {
		die(fmt.Errorf("missing -node"))
	}
	if *gridPath != "" {
		src, err := os.ReadFile(*gridPath)
		die(err)
		topo, err := deploy.ParseTopology(src)
		die(err)
		zones := topo.ZoneMap()
		z, ok := zones[cfg.Node]
		if !ok {
			die(fmt.Errorf("node %q is not in grid %q", cfg.Node, topo.Name))
		}
		if cfg.Zone == "" {
			cfg.Zone = z
		}
		cfg.Registries = topo.RegistryPlacement()
	}
	if *registries != "" {
		cfg.Registries = deploy.SplitList(*registries)
	}
	if *registry && !slices.Contains(cfg.Registries, cfg.Node) {
		cfg.Registries = append(cfg.Registries, cfg.Node)
	}
	for _, kv := range deploy.SplitList(*peers) {
		n, a, ok := strings.Cut(kv, "=")
		if !ok {
			die(fmt.Errorf("bad -peers entry %q (want node=host:port)", kv))
		}
		cfg.Peers[n] = a
	}
	cfg.Modules = deploy.SplitList(*modules)

	d, err := deploy.StartDaemon(cfg)
	die(err)
	fmt.Printf("padico-d: %s serving on %s (registries %s)\n",
		d.Node(), d.Addr(), strings.Join(d.Registries(), ","))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	fmt.Printf("padico-d: %s shutting down\n", d.Node())
	d.Close()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "padico-d:", err)
		os.Exit(1)
	}
}
