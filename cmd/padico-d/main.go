// Command padico-d is the Padico node daemon: one long-lived OS process per
// grid machine, hosting a genuine Padico process (module system, VLink,
// middleware mix) on the wall clock and serving its gatekeeper — plus,
// where placed, a registry replica — on a real TCP listener. Operators
// steer a running set of daemons with `padico-ctl -attach host:port[,...]`;
// daemons find each other through seeded peer endpoints and the endpoints
// advertised in registry entries. `padico-launch` spawns and supervises a
// whole grid of these from one topology XML.
//
// Usage:
//
//	padico-d -node n0 [-listen 127.0.0.1:7701] [-advertise host:port]
//	         [-grid topology.xml] [-zone z] [-registry] [-registries n0,n1]
//	         [-peers n1=host:port,...] [-modules soap,...]
//	         [-lease 5s] [-sync 1s]
//
// With -grid, the node's zone and the default registry placement (first
// node of every zone) come from the same topology XML the simulator uses,
// so a live deployment and a simulated one agree on where replicas live.
// -registry forces a replica onto this node; -registries overrides the
// placement entirely. Peer endpoints seed the address book — minimally the
// replicas, so the first announce can land; everything else is learned from
// the registry at run time.
//
// The daemon prints "padico-d: <node> serving on <addr>" once up, and shuts
// down cleanly on SIGINT/SIGTERM: it withdraws its registry entries while
// its links are still up, so the grid forgets it within one sync interval
// instead of a lease TTL. Exit codes are supervision-friendly: 0 on clean
// shutdown, 1 on a runtime failure (a supervisor retries), 2 when the
// configuration itself is refused (retrying cannot help).
package main

import (
	"os"

	"padico/internal/launch"
)

func main() { os.Exit(launch.DaemonMain(os.Args[1:], os.Stdout, os.Stderr)) }
