module padico

go 1.22
