package ccm

import (
	"encoding/xml"
	"fmt"
	"strings"

	"padico/internal/idl"
	"padico/internal/orb"
)

// ContainerKey is the object key of every container's daemon servant.
const ContainerKey = "CCMContainer"

// ContainerIface is the container daemon's interface.
const ContainerIface = "Components::Container"

func registerContainerIDL(repo *idl.Repository) {
	if _, ok := repo.Interface(ContainerIface); ok {
		return
	}
	str := idl.Basic(idl.KindString)
	repo.RegisterInterface(&idl.Interface{
		Name: ContainerIface,
		Ops: []*idl.Operation{
			{Name: "create_component", Result: str, Params: []idl.Param{
				{Name: "class", Dir: idl.In, Type: str},
				{Name: "name", Dir: idl.In, Type: str}}},
			{Name: "remove_component", Result: idl.Basic(idl.KindVoid), Params: []idl.Param{
				{Name: "name", Dir: idl.In, Type: str}}},
			{Name: "installed", Result: idl.SequenceOf(str)},
		},
	})
}

// containerServant exposes Create/Remove over CORBA for remote deployment.
type containerServant struct{ c *Container }

func (s *containerServant) Invoke(op string, args []any) ([]any, error) {
	switch op {
	case "create_component":
		inst, err := s.c.Create(args[0].(string), args[1].(string))
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{inst.IOR().String()}, nil
	case "remove_component":
		if err := s.c.Remove(args[0].(string)); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "installed":
		return []any{s.c.Classes()}, nil
	default:
		return nil, &orb.SystemException{Msg: "BAD_OPERATION: " + op}
	}
}

// Descriptors. The CCM deployment model ships components as packages with
// XML descriptors; the assembly descriptor wires instances together.

// SoftPkg is a software package descriptor (OSD-style).
type SoftPkg struct {
	XMLName xml.Name   `xml:"softpkg"`
	Name    string     `xml:"name,attr"`
	Version string     `xml:"version,attr"`
	Entry   string     `xml:"implementation>entry"`
	IDLFile string     `xml:"implementation>idl"`
	Ports   []PortDesc `xml:"ports>port"`
}

// PortDesc declares one port in a package descriptor.
type PortDesc struct {
	Kind  string `xml:"kind,attr"` // facet|receptacle|emits|consumes|attribute
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"` // IDL interface / event struct / basic type
	Value string `xml:"value,attr"`
}

// ParseSoftPkg decodes a package descriptor.
func ParseSoftPkg(data []byte) (*SoftPkg, error) {
	var p SoftPkg
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("ccm: softpkg descriptor: %w", err)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("ccm: softpkg descriptor missing name")
	}
	return &p, nil
}

// Assembly is an assembly descriptor: which instances to create where, and
// how to connect them.
type Assembly struct {
	XMLName     xml.Name       `xml:"assembly"`
	Name        string         `xml:"name,attr"`
	Instances   []InstanceDecl `xml:"instance"`
	Connections []Connection   `xml:"connection"`
}

// InstanceDecl places one component instance on a host.
type InstanceDecl struct {
	ID        string     `xml:"id,attr"`
	Component string     `xml:"component,attr"`
	Host      string     `xml:"host,attr"`
	Attrs     []AttrDecl `xml:"attribute"`
}

// AttrDecl configures one attribute.
type AttrDecl struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Connection wires a receptacle to a facet or an event source to a sink.
type Connection struct {
	Kind string  `xml:"kind,attr"` // "facet" or "event"
	From PortRef `xml:"from"`
	To   PortRef `xml:"to"`
}

// PortRef names one side of a connection.
type PortRef struct {
	Instance string `xml:"instance,attr"`
	Port     string `xml:"port,attr"`
}

// ParseAssembly decodes an assembly descriptor.
func ParseAssembly(data []byte) (*Assembly, error) {
	var a Assembly
	if err := xml.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("ccm: assembly descriptor: %w", err)
	}
	ids := map[string]bool{}
	for _, inst := range a.Instances {
		if inst.ID == "" || inst.Component == "" || inst.Host == "" {
			return nil, fmt.Errorf("ccm: assembly instance needs id, component and host")
		}
		if ids[inst.ID] {
			return nil, fmt.Errorf("ccm: duplicate instance id %q", inst.ID)
		}
		ids[inst.ID] = true
	}
	for _, conn := range a.Connections {
		if !ids[conn.From.Instance] || !ids[conn.To.Instance] {
			return nil, fmt.Errorf("ccm: connection references unknown instance (%s→%s)",
				conn.From.Instance, conn.To.Instance)
		}
		if conn.Kind != "facet" && conn.Kind != "event" {
			return nil, fmt.Errorf("ccm: unknown connection kind %q", conn.Kind)
		}
	}
	return &a, nil
}

// Deployer executes assemblies from any node, driving remote containers
// through their daemon servants — the CCM deployment model over plain
// CORBA.
type Deployer struct {
	orb *orb.ORB
}

// NewDeployer builds a deployer on the given ORB.
func NewDeployer(o *orb.ORB) *Deployer {
	registerContainerIDL(o.Repo())
	RegisterComponentIDL(o.Repo())
	return &Deployer{orb: o}
}

// Deployment is the result of executing an assembly: component references
// by instance id.
type Deployment struct {
	Assembly *Assembly
	Refs     map[string]*orb.ObjRef // instance id → CCMObject ref
	deployer *Deployer
}

// Execute instantiates every declared instance on its host's container,
// applies attributes, wires connections, then signals
// configuration_complete everywhere.
func (d *Deployer) Execute(a *Assembly) (*Deployment, error) {
	dep := &Deployment{Assembly: a, Refs: make(map[string]*orb.ObjRef), deployer: d}
	// Create instances.
	for _, inst := range a.Instances {
		daemon, err := d.orb.Object(orb.IOR{Node: inst.Host, Key: ContainerKey, Iface: ContainerIface})
		if err != nil {
			return nil, err
		}
		vals, err := daemon.Invoke("create_component", inst.Component, inst.ID)
		if err != nil {
			return nil, fmt.Errorf("ccm: creating %s on %s: %w", inst.ID, inst.Host, err)
		}
		ref, err := d.orb.StringToObject(vals[0].(string))
		if err != nil {
			return nil, err
		}
		dep.Refs[inst.ID] = ref
		for _, attr := range inst.Attrs {
			if _, err := ref.Invoke("configure", attr.Name, attr.Value); err != nil {
				return nil, fmt.Errorf("ccm: configuring %s.%s: %w", inst.ID, attr.Name, err)
			}
		}
	}
	// Wire connections.
	for _, conn := range a.Connections {
		from, to := dep.Refs[conn.From.Instance], dep.Refs[conn.To.Instance]
		switch conn.Kind {
		case "facet":
			vals, err := to.Invoke("provide_facet", conn.To.Port)
			if err != nil {
				return nil, fmt.Errorf("ccm: resolving %s.%s: %w", conn.To.Instance, conn.To.Port, err)
			}
			if _, err := from.Invoke("connect", conn.From.Port, vals[0].(string)); err != nil {
				return nil, fmt.Errorf("ccm: connecting %s.%s: %w", conn.From.Instance, conn.From.Port, err)
			}
		case "event":
			vals, err := to.Invoke("provide_facet", "#"+conn.To.Port)
			if err != nil {
				return nil, fmt.Errorf("ccm: resolving sink %s.%s: %w", conn.To.Instance, conn.To.Port, err)
			}
			if _, err := from.Invoke("subscribe", conn.From.Port, vals[0].(string)); err != nil {
				return nil, fmt.Errorf("ccm: subscribing %s.%s: %w", conn.From.Instance, conn.From.Port, err)
			}
		}
	}
	// Configuration complete.
	for id, ref := range dep.Refs {
		if _, err := ref.Invoke("configuration_complete"); err != nil {
			return nil, fmt.Errorf("ccm: completing %s: %w", id, err)
		}
	}
	return dep, nil
}

// Teardown removes every instance of the deployment.
func (dep *Deployment) Teardown() error {
	var firstErr error
	for _, inst := range dep.Assembly.Instances {
		daemon, err := dep.deployer.orb.Object(orb.IOR{
			Node: inst.Host, Key: ContainerKey, Iface: ContainerIface})
		if err == nil {
			_, err = daemon.Invoke("remove_component", inst.ID)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ClassFromSoftPkg builds a Class skeleton from a package descriptor; the
// caller supplies the implementation factory (the "entry point" that a real
// CCM platform would dlopen from the package archive).
func ClassFromSoftPkg(pkg *SoftPkg, factory func() Impl) *Class {
	class := &Class{
		Name:        pkg.Entry,
		Version:     pkg.Version,
		Facets:      map[string]string{},
		Receptacles: map[string]string{},
		Emits:       map[string]string{},
		Consumes:    map[string]string{},
		Attrs:       map[string]string{},
		New:         factory,
	}
	if class.Name == "" {
		class.Name = pkg.Name
	}
	for _, p := range pkg.Ports {
		switch strings.ToLower(p.Kind) {
		case "facet":
			class.Facets[p.Name] = p.Type
		case "receptacle":
			class.Receptacles[p.Name] = p.Type
		case "emits":
			class.Emits[p.Name] = p.Type
		case "consumes":
			class.Consumes[p.Name] = p.Type
		case "attribute":
			class.Attrs[p.Name] = p.Type
		}
	}
	return class
}
