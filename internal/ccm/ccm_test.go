package ccm

import (
	"fmt"
	"strings"
	"testing"

	"padico/internal/arbitration"
	"padico/internal/idl"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

const coupleIDL = `
module Demo {
    typedef sequence<double> Vec;
    struct Tick { long step; double t; };

    interface Solver {
        double solve(in Vec data);
    };
};
`

// solverComp provides facet "svc" (Demo::Solver), an attribute "scale" and
// emits "done" events.
type solverComp struct {
	Base
	inst  *Instance // set after creation by the test when needed
	scale float64
	done  func() *Instance
}

func (s *solverComp) Facet(name string) orb.Servant {
	if name != "svc" {
		return nil
	}
	return orb.HandlerMap{
		"solve": func(args []any) ([]any, error) {
			sum := 0.0
			for _, x := range args[0].([]float64) {
				sum += x
			}
			return []any{sum * s.scale}, nil
		},
	}
}

func (s *solverComp) SetAttr(name string, v any) error {
	if name != "scale" {
		return fmt.Errorf("no attr %s", name)
	}
	s.scale = v.(float64)
	return nil
}

var solverClass = &Class{
	Name:    "SolverComp",
	Version: "1.0",
	Facets:  map[string]string{"svc": "Demo::Solver"},
	Emits:   map[string]string{"done": "Demo::Tick"},
	Attrs:   map[string]string{"scale": "double"},
	New:     func() Impl { return &solverComp{scale: 1} },
}

// clientComp has a receptacle "solver" and consumes "ticks" events.
type clientComp struct {
	Base
	solver *orb.ObjRef
	ticks  chan map[string]any
	ready  bool
}

func (c *clientComp) Connect(recep string, ref *orb.ObjRef) error {
	if recep != "solver" {
		return fmt.Errorf("no receptacle %s", recep)
	}
	c.solver = ref
	return nil
}

func (c *clientComp) Disconnect(recep string) error {
	c.solver = nil
	return nil
}

func (c *clientComp) Consume(sink string, ev map[string]any) {
	c.ticks <- ev
}

func (c *clientComp) ConfigurationComplete() error {
	c.ready = true
	return nil
}

var clientClass = &Class{
	Name:        "ClientComp",
	Receptacles: map[string]string{"solver": "Demo::Solver"},
	Consumes:    map[string]string{"ticks": "Demo::Tick"},
	New:         func() Impl { return &clientComp{ticks: make(chan map[string]any, 8)} },
}

type rig struct {
	sim        *vtime.Sim
	arb        *arbitration.Arbiter
	orbs       map[string]*orb.ORB
	containers map[string]*Container
	linkers    []*vlink.Linker
}

func newRig(t *testing.T, hosts ...string) *rig {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	var nodes []*simnet.Node
	for _, h := range hosts {
		nodes = append(nodes, net.NewNode(h))
	}
	arb := arbitration.New(net)
	if _, err := arb.AddSAN(net.NewMyrinet2000("myri0", nodes)); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.AddSock(net.NewEthernet100("eth0", nodes)); err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: s, arb: arb, orbs: map[string]*orb.ORB{}, containers: map[string]*Container{}}
	for _, nd := range nodes {
		ln := vlink.NewLinker(arb, nd)
		r.linkers = append(r.linkers, ln)
		repo := idl.NewRepository()
		repo.MustParse(coupleIDL)
		o, err := orb.New(orb.Config{
			Transport: orb.VLinkTransport{Linker: ln},
			Repo:      repo, Profile: simnet.OmniORB3, Runtime: s, Node: nd,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.orbs[nd.Name] = o
		c, err := NewContainer(o, "container@"+nd.Name)
		if err != nil {
			t.Fatal(err)
		}
		r.containers[nd.Name] = c
	}
	return r
}

func (r *rig) close() {
	for _, o := range r.orbs {
		o.Shutdown()
	}
	for _, ln := range r.linkers {
		ln.Close()
	}
	r.arb.Close()
}

func TestComponentLifecycleAndFacetCall(t *testing.T) {
	r := newRig(t, "hostA", "hostB")
	r.sim.Run(func() {
		defer r.close()
		ca, cb := r.containers["hostA"], r.containers["hostB"]
		if err := ca.Install(solverClass); err != nil {
			t.Fatal(err)
		}
		if err := cb.Install(clientClass); err != nil {
			t.Fatal(err)
		}
		solver, err := ca.Create("SolverComp", "solver1")
		if err != nil {
			t.Fatalf("create solver: %v", err)
		}
		client, err := cb.Create("ClientComp", "client1")
		if err != nil {
			t.Fatalf("create client: %v", err)
		}
		// Wire through the equivalent interface, CORBA-style.
		clientRef, _ := r.orbs["hostA"].Object(client.IOR())
		facetIOR, _ := solver.FacetIOR("svc")
		if _, err := clientRef.Invoke("connect", "solver", facetIOR.String()); err != nil {
			t.Fatalf("connect: %v", err)
		}
		// The client's receptacle now reaches the remote solver.
		impl := client.Impl().(*clientComp)
		vals, err := impl.solver.Invoke("solve", []float64{1, 2, 3})
		if err != nil || vals[0].(float64) != 6 {
			t.Fatalf("solve = %v, %v", vals, err)
		}
	})
}

func TestAttributesConfiguredByType(t *testing.T) {
	r := newRig(t, "hostA")
	r.sim.Run(func() {
		defer r.close()
		c := r.containers["hostA"]
		_ = c.Install(solverClass)
		inst, _ := c.Create("SolverComp", "s1")
		ref, _ := r.orbs["hostA"].Object(inst.IOR())
		if _, err := ref.Invoke("configure", "scale", "2.5"); err != nil {
			t.Fatalf("configure: %v", err)
		}
		if got := inst.Impl().(*solverComp).scale; got != 2.5 {
			t.Fatalf("scale = %v", got)
		}
		if _, err := ref.Invoke("configure", "ghost", "1"); err == nil {
			t.Fatal("unknown attribute configured")
		}
		if _, err := ref.Invoke("configure", "scale", "not-a-number"); err == nil {
			t.Fatal("junk value accepted")
		}
	})
}

func TestEventsFlowBetweenComponents(t *testing.T) {
	r := newRig(t, "hostA", "hostB")
	r.sim.Run(func() {
		defer r.close()
		_ = r.containers["hostA"].Install(solverClass)
		_ = r.containers["hostB"].Install(clientClass)
		solver, _ := r.containers["hostA"].Create("SolverComp", "s1")
		client, _ := r.containers["hostB"].Create("ClientComp", "c1")
		sinkIOR, err := client.SinkIOR("ticks")
		if err != nil {
			t.Fatalf("sink ior: %v", err)
		}
		if err := solver.Subscribe("done", sinkIOR); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		if err := solver.Emit("done", map[string]any{"step": int32(7), "t": 0.5}); err != nil {
			t.Fatalf("emit: %v", err)
		}
		ev := <-client.Impl().(*clientComp).ticks
		if ev["step"].(int32) != 7 || ev["t"].(float64) != 0.5 {
			t.Fatalf("event = %v", ev)
		}
		// Emitting on an undeclared source fails.
		if err := solver.Emit("ghost", nil); err == nil {
			t.Fatal("ghost source emitted")
		}
	})
}

func TestContainerErrors(t *testing.T) {
	r := newRig(t, "hostA")
	r.sim.Run(func() {
		defer r.close()
		c := r.containers["hostA"]
		if _, err := c.Create("Unknown", "x"); err == nil {
			t.Error("created unknown class")
		}
		_ = c.Install(solverClass)
		if err := c.Install(solverClass); err == nil {
			t.Error("double install succeeded")
		}
		if _, err := c.Create("SolverComp", "dup"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Create("SolverComp", "dup"); err == nil {
			t.Error("duplicate instance created")
		}
		if err := c.Remove("dup"); err != nil {
			t.Errorf("remove: %v", err)
		}
		if err := c.Remove("dup"); err == nil {
			t.Error("double remove succeeded")
		}
		// After removal the name is reusable.
		if _, err := c.Create("SolverComp", "dup"); err != nil {
			t.Errorf("recreate: %v", err)
		}
	})
}

const assemblyXML = `
<assembly name="coupling">
  <instance id="solver" component="SolverComp" host="hostA">
    <attribute name="scale" value="3"/>
  </instance>
  <instance id="client" component="ClientComp" host="hostB"/>
  <connection kind="facet">
    <from instance="client" port="solver"/>
    <to instance="solver" port="svc"/>
  </connection>
  <connection kind="event">
    <from instance="solver" port="done"/>
    <to instance="client" port="ticks"/>
  </connection>
</assembly>`

func TestDeployerExecutesAssembly(t *testing.T) {
	r := newRig(t, "hostA", "hostB", "hostC")
	r.sim.Run(func() {
		defer r.close()
		_ = r.containers["hostA"].Install(solverClass)
		_ = r.containers["hostB"].Install(clientClass)
		a, err := ParseAssembly([]byte(assemblyXML))
		if err != nil {
			t.Fatalf("parse assembly: %v", err)
		}
		// Deploy from a third node, like a real deployment tool.
		dep, err := NewDeployer(r.orbs["hostC"]).Execute(a)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		client, _ := r.containers["hostB"].Instance("client")
		impl := client.Impl().(*clientComp)
		if !impl.ready {
			t.Error("configuration_complete not delivered")
		}
		vals, err := impl.solver.Invoke("solve", []float64{1, 1})
		if err != nil || vals[0].(float64) != 6 { // (1+1) * scale 3
			t.Fatalf("deployed solve = %v, %v", vals, err)
		}
		// Event path wired by the deployer.
		solver, _ := r.containers["hostA"].Instance("solver")
		if err := solver.Emit("done", map[string]any{"step": int32(1), "t": 1.0}); err != nil {
			t.Fatalf("emit: %v", err)
		}
		ev := <-impl.ticks
		if ev["step"].(int32) != 1 {
			t.Fatalf("event = %v", ev)
		}
		if err := dep.Teardown(); err != nil {
			t.Fatalf("teardown: %v", err)
		}
		if _, ok := r.containers["hostA"].Instance("solver"); ok {
			t.Error("solver survived teardown")
		}
	})
}

func TestAssemblyValidation(t *testing.T) {
	cases := map[string]string{
		"unknown instance": `<assembly name="a">
			<instance id="x" component="C" host="h"/>
			<connection kind="facet"><from instance="ghost" port="p"/><to instance="x" port="q"/></connection>
		</assembly>`,
		"duplicate id": `<assembly name="a">
			<instance id="x" component="C" host="h"/>
			<instance id="x" component="C" host="h"/>
		</assembly>`,
		"bad kind": `<assembly name="a">
			<instance id="x" component="C" host="h"/>
			<instance id="y" component="C" host="h"/>
			<connection kind="wormhole"><from instance="x" port="p"/><to instance="y" port="q"/></connection>
		</assembly>`,
		"missing host": `<assembly name="a"><instance id="x" component="C"/></assembly>`,
		"not xml":      `{`,
	}
	for name, src := range cases {
		if _, err := ParseAssembly([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSoftPkgDescriptor(t *testing.T) {
	pkg, err := ParseSoftPkg([]byte(`
		<softpkg name="solver" version="1.2">
			<implementation>
				<entry>SolverComp</entry>
				<idl>solver.idl</idl>
			</implementation>
			<ports>
				<port kind="facet" name="svc" type="Demo::Solver"/>
				<port kind="receptacle" name="log" type="Demo::Logger"/>
				<port kind="emits" name="done" type="Demo::Tick"/>
				<port kind="consumes" name="ctl" type="Demo::Tick"/>
				<port kind="attribute" name="scale" type="double"/>
			</ports>
		</softpkg>`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if pkg.Name != "solver" || pkg.Version != "1.2" || pkg.Entry != "SolverComp" {
		t.Fatalf("pkg = %+v", pkg)
	}
	class := ClassFromSoftPkg(pkg, func() Impl { return &solverComp{} })
	if class.Facets["svc"] != "Demo::Solver" || class.Receptacles["log"] != "Demo::Logger" ||
		class.Emits["done"] != "Demo::Tick" || class.Consumes["ctl"] != "Demo::Tick" ||
		class.Attrs["scale"] != "double" {
		t.Fatalf("class = %+v", class)
	}
	if _, err := ParseSoftPkg([]byte(`<softpkg version="1"></softpkg>`)); err == nil {
		t.Error("nameless package accepted")
	}
}

func TestDescribeAndTypeChecking(t *testing.T) {
	r := newRig(t, "hostA", "hostB")
	r.sim.Run(func() {
		defer r.close()
		_ = r.containers["hostA"].Install(solverClass)
		_ = r.containers["hostB"].Install(clientClass)
		solver, _ := r.containers["hostA"].Create("SolverComp", "s1")
		client, _ := r.containers["hostB"].Create("ClientComp", "c1")
		ref, _ := r.orbs["hostB"].Object(solver.IOR())
		vals, err := ref.Invoke("describe")
		if err != nil {
			t.Fatalf("describe: %v", err)
		}
		desc := strings.Join(vals[0].([]string), ",")
		if !strings.Contains(desc, "facet:svc") || !strings.Contains(desc, "emits:done") {
			t.Fatalf("describe = %s", desc)
		}
		// Connecting a receptacle to a wrong-typed facet is refused.
		clientRef, _ := r.orbs["hostA"].Object(client.IOR())
		bogus := orb.IOR{Node: "hostA", Key: "s1.svc", Iface: "Demo::WrongIface"}
		if _, err := clientRef.Invoke("connect", "solver", bogus.String()); err == nil {
			t.Fatal("type-mismatched connect succeeded")
		}
	})
}

func TestParseAttrTypes(t *testing.T) {
	for _, tc := range []struct {
		typ, raw string
		want     any
	}{
		{"string", "hi", "hi"},
		{"boolean", "true", true},
		{"long", "-7", int32(-7)},
		{"long long", "900000000000", int64(900000000000)},
		{"double", "2.5", 2.5},
		{"float", "1.5", float32(1.5)},
	} {
		got, err := ParseAttr(tc.typ, tc.raw)
		if err != nil || got != tc.want {
			t.Errorf("ParseAttr(%s, %s) = %v, %v", tc.typ, tc.raw, got, err)
		}
	}
	if _, err := ParseAttr("octet", "1"); err == nil {
		t.Error("unsupported attr type accepted")
	}
	if _, err := ParseAttr("long", "x"); err == nil {
		t.Error("junk long accepted")
	}
}
