// Package ccm implements the CORBA Component Model subset Padico builds on
// (§3.2): component classes with facets, receptacles, event sources/sinks
// and attributes; homes and containers; the CCMObject equivalent interface
// for third-party wiring; XML software-package and assembly descriptors;
// and a deployment engine that instantiates and connects components across
// the grid through plain CORBA calls.
package ccm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"padico/internal/cdr"
	"padico/internal/idl"
	"padico/internal/orb"
)

// Impl is a component implementation ("executor" in CCM terms). The
// container calls it; user code implements it (or embeds Base for
// defaults).
type Impl interface {
	// Facet returns the servant implementing a provided port.
	Facet(name string) orb.Servant
	// Connect injects a reference into a receptacle.
	Connect(receptacle string, ref *orb.ObjRef) error
	// Disconnect clears a receptacle.
	Disconnect(receptacle string) error
	// Consume delivers an event to a sink.
	Consume(sink string, event map[string]any)
	// SetAttr configures an attribute.
	SetAttr(name string, v any) error
	// ConfigurationComplete ends the configuration phase.
	ConfigurationComplete() error
}

// Base provides no-op defaults for Impl; embed it and override what the
// component uses.
type Base struct{}

// Facet implements Impl.
func (Base) Facet(string) orb.Servant { return nil }

// Connect implements Impl.
func (Base) Connect(string, *orb.ObjRef) error { return nil }

// Disconnect implements Impl.
func (Base) Disconnect(string) error { return nil }

// Consume implements Impl.
func (Base) Consume(string, map[string]any) {}

// SetAttr implements Impl.
func (Base) SetAttr(string, any) error { return nil }

// ConfigurationComplete implements Impl.
func (Base) ConfigurationComplete() error { return nil }

// Class statically describes a component type (the contents of its
// software package): its ports and an implementation factory.
type Class struct {
	Name        string
	Version     string
	Facets      map[string]string // facet name → IDL interface
	Receptacles map[string]string // receptacle name → IDL interface
	Emits       map[string]string // event source → IDL struct type
	Consumes    map[string]string // event sink → IDL struct type
	Attrs       map[string]string // attribute → IDL basic type name
	New         func() Impl
}

// CCMObjectIface is the equivalent interface every component instance
// exposes for third-party composition and deployment.
const CCMObjectIface = "Components::CCMObject"

// EventConsumerIface is the interface of event sink ports.
const EventConsumerIface = "Components::EventConsumer"

// RegisterComponentIDL installs the CCM infrastructure interfaces.
func RegisterComponentIDL(repo *idl.Repository) {
	if _, ok := repo.Interface(CCMObjectIface); ok {
		return
	}
	str := idl.Basic(idl.KindString)
	void := idl.Basic(idl.KindVoid)
	repo.RegisterInterface(&idl.Interface{
		Name: CCMObjectIface,
		Ops: []*idl.Operation{
			{Name: "provide_facet", Result: str, Params: []idl.Param{
				{Name: "name", Dir: idl.In, Type: str}}},
			{Name: "connect", Result: void, Params: []idl.Param{
				{Name: "receptacle", Dir: idl.In, Type: str},
				{Name: "ref", Dir: idl.In, Type: str}}},
			{Name: "disconnect", Result: void, Params: []idl.Param{
				{Name: "receptacle", Dir: idl.In, Type: str}}},
			{Name: "subscribe", Result: void, Params: []idl.Param{
				{Name: "source", Dir: idl.In, Type: str},
				{Name: "consumer", Dir: idl.In, Type: str}}},
			{Name: "configure", Result: void, Params: []idl.Param{
				{Name: "attr", Dir: idl.In, Type: str},
				{Name: "value", Dir: idl.In, Type: str}}},
			{Name: "configuration_complete", Result: void},
			{Name: "describe", Result: idl.SequenceOf(str)},
		},
	})
	repo.RegisterInterface(&idl.Interface{
		Name: EventConsumerIface,
		Ops: []*idl.Operation{
			{Name: "push", Result: void, Params: []idl.Param{
				{Name: "type", Dir: idl.In, Type: str},
				{Name: "data", Dir: idl.In, Type: idl.SequenceOf(idl.Basic(idl.KindOctet))}}},
		},
	})
}

// Container hosts component instances on one Padico process, hiding system
// services from them (the CCM execution model).
type Container struct {
	orb  *orb.ORB
	name string

	mu        sync.Mutex
	classes   map[string]*Class
	instances map[string]*Instance
}

// NewContainer builds a container on an ORB and exposes its daemon servant
// so deployers can create components remotely.
func NewContainer(o *orb.ORB, name string) (*Container, error) {
	RegisterComponentIDL(o.Repo())
	registerContainerIDL(o.Repo())
	c := &Container{
		orb:       o,
		name:      name,
		classes:   make(map[string]*Class),
		instances: make(map[string]*Instance),
	}
	if _, err := o.Activate(ContainerKey, ContainerIface, &containerServant{c: c}); err != nil {
		return nil, err
	}
	return c, nil
}

// ORB returns the hosting broker.
func (c *Container) ORB() *orb.ORB { return c.orb }

// Name returns the container's name.
func (c *Container) Name() string { return c.name }

// Install registers a component class (deploying its package).
func (c *Container) Install(class *Class) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.classes[class.Name]; dup {
		return fmt.Errorf("ccm: class %q already installed in %s", class.Name, c.name)
	}
	c.classes[class.Name] = class
	return nil
}

// Classes lists installed component classes.
func (c *Container) Classes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for n := range c.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Create instantiates a component (the home's create operation) and
// activates its ports on the ORB.
func (c *Container) Create(className, instName string) (*Instance, error) {
	c.mu.Lock()
	class, ok := c.classes[className]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("ccm: class %q not installed in %s", className, c.name)
	}
	if _, dup := c.instances[instName]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("ccm: instance %q already exists", instName)
	}
	c.mu.Unlock()

	inst := &Instance{
		Name:        instName,
		class:       class,
		impl:        class.New(),
		container:   c,
		facets:      make(map[string]orb.IOR),
		subscribers: make(map[string][]orb.IOR),
	}
	// Activate facet servants.
	for facet, iface := range class.Facets {
		sv := inst.impl.Facet(facet)
		if sv == nil {
			return nil, fmt.Errorf("ccm: %s has no servant for facet %q", className, facet)
		}
		ior, err := c.orb.Activate(instName+"."+facet, iface, sv)
		if err != nil {
			return nil, err
		}
		inst.facets[facet] = ior
	}
	// Activate event sinks.
	for sink := range class.Consumes {
		ior, err := c.orb.Activate(instName+"#"+sink, EventConsumerIface,
			&sinkServant{inst: inst, sink: sink})
		if err != nil {
			return nil, err
		}
		inst.facets["#"+sink] = ior
	}
	// Activate the equivalent interface.
	ior, err := c.orb.Activate(instName, CCMObjectIface, &ccmObjectServant{inst: inst})
	if err != nil {
		return nil, err
	}
	inst.self = ior

	c.mu.Lock()
	c.instances[instName] = inst
	c.mu.Unlock()
	return inst, nil
}

// Remove deactivates an instance and its ports.
func (c *Container) Remove(instName string) error {
	c.mu.Lock()
	inst, ok := c.instances[instName]
	delete(c.instances, instName)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("ccm: no instance %q", instName)
	}
	for facet := range inst.class.Facets {
		c.orb.Deactivate(instName + "." + facet)
	}
	for sink := range inst.class.Consumes {
		c.orb.Deactivate(instName + "#" + sink)
	}
	c.orb.Deactivate(instName)
	return nil
}

// Instance looks a live instance up.
func (c *Container) Instance(name string) (*Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.instances[name]
	return i, ok
}

// Instance is a live component.
type Instance struct {
	Name      string
	class     *Class
	impl      Impl
	container *Container
	self      orb.IOR

	mu          sync.Mutex
	facets      map[string]orb.IOR
	subscribers map[string][]orb.IOR
	configured  bool
}

// IOR returns the instance's equivalent-interface reference.
func (i *Instance) IOR() orb.IOR { return i.self }

// Class returns the instance's component class.
func (i *Instance) Class() *Class { return i.class }

// Impl exposes the implementation (for local white-box access in tests).
func (i *Instance) Impl() Impl { return i.impl }

// FacetIOR returns the reference of a provided port.
func (i *Instance) FacetIOR(name string) (orb.IOR, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	ior, ok := i.facets[name]
	if !ok {
		return orb.IOR{}, fmt.Errorf("ccm: %s has no facet %q", i.Name, name)
	}
	return ior, nil
}

// SinkIOR returns the reference of an event sink port.
func (i *Instance) SinkIOR(name string) (orb.IOR, error) { return i.FacetIOR("#" + name) }

// Emit publishes an event on one of the instance's sources: it is pushed
// to every subscribed consumer.
func (i *Instance) Emit(source string, event map[string]any) error {
	evType, ok := i.class.Emits[source]
	if !ok {
		return fmt.Errorf("ccm: %s has no event source %q", i.Name, source)
	}
	t, ok := i.container.orb.Repo().Type(evType)
	if !ok {
		return fmt.Errorf("ccm: unknown event type %q", evType)
	}
	w := cdr.NewWriter(cdr.BigEndian)
	if err := orb.MarshalValue(w, t, event); err != nil {
		return fmt.Errorf("ccm: marshalling %s event: %w", source, err)
	}
	i.mu.Lock()
	subs := append([]orb.IOR(nil), i.subscribers[source]...)
	i.mu.Unlock()
	for _, sub := range subs {
		ref, err := i.container.orb.Object(sub)
		if err != nil {
			return err
		}
		if _, err := ref.Invoke("push", evType, w.Bytes()); err != nil {
			return fmt.Errorf("ccm: pushing %s to %s: %w", source, sub.Node, err)
		}
	}
	return nil
}

// Subscribe registers a consumer reference on an event source.
func (i *Instance) Subscribe(source string, consumer orb.IOR) error {
	if _, ok := i.class.Emits[source]; !ok {
		return fmt.Errorf("ccm: %s has no event source %q", i.Name, source)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.subscribers[source] = append(i.subscribers[source], consumer)
	return nil
}

// sinkServant adapts inbound pushes to Impl.Consume.
type sinkServant struct {
	inst *Instance
	sink string
}

func (s *sinkServant) Invoke(op string, args []any) ([]any, error) {
	if op != "push" {
		return nil, &orb.SystemException{Msg: "BAD_OPERATION: " + op}
	}
	evType := args[0].(string)
	t, ok := s.inst.container.orb.Repo().Type(evType)
	if !ok {
		return nil, &orb.UserException{Msg: "unknown event type " + evType}
	}
	r := cdr.NewReader(args[1].([]byte), cdr.BigEndian)
	v, err := orb.UnmarshalValue(r, t)
	if err != nil {
		return nil, &orb.UserException{Msg: "bad event payload: " + err.Error()}
	}
	s.inst.impl.Consume(s.sink, v.(map[string]any))
	return []any{}, nil
}

// ccmObjectServant implements the equivalent interface.
type ccmObjectServant struct{ inst *Instance }

func (s *ccmObjectServant) Invoke(op string, args []any) ([]any, error) {
	i := s.inst
	switch op {
	case "provide_facet":
		ior, err := i.FacetIOR(args[0].(string))
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{ior.String()}, nil
	case "connect":
		recep := args[0].(string)
		want, ok := i.class.Receptacles[recep]
		if !ok {
			return nil, &orb.UserException{Msg: "no receptacle " + recep}
		}
		ior, err := orb.ParseIOR(args[1].(string))
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		if ior.Iface != want {
			return nil, &orb.UserException{Msg: fmt.Sprintf(
				"type mismatch: receptacle %s wants %s, got %s", recep, want, ior.Iface)}
		}
		ref, err := i.container.orb.Object(ior)
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		if err := i.impl.Connect(recep, ref); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "disconnect":
		if err := i.impl.Disconnect(args[0].(string)); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "subscribe":
		ior, err := orb.ParseIOR(args[1].(string))
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		if err := i.Subscribe(args[0].(string), ior); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "configure":
		name, raw := args[0].(string), args[1].(string)
		typeName, ok := i.class.Attrs[name]
		if !ok {
			return nil, &orb.UserException{Msg: "no attribute " + name}
		}
		v, err := ParseAttr(typeName, raw)
		if err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		if err := i.impl.SetAttr(name, v); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "configuration_complete":
		i.mu.Lock()
		i.configured = true
		i.mu.Unlock()
		if err := i.impl.ConfigurationComplete(); err != nil {
			return nil, &orb.UserException{Msg: err.Error()}
		}
		return []any{}, nil
	case "describe":
		var desc []string
		for f := range i.class.Facets {
			desc = append(desc, "facet:"+f)
		}
		for rcp := range i.class.Receptacles {
			desc = append(desc, "receptacle:"+rcp)
		}
		for e := range i.class.Emits {
			desc = append(desc, "emits:"+e)
		}
		for e := range i.class.Consumes {
			desc = append(desc, "consumes:"+e)
		}
		sort.Strings(desc)
		return []any{desc}, nil
	default:
		return nil, &orb.SystemException{Msg: "BAD_OPERATION: " + op}
	}
}

// ParseAttr converts a descriptor attribute string to its IDL-typed value.
func ParseAttr(typeName, raw string) (any, error) {
	switch typeName {
	case "string":
		return raw, nil
	case "boolean":
		return strconv.ParseBool(raw)
	case "long":
		v, err := strconv.ParseInt(raw, 10, 32)
		return int32(v), err
	case "long long":
		return strconv.ParseInt(raw, 10, 64)
	case "double":
		return strconv.ParseFloat(raw, 64)
	case "float":
		v, err := strconv.ParseFloat(raw, 32)
		return float32(v), err
	default:
		return nil, errors.New("ccm: unsupported attribute type " + typeName)
	}
}
