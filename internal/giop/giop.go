// Package giop implements the General Inter-ORB Protocol framing used by
// the reproduction's CORBA substrate: a 12-byte header (magic, version,
// endianness flag, message type, body size) followed by a CDR-encoded body.
// Request and Reply headers follow the GIOP layout (request id, response
// flag, object key, operation; request id and reply status), with one
// documented simplification: CDR alignment restarts at the body, and
// service contexts are omitted.
package giop

import (
	"fmt"
	"io"

	"padico/internal/cdr"
)

// Magic is the GIOP header signature.
var Magic = [4]byte{'G', 'I', 'O', 'P'}

// Protocol version advertised in headers.
const (
	VersionMajor = 1
	VersionMinor = 2
)

// MsgType enumerates GIOP message types.
type MsgType byte

// GIOP message types.
const (
	Request MsgType = iota
	Reply
	CancelRequest
	LocateRequest
	LocateReply
	CloseConnection
	MessageError
)

func (t MsgType) String() string {
	names := []string{"Request", "Reply", "CancelRequest", "LocateRequest",
		"LocateReply", "CloseConnection", "MessageError"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// ReplyStatus enumerates Reply outcomes.
type ReplyStatus uint32

// Reply statuses.
const (
	NoException ReplyStatus = iota
	UserException
	SystemException
	LocationForward
)

// HeaderSize is the fixed GIOP header length.
const HeaderSize = 12

// maxBody guards against corrupt size fields.
const maxBody = 1 << 30

// WriteMessage frames body as one GIOP message on w.
func WriteMessage(w io.Writer, t MsgType, order cdr.ByteOrder, body []byte) error {
	if len(body) > maxBody {
		return fmt.Errorf("giop: body of %d bytes exceeds limit", len(body))
	}
	hdr := make([]byte, HeaderSize)
	copy(hdr, Magic[:])
	hdr[4], hdr[5] = VersionMajor, VersionMinor
	hdr[6] = byte(order) // flags: bit 0 = little-endian
	hdr[7] = byte(t)
	size := uint32(len(body))
	if order == cdr.LittleEndian {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(size), byte(size>>8), byte(size>>16), byte(size>>24)
	} else {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(size>>24), byte(size>>16), byte(size>>8), byte(size)
	}
	// One Write per message: the transport charges per-message costs, and
	// a real TCP stack would coalesce header and body into one segment.
	msg := make([]byte, 0, HeaderSize+len(body))
	msg = append(msg, hdr...)
	msg = append(msg, body...)
	_, err := w.Write(msg)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (MsgType, cdr.ByteOrder, []byte, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return 0, 0, nil, fmt.Errorf("giop: bad magic % x", hdr[:4])
	}
	if hdr[4] != VersionMajor {
		return 0, 0, nil, fmt.Errorf("giop: unsupported version %d.%d", hdr[4], hdr[5])
	}
	order := cdr.ByteOrder(hdr[6] & 1)
	t := MsgType(hdr[7])
	var size uint32
	if order == cdr.LittleEndian {
		size = uint32(hdr[8]) | uint32(hdr[9])<<8 | uint32(hdr[10])<<16 | uint32(hdr[11])<<24
	} else {
		size = uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11])
	}
	if size > maxBody {
		return 0, 0, nil, fmt.Errorf("giop: body size %d exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return t, order, body, nil
}

// RequestHeader is the GIOP Request header.
type RequestHeader struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        string
	Operation        string
}

// BeginRequest encodes the request header into a fresh CDR writer; the
// caller appends the marshalled arguments and frames the result.
func BeginRequest(order cdr.ByteOrder, h RequestHeader) *cdr.Writer {
	w := cdr.NewWriter(order)
	w.WriteULong(h.RequestID)
	w.WriteBool(h.ResponseExpected)
	w.WriteString(h.ObjectKey)
	w.WriteString(h.Operation)
	w.Align(8) // body alignment boundary before arguments
	return w
}

// ParseRequest decodes a Request body, returning the header and a reader
// positioned at the arguments.
func ParseRequest(order cdr.ByteOrder, body []byte) (RequestHeader, *cdr.Reader, error) {
	r := cdr.NewReader(body, order)
	var h RequestHeader
	var err error
	if h.RequestID, err = r.ReadULong(); err != nil {
		return h, nil, fmt.Errorf("giop: request id: %w", err)
	}
	if h.ResponseExpected, err = r.ReadBool(); err != nil {
		return h, nil, fmt.Errorf("giop: response flag: %w", err)
	}
	if h.ObjectKey, err = r.ReadString(); err != nil {
		return h, nil, fmt.Errorf("giop: object key: %w", err)
	}
	if h.Operation, err = r.ReadString(); err != nil {
		return h, nil, fmt.Errorf("giop: operation: %w", err)
	}
	if err := alignReader(r, 8); err != nil {
		return h, nil, err
	}
	return h, r, nil
}

// ReplyHeader is the GIOP Reply header.
type ReplyHeader struct {
	RequestID uint32
	Status    ReplyStatus
}

// BeginReply encodes the reply header into a fresh CDR writer; the caller
// appends results (or the exception string) and frames the result.
func BeginReply(order cdr.ByteOrder, h ReplyHeader) *cdr.Writer {
	w := cdr.NewWriter(order)
	w.WriteULong(h.RequestID)
	w.WriteULong(uint32(h.Status))
	w.Align(8)
	return w
}

// ParseReply decodes a Reply body, returning the header and a reader
// positioned at the results.
func ParseReply(order cdr.ByteOrder, body []byte) (ReplyHeader, *cdr.Reader, error) {
	r := cdr.NewReader(body, order)
	var h ReplyHeader
	id, err := r.ReadULong()
	if err != nil {
		return h, nil, fmt.Errorf("giop: reply id: %w", err)
	}
	st, err := r.ReadULong()
	if err != nil {
		return h, nil, fmt.Errorf("giop: reply status: %w", err)
	}
	h.RequestID, h.Status = id, ReplyStatus(st)
	if err := alignReader(r, 8); err != nil {
		return h, nil, err
	}
	return h, r, nil
}

// alignReader skips padding up to an n-byte boundary (tolerating end of
// stream for bodies with no payload after the header).
func alignReader(r *cdr.Reader, n int) error {
	for r.Pos()%n != 0 && r.Remaining() > 0 {
		if _, err := r.ReadOctet(); err != nil {
			return err
		}
	}
	return nil
}
