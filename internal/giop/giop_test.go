package giop

import (
	"bytes"
	"io"
	"testing"

	"padico/internal/cdr"
)

func TestMessageFramingBothOrders(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		var buf bytes.Buffer
		body := []byte("hello giop")
		if err := WriteMessage(&buf, Request, order, body); err != nil {
			t.Fatalf("write: %v", err)
		}
		typ, gotOrder, gotBody, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if typ != Request || gotOrder != order || !bytes.Equal(gotBody, body) {
			t.Fatalf("roundtrip = %v, %v, %q", typ, gotOrder, gotBody)
		}
	}
}

func TestEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, CloseConnection, cdr.BigEndian, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	typ, _, body, err := ReadMessage(&buf)
	if err != nil || typ != CloseConnection || len(body) != 0 {
		t.Fatalf("roundtrip = %v, %v, %v", typ, body, err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := bytes.NewBuffer([]byte("IIOP\x01\x02\x00\x00\x00\x00\x00\x00"))
	if _, _, _, err := ReadMessage(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBadVersionRejected(t *testing.T) {
	buf := bytes.NewBuffer([]byte{'G', 'I', 'O', 'P', 9, 0, 0, byte(Request), 0, 0, 0, 0})
	if _, _, _, err := ReadMessage(buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedHeaderAndBody(t *testing.T) {
	if _, _, _, err := ReadMessage(bytes.NewBuffer([]byte("GIO"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	var buf bytes.Buffer
	_ = WriteMessage(&buf, Reply, cdr.BigEndian, []byte("full body"))
	short := buf.Bytes()[:buf.Len()-3]
	if _, _, _, err := ReadMessage(bytes.NewReader(short)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated body err = %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	hdr := []byte{'G', 'I', 'O', 'P', 1, 2, 0, byte(Request), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, _, err := ReadMessage(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversize body accepted")
	}
}

func TestRequestHeaderRoundtrip(t *testing.T) {
	h := RequestHeader{RequestID: 77, ResponseExpected: true, ObjectKey: "obj-1", Operation: "doIt"}
	w := BeginRequest(cdr.LittleEndian, h)
	w.WriteDouble(3.5) // argument after the 8-byte alignment point
	got, args, err := ParseRequest(cdr.LittleEndian, w.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	if v, err := args.ReadDouble(); err != nil || v != 3.5 {
		t.Fatalf("arg = %v, %v", v, err)
	}
}

func TestReplyHeaderRoundtrip(t *testing.T) {
	for _, st := range []ReplyStatus{NoException, UserException, SystemException} {
		w := BeginReply(cdr.BigEndian, ReplyHeader{RequestID: 9, Status: st})
		w.WriteString("payload")
		h, rest, err := ParseReply(cdr.BigEndian, w.Bytes())
		if err != nil || h.RequestID != 9 || h.Status != st {
			t.Fatalf("reply = %+v, %v", h, err)
		}
		if s, err := rest.ReadString(); err != nil || s != "payload" {
			t.Fatalf("rest = %q, %v", s, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := ParseRequest(cdr.BigEndian, []byte{1}); err == nil {
		t.Error("truncated request parsed")
	}
	if _, _, err := ParseReply(cdr.BigEndian, []byte{1, 2, 3}); err == nil {
		t.Error("truncated reply parsed")
	}
}

func TestMsgTypeString(t *testing.T) {
	if Request.String() != "Request" || MsgType(99).String() == "" {
		t.Error("MsgType.String broken")
	}
}
