package arbitration

import (
	"errors"
	"testing"

	"padico/internal/madeleine"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

type grid struct {
	sim   *vtime.Sim
	net   *simnet.Net
	nodes []*simnet.Node
	san   *simnet.Fabric
	lan   *simnet.Fabric
}

func newGrid(n int) *grid {
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &grid{sim: s, net: net}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode("n"+string(rune('0'+i))))
	}
	g.san = net.NewMyrinet2000("myri0", g.nodes)
	g.lan = net.NewEthernet100("eth0", g.nodes)
	return g
}

func TestArbiterResolvesExclusiveConflict(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		// Raw double-open of the exclusive device fails...
		ch, err := madeleine.Open(g.san)
		if err != nil {
			t.Fatalf("raw open: %v", err)
		}
		if _, err := madeleine.Open(g.san); !errors.Is(err, madeleine.ErrDeviceBusy) {
			t.Fatalf("raw second open = %v", err)
		}
		ch.Close()

		// ...but the arbiter opens once and multiplexes: two middleware
		// tags coexist on one wire.
		arb := New(g.net)
		defer arb.Close()
		dev, err := arb.AddSAN(g.san)
		if err != nil {
			t.Fatalf("AddSAN: %v", err)
		}
		mpiPort, err := dev.OpenPort(g.nodes[0], "mpi")
		if err != nil {
			t.Fatalf("open mpi port: %v", err)
		}
		corbaPort, err := dev.OpenPort(g.nodes[0], "giop")
		if err != nil {
			t.Fatalf("open giop port: %v", err)
		}
		if mpiPort.Tag() == corbaPort.Tag() {
			t.Fatal("tags collide")
		}
	})
}

func TestPortDemultiplexing(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		dev, _ := arb.AddSAN(g.san)
		mpi0, _ := dev.OpenPort(g.nodes[0], "mpi")
		giop0, _ := dev.OpenPort(g.nodes[0], "giop")
		mpi1, _ := dev.OpenPort(g.nodes[1], "mpi")
		giop1, _ := dev.OpenPort(g.nodes[1], "giop")

		g.sim.Go("sender", func() {
			_ = mpi0.Send(1, []byte("m-h"), []byte("m-p"))
			_ = giop0.Send(1, []byte("g-h"), []byte("g-p"))
		})
		gm, err := giop1.Recv()
		if err != nil || string(gm.Header) != "g-h" || string(gm.Payload) != "g-p" {
			t.Fatalf("giop recv = %+v, %v", gm, err)
		}
		mm, err := mpi1.Recv()
		if err != nil || string(mm.Header) != "m-h" || string(mm.Payload) != "m-p" {
			t.Fatalf("mpi recv = %+v, %v", mm, err)
		}
		if mm.Src != 0 || gm.Src != 0 {
			t.Fatalf("src = %d/%d", mm.Src, gm.Src)
		}
		routed, dropped := dev.Stats()
		if routed != 2 || dropped != 0 {
			t.Fatalf("stats = %d routed, %d dropped", routed, dropped)
		}
	})
}

func TestEarlyMessageHeldUntilPortOpens(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		dev, _ := arb.AddSAN(g.san)
		p0, _ := dev.OpenPort(g.nodes[0], "early")
		done := vtime.NewWaitGroup(g.sim, "join")
		done.Add(1)
		g.sim.Go("sender", func() {
			_ = p0.Send(1, nil, []byte("kept")) // no port open on node 1 yet
			done.Done()
		})
		_ = done.Wait()
		g.sim.Sleep(1)
		if n := dev.PendingMsgs(); n != 1 {
			t.Fatalf("pending = %d, want 1", n)
		}
		// Opening the port drains the held message.
		p1, err := dev.OpenPort(g.nodes[1], "early")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		m, err := p1.Recv()
		if err != nil || string(m.Payload) != "kept" {
			t.Fatalf("recv = %+v, %v", m, err)
		}
		if n := dev.PendingMsgs(); n != 0 {
			t.Fatalf("pending after drain = %d", n)
		}
	})
}

func TestPortTagConflictAndClose(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		dev, _ := arb.AddSAN(g.san)
		p, err := dev.OpenPort(g.nodes[0], "x")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := dev.OpenPort(g.nodes[0], "x"); !errors.Is(err, ErrPortTaken) {
			t.Fatalf("dup open = %v", err)
		}
		p.Close()
		if _, err := dev.OpenPort(g.nodes[0], "x"); err != nil {
			t.Fatalf("reopen after close: %v", err)
		}
	})
}

func TestSelectPrefersFastestDevice(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		san, _ := arb.AddSAN(g.san)
		_, _ = arb.AddSock(g.lan)
		dev, err := arb.Select(g.nodes[0], g.nodes[1])
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if dev != san {
			t.Fatalf("selected %s, want SAN", dev.Name)
		}
	})
}

func TestSelectFallsBackWhenSANPartial(t *testing.T) {
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b, c := net.NewNode("a"), net.NewNode("b"), net.NewNode("c")
	san := net.NewMyrinet2000("myri", []*simnet.Node{a, b})
	lan := net.NewEthernet100("eth", []*simnet.Node{a, b, c})
	s.Run(func() {
		arb := New(net)
		defer arb.Close()
		_, _ = arb.AddSAN(san)
		ethDev, _ := arb.AddSock(lan)
		dev, err := arb.Select(a, c)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if dev != ethDev {
			t.Fatalf("selected %s, want eth (SAN does not reach c)", dev.Name)
		}
		if _, err := arb.Select(net.NewNode("offgrid")); !errors.Is(err, ErrNoDevice) {
			t.Fatalf("select offgrid = %v", err)
		}
	})
}

func TestKindMismatchErrors(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		if _, err := arb.AddSAN(g.lan); err == nil {
			t.Error("AddSAN accepted a LAN")
		}
		if _, err := arb.AddSock(g.san); err == nil {
			t.Error("AddSock accepted a SAN")
		}
		sanDev, _ := arb.AddSAN(g.san)
		lanDev, _ := arb.AddSock(g.lan)
		if _, err := sanDev.Provider(g.nodes[0]); err == nil {
			t.Error("Provider on SAN device succeeded")
		}
		if _, err := lanDev.OpenPort(g.nodes[0], "t"); err == nil {
			t.Error("OpenPort on LAN device succeeded")
		}
	})
}

func TestSockProviderThroughArbiter(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		dev, _ := arb.AddSock(g.lan)
		srv, err := dev.Provider(g.nodes[0])
		if err != nil {
			t.Fatalf("provider: %v", err)
		}
		cli, _ := dev.Provider(g.nodes[1])
		l, err := srv.Listen(4242)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		g.sim.Go("srv", func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 2)
			_, _ = c.Read(buf)
			_, _ = c.Write(buf)
			c.Close()
		})
		c, err := cli.Dial("n0:4242")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		_, _ = c.Write([]byte("ok"))
		buf := make([]byte, 2)
		if _, err := c.Read(buf); err != nil || string(buf) != "ok" {
			t.Fatalf("read = %q, %v", buf, err)
		}
		l.Close()
	})
}

func TestEnvelopeRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		tag string
		hdr []byte
	}{{"", nil}, {"mpi", []byte{}}, {"a-very-long-tag-name", []byte{1, 2, 3}}} {
		env := makeEnvelope(tc.tag, tc.hdr)
		tag, hdr, ok := splitEnvelope(env)
		if !ok || tag != tc.tag || len(hdr) != len(tc.hdr) {
			t.Fatalf("roundtrip(%q) = %q,%v,%v", tc.tag, tag, hdr, ok)
		}
	}
	if _, _, ok := splitEnvelope([]byte{0}); ok {
		t.Error("truncated envelope accepted")
	}
	if _, _, ok := splitEnvelope([]byte{0xFF, 0xFF, 'x'}); ok {
		t.Error("overlong tag length accepted")
	}
}

func TestDuplicateDeviceRegistration(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		arb := New(g.net)
		defer arb.Close()
		if _, err := arb.AddSock(g.lan); err != nil {
			t.Fatalf("add: %v", err)
		}
		if _, err := arb.AddSock(g.lan); err == nil {
			t.Fatal("duplicate device registration succeeded")
		}
		if _, ok := arb.Device("eth0"); !ok {
			t.Fatal("device lookup failed")
		}
		if len(arb.Devices()) != 1 {
			t.Fatalf("devices = %d", len(arb.Devices()))
		}
	})
}
