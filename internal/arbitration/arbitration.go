// Package arbitration implements PadicoTM's arbitration layer (§4.3.1): the
// unique entry point to every networking device.
//
// Problems it solves, as in the paper: exclusive-access drivers (Myrinet
// through BIP/GM admits a single owner per fabric — see madeleine's
// ErrDeviceBusy), competition between middleware for the same wire, and
// incoherent polling policies. The Arbiter opens each device exactly once
// and multiplexes it: parallel devices (SAN) expose tagged message Ports
// demultiplexed by a per-node progress loop under one marcel.Manager;
// distributed devices (LAN/WAN) expose socket Providers. Paradigm
// differences are deliberately preserved — bending both into one API is, per
// the paper, "an awkward model and sub-optimal performance"; cross-paradigm
// adaptation belongs to the abstraction layer (packages circuit and vlink).
package arbitration

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"padico/internal/madeleine"
	"padico/internal/marcel"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// ErrNoDevice is returned when no registered device can serve a request.
var ErrNoDevice = errors.New("arbitration: no suitable device")

// ErrPortTaken is returned when a (node, tag) port is already open.
var ErrPortTaken = errors.New("arbitration: port tag already open on this node")

// Arbiter is the grid-wide arbitration core: the single owner of every
// device. Each simulated process obtains a per-node Access from it.
type Arbiter struct {
	net *simnet.Net
	mgr *marcel.Manager

	mu      sync.Mutex
	devices map[string]*Device
	closed  bool
}

// New returns an arbiter for the grid's network.
func New(net *simnet.Net) *Arbiter {
	return &Arbiter{
		net:     net,
		mgr:     marcel.NewManager(net.Runtime()),
		devices: make(map[string]*Device),
	}
}

// Device is one network under arbitration.
type Device struct {
	Name   string
	Kind   simnet.DeviceKind
	Fabric *simnet.Fabric

	arb  *Arbiter
	mad  *madeleine.Channel // SAN only
	sock *sockets.SimStack  // LAN/WAN only

	mu      sync.Mutex
	ports   map[portKey]*Port
	pending map[portKey][]PortMsg // early messages for not-yet-opened ports
	rankOf  map[*simnet.Node]int
	routed  int64
	dropped int64
}

type portKey struct {
	rank int
	tag  string
}

// AddSAN places a parallel-oriented fabric under arbitration: the exclusive
// driver is acquired once and a demultiplexing progress loop is started for
// every node.
func (a *Arbiter) AddSAN(fab *simnet.Fabric) (*Device, error) {
	if fab.Kind != simnet.SAN {
		return nil, fmt.Errorf("arbitration: fabric %q is %v, not a SAN", fab.Name, fab.Kind)
	}
	ch, err := madeleine.Open(fab)
	if err != nil {
		return nil, fmt.Errorf("arbitration: acquiring %q: %w", fab.Name, err)
	}
	d := a.newDevice(fab)
	d.mad = ch
	for rank := range fab.Nodes() {
		ep, err := ch.Endpoint(rank)
		if err != nil {
			return nil, err
		}
		a.mgr.Daemon("arb:"+fab.Name+":demux", func() { /* channel close unblocks */ }, func() {
			d.demux(ep)
		})
	}
	return d, a.register(d)
}

// AddSock places a distributed-oriented fabric under arbitration with a
// simulated TCP stack.
func (a *Arbiter) AddSock(fab *simnet.Fabric) (*Device, error) {
	if fab.Kind == simnet.SAN {
		return nil, fmt.Errorf("arbitration: fabric %q is a SAN; use AddSAN", fab.Name)
	}
	d := a.newDevice(fab)
	d.sock = sockets.NewSimStack(fab)
	return d, a.register(d)
}

func (a *Arbiter) newDevice(fab *simnet.Fabric) *Device {
	d := &Device{
		Name:    fab.Name,
		Kind:    fab.Kind,
		Fabric:  fab,
		arb:     a,
		ports:   make(map[portKey]*Port),
		pending: make(map[portKey][]PortMsg),
		rankOf:  make(map[*simnet.Node]int),
	}
	for rank, nd := range fab.Nodes() {
		d.rankOf[nd] = rank
	}
	return d
}

func (a *Arbiter) register(d *Device) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.devices[d.Name]; dup {
		return fmt.Errorf("arbitration: device %q already registered", d.Name)
	}
	a.devices[d.Name] = d
	return nil
}

// Device looks a registered device up by name.
func (a *Arbiter) Device(name string) (*Device, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.devices[name]
	return d, ok
}

// Devices returns every registered device, sorted by name.
func (a *Arbiter) Devices() []*Device {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Device, 0, len(a.devices))
	for _, d := range a.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Select returns the best device attaching all given nodes: highest
// bottleneck bandwidth wins (SAN > LAN > WAN on the paper's testbed). This
// is the automatic choice the abstraction layer relies on.
func (a *Arbiter) Select(nodes ...*simnet.Node) (*Device, error) {
	var best *Device
	var bestBps float64
	for _, d := range a.Devices() {
		ok := true
		for _, nd := range nodes {
			if !d.Fabric.Attached(nd) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var bps float64
		if len(nodes) >= 2 {
			p, err := d.Fabric.Path(nodes[0], nodes[1])
			if err != nil {
				continue
			}
			bps = p.Bottleneck()
		} else if len(nodes) == 1 {
			p, err := d.Fabric.Path(nodes[0], nodes[0])
			if err != nil {
				continue
			}
			bps = p.Bottleneck()
		}
		if best == nil || bps > bestBps {
			best, bestBps = d, bps
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w covering %v", ErrNoDevice, nodes)
	}
	return best, nil
}

// Runtime returns the runtime the arbiter schedules on.
func (a *Arbiter) Runtime() vtime.Runtime { return a.net.Runtime() }

// Net returns the simulated network.
func (a *Arbiter) Net() *simnet.Net { return a.net }

// Manager returns the marcel manager owning all arbitration progress loops.
func (a *Arbiter) Manager() *marcel.Manager { return a.mgr }

// Close releases every device and stops every progress loop.
func (a *Arbiter) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	devices := make([]*Device, 0, len(a.devices))
	for _, d := range a.devices {
		devices = append(devices, d)
	}
	a.mu.Unlock()
	for _, d := range devices {
		d.close()
	}
	a.mgr.StopAll()
}

func (d *Device) close() {
	if d.mad != nil {
		d.mad.Close()
	}
	d.mu.Lock()
	ports := make([]*Port, 0, len(d.ports))
	for _, p := range d.ports {
		ports = append(ports, p)
	}
	d.ports = make(map[portKey]*Port)
	d.mu.Unlock()
	for _, p := range ports {
		p.in.Close()
	}
}

// Stats reports messages demultiplexed and dropped (malformed envelope).
func (d *Device) Stats() (routed, dropped int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.routed, d.dropped
}

// PendingMsgs reports messages held for ports that have not been opened.
func (d *Device) PendingMsgs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ms := range d.pending {
		n += len(ms)
	}
	return n
}

// Rank returns a node's logical rank on this device.
func (d *Device) Rank(nd *simnet.Node) (int, error) {
	r, ok := d.rankOf[nd]
	if !ok {
		return 0, fmt.Errorf("arbitration: node %s not attached to device %s", nd, d.Name)
	}
	return r, nil
}

// Size returns the number of nodes attached to the device.
func (d *Device) Size() int { return len(d.rankOf) }

// demux is the device's per-node progress loop: it receives from the single
// Madeleine endpoint and routes to the open Port matching the envelope tag.
// Messages for a tag nobody has opened yet are held pending and drained when
// the port opens (eager delivery with an unexpected queue, as on real SAN
// libraries); malformed envelopes are counted and dropped.
func (d *Device) demux(ep *madeleine.Endpoint) {
	for {
		del, err := ep.Recv()
		if err != nil {
			return
		}
		tag, userHdr, ok := splitEnvelope(del.Msg.Header)
		d.mu.Lock()
		if !ok {
			d.dropped++
			d.mu.Unlock()
			continue
		}
		key := portKey{rank: ep.Rank(), tag: tag}
		msg := PortMsg{Src: del.Src, Header: userHdr, Payload: del.Msg.Payload}
		p, found := d.ports[key]
		if !found {
			d.pending[key] = append(d.pending[key], msg)
			d.mu.Unlock()
			continue
		}
		d.routed++
		d.mu.Unlock()
		p.in.Push(msg)
	}
}

// envelope: [2B tag length][tag][user header]
func makeEnvelope(tag string, hdr []byte) []byte {
	out := make([]byte, 2+len(tag)+len(hdr))
	binary.BigEndian.PutUint16(out, uint16(len(tag)))
	copy(out[2:], tag)
	copy(out[2+len(tag):], hdr)
	return out
}

func splitEnvelope(b []byte) (tag string, hdr []byte, ok bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.BigEndian.Uint16(b))
	if 2+n > len(b) {
		return "", nil, false
	}
	return string(b[2 : 2+n]), b[2+n:], true
}

// PortMsg is a message received on a Port.
type PortMsg struct {
	Src     int
	Header  []byte
	Payload []byte
}

// Port is a multiplexed parallel-paradigm endpoint: one (node, tag) slot on
// a SAN device. Several middleware systems open distinct tags over the same
// wire — the arbitration that lets CORBA and MPI share Myrinet.
type Port struct {
	dev  *Device
	node *simnet.Node
	rank int
	tag  string
	in   *vtime.Queue[PortMsg]
}

// OpenPort opens the (node, tag) slot on a SAN device.
func (d *Device) OpenPort(nd *simnet.Node, tag string) (*Port, error) {
	if d.mad == nil {
		return nil, fmt.Errorf("arbitration: device %q is not parallel-oriented", d.Name)
	}
	rank, err := d.Rank(nd)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := portKey{rank: rank, tag: tag}
	if _, dup := d.ports[key]; dup {
		return nil, fmt.Errorf("%w: %q on %s", ErrPortTaken, tag, nd)
	}
	p := &Port{
		dev:  d,
		node: nd,
		rank: rank,
		tag:  tag,
		in: vtime.NewQueue[PortMsg](d.arb.Runtime(),
			fmt.Sprintf("arbitration: recv %q on %s", tag, nd.Name)),
	}
	// Drain messages that arrived before the port opened.
	for _, m := range d.pending[key] {
		d.routed++
		p.in.Push(m)
	}
	delete(d.pending, key)
	d.ports[key] = p
	return p, nil
}

// Provider returns the node's socket stack on a distributed device.
func (d *Device) Provider(nd *simnet.Node) (sockets.Provider, error) {
	if d.sock == nil {
		return nil, fmt.Errorf("arbitration: device %q is not distributed-oriented", d.Name)
	}
	if !d.Fabric.Attached(nd) {
		return nil, fmt.Errorf("arbitration: node %s not attached to device %s", nd, d.Name)
	}
	return d.sock.Host(nd), nil
}

// Rank returns the port's logical rank on the device.
func (p *Port) Rank() int { return p.rank }

// Size returns the device's node count.
func (p *Port) Size() int { return p.dev.Size() }

// Tag returns the multiplexing tag.
func (p *Port) Tag() string { return p.tag }

// Node returns the hosting machine.
func (p *Port) Node() *simnet.Node { return p.node }

// Send transmits a tagged message to the destination rank on this device,
// targeting the same tag on the peer.
func (p *Port) Send(dst int, hdr, payload []byte) error {
	return p.SendTo(dst, p.tag, hdr, payload)
}

// SendTo transmits to an explicit tag on the destination rank (used by
// protocols whose two endpoints own asymmetric tags, e.g. VLink's SAN
// streams, which must self-connect on a single node).
func (p *Port) SendTo(dst int, tag string, hdr, payload []byte) error {
	ep, err := p.dev.mad.Endpoint(p.rank)
	if err != nil {
		return err
	}
	return ep.Send(dst, madeleine.Message{
		Header:  makeEnvelope(tag, hdr),
		Payload: payload,
	})
}

// Recv blocks until a message with this port's tag arrives.
func (p *Port) Recv() (PortMsg, error) {
	m, err := p.in.Pop()
	if err != nil {
		return PortMsg{}, err
	}
	return m, nil
}

// TryRecv returns a pending message without blocking.
func (p *Port) TryRecv() (PortMsg, bool) { return p.in.TryPop() }

// Close releases the (node, tag) slot.
func (p *Port) Close() {
	d := p.dev
	d.mu.Lock()
	delete(d.ports, portKey{rank: p.rank, tag: p.tag})
	d.mu.Unlock()
	p.in.Close()
}
