package marcel

import (
	"sync/atomic"
	"testing"

	"padico/internal/vtime"
)

func TestDispatchDrainsQueue(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		m := NewManager(s)
		q := vtime.NewQueue[int](s, "events")
		var sum atomic.Int64
		l := Dispatch(m, "adder", q, func(v int) { sum.Add(int64(v)) })
		for i := 1; i <= 10; i++ {
			q.Push(i)
		}
		q.Close() // loop exits after draining
		s.Sleep(1)
		if got := sum.Load(); got != 55 {
			t.Fatalf("sum = %d, want 55", got)
		}
		if l.Events() != 10 {
			t.Fatalf("events = %d, want 10", l.Events())
		}
	})
}

func TestStopAllTerminatesLoops(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		m := NewManager(s)
		if m.Runtime() != s {
			t.Fatal("Runtime mismatch")
		}
		q1 := vtime.NewQueue[int](s, "a")
		q2 := vtime.NewQueue[int](s, "b")
		Dispatch(m, "loop-a", q1, func(int) {})
		Dispatch(m, "loop-b", q2, func(int) {})
		if got := len(m.Loops()); got != 2 {
			t.Fatalf("loops = %d", got)
		}
		m.StopAll()
		if got := len(m.Loops()); got != 0 {
			t.Fatalf("loops after StopAll = %d", got)
		}
		// Queues are closed, so the actors exit and the sim terminates
		// without deadlock — reaching here is the assertion.
	})
}

func TestLoopStopIdempotent(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		m := NewManager(s)
		q := vtime.NewQueue[int](s, "q")
		l := Dispatch(m, "x", q, func(int) {})
		l.Stop()
		l.Stop()
		if got := len(m.Loops()); got != 0 {
			t.Fatalf("loops = %d", got)
		}
	})
}

func TestDaemonCustomStop(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		m := NewManager(s)
		q := vtime.NewQueue[string](s, "in")
		var last atomic.Value
		l := m.Daemon("custom", func() { q.Close() }, func() {
			for {
				v, err := q.Pop()
				if err != nil {
					return
				}
				last.Store(v)
			}
		})
		q.Push("hello")
		s.Sleep(1)
		l.Stop()
		if got, _ := last.Load().(string); got != "hello" {
			t.Fatalf("daemon saw %q", got)
		}
	})
}

func TestUniqueLoopNames(t *testing.T) {
	s := vtime.NewSim()
	s.Run(func() {
		m := NewManager(s)
		q1 := vtime.NewQueue[int](s, "q1")
		q2 := vtime.NewQueue[int](s, "q2")
		a := Dispatch(m, "same", q1, func(int) {})
		b := Dispatch(m, "same", q2, func(int) {})
		if a.Name == b.Name {
			t.Fatalf("duplicate loop names %q", a.Name)
		}
		m.StopAll()
	})
}
