// Package marcel is Padico's thread-and-polling policy layer, substituting
// the Marcel multithreading library of the original system. The paper's
// arbitration argument is that concurrent middleware must not each spin
// their own competing polling loops; instead a single manager owns every
// progress loop and applies one coherent policy.
//
// Under Go, kernel threads are hidden behind goroutines, so the layer
// manages *progress loops* (dispatchers draining event queues) rather than
// raw threads: every subsystem registers its loop here, giving the runtime
// one place to start, account for, and stop all background activity.
package marcel

import (
	"fmt"
	"sort"
	"sync"

	"padico/internal/vtime"
)

// Manager owns every background progress loop of one Padico process.
type Manager struct {
	rt vtime.Runtime

	mu    sync.Mutex
	loops map[string]*Loop
	next  int
}

// NewManager returns an empty manager on the given runtime.
func NewManager(rt vtime.Runtime) *Manager {
	return &Manager{rt: rt, loops: make(map[string]*Loop)}
}

// Runtime returns the runtime the manager schedules on.
func (m *Manager) Runtime() vtime.Runtime { return m.rt }

// Loop is one registered progress loop.
type Loop struct {
	Name string

	mgr     *Manager
	stop    func()
	mu      sync.Mutex
	events  int64
	stopped bool
}

// Events reports how many events this loop has dispatched.
func (l *Loop) Events() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events
}

// Stop terminates the loop (idempotent) and unregisters it.
func (l *Loop) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	l.mu.Unlock()
	l.stop()
	l.mgr.mu.Lock()
	delete(l.mgr.loops, l.Name)
	l.mgr.mu.Unlock()
}

func (l *Loop) bump() {
	l.mu.Lock()
	l.events++
	l.mu.Unlock()
}

// Dispatch registers and starts a progress loop that drains q, invoking
// handle for every event. The loop exits when q is closed (or the runtime
// aborts). handle runs on the loop's own actor: it may block on vtime
// primitives.
func Dispatch[T any](m *Manager, name string, q *vtime.Queue[T], handle func(T)) *Loop {
	l := m.register(name, func() { q.Close() })
	m.rt.Go("marcel:"+l.Name, func() {
		for {
			v, err := q.Pop()
			if err != nil {
				return
			}
			l.bump()
			handle(v)
		}
	})
	return l
}

// Daemon registers a free-form background actor; stop is invoked by
// Loop.Stop to make the actor unwind (typically by closing its input).
func (m *Manager) Daemon(name string, stop func(), body func()) *Loop {
	l := m.register(name, stop)
	m.rt.Go("marcel:"+l.Name, body)
	return l
}

func (m *Manager) register(name string, stop func()) *Loop {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.next++
	unique := fmt.Sprintf("%s#%d", name, m.next)
	l := &Loop{Name: unique, mgr: m, stop: stop}
	m.loops[unique] = l
	return l
}

// Loops returns the names of all live loops, sorted.
func (m *Manager) Loops() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.loops))
	for n := range m.loops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StopAll terminates every live loop; used at process shutdown.
func (m *Manager) StopAll() {
	m.mu.Lock()
	loops := make([]*Loop, 0, len(m.loops))
	for _, l := range m.loops {
		loops = append(loops, l)
	}
	m.mu.Unlock()
	for _, l := range loops {
		l.Stop()
	}
}
