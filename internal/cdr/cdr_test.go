package cdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundtripBothOrders(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		w := NewWriter(order)
		w.WriteOctet(0xAB)
		w.WriteBool(true)
		w.WriteBool(false)
		w.WriteShort(-1234)
		w.WriteUShort(54321)
		w.WriteLong(-7_000_000)
		w.WriteULong(4_000_000_000)
		w.WriteLongLong(-9e15)
		w.WriteULongLong(18_000_000_000_000_000_000)
		w.WriteFloat(3.25)
		w.WriteDouble(-2.5e-10)
		w.WriteString("héllo")
		w.WriteOctets([]byte{1, 2, 3})

		r := NewReader(w.Bytes(), order)
		if v, _ := r.ReadOctet(); v != 0xAB {
			t.Errorf("[%d] octet = %x", order, v)
		}
		if v, _ := r.ReadBool(); !v {
			t.Errorf("[%d] bool1", order)
		}
		if v, _ := r.ReadBool(); v {
			t.Errorf("[%d] bool2", order)
		}
		if v, _ := r.ReadShort(); v != -1234 {
			t.Errorf("[%d] short = %d", order, v)
		}
		if v, _ := r.ReadUShort(); v != 54321 {
			t.Errorf("[%d] ushort = %d", order, v)
		}
		if v, _ := r.ReadLong(); v != -7_000_000 {
			t.Errorf("[%d] long = %d", order, v)
		}
		if v, _ := r.ReadULong(); v != 4_000_000_000 {
			t.Errorf("[%d] ulong = %d", order, v)
		}
		if v, _ := r.ReadLongLong(); v != -9e15 {
			t.Errorf("[%d] longlong = %d", order, v)
		}
		if v, _ := r.ReadULongLong(); v != 18_000_000_000_000_000_000 {
			t.Errorf("[%d] ulonglong = %d", order, v)
		}
		if v, _ := r.ReadFloat(); v != 3.25 {
			t.Errorf("[%d] float = %v", order, v)
		}
		if v, _ := r.ReadDouble(); v != -2.5e-10 {
			t.Errorf("[%d] double = %v", order, v)
		}
		if v, err := r.ReadString(); err != nil || v != "héllo" {
			t.Errorf("[%d] string = %q, %v", order, v, err)
		}
		if v, _ := r.ReadOctets(); !bytes.Equal(v, []byte{1, 2, 3}) {
			t.Errorf("[%d] octets = %v", order, v)
		}
		if r.Remaining() != 0 {
			t.Errorf("[%d] %d bytes left over", order, r.Remaining())
		}
	}
}

func TestAlignmentRules(t *testing.T) {
	w := NewWriter(BigEndian)
	w.WriteOctet(1) // pos 1
	w.WriteULong(7) // must pad to pos 4
	if got := w.Bytes(); len(got) != 8 || got[1] != 0 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("ulong not aligned: % x", got)
	}
	w2 := NewWriter(BigEndian)
	w2.WriteOctet(1)
	w2.WriteDouble(1.0) // must pad to pos 8
	if w2.Len() != 16 {
		t.Fatalf("double alignment: len = %d", w2.Len())
	}
	// Reader must skip the same padding.
	r := NewReader(w2.Bytes(), BigEndian)
	_, _ = r.ReadOctet()
	if v, err := r.ReadDouble(); err != nil || v != 1.0 {
		t.Fatalf("aligned double = %v, %v", v, err)
	}
}

func TestTruncatedReads(t *testing.T) {
	r := NewReader([]byte{0, 0, 0}, BigEndian)
	if _, err := r.ReadULong(); err == nil {
		t.Error("short ulong read succeeded")
	}
	r2 := NewReader([]byte{0, 0, 0, 10, 'h', 'i'}, BigEndian)
	if _, err := r2.ReadString(); err == nil {
		t.Error("truncated string read succeeded")
	}
	var trunc *ErrTruncated
	r3 := NewReader(nil, BigEndian)
	_, err := r3.ReadOctet()
	if !errorsAs(err, &trunc) {
		t.Errorf("error type = %T", err)
	}
}

func errorsAs(err error, target **ErrTruncated) bool {
	e, ok := err.(*ErrTruncated)
	if ok {
		*target = e
		_ = e.Error()
	}
	return ok
}

func TestBadStringEncodings(t *testing.T) {
	// Zero length (no NUL) is invalid.
	w := NewWriter(BigEndian)
	w.WriteULong(0)
	if _, err := NewReader(w.Bytes(), BigEndian).ReadString(); err == nil {
		t.Error("zero-length string accepted")
	}
	// Missing NUL terminator.
	w2 := NewWriter(BigEndian)
	w2.WriteULong(2)
	w2.WriteOctet('a')
	w2.WriteOctet('b')
	if _, err := NewReader(w2.Bytes(), BigEndian).ReadString(); err == nil {
		t.Error("non-terminated string accepted")
	}
}

func TestEmptyString(t *testing.T) {
	w := NewWriter(LittleEndian)
	w.WriteString("")
	r := NewReader(w.Bytes(), LittleEndian)
	if v, err := r.ReadString(); err != nil || v != "" {
		t.Fatalf("empty string = %q, %v", v, err)
	}
}

// Property: any mix of values written then read back in order is identical,
// in both byte orders.
func TestMixedRoundtripProperty(t *testing.T) {
	f := func(oct []byte, longs []int32, doubles []float64, strs []string, le bool) bool {
		order := BigEndian
		if le {
			order = LittleEndian
		}
		w := NewWriter(order)
		for i := range longs {
			w.WriteLong(longs[i])
		}
		w.WriteOctets(oct)
		for i := range doubles {
			w.WriteDouble(doubles[i])
		}
		for i := range strs {
			if hasNUL(strs[i]) {
				return true // CDR strings cannot carry NUL
			}
			w.WriteString(strs[i])
		}
		r := NewReader(w.Bytes(), order)
		for i := range longs {
			if v, err := r.ReadLong(); err != nil || v != longs[i] {
				return false
			}
		}
		if v, err := r.ReadOctets(); err != nil || !bytes.Equal(v, oct) {
			return false
		}
		for i := range doubles {
			v, err := r.ReadDouble()
			if err != nil {
				return false
			}
			if v != doubles[i] && !(v != v && doubles[i] != doubles[i]) { // NaN
				return false
			}
		}
		for i := range strs {
			if v, err := r.ReadString(); err != nil || v != strs[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func hasNUL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return true
		}
	}
	return false
}
