// Package cdr implements CORBA's Common Data Representation: the aligned,
// endianness-tagged wire encoding GIOP messages carry. Primitives are
// aligned to their natural size relative to the start of the stream;
// strings are length-prefixed and NUL-terminated; sequences are
// length-prefixed. Both byte orders are supported, selected by the GIOP
// header flag as in the specification.
package cdr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ByteOrder tags the encoding endianness (GIOP flags bit 0).
type ByteOrder byte

const (
	// BigEndian is the canonical network order.
	BigEndian ByteOrder = 0
	// LittleEndian is flagged in GIOP when the sender is little-endian.
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) order() binary.ByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// Writer encodes CDR values into a growing buffer.
type Writer struct {
	buf   []byte
	order ByteOrder
}

// NewWriter returns an empty CDR encoder in the given byte order.
func NewWriter(order ByteOrder) *Writer { return &Writer{order: order} }

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current stream position.
func (w *Writer) Len() int { return len(w.buf) }

// Order returns the writer's byte order.
func (w *Writer) Order() ByteOrder { return w.order }

// Align pads the stream to an n-byte boundary.
func (w *Writer) Align(n int) {
	for len(w.buf)%n != 0 {
		w.buf = append(w.buf, 0)
	}
}

// WriteOctet appends one unaligned byte.
func (w *Writer) WriteOctet(b byte) { w.buf = append(w.buf, b) }

// WriteBool appends a boolean as one octet.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteOctet(1)
	} else {
		w.WriteOctet(0)
	}
}

// WriteUShort appends an unsigned short on a 2-byte boundary.
func (w *Writer) WriteUShort(v uint16) {
	w.Align(2)
	var b [2]byte
	w.order.order().PutUint16(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// WriteShort appends a signed short.
func (w *Writer) WriteShort(v int16) { w.WriteUShort(uint16(v)) }

// WriteULong appends an unsigned long on a 4-byte boundary.
func (w *Writer) WriteULong(v uint32) {
	w.Align(4)
	var b [4]byte
	w.order.order().PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// WriteLong appends a signed long.
func (w *Writer) WriteLong(v int32) { w.WriteULong(uint32(v)) }

// WriteULongLong appends an unsigned long long on an 8-byte boundary.
func (w *Writer) WriteULongLong(v uint64) {
	w.Align(8)
	var b [8]byte
	w.order.order().PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// WriteLongLong appends a signed long long.
func (w *Writer) WriteLongLong(v int64) { w.WriteULongLong(uint64(v)) }

// WriteFloat appends an IEEE 754 single.
func (w *Writer) WriteFloat(v float32) { w.WriteULong(math.Float32bits(v)) }

// WriteDouble appends an IEEE 754 double.
func (w *Writer) WriteDouble(v float64) { w.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a ulong length (including the terminating NUL), the
// bytes, and a NUL, per CDR.
func (w *Writer) WriteString(s string) {
	w.WriteULong(uint32(len(s) + 1))
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, 0)
}

// WriteOctets appends a sequence<octet>: ulong count then raw bytes.
func (w *Writer) WriteOctets(p []byte) {
	w.WriteULong(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// Reader decodes CDR values from a buffer.
type Reader struct {
	buf   []byte
	pos   int
	order ByteOrder
}

// NewReader decodes buf in the given byte order.
func NewReader(buf []byte, order ByteOrder) *Reader {
	return &Reader{buf: buf, order: order}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Pos returns the current stream position.
func (r *Reader) Pos() int { return r.pos }

// ErrTruncated reports a read past the end of the stream.
type ErrTruncated struct {
	Pos, Need, Have int
}

func (e *ErrTruncated) Error() string {
	return fmt.Sprintf("cdr: truncated stream at %d: need %d bytes, have %d", e.Pos, e.Need, e.Have)
}

func (r *Reader) align(n int) {
	for r.pos%n != 0 {
		r.pos++
	}
}

func (r *Reader) take(n int) ([]byte, error) {
	if r.pos+n > len(r.buf) {
		return nil, &ErrTruncated{Pos: r.pos, Need: n, Have: len(r.buf) - r.pos}
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// ReadOctet reads one unaligned byte.
func (r *Reader) ReadOctet() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadBool reads a boolean octet.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadOctet()
	return b != 0, err
}

// ReadUShort reads an unsigned short from a 2-byte boundary.
func (r *Reader) ReadUShort() (uint16, error) {
	r.align(2)
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return r.order.order().Uint16(b), nil
}

// ReadShort reads a signed short.
func (r *Reader) ReadShort() (int16, error) {
	v, err := r.ReadUShort()
	return int16(v), err
}

// ReadULong reads an unsigned long from a 4-byte boundary.
func (r *Reader) ReadULong() (uint32, error) {
	r.align(4)
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return r.order.order().Uint32(b), nil
}

// ReadLong reads a signed long.
func (r *Reader) ReadLong() (int32, error) {
	v, err := r.ReadULong()
	return int32(v), err
}

// ReadULongLong reads an unsigned long long from an 8-byte boundary.
func (r *Reader) ReadULongLong() (uint64, error) {
	r.align(8)
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return r.order.order().Uint64(b), nil
}

// ReadLongLong reads a signed long long.
func (r *Reader) ReadLongLong() (int64, error) {
	v, err := r.ReadULongLong()
	return int64(v), err
}

// ReadFloat reads an IEEE 754 single.
func (r *Reader) ReadFloat() (float32, error) {
	v, err := r.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble reads an IEEE 754 double.
func (r *Reader) ReadDouble() (float64, error) {
	v, err := r.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string.
func (r *Reader) ReadString() (string, error) {
	n, err := r.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("cdr: zero-length string encoding (missing NUL)")
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	if b[n-1] != 0 {
		return "", fmt.Errorf("cdr: string not NUL-terminated")
	}
	return string(b[:n-1]), nil
}

// ReadOctets reads a sequence<octet>.
func (r *Reader) ReadOctets() ([]byte, error) {
	n, err := r.ReadULong()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}
