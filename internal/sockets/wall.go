package sockets

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/pool"
	"padico/internal/telemetry"
)

// WallHost is one OS process's endpoint in a live (wall-clock) deployment:
// a single real TCP listener multiplexing every named service the process
// offers, plus an address book mapping node names to the real "host:port"
// endpoints of the other daemons. Unlike TCPStack — whose name table lives
// in one process and therefore only serves in-process integration tests —
// a WallHost lets genuinely separate OS processes (padico-d daemons, an
// attached padico-ctl) reach each other over the kernel network by node and
// service name.
//
// The wire handshake mirrors VLink's straight mapping: the dialer sends a
// 2-byte big-endian length followed by the service name, the acceptor
// answers one byte (1 = ACK, 0 = NAK), then the raw stream belongs to the
// service. A service name unknown to the mux is offered to the fallback
// handler (the daemon's gateway into its in-process VLink services) before
// being NAKed.
//
// WallHost is wall-clock-only code: it uses plain goroutines and must not
// be driven from a virtual-time simulation.
type WallHost struct {
	name string
	tel  atomic.Pointer[telemetry.Registry]

	mu       sync.Mutex
	book     map[string]string // node name → real "host:port"
	pinned   map[string]bool   // nodes whose entry Register must not replace
	services map[string]*wallListener
	fallback func(service string) (io.ReadWriteCloser, error)
	nl       net.Listener
	addr     string
	closed   bool

	// Mux session pool (see mux.go): endpoint → the one session DialAddr
	// reuses; muxLive tracks every session (pooled or accepted) for
	// shutdown; legacy remembers endpoints that NAKed the mux preamble so
	// later dials skip straight to the conn-per-dial protocol.
	sessions map[string]*wallSessionEntry
	muxLive  map[*muxSession]struct{}
	legacy   map[string]bool
	muxOff   bool
}

// wallSessionEntry is one endpoint's slot in the session pool. The first
// dialer creates the entry and performs the dial; concurrent dialers wait
// on done instead of racing their own connections up.
type wallSessionEntry struct {
	done chan struct{}
	s    *muxSession
	err  error
}

// maxWallService bounds the service-name preamble; anything longer is a
// protocol error, not a legitimate service.
const maxWallService = 1024

// handshakeTimeout bounds a wall handshake end to end: on the accept side
// how long a connection may take to send its preamble, on the dial side
// the whole TCP connect + preamble + ACK sequence under one deadline — so
// a half-open peer can stall a dialer for at most one timeout, not one per
// phase. A var so tests can tighten it.
var handshakeTimeout = 5 * time.Second

// NewWallHost returns a host with an empty address book and no listener —
// usable as a dial-only seat (an attached controller). Call ListenTCP to
// also serve.
func NewWallHost(name string) *WallHost {
	return &WallHost{
		name:     name,
		book:     make(map[string]string),
		pinned:   make(map[string]bool),
		services: make(map[string]*wallListener),
		sessions: make(map[string]*wallSessionEntry),
		muxLive:  make(map[*muxSession]struct{}),
		legacy:   make(map[string]bool),
	}
}

// NodeName identifies the local node.
func (h *WallHost) NodeName() string { return h.name }

// SetTelemetry points the host at a telemetry registry: every wall
// connection starts counting frames and bytes in/out, and handshake
// outcomes (accepts, dials, NAKs both ways) are recorded. Nil (the
// default) records nothing and wraps nothing.
func (h *WallHost) SetTelemetry(tel *telemetry.Registry) { h.tel.Store(tel) }

// Telemetry returns the registry the host reports into (nil if none was
// set; telemetry.Registry accessors are nil-safe).
func (h *WallHost) Telemetry() *telemetry.Registry { return h.tel.Load() }

func (h *WallHost) telemetry() *telemetry.Registry { return h.tel.Load() }

// countWall wraps a real connection so its traffic feeds the host's wall
// counters; without telemetry the connection passes through untouched.
func (h *WallHost) countWall(nc net.Conn) net.Conn {
	tel := h.telemetry()
	if tel == nil {
		return nc
	}
	return &countedNetConn{
		Conn: nc,
		in:   tel.Counter("wall.bytes_in"),
		out:  tel.Counter("wall.bytes_out"),
		fin:  tel.Counter("wall.frames_in"),
		fout: tel.Counter("wall.frames_out"),
	}
}

// countedNetConn counts a wall connection's traffic: every non-empty Read
// is one inbound frame, every Write one outbound frame.
type countedNetConn struct {
	net.Conn
	in, out, fin, fout *telemetry.Counter
}

func (c *countedNetConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(int64(n))
		c.fin.Inc()
	}
	return n, err
}

func (c *countedNetConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(int64(n))
		c.fout.Inc()
	}
	return n, err
}

// ListenTCP binds the host's real listener and starts accepting. It returns
// the actual address (resolving a ":0" ephemeral port), which is also the
// default advertised endpoint.
func (h *WallHost) ListenTCP(bind string) (string, error) {
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return "", fmt.Errorf("sockets: wall host %s is closed", h.name)
	}
	if h.nl != nil {
		return "", fmt.Errorf("sockets: wall host %s already listens on %s", h.name, h.addr)
	}
	nl, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("sockets: wall listen %s: %w", bind, err)
	}
	h.nl = nl
	h.addr = nl.Addr().String()
	go h.acceptLoop(nl)
	return h.addr, nil
}

// Addr returns the listening address, or "" for a dial-only host.
func (h *WallHost) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// Register records (or updates) a node's real endpoint in the address book.
// Latest registration wins — a re-deployed daemon moves, and freshly
// learned addresses must replace stale ones — except for nodes Pin has
// locked, whose entries never change.
func (h *WallHost) Register(node, addr string) {
	if node == "" || addr == "" {
		return
	}
	h.mu.Lock()
	if !h.pinned[node] {
		h.book[node] = addr
	}
	h.mu.Unlock()
}

// Pin records a node's endpoint and locks it against later Register calls.
// Attached controllers pin the endpoints the operator named: a daemon
// behind a NAT or port-forward advertises an address that works for its
// peers but not for the operator, and learning must not clobber the one
// address the operator knows works from their seat.
func (h *WallHost) Pin(node, addr string) {
	if node == "" || addr == "" {
		return
	}
	h.mu.Lock()
	h.book[node] = addr
	h.pinned[node] = true
	h.mu.Unlock()
}

// AddrOf looks a node's endpoint up in the address book.
func (h *WallHost) AddrOf(node string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.book[node]
	return a, ok
}

// Knows reports whether the host can currently dial the named node — the
// wall notion of reachability.
func (h *WallHost) Knows(node string) bool {
	_, ok := h.AddrOf(node)
	return ok
}

// Book snapshots the address book, sorted iteration left to the caller.
func (h *WallHost) Book() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.book))
	for n, a := range h.book {
		out[n] = a
	}
	return out
}

// Nodes returns the known node names, sorted.
func (h *WallHost) Nodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.book))
	for n := range h.book {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetFallback installs the handler consulted for inbound service names the
// mux does not know. The daemon uses it as a gateway: it dials the service
// on its in-process VLink linker and the host proxies bytes between the
// wall connection and the local stream, making every in-process service
// (soap:sys, GIOP endpoints, ...) remotely dialable.
func (h *WallHost) SetFallback(f func(service string) (io.ReadWriteCloser, error)) {
	h.mu.Lock()
	h.fallback = f
	h.mu.Unlock()
}

// Listen registers a service on the mux.
func (h *WallHost) Listen(service string) (Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("sockets: wall host %s is closed", h.name)
	}
	if _, dup := h.services[service]; dup {
		return nil, fmt.Errorf("sockets: service %q already registered on %s", service, h.name)
	}
	l := &wallListener{
		h:       h,
		service: service,
		ch:      make(chan Conn),
		done:    make(chan struct{}),
	}
	h.services[service] = l
	return l, nil
}

// Dial connects to a service on a node whose endpoint the address book
// knows.
func (h *WallHost) Dial(node, service string) (Conn, error) {
	addr, ok := h.AddrOf(node)
	if !ok {
		return nil, fmt.Errorf("sockets: no known endpoint for node %q in %s's wall address book", node, h.name)
	}
	c, err := h.DialAddr(addr, service)
	if err != nil {
		return nil, fmt.Errorf("sockets: dialing %s (%s): %w", node, addr, err)
	}
	if rn, ok := c.(interface{ setRemote(string) }); ok {
		rn.setRemote(node)
	}
	return c, nil
}

// DialAddr connects to a service at an explicit real endpoint — the attach
// bootstrap path, before any node name is known. It rides the pooled mux
// session to that endpoint when the peer supports it (one TCP connection
// per node pair, one logical stream per dial) and falls back to the legacy
// conn-per-dial handshake against old daemons.
func (h *WallHost) DialAddr(addr, service string) (Conn, error) {
	if len(service) == 0 || len(service) > maxWallService {
		return nil, fmt.Errorf("sockets: bad wall service name %q", service)
	}
	deadline := time.Now().Add(handshakeTimeout)

	// A locally sampled root span covers the whole dial: mux stream setup,
	// the legacy fallback when the peer predates the mux, and the NAK path.
	// With sampling off (the daemon default) this is one atomic load.
	sp := h.telemetry().StartSpan("wall.dial")
	sp.Annotate("addr", addr)
	sp.Annotate("service", service)
	defer sp.End()

	h.mu.Lock()
	tryMux := !h.muxOff && !h.legacy[addr] && !h.closed
	h.mu.Unlock()

	if tryMux {
		c, err := h.dialMux(addr, service, deadline)
		switch {
		case err == nil:
			sp.Annotate("path", "mux")
			return c, nil
		case errors.Is(err, errMuxUnsupported):
			// An old daemon: remember it and fall through to the legacy
			// protocol — this dial and every later one skip the probe.
			h.mu.Lock()
			h.legacy[addr] = true
			h.mu.Unlock()
			h.telemetry().Counter("wall.mux_fallbacks").Inc()
			sp.Annotate("mux_fallback", "true")
		default:
			sp.Annotate("error", err.Error())
			return nil, err
		}
	}

	nc, nak, err := h.rawDial(addr, service, deadline)
	if err != nil {
		sp.Annotate("error", err.Error())
		return nil, err
	}
	if nak {
		h.telemetry().Counter("wall.dial_naks").Inc()
		sp.Annotate("nak", "true")
		return nil, fmt.Errorf("%w: no service %q at %s", ErrRefused, service, addr)
	}
	sp.Annotate("path", "legacy")
	// Count inside the tcpConn wrapper: Dial re-labels the returned conn,
	// so the counting layer must sit underneath it.
	return &tcpConn{Conn: h.countWall(nc), local: h.name, remote: addr}, nil
}

// rawDial opens a TCP connection and runs the name-preamble handshake with
// connect, preamble write and ACK wait all bounded by the one deadline.
// nak reports a clean refusal (the peer answered NAK).
func (h *WallHost) rawDial(addr, service string, deadline time.Time) (nc net.Conn, nak bool, err error) {
	nc, err = net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, false, fmt.Errorf("sockets: wall dial %s: %w", addr, err)
	}
	_ = nc.SetDeadline(deadline)
	hs := pool.Get(2 + len(service))
	binary.BigEndian.PutUint16(hs, uint16(len(service)))
	copy(hs[2:], service)
	_, err = nc.Write(hs)
	pool.Put(hs)
	if err != nil {
		nc.Close()
		return nil, false, fmt.Errorf("sockets: wall handshake to %s: %w", addr, err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(nc, ack[:]); err != nil {
		nc.Close()
		return nil, false, fmt.Errorf("sockets: wall handshake to %s: %w", addr, err)
	}
	if ack[0] != 1 {
		nc.Close()
		return nil, true, nil
	}
	_ = nc.SetDeadline(time.Time{})
	h.telemetry().Counter("wall.dials").Inc()
	return nc, false, nil
}

// dialMux opens a stream on the pooled session to addr, establishing the
// session first if needed. A pooled session that died under us (idle reap
// racing the dial, peer restart) is dropped and the dial retried once on a
// fresh connection.
func (h *WallHost) dialMux(addr, service string, deadline time.Time) (Conn, error) {
	for attempt := 0; ; attempt++ {
		s, fresh, err := h.sessionTo(addr, deadline)
		if err != nil {
			return nil, err
		}
		st, err := s.open(service, deadline)
		if err == nil {
			return st, nil
		}
		if errors.Is(err, ErrRefused) || errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, err
		}
		h.dropSessionRefs(s)
		if fresh || attempt > 0 {
			return nil, err
		}
	}
}

// sessionTo returns the pooled mux session for an endpoint, dialing one if
// none exists. Concurrent callers share a single dial; fresh reports that
// this call created the session (so open failures should not retry).
func (h *WallHost) sessionTo(addr string, deadline time.Time) (*muxSession, bool, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, false, fmt.Errorf("%w: wall host %s", ErrClosed, h.name)
	}
	if e, ok := h.sessions[addr]; ok {
		h.mu.Unlock()
		<-e.done
		return e.s, false, e.err
	}
	e := &wallSessionEntry{done: make(chan struct{})}
	h.sessions[addr] = e
	h.mu.Unlock()

	s, err := h.dialSession(addr, deadline)
	e.s, e.err = s, err
	if err != nil {
		h.mu.Lock()
		if h.sessions[addr] == e {
			delete(h.sessions, addr)
		}
		h.mu.Unlock()
	}
	close(e.done)
	return s, true, err
}

// dialSession establishes one mux session: the TCP dial and muxService
// preamble, then the HELLO advertising our own endpoint so the peer pools
// the reverse direction onto this same connection.
func (h *WallHost) dialSession(addr string, deadline time.Time) (*muxSession, error) {
	nc, nak, err := h.rawDial(addr, muxService, deadline)
	if err != nil {
		return nil, err
	}
	if nak {
		return nil, errMuxUnsupported
	}
	s := h.newMuxSession(nc, addr, true)
	if s == nil {
		nc.Close()
		return nil, fmt.Errorf("%w: wall host %s", ErrClosed, h.name)
	}
	h.mu.Lock()
	s.poolKey = addr
	h.mu.Unlock()
	if adv, ok := h.AddrOf(h.name); ok {
		_ = s.sendFrame(frameHELLO, 0, []byte(adv))
	}
	go s.readLoop()
	return s, nil
}

// adoptSession pools an accepted session under the dialing node's
// advertised endpoint (from its HELLO), so our dials toward that node
// reuse the connection it already opened — one conn per node *pair*, not
// per direction. First session per endpoint wins.
func (h *WallHost) adoptSession(s *muxSession, addr string) {
	if addr == "" || s.client {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || s.poolKey != "" {
		return
	}
	if _, taken := h.sessions[addr]; taken {
		return
	}
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return
	}
	e := &wallSessionEntry{done: make(chan struct{}), s: s}
	close(e.done)
	h.sessions[addr] = e
	s.poolKey = addr
}

// dropSessionRefs forgets a session: its pool slot (when it owns one) and
// its liveness entry.
func (h *WallHost) dropSessionRefs(s *muxSession) {
	h.mu.Lock()
	if s.poolKey != "" {
		if e, ok := h.sessions[s.poolKey]; ok && e.s == s {
			delete(h.sessions, s.poolKey)
		}
		s.poolKey = ""
	}
	delete(h.muxLive, s)
	h.mu.Unlock()
}

// DropSessions force-closes every live mux session: in-flight streams
// error out fast and the next dial transparently re-establishes sessions.
// The session-loss test hook and an operator escape hatch. Returns the
// number of sessions dropped.
func (h *WallHost) DropSessions() int {
	h.mu.Lock()
	live := make([]*muxSession, 0, len(h.muxLive))
	for s := range h.muxLive {
		live = append(live, s)
	}
	h.mu.Unlock()
	for _, s := range live {
		s.teardown(errors.New("session dropped"))
	}
	return len(live)
}

// DisableMux reverts the host to the legacy conn-per-dial protocol for
// both dialing and accepting — emulating a pre-mux daemon. Intended for
// compatibility tests and as an operator escape hatch; flip it before the
// host starts dialing.
func (h *WallHost) DisableMux() {
	h.mu.Lock()
	h.muxOff = true
	h.mu.Unlock()
}

// Close shuts the host down: the real listener, every registered service
// and every parked Accept.
func (h *WallHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	nl := h.nl
	ls := make([]*wallListener, 0, len(h.services))
	for _, l := range h.services {
		ls = append(ls, l)
	}
	h.services = make(map[string]*wallListener)
	sess := make([]*muxSession, 0, len(h.muxLive))
	for s := range h.muxLive {
		sess = append(sess, s)
	}
	h.mu.Unlock()
	var err error
	if nl != nil {
		err = nl.Close()
	}
	for _, l := range ls {
		l.shut()
	}
	for _, s := range sess {
		s.teardown(nil)
	}
	return err
}

func (h *WallHost) acceptLoop(nl net.Listener) {
	for {
		nc, err := nl.Accept()
		if err != nil {
			return
		}
		go h.serveConn(nc)
	}
}

// serveConn performs the service handshake on one inbound connection and
// hands it to the matching listener, the fallback gateway, or a NAK.
func (h *WallHost) serveConn(nc net.Conn) {
	_ = nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var lenb [2]byte
	if _, err := io.ReadFull(nc, lenb[:]); err != nil {
		nc.Close()
		return
	}
	n := int(binary.BigEndian.Uint16(lenb[:]))
	if n == 0 || n > maxWallService {
		nc.Close()
		return
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(nc, name); err != nil {
		nc.Close()
		return
	}
	_ = nc.SetReadDeadline(time.Time{})
	service := string(name)

	if service == muxService {
		h.serveMux(nc)
		return
	}

	h.mu.Lock()
	l, ok := h.services[service]
	fb := h.fallback
	h.mu.Unlock()

	if ok {
		if _, err := nc.Write([]byte{1}); err != nil {
			nc.Close()
			return
		}
		h.telemetry().Counter("wall.accepts").Inc()
		l.deliver(&tcpConn{Conn: h.countWall(nc), local: h.name, remote: nc.RemoteAddr().String()})
		return
	}
	if fb != nil {
		if local, err := fb(service); err == nil {
			if _, err := nc.Write([]byte{1}); err != nil {
				local.Close()
				nc.Close()
				return
			}
			h.telemetry().Counter("wall.accepts").Inc()
			proxy(h.countWall(nc), local)
			return
		}
	}
	h.telemetry().Counter("wall.handshake_naks").Inc()
	_, _ = nc.Write([]byte{0}) // NAK
	nc.Close()
}

// serveMux upgrades an accepted connection whose preamble named the mux
// service: ACK, then run the session's read loop on this goroutine. With
// the mux disabled the host NAKs like an old daemon would.
func (h *WallHost) serveMux(nc net.Conn) {
	h.mu.Lock()
	refuse := h.muxOff || h.closed
	h.mu.Unlock()
	if refuse {
		h.telemetry().Counter("wall.handshake_naks").Inc()
		_, _ = nc.Write([]byte{0}) // NAK
		nc.Close()
		return
	}
	if _, err := nc.Write([]byte{1}); err != nil {
		nc.Close()
		return
	}
	h.telemetry().Counter("wall.accepts").Inc()
	s := h.newMuxSession(nc, nc.RemoteAddr().String(), false)
	if s == nil {
		nc.Close()
		return
	}
	s.readLoop()
}

// proxy pipes bytes between a wall connection and a local stream until
// either side ends, then closes both. Copy buffers come from the shared
// pool so gateway traffic does not allocate per connection.
func proxy(a io.ReadWriteCloser, b io.ReadWriteCloser) {
	var once sync.Once
	shut := func() {
		a.Close()
		b.Close()
	}
	pipe := func(dst io.Writer, src io.Reader) {
		buf := pool.Get(32 << 10)
		_, _ = io.CopyBuffer(dst, src, buf)
		pool.Put(buf)
		once.Do(shut)
	}
	go pipe(a, b)
	go pipe(b, a)
}

// wallListener is one muxed service's accept queue.
type wallListener struct {
	h       *WallHost
	service string
	ch      chan Conn
	once    sync.Once
	done    chan struct{}
}

func (l *wallListener) deliver(c Conn) {
	select {
	case l.ch <- c:
	case <-l.done:
		c.Close()
	}
}

// Accept blocks until a handshaken connection arrives for this service.
func (l *wallListener) Accept() (Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: wall service %q", ErrClosed, l.service)
	}
}

func (l *wallListener) Addr() string { return JoinAddr(l.h.name, 0) }

// Close unregisters the service from the mux.
func (l *wallListener) Close() error {
	l.h.mu.Lock()
	if l.h.services[l.service] == l {
		delete(l.h.services, l.service)
	}
	l.h.mu.Unlock()
	l.shut()
	return nil
}

func (l *wallListener) shut() { l.once.Do(func() { close(l.done) }) }
