package sockets

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/telemetry"
)

// WallHost is one OS process's endpoint in a live (wall-clock) deployment:
// a single real TCP listener multiplexing every named service the process
// offers, plus an address book mapping node names to the real "host:port"
// endpoints of the other daemons. Unlike TCPStack — whose name table lives
// in one process and therefore only serves in-process integration tests —
// a WallHost lets genuinely separate OS processes (padico-d daemons, an
// attached padico-ctl) reach each other over the kernel network by node and
// service name.
//
// The wire handshake mirrors VLink's straight mapping: the dialer sends a
// 2-byte big-endian length followed by the service name, the acceptor
// answers one byte (1 = ACK, 0 = NAK), then the raw stream belongs to the
// service. A service name unknown to the mux is offered to the fallback
// handler (the daemon's gateway into its in-process VLink services) before
// being NAKed.
//
// WallHost is wall-clock-only code: it uses plain goroutines and must not
// be driven from a virtual-time simulation.
type WallHost struct {
	name string
	tel  atomic.Pointer[telemetry.Registry]

	mu       sync.Mutex
	book     map[string]string // node name → real "host:port"
	pinned   map[string]bool   // nodes whose entry Register must not replace
	services map[string]*wallListener
	fallback func(service string) (io.ReadWriteCloser, error)
	nl       net.Listener
	addr     string
	closed   bool
}

// maxWallService bounds the service-name preamble; anything longer is a
// protocol error, not a legitimate service.
const maxWallService = 1024

// handshakeTimeout bounds how long an accepted connection may take to send
// its service preamble, so a stray dialer cannot park an accept goroutine
// forever.
const handshakeTimeout = 5 * time.Second

// NewWallHost returns a host with an empty address book and no listener —
// usable as a dial-only seat (an attached controller). Call ListenTCP to
// also serve.
func NewWallHost(name string) *WallHost {
	return &WallHost{
		name:     name,
		book:     make(map[string]string),
		pinned:   make(map[string]bool),
		services: make(map[string]*wallListener),
	}
}

// NodeName identifies the local node.
func (h *WallHost) NodeName() string { return h.name }

// SetTelemetry points the host at a telemetry registry: every wall
// connection starts counting frames and bytes in/out, and handshake
// outcomes (accepts, dials, NAKs both ways) are recorded. Nil (the
// default) records nothing and wraps nothing.
func (h *WallHost) SetTelemetry(tel *telemetry.Registry) { h.tel.Store(tel) }

func (h *WallHost) telemetry() *telemetry.Registry { return h.tel.Load() }

// countWall wraps a real connection so its traffic feeds the host's wall
// counters; without telemetry the connection passes through untouched.
func (h *WallHost) countWall(nc net.Conn) net.Conn {
	tel := h.telemetry()
	if tel == nil {
		return nc
	}
	return &countedNetConn{
		Conn: nc,
		in:   tel.Counter("wall.bytes_in"),
		out:  tel.Counter("wall.bytes_out"),
		fin:  tel.Counter("wall.frames_in"),
		fout: tel.Counter("wall.frames_out"),
	}
}

// countedNetConn counts a wall connection's traffic: every non-empty Read
// is one inbound frame, every Write one outbound frame.
type countedNetConn struct {
	net.Conn
	in, out, fin, fout *telemetry.Counter
}

func (c *countedNetConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(int64(n))
		c.fin.Inc()
	}
	return n, err
}

func (c *countedNetConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(int64(n))
		c.fout.Inc()
	}
	return n, err
}

// ListenTCP binds the host's real listener and starts accepting. It returns
// the actual address (resolving a ":0" ephemeral port), which is also the
// default advertised endpoint.
func (h *WallHost) ListenTCP(bind string) (string, error) {
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return "", fmt.Errorf("sockets: wall host %s is closed", h.name)
	}
	if h.nl != nil {
		return "", fmt.Errorf("sockets: wall host %s already listens on %s", h.name, h.addr)
	}
	nl, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("sockets: wall listen %s: %w", bind, err)
	}
	h.nl = nl
	h.addr = nl.Addr().String()
	go h.acceptLoop(nl)
	return h.addr, nil
}

// Addr returns the listening address, or "" for a dial-only host.
func (h *WallHost) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// Register records (or updates) a node's real endpoint in the address book.
// Latest registration wins — a re-deployed daemon moves, and freshly
// learned addresses must replace stale ones — except for nodes Pin has
// locked, whose entries never change.
func (h *WallHost) Register(node, addr string) {
	if node == "" || addr == "" {
		return
	}
	h.mu.Lock()
	if !h.pinned[node] {
		h.book[node] = addr
	}
	h.mu.Unlock()
}

// Pin records a node's endpoint and locks it against later Register calls.
// Attached controllers pin the endpoints the operator named: a daemon
// behind a NAT or port-forward advertises an address that works for its
// peers but not for the operator, and learning must not clobber the one
// address the operator knows works from their seat.
func (h *WallHost) Pin(node, addr string) {
	if node == "" || addr == "" {
		return
	}
	h.mu.Lock()
	h.book[node] = addr
	h.pinned[node] = true
	h.mu.Unlock()
}

// AddrOf looks a node's endpoint up in the address book.
func (h *WallHost) AddrOf(node string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.book[node]
	return a, ok
}

// Knows reports whether the host can currently dial the named node — the
// wall notion of reachability.
func (h *WallHost) Knows(node string) bool {
	_, ok := h.AddrOf(node)
	return ok
}

// Book snapshots the address book, sorted iteration left to the caller.
func (h *WallHost) Book() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.book))
	for n, a := range h.book {
		out[n] = a
	}
	return out
}

// Nodes returns the known node names, sorted.
func (h *WallHost) Nodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.book))
	for n := range h.book {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetFallback installs the handler consulted for inbound service names the
// mux does not know. The daemon uses it as a gateway: it dials the service
// on its in-process VLink linker and the host proxies bytes between the
// wall connection and the local stream, making every in-process service
// (soap:sys, GIOP endpoints, ...) remotely dialable.
func (h *WallHost) SetFallback(f func(service string) (io.ReadWriteCloser, error)) {
	h.mu.Lock()
	h.fallback = f
	h.mu.Unlock()
}

// Listen registers a service on the mux.
func (h *WallHost) Listen(service string) (Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("sockets: wall host %s is closed", h.name)
	}
	if _, dup := h.services[service]; dup {
		return nil, fmt.Errorf("sockets: service %q already registered on %s", service, h.name)
	}
	l := &wallListener{
		h:       h,
		service: service,
		ch:      make(chan Conn),
		done:    make(chan struct{}),
	}
	h.services[service] = l
	return l, nil
}

// Dial connects to a service on a node whose endpoint the address book
// knows.
func (h *WallHost) Dial(node, service string) (Conn, error) {
	addr, ok := h.AddrOf(node)
	if !ok {
		return nil, fmt.Errorf("sockets: no known endpoint for node %q in %s's wall address book", node, h.name)
	}
	c, err := h.DialAddr(addr, service)
	if err != nil {
		return nil, fmt.Errorf("sockets: dialing %s (%s): %w", node, addr, err)
	}
	c.(*tcpConn).remote = node
	return c, nil
}

// DialAddr connects to a service at an explicit real endpoint — the attach
// bootstrap path, before any node name is known.
func (h *WallHost) DialAddr(addr, service string) (Conn, error) {
	if len(service) == 0 || len(service) > maxWallService {
		return nil, fmt.Errorf("sockets: bad wall service name %q", service)
	}
	nc, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("sockets: wall dial %s: %w", addr, err)
	}
	// The handshake is bounded like the accept side's: a wedged daemon or
	// a non-padico endpoint that accepts and then says nothing must fail
	// the dial, not hang it — callers (the registry client in particular)
	// hold serialization locks across dials and rely on failure to fail
	// over.
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))
	hs := make([]byte, 2+len(service))
	binary.BigEndian.PutUint16(hs, uint16(len(service)))
	copy(hs[2:], service)
	if _, err := nc.Write(hs); err != nil {
		nc.Close()
		return nil, fmt.Errorf("sockets: wall handshake to %s: %w", addr, err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(nc, ack[:]); err != nil || ack[0] != 1 {
		nc.Close()
		h.telemetry().Counter("wall.dial_naks").Inc()
		return nil, fmt.Errorf("%w: no service %q at %s", ErrRefused, service, addr)
	}
	_ = nc.SetDeadline(time.Time{})
	h.telemetry().Counter("wall.dials").Inc()
	// Count inside the tcpConn wrapper: Dial re-labels the returned conn via
	// a *tcpConn assertion, so the counting layer must sit underneath it.
	return &tcpConn{Conn: h.countWall(nc), local: h.name, remote: addr}, nil
}

// Close shuts the host down: the real listener, every registered service
// and every parked Accept.
func (h *WallHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	nl := h.nl
	ls := make([]*wallListener, 0, len(h.services))
	for _, l := range h.services {
		ls = append(ls, l)
	}
	h.services = make(map[string]*wallListener)
	h.mu.Unlock()
	var err error
	if nl != nil {
		err = nl.Close()
	}
	for _, l := range ls {
		l.shut()
	}
	return err
}

func (h *WallHost) acceptLoop(nl net.Listener) {
	for {
		nc, err := nl.Accept()
		if err != nil {
			return
		}
		go h.serveConn(nc)
	}
}

// serveConn performs the service handshake on one inbound connection and
// hands it to the matching listener, the fallback gateway, or a NAK.
func (h *WallHost) serveConn(nc net.Conn) {
	_ = nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var lenb [2]byte
	if _, err := io.ReadFull(nc, lenb[:]); err != nil {
		nc.Close()
		return
	}
	n := int(binary.BigEndian.Uint16(lenb[:]))
	if n == 0 || n > maxWallService {
		nc.Close()
		return
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(nc, name); err != nil {
		nc.Close()
		return
	}
	_ = nc.SetReadDeadline(time.Time{})
	service := string(name)

	h.mu.Lock()
	l, ok := h.services[service]
	fb := h.fallback
	h.mu.Unlock()

	if ok {
		if _, err := nc.Write([]byte{1}); err != nil {
			nc.Close()
			return
		}
		h.telemetry().Counter("wall.accepts").Inc()
		l.deliver(&tcpConn{Conn: h.countWall(nc), local: h.name, remote: nc.RemoteAddr().String()})
		return
	}
	if fb != nil {
		if local, err := fb(service); err == nil {
			if _, err := nc.Write([]byte{1}); err != nil {
				local.Close()
				nc.Close()
				return
			}
			h.telemetry().Counter("wall.accepts").Inc()
			proxy(h.countWall(nc), local)
			return
		}
	}
	h.telemetry().Counter("wall.handshake_naks").Inc()
	_, _ = nc.Write([]byte{0}) // NAK
	nc.Close()
}

// proxy pipes bytes between a wall connection and a local stream until
// either side ends, then closes both.
func proxy(a io.ReadWriteCloser, b io.ReadWriteCloser) {
	var once sync.Once
	shut := func() {
		a.Close()
		b.Close()
	}
	go func() {
		_, _ = io.Copy(a, b)
		once.Do(shut)
	}()
	go func() {
		_, _ = io.Copy(b, a)
		once.Do(shut)
	}()
}

// wallListener is one muxed service's accept queue.
type wallListener struct {
	h       *WallHost
	service string
	ch      chan Conn
	once    sync.Once
	done    chan struct{}
}

func (l *wallListener) deliver(c Conn) {
	select {
	case l.ch <- c:
	case <-l.done:
		c.Close()
	}
}

// Accept blocks until a handshaken connection arrives for this service.
func (l *wallListener) Accept() (Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: wall service %q", ErrClosed, l.service)
	}
}

func (l *wallListener) Addr() string { return JoinAddr(l.h.name, 0) }

// Close unregisters the service from the mux.
func (l *wallListener) Close() error {
	l.h.mu.Lock()
	if l.h.services[l.service] == l {
		delete(l.h.services, l.service)
	}
	l.h.mu.Unlock()
	l.shut()
	return nil
}

func (l *wallListener) shut() { l.once.Do(func() { close(l.done) }) }
