package sockets

import (
	"fmt"
	"net"
	"sync"
)

// TCPStack is the wall-clock driver: virtual "node:port" addresses are
// mapped onto real loopback TCP sockets, so the full middleware stack can
// be exercised over the genuine kernel network path in integration tests.
type TCPStack struct {
	mu    sync.Mutex
	names map[string]string // "node:port" -> "127.0.0.1:realport"
}

// NewTCPStack returns an empty loopback stack.
func NewTCPStack() *TCPStack {
	return &TCPStack{names: make(map[string]string)}
}

// Host returns the Provider view for one named node.
func (st *TCPStack) Host(nodeName string) Provider {
	return &tcpProvider{st: st, node: nodeName}
}

type tcpProvider struct {
	st   *TCPStack
	node string
}

func (p *tcpProvider) NodeName() string { return p.node }

func (p *tcpProvider) Listen(port int) (Listener, error) {
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sockets: tcp listen: %w", err)
	}
	if port == 0 {
		port = nl.Addr().(*net.TCPAddr).Port
	}
	addr := JoinAddr(p.node, port)
	p.st.mu.Lock()
	if _, exists := p.st.names[addr]; exists {
		p.st.mu.Unlock()
		nl.Close()
		return nil, fmt.Errorf("sockets: address %s already in use", addr)
	}
	p.st.names[addr] = nl.Addr().String()
	p.st.mu.Unlock()
	return &tcpListener{st: p.st, addr: addr, nl: nl}, nil
}

func (p *tcpProvider) Dial(addr string) (Conn, error) {
	p.st.mu.Lock()
	real, ok := p.st.names[addr]
	p.st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	nc, err := net.Dial("tcp", real)
	if err != nil {
		return nil, fmt.Errorf("sockets: dial %s (%s): %w", addr, real, err)
	}
	return &tcpConn{Conn: nc, local: p.node, remote: addr}, nil
}

type tcpListener struct {
	st   *TCPStack
	addr string
	nl   net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{Conn: nc, local: l.addr, remote: nc.RemoteAddr().String()}, nil
}

func (l *tcpListener) Addr() string { return l.addr }

func (l *tcpListener) Close() error {
	l.st.mu.Lock()
	delete(l.st.names, l.addr)
	l.st.mu.Unlock()
	return l.nl.Close()
}

type tcpConn struct {
	net.Conn
	local, remote string
}

func (c *tcpConn) LocalAddr() string  { return c.local }
func (c *tcpConn) RemoteAddr() string { return c.remote }

// setRemote relabels the peer; WallHost.Dial stamps the node name over the
// raw endpoint on whatever conn type the dial produced.
func (c *tcpConn) setRemote(node string) { c.remote = node }
