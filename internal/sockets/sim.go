package sockets

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"padico/internal/simnet"
	"padico/internal/vtime"
)

// SimStack is the simulated TCP/IP stack of one fabric. All nodes attached
// to the fabric share a listener namespace ("node:port").
type SimStack struct {
	fabric *simnet.Fabric
	net    *simnet.Net
	cost   simnet.Cost

	mu        sync.Mutex
	listeners map[string]*simListener
	ephemeral int
}

// NewSimStack builds a socket stack over a LAN/WAN fabric.
func NewSimStack(fabric *simnet.Fabric) *SimStack {
	return &SimStack{
		fabric:    fabric,
		net:       fabric.Net(),
		cost:      simnet.TCPCost,
		listeners: make(map[string]*simListener),
	}
}

// Fabric returns the device this stack drives.
func (st *SimStack) Fabric() *simnet.Fabric { return st.fabric }

// Host returns the Provider view of the stack for one node.
func (st *SimStack) Host(node *simnet.Node) Provider {
	return &simProvider{st: st, node: node}
}

type simProvider struct {
	st   *SimStack
	node *simnet.Node
}

func (p *simProvider) NodeName() string { return p.node.Name }

func (p *simProvider) Listen(port int) (Listener, error) {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if port == 0 {
		st.ephemeral++
		port = 49152 + st.ephemeral
	}
	addr := JoinAddr(p.node.Name, port)
	if _, exists := st.listeners[addr]; exists {
		return nil, fmt.Errorf("sockets: address %s already in use", addr)
	}
	l := &simListener{
		st:   st,
		node: p.node,
		addr: addr,
		q:    vtime.NewQueue[*simConn](st.net.Runtime(), "sockets: accept on "+addr),
	}
	st.listeners[addr] = l
	return l, nil
}

func (p *simProvider) Dial(addr string) (Conn, error) {
	st := p.st
	peer, _, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	l, ok := st.listeners[addr]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	_ = peer
	fwd, err := st.fabric.Path(p.node, l.node)
	if err != nil {
		return nil, err
	}
	rev, err := st.fabric.Path(l.node, p.node)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.ephemeral++
	local := JoinAddr(p.node.Name, 32768+st.ephemeral)
	st.mu.Unlock()
	rt := st.net.Runtime()
	aToB := vtime.NewQueue[[]byte](rt, "sockets: stream "+local+"→"+addr)
	bToA := vtime.NewQueue[[]byte](rt, "sockets: stream "+addr+"→"+local)
	client := &simConn{st: st, node: p.node, local: local, remote: addr, path: fwd, in: bToA, out: aToB}
	server := &simConn{st: st, node: l.node, local: addr, remote: local, path: rev, in: aToB, out: bToA}
	client.peer, server.peer = server, client
	// SYN/ACK handshake: one round trip of latency before Dial returns.
	if err := st.net.Transfer(fwd, 0); err != nil {
		return nil, err
	}
	l.q.Push(server)
	if err := st.net.Transfer(rev, 0); err != nil {
		return nil, err
	}
	return client, nil
}

type simListener struct {
	st   *SimStack
	node *simnet.Node
	addr string
	q    *vtime.Queue[*simConn]
}

func (l *simListener) Accept() (Conn, error) {
	c, err := l.q.Pop()
	if err != nil {
		return nil, fmt.Errorf("sockets: accept on closed listener %s", l.addr)
	}
	return c, nil
}

func (l *simListener) Addr() string { return l.addr }

func (l *simListener) Close() error {
	l.st.mu.Lock()
	delete(l.st.listeners, l.addr)
	l.st.mu.Unlock()
	l.q.Close()
	return nil
}

// simConn is one direction pair of a simulated TCP connection.
type simConn struct {
	st     *SimStack
	node   *simnet.Node
	peer   *simConn
	local  string
	remote string
	path   simnet.Path // local → remote

	in  *vtime.Queue[[]byte]
	out *vtime.Queue[[]byte]

	mu       sync.Mutex
	leftover []byte
	closed   bool
}

func (c *simConn) LocalAddr() string  { return c.local }
func (c *simConn) RemoteAddr() string { return c.remote }

// Write transmits p as one TCP burst: the stack cost is charged to the
// caller, the fluid model times the wire, and the bytes land in the peer's
// receive queue at arrival.
func (c *simConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	if len(p) == 0 {
		return 0, nil
	}
	c.node.Charge(c.st.cost, len(p))
	if err := c.st.net.Transfer(c.path, len(p)); err != nil {
		return 0, err
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	c.out.Push(buf)
	return len(p), nil
}

// Read returns buffered bytes, blocking until data or EOF.
func (c *simConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.leftover) > 0 {
		n := copy(p, c.leftover)
		c.leftover = c.leftover[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	chunk, err := c.in.Pop()
	if err != nil {
		if errors.Is(err, vtime.ErrClosed) {
			return 0, io.EOF
		}
		return 0, err
	}
	n := copy(p, chunk)
	if n < len(chunk) {
		c.mu.Lock()
		c.leftover = append(c.leftover, chunk[n:]...)
		c.mu.Unlock()
	}
	return n, nil
}

// Close shuts both directions down: the peer reads EOF after draining.
func (c *simConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.out.Close()
	c.in.Close()
	c.peer.mu.Lock()
	c.peer.closed = true
	c.peer.mu.Unlock()
	return nil
}
