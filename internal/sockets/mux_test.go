package sockets

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHost builds a listening WallHost with an "echo" service that copies
// every stream back to its sender.
func echoHost(t *testing.T, name string) (*WallHost, string) {
	t.Helper()
	h := NewWallHost(name)
	addr, err := h.ListenTCP("")
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	l, err := h.Listen("echo")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { h.Close() })
	return h, addr
}

// roundTrip writes msg on a fresh stream and expects it echoed back.
func roundTrip(t *testing.T, h *WallHost, addr string, msg string) {
	t.Helper()
	c, err := h.DialAddr(addr, "echo")
	if err != nil {
		t.Fatalf("DialAddr: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if string(got) != msg {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
}

// dialerHost builds a dial-only host that is torn down with the test.
func dialerHost(t *testing.T, name string) *WallHost {
	t.Helper()
	h := NewWallHost(name)
	t.Cleanup(func() { h.Close() })
	return h
}

// TestMuxSessionReuse is the tentpole invariant: many dials to one node
// ride one TCP connection.
func TestMuxSessionReuse(t *testing.T) {
	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	var conns []Conn
	for i := 0; i < 10; i++ {
		c, err := d.DialAddr(addr, "echo")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	d.mu.Lock()
	nsess := len(d.sessions)
	d.mu.Unlock()
	if nsess != 1 {
		t.Fatalf("10 dials created %d sessions, want 1", nsess)
	}
	for i, c := range conns {
		msg := fmt.Sprintf("stream-%d", i)
		if _, err := c.Write([]byte(msg)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, c := range conns {
		want := fmt.Sprintf("stream-%d", i)
		got := make([]byte, len(want))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("stream %d: got %q want %q", i, got, want)
		}
		c.Close()
	}
}

// TestMuxBulkTransfer pushes well past the flow-control window both ways.
func TestMuxBulkTransfer(t *testing.T) {
	defer func(w uint32) { muxWindow = w }(muxWindow)
	muxWindow = 8 << 10 // force many credit round-trips

	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	c, err := d.DialAddr(addr, "echo")
	if err != nil {
		t.Fatalf("DialAddr: %v", err)
	}
	defer c.Close()

	payload := bytes.Repeat([]byte("padico-data-plane!"), 32<<10/18+1) // ~32 KiB > 4 windows
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(payload)
		done <- err
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bulk payload corrupted in transit")
	}
}

// TestMuxConcurrentStreams hammers one session from many goroutines —
// run under -race this is the mux's data-race check.
func TestMuxConcurrentStreams(t *testing.T) {
	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := d.DialAddr(addr, "echo")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte('a' + i%26)}, 4096)
			if _, err := c.Write(msg); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(c, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("stream %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMuxLegacyFallback dials a host that refuses the mux (an old daemon):
// the dial must transparently fall back to conn-per-dial and remember.
func TestMuxLegacyFallback(t *testing.T) {
	h, addr := echoHost(t, "old")
	h.DisableMux()
	d := dialerHost(t, "cli")

	roundTrip(t, d, addr, "legacy-1")
	roundTrip(t, d, addr, "legacy-2")

	d.mu.Lock()
	leg, nsess := d.legacy[addr], len(d.sessions)
	d.mu.Unlock()
	if !leg {
		t.Fatal("endpoint not remembered as legacy after mux NAK")
	}
	if nsess != 0 {
		t.Fatalf("legacy peer left %d pooled sessions, want 0", nsess)
	}
	if got := d.telemetry().Counter("wall.mux_fallbacks").Value(); got != 0 {
		t.Fatalf("fallback counter without telemetry registry: %d", got) // nil-safe path
	}
}

// TestMuxRefusedService: a NAKed stream must surface ErrRefused without
// poisoning the session for later dials.
func TestMuxRefusedService(t *testing.T) {
	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	if _, err := d.DialAddr(addr, "no-such-service"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial of unknown service: err=%v, want ErrRefused", err)
	}
	roundTrip(t, d, addr, "still-works")
}

// TestMuxSessionLossRecovery is the satellite-3 contract: kill the
// underlying TCP connection mid-stream; in-flight streams must error fast
// and the next dial must transparently re-establish the session.
func TestMuxSessionLossRecovery(t *testing.T) {
	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	c, err := d.DialAddr(addr, "echo")
	if err != nil {
		t.Fatalf("DialAddr: %v", err)
	}
	// Park a reader mid-stream, then cut the session underneath it.
	readErr := make(chan error, 1)
	go func() {
		var b [1]byte
		_, err := c.Read(b[:])
		readErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the reader park
	if n := d.DropSessions(); n != 1 {
		t.Fatalf("DropSessions dropped %d sessions, want 1", n)
	}
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("read on killed session returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight read did not fail after session loss")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on killed session returned nil error")
	}
	c.Close()

	// The next dial must re-establish the session transparently.
	roundTrip(t, d, addr, "recovered")
	d.mu.Lock()
	nsess := len(d.sessions)
	d.mu.Unlock()
	if nsess != 1 {
		t.Fatalf("after recovery: %d pooled sessions, want 1", nsess)
	}
}

// TestMuxIdleReap: a streamless session is retired after the idle timeout
// and the next dial builds a new one.
func TestMuxIdleReap(t *testing.T) {
	defer func(d time.Duration) { muxIdleTimeout = d }(muxIdleTimeout)
	muxIdleTimeout = 50 * time.Millisecond

	_, addr := echoHost(t, "srv")
	d := dialerHost(t, "cli")

	roundTrip(t, d, addr, "before-reap")
	deadline := time.Now().Add(2 * time.Second)
	for {
		d.mu.Lock()
		n := len(d.sessions)
		d.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session not reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	roundTrip(t, d, addr, "after-reap")
}

// TestMuxReverseAdoption: when two listening hosts dial each other, the
// second direction reuses the first's connection — one conn per node pair.
func TestMuxReverseAdoption(t *testing.T) {
	ha, addrA := echoHost(t, "a")
	hb, addrB := echoHost(t, "b")
	// Each host must know its own advertised endpoint for the HELLO.
	ha.Register("a", addrA)
	hb.Register("b", addrB)

	roundTrip(t, ha, addrB, "forward")

	// b should have adopted a's session under a's advertised endpoint and
	// reuse it for the reverse dial instead of opening a second conn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		hb.mu.Lock()
		_, adopted := hb.sessions[addrA]
		hb.mu.Unlock()
		if adopted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acceptor never adopted the dialer's session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	roundTrip(t, hb, addrA, "reverse")
	hb.mu.Lock()
	rev := hb.sessions[addrA]
	hb.mu.Unlock()
	if rev == nil || rev.s == nil || rev.s.client {
		t.Fatal("reverse dial did not reuse the adopted (accepted) session")
	}
}

// TestDialHandshakeSingleDeadline is the satellite-1 contract: a peer that
// accepts TCP but never answers the preamble stalls the dialer for at most
// ~one handshakeTimeout, not one per handshake phase.
func TestDialHandshakeSingleDeadline(t *testing.T) {
	defer func(d time.Duration) { handshakeTimeout = d }(handshakeTimeout)
	handshakeTimeout = 300 * time.Millisecond

	// A raw listener that accepts and then says nothing.
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer nl.Close()
	go func() {
		for {
			c, err := nl.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the conn open, answer nothing
		}
	}()

	d := dialerHost(t, "cli")
	start := time.Now()
	_, err = d.DialAddr(nl.Addr().String(), "echo")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial of a mute peer succeeded")
	}
	if elapsed > 2*handshakeTimeout {
		t.Fatalf("dial stalled %v — deadline applied per phase, want one bound of ~%v", elapsed, handshakeTimeout)
	}
}

// TestMuxStreamCloseEOF: closing the dialer's end delivers a clean EOF to
// the acceptor, not an error.
func TestMuxStreamCloseEOF(t *testing.T) {
	h := NewWallHost("srv")
	addr, err := h.ListenTCP("")
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer h.Close()
	l, err := h.Listen("sink")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			got <- err
			return
		}
		defer c.Close()
		_, err = io.ReadAll(c)
		got <- err
	}()

	d := dialerHost(t, "cli")
	c, err := d.DialAddr(addr, "sink")
	if err != nil {
		t.Fatalf("DialAddr: %v", err)
	}
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c.Close()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("acceptor read after peer close: %v, want clean EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acceptor never saw EOF")
	}
}
