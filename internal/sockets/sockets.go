// Package sockets is the distributed-paradigm low-level library: BSD-style
// stream connections used to drive LAN and WAN devices (the paper's "plain
// sockets" subsystem of the arbitration layer).
//
// Two drivers implement the same Provider interface: the simulated stack
// (SimStack) running over simnet fabrics under virtual time, and a real TCP
// stack (TCPStack) over the loopback interface for wall-clock integration
// tests — the middleware above cannot tell them apart.
package sockets

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// ErrRefused is returned by Dial when no listener is bound to the address.
var ErrRefused = errors.New("sockets: connection refused")

// ErrClosed is returned on operations against a closed socket.
var ErrClosed = errors.New("sockets: use of closed connection")

// Conn is a bidirectional byte stream between two nodes.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on a node's port.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Provider is one node's socket stack on one device.
type Provider interface {
	// Listen binds a port on this node. Port 0 picks an ephemeral port.
	Listen(port int) (Listener, error)
	// Dial connects to "node:port".
	Dial(addr string) (Conn, error)
	// NodeName identifies the local node ("host name").
	NodeName() string
}

// SplitAddr separates "node:port" into its components.
func SplitAddr(addr string) (node string, port int, err error) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			if _, err := fmt.Sscanf(addr[i+1:], "%d", &port); err != nil {
				return "", 0, fmt.Errorf("sockets: bad port in %q", addr)
			}
			return addr[:i], port, nil
		}
	}
	return "", 0, fmt.Errorf("sockets: address %q missing port", addr)
}

// JoinAddr formats a node/port address.
func JoinAddr(node string, port int) string { return fmt.Sprintf("%s:%d", node, port) }

// ServicePort derives the well-known port a named service listens on:
// FNV-1a of the name folded into [28000, 38000). Every driver (simulated
// vlink listeners, the wall-clock TCP transport) uses this one derivation,
// so a service is dialable by name regardless of the stack underneath.
// Distinct names may collide on a port; listeners verify the full name in
// their accept handshake and report collisions at bind time.
func ServicePort(service string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(service))
	return 28000 + int(h.Sum32()%10000)
}

// ReadFull reads exactly len(p) bytes (io.ReadFull over our Conn).
func ReadFull(c Conn, p []byte) error {
	_, err := io.ReadFull(c, p)
	return err
}
