package sockets

// The wall mux: one long-lived TCP connection per node pair carrying many
// logical streams, replacing conn-per-dial on the wall data plane.
//
// A dialer that wants a multiplexed session sends the ordinary name
// preamble with the reserved service name muxService. A mux-aware acceptor
// ACKs and both ends switch to framed mode; an old daemon fails the name
// through its fallback gateway and NAKs, and the dialer transparently
// falls back to the legacy conn-per-dial protocol (remembering the peer as
// legacy so later dials skip the probe).
//
// Framed mode: every frame is a 9-byte header [type:1][stream:4][len:4]
// (big-endian) followed by len payload bytes. Stream IDs are chosen by the
// opener — odd from the connection's TCP dialer, even from its acceptor —
// so both ends can open streams without collision. Flow control is
// credit-based: each receiver grants muxWindow bytes per stream up front
// and returns credit as the application consumes, so one saturated stream
// cannot wedge the shared connection. DATA payloads are chunked at
// muxMaxFrame to keep the mux fair between streams.
//
// Sessions a host dialed are pooled by endpoint and reused by every
// subsequent DialAddr; an accepted session is adopted into the same pool
// under the dialer's advertised endpoint (carried by its HELLO frame), so
// a node pair genuinely shares one connection in both directions. A pooled
// session with no streams is reaped after muxIdleTimeout; a session whose
// connection dies fails every in-flight stream fast, and the next dial
// re-establishes it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"padico/internal/pool"
	"padico/internal/telemetry"
)

// muxService is the reserved preamble name that upgrades a wall connection
// to a multiplexed session. The "/1" is the framing version.
const muxService = "padico:mux/1"

// Frame types.
const (
	frameSYN    = 1 // open a stream; payload = service name
	frameACK    = 2 // stream accepted
	frameNAK    = 3 // stream refused (no such service)
	frameDATA   = 4 // stream payload chunk
	frameFIN    = 5 // clean end-of-stream from the sender
	frameRST    = 6 // abrupt stream abort / data for an unknown stream
	frameCREDIT = 7 // payload = 4-byte BE flow-control grant (bytes)
	frameHELLO  = 8 // payload = dialer's advertised endpoint, for pooling
)

const muxHeaderLen = 9

// muxFrameLimit is the hard protocol bound on one frame's payload; larger
// lengths mark a corrupt or hostile peer and kill the session.
const muxFrameLimit = 1 << 20

// Tunables — vars so tests can shrink windows and reap timers.
var (
	// muxWindow is the initial (and maximum outstanding) per-stream
	// receive window granted to the peer.
	muxWindow = uint32(256 << 10)
	// muxMaxFrame caps one DATA frame's payload, bounding per-frame pool
	// buffers and keeping concurrent streams interleaved fairly.
	muxMaxFrame = 64 << 10
	// muxIdleTimeout reaps a pooled session that has had no streams for
	// this long; zero or negative disables reaping.
	muxIdleTimeout = 45 * time.Second
)

// errMuxUnsupported reports a peer that NAKed the mux preamble — an old
// daemon; the dialer falls back to the legacy conn-per-dial protocol.
var errMuxUnsupported = errors.New("sockets: peer does not speak the wall mux")

// muxSession is one multiplexed wall connection and its live streams.
type muxSession struct {
	h      *WallHost
	nc     net.Conn
	addr   string // remote endpoint (dial address, or RemoteAddr when accepted)
	client bool   // we dialed the underlying TCP connection

	// Write path: one mutex serializes frames; header and vector storage
	// are reused so a steady-state DATA frame allocates nothing and lands
	// in a single writev syscall.
	wmu   sync.Mutex
	whdr  [muxHeaderLen]byte
	warr  [2][]byte
	wbufs net.Buffers

	mu      sync.Mutex
	streams map[uint32]*muxStream
	nextID  uint32
	poolKey string // h.sessions key this session is pooled under ("" = unpooled); guarded by h.mu
	dead    bool
	idle    *time.Timer

	// Cached telemetry handles (nil-safe when the host has no registry).
	bin, bout, fin, fout *telemetry.Counter
	streamsTotal         *telemetry.Counter
	gSessions, gStreams  *telemetry.Gauge
}

// newMuxSession registers a session with the host. Returns nil when the
// host is already closed.
func (h *WallHost) newMuxSession(nc net.Conn, addr string, client bool) *muxSession {
	tel := h.telemetry()
	s := &muxSession{
		h:            h,
		nc:           nc,
		addr:         addr,
		client:       client,
		streams:      make(map[uint32]*muxStream),
		bin:          tel.Counter("wall.bytes_in"),
		bout:         tel.Counter("wall.bytes_out"),
		fin:          tel.Counter("wall.frames_in"),
		fout:         tel.Counter("wall.frames_out"),
		streamsTotal: tel.Counter("wall.streams"),
		gSessions:    tel.Gauge("wall.sessions"),
		gStreams:     tel.Gauge("wall.streams_active"),
	}
	if client {
		s.nextID = 1 // TCP dialer opens odd streams, acceptor even
	} else {
		s.nextID = 2
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.muxLive[s] = struct{}{}
	h.mu.Unlock()
	s.gSessions.Add(1)
	return s
}

// sendFrame writes one frame under the session write lock. Header and
// payload are coalesced into a single vectored write (one syscall on TCP);
// the header buffer and io vector are session-owned, so the steady state
// allocates nothing.
func (s *muxSession) sendFrame(t byte, id uint32, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.whdr[0] = t
	binary.BigEndian.PutUint32(s.whdr[1:5], id)
	binary.BigEndian.PutUint32(s.whdr[5:9], uint32(len(payload)))
	var n int64
	var err error
	if len(payload) == 0 {
		var m int
		m, err = s.nc.Write(s.whdr[:])
		n = int64(m)
	} else {
		s.wbufs = append(net.Buffers(s.warr[:0]), s.whdr[:], payload)
		n, err = s.wbufs.WriteTo(s.nc)
	}
	if n > 0 {
		s.bout.Add(n)
		s.fout.Inc()
	}
	return err
}

// readLoop owns the receive side of the connection until it dies, then
// tears the session down.
func (s *muxSession) readLoop() {
	var hdr [muxHeaderLen]byte
	var err error
	for {
		if _, err = io.ReadFull(s.nc, hdr[:]); err != nil {
			break
		}
		t := hdr[0]
		id := binary.BigEndian.Uint32(hdr[1:5])
		n := int(binary.BigEndian.Uint32(hdr[5:9]))
		if n > muxFrameLimit {
			err = fmt.Errorf("sockets: wall mux frame of %d bytes from %s exceeds protocol limit", n, s.addr)
			break
		}
		var payload []byte
		if n > 0 {
			payload = pool.Get(n)
			if _, err = io.ReadFull(s.nc, payload); err != nil {
				pool.Put(payload)
				break
			}
		}
		s.bin.Add(int64(muxHeaderLen + n))
		s.fin.Inc()
		if err = s.dispatch(t, id, payload); err != nil {
			break
		}
	}
	s.teardown(err)
}

// dispatch routes one received frame. It takes ownership of the pooled
// payload buffer.
func (s *muxSession) dispatch(t byte, id uint32, payload []byte) error {
	switch t {
	case frameSYN:
		service := string(payload)
		pool.Put(payload)
		// Accept runs off the read loop: the fallback gateway may dial
		// local services, and a slow accept must not stall other streams.
		go s.acceptStream(id, service)
	case frameACK:
		pool.Put(payload)
		if st := s.lookup(id); st != nil {
			select {
			case st.syn <- nil:
			default:
			}
		}
	case frameNAK:
		pool.Put(payload)
		if st := s.take(id); st != nil {
			select {
			case st.syn <- fmt.Errorf("%w: no service %q at %s", ErrRefused, st.service, s.addr):
			default:
			}
		}
	case frameDATA:
		st := s.lookup(id)
		if st == nil {
			pool.Put(payload)
			// The stream is gone on our side (closed, timed out): tell the
			// peer so it stops sending.
			return s.sendFrame(frameRST, id, nil)
		}
		st.push(payload)
	case frameFIN:
		pool.Put(payload)
		if st := s.lookup(id); st != nil {
			st.finish()
		}
	case frameRST:
		pool.Put(payload)
		if st := s.take(id); st != nil {
			st.fail(fmt.Errorf("sockets: wall stream %d reset by %s", id, s.addr))
		}
	case frameCREDIT:
		if len(payload) == 4 {
			if st := s.lookup(id); st != nil {
				st.credit(binary.BigEndian.Uint32(payload))
			}
		}
		pool.Put(payload)
	case frameHELLO:
		addr := string(payload)
		pool.Put(payload)
		s.h.adoptSession(s, addr)
	default:
		pool.Put(payload)
		return fmt.Errorf("sockets: unknown wall mux frame type %d from %s", t, s.addr)
	}
	return nil
}

// open starts a stream toward the peer and waits (until deadline) for its
// ACK or NAK.
func (s *muxSession) open(service string, deadline time.Time) (*muxStream, error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil, fmt.Errorf("sockets: wall session to %s is down", s.addr)
	}
	id := s.nextID
	s.nextID += 2
	s.mu.Unlock()
	st := s.newStream(id, service, s.addr)
	if st == nil {
		return nil, fmt.Errorf("sockets: wall session to %s is down", s.addr)
	}
	if err := s.sendFrame(frameSYN, id, []byte(service)); err != nil {
		s.removeStream(st)
		return nil, fmt.Errorf("sockets: wall mux open %q at %s: %w", service, s.addr, err)
	}
	var tch <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		tch = timer.C
	}
	select {
	case err := <-st.syn:
		if err != nil {
			s.removeStream(st)
			return nil, err
		}
		return st, nil
	case <-tch:
		s.removeStream(st)
		return nil, fmt.Errorf("sockets: wall mux open %q at %s: %w", service, s.addr, os.ErrDeadlineExceeded)
	}
}

// acceptStream handles one inbound SYN: route to a registered service, the
// fallback gateway, or NAK. Runs in its own goroutine.
func (s *muxSession) acceptStream(id uint32, service string) {
	h := s.h
	h.mu.Lock()
	l, ok := h.services[service]
	fb := h.fallback
	h.mu.Unlock()

	var local io.ReadWriteCloser
	if !ok && fb != nil {
		var err error
		if local, err = fb(service); err != nil {
			local = nil
		}
	}
	if !ok && local == nil {
		h.telemetry().Counter("wall.handshake_naks").Inc()
		_ = s.sendFrame(frameNAK, id, nil)
		return
	}
	// Register before ACKing: once the peer sees the ACK its DATA frames
	// must find the stream.
	st := s.newStream(id, service, s.addr)
	if st == nil {
		if local != nil {
			local.Close()
		}
		return
	}
	if err := s.sendFrame(frameACK, id, nil); err != nil {
		if local != nil {
			local.Close()
		}
		return // session is dying; teardown cleans the stream up
	}
	h.telemetry().Counter("wall.accepts").Inc()
	if ok {
		l.deliver(st)
		return
	}
	proxy(st, local)
}

// newStream creates and registers a stream. Returns nil when the session
// is already dead.
func (s *muxSession) newStream(id uint32, service, remote string) *muxStream {
	st := &muxStream{
		s:       s,
		id:      id,
		service: service,
		local:   s.h.name,
		remote:  remote,
		syn:     make(chan error, 1),
		window:  muxWindow,
		wcredit: muxWindow,
	}
	st.rcond = sync.NewCond(&st.mu)
	st.wcond = sync.NewCond(&st.mu)
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil
	}
	if s.idle != nil {
		s.idle.Stop()
		s.idle = nil
	}
	s.streams[id] = st
	s.mu.Unlock()
	s.gStreams.Add(1)
	s.streamsTotal.Inc()
	return st
}

func (s *muxSession) lookup(id uint32) *muxStream {
	s.mu.Lock()
	st := s.streams[id]
	s.mu.Unlock()
	return st
}

// take removes and returns a stream (nil when unknown).
func (s *muxSession) take(id uint32) *muxStream {
	s.mu.Lock()
	st := s.streams[id]
	if st != nil {
		delete(s.streams, id)
		s.noteRemovalLocked()
	}
	s.mu.Unlock()
	if st != nil {
		s.gStreams.Add(-1)
	}
	return st
}

// removeStream drops a stream from the table if it is still registered.
func (s *muxSession) removeStream(st *muxStream) {
	s.mu.Lock()
	found := s.streams[st.id] == st
	if found {
		delete(s.streams, st.id)
		s.noteRemovalLocked()
	}
	s.mu.Unlock()
	if found {
		s.gStreams.Add(-1)
	}
}

// noteRemovalLocked arms the idle reaper when the last stream leaves a
// pooled dialer-side session. Caller holds s.mu.
func (s *muxSession) noteRemovalLocked() {
	if !s.client || s.dead || len(s.streams) != 0 || muxIdleTimeout <= 0 {
		return
	}
	if s.idle != nil {
		s.idle.Stop()
	}
	s.idle = time.AfterFunc(muxIdleTimeout, s.reapIfIdle)
}

// reapIfIdle retires a session that is still streamless when the idle
// timer fires.
func (s *muxSession) reapIfIdle() {
	s.mu.Lock()
	busy := s.dead || len(s.streams) != 0
	s.mu.Unlock()
	if busy {
		return
	}
	s.teardown(nil)
}

// teardown kills the session: the connection closes, the host forgets it,
// and every in-flight stream fails fast. Idempotent; cause nil means a
// deliberate (idle/shutdown) close.
func (s *muxSession) teardown(cause error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	if s.idle != nil {
		s.idle.Stop()
		s.idle = nil
	}
	sts := make([]*muxStream, 0, len(s.streams))
	for _, st := range s.streams {
		sts = append(sts, st)
	}
	s.streams = make(map[uint32]*muxStream)
	s.mu.Unlock()

	_ = s.nc.Close()
	s.h.dropSessionRefs(s)
	s.gSessions.Add(-1)
	s.gStreams.Add(-int64(len(sts)))

	err := fmt.Errorf("sockets: wall session to %s closed", s.addr)
	if cause != nil {
		err = fmt.Errorf("sockets: wall session to %s lost: %w", s.addr, cause)
	}
	for _, st := range sts {
		st.fail(err)
	}
}

// muxStream is one logical stream on a session; it implements Conn (plus
// SetReadDeadline, which the gatekeeper's control-deadline helper relies
// on).
type muxStream struct {
	s       *muxSession
	id      uint32
	service string
	local   string
	remote  string

	syn chan error // ACK/NAK/teardown outcome for an open() in flight

	mu     sync.Mutex
	rcond  *sync.Cond
	wcond  *sync.Cond
	rbuf   [][]byte // pooled receive chunks; rpos indexes into rbuf[0]
	rpos   int
	rFIN   bool
	closed bool
	failed error

	window   uint32 // initial receive window granted to the peer
	consumed uint32 // bytes read since the last credit grant
	wcredit  uint32 // send credit remaining

	rdl      time.Time
	rdlTimer *time.Timer
}

func (st *muxStream) LocalAddr() string  { return st.local }
func (st *muxStream) RemoteAddr() string { return st.remote }

// setRemote relabels the peer (WallHost.Dial stamps the node name over the
// raw endpoint).
func (st *muxStream) setRemote(node string) { st.remote = node }

// push appends one received DATA chunk, taking ownership of the pooled
// buffer.
func (st *muxStream) push(chunk []byte) {
	st.mu.Lock()
	if st.failed != nil || st.closed || st.rFIN {
		st.mu.Unlock()
		pool.Put(chunk)
		return
	}
	st.rbuf = append(st.rbuf, chunk)
	st.rcond.Signal()
	st.mu.Unlock()
}

// finish marks the peer's clean end-of-stream.
func (st *muxStream) finish() {
	st.mu.Lock()
	st.rFIN = true
	st.rcond.Broadcast()
	st.mu.Unlock()
}

// fail terminates the stream with an error: pending and future reads and
// writes return it, buffered data is recycled, and any open() in flight is
// released.
func (st *muxStream) fail(err error) {
	st.mu.Lock()
	if st.failed == nil {
		st.failed = err
	}
	st.recycleLocked()
	st.rcond.Broadcast()
	st.wcond.Broadcast()
	st.mu.Unlock()
	select {
	case st.syn <- err:
	default:
	}
}

// recycleLocked returns buffered receive chunks to the pool. Caller holds
// st.mu.
func (st *muxStream) recycleLocked() {
	for _, c := range st.rbuf {
		pool.Put(c)
	}
	st.rbuf = nil
	st.rpos = 0
}

func (st *muxStream) Read(p []byte) (int, error) {
	st.mu.Lock()
	for {
		if st.failed != nil {
			err := st.failed
			st.mu.Unlock()
			return 0, err
		}
		if st.closed {
			st.mu.Unlock()
			return 0, fmt.Errorf("%w: wall stream %q", ErrClosed, st.service)
		}
		if len(st.rbuf) > 0 {
			break
		}
		if st.rFIN {
			st.mu.Unlock()
			return 0, io.EOF
		}
		if dl := st.rdl; !dl.IsZero() && !time.Now().Before(dl) {
			st.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		if len(p) == 0 {
			st.mu.Unlock()
			return 0, nil
		}
		st.rcond.Wait()
	}
	n := 0
	for n < len(p) && len(st.rbuf) > 0 {
		c := st.rbuf[0]
		m := copy(p[n:], c[st.rpos:])
		n += m
		st.rpos += m
		if st.rpos == len(c) {
			pool.Put(c)
			st.rbuf[0] = nil
			st.rbuf = st.rbuf[1:]
			st.rpos = 0
		}
	}
	// Return credit once half the window has been consumed — frequent
	// enough to keep the peer streaming, batched enough to stay cheap.
	var grant uint32
	st.consumed += uint32(n)
	if st.consumed >= st.window/2 || st.consumed >= st.window {
		grant = st.consumed
		st.consumed = 0
	}
	st.mu.Unlock()
	if grant > 0 {
		var g [4]byte
		binary.BigEndian.PutUint32(g[:], grant)
		_ = st.s.sendFrame(frameCREDIT, st.id, g[:])
	}
	return n, nil
}

func (st *muxStream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		st.mu.Lock()
		for {
			if st.failed != nil {
				err := st.failed
				st.mu.Unlock()
				return total, err
			}
			if st.closed {
				st.mu.Unlock()
				return total, fmt.Errorf("%w: wall stream %q", ErrClosed, st.service)
			}
			if st.wcredit > 0 {
				break
			}
			st.wcond.Wait()
		}
		n := len(p)
		if n > muxMaxFrame {
			n = muxMaxFrame
		}
		if uint32(n) > st.wcredit {
			n = int(st.wcredit)
		}
		st.wcredit -= uint32(n)
		st.mu.Unlock()
		// The chunk is written synchronously under the session write lock,
		// so p is never retained: a zero-copy send.
		if err := st.s.sendFrame(frameDATA, st.id, p[:n]); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// credit adds peer-granted send window and wakes blocked writers.
func (st *muxStream) credit(grant uint32) {
	st.mu.Lock()
	st.wcredit += grant
	st.wcond.Broadcast()
	st.mu.Unlock()
}

// Close ends the stream locally: the peer sees a clean FIN, later local
// operations fail, and the stream leaves the session table (arming the
// idle reaper when it was the last).
func (st *muxStream) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	alreadyDead := st.failed != nil
	st.recycleLocked()
	if st.rdlTimer != nil {
		st.rdlTimer.Stop()
		st.rdlTimer = nil
	}
	st.rcond.Broadcast()
	st.wcond.Broadcast()
	st.mu.Unlock()
	st.s.removeStream(st)
	if !alreadyDead {
		_ = st.s.sendFrame(frameFIN, st.id, nil)
	}
	return nil
}

// SetReadDeadline bounds blocked Reads, satisfying the control plane's
// deadline interface. The zero time clears the deadline.
func (st *muxStream) SetReadDeadline(t time.Time) error {
	st.mu.Lock()
	st.rdl = t
	if st.rdlTimer != nil {
		st.rdlTimer.Stop()
		st.rdlTimer = nil
	}
	if !t.IsZero() {
		if d := time.Until(t); d > 0 {
			st.rdlTimer = time.AfterFunc(d, st.rcond.Broadcast)
		}
	}
	st.rcond.Broadcast()
	st.mu.Unlock()
	return nil
}
