package sockets

import (
	"errors"
	"io"
	"testing"
	"time"

	"padico/internal/simnet"
	"padico/internal/vtime"
)

func newLAN(n int) (*vtime.Sim, *SimStack) {
	s := vtime.NewSim()
	net := simnet.New(s)
	var nodes []*simnet.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.NewNode("h"+string(rune('0'+i))))
	}
	return s, NewSimStack(net.NewEthernet100("eth", nodes))
}

func TestSplitJoinAddr(t *testing.T) {
	node, port, err := SplitAddr("hostA:8080")
	if err != nil || node != "hostA" || port != 8080 {
		t.Fatalf("SplitAddr = %q,%d,%v", node, port, err)
	}
	if _, _, err := SplitAddr("noport"); err == nil {
		t.Error("SplitAddr without port succeeded")
	}
	if _, _, err := SplitAddr("host:abc"); err == nil {
		t.Error("SplitAddr with junk port succeeded")
	}
	if got := JoinAddr("x", 9); got != "x:9" {
		t.Errorf("JoinAddr = %q", got)
	}
}

func TestSimDialListenEcho(t *testing.T) {
	s, st := newLAN(2)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		srv := st.Host(nodes[0])
		cli := st.Host(nodes[1])
		l, err := srv.Listen(7000)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		s.Go("server", func() {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			buf := make([]byte, 5)
			if err := ReadFull(c, buf); err != nil {
				t.Errorf("server read: %v", err)
			}
			if _, err := c.Write(append([]byte("re:"), buf...)); err != nil {
				t.Errorf("server write: %v", err)
			}
			c.Close()
		})
		c, err := cli.Dial("h0:7000")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, 8)
		if err := ReadFull(c, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(buf) != "re:hello" {
			t.Fatalf("echo = %q", buf)
		}
		// After peer close, reads drain then EOF.
		if _, err := c.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("read after close = %v, want EOF", err)
		}
		l.Close()
	})
}

func TestSimDialRefused(t *testing.T) {
	s, st := newLAN(2)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		if _, err := st.Host(nodes[0]).Dial("h1:1"); !errors.Is(err, ErrRefused) {
			t.Fatalf("dial err = %v, want ErrRefused", err)
		}
	})
}

func TestSimListenConflictAndEphemeral(t *testing.T) {
	s, st := newLAN(1)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		p := st.Host(nodes[0])
		l1, err := p.Listen(80)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		if _, err := p.Listen(80); err == nil {
			t.Fatal("duplicate listen succeeded")
		}
		l2, err := p.Listen(0)
		if err != nil {
			t.Fatalf("ephemeral listen: %v", err)
		}
		if l2.Addr() == l1.Addr() {
			t.Fatal("ephemeral port collided")
		}
		l1.Close()
		l2.Close()
		// Port released after close.
		l3, err := p.Listen(80)
		if err != nil {
			t.Fatalf("relisten: %v", err)
		}
		l3.Close()
	})
}

func TestSimWriteAfterCloseFails(t *testing.T) {
	s, st := newLAN(2)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		l, _ := st.Host(nodes[0]).Listen(9)
		s.Go("srv", func() {
			c, err := l.Accept()
			if err == nil {
				c.Close()
			}
		})
		c, err := st.Host(nodes[1]).Dial("h0:9")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.Close()
		if _, err := c.Write([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("write after close = %v", err)
		}
	})
}

func TestSimTransferTiming(t *testing.T) {
	s, st := newLAN(2)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		l, _ := st.Host(nodes[0]).Listen(5)
		got := make(chan time.Duration, 1)
		s.Go("srv", func() {
			c, _ := l.Accept()
			buf := make([]byte, 1_000_000)
			start := s.Now()
			if err := ReadFull(c, buf); err != nil {
				t.Errorf("read: %v", err)
			}
			got <- s.Now().Sub(start)
		})
		c, err := st.Host(nodes[1]).Dial("h0:5")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := c.Write(make([]byte, 1_000_000)); err != nil {
			t.Fatalf("write: %v", err)
		}
		d := <-got
		// 1 MB at 12.5 MB/s = 80 ms dominates; TCP cost ~3 ms; wire 45 µs.
		if d < 80*time.Millisecond || d > 90*time.Millisecond {
			t.Fatalf("1MB LAN transfer took %v", d)
		}
	})
}

func TestSimPartialReads(t *testing.T) {
	s, st := newLAN(2)
	nodes := st.Fabric().Nodes()
	s.Run(func() {
		l, _ := st.Host(nodes[0]).Listen(5)
		s.Go("srv", func() {
			c, _ := l.Accept()
			_, _ = c.Write([]byte("abcdefgh"))
		})
		c, _ := st.Host(nodes[1]).Dial("h0:5")
		var out []byte
		buf := make([]byte, 3)
		for len(out) < 8 {
			n, err := c.Read(buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			out = append(out, buf[:n]...)
		}
		if string(out) != "abcdefgh" {
			t.Fatalf("reassembled %q", out)
		}
	})
}

func TestTCPStackEcho(t *testing.T) {
	st := NewTCPStack()
	srv := st.Host("alpha")
	cli := st.Host("beta")
	l, err := srv.Listen(0)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if err := ReadFull(c, buf); err != nil {
			t.Errorf("srv read: %v", err)
			return
		}
		_, _ = c.Write(buf)
	}()
	c, err := cli.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if err := ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
	<-done
	if _, err := cli.Dial("alpha:1"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial unknown = %v, want ErrRefused", err)
	}
}
