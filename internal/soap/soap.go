// Package soap substitutes the gSOAP port of §4.3.4: a web-services RPC
// middleware with XML envelopes, running unmodified over the VLink
// personality — demonstrating that a third middleware family cohabits with
// CORBA and MPI on the same arbitrated networks. The calibrated cost model
// (simnet.SOAPCost) reflects the paper's related-work judgement that web
// services' "performance is poor": XML encoding dominates.
package soap

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"

	"padico/internal/simnet"
	"padico/internal/vlink"
)

// Envelope is the XML message wrapper.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    Body     `xml:"Body"`
}

// Body carries one call or response.
type Body struct {
	Method string   `xml:"method,attr"`
	Fault  string   `xml:"fault,attr,omitempty"`
	Params []string `xml:"param"`
}

// Handler serves one SOAP method.
type Handler func(params []string) ([]string, error)

// Server dispatches SOAP calls on a VLink service.
type Server struct {
	ln       *vlink.Linker
	service  string
	lst      *vlink.Listener
	handlers map[string]Handler
}

// Serve registers handlers under a service name and starts accepting.
func Serve(ln *vlink.Linker, service string, handlers map[string]Handler) (*Server, error) {
	lst, err := ln.Listen("soap:" + service)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, service: service, lst: lst, handlers: handlers}
	rt := lnRuntime(ln)
	rt.Go("soap:accept:"+service, func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			rt.Go("soap:conn", func() { s.serve(st) })
		}
	})
	return s, nil
}

// Close stops accepting new connections.
func (s *Server) Close() { _ = s.lst.Close() }

func (s *Server) serve(st vlink.Stream) {
	defer st.Close()
	for {
		env, size, err := readEnvelope(st)
		if err != nil {
			return
		}
		chargeNode(s.ln, size) // XML decode
		reply := Envelope{}
		h, ok := s.handlers[env.Body.Method]
		if !ok {
			reply.Body = Body{Method: env.Body.Method, Fault: "unknown method " + env.Body.Method}
		} else {
			out, err := h(env.Body.Params)
			if err != nil {
				reply.Body = Body{Method: env.Body.Method, Fault: err.Error()}
			} else {
				reply.Body = Body{Method: env.Body.Method, Params: out}
			}
		}
		if err := writeEnvelope(s.ln, st, &reply); err != nil {
			return
		}
	}
}

// Client calls SOAP services over VLink.
type Client struct {
	ln *vlink.Linker
}

// NewClient wraps a linker.
func NewClient(ln *vlink.Linker) *Client { return &Client{ln: ln} }

// Call invokes method with params on the node's service and returns the
// response parameters.
func (c *Client) Call(node *simnet.Node, service, method string, params ...string) ([]string, error) {
	st, err := c.ln.Dial(node, "soap:"+service)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := writeEnvelope(c.ln, st, &Envelope{Body: Body{Method: method, Params: params}}); err != nil {
		return nil, err
	}
	reply, size, err := readEnvelope(st)
	if err != nil {
		return nil, err
	}
	chargeNode(c.ln, size)
	if reply.Body.Fault != "" {
		return nil, errors.New("soap: fault: " + reply.Body.Fault)
	}
	return reply.Body.Params, nil
}

// Call performs one SOAP request/response exchange on an already-dialed
// stream — the live-deployment path, where padico-ctl reached the service
// over a daemon's wall TCP gateway rather than through a simulated linker.
// No CPU cost is charged: the wall clock measures real encoding time.
func Call(st vlink.Stream, method string, params ...string) ([]string, error) {
	if err := writeEnvelope(nil, st, &Envelope{Body: Body{Method: method, Params: params}}); err != nil {
		return nil, err
	}
	reply, _, err := readEnvelope(st)
	if err != nil {
		return nil, err
	}
	if reply.Body.Fault != "" {
		return nil, errors.New("soap: fault: " + reply.Body.Fault)
	}
	return reply.Body.Params, nil
}

// writeEnvelope frames the XML with a 4-byte length prefix and charges the
// encoder cost.
func writeEnvelope(ln *vlink.Linker, st vlink.Stream, env *Envelope) error {
	data, err := xml.Marshal(env)
	if err != nil {
		return err
	}
	chargeNode(ln, len(data))
	frame := make([]byte, 4+len(data))
	frame[0] = byte(len(data) >> 24)
	frame[1] = byte(len(data) >> 16)
	frame[2] = byte(len(data) >> 8)
	frame[3] = byte(len(data))
	copy(frame[4:], data)
	_, err = st.Write(frame)
	return err
}

func readEnvelope(st vlink.Stream) (*Envelope, int, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(st, lenb[:]); err != nil {
		return nil, 0, err
	}
	n := int(lenb[0])<<24 | int(lenb[1])<<16 | int(lenb[2])<<8 | int(lenb[3])
	if n <= 0 || n > 1<<28 {
		return nil, 0, fmt.Errorf("soap: bad envelope size %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(st, buf); err != nil {
		return nil, 0, err
	}
	var env Envelope
	if err := xml.Unmarshal(buf, &env); err != nil {
		return nil, 0, fmt.Errorf("soap: bad envelope: %w", err)
	}
	return &env, n, nil
}

func chargeNode(ln *vlink.Linker, bytes int) {
	if ln == nil {
		return // wall-clock path: no simulated cost model to charge
	}
	if nd := ln.Node(); nd != nil {
		nd.Charge(simnet.SOAPCost, bytes)
	}
}

func lnRuntime(ln *vlink.Linker) runtimeIface { return ln.Runtime() }

type runtimeIface interface {
	Go(name string, f func())
}
