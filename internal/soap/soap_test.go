package soap

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

func newPair(t *testing.T) (*vtime.Sim, *arbitration.Arbiter, []*vlink.Linker, []*simnet.Node) {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	arb := arbitration.New(net)
	if _, err := arb.AddSock(net.NewEthernet100("eth0", []*simnet.Node{a, b})); err != nil {
		t.Fatal(err)
	}
	return s, arb, []*vlink.Linker{vlink.NewLinker(arb, a), vlink.NewLinker(arb, b)}, []*simnet.Node{a, b}
}

func TestCallAndFault(t *testing.T) {
	s, arb, lns, nodes := newPair(t)
	s.Run(func() {
		defer arb.Close()
		defer lns[0].Close()
		defer lns[1].Close()
		srv, err := Serve(lns[0], "calc", map[string]Handler{
			"add": func(params []string) ([]string, error) {
				x, _ := strconv.Atoi(params[0])
				y, _ := strconv.Atoi(params[1])
				return []string{strconv.Itoa(x + y)}, nil
			},
			"explode": func([]string) ([]string, error) {
				return nil, errors.New("kaboom")
			},
		})
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		defer srv.Close()
		cli := NewClient(lns[1])
		out, err := cli.Call(nodes[0], "calc", "add", "20", "22")
		if err != nil || len(out) != 1 || out[0] != "42" {
			t.Fatalf("call = %v, %v", out, err)
		}
		if _, err := cli.Call(nodes[0], "calc", "explode"); err == nil {
			t.Fatal("fault not propagated")
		}
		if _, err := cli.Call(nodes[0], "calc", "ghost"); err == nil {
			t.Fatal("unknown method accepted")
		}
		if _, err := cli.Call(nodes[0], "nosuch", "add"); err == nil {
			t.Fatal("unknown service accepted")
		}
	})
}

func TestSOAPSlowerThanRawStream(t *testing.T) {
	// The calibrated model reflects the paper's "their performance is
	// poor": SOAP pays heavy per-message XML costs.
	s, arb, lns, nodes := newPair(t)
	s.Run(func() {
		defer arb.Close()
		defer lns[0].Close()
		defer lns[1].Close()
		srv, _ := Serve(lns[0], "echo", map[string]Handler{
			"echo": func(p []string) ([]string, error) { return p, nil },
		})
		defer srv.Close()
		cli := NewClient(lns[1])
		start := s.Now()
		if _, err := cli.Call(nodes[0], "echo", "echo", "x"); err != nil {
			t.Fatal(err)
		}
		rt := s.Now().Sub(start)
		// ≥2 envelopes × 180 µs encode/decode each way.
		if rt < 600*time.Microsecond {
			t.Fatalf("SOAP round trip %v suspiciously fast", rt)
		}
	})
}

func TestManySequentialCalls(t *testing.T) {
	s, arb, lns, nodes := newPair(t)
	s.Run(func() {
		defer arb.Close()
		defer lns[0].Close()
		defer lns[1].Close()
		srv, _ := Serve(lns[0], "seq", map[string]Handler{
			"n": func(p []string) ([]string, error) { return []string{p[0]}, nil },
		})
		defer srv.Close()
		cli := NewClient(lns[1])
		for i := 0; i < 5; i++ {
			out, err := cli.Call(nodes[0], "seq", "n", fmt.Sprint(i))
			if err != nil || out[0] != fmt.Sprint(i) {
				t.Fatalf("call %d = %v, %v", i, out, err)
			}
		}
	})
}
