package orb

import (
	"fmt"
	"strings"
)

// IOR is an interoperable object reference: enough to locate and type an
// object anywhere on the grid. The stringified form follows the corbaloc
// style: "corbaloc:padico:<node>/<key>#<interface>".
type IOR struct {
	Node  string // hosting node name
	Key   string // object key within the node's adapter
	Iface string // fully-qualified IDL interface name
}

const iorPrefix = "corbaloc:padico:"

// String renders the stringified reference.
func (i IOR) String() string {
	return fmt.Sprintf("%s%s/%s#%s", iorPrefix, i.Node, i.Key, i.Iface)
}

// Nil reports whether the reference is empty.
func (i IOR) Nil() bool { return i == IOR{} }

// ParseIOR parses a stringified reference.
func ParseIOR(s string) (IOR, error) {
	if s == "" {
		return IOR{}, nil // nil object reference
	}
	rest, ok := strings.CutPrefix(s, iorPrefix)
	if !ok {
		return IOR{}, fmt.Errorf("orb: not a padico object reference: %q", s)
	}
	node, rest, ok := strings.Cut(rest, "/")
	if !ok || node == "" {
		return IOR{}, fmt.Errorf("orb: object reference %q missing node", s)
	}
	// Object keys may themselves contain '#' (event-sink ports), so the
	// interface is everything after the last separator.
	sep := strings.LastIndex(rest, "#")
	if sep <= 0 || sep == len(rest)-1 {
		return IOR{}, fmt.Errorf("orb: object reference %q missing key or interface", s)
	}
	return IOR{Node: node, Key: rest[:sep], Iface: rest[sep+1:]}, nil
}
