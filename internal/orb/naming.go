package orb

import (
	"fmt"
	"sort"
	"sync"

	"padico/internal/idl"
)

// NameServiceKey is the conventional object key of the naming service.
const NameServiceKey = "NameService"

// NameServiceIface is the naming service's interface name.
const NameServiceIface = "Padico::NameService"

// RegisterNamingIDL installs the naming service interface into a
// repository (it is defined programmatically, not parsed, so every process
// can resolve it without shipping IDL files).
func RegisterNamingIDL(repo *idl.Repository) {
	if _, ok := repo.Interface(NameServiceIface); ok {
		return
	}
	str := idl.Basic(idl.KindString)
	repo.RegisterInterface(&idl.Interface{
		Name: NameServiceIface,
		Ops: []*idl.Operation{
			{Name: "bind", Result: idl.Basic(idl.KindVoid), Params: []idl.Param{
				{Name: "name", Dir: idl.In, Type: str},
				{Name: "ref", Dir: idl.In, Type: str},
			}},
			{Name: "resolve", Result: str, Params: []idl.Param{
				{Name: "name", Dir: idl.In, Type: str},
			}},
			{Name: "unbind", Result: idl.Basic(idl.KindVoid), Params: []idl.Param{
				{Name: "name", Dir: idl.In, Type: str},
			}},
			{Name: "list", Result: idl.SequenceOf(str)},
		},
	})
}

// ServeNaming activates a naming service on this ORB and returns its IOR.
func ServeNaming(o *ORB) (IOR, error) {
	RegisterNamingIDL(o.repo)
	reg := &namingServant{entries: make(map[string]string)}
	return o.Activate(NameServiceKey, NameServiceIface, reg)
}

type namingServant struct {
	mu      sync.Mutex
	entries map[string]string
}

func (n *namingServant) Invoke(op string, args []any) ([]any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch op {
	case "bind":
		name, ref := args[0].(string), args[1].(string)
		if _, dup := n.entries[name]; dup {
			return nil, &UserException{Msg: "AlreadyBound: " + name}
		}
		n.entries[name] = ref
		return []any{}, nil
	case "resolve":
		ref, ok := n.entries[args[0].(string)]
		if !ok {
			return nil, &UserException{Msg: "NotFound: " + args[0].(string)}
		}
		return []any{ref}, nil
	case "unbind":
		delete(n.entries, args[0].(string))
		return []any{}, nil
	case "list":
		names := make([]string, 0, len(n.entries))
		for name := range n.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		return []any{names}, nil
	default:
		return nil, &SystemException{Msg: "BAD_OPERATION: " + op}
	}
}

// Naming is a typed client for the naming service.
type Naming struct{ ref *ObjRef }

// NamingAt returns a naming client for the service on the given node.
func (o *ORB) NamingAt(node string) (*Naming, error) {
	RegisterNamingIDL(o.repo)
	ref, err := o.Object(IOR{Node: node, Key: NameServiceKey, Iface: NameServiceIface})
	if err != nil {
		return nil, err
	}
	return &Naming{ref: ref}, nil
}

// Bind registers an object under a name.
func (n *Naming) Bind(name string, ior IOR) error {
	_, err := n.ref.Invoke("bind", name, ior.String())
	return err
}

// Resolve looks a name up.
func (n *Naming) Resolve(name string) (IOR, error) {
	vals, err := n.ref.Invoke("resolve", name)
	if err != nil {
		return IOR{}, err
	}
	return ParseIOR(vals[0].(string))
}

// Unbind removes a binding.
func (n *Naming) Unbind(name string) error {
	_, err := n.ref.Invoke("unbind", name)
	return err
}

// List returns all bound names.
func (n *Naming) List() ([]string, error) {
	vals, err := n.ref.Invoke("list")
	if err != nil {
		return nil, err
	}
	return vals[0].([]string), nil
}

// ResolveWait polls until a name appears (deployment-time rendezvous).
func (n *Naming) ResolveWait(name string, attempts int) (IOR, error) {
	for i := 0; ; i++ {
		ior, err := n.Resolve(name)
		if err == nil {
			return ior, nil
		}
		if i >= attempts {
			return IOR{}, fmt.Errorf("orb: %s not bound after %d attempts: %w", name, attempts, err)
		}
		n.ref.orb.rt.Sleep(200 * 1000) // 200 µs between polls
	}
}
