package orb

import (
	"fmt"

	"padico/internal/cdr"
	"padico/internal/idl"
)

// Value mapping between IDL types and Go values, used by the DII-style
// dynamic invocation path:
//
//	boolean → bool          octet → byte         short → int16
//	unsigned short → uint16 long → int32         unsigned long → uint32
//	long long → int64       unsigned long long → uint64
//	float → float32         double → float64     string → string
//	enum → uint32           sequence<octet> → []byte
//	sequence<double> → []float64   sequence<long> → []int32
//	sequence<string> → []string    other sequences → []any
//	struct → map[string]any        interface → IOR

// MarshalValue encodes v as the IDL type t.
func MarshalValue(w *cdr.Writer, t *idl.Type, v any) error {
	switch t.Kind {
	case idl.KindVoid:
		return nil
	case idl.KindBool:
		b, ok := v.(bool)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteBool(b)
	case idl.KindOctet:
		b, ok := v.(byte)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteOctet(b)
	case idl.KindShort:
		x, ok := v.(int16)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteShort(x)
	case idl.KindUShort:
		x, ok := v.(uint16)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteUShort(x)
	case idl.KindLong:
		x, ok := v.(int32)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteLong(x)
	case idl.KindULong:
		x, ok := v.(uint32)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULong(x)
	case idl.KindLongLong:
		x, ok := v.(int64)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteLongLong(x)
	case idl.KindULongLong:
		x, ok := v.(uint64)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULongLong(x)
	case idl.KindFloat:
		x, ok := v.(float32)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteFloat(x)
	case idl.KindDouble:
		x, ok := v.(float64)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteDouble(x)
	case idl.KindString:
		s, ok := v.(string)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteString(s)
	case idl.KindEnum:
		x, ok := v.(uint32)
		if !ok {
			return typeErr(t, v)
		}
		if int(x) >= len(t.Labels) {
			return fmt.Errorf("orb: enum %s value %d out of range", t.Name, x)
		}
		w.WriteULong(x)
	case idl.KindSequence:
		return marshalSequence(w, t, v)
	case idl.KindStruct:
		m, ok := v.(map[string]any)
		if !ok {
			return typeErr(t, v)
		}
		for _, f := range t.Fields {
			fv, ok := m[f.Name]
			if !ok {
				return fmt.Errorf("orb: struct %s missing field %q", t.Name, f.Name)
			}
			if err := MarshalValue(w, f.Type, fv); err != nil {
				return fmt.Errorf("orb: struct %s field %q: %w", t.Name, f.Name, err)
			}
		}
	case idl.KindObjRef:
		switch ref := v.(type) {
		case IOR:
			w.WriteString(ref.String())
		case *ObjRef:
			w.WriteString(ref.IOR().String())
		default:
			return typeErr(t, v)
		}
	default:
		return fmt.Errorf("orb: cannot marshal kind %v", t.Kind)
	}
	return nil
}

func marshalSequence(w *cdr.Writer, t *idl.Type, v any) error {
	switch t.Elem.Kind {
	case idl.KindOctet:
		b, ok := v.([]byte)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteOctets(b)
		return nil
	case idl.KindDouble:
		xs, ok := v.([]float64)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULong(uint32(len(xs)))
		for _, x := range xs {
			w.WriteDouble(x)
		}
		return nil
	case idl.KindLong:
		xs, ok := v.([]int32)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULong(uint32(len(xs)))
		for _, x := range xs {
			w.WriteLong(x)
		}
		return nil
	case idl.KindString:
		xs, ok := v.([]string)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULong(uint32(len(xs)))
		for _, x := range xs {
			w.WriteString(x)
		}
		return nil
	default:
		xs, ok := v.([]any)
		if !ok {
			return typeErr(t, v)
		}
		w.WriteULong(uint32(len(xs)))
		for i, x := range xs {
			if err := MarshalValue(w, t.Elem, x); err != nil {
				return fmt.Errorf("orb: sequence element %d: %w", i, err)
			}
		}
		return nil
	}
}

// UnmarshalValue decodes a value of IDL type t.
func UnmarshalValue(r *cdr.Reader, t *idl.Type) (any, error) {
	switch t.Kind {
	case idl.KindVoid:
		return nil, nil
	case idl.KindBool:
		return r.ReadBool()
	case idl.KindOctet:
		return r.ReadOctet()
	case idl.KindShort:
		return r.ReadShort()
	case idl.KindUShort:
		return r.ReadUShort()
	case idl.KindLong:
		return r.ReadLong()
	case idl.KindULong:
		return r.ReadULong()
	case idl.KindLongLong:
		return r.ReadLongLong()
	case idl.KindULongLong:
		return r.ReadULongLong()
	case idl.KindFloat:
		return r.ReadFloat()
	case idl.KindDouble:
		return r.ReadDouble()
	case idl.KindString:
		return r.ReadString()
	case idl.KindEnum:
		x, err := r.ReadULong()
		if err != nil {
			return nil, err
		}
		if int(x) >= len(t.Labels) {
			return nil, fmt.Errorf("orb: enum %s value %d out of range", t.Name, x)
		}
		return x, nil
	case idl.KindSequence:
		return unmarshalSequence(r, t)
	case idl.KindStruct:
		m := make(map[string]any, len(t.Fields))
		for _, f := range t.Fields {
			fv, err := UnmarshalValue(r, f.Type)
			if err != nil {
				return nil, fmt.Errorf("orb: struct %s field %q: %w", t.Name, f.Name, err)
			}
			m[f.Name] = fv
		}
		return m, nil
	case idl.KindObjRef:
		s, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		return ParseIOR(s)
	default:
		return nil, fmt.Errorf("orb: cannot unmarshal kind %v", t.Kind)
	}
}

func unmarshalSequence(r *cdr.Reader, t *idl.Type) (any, error) {
	switch t.Elem.Kind {
	case idl.KindOctet:
		return r.ReadOctets()
	case idl.KindDouble:
		n, err := r.ReadULong()
		if err != nil {
			return nil, err
		}
		xs := make([]float64, n)
		for i := range xs {
			if xs[i], err = r.ReadDouble(); err != nil {
				return nil, err
			}
		}
		return xs, nil
	case idl.KindLong:
		n, err := r.ReadULong()
		if err != nil {
			return nil, err
		}
		xs := make([]int32, n)
		for i := range xs {
			if xs[i], err = r.ReadLong(); err != nil {
				return nil, err
			}
		}
		return xs, nil
	case idl.KindString:
		n, err := r.ReadULong()
		if err != nil {
			return nil, err
		}
		xs := make([]string, n)
		for i := range xs {
			if xs[i], err = r.ReadString(); err != nil {
				return nil, err
			}
		}
		return xs, nil
	default:
		n, err := r.ReadULong()
		if err != nil {
			return nil, err
		}
		xs := make([]any, n)
		for i := range xs {
			if xs[i], err = UnmarshalValue(r, t.Elem); err != nil {
				return nil, err
			}
		}
		return xs, nil
	}
}

func typeErr(t *idl.Type, v any) error {
	return fmt.Errorf("orb: cannot marshal %T as IDL %s", v, t)
}

// SeqLen reports the wire payload significance of a value, used by the
// GridCCM layer to decide redistribution (only sequences are distributed).
func SeqLen(v any) (int, bool) {
	switch xs := v.(type) {
	case []byte:
		return len(xs), true
	case []float64:
		return len(xs), true
	case []int32:
		return len(xs), true
	case []string:
		return len(xs), true
	case []any:
		return len(xs), true
	default:
		return 0, false
	}
}
