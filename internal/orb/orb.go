// Package orb is the CORBA substrate of the reproduction: object
// references (IORs), an object adapter with servants, GIOP/CDR messaging,
// and DII-style dynamic invocation driven by the IDL repository.
//
// One ORB serves one Padico process. Its transport is pluggable: the VLink
// abstract interface under simulation (which transparently selects Myrinet
// or sockets — the paper's Figure 7 setup), or a real loopback-TCP
// transport under the wall clock for integration tests.
//
// Concrete CORBA implementations of 2003 differed mainly in request
// overhead and marshalling copies; an ORBProfile (omniORB 3/4, Mico,
// ORBacus, OpenCCM/Java) carries those calibrated costs, charged on the
// sending side of each GIOP message.
package orb

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"padico/internal/cdr"
	"padico/internal/giop"
	"padico/internal/idl"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ErrClosed is returned on operations against a shut-down ORB.
var ErrClosed = errors.New("orb: shut down")

// UserException is a CORBA user exception raised by a servant.
type UserException struct{ Msg string }

func (e *UserException) Error() string { return "orb: user exception: " + e.Msg }

// SystemException is a CORBA system exception (infrastructure failure).
type SystemException struct{ Msg string }

func (e *SystemException) Error() string { return "orb: system exception: " + e.Msg }

// Servant is the implementation side of an object: the adapter delivers
// each operation with its unmarshalled in/inout arguments (in signature
// order) and expects the result values back — the non-void result first,
// then out/inout parameters in signature order. Returning an error raises
// a user exception at the client.
type Servant interface {
	Invoke(op string, args []any) ([]any, error)
}

// HandlerMap is a convenience Servant dispatching on operation name.
// Attribute accessors use the GIOP names "_get_<attr>"/"_set_<attr>".
type HandlerMap map[string]func(args []any) ([]any, error)

// Invoke implements Servant.
func (h HandlerMap) Invoke(op string, args []any) ([]any, error) {
	f, ok := h[op]
	if !ok {
		return nil, &SystemException{Msg: "BAD_OPERATION: " + op}
	}
	return f(args)
}

// Transport abstracts how GIOP connections reach other nodes.
type Transport interface {
	// Listen binds the GIOP service and returns an acceptor.
	Listen(service string) (Acceptor, error)
	// Dial connects to the named node's GIOP service.
	Dial(node, service string) (vlink.Stream, error)
	// NodeName identifies the local node.
	NodeName() string
}

// Acceptor yields inbound GIOP streams.
type Acceptor interface {
	Accept() (vlink.Stream, error)
	Close() error
}

// Config configures an ORB.
type Config struct {
	Transport Transport
	Repo      *idl.Repository
	Profile   simnet.ORBProfile
	Runtime   vtime.Runtime
	Node      *simnet.Node // nil under the wall clock
	Service   string       // GIOP service name; default "giop"
}

// ORB is one process's object request broker.
type ORB struct {
	tr      Transport
	repo    *idl.Repository
	profile simnet.ORBProfile
	rt      vtime.Runtime
	node    *simnet.Node
	service string
	order   cdr.ByteOrder

	mu       sync.Mutex
	servants map[string]*activation
	conns    map[string]*clientConn
	pending  map[uint32]*call
	reqSeq   uint32
	acceptor Acceptor
	closed   bool
}

type activation struct {
	iface *idl.Interface
	impl  Servant
}

// New starts an ORB: the GIOP service is bound immediately.
func New(cfg Config) (*ORB, error) {
	if cfg.Service == "" {
		cfg.Service = "giop"
	}
	if cfg.Repo == nil {
		return nil, errors.New("orb: Config.Repo is required")
	}
	o := &ORB{
		tr:       cfg.Transport,
		repo:     cfg.Repo,
		profile:  cfg.Profile,
		rt:       cfg.Runtime,
		node:     cfg.Node,
		service:  cfg.Service,
		order:    cdr.BigEndian,
		servants: make(map[string]*activation),
		conns:    make(map[string]*clientConn),
		pending:  make(map[uint32]*call),
	}
	acc, err := cfg.Transport.Listen(cfg.Service)
	if err != nil {
		return nil, fmt.Errorf("orb: binding GIOP service: %w", err)
	}
	o.acceptor = acc
	o.rt.Go("orb:accept:"+o.tr.NodeName(), o.acceptLoop)
	return o, nil
}

// Repo returns the ORB's interface repository.
func (o *ORB) Repo() *idl.Repository { return o.repo }

// Service returns the GIOP service name this ORB is bound to.
func (o *ORB) Service() string { return o.service }

// Runtime returns the runtime the ORB schedules on.
func (o *ORB) Runtime() vtime.Runtime { return o.rt }

// Profile returns the emulated implementation profile.
func (o *ORB) Profile() simnet.ORBProfile { return o.profile }

// NodeName returns the hosting node's name.
func (o *ORB) NodeName() string { return o.tr.NodeName() }

// charge bills the profile's software cost for one GIOP message to the
// calling actor (no-op under the wall clock).
func (o *ORB) charge(bytes int) {
	if o.node != nil {
		o.node.Charge(o.profile.Cost, bytes)
	}
}

// Activate registers impl under key with the given interface and returns
// its IOR.
func (o *ORB) Activate(key, ifaceName string, impl Servant) (IOR, error) {
	iface, ok := o.repo.Interface(ifaceName)
	if !ok {
		return IOR{}, fmt.Errorf("orb: unknown interface %q", ifaceName)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.servants[key]; dup {
		return IOR{}, fmt.Errorf("orb: object key %q already active", key)
	}
	o.servants[key] = &activation{iface: iface, impl: impl}
	return IOR{Node: o.tr.NodeName(), Key: key, Iface: ifaceName}, nil
}

// Deactivate removes the servant under key.
func (o *ORB) Deactivate(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.servants, key)
}

// Shutdown closes the acceptor and all connections; pending calls fail.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	conns := o.conns
	o.conns = map[string]*clientConn{}
	pend := o.pending
	o.pending = map[uint32]*call{}
	o.mu.Unlock()
	o.acceptor.Close()
	for _, c := range conns {
		c.st.Close()
	}
	for _, cl := range pend {
		cl.fail(ErrClosed)
	}
}

// acceptLoop serves inbound GIOP connections.
func (o *ORB) acceptLoop() {
	for {
		st, err := o.acceptor.Accept()
		if err != nil {
			return
		}
		o.rt.Go("orb:serve", func() { o.serveConn(st) })
	}
}

// serveConn handles one inbound connection: requests dispatch concurrently,
// replies serialize on a semaphore (a plain mutex must not be held across
// virtual-time-blocking writes).
func (o *ORB) serveConn(st vlink.Stream) {
	wsem := vtime.NewSemaphore(o.rt, "orb: reply write", 1)
	for {
		t, order, body, err := giop.ReadMessage(st)
		if err != nil {
			st.Close()
			return
		}
		switch t {
		case giop.Request:
			o.rt.Go("orb:dispatch", func() { o.dispatch(st, wsem, order, body) })
		case giop.CloseConnection:
			st.Close()
			return
		default:
			// LocateRequest etc. are not needed by the workloads.
		}
	}
}

func (o *ORB) dispatch(st vlink.Stream, wsem *vtime.Semaphore, order cdr.ByteOrder, body []byte) {
	hdr, args, err := giop.ParseRequest(order, body)
	if err != nil {
		return // malformed: drop connection-level garbage
	}
	w := func() *cdr.Writer {
		results, uerr := o.invokeLocal(hdr, args, order)
		if uerr != nil {
			status := giop.UserException
			var sysErr *SystemException
			if errors.As(uerr, &sysErr) {
				status = giop.SystemException
			}
			w := giop.BeginReply(order, giop.ReplyHeader{RequestID: hdr.RequestID, Status: status})
			w.WriteString(uerr.Error())
			return w
		}
		return results
	}()
	if !hdr.ResponseExpected {
		return
	}
	reply := w.Bytes()
	o.charge(len(reply))
	if err := wsem.Acquire(); err != nil {
		return
	}
	defer wsem.Release()
	_ = giop.WriteMessage(st, giop.Reply, order, reply)
}

// invokeLocal runs the servant and marshals its results.
func (o *ORB) invokeLocal(hdr giop.RequestHeader, args *cdr.Reader, order cdr.ByteOrder) (*cdr.Writer, error) {
	key, opName := hdr.ObjectKey, hdr.Operation
	o.mu.Lock()
	act, ok := o.servants[key]
	o.mu.Unlock()
	if !ok {
		return nil, &SystemException{Msg: "OBJECT_NOT_EXIST: " + key}
	}
	op, err := resolveOp(act.iface, opName)
	if err != nil {
		return nil, err
	}
	ins := op.Ins()
	vals := make([]any, 0, len(ins))
	for _, p := range ins {
		v, err := UnmarshalValue(args, p.Type)
		if err != nil {
			return nil, &SystemException{Msg: fmt.Sprintf("MARSHAL: param %q: %v", p.Name, err)}
		}
		vals = append(vals, v)
	}
	results, err := act.impl.Invoke(opName, vals)
	if err != nil {
		return nil, err
	}
	// Marshal: non-void result first, then out/inout params.
	outs := op.Outs()
	want := len(outs)
	if op.Result.Kind != idl.KindVoid {
		want++
	}
	if len(results) != want {
		return nil, &SystemException{
			Msg: fmt.Sprintf("MARSHAL: %s returned %d values, want %d", opName, len(results), want),
		}
	}
	w := giop.BeginReply(order, giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.NoException})
	return w, o.marshalResults(w, op, results)
}

func (o *ORB) marshalResults(w *cdr.Writer, op *idl.Operation, results []any) error {
	i := 0
	if op.Result.Kind != idl.KindVoid {
		if err := MarshalValue(w, op.Result, results[0]); err != nil {
			return &SystemException{Msg: "MARSHAL: result: " + err.Error()}
		}
		i = 1
	}
	for _, p := range op.Outs() {
		if err := MarshalValue(w, p.Type, results[i]); err != nil {
			return &SystemException{Msg: fmt.Sprintf("MARSHAL: out param %q: %v", p.Name, err)}
		}
		i++
	}
	return nil
}

// resolveOp finds the operation, synthesizing attribute accessors.
func resolveOp(iface *idl.Interface, name string) (*idl.Operation, error) {
	if op, ok := iface.Op(name); ok {
		return op, nil
	}
	if attr, ok := strings.CutPrefix(name, "_get_"); ok {
		if a, found := iface.Attr(attr); found {
			return &idl.Operation{Name: name, Result: a.Type}, nil
		}
	}
	if attr, ok := strings.CutPrefix(name, "_set_"); ok {
		if a, found := iface.Attr(attr); found && !a.ReadOnly {
			return &idl.Operation{
				Name:   name,
				Result: idl.Basic(idl.KindVoid),
				Params: []idl.Param{{Name: "value", Dir: idl.In, Type: a.Type}},
			}, nil
		}
	}
	return nil, &SystemException{Msg: "BAD_OPERATION: " + iface.Name + "::" + name}
}
