package orb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"padico/internal/cdr"
	"padico/internal/idl"
)

// Property: for a random IDL type and a random value of that type, a
// marshal/unmarshal round trip through CDR is the identity, in both byte
// orders. This exercises the entire dynamic-invocation value path.

// randType draws a random IDL type of bounded depth.
func randType(r *rand.Rand, depth int) *idl.Type {
	basics := []idl.Kind{
		idl.KindBool, idl.KindOctet, idl.KindShort, idl.KindUShort,
		idl.KindLong, idl.KindULong, idl.KindLongLong, idl.KindULongLong,
		idl.KindFloat, idl.KindDouble, idl.KindString,
	}
	if depth <= 0 {
		return idl.Basic(basics[r.Intn(len(basics))])
	}
	switch r.Intn(4) {
	case 0:
		return idl.SequenceOf(randType(r, depth-1))
	case 1:
		n := r.Intn(3) + 1
		st := &idl.Type{Kind: idl.KindStruct, Name: "S"}
		for i := 0; i < n; i++ {
			st.Fields = append(st.Fields, idl.Field{
				Name: string(rune('a' + i)),
				Type: randType(r, depth-1),
			})
		}
		return st
	case 2:
		return &idl.Type{Kind: idl.KindEnum, Name: "E", Labels: []string{"A", "B", "C"}}
	default:
		return idl.Basic(basics[r.Intn(len(basics))])
	}
}

// randValue draws a random Go value of the given IDL type.
func randValue(r *rand.Rand, t *idl.Type) any {
	switch t.Kind {
	case idl.KindBool:
		return r.Intn(2) == 0
	case idl.KindOctet:
		return byte(r.Intn(256))
	case idl.KindShort:
		return int16(r.Uint32())
	case idl.KindUShort:
		return uint16(r.Uint32())
	case idl.KindLong:
		return int32(r.Uint32())
	case idl.KindULong:
		return r.Uint32()
	case idl.KindLongLong:
		return int64(r.Uint64())
	case idl.KindULongLong:
		return r.Uint64()
	case idl.KindFloat:
		return float32(r.NormFloat64())
	case idl.KindDouble:
		return r.NormFloat64()
	case idl.KindString:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	case idl.KindEnum:
		return uint32(r.Intn(len(t.Labels)))
	case idl.KindSequence:
		n := r.Intn(5)
		switch t.Elem.Kind {
		case idl.KindOctet:
			b := make([]byte, n)
			r.Read(b)
			return b
		case idl.KindDouble:
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64()
			}
			return xs
		case idl.KindLong:
			xs := make([]int32, n)
			for i := range xs {
				xs[i] = int32(r.Uint32())
			}
			return xs
		case idl.KindString:
			xs := make([]string, n)
			for i := range xs {
				xs[i] = randValue(r, idl.Basic(idl.KindString)).(string)
			}
			return xs
		default:
			xs := make([]any, n)
			for i := range xs {
				xs[i] = randValue(r, t.Elem)
			}
			return xs
		}
	case idl.KindStruct:
		m := make(map[string]any, len(t.Fields))
		for _, f := range t.Fields {
			m[f.Name] = randValue(r, f.Type)
		}
		return m
	default:
		return nil
	}
}

func TestValueRoundtripProperty(t *testing.T) {
	f := func(seed int64, le bool) bool {
		r := rand.New(rand.NewSource(seed))
		typ := randType(r, 3)
		val := randValue(r, typ)
		order := cdr.BigEndian
		if le {
			order = cdr.LittleEndian
		}
		w := cdr.NewWriter(order)
		if err := MarshalValue(w, typ, val); err != nil {
			t.Logf("marshal %s: %v", typ, err)
			return false
		}
		got, err := UnmarshalValue(cdr.NewReader(w.Bytes(), order), typ)
		if err != nil {
			t.Logf("unmarshal %s: %v", typ, err)
			return false
		}
		return valueEqual(val, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// valueEqual compares round-tripped values, treating nil and empty
// sequences as equal (CDR has no nil).
func valueEqual(a, b any) bool {
	if la, ok := seqLenOrNeg(a); ok {
		lb, _ := seqLenOrNeg(b)
		if la == 0 && lb == 0 {
			return true
		}
	}
	if ma, ok := a.(map[string]any); ok {
		mb, ok := b.(map[string]any)
		if !ok || len(ma) != len(mb) {
			return false
		}
		for k, va := range ma {
			if !valueEqual(va, mb[k]) {
				return false
			}
		}
		return true
	}
	if xa, ok := a.([]any); ok {
		xb, ok := b.([]any)
		if !ok || len(xa) != len(xb) {
			return false
		}
		for i := range xa {
			if !valueEqual(xa[i], xb[i]) {
				return false
			}
		}
		return true
	}
	// NaN-tolerant float comparison.
	if fa, ok := a.(float64); ok {
		fb, ok := b.(float64)
		return ok && (fa == fb || (fa != fa && fb != fb))
	}
	if fa, ok := a.(float32); ok {
		fb, ok := b.(float32)
		return ok && (fa == fb || (fa != fa && fb != fb))
	}
	return reflect.DeepEqual(a, b)
}

func seqLenOrNeg(v any) (int, bool) { return SeqLen(v) }

func TestValueRoundtripNestedSequences(t *testing.T) {
	// The paper: "a 2D array can be mapped to a sequence of sequences".
	matrix := idl.SequenceOf(idl.SequenceOf(idl.Basic(idl.KindDouble)))
	val := []any{[]float64{1, 2}, []float64{}, []float64{3, 4, 5}}
	w := cdr.NewWriter(cdr.BigEndian)
	if err := MarshalValue(w, matrix, val); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalValue(cdr.NewReader(w.Bytes(), cdr.BigEndian), matrix)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	rows := got.([]any)
	if len(rows) != 3 || rows[0].([]float64)[1] != 2 || rows[2].([]float64)[2] != 5 {
		t.Fatalf("matrix = %v", got)
	}
}
