package orb

import (
	"fmt"

	"padico/internal/cdr"
	"padico/internal/giop"
	"padico/internal/idl"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ObjRef is a client-side typed object reference.
type ObjRef struct {
	orb   *ORB
	ior   IOR
	iface *idl.Interface
}

// Object builds a typed reference from an IOR; the interface must be known
// to the local repository.
func (o *ORB) Object(ior IOR) (*ObjRef, error) {
	iface, ok := o.repo.Interface(ior.Iface)
	if !ok {
		return nil, fmt.Errorf("orb: interface %q not in local repository", ior.Iface)
	}
	return &ObjRef{orb: o, ior: ior, iface: iface}, nil
}

// StringToObject parses a stringified IOR and types it.
func (o *ORB) StringToObject(s string) (*ObjRef, error) {
	ior, err := ParseIOR(s)
	if err != nil {
		return nil, err
	}
	return o.Object(ior)
}

// IOR returns the reference's locator.
func (r *ObjRef) IOR() IOR { return r.ior }

// Interface returns the reference's IDL interface.
func (r *ObjRef) Interface() *idl.Interface { return r.iface }

// Invoke performs a dynamic invocation: in/inout arguments in signature
// order; returns the non-void result followed by out/inout values.
func (r *ObjRef) Invoke(op string, args ...any) ([]any, error) {
	opDef, err := resolveOp(r.iface, op)
	if err != nil {
		return nil, err
	}
	ins := opDef.Ins()
	if len(args) != len(ins) {
		return nil, fmt.Errorf("orb: %s.%s takes %d in-arguments, got %d",
			r.iface.Name, op, len(ins), len(args))
	}
	o := r.orb

	o.mu.Lock()
	o.reqSeq++
	reqID := o.reqSeq
	o.mu.Unlock()

	w := giop.BeginRequest(o.order, giop.RequestHeader{
		RequestID:        reqID,
		ResponseExpected: !opDef.Oneway,
		ObjectKey:        r.ior.Key,
		Operation:        op,
	})
	for i, p := range ins {
		if err := MarshalValue(w, p.Type, args[i]); err != nil {
			return nil, fmt.Errorf("orb: %s.%s param %q: %w", r.iface.Name, op, p.Name, err)
		}
	}
	body := w.Bytes()

	conn, err := o.connTo(r.ior.Node)
	if err != nil {
		return nil, err
	}
	var cl *call
	if !opDef.Oneway {
		cl = &call{w: o.rt.NewWaiter("orb: awaiting reply " + op), conn: conn}
		o.mu.Lock()
		o.pending[reqID] = cl
		o.mu.Unlock()
	}
	// The profile's software cost (request processing + marshalling
	// copies) is charged to the calling actor, then the message crosses
	// the abstract interface.
	o.charge(len(body))
	if err := conn.wsem.Acquire(); err != nil {
		return nil, err
	}
	werr := giop.WriteMessage(conn.st, giop.Request, o.order, body)
	conn.wsem.Release()
	if werr != nil {
		o.dropPending(reqID)
		return nil, fmt.Errorf("orb: sending request: %w", werr)
	}
	if opDef.Oneway {
		return nil, nil
	}
	if err := cl.w.Wait(); err != nil {
		return nil, err
	}
	if cl.err != nil {
		return nil, cl.err
	}
	return r.parseReply(opDef, cl)
}

func (r *ObjRef) parseReply(opDef *idl.Operation, cl *call) ([]any, error) {
	switch cl.status {
	case giop.NoException:
		outs := opDef.Outs()
		n := len(outs)
		if opDef.Result.Kind != idl.KindVoid {
			n++
		}
		results := make([]any, 0, n)
		if opDef.Result.Kind != idl.KindVoid {
			v, err := UnmarshalValue(cl.results, opDef.Result)
			if err != nil {
				return nil, &SystemException{Msg: "MARSHAL: result: " + err.Error()}
			}
			results = append(results, v)
		}
		for _, p := range outs {
			v, err := UnmarshalValue(cl.results, p.Type)
			if err != nil {
				return nil, &SystemException{Msg: fmt.Sprintf("MARSHAL: out %q: %v", p.Name, err)}
			}
			results = append(results, v)
		}
		return results, nil
	case giop.UserException:
		msg, _ := cl.results.ReadString()
		return nil, &UserException{Msg: msg}
	default:
		msg, _ := cl.results.ReadString()
		return nil, &SystemException{Msg: msg}
	}
}

// Get reads an attribute.
func (r *ObjRef) Get(attr string) (any, error) {
	vals, err := r.Invoke("_get_" + attr)
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// Set writes an attribute.
func (r *ObjRef) Set(attr string, v any) error {
	_, err := r.Invoke("_set_"+attr, v)
	return err
}

// call tracks one outstanding request.
type call struct {
	w       vtime.Waiter
	conn    *clientConn
	status  giop.ReplyStatus
	results *cdr.Reader
	err     error
}

func (c *call) fail(err error) {
	c.err = err
	c.w.Fire()
}

// clientConn is a cached outbound GIOP connection.
type clientConn struct {
	st   vlink.Stream
	wsem *vtime.Semaphore
}

// connTo returns (establishing if needed) the connection to a node.
func (o *ORB) connTo(node string) (*clientConn, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := o.conns[node]; ok {
		o.mu.Unlock()
		return c, nil
	}
	o.mu.Unlock()
	// Dial outside the lock: connection setup blocks in virtual time.
	st, err := o.tr.Dial(node, o.service)
	if err != nil {
		return nil, fmt.Errorf("orb: connecting to %s: %w", node, err)
	}
	c := &clientConn{st: st, wsem: vtime.NewSemaphore(o.rt, "orb: request write", 1)}
	o.mu.Lock()
	if dup, ok := o.conns[node]; ok {
		// Another actor raced us; keep theirs.
		o.mu.Unlock()
		st.Close()
		return dup, nil
	}
	o.conns[node] = c
	o.mu.Unlock()
	o.rt.Go("orb:replies:"+node, func() { o.replyLoop(node, c) })
	return c, nil
}

// replyLoop demultiplexes replies on one connection by request id.
func (o *ORB) replyLoop(node string, c *clientConn) {
	for {
		t, order, body, err := giop.ReadMessage(c.st)
		if err != nil {
			o.failConn(node, c, err)
			return
		}
		if t != giop.Reply {
			continue
		}
		hdr, results, err := giop.ParseReply(order, body)
		if err != nil {
			continue
		}
		o.mu.Lock()
		cl, ok := o.pending[hdr.RequestID]
		delete(o.pending, hdr.RequestID)
		o.mu.Unlock()
		if !ok {
			continue // cancelled or duplicate
		}
		cl.status = hdr.Status
		cl.results = results
		cl.w.Fire()
	}
}

// failConn tears a broken connection down and fails exactly the calls that
// were outstanding on it.
func (o *ORB) failConn(node string, c *clientConn, err error) {
	o.mu.Lock()
	if o.conns[node] == c {
		delete(o.conns, node)
	}
	var victims []*call
	for id, cl := range o.pending {
		if cl.conn == c {
			victims = append(victims, cl)
			delete(o.pending, id)
		}
	}
	o.mu.Unlock()
	c.st.Close()
	for _, cl := range victims {
		cl.fail(fmt.Errorf("orb: connection to %s lost: %w", node, err))
	}
}

func (o *ORB) dropPending(reqID uint32) {
	o.mu.Lock()
	delete(o.pending, reqID)
	o.mu.Unlock()
}

var (
	_ error   = (*UserException)(nil)
	_ error   = (*SystemException)(nil)
	_ Servant = HandlerMap(nil)
)
