package orb

import (
	"hash/fnv"

	"padico/internal/sockets"
	"padico/internal/vlink"
)

// VLinkTransport runs GIOP over PadicoTM's distributed abstract interface:
// the paper's configuration, where CORBA transparently uses Myrinet via the
// cross-paradigm mapping or sockets on LAN/WAN.
type VLinkTransport struct{ Linker *vlink.Linker }

// Listen implements Transport.
func (t VLinkTransport) Listen(service string) (Acceptor, error) {
	return t.Linker.Listen(service)
}

// Dial implements Transport.
func (t VLinkTransport) Dial(node, service string) (vlink.Stream, error) {
	return t.Linker.DialName(node, service)
}

// NodeName implements Transport.
func (t VLinkTransport) NodeName() string { return t.Linker.Node().Name }

var _ Transport = VLinkTransport{}

// TCPTransport runs GIOP over real loopback TCP sockets under the wall
// clock, for integration tests that exercise the genuine kernel path.
type TCPTransport struct {
	Stack *sockets.TCPStack
	Name  string
}

func tcpServicePort(service string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(service))
	return 28000 + int(h.Sum32()%10000)
}

// Listen implements Transport.
func (t TCPTransport) Listen(service string) (Acceptor, error) {
	l, err := t.Stack.Host(t.Name).Listen(tcpServicePort(service))
	if err != nil {
		return nil, err
	}
	return tcpAcceptor{l}, nil
}

// Dial implements Transport.
func (t TCPTransport) Dial(node, service string) (vlink.Stream, error) {
	return t.Stack.Host(t.Name).Dial(sockets.JoinAddr(node, tcpServicePort(service)))
}

// NodeName implements Transport.
func (t TCPTransport) NodeName() string { return t.Name }

type tcpAcceptor struct{ l sockets.Listener }

func (a tcpAcceptor) Accept() (vlink.Stream, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                  { return a.l.Close() }

var _ Transport = TCPTransport{}
