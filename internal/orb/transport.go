package orb

import (
	"fmt"

	"padico/internal/sockets"
	"padico/internal/vlink"
)

// Reachability is an optional Transport refinement: transports that know
// the network topology report whether the local node shares a device with
// a named peer, so resolvers can prefer endpoints the caller can dial.
type Reachability interface {
	CanReach(node string) bool
}

// AddrLearner is an optional Transport refinement: wall transports record
// node→endpoint mappings learned out-of-band (registry entries advertising
// their daemon's real TCP address), so by-name dialing reaches nodes never
// named in static configuration.
type AddrLearner interface {
	LearnAddr(node, addr string)
}

// VLinkTransport runs GIOP over PadicoTM's distributed abstract interface:
// the paper's configuration, where CORBA transparently uses Myrinet via the
// cross-paradigm mapping or sockets on LAN/WAN.
type VLinkTransport struct{ Linker *vlink.Linker }

// Listen implements Transport.
func (t VLinkTransport) Listen(service string) (Acceptor, error) {
	return t.Linker.Listen(service)
}

// Dial implements Transport.
func (t VLinkTransport) Dial(node, service string) (vlink.Stream, error) {
	return t.Linker.DialName(node, service)
}

// NodeName implements Transport.
func (t VLinkTransport) NodeName() string { return t.Linker.Node().Name }

// CanReach implements Reachability through the arbitration layer.
func (t VLinkTransport) CanReach(node string) bool { return t.Linker.CanReach(node) }

var (
	_ Transport    = VLinkTransport{}
	_ Reachability = VLinkTransport{}
)

// TCPTransport runs GIOP over real loopback TCP sockets under the wall
// clock, for integration tests that exercise the genuine kernel path.
type TCPTransport struct {
	Stack *sockets.TCPStack
	Name  string
}

// Listen implements Transport. Two distinct services hashing to the same
// derived port surface as a bind error naming the service, not a silent
// skip — the TCP stack has no per-service handshake to disambiguate them.
func (t TCPTransport) Listen(service string) (Acceptor, error) {
	l, err := t.Stack.Host(t.Name).Listen(sockets.ServicePort(service))
	if err != nil {
		return nil, fmt.Errorf("orb: binding service %q on derived port %d: %w",
			service, sockets.ServicePort(service), err)
	}
	return tcpAcceptor{l}, nil
}

// Dial implements Transport.
func (t TCPTransport) Dial(node, service string) (vlink.Stream, error) {
	return t.Stack.Host(t.Name).Dial(sockets.JoinAddr(node, sockets.ServicePort(service)))
}

// NodeName implements Transport.
func (t TCPTransport) NodeName() string { return t.Name }

type tcpAcceptor struct{ l sockets.Listener }

func (a tcpAcceptor) Accept() (vlink.Stream, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                  { return a.l.Close() }

var _ Transport = TCPTransport{}

// WallTransport runs the control plane over a live deployment's WallHost:
// one real TCP listener per daemon multiplexing all services, and dialing
// by node name through the host's address book. This is the transport
// padico-d serves on and padico-ctl -attach steers through — genuinely
// separate OS processes, no simulated network anywhere.
type WallTransport struct{ Host *sockets.WallHost }

// Listen implements Transport on the host's service mux.
func (t WallTransport) Listen(service string) (Acceptor, error) {
	l, err := t.Host.Listen(service)
	if err != nil {
		return nil, err
	}
	return tcpAcceptor{l}, nil
}

// Dial implements Transport through the address book.
func (t WallTransport) Dial(node, service string) (vlink.Stream, error) {
	return t.Host.Dial(node, service)
}

// NodeName implements Transport.
func (t WallTransport) NodeName() string { return t.Host.NodeName() }

// CanReach implements Reachability: on the wall, a node is reachable when
// its endpoint is known — there is no topology to consult, only the book.
func (t WallTransport) CanReach(node string) bool { return t.Host.Knows(node) }

// LearnAddr implements AddrLearner by recording into the address book.
func (t WallTransport) LearnAddr(node, addr string) { t.Host.Register(node, addr) }

var (
	_ Transport    = WallTransport{}
	_ Reachability = WallTransport{}
	_ AddrLearner  = WallTransport{}
)
