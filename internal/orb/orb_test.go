package orb

import (
	"errors"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/cdr"
	"padico/internal/idl"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

const calcIDL = `
module Demo {
    typedef sequence<double> Vec;
    struct Point { double x; double y; };
    enum Mode { FAST, SAFE };

    interface Calc {
        double add(in double a, in double b);
        Vec scale(in Vec v, in double k);
        void minmax(in Vec v, out double lo, out double hi);
        double dist(in Point p, inout Point q);
        oneway void fire(in string event);
        string modeName(in Mode m);
        long fail(in string why);
        attribute long counter;
        readonly attribute string label;
    };
};
`

// calcServant implements Demo::Calc.
type calcServant struct {
	counter int32
	fired   chan string
}

func (c *calcServant) Invoke(op string, args []any) ([]any, error) {
	switch op {
	case "add":
		return []any{args[0].(float64) + args[1].(float64)}, nil
	case "scale":
		v, k := args[0].([]float64), args[1].(float64)
		out := make([]float64, len(v))
		for i := range v {
			out[i] = v[i] * k
		}
		return []any{out}, nil
	case "minmax":
		v := args[0].([]float64)
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return []any{lo, hi}, nil
	case "dist":
		p := args[0].(map[string]any)
		q := args[1].(map[string]any)
		dx := p["x"].(float64) - q["x"].(float64)
		dy := p["y"].(float64) - q["y"].(float64)
		// inout param comes back doubled, to observe mutation.
		q2 := map[string]any{"x": q["x"].(float64) * 2, "y": q["y"].(float64) * 2}
		return []any{dx*dx + dy*dy, q2}, nil
	case "fire":
		c.fired <- args[0].(string)
		return []any{}, nil
	case "modeName":
		names := []string{"FAST", "SAFE"}
		return []any{names[args[0].(uint32)]}, nil
	case "fail":
		return nil, &UserException{Msg: args[0].(string)}
	case "_get_counter":
		return []any{c.counter}, nil
	case "_set_counter":
		c.counter = args[0].(int32)
		return []any{}, nil
	case "_get_label":
		return []any{"calc-v1"}, nil
	default:
		return nil, &SystemException{Msg: "BAD_OPERATION: " + op}
	}
}

// simPair builds two nodes with SAN+LAN, linkers, and two ORBs.
func simPair(t *testing.T, profile simnet.ORBProfile) (*vtime.Sim, *arbitration.Arbiter, *ORB, *ORB, func()) {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b := net.NewNode("alpha"), net.NewNode("beta")
	arb := arbitration.New(net)
	if _, err := arb.AddSAN(net.NewMyrinet2000("myri0", []*simnet.Node{a, b})); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.AddSock(net.NewEthernet100("eth0", []*simnet.Node{a, b})); err != nil {
		t.Fatal(err)
	}
	la, lb := vlink.NewLinker(arb, a), vlink.NewLinker(arb, b)
	repoA, repoB := idl.NewRepository(), idl.NewRepository()
	repoA.MustParse(calcIDL)
	repoB.MustParse(calcIDL)
	orbA, err := New(Config{Transport: VLinkTransport{la}, Repo: repoA, Profile: profile, Runtime: s, Node: a})
	if err != nil {
		t.Fatal(err)
	}
	orbB, err := New(Config{Transport: VLinkTransport{lb}, Repo: repoB, Profile: profile, Runtime: s, Node: b})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		orbA.Shutdown()
		orbB.Shutdown()
		la.Close()
		lb.Close()
		arb.Close()
	}
	return s, arb, orbA, orbB, cleanup
}

func activateCalc(t *testing.T, o *ORB) (IOR, *calcServant) {
	t.Helper()
	sv := &calcServant{fired: make(chan string, 4)}
	ior, err := o.Activate("calc-1", "Demo::Calc", sv)
	if err != nil {
		t.Fatalf("activate: %v", err)
	}
	return ior, sv
}

func TestInvokeOverSimulatedGrid(t *testing.T) {
	s, _, orbA, orbB, cleanup := simPair(t, simnet.OmniORB3)
	s.Run(func() {
		defer cleanup()
		ior, sv := activateCalc(t, orbA)
		ref, err := orbB.Object(ior)
		if err != nil {
			t.Fatalf("object: %v", err)
		}
		// Scalar op.
		vals, err := ref.Invoke("add", 2.5, 4.0)
		if err != nil || vals[0].(float64) != 6.5 {
			t.Fatalf("add = %v, %v", vals, err)
		}
		// Sequence op.
		vals, err = ref.Invoke("scale", []float64{1, 2, 3}, 10.0)
		if err != nil {
			t.Fatalf("scale: %v", err)
		}
		if got := vals[0].([]float64); got[2] != 30 {
			t.Fatalf("scale = %v", got)
		}
		// Out params.
		vals, err = ref.Invoke("minmax", []float64{5, -1, 9})
		if err != nil || vals[0].(float64) != -1 || vals[1].(float64) != 9 {
			t.Fatalf("minmax = %v, %v", vals, err)
		}
		// Struct in + inout.
		p := map[string]any{"x": 3.0, "y": 4.0}
		q := map[string]any{"x": 1.0, "y": 1.0}
		vals, err = ref.Invoke("dist", p, q)
		if err != nil || vals[0].(float64) != 13 {
			t.Fatalf("dist = %v, %v", vals, err)
		}
		if q2 := vals[1].(map[string]any); q2["x"].(float64) != 2 {
			t.Fatalf("inout q = %v", q2)
		}
		// Enum.
		vals, err = ref.Invoke("modeName", uint32(1))
		if err != nil || vals[0].(string) != "SAFE" {
			t.Fatalf("modeName = %v, %v", vals, err)
		}
		// Attributes.
		if err := ref.Set("counter", int32(42)); err != nil {
			t.Fatalf("set: %v", err)
		}
		if v, err := ref.Get("counter"); err != nil || v.(int32) != 42 {
			t.Fatalf("get = %v, %v", v, err)
		}
		if v, _ := ref.Get("label"); v.(string) != "calc-v1" {
			t.Fatalf("label = %v", v)
		}
		if err := ref.Set("label", "nope"); err == nil {
			t.Fatal("set on readonly attribute succeeded")
		}
		// Oneway.
		if _, err := ref.Invoke("fire", "evt-1"); err != nil {
			t.Fatalf("fire: %v", err)
		}
		select {
		case got := <-sv.fired:
			if got != "evt-1" {
				t.Fatalf("fired = %q", got)
			}
		default:
			// Oneway may still be in flight; wait a little virtual time.
			s.Sleep(time.Millisecond)
			if got := <-sv.fired; got != "evt-1" {
				t.Fatalf("fired = %q", got)
			}
		}
	})
}

func TestUserAndSystemExceptions(t *testing.T) {
	s, _, orbA, orbB, cleanup := simPair(t, simnet.OmniORB3)
	s.Run(func() {
		defer cleanup()
		ior, _ := activateCalc(t, orbA)
		ref, _ := orbB.Object(ior)
		_, err := ref.Invoke("fail", "numerical blow-up")
		var ue *UserException
		if !errors.As(err, &ue) {
			t.Fatalf("err = %v, want UserException", err)
		}
		// Unknown operation → system exception.
		_, err = ref.Invoke("nonsense")
		var se *SystemException
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want SystemException", err)
		}
		// Wrong arg count is a local error.
		if _, err := ref.Invoke("add", 1.0); err == nil {
			t.Fatal("wrong arity accepted")
		}
		// Wrong arg type is a marshal error.
		if _, err := ref.Invoke("add", "x", "y"); err == nil {
			t.Fatal("wrong types accepted")
		}
		// Dangling key.
		bad, _ := orbB.Object(IOR{Node: "alpha", Key: "ghost", Iface: "Demo::Calc"})
		if _, err := bad.Invoke("add", 1.0, 2.0); !errors.As(err, &se) {
			t.Fatalf("ghost invoke err = %v", err)
		}
	})
}

func TestConcurrentInvocations(t *testing.T) {
	s, _, orbA, orbB, cleanup := simPair(t, simnet.OmniORB3)
	s.Run(func() {
		defer cleanup()
		ior, _ := activateCalc(t, orbA)
		ref, _ := orbB.Object(ior)
		const k = 16
		wg := vtime.NewWaitGroup(s, "calls")
		for i := 0; i < k; i++ {
			wg.Add(1)
			s.Go("caller", func() {
				defer wg.Done()
				vals, err := ref.Invoke("add", float64(i), 1000.0)
				if err != nil || vals[0].(float64) != float64(i)+1000 {
					t.Errorf("call %d = %v, %v", i, vals, err)
				}
			})
		}
		_ = wg.Wait()
	})
}

func TestLatencyMatchesPaperOmniORB(t *testing.T) {
	// §4.4: omniORB latency 20 µs on PadicoTM/Myrinet (half round-trip).
	s, _, orbA, orbB, cleanup := simPair(t, simnet.OmniORB3)
	s.Run(func() {
		defer cleanup()
		ior, _ := activateCalc(t, orbA)
		ref, _ := orbB.Object(ior)
		// Warm up the connection.
		if _, err := ref.Invoke("add", 0.0, 0.0); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		const iters = 10
		start := s.Now()
		for i := 0; i < iters; i++ {
			if _, err := ref.Invoke("add", 1.0, 2.0); err != nil {
				t.Fatalf("invoke: %v", err)
			}
		}
		half := s.Now().Sub(start) / (2 * iters)
		if half < 18*time.Microsecond || half > 23*time.Microsecond {
			t.Errorf("omniORB half round-trip = %v, want ≈20µs", half)
		}
	})
}

func TestMicoSlowerThanOmniORB(t *testing.T) {
	measure := func(profile simnet.ORBProfile) time.Duration {
		s, _, orbA, orbB, cleanup := simPair(t, profile)
		var d time.Duration
		s.Run(func() {
			defer cleanup()
			ior, _ := activateCalc(t, orbA)
			ref, _ := orbB.Object(ior)
			_, _ = ref.Invoke("add", 0.0, 0.0)
			big := make([]float64, 65536)
			start := s.Now()
			if _, err := ref.Invoke("scale", big, 2.0); err != nil {
				t.Errorf("scale: %v", err)
			}
			d = s.Now().Sub(start)
		})
		return d
	}
	omni := measure(simnet.OmniORB3)
	mico := measure(simnet.Mico)
	if float64(mico)/float64(omni) < 2 {
		t.Fatalf("Mico (%v) should be several times slower than omniORB (%v) on large args", mico, omni)
	}
}

func TestNamingService(t *testing.T) {
	s, _, orbA, orbB, cleanup := simPair(t, simnet.OmniORB4)
	s.Run(func() {
		defer cleanup()
		if _, err := ServeNaming(orbA); err != nil {
			t.Fatalf("serve naming: %v", err)
		}
		ior, _ := activateCalc(t, orbA)
		ns, err := orbB.NamingAt("alpha")
		if err != nil {
			t.Fatalf("naming client: %v", err)
		}
		if err := ns.Bind("demo/calc", ior); err != nil {
			t.Fatalf("bind: %v", err)
		}
		if err := ns.Bind("demo/calc", ior); err == nil {
			t.Fatal("double bind succeeded")
		}
		got, err := ns.Resolve("demo/calc")
		if err != nil || got != ior {
			t.Fatalf("resolve = %+v, %v", got, err)
		}
		names, err := ns.List()
		if err != nil || len(names) != 1 || names[0] != "demo/calc" {
			t.Fatalf("list = %v, %v", names, err)
		}
		ref, _ := orbB.Object(got)
		if vals, err := ref.Invoke("add", 1.0, 1.0); err != nil || vals[0].(float64) != 2 {
			t.Fatalf("resolved invoke = %v, %v", vals, err)
		}
		if err := ns.Unbind("demo/calc"); err != nil {
			t.Fatalf("unbind: %v", err)
		}
		if _, err := ns.Resolve("demo/calc"); err == nil {
			t.Fatal("resolve after unbind succeeded")
		}
	})
}

func TestIORRoundtrip(t *testing.T) {
	ior := IOR{Node: "alpha", Key: "calc-1", Iface: "Demo::Calc"}
	got, err := ParseIOR(ior.String())
	if err != nil || got != ior {
		t.Fatalf("roundtrip = %+v, %v", got, err)
	}
	if _, err := ParseIOR("IOR:00deadbeef"); err == nil {
		t.Error("foreign IOR accepted")
	}
	if _, err := ParseIOR("corbaloc:padico:nodeonly"); err == nil {
		t.Error("missing key accepted")
	}
	if nilIOR, err := ParseIOR(""); err != nil || !nilIOR.Nil() {
		t.Errorf("empty = %+v, %v", nilIOR, err)
	}
}

func TestORBOverRealTCP(t *testing.T) {
	// The same ORB code runs over genuine loopback TCP under wall time.
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	repoA, repoB := idl.NewRepository(), idl.NewRepository()
	repoA.MustParse(calcIDL)
	repoB.MustParse(calcIDL)
	orbA, err := New(Config{Transport: TCPTransport{Stack: stack, Name: "alpha"}, Repo: repoA,
		Profile: simnet.OmniORB3, Runtime: wall})
	if err != nil {
		t.Fatal(err)
	}
	defer orbA.Shutdown()
	orbB, err := New(Config{Transport: TCPTransport{Stack: stack, Name: "beta"}, Repo: repoB,
		Profile: simnet.OmniORB3, Runtime: wall})
	if err != nil {
		t.Fatal(err)
	}
	defer orbB.Shutdown()
	sv := &calcServant{fired: make(chan string, 1)}
	ior, err := orbA.Activate("calc-1", "Demo::Calc", sv)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := orbB.Object(ior)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ref.Invoke("add", 20.0, 22.0)
	if err != nil || vals[0].(float64) != 42 {
		t.Fatalf("add over TCP = %v, %v", vals, err)
	}
	vals, err = ref.Invoke("scale", []float64{1, 2}, 3.0)
	if err != nil || vals[0].([]float64)[1] != 6 {
		t.Fatalf("scale over TCP = %v, %v", vals, err)
	}
}

func TestValueMarshalErrors(t *testing.T) {
	repo := idl.NewRepository()
	repo.MustParse(`struct S { long a; };
		interface I { void f(in S s, in sequence<long> xs); };`)
	st, _ := repo.Type("S")
	w := cdr.NewWriter(cdr.BigEndian)
	// Missing struct field.
	if err := MarshalValue(w, st, map[string]any{}); err == nil {
		t.Error("missing field accepted")
	}
	if err := MarshalValue(w, st, "not-a-map"); err == nil {
		t.Error("non-map struct accepted")
	}
	seq := idl.SequenceOf(idl.Basic(idl.KindLong))
	if err := MarshalValue(w, seq, []float64{1}); err == nil {
		t.Error("wrong slice type accepted")
	}
	if err := MarshalValue(w, seq, []int32{1, 2}); err != nil {
		t.Errorf("valid slice rejected: %v", err)
	}
}

func TestSeqLen(t *testing.T) {
	for _, tc := range []struct {
		v    any
		n    int
		isSq bool
	}{
		{[]byte{1, 2}, 2, true},
		{[]float64{1}, 1, true},
		{[]int32{}, 0, true},
		{[]string{"a", "b", "c"}, 3, true},
		{[]any{1, 2}, 2, true},
		{42, 0, false},
		{"str", 0, false},
	} {
		n, ok := SeqLen(tc.v)
		if n != tc.n || ok != tc.isSq {
			t.Errorf("SeqLen(%T) = %d,%v", tc.v, n, ok)
		}
	}
}
