package simnet

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/vtime"
)

func newTestGrid(t *testing.T, n int) (*vtime.Sim, *Net, *Fabric) {
	t.Helper()
	s := vtime.NewSim()
	net := New(s)
	var nodes []*Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.NewNode("node"+string(rune('A'+i))))
	}
	fab := net.NewMyrinet2000("myri0", nodes)
	return s, net, fab
}

// TestNodeByName: the name index behind by-name dialing matches the node
// slice, misses unknown names, and keeps first-wins semantics on
// duplicate registrations (mirroring the linear scan it replaced).
func TestNodeByName(t *testing.T) {
	net := New(vtime.NewSim())
	a := net.NewNode("alpha")
	b := net.NewNode("beta")
	if nd, ok := net.NodeByName("alpha"); !ok || nd != a {
		t.Fatalf("NodeByName(alpha) = %v, %v", nd, ok)
	}
	if nd, ok := net.NodeByName("beta"); !ok || nd != b {
		t.Fatalf("NodeByName(beta) = %v, %v", nd, ok)
	}
	if _, ok := net.NodeByName("gamma"); ok {
		t.Fatal("unknown name resolved")
	}
	dup := net.NewNode("alpha")
	if nd, _ := net.NodeByName("alpha"); nd != a || nd == dup {
		t.Fatal("duplicate registration stole the name from the first node")
	}
}

func TestSingleFlowExactTiming(t *testing.T) {
	s, net, fab := newTestGrid(t, 2)
	nodes := fab.Nodes()
	s.Run(func() {
		p, err := fab.Path(nodes[0], nodes[1])
		if err != nil {
			t.Fatalf("path: %v", err)
		}
		start := s.Now()
		if err := net.Transfer(p, 1_000_000); err != nil {
			t.Fatalf("transfer: %v", err)
		}
		got := s.Now().Sub(start)
		// 1 MB at 250 MB/s = 4 ms transmission + 7 µs propagation.
		want := 4*time.Millisecond + 7*time.Microsecond
		if got != want {
			t.Fatalf("transfer took %v, want %v", got, want)
		}
	})
}

func TestZeroByteTransferCostsLatencyOnly(t *testing.T) {
	s, net, fab := newTestGrid(t, 2)
	nodes := fab.Nodes()
	s.Run(func() {
		p, _ := fab.Path(nodes[0], nodes[1])
		start := s.Now()
		if err := net.Transfer(p, 0); err != nil {
			t.Fatalf("transfer: %v", err)
		}
		if got := s.Now().Sub(start); got != 7*time.Microsecond {
			t.Fatalf("zero-byte transfer took %v, want 7µs", got)
		}
	})
}

func TestEmptyPathRejected(t *testing.T) {
	s := vtime.NewSim()
	net := New(s)
	s.Run(func() {
		if err := net.Transfer(Path{}, 10); err == nil {
			t.Error("empty path accepted")
		}
	})
}

func TestTwoFlowsShareNICFairly(t *testing.T) {
	// The paper's concurrency claim: two streams over the same NIC pair
	// each get half the wire, so each 1 MB transfer takes ~8 ms.
	s, net, fab := newTestGrid(t, 2)
	nodes := fab.Nodes()
	s.Run(func() {
		p, _ := fab.Path(nodes[0], nodes[1])
		durs := make(chan time.Duration, 2)
		wg := vtime.NewWaitGroup(s, "join")
		for i := 0; i < 2; i++ {
			wg.Add(1)
			s.Go("stream", func() {
				start := s.Now()
				if err := net.Transfer(p, 1_000_000); err != nil {
					t.Errorf("transfer: %v", err)
				}
				durs <- s.Now().Sub(start)
				wg.Done()
			})
		}
		_ = wg.Wait()
		want := 8*time.Millisecond + 7*time.Microsecond
		for i := 0; i < 2; i++ {
			if got := <-durs; got != want {
				t.Errorf("shared transfer took %v, want %v", got, want)
			}
		}
	})
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	// Crossbar behaviour: A→B and C→D run at full speed concurrently.
	s, net, fab := newTestGrid(t, 4)
	nd := fab.Nodes()
	s.Run(func() {
		pAB, _ := fab.Path(nd[0], nd[1])
		pCD, _ := fab.Path(nd[2], nd[3])
		wg := vtime.NewWaitGroup(s, "join")
		for _, p := range []Path{pAB, pCD} {
			wg.Add(1)
			s.Go("stream", func() {
				if err := net.Transfer(p, 1_000_000); err != nil {
					t.Errorf("transfer: %v", err)
				}
				wg.Done()
			})
		}
		_ = wg.Wait()
		want := vtime.Time(4*time.Millisecond + 7*time.Microsecond)
		if s.Now() != want {
			t.Fatalf("disjoint transfers finished at %v, want %v", s.Now(), want)
		}
	})
}

func TestLateJoinerSlowsExistingFlow(t *testing.T) {
	// Flow 1 runs alone for 2 ms (500 KB done), then shares for the rest.
	s, net, fab := newTestGrid(t, 2)
	nd := fab.Nodes()
	s.Run(func() {
		p, _ := fab.Path(nd[0], nd[1])
		var d1 time.Duration
		wg := vtime.NewWaitGroup(s, "join")
		wg.Add(2)
		s.Go("first", func() {
			start := s.Now()
			_ = net.Transfer(p, 1_000_000)
			d1 = s.Now().Sub(start)
			wg.Done()
		})
		s.Go("second", func() {
			s.Sleep(2 * time.Millisecond)
			_ = net.Transfer(p, 1_000_000)
			wg.Done()
		})
		_ = wg.Wait()
		// First: 2 ms alone (500 KB) + 4 ms shared (500 KB at 125 MB/s)
		// + 7 µs latency = 6.007 ms.
		want := 6*time.Millisecond + 7*time.Microsecond
		if d1 != want {
			t.Fatalf("first flow took %v, want %v", d1, want)
		}
	})
}

func TestTrunkIsSharedBottleneck(t *testing.T) {
	s := vtime.NewSim()
	net := New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	c, d := net.NewNode("c"), net.NewNode("d")
	wan := net.NewWAN("wan0", []*Node{a, b, c, d}, 5e6, time.Millisecond)
	s.Run(func() {
		p1, _ := wan.Path(a, b)
		p2, _ := wan.Path(c, d)
		if p1.Latency() != time.Millisecond+45*time.Microsecond {
			t.Fatalf("trunk path latency = %v", p1.Latency())
		}
		wg := vtime.NewWaitGroup(s, "join")
		for _, p := range []Path{p1, p2} {
			wg.Add(1)
			s.Go("stream", func() {
				_ = net.Transfer(p, 1_000_000)
				wg.Done()
			})
		}
		_ = wg.Wait()
		// Two flows share the 5 MB/s trunk: 1 MB each at 2.5 MB/s
		// = 400 ms + path latency.
		want := vtime.Time(400*time.Millisecond + time.Millisecond + 45*time.Microsecond)
		if s.Now() != want {
			t.Fatalf("finished at %v, want %v", s.Now(), want)
		}
	})
}

func TestPathProperties(t *testing.T) {
	s := vtime.NewSim()
	net := New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	san := net.NewMyrinet2000("m", []*Node{a, b})
	wan := net.NewWAN("w", []*Node{a, b}, 1e6, 10*time.Millisecond)
	ps, _ := san.Path(a, b)
	pw, _ := wan.Path(a, b)
	if ps.Insecure() {
		t.Error("SAN path reported insecure")
	}
	if !pw.Insecure() {
		t.Error("WAN path reported secure")
	}
	if ps.Bottleneck() != MyrinetBps {
		t.Errorf("SAN bottleneck = %v", ps.Bottleneck())
	}
	if pw.Bottleneck() != 1e6 {
		t.Errorf("WAN bottleneck = %v", pw.Bottleneck())
	}
	if ps.String() == "" || pw.String() == "" {
		t.Error("empty path string")
	}
}

func TestPathUnattachedNode(t *testing.T) {
	s := vtime.NewSim()
	net := New(s)
	a, b, c := net.NewNode("a"), net.NewNode("b"), net.NewNode("c")
	fab := net.NewMyrinet2000("m", []*Node{a, b})
	if _, err := fab.Path(a, c); err == nil {
		t.Error("path to unattached node succeeded")
	}
	if _, err := fab.Path(c, a); err == nil {
		t.Error("path from unattached node succeeded")
	}
	if fab.Attached(c) {
		t.Error("Attached(c) = true")
	}
}

func TestLoopbackPath(t *testing.T) {
	s, net, fab := newTestGrid(t, 1)
	nd := fab.Nodes()[0]
	s.Run(func() {
		p, err := fab.Path(nd, nd)
		if err != nil {
			t.Fatalf("loopback path: %v", err)
		}
		if err := net.Transfer(p, 1000); err != nil {
			t.Fatalf("loopback transfer: %v", err)
		}
	})
}

func TestCostDuration(t *testing.T) {
	c := Cost{PerMessage: 10 * time.Microsecond, PerByte: 2}
	if got := c.Duration(0); got != 10*time.Microsecond {
		t.Errorf("Duration(0) = %v", got)
	}
	if got := c.Duration(1000); got != 12*time.Microsecond {
		t.Errorf("Duration(1000) = %v", got)
	}
	sum := c.Plus(Cost{PerMessage: time.Microsecond, PerByte: 1})
	if sum.PerMessage != 11*time.Microsecond || sum.PerByte != 3 {
		t.Errorf("Plus = %+v", sum)
	}
	if c.String() == "" {
		t.Error("empty cost string")
	}
}

// Property: with any number of same-size concurrent flows over one NIC pair,
// total virtual time equals k * size / capacity (+latency): the fluid model
// conserves bytes and shares exactly.
func TestFairShareConservationProperty(t *testing.T) {
	f := func(k8 uint8, sz16 uint16) bool {
		k := int(k8%6) + 1
		size := int(sz16%50_000) + 1000
		s := vtime.NewSim()
		net := New(s)
		a, b := net.NewNode("a"), net.NewNode("b")
		fab := net.NewMyrinet2000("m", []*Node{a, b})
		var end vtime.Time
		s.Run(func() {
			p, _ := fab.Path(a, b)
			wg := vtime.NewWaitGroup(s, "join")
			for i := 0; i < k; i++ {
				wg.Add(1)
				s.Go("f", func() {
					_ = net.Transfer(p, size)
					wg.Done()
				})
			}
			_ = wg.Wait()
			end = s.Now()
		})
		ideal := float64(k*size)/MyrinetBps*1e9 + 7000 // ns
		return math.Abs(float64(end)-ideal) < 1000     // within 1 µs rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a flow never finishes earlier than its uncontended ideal time.
func TestNoFlowBeatsWireSpeedProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		s := vtime.NewSim()
		net := New(s)
		a, b := net.NewNode("a"), net.NewNode("b")
		fab := net.NewMyrinet2000("m", []*Node{a, b})
		ok := true
		s.Run(func() {
			p, _ := fab.Path(a, b)
			wg := vtime.NewWaitGroup(s, "join")
			for _, sz := range sizes {
				size := int(sz) + 1
				wg.Add(1)
				s.Go("f", func() {
					start := s.Now()
					_ = net.Transfer(p, size)
					got := s.Now().Sub(start)
					min := time.Duration(float64(size)/MyrinetBps*1e9) + 7*time.Microsecond
					if got < min-time.Microsecond {
						ok = false
					}
					wg.Done()
				})
			}
			_ = wg.Wait()
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndActiveFlows(t *testing.T) {
	s, net, fab := newTestGrid(t, 2)
	nd := fab.Nodes()
	s.Run(func() {
		p, _ := fab.Path(nd[0], nd[1])
		if net.ActiveFlows() != 0 {
			t.Error("flows active before any transfer")
		}
		_ = net.Transfer(p, 5000)
		flows, bytes := net.Stats()
		if flows != 1 || bytes != 5000 {
			t.Errorf("stats = %d flows, %d bytes", flows, bytes)
		}
		if net.ActiveFlows() != 0 {
			t.Error("flow leaked after completion")
		}
	})
}

func TestDeviceKindString(t *testing.T) {
	for k, want := range map[DeviceKind]string{SAN: "SAN", LAN: "LAN", WAN: "WAN", DeviceKind(9): "DeviceKind(9)"} {
		if k.String() != want {
			t.Errorf("String(%d) = %s", int(k), k)
		}
	}
}
