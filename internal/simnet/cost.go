// Package simnet simulates the grid hardware of the paper's testbed: nodes,
// network links and fabrics (Myrinet-2000 crossbar SAN, switched Fast
// Ethernet, wide-area links), with a fluid-flow contention model driven by a
// vtime.Runtime.
//
// A transfer is a flow across a path of links. Every link divides its
// capacity equally among the flows crossing it and a flow progresses at the
// minimum share along its path; completions are recomputed whenever a flow
// joins or leaves. This reproduces the bandwidth-sharing behaviour the paper
// reports (two concurrent middleware streams on one Myrinet NIC each obtain
// half the wire) while staying deterministic under virtual time.
//
// Software costs (protocol stacks, marshalling copies) are modelled as Cost
// values charged to the calling actor's timeline by the layer that incurs
// them; see calibrate.go for the constants and their derivations.
package simnet

import (
	"fmt"
	"time"
)

// Cost models a software layer's contribution to the duration of handling
// one message: a fixed per-message overhead plus a per-byte cost (copies,
// checksums, marshalling).
type Cost struct {
	PerMessage time.Duration
	PerByte    float64 // nanoseconds per byte
}

// Duration returns the time to process a message of n bytes.
func (c Cost) Duration(n int) time.Duration {
	return c.PerMessage + time.Duration(c.PerByte*float64(n))
}

// Plus returns the composition of two layer costs.
func (c Cost) Plus(d Cost) Cost {
	return Cost{PerMessage: c.PerMessage + d.PerMessage, PerByte: c.PerByte + d.PerByte}
}

func (c Cost) String() string {
	return fmt.Sprintf("%v + %.3f ns/B", c.PerMessage, c.PerByte)
}
