package simnet

import "time"

// Calibration constants.
//
// The paper's evaluation ran on dual-Pentium III 1 GHz, 512 MB RAM, switched
// Ethernet-100 and Myrinet-2000 under Linux 2.2 (§4.4). We cannot rerun that
// testbed; instead, every software layer carries a Cost calibrated so that
// the *published* end-to-end numbers are recovered when the layers compose:
//
//	MPI/Myrinet        latency 11 µs, peak 240 MB/s (96 % of 250 MB/s)
//	omniORB/Myrinet    latency 20 µs, peak 240 MB/s
//	Mico/Myrinet       latency 62 µs, peak 55 MB/s
//	ORBacus/Myrinet    latency 54 µs, peak 63 MB/s
//	concurrent MPI+CORBA: 120 MB/s each
//	GridCCM/Mico/Myrinet n→n: 62/93/123/148 µs, 43/76/144/280 MB/s
//	GridCCM Ethernet: Mico 9.8→78.4 MB/s, OpenCCM(Java) 8.3→66.4 MB/s
//
// Derivations are given inline; the shape results (who wins, by what factor,
// where curves cross, how sharing behaves) then *emerge* from the simulation
// rather than being tabulated per benchmark. See EXPERIMENTS.md.
const (
	// MyrinetLinkLatency is half the 7 µs node-to-node hardware latency
	// (egress NIC + ingress NIC traversals).
	MyrinetLinkLatency = 3500 * time.Nanosecond
	// EthernetLinkLatency is half of a 45 µs node-to-node wire latency.
	EthernetLinkLatency = 22500 * time.Nanosecond
)

const (
	// MyrinetBps is the Myrinet-2000 hardware capacity: 250 MB/s
	// (the paper reports 240 MB/s as "96 % of the maximum").
	MyrinetBps = 250e6
	// EthernetBps is Fast Ethernet's 100 Mb/s = 12.5 MB/s.
	EthernetBps = 12.5e6
)

// Layer costs. PerByte values are in nanoseconds per byte.
var (
	// MadeleineCost: the SAN library adds 2 µs of per-message protocol
	// work; 0.1667 ns/B of DMA/pipeline overhead brings the Myrinet
	// asymptote from 250 to the measured 240 MB/s
	// (1/240 − 1/250 MB/s ≈ 0.1667 ns/B).
	MadeleineCost = Cost{PerMessage: 2 * time.Microsecond, PerByte: 0.1667}

	// TCPCost: kernel socket path. 15 µs per message gives the classic
	// ≈60 µs LAN round-trip half with the 45 µs wire; 2.95 ns/B of
	// copies/checksums caps plain TCP slightly below wire speed.
	TCPCost = Cost{PerMessage: 15 * time.Microsecond, PerByte: 2.95}

	// MPICost: MPICH/Madeleine adds 2 µs matching/queueing per message
	// (7 µs wire + 2 µs Madeleine + 2 µs MPI = the 11 µs of §4.4) and no
	// extra copies (rendezvous path is zero-copy).
	MPICost = Cost{PerMessage: 2 * time.Microsecond, PerByte: 0}

	// CircuitCost/VLinkCost: the abstraction layer is deliberately thin;
	// the paper measures "no significant overhead".
	CircuitCost = Cost{}
	VLinkCost   = Cost{}

	// EncryptionCost models the §2/§6 security scenario: streams crossing
	// insecure links pay a software-crypto copy (~25 MB/s class CPU of
	// the era); disabled automatically inside secure SANs.
	EncryptionCost = Cost{PerMessage: 5 * time.Microsecond, PerByte: 40}
)

// ORBProfile captures how a concrete CORBA implementation behaves on top of
// PadicoTM: a fixed per-request software overhead and a per-byte marshalling
// cost. Per the paper, "unlike omniORB, Mico and ORBacus always copy data
// for marshalling and unmarshalling" — that copy is exactly the PerByte
// term.
type ORBProfile struct {
	Name string
	Cost Cost
}

var (
	// OmniORB3: 20 µs latency = 7 wire + 2 Madeleine + 11 ORB; zero-copy.
	OmniORB3 = ORBProfile{Name: "omniORB-3.0.2", Cost: Cost{PerMessage: 11 * time.Microsecond}}
	// OmniORB4: marginally leaner request path than omniORB 3.
	OmniORB4 = ORBProfile{Name: "omniORB-4.0.0", Cost: Cost{PerMessage: 10 * time.Microsecond}}
	// Mico 2.3.7: 62 µs latency ⇒ 53 µs ORB overhead; peak 55 MB/s ⇒
	// 1/55 − 1/240 MB/s ≈ 14.02 ns/B of marshalling copies.
	Mico = ORBProfile{Name: "Mico-2.3.7", Cost: Cost{PerMessage: 53 * time.Microsecond, PerByte: 14.02}}
	// ORBacus 4.0.5: 54 µs ⇒ 45 µs overhead; peak 63 MB/s ⇒ ≈11.70 ns/B.
	ORBacus = ORBProfile{Name: "ORBacus-4.0.5", Cost: Cost{PerMessage: 45 * time.Microsecond, PerByte: 11.70}}
	// OpenCCMJava substitutes the paper's Java OpenCCM platform: JVM-era
	// serialization adds ≈18.4 ns/B over Mico (8.3 vs 9.8 MB/s on
	// Ethernet) and a heavier request path.
	OpenCCMJava = ORBProfile{Name: "OpenCCM-Java", Cost: Cost{PerMessage: 120 * time.Microsecond, PerByte: 32.45}}
)

// GridCCM interposition-layer costs (§4.2.2). Derived from Figure 8:
var (
	// GridCCMViewCost: building the distributed-argument view copies the
	// user sequence once (43 vs 55 MB/s at 1→1 ⇒ 1/43 − 1/55.2 MB/s
	// ≈ 5.07 ns/B).
	GridCCMViewCost = Cost{PerByte: 5.07}
	// GridCCMRedistCost: when real redistribution happens (more than one
	// node a side), fragments are cut and reassembled: one extra pass.
	GridCCMRedistCost = Cost{PerByte: 2.31}
	// GridCCMLevelPerByte: descriptor/bookkeeping cost per doubling of
	// the node count (applied ×log2(n)).
	GridCCMLevelPerByte = 0.75
	// GridCCMRoundCost: client-side coordination processing per sync
	// round, on top of the MPI barrier message itself. The layer
	// synchronizes the client members before and after each parallel
	// invocation (request-ordering guarantee), so one invocation costs
	// 2×log2(n)×(11 µs barrier round + this) + the server-side barrier —
	// reproducing Figure 8's 62/93/123/148 µs latency column.
	GridCCMRoundCost = Cost{PerMessage: 13 * time.Microsecond}
)

// SOAPCost models the gSOAP port: XML encode/decode dominates.
var SOAPCost = Cost{PerMessage: 180 * time.Microsecond, PerByte: 85}

// HLACost models the Certi HLA port's per-interaction processing.
var HLACost = Cost{PerMessage: 40 * time.Microsecond, PerByte: 6}
