package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"padico/internal/vtime"
)

// Net is a simulated network: a set of links carrying fluid flows under a
// shared contention engine. One Net models one grid (it may contain several
// fabrics).
type Net struct {
	rt vtime.Runtime

	mu      sync.Mutex
	nodes   []*Node
	byName  map[string]*Node // name index for DialName-style resolution
	links   []*Link
	flows   map[*flow]struct{}
	last    vtime.Time // instant of the last fluid update
	timer   vtime.Timer
	epoch   int64 // invalidates stale completion timers
	nflowsT int64 // total flows ever started (stats)
	bytesT  int64 // total bytes ever delivered (stats)
}

// New returns an empty network on the given runtime.
func New(rt vtime.Runtime) *Net {
	return &Net{rt: rt, byName: make(map[string]*Node), flows: make(map[*flow]struct{})}
}

// Runtime returns the runtime driving this network.
func (n *Net) Runtime() vtime.Runtime { return n.rt }

// Node is a simulated machine. Hardware NIC links are attached by fabrics;
// CPU work (marshalling copies and protocol processing) is charged to the
// calling actor's timeline with Charge.
type Node struct {
	ID   int
	Name string
	net  *Net
}

// NewNode registers a machine on the network.
func (n *Net) NewNode(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd := &Node{ID: len(n.nodes), Name: name, net: n}
	n.nodes = append(n.nodes, nd)
	// First registration wins the name, matching the old linear scan in
	// creation order that this index replaces.
	if _, dup := n.byName[name]; !dup {
		n.byName[name] = nd
	}
	return nd
}

// NodeByName looks a machine up by name in O(1) — the index behind
// by-name dialing (vlink.Linker.DialName) on the hot connection path.
func (n *Net) NodeByName(name string) (*Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.byName[name]
	return nd, ok
}

// Nodes returns all registered machines in creation order.
func (n *Net) Nodes() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*Node(nil), n.nodes...)
}

// Charge blocks the calling actor for the CPU time c costs on n bytes.
func (nd *Node) Charge(c Cost, bytes int) {
	nd.net.rt.Sleep(c.Duration(bytes))
}

func (nd *Node) String() string { return nd.Name }

// Link is a unidirectional simulated wire with a propagation latency and a
// capacity shared equally among concurrent flows.
type Link struct {
	Name    string
	Latency time.Duration
	Bps     float64 // capacity in bytes per second
	Secure  bool    // physically secure (e.g. inside a parallel machine)

	net   *Net
	nflow int // active flows crossing this link
}

// NewLink registers a link. Secure links model networks inside a machine
// room where the paper argues encryption can be disabled.
func (n *Net) NewLink(name string, lat time.Duration, bps float64, secure bool) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := &Link{Name: name, Latency: lat, Bps: bps, Secure: secure, net: n}
	n.links = append(n.links, l)
	return l
}

// Path is an ordered traversal of links from a source to a destination.
type Path struct {
	Links []*Link
}

// Latency returns the summed propagation latency of the path.
func (p Path) Latency() time.Duration {
	var d time.Duration
	for _, l := range p.Links {
		d += l.Latency
	}
	return d
}

// Insecure reports whether any link of the path is physically insecure, in
// which case the paper's security scenario requires encryption.
func (p Path) Insecure() bool {
	for _, l := range p.Links {
		if !l.Secure {
			return true
		}
	}
	return false
}

// Bottleneck returns the smallest link capacity along the path in bytes/s.
func (p Path) Bottleneck() float64 {
	b := math.Inf(1)
	for _, l := range p.Links {
		if l.Bps < b {
			b = l.Bps
		}
	}
	return b
}

func (p Path) String() string {
	s := ""
	for i, l := range p.Links {
		if i > 0 {
			s += "→"
		}
		s += l.Name
	}
	return s
}

// flow is one in-flight transfer under the fluid model.
type flow struct {
	links     []*Link
	remaining float64 // bytes not yet transmitted
	rate      float64 // bytes/sec granted at the last recompute
	w         vtime.Waiter
}

// Transfer moves bytes along the path, blocking the calling actor until the
// last byte has arrived at the destination (transmission under contention
// plus propagation latency). Zero-byte transfers cost one latency. The
// error is non-nil only if the runtime shut down mid-flight.
func (n *Net) Transfer(p Path, bytes int) error {
	if len(p.Links) == 0 {
		return fmt.Errorf("simnet: empty path")
	}
	if bytes <= 0 {
		n.rt.Sleep(p.Latency())
		return nil
	}
	w := n.rt.NewWaiter("simnet: transfer in flight")
	f := &flow{links: p.Links, remaining: float64(bytes), w: w}

	n.mu.Lock()
	n.advanceLocked()
	n.flows[f] = struct{}{}
	for _, l := range f.links {
		l.nflow++
	}
	n.nflowsT++
	n.bytesT += int64(bytes)
	n.recomputeLocked()
	n.mu.Unlock()

	if err := w.Wait(); err != nil {
		return err
	}
	n.rt.Sleep(p.Latency())
	return nil
}

// advanceLocked progresses every active flow to the current instant.
func (n *Net) advanceLocked() {
	now := n.rt.Now()
	dt := now.Sub(n.last).Seconds()
	if dt > 0 {
		for f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.last = now
}

// recomputeLocked reassigns fair-share rates, completes finished flows and
// schedules the next completion event. Callers must have advanced first.
func (n *Net) recomputeLocked() {
	const eps = 1e-6
	// Complete finished flows.
	var fired []vtime.Waiter
	for f := range n.flows {
		if f.remaining <= eps {
			for _, l := range f.links {
				l.nflow--
			}
			delete(n.flows, f)
			fired = append(fired, f.w)
		}
	}
	// Equal split per link; flow rate is the minimum share on its path.
	next := math.Inf(1)
	for f := range n.flows {
		rate := math.Inf(1)
		for _, l := range f.links {
			share := l.Bps / float64(l.nflow)
			if share < rate {
				rate = share
			}
		}
		f.rate = rate
		if eta := f.remaining / rate; eta < next {
			next = eta
		}
	}
	// One pending timer for the earliest completion.
	if n.timer != nil {
		n.timer.Stop()
		n.timer = nil
	}
	if !math.IsInf(next, 1) {
		n.epoch++
		epoch := n.epoch
		d := time.Duration(math.Ceil(next * 1e9))
		n.timer = n.rt.AfterFunc(d, func() { n.onCompletion(epoch) })
	}
	// Fire outside the loop but inside the lock is unsafe (waiter firing
	// takes the scheduler lock, which is fine, but keep discipline):
	// actually fire after releasing is impossible here since callers hold
	// the lock; vtime.Waiter.Fire only touches the sim mutex, which is
	// never held while simnet's lock is taken, so firing here is safe.
	for _, w := range fired {
		w.Fire()
	}
}

// onCompletion runs on the scheduler watch when the earliest flow finishes.
func (n *Net) onCompletion(epoch int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch != n.epoch {
		return // superseded by a later recompute
	}
	n.timer = nil
	n.advanceLocked()
	n.recomputeLocked()
}

// ActiveFlows reports how many transfers are currently in flight.
func (n *Net) ActiveFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// Stats returns the total number of flows started and bytes carried.
func (n *Net) Stats() (flows, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nflowsT, n.bytesT
}
