package simnet

import (
	"fmt"
	"time"
)

// DeviceKind classifies a fabric by the communication paradigm it is best
// used with, following the paper's arbitration-layer argument: parallel
// oriented networks (SAN) are driven with a Madeleine-like library, while
// distributed oriented links (LAN, WAN) are driven with sockets.
type DeviceKind int

const (
	// SAN is a system-area network (Myrinet, SCI): parallel paradigm.
	SAN DeviceKind = iota
	// LAN is a local-area network (switched Ethernet): distributed paradigm.
	LAN
	// WAN is a wide-area network: distributed paradigm.
	WAN
)

func (k DeviceKind) String() string {
	switch k {
	case SAN:
		return "SAN"
	case LAN:
		return "LAN"
	case WAN:
		return "WAN"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// Fabric is one network device interconnecting a set of nodes: a Myrinet
// crossbar, an Ethernet switch, or a wide-area connection between sites.
// Full-duplex NICs are modelled as an egress and an ingress link per node,
// so two flows between distinct node pairs never contend (crossbar), while
// concurrent flows over the same NIC pair share the wire.
type Fabric struct {
	Name      string
	Kind      DeviceKind
	Exclusive bool // device driver allows a single owner (e.g. Myrinet/BIP)

	net     *Net
	nodes   []*Node
	egress  map[*Node]*Link
	ingress map[*Node]*Link
	trunk   *Link // optional shared backbone (WAN)
}

// FabricSpec describes a fabric to build.
type FabricSpec struct {
	Name        string
	Kind        DeviceKind
	LinkLatency time.Duration // one-way per NIC traversal (half of node-to-node)
	Bps         float64       // per-NIC capacity, bytes/second
	Secure      bool
	Exclusive   bool
	// Trunk, if positive, inserts a shared backbone link of this capacity
	// and TrunkLatency between all node pairs (used for WANs).
	TrunkBps     float64
	TrunkLatency time.Duration
}

// NewFabric attaches the given nodes to a new fabric built from spec.
func (n *Net) NewFabric(spec FabricSpec, nodes []*Node) *Fabric {
	f := &Fabric{
		Name:      spec.Name,
		Kind:      spec.Kind,
		Exclusive: spec.Exclusive,
		net:       n,
		nodes:     append([]*Node(nil), nodes...),
		egress:    make(map[*Node]*Link),
		ingress:   make(map[*Node]*Link),
	}
	for _, nd := range nodes {
		f.egress[nd] = n.NewLink(fmt.Sprintf("%s/%s.tx", spec.Name, nd.Name),
			spec.LinkLatency, spec.Bps, spec.Secure)
		f.ingress[nd] = n.NewLink(fmt.Sprintf("%s/%s.rx", spec.Name, nd.Name),
			spec.LinkLatency, spec.Bps, spec.Secure)
	}
	if spec.TrunkBps > 0 {
		f.trunk = n.NewLink(spec.Name+"/trunk", spec.TrunkLatency, spec.TrunkBps, spec.Secure)
	}
	return f
}

// Net returns the network this fabric belongs to.
func (f *Fabric) Net() *Net { return f.net }

// Nodes returns the machines attached to this fabric.
func (f *Fabric) Nodes() []*Node { return append([]*Node(nil), f.nodes...) }

// Attached reports whether nd has a NIC on this fabric.
func (f *Fabric) Attached(nd *Node) bool {
	_, ok := f.egress[nd]
	return ok
}

// Path returns the link traversal from one node to another on this fabric.
func (f *Fabric) Path(from, to *Node) (Path, error) {
	e, ok := f.egress[from]
	if !ok {
		return Path{}, fmt.Errorf("simnet: node %s not attached to fabric %s", from, f.Name)
	}
	i, ok := f.ingress[to]
	if !ok {
		return Path{}, fmt.Errorf("simnet: node %s not attached to fabric %s", to, f.Name)
	}
	if from == to {
		// Loopback: model as a single cheap hop through the NIC.
		return Path{Links: []*Link{e}}, nil
	}
	if f.trunk != nil {
		return Path{Links: []*Link{e, f.trunk, i}}, nil
	}
	return Path{Links: []*Link{e, i}}, nil
}

// Standard fabric builders matching the paper's testbed.

// NewMyrinet2000 builds the paper's SAN: Myrinet-2000 through a full
// crossbar, 250 MB/s per NIC, 7 µs node-to-node hardware latency, physically
// secure (machine-room network), exclusive-access driver (BIP/GM-style).
func (n *Net) NewMyrinet2000(name string, nodes []*Node) *Fabric {
	return n.NewFabric(FabricSpec{
		Name:        name,
		Kind:        SAN,
		LinkLatency: MyrinetLinkLatency,
		Bps:         MyrinetBps,
		Secure:      true,
		Exclusive:   true,
	}, nodes)
}

// NewEthernet100 builds the paper's LAN: switched Fast Ethernet at
// 12.5 MB/s per NIC, 45 µs node-to-node hardware latency. Like the SAN it
// lives inside the machine room, so it is physically secure; only WANs are
// untrusted in the paper's security scenario.
func (n *Net) NewEthernet100(name string, nodes []*Node) *Fabric {
	return n.NewFabric(FabricSpec{
		Name:        name,
		Kind:        LAN,
		LinkLatency: EthernetLinkLatency,
		Bps:         EthernetBps,
		Secure:      true,
	}, nodes)
}

// NewWAN builds a wide-area interconnection with a shared insecure trunk.
func (n *Net) NewWAN(name string, nodes []*Node, trunkBps float64, trunkLat time.Duration) *Fabric {
	return n.NewFabric(FabricSpec{
		Name:         name,
		Kind:         WAN,
		LinkLatency:  EthernetLinkLatency,
		Bps:          EthernetBps,
		TrunkBps:     trunkBps,
		TrunkLatency: trunkLat,
	}, nodes)
}
