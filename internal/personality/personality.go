// Package personality implements PadicoTM's personality layer (§4.3.3):
// thin adapters that give the abstract interfaces the look of standard
// APIs, performing no protocol adaptation nor paradigm translation — only
// syntax. As in the paper, four personalities are provided:
//
//   - BSD sockets (SockAPI) and POSIX AIO (AioAPI) over VLink;
//   - Madeleine (MadAPI) and FastMessages (FMAPI) over Circuit.
//
// Legacy middleware is "ported to PadicoTM" by linking against one of these
// instead of the system API (the paper's wrapper-at-link-stage trick).
package personality

import (
	"errors"
	"fmt"
	"sync"

	"padico/internal/circuit"
	"padico/internal/madeleine"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// EBADF mirrors the errno a BSD socket layer returns for a bad descriptor.
var EBADF = errors.New("personality: bad file descriptor")

// SockAPI is the BSD-sockets personality over VLink.
type SockAPI struct {
	ln *vlink.Linker

	mu   sync.Mutex
	fds  map[int]*fdEntry
	next int
}

type fdEntry struct {
	service string
	lst     *vlink.Listener
	st      vlink.Stream
}

// NewSockAPI wraps a linker with a descriptor table.
func NewSockAPI(ln *vlink.Linker) *SockAPI {
	return &SockAPI{ln: ln, fds: make(map[int]*fdEntry), next: 3}
}

// Socket allocates a descriptor.
func (a *SockAPI) Socket() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	fd := a.next
	a.next++
	a.fds[fd] = &fdEntry{}
	return fd
}

func (a *SockAPI) entry(fd int) (*fdEntry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return e, nil
}

// Bind names the socket's service (the personality's port namespace).
func (a *SockAPI) Bind(fd int, service string) error {
	e, err := a.entry(fd)
	if err != nil {
		return err
	}
	e.service = service
	return nil
}

// Listen starts accepting on the bound service.
func (a *SockAPI) Listen(fd int) error {
	e, err := a.entry(fd)
	if err != nil {
		return err
	}
	if e.service == "" {
		return fmt.Errorf("personality: listen on unbound socket %d", fd)
	}
	l, err := a.ln.Listen(e.service)
	if err != nil {
		return err
	}
	e.lst = l
	return nil
}

// Accept blocks for an inbound connection and returns its descriptor.
func (a *SockAPI) Accept(fd int) (int, error) {
	e, err := a.entry(fd)
	if err != nil {
		return -1, err
	}
	if e.lst == nil {
		return -1, fmt.Errorf("personality: accept on non-listening socket %d", fd)
	}
	st, err := e.lst.Accept()
	if err != nil {
		return -1, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	nfd := a.next
	a.next++
	a.fds[nfd] = &fdEntry{st: st}
	return nfd, nil
}

// Connect dials nodeName's service and binds the stream to fd.
func (a *SockAPI) Connect(fd int, nodeName, service string) error {
	e, err := a.entry(fd)
	if err != nil {
		return err
	}
	st, err := a.ln.DialName(nodeName, service)
	if err != nil {
		return err
	}
	e.st = st
	return nil
}

// Send writes on a connected socket.
func (a *SockAPI) Send(fd int, p []byte) (int, error) {
	e, err := a.entry(fd)
	if err != nil {
		return 0, err
	}
	if e.st == nil {
		return 0, fmt.Errorf("personality: send on unconnected socket %d", fd)
	}
	return e.st.Write(p)
}

// Recv reads from a connected socket.
func (a *SockAPI) Recv(fd int, p []byte) (int, error) {
	e, err := a.entry(fd)
	if err != nil {
		return 0, err
	}
	if e.st == nil {
		return 0, fmt.Errorf("personality: recv on unconnected socket %d", fd)
	}
	return e.st.Read(p)
}

// Close releases the descriptor and its stream/listener.
func (a *SockAPI) Close(fd int) error {
	a.mu.Lock()
	e, ok := a.fds[fd]
	delete(a.fds, fd)
	a.mu.Unlock()
	if !ok {
		return EBADF
	}
	if e.st != nil {
		e.st.Close()
	}
	if e.lst != nil {
		e.lst.Close()
	}
	return nil
}

// AioAPI is the POSIX.2 asynchronous I/O personality over VLink.
type AioAPI struct {
	rt vtime.Runtime
}

// NewAioAPI returns an AIO adapter scheduling on rt.
func NewAioAPI(rt vtime.Runtime) *AioAPI { return &AioAPI{rt: rt} }

// AioOp is an in-flight asynchronous operation (an aiocb).
type AioOp struct {
	mu   sync.Mutex
	n    int
	err  error
	done bool
	w    vtime.Waiter
}

// Write starts an asynchronous write of p to st.
func (a *AioAPI) Write(st vlink.Stream, p []byte) *AioOp {
	op := &AioOp{w: a.rt.NewWaiter("aio: write")}
	a.rt.Go("aio:write", func() {
		n, err := st.Write(p)
		op.complete(n, err)
	})
	return op
}

// Read starts an asynchronous read into p from st.
func (a *AioAPI) Read(st vlink.Stream, p []byte) *AioOp {
	op := &AioOp{w: a.rt.NewWaiter("aio: read")}
	a.rt.Go("aio:read", func() {
		n, err := st.Read(p)
		op.complete(n, err)
	})
	return op
}

func (op *AioOp) complete(n int, err error) {
	op.mu.Lock()
	op.n, op.err, op.done = n, err, true
	op.mu.Unlock()
	op.w.Fire()
}

// Done polls completion (aio_error == EINPROGRESS test).
func (op *AioOp) Done() bool {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.done
}

// Wait suspends until completion and returns the result (aio_suspend +
// aio_return).
func (op *AioOp) Wait() (int, error) {
	_ = op.w.Wait()
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.n, op.err
}

// MadAPI is the Madeleine personality over Circuit: the packing API of the
// original library re-exposed on the abstract parallel interface.
type MadAPI struct {
	c *circuit.Circuit
}

// NewMadAPI wraps a circuit.
func NewMadAPI(c *circuit.Circuit) *MadAPI { return &MadAPI{c: c} }

// OutMsg is an outgoing message being packed (begin_packing handle).
type OutMsg struct {
	api *MadAPI
	dst int
	p   madeleine.Packer
}

// BeginPacking starts a message to dst.
func (m *MadAPI) BeginPacking(dst int) *OutMsg { return &OutMsg{api: m, dst: dst} }

// Pack appends a block in the given mode.
func (o *OutMsg) Pack(data []byte, mode madeleine.PackMode) { o.p.Pack(data, mode) }

// EndPacking sends the message.
func (o *OutMsg) EndPacking() error {
	msg := o.p.Message()
	return o.api.c.Send(o.dst, msg.Header, msg.Payload)
}

// InMsg is a received message being unpacked.
type InMsg struct {
	Src int
	u   *madeleine.Unpacker
}

// BeginUnpacking blocks for the next message.
func (m *MadAPI) BeginUnpacking() (*InMsg, error) {
	msg, err := m.c.Recv()
	if err != nil {
		return nil, err
	}
	return &InMsg{
		Src: msg.Src,
		u:   madeleine.NewUnpacker(madeleine.Message{Header: msg.Header, Payload: msg.Payload}),
	}, nil
}

// Unpack extracts the next block packed in the given mode.
func (i *InMsg) Unpack(mode madeleine.PackMode) ([]byte, error) { return i.u.Unpack(mode) }

// FMAPI is the FastMessages personality over Circuit: active messages
// dispatched to registered handlers.
type FMAPI struct {
	c    *circuit.Circuit
	node *simnet.Node

	mu       sync.Mutex
	handlers map[uint16]func(src int, data []byte)
	loop     bool
}

// NewFMAPI wraps a circuit; Start must be called to begin dispatching.
func NewFMAPI(c *circuit.Circuit, rt vtime.Runtime) *FMAPI {
	f := &FMAPI{c: c, handlers: make(map[uint16]func(int, []byte))}
	rt.Go("fm:dispatch", f.dispatch)
	return f
}

// Register installs the handler for an active-message id.
func (f *FMAPI) Register(id uint16, h func(src int, data []byte)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[id] = h
}

// Send delivers an active message: the peer's registered handler runs with
// the payload.
func (f *FMAPI) Send(dst int, id uint16, data []byte) error {
	return f.c.Send(dst, []byte{byte(id >> 8), byte(id)}, data)
}

func (f *FMAPI) dispatch() {
	for {
		m, err := f.c.Recv()
		if err != nil {
			return
		}
		if len(m.Header) < 2 {
			continue
		}
		id := uint16(m.Header[0])<<8 | uint16(m.Header[1])
		f.mu.Lock()
		h := f.handlers[id]
		f.mu.Unlock()
		if h != nil {
			h(m.Src, m.Payload)
		}
	}
}
