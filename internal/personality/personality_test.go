package personality

import (
	"errors"
	"fmt"
	"testing"

	"padico/internal/arbitration"
	"padico/internal/circuit"
	"padico/internal/madeleine"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

type grid struct {
	sim     *vtime.Sim
	net     *simnet.Net
	nodes   []*simnet.Node
	arb     *arbitration.Arbiter
	linkers []*vlink.Linker
}

func newGrid(n int) *grid {
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &grid{sim: s, net: net}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	if _, err := g.arbSetup(net); err != nil {
		panic(err)
	}
	return g
}

func (g *grid) arbSetup(net *simnet.Net) (*arbitration.Arbiter, error) {
	g.arb = arbitration.New(net)
	if _, err := g.arb.AddSAN(net.NewMyrinet2000("myri0", g.nodes)); err != nil {
		return nil, err
	}
	if _, err := g.arb.AddSock(net.NewEthernet100("eth0", g.nodes)); err != nil {
		return nil, err
	}
	for _, nd := range g.nodes {
		g.linkers = append(g.linkers, vlink.NewLinker(g.arb, nd))
	}
	return g.arb, nil
}

func (g *grid) teardown() {
	for _, ln := range g.linkers {
		ln.Close()
	}
	g.arb.Close()
}

func TestSockAPILifecycle(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.teardown()
		srv := NewSockAPI(g.linkers[0])
		cli := NewSockAPI(g.linkers[1])

		lfd := srv.Socket()
		if err := srv.Bind(lfd, "daytime"); err != nil {
			t.Fatalf("bind: %v", err)
		}
		if err := srv.Listen(lfd); err != nil {
			t.Fatalf("listen: %v", err)
		}
		g.sim.Go("server", func() {
			cfd, err := srv.Accept(lfd)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			buf := make([]byte, 16)
			n, err := srv.Recv(cfd, buf)
			if err != nil {
				t.Errorf("srv recv: %v", err)
				return
			}
			if _, err := srv.Send(cfd, buf[:n]); err != nil {
				t.Errorf("srv send: %v", err)
			}
			_ = srv.Close(cfd)
		})

		cfd := cli.Socket()
		if err := cli.Connect(cfd, "n0", "daytime"); err != nil {
			t.Fatalf("connect: %v", err)
		}
		if _, err := cli.Send(cfd, []byte("what time")); err != nil {
			t.Fatalf("send: %v", err)
		}
		buf := make([]byte, 9)
		if _, err := cli.Recv(cfd, buf); err != nil {
			t.Fatalf("recv: %v", err)
		}
		if string(buf) != "what time" {
			t.Fatalf("echo = %q", buf)
		}
		_ = cli.Close(cfd)
		_ = srv.Close(lfd)
	})
}

func TestSockAPIErrors(t *testing.T) {
	g := newGrid(1)
	g.sim.Run(func() {
		defer g.teardown()
		api := NewSockAPI(g.linkers[0])
		if err := api.Bind(99, "x"); !errors.Is(err, EBADF) {
			t.Errorf("bind bad fd = %v", err)
		}
		fd := api.Socket()
		if err := api.Listen(fd); err == nil {
			t.Error("listen unbound succeeded")
		}
		if _, err := api.Accept(fd); err == nil {
			t.Error("accept non-listening succeeded")
		}
		if _, err := api.Send(fd, []byte("x")); err == nil {
			t.Error("send unconnected succeeded")
		}
		if _, err := api.Recv(fd, make([]byte, 1)); err == nil {
			t.Error("recv unconnected succeeded")
		}
		if err := api.Close(fd); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := api.Close(fd); !errors.Is(err, EBADF) {
			t.Errorf("double close = %v", err)
		}
	})
}

func TestAioOverlapsOperations(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.teardown()
		l, _ := g.linkers[0].Listen("aio")
		g.sim.Go("peer", func() {
			st, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 5)
			if _, err := st.Read(buf); err == nil {
				_, _ = st.Write(buf)
			}
		})
		st, err := g.linkers[1].Dial(g.nodes[0], "aio")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		aio := NewAioAPI(g.sim)
		rbuf := make([]byte, 5)
		rop := aio.Read(st, rbuf) // posted before the data exists
		wop := aio.Write(st, []byte("hello"))
		if n, err := wop.Wait(); err != nil || n != 5 {
			t.Fatalf("aio write = %d,%v", n, err)
		}
		if n, err := rop.Wait(); err != nil || n != 5 || string(rbuf) != "hello" {
			t.Fatalf("aio read = %d,%v,%q", n, err, rbuf)
		}
		if !rop.Done() || !wop.Done() {
			t.Fatal("ops not done after Wait")
		}
		st.Close()
	})
}

func TestMadAPIPackingOverCircuit(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.teardown()
		open := func(self int) *circuit.Circuit {
			c, err := circuit.Open(g.arb, "mad", g.nodes, self)
			if err != nil {
				t.Errorf("open: %v", err)
			}
			return c
		}
		cs := make([]*circuit.Circuit, 2)
		wg := vtime.NewWaitGroup(g.sim, "open")
		for i := 0; i < 2; i++ {
			wg.Add(1)
			g.sim.Go("opener", func() { cs[i] = open(i); wg.Done() })
		}
		_ = wg.Wait()
		m0, m1 := NewMadAPI(cs[0]), NewMadAPI(cs[1])
		g.sim.Go("sender", func() {
			out := m0.BeginPacking(1)
			out.Pack([]byte("ctl"), madeleine.Express)
			out.Pack([]byte("bulk-data"), madeleine.Cheaper)
			if err := out.EndPacking(); err != nil {
				t.Errorf("end packing: %v", err)
			}
		})
		in, err := m1.BeginUnpacking()
		if err != nil {
			t.Fatalf("begin unpacking: %v", err)
		}
		if in.Src != 0 {
			t.Fatalf("src = %d", in.Src)
		}
		ctl, err := in.Unpack(madeleine.Express)
		if err != nil || string(ctl) != "ctl" {
			t.Fatalf("unpack express = %q, %v", ctl, err)
		}
		bulk, err := in.Unpack(madeleine.Cheaper)
		if err != nil || string(bulk) != "bulk-data" {
			t.Fatalf("unpack cheaper = %q, %v", bulk, err)
		}
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestFMActiveMessages(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.teardown()
		cs := make([]*circuit.Circuit, 2)
		wg := vtime.NewWaitGroup(g.sim, "open")
		for i := 0; i < 2; i++ {
			wg.Add(1)
			g.sim.Go("opener", func() {
				c, err := circuit.Open(g.arb, "fm", g.nodes, i)
				if err != nil {
					t.Errorf("open: %v", err)
				}
				cs[i] = c
				wg.Done()
			})
		}
		_ = wg.Wait()
		fm1 := NewFMAPI(cs[1], g.sim)
		got := vtime.NewQueue[string](g.sim, "handler results")
		fm1.Register(7, func(src int, data []byte) {
			got.Push(fmt.Sprintf("h7 from %d: %s", src, data))
		})
		fm0 := NewFMAPI(cs[0], g.sim)
		if err := fm0.Send(1, 7, []byte("ping")); err != nil {
			t.Fatalf("fm send: %v", err)
		}
		v, err := got.Pop()
		if err != nil || v != "h7 from 0: ping" {
			t.Fatalf("handler result = %q, %v", v, err)
		}
		// Unregistered id is dropped silently.
		if err := fm0.Send(1, 99, []byte("lost")); err != nil {
			t.Fatalf("fm send unknown: %v", err)
		}
		for _, c := range cs {
			c.Close()
		}
	})
}
