// Package vlink implements PadicoTM's distributed-oriented abstract
// interface (§4.3.2): dynamic point-to-point byte streams established by
// service name, independent of the underlying hardware.
//
// The mapping is chosen automatically per connection: *straight* over the
// socket stack of the best LAN/WAN device, or *cross-paradigm* — a stream
// emulated over a multiplexed Madeleine port when a SAN reaches both ends.
// This is how CORBA, built on VLink, transparently runs at Myrinet speed in
// the paper's Figure 7.
//
// VLink also carries the paper's security scenario (§2, §6): streams whose
// path crosses a physically insecure link are transparently encrypted,
// while intra-SAN streams skip encryption ("if two components are placed
// inside the same parallel machine, we can assume communications are
// secure").
package vlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/telemetry"
	"padico/internal/vtime"
)

// ErrNoService is returned by Dial when the peer has no such listener.
var ErrNoService = errors.New("vlink: no such service")

// ErrNoResolver is returned by DialService when the linker has no resolver
// configured and none was passed explicitly.
var ErrNoResolver = errors.New("vlink: no resolver configured")

// Resolved is the outcome of a name resolution: the node hosting a service
// and the dialable VLink service name there.
type Resolved struct {
	Node    string
	Service string
}

// Resolver maps an abstract (kind, name) pair — "vlink"/"orb"/"module"
// plus a service name — to its dialable endpoints, preferred first. This
// is the seam of the unified name-resolution layer: the interface lives
// here, where dialing happens, and the gatekeeper implements it on top of
// the grid-wide registry, so a linker connects "by service name,
// independent of the underlying hardware" (§4.3.2) without knowing where
// services run. DialService dials the first candidate; DialName's
// stale-node fallback refuses answers spanning several nodes, because a
// caller that named a node must not be silently connected to a different
// replica of a per-node service.
type Resolver interface {
	ResolveVLink(kind, name string) ([]Resolved, error)
}

// BatchResolver is an optional extension of Resolver for resolvers backed
// by a partitioned directory. With the registry sharded, each name routes
// to its own replica group: resolving N names one by one costs N sequential
// round trips, while a batch-aware resolver splits the set per shard and
// answers it in one pipelined flight per group. Resolutions that fail or
// find no candidates yield an empty slot, not an error — a batch caller
// decides per name what a miss means.
type BatchResolver interface {
	Resolver
	ResolveVLinkBatch(kind string, names []string) ([][]Resolved, error)
}

// SpanResolver is an optional extension of Resolver for resolvers that can
// thread a caller's span context into their resolution flights — a traced
// by-name dial then shows the directory round-trip as its own leg. Plain
// resolvers keep working untraced; callers type-assert, never require.
type SpanResolver interface {
	Resolver
	ResolveVLinkCtx(ctx telemetry.SpanContext, kind, name string) ([]Resolved, error)
}

// ResolveAll resolves several names of one kind through r, batched when the
// resolver supports it and name by name otherwise. The result is aligned
// with names; a name that does not resolve gets an empty slot. Only a
// transport-level failure (the whole directory unreachable) is an error.
func ResolveAll(r Resolver, kind string, names []string) ([][]Resolved, error) {
	return ResolveAllCtx(telemetry.SpanContext{}, r, kind, names)
}

// ResolveAllCtx is ResolveAll under a caller's span, threaded through when
// the resolver supports it (span-aware batch resolution stays per-name:
// batch flights already trace via the resolver's own client spans).
func ResolveAllCtx(ctx telemetry.SpanContext, r Resolver, kind string, names []string) ([][]Resolved, error) {
	if r == nil {
		return nil, ErrNoResolver
	}
	if br, ok := r.(BatchResolver); ok && !ctx.Valid() {
		return br.ResolveVLinkBatch(kind, names)
	}
	resolve := func(name string) ([]Resolved, error) { return r.ResolveVLink(kind, name) }
	if sr, ok := r.(SpanResolver); ok && ctx.Valid() {
		resolve = func(name string) ([]Resolved, error) { return sr.ResolveVLinkCtx(ctx, kind, name) }
	}
	out := make([][]Resolved, len(names))
	for i, name := range names {
		cands, err := resolve(name)
		if err != nil {
			continue // miss: this name's slot stays empty
		}
		out[i] = cands
	}
	return out, nil
}

// Stream is a VLink connection: a byte stream with peer identities.
type Stream = sockets.Conn

// SecurityMode governs encryption of streams.
type SecurityMode int

const (
	// SecureAuto encrypts exactly the streams whose path crosses an
	// insecure link (the paper's proposed optimization).
	SecureAuto SecurityMode = iota
	// SecureAlways encrypts every stream (the coarse-grained CORBA
	// security service behaviour the paper criticizes).
	SecureAlways
	// SecureNever disables encryption (trusted-grid baseline).
	SecureNever
)

func (m SecurityMode) String() string {
	switch m {
	case SecureAuto:
		return "auto"
	case SecureAlways:
		return "always"
	default:
		return "never"
	}
}

// Linker is one process's VLink endpoint factory.
type Linker struct {
	arb  *arbitration.Arbiter
	node *simnet.Node
	Mode SecurityMode
	tel  atomic.Pointer[telemetry.Registry]

	mu       sync.Mutex
	resolver Resolver
	services map[string]*Listener
	portOwn  map[int]string // derived port → owning service (collision check)
	sockLst  []sockets.Listener
	ctl      *arbitration.Port // SAN control port, lazily opened
	ctlDev   *arbitration.Device
	connSeq  int
	closed   bool
}

// NewLinker returns a VLink factory for the given node. Create linkers
// after the node's devices are registered with the arbiter: the SAN control
// port (which answers inbound cross-paradigm connection requests, including
// no-such-service NAKs) is opened eagerly here.
func NewLinker(arb *arbitration.Arbiter, node *simnet.Node) *Linker {
	ln := &Linker{
		arb:      arb,
		node:     node,
		services: make(map[string]*Listener),
		portOwn:  make(map[int]string),
	}
	ln.mu.Lock()
	_ = ln.ensureCtlLocked() // no SAN attached is fine
	ln.mu.Unlock()
	return ln
}

// Node returns the hosting machine.
func (ln *Linker) Node() *simnet.Node { return ln.node }

// Runtime returns the runtime the linker schedules on.
func (ln *Linker) Runtime() vtime.Runtime { return ln.arb.Runtime() }

// SetTelemetry points the linker at a process's telemetry registry: dials
// and by-name resolutions start feeding outcome counters and the resolve
// latency histogram. A nil registry (the default) records nothing.
func (ln *Linker) SetTelemetry(tel *telemetry.Registry) { ln.tel.Store(tel) }

func (ln *Linker) telemetry() *telemetry.Registry { return ln.tel.Load() }

// SetResolver installs the name resolver DialService and the DialName
// fallback consult. Deployments point every linker at a registry-backed
// resolver so by-name dialing works grid-wide.
func (ln *Linker) SetResolver(r Resolver) {
	ln.mu.Lock()
	ln.resolver = r
	ln.mu.Unlock()
}

// Resolver returns the installed name resolver, if any.
func (ln *Linker) Resolver() Resolver {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.resolver
}

// CanReach reports whether some arbitrated device attaches both this
// linker's node and the named peer — i.e. a straight or cross-paradigm
// mapping exists. Resolvers use it to prefer endpoints the caller can
// actually dial.
func (ln *Linker) CanReach(nodeName string) bool {
	nd, ok := ln.arb.Net().NodeByName(nodeName)
	if !ok {
		return false
	}
	_, err := ln.arb.Select(ln.node, nd)
	return err == nil
}

// Services returns the names of the services currently listening on this
// linker, sorted — the per-process service table the gatekeeper publishes
// for grid-wide discovery.
func (ln *Linker) Services() []string {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	out := make([]string, 0, len(ln.services))
	for name := range ln.services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Listener accepts VLink streams for one service.
type Listener struct {
	ln      *Linker
	service string
	q       *vtime.Queue[Stream]
}

// Listen registers service on every reachable device: socket listeners on
// each distributed device plus the SAN control port, so dialers may arrive
// over any network.
func (ln *Linker) Listen(service string) (*Listener, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if _, dup := ln.services[service]; dup {
		return nil, fmt.Errorf("vlink: service %q already registered on %s", service, ln.node)
	}
	port := sockets.ServicePort(service)
	if owner, taken := ln.portOwn[port]; taken {
		return nil, fmt.Errorf("vlink: service %q collides with %q on derived port %d of %s; rename one of them",
			service, owner, port, ln.node)
	}
	l := &Listener{ln: ln, service: service,
		q: vtime.NewQueue[Stream](ln.arb.Runtime(), "vlink: accept "+service)}
	for _, dev := range ln.arb.Devices() {
		if dev.Kind == simnet.SAN || !dev.Fabric.Attached(ln.node) {
			continue
		}
		prov, err := dev.Provider(ln.node)
		if err != nil {
			continue
		}
		sl, err := prov.Listen(port)
		if err != nil {
			// The derived port is free on this linker (checked above), so
			// this is a device-level bind failure, not a service collision.
			continue
		}
		ln.sockLst = append(ln.sockLst, sl)
		ln.arb.Runtime().Go("vlink:accept", func() { ln.acceptLoop(sl, dev) })
	}
	if err := ln.ensureCtlLocked(); err != nil && !errors.Is(err, arbitration.ErrNoDevice) {
		return nil, err
	}
	ln.portOwn[port] = service
	ln.services[service] = l
	return l, nil
}

// Accept blocks until a stream arrives for this service.
func (l *Listener) Accept() (Stream, error) {
	s, err := l.q.Pop()
	if err != nil {
		return nil, fmt.Errorf("vlink: accept on closed listener %q", l.service)
	}
	return s, nil
}

// Service returns the listener's service name.
func (l *Listener) Service() string { return l.service }

// Close unregisters the service.
func (l *Listener) Close() error {
	l.ln.mu.Lock()
	delete(l.ln.services, l.service)
	if port := sockets.ServicePort(l.service); l.ln.portOwn[port] == l.service {
		delete(l.ln.portOwn, port)
	}
	l.ln.mu.Unlock()
	l.q.Close()
	return nil
}

// acceptLoop handles straight (socket) arrivals: handshake carries the
// service name, then the raw conn becomes the stream.
func (ln *Linker) acceptLoop(sl sockets.Listener, dev *arbitration.Device) {
	for {
		conn, err := sl.Accept()
		if err != nil {
			return
		}
		var lenb [2]byte
		if err := sockets.ReadFull(conn, lenb[:]); err != nil {
			conn.Close()
			continue
		}
		name := make([]byte, binary.BigEndian.Uint16(lenb[:]))
		if err := sockets.ReadFull(conn, name); err != nil {
			conn.Close()
			continue
		}
		ln.mu.Lock()
		l, ok := ln.services[string(name)]
		ln.mu.Unlock()
		if !ok {
			_, _ = conn.Write([]byte{0}) // NAK
			conn.Close()
			continue
		}
		if _, err := conn.Write([]byte{1}); err != nil { // ACK
			conn.Close()
			continue
		}
		l.q.Push(ln.secureWrap(conn, dev, conn.RemoteAddr()))
	}
}

// Dial connects to service on the destination node, picking the best device
// automatically.
func (ln *Linker) Dial(dst *simnet.Node, service string) (Stream, error) {
	dev, err := ln.arb.Select(ln.node, dst)
	if err != nil {
		return nil, fmt.Errorf("vlink: dial %s/%s: %w", dst, service, err)
	}
	return ln.DialOn(dev, dst, service)
}

// DialName is Dial with the destination given by node name. An unknown
// node name is not fatal when a resolver is installed: the caller may hold
// a stale placement, so the service is transparently re-resolved through
// the registry and dialed where it actually runs now — but only when that
// answer is unambiguous (a single hosting node). A service published from
// several nodes makes the stale name unresolvable: picking a replica
// behind a caller that explicitly named a node would silently connect it
// to the wrong process.
func (ln *Linker) DialName(nodeName, service string) (Stream, error) {
	if nd, ok := ln.arb.Net().NodeByName(nodeName); ok {
		return ln.Dial(nd, service)
	}
	r := ln.Resolver()
	if r == nil {
		return nil, fmt.Errorf("vlink: unknown node %q", nodeName)
	}
	cands, err := r.ResolveVLink(KindVLink, service)
	if err != nil {
		return nil, fmt.Errorf("vlink: unknown node %q and service %q did not resolve: %w", nodeName, service, err)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("vlink: unknown node %q and no candidates for service %q", nodeName, service)
	}
	for _, c := range cands[1:] {
		if c.Node != cands[0].Node {
			return nil, fmt.Errorf("vlink: unknown node %q and service %q runs on several nodes — refusing to pick one", nodeName, service)
		}
	}
	return ln.dialResolved(cands[0], KindVLink, service)
}

// Well-known resolution kinds, matching the registry's entry taxonomy.
const (
	// KindVLink names plain VLink services.
	KindVLink = "vlink"
	// KindORB names per-profile ORB GIOP endpoints.
	KindORB = "orb"
)

// DialService is VLink connection by abstract name: the installed resolver
// maps (kind, name) to a hosting node and service, then the stream is
// established over whatever device the arbitration layer picks — the
// paper's "connection by service name" with discovery underneath instead
// of static wiring.
func (ln *Linker) DialService(kind, name string) (Stream, error) {
	return ln.DialServiceVia(ln.Resolver(), kind, name)
}

// DialServiceVia is DialService with an explicit resolver, for callers
// that hold one (e.g. a registry client) without installing it. When the
// service runs on several nodes, a candidate whose dial fails (its host
// crashed since it was published, or since the resolution was cached) is
// skipped in favour of the next — mid-failover, a by-name dial must not
// stay pinned to a dead replica the registry has not yet expired.
func (ln *Linker) DialServiceVia(r Resolver, kind, name string) (Stream, error) {
	return ln.DialServiceSpan(telemetry.SpanContext{}, r, kind, name)
}

// DialServiceSpan is DialServiceVia under a span: with a valid ctx the
// whole by-name dial becomes a child of the caller's span; without one it
// becomes a locally sampled root — so daemons with sampling enabled record
// their own dials too. The span context threads into span-aware resolvers,
// making the directory round-trip a further leg of the same trace.
func (ln *Linker) DialServiceSpan(ctx telemetry.SpanContext, r Resolver, kind, name string) (Stream, error) {
	if r == nil {
		return nil, ErrNoResolver
	}
	tel := ln.telemetry()
	var sp *telemetry.ActiveSpan
	if ctx.Valid() {
		sp = tel.StartSpanCtx(ctx, "vlink.dial")
	} else {
		sp = tel.StartSpan("vlink.dial")
	}
	sp.Annotate("kind", kind)
	sp.Annotate("name", name)
	defer sp.End()
	resolve := func() ([]Resolved, error) { return r.ResolveVLink(kind, name) }
	if sr, ok := r.(SpanResolver); ok {
		if sc := sp.Context(); sc.Valid() {
			resolve = func() ([]Resolved, error) { return sr.ResolveVLinkCtx(sc, kind, name) }
		}
	}
	start := tel.Now()
	cands, err := resolve()
	tel.Histogram("vlink.resolve").Observe(tel.Since(start))
	if err != nil {
		tel.Counter("vlink.resolve_failures").Inc()
		return nil, fmt.Errorf("vlink: resolving %s %q: %w", kind, name, err)
	}
	if len(cands) == 0 {
		tel.Counter("vlink.resolve_failures").Inc()
		return nil, fmt.Errorf("vlink: resolver returned no candidates for %s %q", kind, name)
	}
	var firstErr error
	for i, c := range cands {
		st, err := ln.dialResolved(c, kind, name)
		if err == nil {
			if i > 0 {
				// A dead candidate was skipped in favour of a live one.
				tel.Counter("vlink.dial_failovers").Inc()
				sp.Annotate("failovers", strconv.Itoa(i))
			}
			sp.Annotate("host", c.Node)
			return st, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	sp.Annotate("error", "all candidates failed")
	return nil, firstErr
}

// dialResolved dials one resolver-produced endpoint.
func (ln *Linker) dialResolved(res Resolved, kind, name string) (Stream, error) {
	nd, ok := ln.arb.Net().NodeByName(res.Node)
	if !ok {
		return nil, fmt.Errorf("vlink: %s %q resolved to unknown node %q", kind, name, res.Node)
	}
	return ln.Dial(nd, res.Service)
}

// DialOn is Dial with an explicit device (ablation benchmarks).
func (ln *Linker) DialOn(dev *arbitration.Device, dst *simnet.Node, service string) (st Stream, err error) {
	tel := ln.telemetry()
	defer func() {
		if err == nil {
			tel.Counter("vlink.dials_ok").Inc()
		} else {
			tel.Counter("vlink.dials_failed").Inc()
		}
	}()
	if dev.Kind == simnet.SAN {
		return ln.dialSAN(dev, dst, service)
	}
	prov, err := dev.Provider(ln.node)
	if err != nil {
		return nil, err
	}
	var conn sockets.Conn
	addr := sockets.JoinAddr(dst.Name, sockets.ServicePort(service))
	for attempt := 0; ; attempt++ {
		conn, err = prov.Dial(addr)
		if err == nil {
			break
		}
		if !errors.Is(err, sockets.ErrRefused) || attempt >= 50 {
			return nil, fmt.Errorf("%w: %s on %s", ErrNoService, service, dst)
		}
		ln.arb.Runtime().Sleep(100 * time.Microsecond)
	}
	var hs [2]byte
	binary.BigEndian.PutUint16(hs[:], uint16(len(service)))
	if _, err := conn.Write(append(hs[:], service...)); err != nil {
		conn.Close()
		return nil, err
	}
	var ack [1]byte
	if err := sockets.ReadFull(conn, ack[:]); err != nil || ack[0] != 1 {
		conn.Close()
		return nil, fmt.Errorf("%w: %s on %s", ErrNoService, service, dst)
	}
	return ln.secureWrap(conn, dev, addr), nil
}

// secureWrap applies the security policy to a straight stream.
func (ln *Linker) secureWrap(conn sockets.Conn, dev *arbitration.Device, peer string) Stream {
	encrypt := false
	switch ln.Mode {
	case SecureAlways:
		encrypt = true
	case SecureAuto:
		// A stream on a distributed device is insecure if any link of
		// its fabric path may be snooped.
		peerName, _, err := sockets.SplitAddr(peer)
		if err == nil {
			for _, nd := range dev.Fabric.Nodes() {
				if nd.Name == peerName {
					if p, err := dev.Fabric.Path(ln.node, nd); err == nil {
						encrypt = p.Insecure()
					}
					break
				}
			}
		} else {
			encrypt = true // unknown path: be safe
		}
	}
	if !encrypt {
		return conn
	}
	return &cryptoStream{Conn: conn, node: ln.node}
}

// cryptoStream charges software-encryption cost on both ends of the wire.
type cryptoStream struct {
	sockets.Conn
	node *simnet.Node
}

func (c *cryptoStream) Write(p []byte) (int, error) {
	c.node.Charge(simnet.EncryptionCost, len(p))
	return c.Conn.Write(p)
}

func (c *cryptoStream) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.node.Charge(simnet.EncryptionCost, n)
	}
	return n, err
}

// Close shuts the linker down: all listeners and the control port.
func (ln *Linker) Close() {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return
	}
	ln.closed = true
	for _, sl := range ln.sockLst {
		sl.Close()
	}
	services := make([]*Listener, 0, len(ln.services))
	for _, l := range ln.services {
		services = append(services, l)
	}
	ctl := ln.ctl
	ln.mu.Unlock()
	for _, l := range services {
		l.Close()
	}
	if ctl != nil {
		ctl.Close()
	}
}

var _ io.ReadWriteCloser = Stream(nil)
