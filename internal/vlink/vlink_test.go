package vlink

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

type grid struct {
	sim     *vtime.Sim
	net     *simnet.Net
	nodes   []*simnet.Node
	arb     *arbitration.Arbiter
	linkers []*Linker
}

func newGrid(n int, withSAN bool) *grid {
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &grid{sim: s, net: net}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	g.arb = arbitration.New(net)
	if withSAN {
		san := net.NewMyrinet2000("myri0", g.nodes)
		if _, err := g.arb.AddSAN(san); err != nil {
			panic(err)
		}
	}
	lan := net.NewEthernet100("eth0", g.nodes)
	if _, err := g.arb.AddSock(lan); err != nil {
		panic(err)
	}
	for _, nd := range g.nodes {
		g.linkers = append(g.linkers, NewLinker(g.arb, nd))
	}
	return g
}

func echoServer(t *testing.T, g *grid, l *Listener) {
	g.sim.Go("echo", func() {
		for {
			st, err := l.Accept()
			if err != nil {
				return
			}
			g.sim.Go("echo-conn", func() {
				defer st.Close()
				buf := make([]byte, 4096)
				for {
					n, err := st.Read(buf)
					if n > 0 {
						if _, werr := st.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			})
		}
	})
}

func roundtrip(t *testing.T, st Stream, msg string) {
	t.Helper()
	if _, err := st.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if err := sockets.ReadFull(st, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestStraightStreamOverLAN(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, err := g.linkers[0].Listen("echo")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		echoServer(t, g, l)
		st, err := g.linkers[1].Dial(g.nodes[0], "echo")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		roundtrip(t, st, "over-ethernet")
		st.Close()
	})
}

func TestCrossParadigmStreamOverSAN(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, err := g.linkers[0].Listen("echo")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		echoServer(t, g, l)
		// Auto-selection must pick the SAN (fastest device).
		st, err := g.linkers[1].Dial(g.nodes[0], "echo")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, ok := st.(*sanStream); !ok {
			t.Fatalf("stream type %T, want *sanStream (cross-paradigm)", st)
		}
		roundtrip(t, st, "over-myrinet")
		st.Close()
	})
}

func TestSANStreamIsFasterThanLAN(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("sink")
		g.sim.Go("sink", func() {
			for {
				st, err := l.Accept()
				if err != nil {
					return
				}
				g.sim.Go("drain", func() {
					_, _ = io.Copy(io.Discard, st)
				})
			}
		})
		lanDev, _ := g.arb.Device("eth0")
		sanDev, _ := g.arb.Device("myri0")
		const mb = 1_000_000
		measure := func(dev *arbitration.Device) time.Duration {
			st, err := g.linkers[1].DialOn(dev, g.nodes[0], "sink")
			if err != nil {
				t.Fatalf("dial on %s: %v", dev.Name, err)
			}
			defer st.Close()
			start := g.sim.Now()
			if _, err := st.Write(make([]byte, mb)); err != nil {
				t.Fatalf("write: %v", err)
			}
			return g.sim.Now().Sub(start)
		}
		sanT := measure(sanDev)
		lanT := measure(lanDev)
		ratio := float64(lanT) / float64(sanT)
		// 12.5 MB/s vs ~240 MB/s: expect roughly 19x.
		if ratio < 10 {
			t.Fatalf("SAN %v vs LAN %v: ratio %.1f, want >10", sanT, lanT, ratio)
		}
	})
}

func TestDialUnknownService(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		if _, err := g.linkers[1].Dial(g.nodes[0], "ghost"); !errors.Is(err, ErrNoService) {
			t.Fatalf("dial ghost = %v, want ErrNoService", err)
		}
	})
}

func TestDialByName(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("svc")
		echoServer(t, g, l)
		st, err := g.linkers[1].DialName("n0", "svc")
		if err != nil {
			t.Fatalf("dial by name: %v", err)
		}
		roundtrip(t, st, "named")
		st.Close()
		if _, err := g.linkers[1].DialName("nope", "svc"); err == nil {
			t.Fatal("dial unknown node succeeded")
		}
	})
}

func TestDuplicateServiceRejected(t *testing.T) {
	g := newGrid(1, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		if _, err := g.linkers[0].Listen("dup"); err != nil {
			t.Fatalf("listen: %v", err)
		}
		if _, err := g.linkers[0].Listen("dup"); err == nil {
			t.Fatal("duplicate Listen succeeded")
		}
	})
}

// TestServicePortCollisionSurfaced: two distinct services hashing to the
// same derived port on one linker are a loud bind-time error naming both
// services, not a silently skipped device; freeing the first makes the
// port available again.
func TestServicePortCollisionSurfaced(t *testing.T) {
	first := "collide:a"
	second := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("collide:b%d", i)
		if sockets.ServicePort(cand) == sockets.ServicePort(first) {
			second = cand
			break
		}
	}
	g := newGrid(1, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		l, err := g.linkers[0].Listen(first)
		if err != nil {
			t.Fatalf("listen %s: %v", first, err)
		}
		_, err = g.linkers[0].Listen(second)
		if err == nil {
			t.Fatalf("colliding services %q and %q both bound port %d",
				first, second, sockets.ServicePort(first))
		}
		for _, want := range []string{first, second} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("collision error %q does not name %q", err, want)
			}
		}
		l.Close()
		if _, err := g.linkers[0].Listen(second); err != nil {
			t.Fatalf("port not released after Close: %v", err)
		}
	})
}

// testResolver is a static vlink.Resolver for DialService tests.
type testResolver map[string][]Resolved

func (r testResolver) ResolveVLink(kind, name string) ([]Resolved, error) {
	res, ok := r[kind+"/"+name]
	if !ok {
		return nil, fmt.Errorf("no %s named %q", kind, name)
	}
	return res, nil
}

// TestDialServiceWithResolver: the linker-level resolution seam, with a
// stub resolver standing in for the registry.
func TestDialServiceWithResolver(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("svc")
		echoServer(t, g, l)

		if _, err := g.linkers[1].DialService("vlink", "svc"); !errors.Is(err, ErrNoResolver) {
			t.Fatalf("DialService without resolver = %v, want ErrNoResolver", err)
		}
		g.linkers[1].SetResolver(testResolver{"vlink/svc": {{Node: "n0", Service: "svc"}}})
		st, err := g.linkers[1].DialService("vlink", "svc")
		if err != nil {
			t.Fatalf("DialService: %v", err)
		}
		roundtrip(t, st, "resolved")
		st.Close()

		// DialName with a node the net never heard of falls back to the
		// resolver transparently when the answer names a single node.
		st, err = g.linkers[1].DialName("decommissioned-host", "svc")
		if err != nil {
			t.Fatalf("DialName fallback: %v", err)
		}
		roundtrip(t, st, "fallback")
		st.Close()

		// An ambiguous answer (several hosting nodes) must NOT be picked
		// from behind a caller that explicitly named a node: connecting a
		// per-node service (like a gatekeeper) to the wrong replica is
		// worse than failing.
		g.linkers[1].SetResolver(testResolver{"vlink/svc": {
			{Node: "n0", Service: "svc"}, {Node: "n1", Service: "svc"}}})
		if _, err := g.linkers[1].DialName("decommissioned-host", "svc"); err == nil {
			t.Fatal("ambiguous fallback picked a replica for an explicitly named node")
		}
		// DialService, where the caller asked for the service rather than
		// a node, does take the preferred candidate.
		st, err = g.linkers[1].DialService("vlink", "svc")
		if err != nil {
			t.Fatalf("DialService with replicas: %v", err)
		}
		st.Close()

		// A resolver answer pointing at a nonexistent node is an error.
		g.linkers[1].SetResolver(testResolver{"vlink/svc": {{Node: "ghost", Service: "svc"}}})
		if _, err := g.linkers[1].DialService("vlink", "svc"); err == nil {
			t.Fatal("resolved to a ghost node and dialed anyway")
		}
	})
}

// TestCanReach: reachability follows the arbitration layer's device
// coverage.
func TestCanReach(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		if !g.linkers[0].CanReach("n1") || !g.linkers[0].CanReach("n0") {
			t.Fatal("attached peers reported unreachable")
		}
		if g.linkers[0].CanReach("elsewhere") {
			t.Fatal("unknown node reported reachable")
		}
	})
}

func TestSANStreamEOFOnClose(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("one")
		accepted := make(chan Stream, 1)
		g.sim.Go("srv", func() {
			st, err := l.Accept()
			if err == nil {
				accepted <- st
				_, _ = st.Write([]byte("bye"))
				st.Close()
			}
		})
		st, err := g.linkers[1].Dial(g.nodes[0], "one")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		buf := make([]byte, 3)
		if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "bye" {
			t.Fatalf("read = %q, %v", buf, err)
		}
		if _, err := st.Read(buf); err != io.EOF {
			t.Fatalf("read after FIN = %v, want EOF", err)
		}
		if _, err := st.Write([]byte("x")); err == nil {
			// Writing to a closed *peer* may succeed (half-close), but
			// after our own Close it must fail.
			st.Close()
			if _, err := st.Write([]byte("x")); err == nil {
				t.Fatal("write after own close succeeded")
			}
		}
		<-accepted
	})
}

func TestSecurityModes(t *testing.T) {
	// On the insecure WAN, auto mode must encrypt (slower); on the secure
	// SAN it must not. Encrypt-always hurts the SAN path measurably.
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	arb := arbitration.New(net)
	if _, err := arb.AddSAN(net.NewMyrinet2000("myri", []*simnet.Node{a, b})); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.AddSock(net.NewWAN("wan", []*simnet.Node{a, b}, 5e6, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s.Run(func() {
		defer arb.Close()
		la, lb := NewLinker(arb, a), NewLinker(arb, b)
		defer la.Close()
		defer lb.Close()
		l, _ := la.Listen("sink")
		s.Go("sink", func() {
			for {
				st, err := l.Accept()
				if err != nil {
					return
				}
				s.Go("drain", func() { _, _ = io.Copy(io.Discard, st) })
			}
		})
		sanDev, _ := arb.Device("myri")
		wanDev, _ := arb.Device("wan")
		const sz = 100_000
		measure := func(dev *arbitration.Device, mode SecurityMode) time.Duration {
			lb.Mode = mode
			st, err := lb.DialOn(dev, a, "sink")
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer st.Close()
			start := s.Now()
			if _, err := st.Write(make([]byte, sz)); err != nil {
				t.Fatalf("write: %v", err)
			}
			return s.Now().Sub(start)
		}
		sanAuto := measure(sanDev, SecureAuto)
		sanAlways := measure(sanDev, SecureAlways)
		if sanAlways <= sanAuto {
			t.Errorf("SAN always-encrypt (%v) not slower than auto (%v)", sanAlways, sanAuto)
		}
		wanAuto := measure(wanDev, SecureAuto)
		wanNever := measure(wanDev, SecureNever)
		if wanAuto <= wanNever {
			t.Errorf("WAN auto (%v) should pay encryption vs never (%v)", wanAuto, wanNever)
		}
	})
}

// batchTestResolver wraps testResolver with a batch hook, recording whether
// the batch path was taken.
type batchTestResolver struct {
	testResolver
	batched bool
}

func (r *batchTestResolver) ResolveVLinkBatch(kind string, names []string) ([][]Resolved, error) {
	r.batched = true
	out := make([][]Resolved, len(names))
	for i, name := range names {
		out[i] = r.testResolver[kind+"/"+name]
	}
	return out, nil
}

// TestResolveAll: the batch-resolution seam. A plain Resolver is driven
// name by name with misses as empty slots; a BatchResolver gets the whole
// set in one call.
func TestResolveAll(t *testing.T) {
	if _, err := ResolveAll(nil, "vlink", []string{"svc"}); !errors.Is(err, ErrNoResolver) {
		t.Fatalf("ResolveAll(nil) = %v, want ErrNoResolver", err)
	}
	table := testResolver{
		"vlink/a": {{Node: "n0", Service: "a"}},
		"vlink/b": {{Node: "n1", Service: "b"}, {Node: "n0", Service: "b"}},
	}
	names := []string{"a", "missing", "b"}
	out, err := ResolveAll(table, "vlink", names)
	if err != nil {
		t.Fatalf("ResolveAll fallback: %v", err)
	}
	if len(out) != 3 || len(out[0]) != 1 || len(out[1]) != 0 || len(out[2]) != 2 {
		t.Fatalf("fallback slots = %v", out)
	}
	if out[0][0].Node != "n0" || out[2][0].Node != "n1" {
		t.Fatalf("fallback candidates misaligned: %v", out)
	}

	br := &batchTestResolver{testResolver: table}
	out2, err := ResolveAll(br, "vlink", names)
	if err != nil || !br.batched {
		t.Fatalf("batch path not taken (err=%v, batched=%v)", err, br.batched)
	}
	if len(out2) != 3 || len(out2[1]) != 0 || out2[0][0] != out[0][0] {
		t.Fatalf("batch slots = %v, want same shape as fallback %v", out2, out)
	}
}
