package vlink

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

type grid struct {
	sim     *vtime.Sim
	net     *simnet.Net
	nodes   []*simnet.Node
	arb     *arbitration.Arbiter
	linkers []*Linker
}

func newGrid(n int, withSAN bool) *grid {
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &grid{sim: s, net: net}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	g.arb = arbitration.New(net)
	if withSAN {
		san := net.NewMyrinet2000("myri0", g.nodes)
		if _, err := g.arb.AddSAN(san); err != nil {
			panic(err)
		}
	}
	lan := net.NewEthernet100("eth0", g.nodes)
	if _, err := g.arb.AddSock(lan); err != nil {
		panic(err)
	}
	for _, nd := range g.nodes {
		g.linkers = append(g.linkers, NewLinker(g.arb, nd))
	}
	return g
}

func echoServer(t *testing.T, g *grid, l *Listener) {
	g.sim.Go("echo", func() {
		for {
			st, err := l.Accept()
			if err != nil {
				return
			}
			g.sim.Go("echo-conn", func() {
				defer st.Close()
				buf := make([]byte, 4096)
				for {
					n, err := st.Read(buf)
					if n > 0 {
						if _, werr := st.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			})
		}
	})
}

func roundtrip(t *testing.T, st Stream, msg string) {
	t.Helper()
	if _, err := st.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if err := sockets.ReadFull(st, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestStraightStreamOverLAN(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, err := g.linkers[0].Listen("echo")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		echoServer(t, g, l)
		st, err := g.linkers[1].Dial(g.nodes[0], "echo")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		roundtrip(t, st, "over-ethernet")
		st.Close()
	})
}

func TestCrossParadigmStreamOverSAN(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, err := g.linkers[0].Listen("echo")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		echoServer(t, g, l)
		// Auto-selection must pick the SAN (fastest device).
		st, err := g.linkers[1].Dial(g.nodes[0], "echo")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, ok := st.(*sanStream); !ok {
			t.Fatalf("stream type %T, want *sanStream (cross-paradigm)", st)
		}
		roundtrip(t, st, "over-myrinet")
		st.Close()
	})
}

func TestSANStreamIsFasterThanLAN(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("sink")
		g.sim.Go("sink", func() {
			for {
				st, err := l.Accept()
				if err != nil {
					return
				}
				g.sim.Go("drain", func() {
					_, _ = io.Copy(io.Discard, st)
				})
			}
		})
		lanDev, _ := g.arb.Device("eth0")
		sanDev, _ := g.arb.Device("myri0")
		const mb = 1_000_000
		measure := func(dev *arbitration.Device) time.Duration {
			st, err := g.linkers[1].DialOn(dev, g.nodes[0], "sink")
			if err != nil {
				t.Fatalf("dial on %s: %v", dev.Name, err)
			}
			defer st.Close()
			start := g.sim.Now()
			if _, err := st.Write(make([]byte, mb)); err != nil {
				t.Fatalf("write: %v", err)
			}
			return g.sim.Now().Sub(start)
		}
		sanT := measure(sanDev)
		lanT := measure(lanDev)
		ratio := float64(lanT) / float64(sanT)
		// 12.5 MB/s vs ~240 MB/s: expect roughly 19x.
		if ratio < 10 {
			t.Fatalf("SAN %v vs LAN %v: ratio %.1f, want >10", sanT, lanT, ratio)
		}
	})
}

func TestDialUnknownService(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		if _, err := g.linkers[1].Dial(g.nodes[0], "ghost"); !errors.Is(err, ErrNoService) {
			t.Fatalf("dial ghost = %v, want ErrNoService", err)
		}
	})
}

func TestDialByName(t *testing.T) {
	g := newGrid(2, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("svc")
		echoServer(t, g, l)
		st, err := g.linkers[1].DialName("n0", "svc")
		if err != nil {
			t.Fatalf("dial by name: %v", err)
		}
		roundtrip(t, st, "named")
		st.Close()
		if _, err := g.linkers[1].DialName("nope", "svc"); err == nil {
			t.Fatal("dial unknown node succeeded")
		}
	})
}

func TestDuplicateServiceRejected(t *testing.T) {
	g := newGrid(1, false)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		if _, err := g.linkers[0].Listen("dup"); err != nil {
			t.Fatalf("listen: %v", err)
		}
		if _, err := g.linkers[0].Listen("dup"); err == nil {
			t.Fatal("duplicate Listen succeeded")
		}
	})
}

func TestSANStreamEOFOnClose(t *testing.T) {
	g := newGrid(2, true)
	g.sim.Run(func() {
		defer g.arb.Close()
		defer g.linkers[0].Close()
		defer g.linkers[1].Close()
		l, _ := g.linkers[0].Listen("one")
		accepted := make(chan Stream, 1)
		g.sim.Go("srv", func() {
			st, err := l.Accept()
			if err == nil {
				accepted <- st
				_, _ = st.Write([]byte("bye"))
				st.Close()
			}
		})
		st, err := g.linkers[1].Dial(g.nodes[0], "one")
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		buf := make([]byte, 3)
		if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "bye" {
			t.Fatalf("read = %q, %v", buf, err)
		}
		if _, err := st.Read(buf); err != io.EOF {
			t.Fatalf("read after FIN = %v, want EOF", err)
		}
		if _, err := st.Write([]byte("x")); err == nil {
			// Writing to a closed *peer* may succeed (half-close), but
			// after our own Close it must fail.
			st.Close()
			if _, err := st.Write([]byte("x")); err == nil {
				t.Fatal("write after own close succeeded")
			}
		}
		<-accepted
	})
}

func TestSecurityModes(t *testing.T) {
	// On the insecure WAN, auto mode must encrypt (slower); on the secure
	// SAN it must not. Encrypt-always hurts the SAN path measurably.
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	arb := arbitration.New(net)
	if _, err := arb.AddSAN(net.NewMyrinet2000("myri", []*simnet.Node{a, b})); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.AddSock(net.NewWAN("wan", []*simnet.Node{a, b}, 5e6, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s.Run(func() {
		defer arb.Close()
		la, lb := NewLinker(arb, a), NewLinker(arb, b)
		defer la.Close()
		defer lb.Close()
		l, _ := la.Listen("sink")
		s.Go("sink", func() {
			for {
				st, err := l.Accept()
				if err != nil {
					return
				}
				s.Go("drain", func() { _, _ = io.Copy(io.Discard, st) })
			}
		})
		sanDev, _ := arb.Device("myri")
		wanDev, _ := arb.Device("wan")
		const sz = 100_000
		measure := func(dev *arbitration.Device, mode SecurityMode) time.Duration {
			lb.Mode = mode
			st, err := lb.DialOn(dev, a, "sink")
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer st.Close()
			start := s.Now()
			if _, err := st.Write(make([]byte, sz)); err != nil {
				t.Fatalf("write: %v", err)
			}
			return s.Now().Sub(start)
		}
		sanAuto := measure(sanDev, SecureAuto)
		sanAlways := measure(sanDev, SecureAlways)
		if sanAlways <= sanAuto {
			t.Errorf("SAN always-encrypt (%v) not slower than auto (%v)", sanAlways, sanAuto)
		}
		wanAuto := measure(wanDev, SecureAuto)
		wanNever := measure(wanDev, SecureNever)
		if wanAuto <= wanNever {
			t.Errorf("WAN auto (%v) should pay encryption vs never (%v)", wanAuto, wanNever)
		}
	})
}
