package vlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
)

// Cross-paradigm mapping: VLink streams emulated over a multiplexed
// Madeleine port, so distributed middleware runs at SAN speed. Wire
// protocol on the shared control tag "vlk:ctl":
//
//	SYN: 'S' | connID (8B) | service         (client → server)
//
// and on the per-connection data tags — the client end owns
// "vlk:c:<connID>:c", the server end "vlk:c:<connID>:s", so a stream can
// connect a node to itself:
//
//	ACK  'A'            (server → client: stream established)
//	NAK  'N'            (server → client: no such service)
//	DATA 'D' | payload
//	FIN  'F'
const (
	sanSYN  = 'S'
	sanACK  = 'A'
	sanNAK  = 'N'
	sanDATA = 'D'
	sanFIN  = 'F'
)

// sanDialTimeout is the SYN→ACK handshake deadline — generous against a
// SAN's microsecond RTTs even under heavy arbitration backlog, while
// keeping a dial to a dead node a bounded error instead of a hang.
const sanDialTimeout = 100 * time.Millisecond

// ensureCtlLocked opens the SAN control port once. Callers hold ln.mu.
func (ln *Linker) ensureCtlLocked() error {
	if ln.ctl != nil {
		return nil
	}
	for _, dev := range ln.arb.Devices() {
		if dev.Kind != simnet.SAN || !dev.Fabric.Attached(ln.node) {
			continue
		}
		port, err := dev.OpenPort(ln.node, "vlk:ctl")
		if err != nil {
			return err
		}
		ln.ctl = port
		ln.ctlDev = dev
		ln.arb.Runtime().Go("vlink:ctl", func() { ln.ctlLoop(port, dev) })
		return nil
	}
	return arbitration.ErrNoDevice
}

// ctlLoop serves inbound SAN connection requests.
func (ln *Linker) ctlLoop(ctl *arbitration.Port, dev *arbitration.Device) {
	for {
		m, err := ctl.Recv()
		if err != nil {
			return
		}
		if len(m.Header) < 9 || m.Header[0] != sanSYN {
			continue
		}
		connID := binary.BigEndian.Uint64(m.Header[1:9])
		service := string(m.Header[9:])
		base := fmt.Sprintf("vlk:c:%d", connID)

		ln.mu.Lock()
		l, ok := ln.services[service]
		ln.mu.Unlock()

		port, perr := dev.OpenPort(ln.node, base+":s")
		if perr != nil {
			continue // stale duplicate SYN
		}
		if !ok {
			_ = port.SendTo(m.Src, base+":c", []byte{sanNAK}, nil)
			port.Close()
			continue
		}
		if err := port.SendTo(m.Src, base+":c", []byte{sanACK}, nil); err != nil {
			port.Close()
			continue
		}
		st := &sanStream{
			port:    port,
			peerTag: base + ":c",
			peer:    m.Src,
			node:    ln.node,
			locl:    fmt.Sprintf("%s:%s:s", ln.node.Name, base),
			rmt:     fmt.Sprintf("rank%d:%s:c", m.Src, base),
		}
		l.q.Push(ln.sanSecure(st))
	}
}

// dialSAN establishes a stream over the SAN's message ports.
func (ln *Linker) dialSAN(dev *arbitration.Device, dst *simnet.Node, service string) (Stream, error) {
	ln.mu.Lock()
	if err := ln.ensureCtlLocked(); err != nil {
		ln.mu.Unlock()
		return nil, err
	}
	ctl := ln.ctl
	ln.mu.Unlock()
	dstRank, err := dev.Rank(dst)
	if err != nil {
		return nil, err
	}
	myRank, err := dev.Rank(ln.node)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 50; attempt++ {
		ln.mu.Lock()
		ln.connSeq++
		connID := uint64(myRank)<<32 | uint64(ln.connSeq)
		ln.mu.Unlock()
		base := fmt.Sprintf("vlk:c:%d", connID)
		port, err := dev.OpenPort(ln.node, base+":c")
		if err != nil {
			return nil, err
		}
		syn := make([]byte, 9+len(service))
		syn[0] = sanSYN
		binary.BigEndian.PutUint64(syn[1:9], connID)
		copy(syn[9:], service)
		if err := ctl.Send(dstRank, syn, nil); err != nil {
			port.Close()
			return nil, err
		}
		// Bound the SYN→ACK handshake: the SAN holds messages for unopened
		// ports, so a dial to a node whose linker is gone (crashed process,
		// killed registry replica) gets no refusal to bounce off, unlike
		// the sockets path — without a deadline it would park forever on a
		// reply that cannot come. The timer callback only closes the
		// handshake port, which wakes the parked Recv with an error.
		timer := ln.arb.Runtime().AfterFunc(sanDialTimeout, func() { port.Close() })
		reply, err := port.Recv()
		if !timer.Stop() && err == nil {
			// The deadline closed the port under a reply arriving at the
			// same instant; the stream is unusable either way.
			err = fmt.Errorf("handshake port closed by deadline")
		}
		if err != nil {
			return nil, fmt.Errorf("vlink: SAN dial %s/%s: no answer within %v (dead peer?): %w",
				dst, service, sanDialTimeout, err)
		}
		if len(reply.Header) == 1 && reply.Header[0] == sanACK {
			st := &sanStream{
				port:    port,
				peerTag: base + ":s",
				peer:    dstRank,
				node:    ln.node,
				locl:    fmt.Sprintf("%s:%s:c", ln.node.Name, base),
				rmt:     fmt.Sprintf("%s:%s:s", dst.Name, base),
			}
			return ln.sanSecure(st), nil
		}
		port.Close()
		// NAK: the service may not be up yet; retry briefly.
		ln.arb.Runtime().Sleep(100 * time.Microsecond)
	}
	return nil, fmt.Errorf("%w: %s on %s (SAN)", ErrNoService, service, dst)
}

// sanSecure applies the security policy: intra-SAN paths are physically
// secure, so SecureAuto leaves them in clear — the paper's optimization.
func (ln *Linker) sanSecure(st *sanStream) Stream {
	if ln.Mode == SecureAlways {
		return &cryptoStream{Conn: st, node: ln.node}
	}
	return st
}

// sanStream presents a message port as a byte stream.
type sanStream struct {
	port    *arbitration.Port
	peerTag string // the peer end's data tag
	peer    int
	node    *simnet.Node
	locl    string
	rmt     string

	mu       sync.Mutex
	leftover []byte
	eof      bool
	closed   bool
}

func (s *sanStream) LocalAddr() string  { return s.locl }
func (s *sanStream) RemoteAddr() string { return s.rmt }

func (s *sanStream) Write(p []byte) (int, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, errors.New("vlink: write on closed SAN stream")
	}
	if len(p) == 0 {
		return 0, nil
	}
	s.node.Charge(simnet.VLinkCost, len(p))
	if err := s.port.SendTo(s.peer, s.peerTag, []byte{sanDATA}, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (s *sanStream) Read(p []byte) (int, error) {
	s.mu.Lock()
	if len(s.leftover) > 0 {
		n := copy(p, s.leftover)
		s.leftover = s.leftover[n:]
		s.mu.Unlock()
		return n, nil
	}
	if s.eof {
		s.mu.Unlock()
		return 0, io.EOF
	}
	s.mu.Unlock()
	for {
		m, err := s.port.Recv()
		if err != nil {
			return 0, io.EOF
		}
		if len(m.Header) == 0 {
			continue
		}
		switch m.Header[0] {
		case sanFIN:
			s.mu.Lock()
			s.eof = true
			s.mu.Unlock()
			return 0, io.EOF
		case sanDATA:
			n := copy(p, m.Payload)
			if n < len(m.Payload) {
				s.mu.Lock()
				s.leftover = append(s.leftover, m.Payload[n:]...)
				s.mu.Unlock()
			}
			return n, nil
		}
	}
}

func (s *sanStream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.port.SendTo(s.peer, s.peerTag, []byte{sanFIN}, nil)
	s.port.Close()
	return nil
}
