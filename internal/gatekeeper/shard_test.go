package gatekeeper

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"padico/internal/orb"
	"padico/internal/telemetry"
)

// nameInShard returns a service name whose hash lands in the given shard.
func nameInShard(t *testing.T, shard, shards int, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if ShardOf(n, shards) == shard {
			return n
		}
	}
	t.Fatalf("no name for shard %d/%d", shard, shards)
	return ""
}

func TestShardOf(t *testing.T) {
	// Unsharded directories route everything to shard 0, whatever the name.
	if ShardOf("anything", 1) != 0 || ShardOf("anything", 0) != 0 {
		t.Fatal("S<=1 must map every name to shard 0")
	}
	// Deterministic, in range, and actually spreading across shards.
	const shards = 8
	hit := map[int]bool{}
	for i := 0; i < 256; i++ {
		n := fmt.Sprintf("svc-%d", i)
		s := ShardOf(n, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q) = %d out of range", n, s)
		}
		if s != ShardOf(n, shards) {
			t.Fatalf("ShardOf(%q) not deterministic", n)
		}
		hit[s] = true
	}
	if len(hit) != shards {
		t.Fatalf("256 names hit only %d/%d shards", len(hit), shards)
	}
}

// TestShardedRegistryRoutesAndStatus: a 4-shard directory split across two
// replicas. Publishes split by name hash and land only on the owning
// replica; named lookups route to the owning group, unnamed lookups fan
// out and merge; per-shard status reports the partition; renew-batch
// extends every shard's lease; withdraw clears all shards.
func TestShardedRegistryRoutesAndStatus(t *testing.T) {
	const shards = 4
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0]) // shards 0, 2
		regB, _ := RegistryOn(procs[1]) // shards 1, 3
		regA.SetShards(shards)
		regA.HostShards(0, 2)
		regB.SetShards(shards)
		regB.HostShards(1, 3)

		groups := [][]string{{"n0"}, {"n1"}, {"n0"}, {"n1"}}
		rc := NewShardedRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()}, groups)
		rc.SetCacheTTL(0)

		names := make([]string, shards)
		entries := make([]Entry, shards)
		for s := range names {
			names[s] = nameInShard(t, s, shards, "route")
			entries[s] = Entry{Node: "n2", Kind: "vlink", Name: names[s], Service: names[s]}
		}
		if err := rc.PublishTTL("n2", entries, time.Minute); err != nil {
			t.Fatal(err)
		}

		// Named lookups route to the owning shard's group.
		for s, name := range names {
			got, err := rc.Lookup("vlink", name)
			if err != nil || len(got) != 1 || got[0].Name != name {
				t.Fatalf("shard %d lookup %q = %v, %v", s, name, got, err)
			}
		}
		// An unnamed lookup fans out to every group and merges all shards.
		all, err := rc.Lookup("vlink", "")
		if err != nil || len(all) != shards {
			t.Fatalf("fan-out lookup = %v, %v (want %d entries)", all, err, shards)
		}

		// Each replica holds exactly its shards' slices — the publish split
		// by hash, it did not broadcast.
		atA, err := rc.LookupAt("n0", "vlink", "")
		if err != nil || len(atA) != 2 {
			t.Fatalf("n0 holds %v, %v (want its 2 shards' entries)", atA, err)
		}
		for _, e := range atA {
			if s := ShardOf(e.Name, shards); s != 0 && s != 2 {
				t.Fatalf("entry %q (shard %d) landed on n0, which hosts 0 and 2", e.Name, s)
			}
		}

		// Status breaks the partition down per shard.
		st, err := rc.StatusOf("n0")
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Shards) != 2 || st.Shards[0].Shard != 0 || st.Shards[1].Shard != 2 {
			t.Fatalf("n0 shard status = %+v", st.Shards)
		}
		for _, sh := range st.Shards {
			if sh.Entries != 1 {
				t.Fatalf("shard %d reports %d entries, want 1", sh.Shard, sh.Entries)
			}
		}

		// One batched renewal extends every shard's lease on both groups.
		if err := rc.RenewLease("n2", time.Minute); err != nil {
			t.Fatalf("renew across shards: %v", err)
		}

		// Withdraw tombstones every shard on every group.
		if err := rc.Withdraw("n2"); err != nil {
			t.Fatal(err)
		}
		if all, err := rc.Lookup("vlink", ""); err != nil || len(all) != 0 {
			t.Fatalf("entries survive withdraw: %v, %v", all, err)
		}
	})
}

// TestShardDigestTransfersOnlyDivergent pins the incremental anti-entropy
// contract with the reg.shard.* counters: after the first full push-pull,
// rounds open with a digest and move only divergent records — a directory
// of settled records costs zero record transfers per round, and one new
// record costs exactly one.
func TestShardDigestTransfersOnlyDivergent(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.UseTelemetry(procs[0].Telemetry())
		regB.UseTelemetry(procs[1].Telemetry())

		// Seed n0 with five settled records before any sync runs.
		rc := clientFor(procs[2], "n0")
		for i := 0; i < 5; i++ {
			node := fmt.Sprintf("m%d", i)
			if err := rc.PublishTTL(node,
				[]Entry{{Node: node, Kind: "vlink", Name: fmt.Sprintf("seed%d", i)}},
				time.Minute); err != nil {
				t.Fatal(err)
			}
		}

		// Only A initiates, so its counters tell the whole story.
		regA.StartSync([]string{"n1"}, syncInterval)
		cnt := func(p int, name string) int64 {
			return procs[p].Telemetry().Snapshot().Counter(name)
		}

		// Round 1 is the full push-pull snapshot.
		g.Sim.Sleep(syncInterval + time.Millisecond)
		if got := cnt(0, "reg.shard.full_rounds"); got != 1 {
			t.Fatalf("full rounds after first sync = %d, want 1", got)
		}

		// Settled directory: digest rounds run, but no records move in
		// either direction.
		g.Sim.Sleep(3 * syncInterval)
		if got := cnt(0, "reg.shard.digest_rounds"); got < 2 {
			t.Fatalf("digest rounds on settled directory = %d, want >= 2", got)
		}
		if s, r := cnt(0, "reg.shard.records_sent"), cnt(0, "reg.shard.records_recv"); s != 0 || r != 0 {
			t.Fatalf("settled digest rounds moved records: sent=%d recv=%d", s, r)
		}
		if got := cnt(1, "reg.shard.records_sent"); got != 0 {
			t.Fatalf("responder sent %d records for settled digests, want 0", got)
		}

		// One divergent record: the next digest round moves exactly it —
		// the five settled records never cross the wire again.
		if err := rc.PublishTTL("m5",
			[]Entry{{Node: "m5", Kind: "vlink", Name: "late"}}, time.Minute); err != nil {
			t.Fatal(err)
		}
		g.Sim.Sleep(syncInterval + time.Millisecond)
		if got := cnt(0, "reg.shard.records_sent"); got != 1 {
			t.Fatalf("divergent digest round sent %d records, want exactly 1", got)
		}
		if got := cnt(1, "reg.shard.records_recv"); got != 1 {
			t.Fatalf("responder received %d pushed records, want exactly 1", got)
		}
		if got := cnt(0, "reg.shard.full_rounds"); got != 1 {
			t.Fatalf("divergence triggered a full round (%d), digest should carry it", got)
		}
		// The record actually arrived.
		rcB := clientFor(procs[2], "n1")
		rcB.SetCacheTTL(0)
		if got, err := rcB.Lookup("vlink", "late"); err != nil || len(got) != 1 {
			t.Fatalf("pushed record not on n1: %v, %v", got, err)
		}
		// The digest-round histogram recorded the rounds.
		if h := procs[0].Telemetry().Snapshot().Hist("reg.shard.digest_round"); h.Count < 3 {
			t.Fatalf("digest-round histogram count = %d, want >= 3", h.Count)
		}
	})
}

// TestShardTombstoneLifecycle: under sharding a withdraw's tombstone
// propagates within the owning shard's replica group only, never leaks a
// record into another shard's group, blocks resurrection through digest
// rounds, and is reaped after TombstoneTTL — all on the deterministic
// virtual clock.
func TestShardTombstoneLifecycle(t *testing.T) {
	g, nodes := newGrid(t, 4, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for _, i := range []int{0, 1, 2} {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		// Shard 0 is replicated on n0+n1; shard 1 lives alone on n2.
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regC, _ := RegistryOn(procs[2])
		for _, r := range []*Registry{regA, regB} {
			r.SetShards(2)
			r.HostShards(0)
		}
		regC.SetShards(2)
		regC.HostShards(1)
		regA.StartShardSync(0, []string{"n1"}, syncInterval)
		regB.StartShardSync(0, []string{"n0"}, syncInterval)

		groups := [][]string{{"n0", "n1"}, {"n2"}}
		rc := NewShardedRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[3].Linker()}, groups)
		rc.SetCacheTTL(0)

		s0 := nameInShard(t, 0, 2, "tomb")
		s1 := nameInShard(t, 1, 2, "tomb")
		if err := rc.PublishTTL("n3", []Entry{
			{Node: "n3", Kind: "vlink", Name: s0},
			{Node: "n3", Kind: "vlink", Name: s1},
		}, time.Minute); err != nil {
			t.Fatal(err)
		}

		// One sync interval replicates shard 0 within its group — and only
		// there: n2 must never see a shard-0 record.
		g.Sim.Sleep(syncInterval + time.Millisecond)
		if got, err := rc.LookupAt("n1", "vlink", s0); err != nil || len(got) != 1 {
			t.Fatalf("shard 0 record not on peer n1: %v, %v", got, err)
		}
		atC, err := rc.LookupAt("n2", "vlink", "")
		if err != nil || len(atC) != 1 || atC[0].Name != s1 {
			t.Fatalf("n2 (shard 1) holds %v, %v — want only %q", atC, err, s1)
		}

		// Withdraw: the tombstone lands on each group's preferred replica
		// and reaches n1 through shard 0's anti-entropy within one round.
		if err := rc.Withdraw("n3"); err != nil {
			t.Fatal(err)
		}
		g.Sim.Sleep(syncInterval + time.Millisecond)
		for _, rep := range []string{"n0", "n1", "n2"} {
			if got, err := rc.LookupAt(rep, "vlink", ""); err != nil || len(got) != 0 {
				t.Fatalf("%s still serves %v after withdraw (err %v)", rep, got, err)
			}
		}

		// Digest rounds keep running while the tombstone lives; it must
		// never resurrect the record it shadows.
		g.Sim.Sleep(4 * syncInterval)
		if got, _ := rc.LookupAt("n1", "vlink", s0); len(got) != 0 {
			t.Fatalf("digest rounds resurrected %v on n1", got)
		}

		// After TombstoneTTL the tombstones fall out of snapshots and
		// digests entirely on every replica.
		g.Sim.Sleep(TombstoneTTL + syncInterval)
		for _, r := range []*Registry{regA, regB} {
			if snap := r.snapshotShard(0); len(snap) != 0 {
				t.Fatalf("tombstone not reaped from snapshot: %+v", snap)
			}
			if dig := r.digestShard(0); len(dig) != 0 {
				t.Fatalf("tombstone still advertised in digest: %v", dig)
			}
		}
		if snap := regC.snapshotShard(1); len(snap) != 0 {
			t.Fatalf("shard 1 tombstone not reaped: %+v", snap)
		}
	})
}

// TestLookupBatchFailsOverDeadReplica: a batched lookup spanning two
// replica groups survives the death of one group's preferred replica —
// that group's flight fails over inside the group while the other group's
// flight is untouched.
func TestLookupBatchFailsOverDeadReplica(t *testing.T) {
	g, nodes := newGrid(t, 4, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for _, i := range []int{0, 1, 2} {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regC, _ := RegistryOn(procs[2])
		for _, r := range []*Registry{regA, regB} {
			r.SetShards(2)
			r.HostShards(0)
		}
		regC.SetShards(2)
		regC.HostShards(1)
		regA.StartShardSync(0, []string{"n1"}, syncInterval)
		regB.StartShardSync(0, []string{"n0"}, syncInterval)

		groups := [][]string{{"n0", "n1"}, {"n2"}}
		rc := NewShardedRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[3].Linker()}, groups)
		rc.SetCacheTTL(0)
		rc.UseTelemetry(procs[3].Telemetry())

		s0 := nameInShard(t, 0, 2, "dead")
		s1 := nameInShard(t, 1, 2, "dead")
		if err := rc.PublishTTL("n3", []Entry{
			{Node: "n3", Kind: "vlink", Name: s0},
			{Node: "n3", Kind: "vlink", Name: s1},
		}, time.Minute); err != nil {
			t.Fatal(err)
		}
		// Let shard 0 replicate to n1, then crash the group's preferred
		// replica.
		g.Sim.Sleep(syncInterval + time.Millisecond)
		procs[0].Shutdown()

		out, err := rc.LookupBatch([]LookupQuery{
			{Kind: "vlink", Name: s0},
			{Kind: "vlink", Name: s1},
		})
		if err != nil {
			t.Fatalf("batch across a dead replica: %v", err)
		}
		if len(out) != 2 || len(out[0]) != 1 || len(out[1]) != 1 {
			t.Fatalf("batch results = %v, want both queries answered", out)
		}
		if out[0][0].Name != s0 || out[1][0].Name != s1 {
			t.Fatalf("batch results misrouted: %v", out)
		}
		if got := procs[3].Telemetry().Snapshot().Counter("regc.failovers"); got == 0 {
			t.Fatal("no failover counted — did the batch really cross the dead replica?")
		}
	})
}

// TestRenewRefusesStaleCopy is the regression test for the renewal
// fingerprint: failing over a renewal onto a replica whose copy of the
// lease has diverged (the last announce never reached it) must NOT extend
// the stale copy — the replica reports the shard missing and the
// publisher's full re-announce repairs it.
func TestRenewRefusesStaleCopy(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		// Deliberately NO sync between the replicas: n1's copy stays
		// whatever lands there directly.

		fresh := []Entry{{Node: "n2", Kind: "vlink", Name: "svc", Service: "fresh"}}
		stale := []Entry{{Node: "n2", Kind: "vlink", Name: "svc", Service: "stale"}}

		// The publisher leases `fresh` through its preferred replica n0;
		// n1 holds a diverged live lease for the same node.
		rc := NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()}, "n0", "n1")
		rc.SetCacheTTL(0)
		if err := rc.PublishTTL("n2", fresh, time.Minute); err != nil {
			t.Fatal(err)
		}
		rcB := clientFor(procs[2], "n1")
		if err := rcB.PublishTTL("n2", stale, time.Minute); err != nil {
			t.Fatal(err)
		}

		// n0 dies; the renewal fails over to n1, whose live-but-diverged
		// copy must be refused, not extended.
		procs[0].Shutdown()
		err := rc.RenewLease("n2", time.Minute)
		if err == nil {
			t.Fatal("renewal extended a stale replica copy")
		}
		if !strings.Contains(err.Error(), "missing in shards") {
			t.Fatalf("renewal failed for the wrong reason: %v", err)
		}

		// The recovery path: a full announce replaces the stale copy, after
		// which renewal through the survivor works.
		if err := rc.PublishTTL("n2", fresh, time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := rc.RenewLease("n2", time.Minute); err != nil {
			t.Fatalf("renew after re-announce: %v", err)
		}
		got, err := rc.Lookup("vlink", "svc")
		if err != nil || len(got) != 1 || got[0].Service != "fresh" {
			t.Fatalf("surviving replica serves %v, %v — want the re-announced copy", got, err)
		}
	})
}

// TestResolveVLinkBatchAcrossShards: batch resolution over a partitioned
// directory. One flight resolves names living in different shards, misses
// come back as empty slots, and resolved names land in the client cache —
// a follow-up one-name resolution is a cache hit, no round trip.
func TestResolveVLinkBatchAcrossShards(t *testing.T) {
	const shards = 4
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.SetShards(shards)
		regA.HostShards(0, 2)
		regB.SetShards(shards)
		regB.HostShards(1, 3)

		groups := [][]string{{"n0"}, {"n1"}, {"n0"}, {"n1"}}
		rc := NewShardedRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()}, groups)
		rc.SetCacheTTL(time.Minute)
		tel := telemetry.New("n2", g.Sim)
		rc.UseTelemetry(tel)

		names := make([]string, shards)
		entries := make([]Entry, shards)
		for s := range names {
			names[s] = nameInShard(t, s, shards, "batchres")
			entries[s] = Entry{Node: "n2", Kind: "vlink", Name: names[s], Service: names[s]}
		}
		if err := rc.PublishTTL("n2", entries, time.Minute); err != nil {
			t.Fatal(err)
		}

		// One batch spanning all four shards plus a name nobody published.
		queryNames := append(append([]string{}, names...), "batchres-nosuch")
		cands, err := rc.ResolveVLinkBatch("vlink", queryNames)
		if err != nil {
			t.Fatalf("ResolveVLinkBatch: %v", err)
		}
		if len(cands) != shards+1 {
			t.Fatalf("batch returned %d slots, want %d", len(cands), shards+1)
		}
		for s, name := range names {
			if len(cands[s]) != 1 || cands[s][0].Service != name {
				t.Fatalf("slot %d (name %q) = %v", s, name, cands[s])
			}
		}
		if len(cands[shards]) != 0 {
			t.Fatalf("unpublished name resolved to %v, want an empty slot", cands[shards])
		}

		// Every published name is now cached: re-resolving one of them must
		// not reach the registry.
		misses := tel.Snapshot().Counter("regc.cache_misses")
		if _, err := rc.ResolveVLink("vlink", names[1]); err != nil {
			t.Fatalf("cached re-resolve: %v", err)
		}
		snap := tel.Snapshot()
		if snap.Counter("regc.cache_misses") != misses {
			t.Fatal("re-resolving a batch-resolved name missed the cache")
		}
		if snap.Counter("regc.cache_hits") == 0 {
			t.Fatal("cache hit counter never moved")
		}

		// A second batch of the same names is answered fully from cache.
		cands2, err := rc.ResolveVLinkBatch("vlink", names)
		if err != nil {
			t.Fatalf("second batch: %v", err)
		}
		if tel.Snapshot().Counter("regc.cache_misses") != misses {
			t.Fatal("warm batch still reached the registry")
		}
		for s := range names {
			if len(cands2[s]) != 1 || cands2[s][0] != cands[s][0] {
				t.Fatalf("warm slot %d = %v, want %v", s, cands2[s], cands[s])
			}
		}
	})
}
