package gatekeeper

import (
	"fmt"
	"sort"
	"sync"

	"padico/internal/orb"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Registry is the grid-wide service registry: each gatekeeper publishes its
// process's services here, and any process resolves a service to a hosting
// node by name — the lookup path that turns VLink's by-name connection into
// real cross-process discovery instead of static wiring.
type Registry struct {
	rt  vtime.Runtime
	lst orb.Acceptor

	mu      sync.Mutex
	entries map[string][]Entry // publishing node → its entries
	closed  bool
}

// StartRegistry binds the registry service on the transport and starts
// answering publish/withdraw/lookup queries.
func StartRegistry(rt vtime.Runtime, tr orb.Transport) (*Registry, error) {
	lst, err := tr.Listen(RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", RegistryService, err)
	}
	r := &Registry{rt: rt, lst: lst, entries: make(map[string][]Entry)}
	rt.Go("registry:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			rt.Go("registry:conn", func() { r.serve(st) })
		}
	})
	return r, nil
}

// Close stops the registry.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	_ = r.lst.Close()
}

func (r *Registry) serve(st orbStream) {
	defer st.Close()
	for {
		req, err := ReadRequest(st)
		if err != nil {
			return
		}
		if err := WriteResponse(st, r.handle(req)); err != nil {
			return
		}
	}
}

func (r *Registry) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegPublish:
		node := req.Node
		if node == "" && len(req.Entries) > 0 {
			node = req.Entries[0].Node
		}
		if node == "" {
			return &Response{Error: "publish without node"}
		}
		r.mu.Lock()
		r.entries[node] = append([]Entry(nil), req.Entries...)
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegWithdraw:
		r.mu.Lock()
		delete(r.entries, req.Node)
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegLookup:
		return &Response{OK: true, Entries: r.Lookup(req.Kind, req.Name)}
	case OpRegList:
		return &Response{OK: true, Entries: r.Lookup("", "")}
	default:
		return &Response{Error: fmt.Sprintf("unknown registry operation %q", req.Op)}
	}
}

// Lookup returns the published entries matching the filters; empty kind or
// name matches everything. Results are ordered by node, kind, name.
func (r *Registry) Lookup(kind, name string) []Entry {
	r.mu.Lock()
	var out []Entry
	for _, es := range r.entries {
		for _, e := range es {
			if (kind == "" || e.Kind == kind) && (name == "" || e.Name == name) {
				out = append(out, e)
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RegistryClient talks to the grid-wide registry from one process.
type RegistryClient struct {
	tr      orb.Transport
	regNode string
}

// NewRegistryClient returns a client dialing the registry hosted on
// regNode through the given transport.
func NewRegistryClient(tr orb.Transport, regNode string) *RegistryClient {
	return &RegistryClient{tr: tr, regNode: regNode}
}

// RegistryNode returns the node hosting the registry.
func (c *RegistryClient) RegistryNode() string { return c.regNode }

func (c *RegistryClient) do(req *Request) (*Response, error) {
	st, err := c.tr.Dial(c.regNode, RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: dialing registry on %s: %w", c.regNode, err)
	}
	defer st.Close()
	if err := WriteRequest(st, req); err != nil {
		return nil, err
	}
	resp, err := ReadResponse(st)
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// Publish replaces the registry's entries for node with the given set.
func (c *RegistryClient) Publish(node string, entries []Entry) error {
	_, err := c.do(&Request{Op: OpRegPublish, Node: node, Entries: entries})
	return err
}

// Withdraw drops every entry published by node.
func (c *RegistryClient) Withdraw(node string) error {
	_, err := c.do(&Request{Op: OpRegWithdraw, Node: node})
	return err
}

// Lookup queries the registry; empty kind or name matches everything.
func (c *RegistryClient) Lookup(kind, name string) ([]Entry, error) {
	resp, err := c.do(&Request{Op: OpRegLookup, Kind: kind, Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Resolve returns the first dialable entry for a published service name.
func (c *RegistryClient) Resolve(kind, name string) (Entry, error) {
	entries, err := c.Lookup(kind, name)
	if err != nil {
		return Entry{}, err
	}
	for _, e := range entries {
		if e.Service != "" {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("gatekeeper: no dialable %s service %q in registry", kind, name)
}

// DialService is VLink connection by registry name: the service is resolved
// to its hosting node through the registry, then dialed over the linker —
// straight or cross-paradigm, whatever the arbitration layer picks.
func DialService(ln *vlink.Linker, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	e, err := rc.Resolve(kind, name)
	if err != nil {
		return nil, err
	}
	return ln.DialName(e.Node, e.Service)
}
