package gatekeeper

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"padico/internal/orb"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Registry is the grid-wide service registry: each gatekeeper publishes its
// process's services here, and any process resolves a service to a hosting
// node by name — the lookup path that turns VLink's by-name connection into
// real cross-process discovery instead of static wiring.
//
// The registry is soft state in the MDS tradition: a publish carries a
// lease TTL and the entries silently fall out of Lookup when the lease
// expires un-renewed, so a crashed process — one that never got to
// withdraw — disappears from discovery on its own.
type Registry struct {
	rt  vtime.Runtime
	lst orb.Acceptor

	mu       sync.Mutex
	entries  map[string]leasedEntries // publishing node → its leased entries
	conns    map[orbStream]struct{}   // open pooled sessions, torn down on Close
	sessions int64                    // client sessions ever accepted
	lookups  int64                    // lookup/list operations served
	closed   bool
}

// leasedEntries is one node's published set under its lease.
type leasedEntries struct {
	entries []Entry
	expires vtime.Time // lease deadline; meaningful only when leased
	leased  bool       // false ⇒ permanent (publish without TTL)
}

// StartRegistry binds the registry service on the transport and starts
// answering publish/withdraw/lookup queries.
func StartRegistry(rt vtime.Runtime, tr orb.Transport) (*Registry, error) {
	lst, err := tr.Listen(RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", RegistryService, err)
	}
	r := &Registry{rt: rt, lst: lst,
		entries: make(map[string]leasedEntries), conns: make(map[orbStream]struct{})}
	rt.Go("registry:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				st.Close()
				continue
			}
			r.sessions++
			r.conns[st] = struct{}{}
			r.mu.Unlock()
			rt.Go("registry:conn", func() { r.serve(st) })
		}
	})
	return r, nil
}

// Close stops the registry: the listener goes away and every pooled client
// session is torn down (clients re-dial transparently if the registry
// comes back).
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := make([]orbStream, 0, len(r.conns))
	for st := range r.conns {
		conns = append(conns, st)
	}
	r.mu.Unlock()
	_ = r.lst.Close()
	for _, st := range conns {
		_ = st.Close()
	}
}

// Sessions reports how many client sessions the registry has accepted —
// with pooled clients this stays at one per client process, however many
// operations flow.
func (r *Registry) Sessions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions
}

// LookupsServed reports how many lookup/list operations the registry has
// answered; the client-side resolution cache keeps this far below the
// number of by-name dials.
func (r *Registry) LookupsServed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups
}

func (r *Registry) serve(st orbStream) {
	defer func() {
		r.mu.Lock()
		delete(r.conns, st)
		r.mu.Unlock()
		st.Close()
	}()
	for {
		req, err := ReadRequest(st)
		if err != nil {
			return
		}
		if err := WriteResponse(st, r.handle(req)); err != nil {
			return
		}
	}
}

func (r *Registry) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegPublish:
		node := req.Node
		if node == "" && len(req.Entries) > 0 {
			node = req.Entries[0].Node
		}
		if node == "" {
			return &Response{Error: "publish without node"}
		}
		le := leasedEntries{entries: append([]Entry(nil), req.Entries...)}
		if req.TTLMillis > 0 {
			le.leased = true
			le.expires = r.rt.Now().Add(time.Duration(req.TTLMillis) * time.Millisecond)
		}
		r.mu.Lock()
		r.entries[node] = le
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegWithdraw:
		r.mu.Lock()
		delete(r.entries, req.Node)
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegLookup:
		return &Response{OK: true, Entries: r.lookup(req.Kind, req.Name, true)}
	case OpRegList:
		return &Response{OK: true, Entries: r.lookup("", "", true)}
	default:
		return &Response{Error: fmt.Sprintf("unknown registry operation %q", req.Op)}
	}
}

// Lookup returns the published, unexpired entries matching the filters;
// empty kind or name matches everything. Results are ordered by node,
// kind, name.
func (r *Registry) Lookup(kind, name string) []Entry {
	return r.lookup(kind, name, false)
}

func (r *Registry) lookup(kind, name string, remote bool) []Entry {
	now := r.rt.Now()
	r.mu.Lock()
	if remote {
		r.lookups++
	}
	var out []Entry
	for node, le := range r.entries {
		if le.leased && now >= le.expires {
			// Expired lease: the publisher died without withdrawing.
			// Reap lazily — correctness needs no background sweeper, and
			// lazy reaping behaves identically under Sim and Wall.
			delete(r.entries, node)
			continue
		}
		for _, e := range le.entries {
			if (kind == "" || e.Kind == kind) && (name == "" || e.Name == name) {
				out = append(out, e)
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RegistryClient talks to the grid-wide registry from one process over a
// single pooled session: the framed stream is dialed once, reused for
// every operation, and re-dialed transparently when it breaks. Resolve
// results are additionally cached for a short TTL, so the hot by-name
// dial path usually skips the registry round-trip entirely.
type RegistryClient struct {
	rt      vtime.Runtime
	tr      orb.Transport
	regNode string

	// sem serializes exchanges on the pooled stream. It is a virtual-time
	// semaphore, not a mutex: an exchange blocks in network I/O, and under
	// Sim a plain mutex held across a parked actor would stall the clock.
	sem *vtime.Semaphore
	st  orbStream // pooled session; nil until the first exchange

	mu       sync.Mutex
	cacheTTL time.Duration
	cache    map[cacheKey]cachedEntry
}

type cacheKey struct{ kind, name string }

// cachedEntry holds the ordered dialable candidates of one resolution.
type cachedEntry struct {
	list    []Entry
	expires vtime.Time
}

// DefaultResolveCacheTTL bounds how long a cached resolution may serve
// dials before the registry is consulted again.
const DefaultResolveCacheTTL = time.Second

// NewRegistryClient returns a pooled client dialing the registry hosted on
// regNode through the given transport, scheduling on rt.
func NewRegistryClient(rt vtime.Runtime, tr orb.Transport, regNode string) *RegistryClient {
	return &RegistryClient{
		rt:       rt,
		tr:       tr,
		regNode:  regNode,
		sem:      vtime.NewSemaphore(rt, "gatekeeper: registry session "+tr.NodeName(), 1),
		cacheTTL: DefaultResolveCacheTTL,
		cache:    make(map[cacheKey]cachedEntry),
	}
}

// RegistryNode returns the node hosting the registry.
func (c *RegistryClient) RegistryNode() string { return c.regNode }

// SetCacheTTL adjusts the resolution-cache lifetime; zero or negative
// disables caching. Existing cached resolutions are dropped.
func (c *RegistryClient) SetCacheTTL(d time.Duration) {
	c.mu.Lock()
	c.cacheTTL = d
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Close tears the pooled session down. A later operation re-dials.
func (c *RegistryClient) Close() {
	if err := c.sem.Acquire(); err != nil {
		return
	}
	defer c.sem.Release()
	if c.st != nil {
		_ = c.st.Close()
		c.st = nil
	}
}

// do performs one request/response exchange on the pooled session,
// re-dialing once if the session broke since the last exchange.
func (c *RegistryClient) do(req *Request) (*Response, error) {
	if err := c.sem.Acquire(); err != nil {
		return nil, err
	}
	defer c.sem.Release()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.st == nil {
			// Check reachability before dialing: an unknown or partitioned
			// registry host must fail fast here, not fall into the
			// transport's resolver fallback — this client may BE that
			// resolver, and resolving through itself would re-enter the
			// session semaphore it is holding.
			if reach, ok := c.tr.(orb.Reachability); ok && !reach.CanReach(c.regNode) {
				return nil, fmt.Errorf("gatekeeper: registry host %s unreachable from %s",
					c.regNode, c.tr.NodeName())
			}
			st, err := c.tr.Dial(c.regNode, RegistryService)
			if err != nil {
				return nil, fmt.Errorf("gatekeeper: dialing registry on %s: %w", c.regNode, err)
			}
			c.st = st
		}
		if err := WriteRequest(c.st, req); err != nil {
			lastErr = err
		} else {
			resp, err := ReadResponse(c.st)
			if err == nil {
				return resp, resp.Err()
			}
			lastErr = err
		}
		// Broken session (registry restarted, stream torn down): drop it
		// and retry once on a fresh dial.
		_ = c.st.Close()
		c.st = nil
	}
	return nil, fmt.Errorf("gatekeeper: registry session to %s: %w", c.regNode, lastErr)
}

// Publish replaces the registry's entries for node with the given set,
// without a lease (the entries stay until withdrawn).
func (c *RegistryClient) Publish(node string, entries []Entry) error {
	return c.PublishTTL(node, entries, 0)
}

// PublishTTL replaces the registry's entries for node under a soft-state
// lease: they expire ttl after the registry accepts them unless
// re-published. Non-positive ttl means no lease.
func (c *RegistryClient) PublishTTL(node string, entries []Entry, ttl time.Duration) error {
	req := &Request{Op: OpRegPublish, Node: node, Entries: entries}
	if ttl > 0 {
		req.TTLMillis = int64(ttl / time.Millisecond)
		if req.TTLMillis <= 0 {
			req.TTLMillis = 1 // sub-millisecond leases still lease
		}
	}
	_, err := c.do(req)
	c.invalidate()
	return err
}

// Withdraw drops every entry published by node.
func (c *RegistryClient) Withdraw(node string) error {
	_, err := c.do(&Request{Op: OpRegWithdraw, Node: node})
	c.invalidate()
	return err
}

// invalidate drops the resolution cache after a mutation through this
// client, so its own writes are immediately visible to its reads.
func (c *RegistryClient) invalidate() {
	c.mu.Lock()
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Lookup queries the registry; empty kind or name matches everything.
// Lookups always hit the registry — only Resolve results are cached.
func (c *RegistryClient) Lookup(kind, name string) ([]Entry, error) {
	resp, err := c.do(&Request{Op: OpRegLookup, Kind: kind, Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Resolve returns the best dialable entry for a published service name:
// among the matches it prefers, deterministically, an entry whose node the
// caller's transport can reach (shares a fabric with), falling back to the
// first dialable entry in the registry's node/kind/name order. The
// candidate list is cached for the client's cache TTL.
func (c *RegistryClient) Resolve(kind, name string) (Entry, error) {
	list, err := c.candidates(kind, name)
	if err != nil {
		return Entry{}, err
	}
	return list[0], nil
}

// candidates returns the dialable entries for (kind, name) in preference
// order — reachable nodes first, registry order within each class — from
// the cache when fresh.
func (c *RegistryClient) candidates(kind, name string) ([]Entry, error) {
	if list, ok := c.cachedList(kind, name); ok {
		return list, nil
	}
	entries, err := c.Lookup(kind, name)
	if err != nil {
		return nil, err
	}
	reach, hasReach := c.tr.(orb.Reachability)
	var preferred, fallback []Entry
	for _, e := range entries {
		if e.Service == "" {
			continue
		}
		if !hasReach || reach.CanReach(e.Node) {
			preferred = append(preferred, e)
		} else {
			// Unreachable candidates stay in the list, after every
			// reachable one: the fallback is deterministic and the dial
			// surfaces the topology error.
			fallback = append(fallback, e)
		}
	}
	list := append(preferred, fallback...)
	if len(list) == 0 {
		return nil, fmt.Errorf("gatekeeper: no dialable %s service %q in registry", kind, name)
	}
	c.storeList(kind, name, list)
	return list, nil
}

func (c *RegistryClient) cachedList(kind, name string) ([]Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ce, ok := c.cache[cacheKey{kind, name}]
	if !ok || c.rt.Now() >= ce.expires {
		return nil, false
	}
	return ce.list, true
}

func (c *RegistryClient) storeList(kind, name string, list []Entry) {
	c.mu.Lock()
	if c.cacheTTL > 0 {
		c.cache[cacheKey{kind, name}] = cachedEntry{list: list, expires: c.rt.Now().Add(c.cacheTTL)}
	}
	c.mu.Unlock()
}

// ResolveVLink implements vlink.Resolver, making the registry client the
// production resolver behind Linker.DialService and the DialName fallback.
func (c *RegistryClient) ResolveVLink(kind, name string) ([]vlink.Resolved, error) {
	list, err := c.candidates(kind, name)
	if err != nil {
		return nil, err
	}
	out := make([]vlink.Resolved, len(list))
	for i, e := range list {
		out[i] = vlink.Resolved{Node: e.Node, Service: e.Service}
	}
	return out, nil
}

var _ vlink.Resolver = (*RegistryClient)(nil)

// DialService is VLink connection by registry name — a thin shim over
// Linker.DialServiceVia for callers holding a client they have not
// installed as the linker's resolver.
func DialService(ln *vlink.Linker, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	return ln.DialServiceVia(rc, kind, name)
}

// DialServiceOn resolves through the registry and dials over an arbitrary
// transport — the wall-clock twin of Linker.DialService, used where no
// simulated linker exists (e.g. real TCP deployments).
func DialServiceOn(tr orb.Transport, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	e, err := rc.Resolve(kind, name)
	if err != nil {
		return nil, err
	}
	return tr.Dial(e.Node, e.Service)
}
