package gatekeeper

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/orb"
	"padico/internal/telemetry"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Registry is one replica of the grid-wide service registry: each
// gatekeeper publishes its process's services to its zone's replica, and
// any process resolves a service to a hosting node by name — the lookup
// path that turns VLink's by-name connection into real cross-process
// discovery instead of static wiring.
//
// The registry is soft state in the MDS tradition: a publish carries a
// lease TTL and the entries silently fall out of Lookup when the lease
// expires un-renewed, so a crashed process — one that never got to
// withdraw — disappears from discovery on its own.
//
// Replicas reconcile through periodic push-pull anti-entropy (StartSync):
// each exchange ships both sides' record snapshots and merges them
// last-writer-wins on the record's version stamp, dropping expired records
// on the way. An entry published in one zone therefore becomes resolvable
// everywhere within one sync interval, and killing any single replica
// leaves the directory served by the survivors.
type Registry struct {
	rt  vtime.Runtime
	tr  orb.Transport
	lst orb.Acceptor
	tel atomic.Pointer[telemetry.Registry]

	mu        sync.Mutex
	records   map[string]record      // publishing node → its versioned record
	conns     map[orbStream]struct{} // open pooled sessions, torn down on Close
	peers     map[string]*peerState  // replica peers under anti-entropy
	intervals map[vtime.Waiter]vtime.Timer
	sessions  int64 // client sessions ever accepted
	lookups   int64 // lookup/list operations served
	closed    bool
}

// record is one publishing node's state: its leased entry set, or a
// withdraw tombstone that keeps older sync copies from resurrecting it.
type record struct {
	entries []Entry
	expires vtime.Time // lease/tombstone deadline; meaningful only when leased
	leased  bool       // false ⇒ permanent (publish without TTL)
	stamp   vtime.Time // version: when a replica accepted the publish/withdraw
	deleted bool       // withdraw tombstone (always leased)
}

// peerState tracks anti-entropy with one peer replica.
type peerState struct {
	st     orbStream  // pooled sync session; nil until dialed
	syncs  int64      // successful exchanges
	fails  int64      // failed attempts
	last   vtime.Time // instant of the last successful exchange
	synced bool       // at least one exchange succeeded
}

// DefaultSyncInterval is the anti-entropy period deployments run replicas
// at: cross-zone visibility of a publish is bounded by one interval.
const DefaultSyncInterval = time.Second

// TombstoneTTL is how long a replica remembers a withdraw, so anti-entropy
// from a peer that has not yet seen it cannot resurrect the entries. It
// must outlast a sync interval; reusing the default lease TTL keeps the
// directory's staleness bounds uniform.
const TombstoneTTL = DefaultLeaseTTL

// StartRegistry binds the registry service on the transport and starts
// answering publish/withdraw/lookup/sync queries.
func StartRegistry(rt vtime.Runtime, tr orb.Transport) (*Registry, error) {
	lst, err := tr.Listen(RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", RegistryService, err)
	}
	r := &Registry{rt: rt, tr: tr, lst: lst,
		records: make(map[string]record), conns: make(map[orbStream]struct{}),
		peers: make(map[string]*peerState), intervals: make(map[vtime.Waiter]vtime.Timer)}
	rt.Go("registry:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				st.Close()
				continue
			}
			r.sessions++
			r.conns[st] = struct{}{}
			r.mu.Unlock()
			rt.Go("registry:conn", func() { r.serve(st) })
		}
	})
	return r, nil
}

// UseTelemetry points the replica at a telemetry registry: served
// operations, sync rounds (latency, entries merged, tombstones) and session
// bytes start being recorded. Nil (the default) records nothing.
func (r *Registry) UseTelemetry(tel *telemetry.Registry) { r.tel.Store(tel) }

func (r *Registry) telemetry() *telemetry.Registry { return r.tel.Load() }

// StartSync turns this registry into a replica: a dedicated actor
// reconciles with every peer each interval through push-pull sync
// exchanges. Unreachable or not-yet-started peers are retried next round.
// The loop stops when the registry closes.
func (r *Registry) StartSync(peers []string, every time.Duration) {
	if every <= 0 {
		every = DefaultSyncInterval
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	self := r.tr.NodeName()
	var fresh []string
	for _, p := range peers {
		if p == self || p == "" {
			continue
		}
		if _, dup := r.peers[p]; dup {
			continue
		}
		r.peers[p] = &peerState{}
		fresh = append(fresh, p)
	}
	r.mu.Unlock()
	if len(fresh) == 0 {
		return
	}
	r.rt.Go("registry:sync:"+self, func() {
		for {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			for _, peer := range fresh {
				r.syncWith(peer)
			}
			if !r.waitInterval(every) {
				return
			}
		}
	})
}

// waitInterval parks the sync loop for one anti-entropy period and reports
// whether it should keep running. Close interrupts the wait immediately:
// under the wall clock an uninterruptible sleep would keep the loop's
// goroutine alive up to a full interval after the replica died — a real
// leak for long-lived daemons — and under Sim it would drag the virtual
// clock one needless interval past shutdown.
func (r *Registry) waitInterval(d time.Duration) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	w := r.rt.NewWaiter("registry: sync interval " + r.tr.NodeName())
	t := r.rt.AfterFunc(d, w.Fire)
	r.intervals[w] = t
	r.mu.Unlock()
	_ = w.Wait()
	r.mu.Lock()
	delete(r.intervals, w)
	closed := r.closed
	r.mu.Unlock()
	t.Stop()
	return !closed
}

// SyncNow runs one synchronous anti-entropy round with every peer — the
// clean-shutdown path for a replica host: a withdraw landing on the local
// replica moments before it closes must still reach the survivors, and the
// periodic loop (which only live replicas initiate) would never carry it.
func (r *Registry) SyncNow() {
	r.mu.Lock()
	peers := make([]string, 0, len(r.peers))
	for p := range r.peers {
		peers = append(peers, p)
	}
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	sort.Strings(peers)
	for _, p := range peers {
		r.syncWith(p)
	}
}

// syncWith runs one push-pull exchange with a peer replica on a pooled
// session, re-dialing once when the session broke since the last round.
// Failures only bump the peer's counter: the next round retries.
func (r *Registry) syncWith(peer string) {
	r.mu.Lock()
	ps, ok := r.peers[peer]
	if !ok || r.closed {
		r.mu.Unlock()
		return
	}
	st := ps.st
	r.mu.Unlock()

	tel := r.telemetry()
	if reach, ok := r.tr.(orb.Reachability); ok && !reach.CanReach(peer) {
		tel.Counter("reg.sync_failures").Inc()
		r.noteSync(peer, nil, false)
		return
	}
	start := tel.Now()
	req := &Request{Op: OpRegSync, From: r.tr.NodeName(), Sync: r.snapshot()}
	for attempt := 0; attempt < 2; attempt++ {
		if st == nil {
			var err error
			st, err = r.tr.Dial(peer, RegistryService)
			if err != nil {
				tel.Counter("reg.sync_failures").Inc()
				r.noteSync(peer, nil, false)
				return
			}
		}
		disarm := ArmControlDeadline(st)
		if err := WriteRequest(st, req); err == nil {
			if resp, err := ReadResponse(st); err == nil && resp.OK {
				disarm()
				r.merge(resp.Sync)
				tel.Counter("reg.sync_rounds").Inc()
				tel.Histogram("reg.sync_round").Observe(tel.Since(start))
				r.noteSync(peer, st, true)
				return
			}
		}
		_ = st.Close()
		st = nil
	}
	tel.Counter("reg.sync_failures").Inc()
	r.noteSync(peer, nil, false)
}

// noteSync records the outcome of one exchange and re-pools the session.
// The replaced session is closed outside the lock: closing a SAN-mapped
// stream sends a FIN, which blocks in virtual time, and r.mu must never be
// held across a park (an actor stuck on the mutex would freeze the clock).
func (r *Registry) noteSync(peer string, st orbStream, ok bool) {
	r.mu.Lock()
	var old orbStream
	if ps := r.peers[peer]; ps != nil {
		if ps.st != nil && ps.st != st {
			old = ps.st
		}
		ps.st = st
		if r.closed {
			// Close ran under an in-flight exchange: don't re-pool a
			// session nothing will ever tear down again.
			ps.st = nil
			if st != nil {
				old = st
			}
		}
		if ok {
			ps.syncs++
			ps.last = r.rt.Now()
			ps.synced = true
		} else {
			ps.fails++
		}
	}
	r.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// snapshot captures every unexpired record for a sync exchange, encoding
// leases as remaining TTL (re-anchored on the receiver's clock) and
// versions as stamps. Expired records — leases and tombstones alike — are
// reaped on the way, never shipped.
func (r *Registry) snapshot() []SyncRecord {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SyncRecord, 0, len(r.records))
	for node, rec := range r.records {
		var ttl int64
		if rec.leased {
			remain := rec.expires.Sub(now)
			if remain <= 0 {
				delete(r.records, node)
				continue
			}
			ttl = int64(remain / time.Millisecond)
			if ttl <= 0 {
				ttl = 1
			}
		}
		out = append(out, SyncRecord{
			Node:        node,
			Entries:     append([]Entry(nil), rec.entries...),
			TTLMillis:   ttl,
			StampMicros: int64(rec.stamp.Duration() / time.Microsecond),
			Deleted:     rec.deleted,
		})
	}
	return out
}

// merge folds a peer's snapshot in: freshest stamp wins per publishing
// node, already-expired records are dropped, and ties keep the local copy
// (deterministic under simultaneous renewals).
func (r *Registry) merge(recs []SyncRecord) {
	al, hasAL := r.tr.(orb.AddrLearner)
	var accepted []SyncRecord
	var merged, tombstones int64
	now := r.rt.Now()
	r.mu.Lock()
	for _, in := range recs {
		if in.Node == "" {
			continue
		}
		if in.Deleted && in.TTLMillis <= 0 {
			continue // an unleased tombstone would never be reaped
		}
		if in.TTLMillis < 0 {
			continue // already expired; zero means permanent, not expired
		}
		stamp := vtime.Time(in.StampMicros * int64(time.Microsecond))
		if loc, ok := r.records[in.Node]; ok {
			alive := !loc.leased || now < loc.expires
			if alive && stamp <= loc.stamp {
				continue
			}
		}
		rec := record{stamp: stamp, deleted: in.Deleted}
		if in.Deleted {
			rec.leased = true
			rec.expires = now.Add(time.Duration(in.TTLMillis) * time.Millisecond)
		} else {
			rec.entries = append([]Entry(nil), in.Entries...)
			if in.TTLMillis > 0 {
				rec.leased = true
				rec.expires = now.Add(time.Duration(in.TTLMillis) * time.Millisecond)
			}
		}
		r.records[in.Node] = rec
		merged++
		if in.Deleted {
			tombstones++
		}
		if hasAL {
			accepted = append(accepted, in)
		}
	}
	r.mu.Unlock()
	tel := r.telemetry()
	tel.Counter("reg.sync_merged").Add(merged)
	tel.Counter("reg.sync_tombstones").Add(tombstones)
	// On a wall transport, sync records teach the address book — a replica
	// seeded with no peer endpoints starts syncing outbound as soon as the
	// first inbound exchange names its peers' daemons. Only records that
	// WON the merge teach: a stale losing record must not clobber the
	// freshly learned endpoint of a daemon that just moved.
	if hasAL {
		for _, in := range accepted {
			for _, e := range in.Entries {
				if e.Addr != "" {
					al.LearnAddr(e.Node, e.Addr)
				}
			}
		}
	}
}

// Status reports this replica's replication state: live record and entry
// counts plus per-peer sync lag.
func (r *Registry) Status() RegStatus {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegStatus{Node: r.tr.NodeName()}
	for _, rec := range r.records {
		if rec.deleted || (rec.leased && now >= rec.expires) {
			continue
		}
		st.Nodes++
		st.Entries += len(rec.entries)
	}
	peers := make([]string, 0, len(r.peers))
	for p := range r.peers {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		ps := r.peers[p]
		lag := int64(-1)
		if ps.synced {
			lag = int64(now.Sub(ps.last) / time.Millisecond)
		}
		st.Peers = append(st.Peers, PeerSyncStatus{
			Node: p, Syncs: ps.syncs, Fails: ps.fails, LagMillis: lag,
		})
	}
	return st
}

// Close stops the registry: the listener goes away, every pooled client
// session is torn down (clients fail over to a surviving replica), and the
// anti-entropy loop winds down.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := make([]orbStream, 0, len(r.conns))
	for st := range r.conns {
		conns = append(conns, st)
	}
	for _, ps := range r.peers {
		if ps.st != nil {
			conns = append(conns, ps.st)
			ps.st = nil
		}
	}
	waits := make([]vtime.Waiter, 0, len(r.intervals))
	for w, t := range r.intervals {
		t.Stop()
		waits = append(waits, w)
	}
	r.mu.Unlock()
	// Wake sync loops parked on their interval so they exit now, not one
	// interval from now.
	for _, w := range waits {
		w.Fire()
	}
	// Stream closes may block in virtual time (SAN FIN): never under r.mu.
	_ = r.lst.Close()
	for _, st := range conns {
		_ = st.Close()
	}
}

// Sessions reports how many client sessions the registry has accepted —
// with pooled clients this stays at one per client process, however many
// operations flow.
func (r *Registry) Sessions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions
}

// LookupsServed reports how many lookup/list operations the registry has
// answered; the client-side resolution cache keeps this far below the
// number of by-name dials.
func (r *Registry) LookupsServed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups
}

func (r *Registry) serve(st orbStream) {
	tel := r.telemetry()
	// Count protocol bytes without re-keying r.conns: the raw stream stays
	// the session's identity for Close.
	counted := telemetry.CountStream(st,
		tel.Counter("reg.bytes_in"), tel.Counter("reg.bytes_out"))
	defer func() {
		r.mu.Lock()
		delete(r.conns, st)
		r.mu.Unlock()
		st.Close()
	}()
	for {
		req, err := ReadRequest(counted)
		if err != nil {
			return
		}
		tel.Trace(req.TraceID, "reg.recv", "op="+req.Op)
		resp := r.handle(req)
		resp.TraceID = req.TraceID
		if err := WriteResponse(counted, resp); err != nil {
			return
		}
	}
}

func (r *Registry) handle(req *Request) *Response {
	r.telemetry().Counter("reg.ops." + req.Op).Inc()
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegPublish:
		node := req.Node
		if node == "" && len(req.Entries) > 0 {
			node = req.Entries[0].Node
		}
		if node == "" {
			return &Response{Error: "publish without node"}
		}
		now := r.rt.Now()
		rec := record{entries: append([]Entry(nil), req.Entries...), stamp: now}
		if req.TTLMillis > 0 {
			rec.leased = true
			rec.expires = now.Add(time.Duration(req.TTLMillis) * time.Millisecond)
		}
		r.mu.Lock()
		r.records[node] = rec
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegWithdraw:
		// A withdraw leaves a tombstone, not a bare delete: anti-entropy
		// from a replica that has not seen the withdraw yet must not
		// resurrect the entries. The tombstone itself is soft state and
		// falls out after TombstoneTTL.
		now := r.rt.Now()
		r.mu.Lock()
		r.records[req.Node] = record{
			stamp: now, deleted: true, leased: true, expires: now.Add(TombstoneTTL),
		}
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegLookup:
		return &Response{OK: true, Entries: r.lookup(req.Kind, req.Name, true)}
	case OpRegList:
		return &Response{OK: true, Entries: r.lookup("", "", true)}
	case OpRegSync:
		r.merge(req.Sync)
		return &Response{OK: true, Sync: r.snapshot()}
	case OpRegStatus:
		st := r.Status()
		return &Response{OK: true, Status: &st}
	default:
		return &Response{Error: fmt.Sprintf("unknown registry operation %q", req.Op)}
	}
}

// Lookup returns the published, unexpired entries matching the filters;
// empty kind or name matches everything. Results are ordered by node,
// kind, name, and carry the lease time remaining.
func (r *Registry) Lookup(kind, name string) []Entry {
	return r.lookup(kind, name, false)
}

func (r *Registry) lookup(kind, name string, remote bool) []Entry {
	now := r.rt.Now()
	r.mu.Lock()
	if remote {
		r.lookups++
	}
	var out []Entry
	for node, rec := range r.records {
		if rec.leased && now >= rec.expires {
			// Expired lease or tombstone: the publisher died without
			// withdrawing, or the withdraw has been remembered long
			// enough. Reap lazily — correctness needs no background
			// sweeper, and lazy reaping behaves identically under Sim
			// and Wall.
			delete(r.records, node)
			continue
		}
		if rec.deleted {
			continue
		}
		var remain int64
		if rec.leased {
			remain = int64(rec.expires.Sub(now) / time.Millisecond)
			if remain <= 0 {
				remain = 1
			}
		}
		for _, e := range rec.entries {
			if (kind == "" || e.Kind == kind) && (name == "" || e.Name == name) {
				e.TTLMillis = remain
				out = append(out, e)
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RegistryClient talks to the grid-wide registry from one process over a
// single pooled session to one replica of a configured replica list: the
// framed stream is dialed once, reused for every operation, re-dialed
// transparently when it breaks, and failed over to the next reachable
// replica when its host dies or partitions away. Resolve results are
// additionally cached for a short TTL, so the hot by-name dial path
// usually skips the registry round-trip entirely.
type RegistryClient struct {
	rt       vtime.Runtime
	tr       orb.Transport
	replicas []string

	// sem serializes exchanges on the pooled stream. It is a virtual-time
	// semaphore, not a mutex: an exchange blocks in network I/O, and under
	// Sim a plain mutex held across a parked actor would stall the clock.
	sem *vtime.Semaphore
	cur int       // replica the pooled session points at (sticky)
	st  orbStream // pooled session to replicas[cur]; nil until the first exchange

	tel atomic.Pointer[telemetry.Registry]

	mu       sync.Mutex
	cacheTTL time.Duration
	cache    map[cacheKey]cachedEntry
}

type cacheKey struct{ kind, name string }

// cachedEntry holds the ordered dialable candidates of one resolution.
type cachedEntry struct {
	list    []Entry
	expires vtime.Time
}

// DefaultResolveCacheTTL bounds how long a cached resolution may serve
// dials before the registry is consulted again.
const DefaultResolveCacheTTL = time.Second

// NewRegistryClient returns a pooled client dialing the registry replicas
// hosted on the given nodes through the given transport, scheduling on rt.
// The list is a preference order: operations stick to the first replica
// that answers (deployments put the caller's zone-local replica first) and
// fail over down the list when it dies or partitions away.
func NewRegistryClient(rt vtime.Runtime, tr orb.Transport, replicas ...string) *RegistryClient {
	return &RegistryClient{
		rt:       rt,
		tr:       tr,
		replicas: append([]string(nil), replicas...),
		sem:      vtime.NewSemaphore(rt, "gatekeeper: registry session "+tr.NodeName(), 1),
		cacheTTL: DefaultResolveCacheTTL,
		cache:    make(map[cacheKey]cachedEntry),
	}
}

// UseTelemetry points the client at a telemetry registry: resolution-cache
// hits/misses and replica failovers start being counted. Nil (the default)
// records nothing.
func (c *RegistryClient) UseTelemetry(tel *telemetry.Registry) { c.tel.Store(tel) }

func (c *RegistryClient) telemetry() *telemetry.Registry { return c.tel.Load() }

// Replicas returns the configured replica list in preference order.
func (c *RegistryClient) Replicas() []string {
	return append([]string(nil), c.replicas...)
}

// RegistryNode returns the replica the pooled session currently prefers.
func (c *RegistryClient) RegistryNode() string {
	if len(c.replicas) == 0 {
		return ""
	}
	if err := c.sem.Acquire(); err != nil {
		return ""
	}
	defer c.sem.Release()
	return c.replicas[c.cur]
}

// SetCacheTTL adjusts the resolution-cache lifetime; zero or negative
// disables caching. Existing cached resolutions are dropped.
func (c *RegistryClient) SetCacheTTL(d time.Duration) {
	c.mu.Lock()
	c.cacheTTL = d
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Close tears the pooled session down. A later operation re-dials.
func (c *RegistryClient) Close() {
	if err := c.sem.Acquire(); err != nil {
		return
	}
	defer c.sem.Release()
	if c.st != nil {
		_ = c.st.Close()
		c.st = nil
	}
}

// do performs one request/response exchange: on the pooled session when it
// is healthy, re-dialing once when it broke since the last exchange, and
// failing over down the replica list when the current replica's host is
// dead or unreachable. A replica that answers — even with an application
// error — ends the scan: refusals are answers, not failures.
func (c *RegistryClient) do(req *Request) (*Response, error) {
	resps, err := c.doAll([]*Request{req})
	if err != nil {
		return nil, err
	}
	return resps[0], resps[0].Err()
}

// doAll performs a batch of exchanges as one pipelined flight on the
// pooled session (see do for session and failover semantics — the batch
// fails over and retries as a unit, which is safe for the registry's
// idempotent, last-writer-wins operations).
func (c *RegistryClient) doAll(reqs []*Request) ([]*Response, error) {
	if err := c.sem.Acquire(); err != nil {
		return nil, err
	}
	defer c.sem.Release()
	if len(c.replicas) == 0 {
		return nil, fmt.Errorf("gatekeeper: no registry replicas configured on %s", c.tr.NodeName())
	}
	reach, hasReach := c.tr.(orb.Reachability)
	var errs []error
	tryOrder := make([]int, 0, len(c.replicas))
	tryOrder = append(tryOrder, c.cur)
	for i := range c.replicas {
		if i != c.cur {
			tryOrder = append(tryOrder, i)
		}
	}
	for pos, i := range tryOrder {
		node := c.replicas[i]
		// Check reachability before dialing: an unknown or partitioned
		// replica host must be skipped here, not fall into the transport's
		// resolver fallback — this client may BE that resolver, and
		// resolving through itself would re-enter the session semaphore it
		// is holding.
		if hasReach && !reach.CanReach(node) {
			errs = append(errs, fmt.Errorf("replica %s unreachable from %s", node, c.tr.NodeName()))
			continue
		}
		resps, err := c.exchangeAll(i, reqs)
		if err == nil {
			if pos > 0 {
				// The sticky replica was unusable and a later one answered.
				c.telemetry().Counter("regc.failovers").Inc()
			}
			return resps, nil
		}
		errs = append(errs, fmt.Errorf("replica %s: %w", node, err))
	}
	return nil, fmt.Errorf("gatekeeper: no usable registry replica from %s: %w",
		c.tr.NodeName(), errors.Join(errs...))
}

// exchangeAll runs a batch of request/responses on replica i — all writes,
// then all reads, so the batch costs one round-trip — re-dialing once if
// the pooled session broke since the last exchange (registry restarted,
// stream torn down). On success the client stays pinned to i.
func (c *RegistryClient) exchangeAll(i int, reqs []*Request) ([]*Response, error) {
	if i != c.cur && c.st != nil {
		_ = c.st.Close()
		c.st = nil
	}
	c.cur = i
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.st == nil {
			st, err := c.tr.Dial(c.replicas[i], RegistryService)
			if err != nil {
				return nil, err
			}
			c.st = st
		}
		disarm := ArmControlDeadline(c.st)
		resps, err := Pipeline(c.st, reqs)
		if err == nil {
			disarm()
			return resps, nil
		}
		lastErr = err
		// Broken session: drop it and retry once on a fresh dial. The whole
		// batch replays — at-least-once, like the single-exchange retry
		// before it, and safe against the registry's idempotent ops.
		_ = c.st.Close()
		c.st = nil
	}
	return nil, lastErr
}

// exchangeWith is a one-shot exchange pinned to a specific replica,
// outside the pooled session — the operator path behind per-replica
// status and lookup, where failover would defeat the point.
func (c *RegistryClient) exchangeWith(node string, req *Request) (*Response, error) {
	if reach, ok := c.tr.(orb.Reachability); ok && !reach.CanReach(node) {
		return nil, fmt.Errorf("gatekeeper: replica %s unreachable from %s", node, c.tr.NodeName())
	}
	st, err := c.tr.Dial(node, RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: dialing replica %s: %w", node, err)
	}
	defer st.Close()
	defer ArmControlDeadline(st)()
	if err := WriteRequest(st, req); err != nil {
		return nil, fmt.Errorf("gatekeeper: to replica %s: %w", node, err)
	}
	resp, err := ReadResponse(st)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: from replica %s: %w", node, err)
	}
	return resp, resp.Err()
}

// StatusOf fetches one replica's replication status (live entry counts,
// per-peer sync lag). It never fails over: the named replica answers or
// the error says why.
func (c *RegistryClient) StatusOf(node string) (*RegStatus, error) {
	resp, err := c.exchangeWith(node, &Request{Op: OpRegStatus})
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("gatekeeper: replica %s returned no status", node)
	}
	return resp.Status, nil
}

// LookupAt queries one specific replica's view, without failover — the
// operator path for comparing replicas' replication state.
func (c *RegistryClient) LookupAt(node, kind, name string) ([]Entry, error) {
	resp, err := c.exchangeWith(node, &Request{Op: OpRegLookup, Kind: kind, Name: name})
	if err != nil {
		return nil, err
	}
	c.learnAddrs(resp.Entries)
	return resp.Entries, nil
}

// learnAddrs feeds endpoint advertisements carried by registry entries into
// the transport's address book, when it keeps one (wall transports). This
// is how an attached controller — or any daemon — becomes able to dial
// nodes it has never been configured with: the registry itself is the
// address distribution channel.
func (c *RegistryClient) learnAddrs(entries []Entry) {
	al, ok := c.tr.(orb.AddrLearner)
	if !ok {
		return
	}
	for _, e := range entries {
		if e.Addr != "" {
			al.LearnAddr(e.Node, e.Addr)
		}
	}
}

// Publish replaces the registry's entries for node with the given set,
// without a lease (the entries stay until withdrawn).
func (c *RegistryClient) Publish(node string, entries []Entry) error {
	return c.PublishTTL(node, entries, 0)
}

// PublishTTL replaces the registry's entries for node under a soft-state
// lease: they expire ttl after the registry accepts them unless
// re-published. Non-positive ttl means no lease. The publish lands on the
// preferred replica and reaches the others within one sync interval.
func (c *RegistryClient) PublishTTL(node string, entries []Entry, ttl time.Duration) error {
	req := &Request{Op: OpRegPublish, Node: node, Entries: entries}
	if ttl > 0 {
		req.TTLMillis = int64(ttl / time.Millisecond)
		if req.TTLMillis <= 0 {
			req.TTLMillis = 1 // sub-millisecond leases still lease
		}
	}
	_, err := c.do(req)
	c.invalidate()
	return err
}

// Withdraw drops every entry published by node. The tombstone left behind
// propagates to the other replicas within one sync interval.
func (c *RegistryClient) Withdraw(node string) error {
	_, err := c.do(&Request{Op: OpRegWithdraw, Node: node})
	c.invalidate()
	return err
}

// invalidate drops the resolution cache after a mutation through this
// client, so its own writes are immediately visible to its reads.
func (c *RegistryClient) invalidate() {
	c.mu.Lock()
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Lookup queries the registry; empty kind or name matches everything.
// Lookups always hit the registry — only Resolve results are cached.
func (c *RegistryClient) Lookup(kind, name string) ([]Entry, error) {
	resp, err := c.do(&Request{Op: OpRegLookup, Kind: kind, Name: name})
	if err != nil {
		return nil, err
	}
	c.learnAddrs(resp.Entries)
	return resp.Entries, nil
}

// LookupQuery names one lookup in a LookupBatch.
type LookupQuery struct {
	Kind string
	Name string
}

// LookupBatch answers several lookups in a single pipelined flight on the
// pooled replica session: all requests are written back-to-back and the
// responses read in order, so the batch costs one round-trip instead of
// one per query. Results are positional — out[i] answers queries[i].
func (c *RegistryClient) LookupBatch(queries []LookupQuery) ([][]Entry, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	reqs := make([]*Request, len(queries))
	for i, q := range queries {
		reqs[i] = &Request{Op: OpRegLookup, Kind: q.Kind, Name: q.Name}
	}
	resps, err := c.doAll(reqs)
	if err != nil {
		return nil, err
	}
	out := make([][]Entry, len(resps))
	for i, resp := range resps {
		if err := resp.Err(); err != nil {
			return nil, fmt.Errorf("lookup %s/%s: %w", queries[i].Kind, queries[i].Name, err)
		}
		c.learnAddrs(resp.Entries)
		out[i] = resp.Entries
	}
	return out, nil
}

// Resolve returns the best dialable entry for a published service name:
// among the matches it prefers, deterministically, an entry whose node the
// caller's transport can reach (shares a fabric with), falling back to the
// first dialable entry in the registry's node/kind/name order. The
// candidate list is cached for the client's cache TTL.
func (c *RegistryClient) Resolve(kind, name string) (Entry, error) {
	list, err := c.candidates(kind, name)
	if err != nil {
		return Entry{}, err
	}
	return list[0], nil
}

// candidates returns the dialable entries for (kind, name) in preference
// order — reachable nodes first, registry order within each class — from
// the cache when fresh.
func (c *RegistryClient) candidates(kind, name string) ([]Entry, error) {
	if list, ok := c.cachedList(kind, name); ok {
		c.telemetry().Counter("regc.cache_hits").Inc()
		return list, nil
	}
	c.telemetry().Counter("regc.cache_misses").Inc()
	entries, err := c.Lookup(kind, name)
	if err != nil {
		return nil, err
	}
	reach, hasReach := c.tr.(orb.Reachability)
	var preferred, fallback []Entry
	for _, e := range entries {
		if e.Service == "" {
			continue
		}
		if !hasReach || reach.CanReach(e.Node) {
			preferred = append(preferred, e)
		} else {
			// Unreachable candidates stay in the list, after every
			// reachable one: the fallback is deterministic and the dial
			// surfaces the topology error.
			fallback = append(fallback, e)
		}
	}
	list := append(preferred, fallback...)
	if len(list) == 0 {
		return nil, fmt.Errorf("gatekeeper: no dialable %s service %q in registry", kind, name)
	}
	c.storeList(kind, name, list)
	return list, nil
}

func (c *RegistryClient) cachedList(kind, name string) ([]Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ce, ok := c.cache[cacheKey{kind, name}]
	if !ok || c.rt.Now() >= ce.expires {
		return nil, false
	}
	return ce.list, true
}

func (c *RegistryClient) storeList(kind, name string, list []Entry) {
	c.mu.Lock()
	if c.cacheTTL > 0 {
		c.cache[cacheKey{kind, name}] = cachedEntry{list: list, expires: c.rt.Now().Add(c.cacheTTL)}
	}
	c.mu.Unlock()
}

// ResolveVLink implements vlink.Resolver, making the registry client the
// production resolver behind Linker.DialService and the DialName fallback.
// Because do() fails over inside the client, by-name dialing keeps working
// across a replica crash without the linker noticing.
func (c *RegistryClient) ResolveVLink(kind, name string) ([]vlink.Resolved, error) {
	list, err := c.candidates(kind, name)
	if err != nil {
		return nil, err
	}
	out := make([]vlink.Resolved, len(list))
	for i, e := range list {
		out[i] = vlink.Resolved{Node: e.Node, Service: e.Service}
	}
	return out, nil
}

var _ vlink.Resolver = (*RegistryClient)(nil)

// DialService is VLink connection by registry name — a thin shim over
// Linker.DialServiceVia for callers holding a client they have not
// installed as the linker's resolver.
func DialService(ln *vlink.Linker, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	return ln.DialServiceVia(rc, kind, name)
}

// DialServiceOn resolves through the registry and dials over an arbitrary
// transport — the wall-clock twin of Linker.DialService, used where no
// simulated linker exists (e.g. real TCP deployments).
func DialServiceOn(tr orb.Transport, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	e, err := rc.Resolve(kind, name)
	if err != nil {
		return nil, err
	}
	return tr.Dial(e.Node, e.Service)
}
