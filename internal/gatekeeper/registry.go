package gatekeeper

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/orb"
	"padico/internal/telemetry"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Registry is one replica of the grid-wide service registry: each
// gatekeeper publishes its process's services to its zone's replica, and
// any process resolves a service to a hosting node by name — the lookup
// path that turns VLink's by-name connection into real cross-process
// discovery instead of static wiring.
//
// The registry is soft state in the MDS tradition: a publish carries a
// lease TTL and the entries silently fall out of Lookup when the lease
// expires un-renewed, so a crashed process — one that never got to
// withdraw — disappears from discovery on its own.
//
// The directory is hash-partitioned: entry names FNV-map into S shards
// (ShardOf), each owned by its own replica group, and one replica hosts
// whichever shards its groups assign it. An unsharded deployment is the
// S=1 special case — every record lives in shard 0 and nothing on the
// wire or in the maps differs from the pre-sharding registry.
//
// Replicas reconcile per shard through periodic anti-entropy (StartSync /
// StartShardSync). The first exchange with a peer — and every exchange
// with a peer too old to answer digests — is a full push-pull snapshot
// merge, last-writer-wins on the record's version stamp. Once a peer has
// synced, rounds go incremental: the initiator sends a version digest
// (publishing node → freshest stamp), the responder answers with only the
// records it holds fresher plus the list it wants back, and the initiator
// pushes those — divergent records cross the wire, converged ones do not.
// A restarted replica starts from an empty peer table and therefore falls
// back to the full snapshot exchange automatically.
type Registry struct {
	rt  vtime.Runtime
	tr  orb.Transport
	lst orb.Acceptor
	tel atomic.Pointer[telemetry.Registry]

	mu        sync.Mutex
	nshards   int                    // grid-wide shard count (1 = unsharded)
	shards    map[int]*shardState    // hosted shards, by shard id
	conns     map[orbStream]struct{} // open pooled sessions, torn down on Close
	intervals map[vtime.Waiter]vtime.Timer
	sessions  int64 // client sessions ever accepted
	lookups   int64 // lookup/list operations served
	looping   bool  // the anti-entropy loop actor is running
	closed    bool
}

// shardState is one hosted shard: its slice of the directory plus the
// peers of its replica group.
type shardState struct {
	records map[string]record     // publishing node → its versioned record
	peers   map[string]*peerState // replica peers under anti-entropy
}

// record is one publishing node's state: its leased entry set, or a
// withdraw tombstone that keeps older sync copies from resurrecting it.
type record struct {
	entries []Entry
	expires vtime.Time // lease/tombstone deadline; meaningful only when leased
	leased  bool       // false ⇒ permanent (publish without TTL)
	stamp   vtime.Time // version: when a replica accepted the publish/withdraw
	deleted bool       // withdraw tombstone (always leased)
}

// peerState tracks anti-entropy with one peer replica of one shard group.
type peerState struct {
	st       orbStream  // pooled sync session; nil until dialed
	syncs    int64      // successful exchanges
	fails    int64      // failed attempts
	last     vtime.Time // instant of the last successful exchange
	synced   bool       // at least one exchange succeeded (full sync done)
	noDigest bool       // peer refused reg-digest (old daemon): full rounds only
}

// DefaultSyncInterval is the anti-entropy period deployments run replicas
// at: cross-zone visibility of a publish is bounded by one interval.
const DefaultSyncInterval = time.Second

// TombstoneTTL is how long a replica remembers a withdraw, so anti-entropy
// from a peer that has not yet seen it cannot resurrect the entries. It
// must outlast a sync interval; reusing the default lease TTL keeps the
// directory's staleness bounds uniform.
const TombstoneTTL = DefaultLeaseTTL

// StartRegistry binds the registry service on the transport and starts
// answering publish/withdraw/lookup/sync queries. The fresh replica hosts
// shard 0 of a single-shard directory until ServeShard/SetShards say
// otherwise.
func StartRegistry(rt vtime.Runtime, tr orb.Transport) (*Registry, error) {
	lst, err := tr.Listen(RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", RegistryService, err)
	}
	r := &Registry{rt: rt, tr: tr, lst: lst, nshards: 1,
		shards: map[int]*shardState{0: newShardState()},
		conns:  make(map[orbStream]struct{}), intervals: make(map[vtime.Waiter]vtime.Timer)}
	rt.Go("registry:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				st.Close()
				continue
			}
			r.sessions++
			r.conns[st] = struct{}{}
			r.mu.Unlock()
			rt.Go("registry:conn", func() { r.serve(st) })
		}
	})
	return r, nil
}

func newShardState() *shardState {
	return &shardState{records: make(map[string]record), peers: make(map[string]*peerState)}
}

// UseTelemetry points the replica at a telemetry registry: served
// operations, sync rounds (latency, entries merged, tombstones) and session
// bytes start being recorded. Nil (the default) records nothing.
func (r *Registry) UseTelemetry(tel *telemetry.Registry) { r.tel.Store(tel) }

func (r *Registry) telemetry() *telemetry.Registry { return r.tel.Load() }

// SetShards declares the grid-wide shard count this replica is part of, so
// lookups without an explicit shard can be routed by name server-side and
// status reports know whether to break down per shard.
func (r *Registry) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.nshards = n
	r.mu.Unlock()
}

// HostShards declares exactly which shards this replica hosts, replacing
// the fresh registry's default shard-0 hosting. Shard states already held
// for retained ids survive; dropped shards lose their records — call this
// while configuring the replica, before it serves traffic or syncs.
func (r *Registry) HostShards(ids ...int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[int]*shardState, len(ids))
	for _, id := range ids {
		if sh := r.shards[id]; sh != nil {
			next[id] = sh
		} else {
			next[id] = newShardState()
		}
	}
	r.shards = next
}

// ShardIDs returns the shards this replica hosts, sorted.
func (r *Registry) ShardIDs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shardIDsLocked()
}

func (r *Registry) shardIDsLocked() []int {
	ids := make([]int, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// StartSync turns this registry into a replica of a single-shard
// deployment: shard 0's group is the given peer list, reconciled every
// interval. The pre-sharding entry point, kept as the S=1 path.
func (r *Registry) StartSync(peers []string, every time.Duration) {
	r.StartShardSync(0, peers, every)
}

// StartShardSync registers this replica as a member of one shard's group
// and starts (or joins) the anti-entropy loop: a single dedicated actor
// reconciles every hosted shard with its group's peers each interval.
// Unreachable or not-yet-started peers are retried next round. The loop
// stops when the registry closes.
func (r *Registry) StartShardSync(shard int, peers []string, every time.Duration) {
	if every <= 0 {
		every = DefaultSyncInterval
	}
	self := r.tr.NodeName()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	sh := r.shards[shard]
	if sh == nil {
		sh = newShardState()
		r.shards[shard] = sh
	}
	for _, p := range peers {
		if p == self || p == "" {
			continue
		}
		if _, dup := sh.peers[p]; dup {
			continue
		}
		sh.peers[p] = &peerState{}
	}
	// One loop serves every hosted shard; starting it with no peers at all
	// would park an actor for nothing.
	start := !r.looping
	if start {
		n := 0
		for _, s := range r.shards {
			n += len(s.peers)
		}
		start = n > 0
	}
	if start {
		r.looping = true
	}
	r.mu.Unlock()
	if !start {
		return
	}
	r.rt.Go("registry:sync:"+self, func() {
		for {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			for _, t := range r.syncTargets() {
				r.syncWith(t.shard, t.peer)
			}
			if !r.waitInterval(every) {
				return
			}
		}
	})
}

// syncTarget is one (shard, peer) reconciliation the loop owes per round.
type syncTarget struct {
	shard int
	peer  string
}

// syncTargets lists every hosted shard's peers in deterministic order.
func (r *Registry) syncTargets() []syncTarget {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []syncTarget
	for _, id := range r.shardIDsLocked() {
		peers := make([]string, 0, len(r.shards[id].peers))
		for p := range r.shards[id].peers {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			out = append(out, syncTarget{shard: id, peer: p})
		}
	}
	return out
}

// waitInterval parks the sync loop for one anti-entropy period and reports
// whether it should keep running. Close interrupts the wait immediately:
// under the wall clock an uninterruptible sleep would keep the loop's
// goroutine alive up to a full interval after the replica died — a real
// leak for long-lived daemons — and under Sim it would drag the virtual
// clock one needless interval past shutdown.
func (r *Registry) waitInterval(d time.Duration) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	w := r.rt.NewWaiter("registry: sync interval " + r.tr.NodeName())
	t := r.rt.AfterFunc(d, w.Fire)
	r.intervals[w] = t
	r.mu.Unlock()
	_ = w.Wait()
	r.mu.Lock()
	delete(r.intervals, w)
	closed := r.closed
	r.mu.Unlock()
	t.Stop()
	return !closed
}

// SyncNow runs one synchronous anti-entropy round with every peer of every
// hosted shard — the clean-shutdown path for a replica host: a withdraw
// landing on the local replica moments before it closes must still reach
// the survivors, and the periodic loop (which only live replicas initiate)
// would never carry it.
func (r *Registry) SyncNow() {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	for _, t := range r.syncTargets() {
		r.syncWith(t.shard, t.peer)
	}
}

// syncExchange runs one framed request/response on a sync session under the
// control deadline.
func syncExchange(st orbStream, req *Request) (*Response, error) {
	defer ArmControlDeadline(st)()
	if err := WriteRequest(st, req); err != nil {
		return nil, err
	}
	return ReadResponse(st)
}

// syncWith runs one anti-entropy exchange for one shard with a peer on a
// pooled session, re-dialing once when the session broke since the last
// round. The first successful exchange with a peer is a full push-pull
// snapshot; after that, rounds open with a version digest and ship only
// divergent records. A peer that refuses digests (an old daemon) is
// remembered and gets full rounds forever. Failures only bump the peer's
// counter: the next round retries.
func (r *Registry) syncWith(shard int, peer string) {
	r.mu.Lock()
	sh := r.shards[shard]
	if sh == nil || r.closed {
		r.mu.Unlock()
		return
	}
	ps := sh.peers[peer]
	if ps == nil {
		r.mu.Unlock()
		return
	}
	st := ps.st
	full := !ps.synced || ps.noDigest
	r.mu.Unlock()

	tel := r.telemetry()
	if reach, ok := r.tr.(orb.Reachability); ok && !reach.CanReach(peer) {
		tel.Counter("reg.sync_failures").Inc()
		r.noteSync(shard, peer, nil, false)
		return
	}
	start := tel.Now()
	self := r.tr.NodeName()
	// One anti-entropy round is one trace: every frame of it (the opening
	// sync or digest AND the push that may follow) carries the same ID, so
	// batched rounds are visible to `events`/tracing like any other op. A
	// sampled root span additionally records the round's causal shape.
	sp := tel.StartSpan("reg.sync")
	sp.Annotate("peer", peer)
	sp.Annotate("shard", strconv.Itoa(shard))
	sp.Annotate("full", strconv.FormatBool(full))
	roundTrace, roundSpan := sp.Context().Trace, sp.Context().Span
	if roundTrace == "" {
		roundTrace = tel.NextTraceID()
	}
	defer sp.End()
	stamp := func(q *Request) *Request {
		q.TraceID, q.Span = roundTrace, roundSpan
		return q
	}
	fullReq := func() *Request {
		return stamp(&Request{Op: OpRegSync, From: self, Shard: shard, Sync: r.snapshotShard(shard)})
	}
	var req *Request
	if full {
		req = fullReq()
	} else {
		req = stamp(&Request{Op: OpRegDigest, From: self, Shard: shard, Digest: r.digestShard(shard)})
	}
	for attempt := 0; attempt < 2; attempt++ {
		if st == nil {
			var err error
			st, err = r.tr.Dial(peer, RegistryService)
			if err != nil {
				tel.Counter("reg.sync_failures").Inc()
				r.noteSync(shard, peer, nil, false)
				return
			}
		}
		resp, err := syncExchange(st, req)
		if err == nil && !resp.OK && !full {
			// The peer answered but refused the digest — an old daemon that
			// predates incremental sync. Remember it and replay this round
			// as a full push-pull on the same healthy session.
			r.mu.Lock()
			ps.noDigest = true
			r.mu.Unlock()
			full = true
			req = fullReq()
			resp, err = syncExchange(st, req)
		}
		if err == nil && resp.OK {
			r.mergeShard(shard, resp.Sync)
			if full {
				tel.Counter("reg.shard.full_rounds").Inc()
			} else {
				tel.Counter("reg.shard.records_recv").Add(int64(len(resp.Sync)))
				if len(resp.Want) > 0 {
					// The responder holds older copies of these records:
					// push ours back on the same session to finish the
					// round's reconciliation.
					push := r.snapshotNodes(shard, resp.Want)
					presp, perr := syncExchange(st, stamp(&Request{
						Op: OpRegPush, From: self, Shard: shard, Sync: push}))
					if perr != nil || !presp.OK {
						_ = st.Close()
						st = nil
						tel.Counter("reg.sync_failures").Inc()
						r.noteSync(shard, peer, nil, false)
						return
					}
					tel.Counter("reg.shard.records_sent").Add(int64(len(push)))
				}
				tel.Counter("reg.shard.digest_rounds").Inc()
				tel.Histogram("reg.shard.digest_round").Observe(tel.Since(start))
			}
			tel.Counter("reg.sync_rounds").Inc()
			tel.Histogram("reg.sync_round").Observe(tel.Since(start))
			r.noteSync(shard, peer, st, true)
			return
		}
		_ = st.Close()
		st = nil
	}
	tel.Counter("reg.sync_failures").Inc()
	r.noteSync(shard, peer, nil, false)
}

// noteSync records the outcome of one exchange and re-pools the session.
// The replaced session is closed outside the lock: closing a SAN-mapped
// stream sends a FIN, which blocks in virtual time, and r.mu must never be
// held across a park (an actor stuck on the mutex would freeze the clock).
func (r *Registry) noteSync(shard int, peer string, st orbStream, ok bool) {
	r.mu.Lock()
	var old orbStream
	sh := r.shards[shard]
	if sh != nil {
		if ps := sh.peers[peer]; ps != nil {
			if ps.st != nil && ps.st != st {
				old = ps.st
			}
			ps.st = st
			if r.closed {
				// Close ran under an in-flight exchange: don't re-pool a
				// session nothing will ever tear down again.
				ps.st = nil
				if st != nil {
					old = st
				}
			}
			if ok {
				ps.syncs++
				ps.last = r.rt.Now()
				ps.synced = true
			} else {
				ps.fails++
			}
		}
	}
	r.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// syncRecordOf encodes one record for the wire: leases as remaining TTL
// (re-anchored on the receiver's clock), versions as stamps. Reports false
// for an expired record — reaped, never shipped.
func syncRecordOf(node string, rec record, now vtime.Time) (SyncRecord, bool) {
	var ttl int64
	if rec.leased {
		remain := rec.expires.Sub(now)
		if remain <= 0 {
			return SyncRecord{}, false
		}
		ttl = int64(remain / time.Millisecond)
		if ttl <= 0 {
			ttl = 1
		}
	}
	return SyncRecord{
		Node:        node,
		Entries:     append([]Entry(nil), rec.entries...),
		TTLMillis:   ttl,
		StampMicros: int64(rec.stamp.Duration() / time.Microsecond),
		Deleted:     rec.deleted,
	}, true
}

// snapshot captures shard 0 for a sync exchange — the S=1 compatibility
// accessor behind the original full push-pull protocol.
func (r *Registry) snapshot() []SyncRecord { return r.snapshotShard(0) }

// snapshotShard captures every unexpired record of one shard, reaping
// expired leases and tombstones on the way.
func (r *Registry) snapshotShard(shard int) []SyncRecord {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[shard]
	if sh == nil {
		return nil
	}
	out := make([]SyncRecord, 0, len(sh.records))
	for node, rec := range sh.records {
		sr, live := syncRecordOf(node, rec, now)
		if !live {
			delete(sh.records, node)
			continue
		}
		out = append(out, sr)
	}
	return out
}

// snapshotNodes captures the named records of one shard — the push half of
// a digest round, shipping exactly what the responder asked for.
func (r *Registry) snapshotNodes(shard int, nodes []string) []SyncRecord {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[shard]
	if sh == nil {
		return nil
	}
	out := make([]SyncRecord, 0, len(nodes))
	for _, node := range nodes {
		rec, ok := sh.records[node]
		if !ok {
			continue
		}
		sr, live := syncRecordOf(node, rec, now)
		if !live {
			delete(sh.records, node)
			continue
		}
		out = append(out, sr)
	}
	return out
}

// digestShard captures one shard's version vector: publishing node →
// freshest stamp, expired records reaped. Stamps alone carry the whole
// comparison — a tombstone is just a record whose latest stamp marks it
// deleted, so digests resurrect nothing.
func (r *Registry) digestShard(shard int) map[string]int64 {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[shard]
	if sh == nil {
		return nil
	}
	out := make(map[string]int64, len(sh.records))
	for node, rec := range sh.records {
		if rec.leased && rec.expires.Sub(now) <= 0 {
			delete(sh.records, node)
			continue
		}
		out[node] = int64(rec.stamp.Duration() / time.Microsecond)
	}
	return out
}

// diffDigest answers a peer's digest for one shard: the records this
// replica holds fresher (shipped back), and the publishing nodes the peer
// holds fresher (wanted back).
func (r *Registry) diffDigest(shard int, digest map[string]int64) (fresher []SyncRecord, want []string) {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[shard]
	if sh == nil {
		return nil, nil
	}
	for node, rec := range sh.records {
		sr, live := syncRecordOf(node, rec, now)
		if !live {
			delete(sh.records, node)
			continue
		}
		if peerStamp, ok := digest[node]; !ok || sr.StampMicros > peerStamp {
			fresher = append(fresher, sr)
		}
	}
	for node, peerStamp := range digest {
		rec, ok := sh.records[node]
		if !ok || int64(rec.stamp.Duration()/time.Microsecond) < peerStamp {
			want = append(want, node)
		}
	}
	sort.Slice(fresher, func(i, j int) bool { return fresher[i].Node < fresher[j].Node })
	sort.Strings(want)
	return fresher, want
}

// merge folds a peer's snapshot into shard 0 — the S=1 compatibility
// accessor.
func (r *Registry) merge(recs []SyncRecord) { r.mergeShard(0, recs) }

// mergeShard folds a peer's records into one shard: freshest stamp wins
// per publishing node, already-expired records are dropped, and ties keep
// the local copy (deterministic under simultaneous renewals).
func (r *Registry) mergeShard(shard int, recs []SyncRecord) {
	al, hasAL := r.tr.(orb.AddrLearner)
	var accepted []SyncRecord
	var merged, tombstones int64
	now := r.rt.Now()
	r.mu.Lock()
	sh := r.shards[shard]
	if sh == nil {
		r.mu.Unlock()
		return
	}
	for _, in := range recs {
		if in.Node == "" {
			continue
		}
		if in.Deleted && in.TTLMillis <= 0 {
			continue // an unleased tombstone would never be reaped
		}
		if in.TTLMillis < 0 {
			continue // already expired; zero means permanent, not expired
		}
		stamp := vtime.Time(in.StampMicros * int64(time.Microsecond))
		if loc, ok := sh.records[in.Node]; ok {
			alive := !loc.leased || now < loc.expires
			if alive && stamp <= loc.stamp {
				continue
			}
		}
		rec := record{stamp: stamp, deleted: in.Deleted}
		if in.Deleted {
			rec.leased = true
			rec.expires = now.Add(time.Duration(in.TTLMillis) * time.Millisecond)
		} else {
			rec.entries = append([]Entry(nil), in.Entries...)
			if in.TTLMillis > 0 {
				rec.leased = true
				rec.expires = now.Add(time.Duration(in.TTLMillis) * time.Millisecond)
			}
		}
		sh.records[in.Node] = rec
		merged++
		if in.Deleted {
			tombstones++
		}
		if hasAL {
			accepted = append(accepted, in)
		}
	}
	r.mu.Unlock()
	tel := r.telemetry()
	tel.Counter("reg.sync_merged").Add(merged)
	tel.Counter("reg.sync_tombstones").Add(tombstones)
	// On a wall transport, sync records teach the address book — a replica
	// seeded with no peer endpoints starts syncing outbound as soon as the
	// first inbound exchange names its peers' daemons. Only records that
	// WON the merge teach: a stale losing record must not clobber the
	// freshly learned endpoint of a daemon that just moved.
	if hasAL {
		for _, in := range accepted {
			for _, e := range in.Entries {
				if e.Addr != "" {
					al.LearnAddr(e.Node, e.Addr)
				}
			}
		}
	}
}

// Status reports this replica's replication state: live record and entry
// counts plus per-peer sync lag, aggregated across hosted shards, with a
// per-shard breakdown when the directory is actually sharded.
func (r *Registry) Status() RegStatus {
	now := r.rt.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegStatus{Node: r.tr.NodeName()}
	ids := r.shardIDsLocked()
	sharded := r.nshards > 1 || len(ids) > 1 || (len(ids) == 1 && ids[0] != 0)
	seenNodes := map[string]bool{}
	type peerAgg struct {
		syncs, fails int64
		lag          int64
		synced       bool
	}
	aggPeers := map[string]*peerAgg{}
	for _, id := range ids {
		sh := r.shards[id]
		ss := ShardStatus{Shard: id}
		for node, rec := range sh.records {
			if rec.deleted || (rec.leased && now >= rec.expires) {
				continue
			}
			ss.Nodes++
			ss.Entries += len(rec.entries)
			if !seenNodes[node] {
				seenNodes[node] = true
				st.Nodes++
			}
			st.Entries += len(rec.entries)
		}
		peers := make([]string, 0, len(sh.peers))
		for p := range sh.peers {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			ps := sh.peers[p]
			lag := int64(-1)
			if ps.synced {
				lag = int64(now.Sub(ps.last) / time.Millisecond)
			}
			ss.Peers = append(ss.Peers, PeerSyncStatus{
				Node: p, Syncs: ps.syncs, Fails: ps.fails, LagMillis: lag,
			})
			agg := aggPeers[p]
			if agg == nil {
				agg = &peerAgg{lag: -1}
				aggPeers[p] = agg
			}
			agg.syncs += ps.syncs
			agg.fails += ps.fails
			if ps.synced && (!agg.synced || lag < agg.lag) {
				agg.synced = true
				agg.lag = lag
			}
		}
		if sharded {
			st.Shards = append(st.Shards, ss)
		}
	}
	aggNames := make([]string, 0, len(aggPeers))
	for p := range aggPeers {
		aggNames = append(aggNames, p)
	}
	sort.Strings(aggNames)
	for _, p := range aggNames {
		agg := aggPeers[p]
		st.Peers = append(st.Peers, PeerSyncStatus{
			Node: p, Syncs: agg.syncs, Fails: agg.fails, LagMillis: agg.lag,
		})
	}
	return st
}

// Close stops the registry: the listener goes away, every pooled client
// session is torn down (clients fail over to a surviving replica), and the
// anti-entropy loop winds down.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := make([]orbStream, 0, len(r.conns))
	for st := range r.conns {
		conns = append(conns, st)
	}
	for _, sh := range r.shards {
		for _, ps := range sh.peers {
			if ps.st != nil {
				conns = append(conns, ps.st)
				ps.st = nil
			}
		}
	}
	waits := make([]vtime.Waiter, 0, len(r.intervals))
	for w, t := range r.intervals {
		t.Stop()
		waits = append(waits, w)
	}
	r.mu.Unlock()
	// Wake sync loops parked on their interval so they exit now, not one
	// interval from now.
	for _, w := range waits {
		w.Fire()
	}
	// Stream closes may block in virtual time (SAN FIN): never under r.mu.
	_ = r.lst.Close()
	for _, st := range conns {
		_ = st.Close()
	}
}

// Sessions reports how many client sessions the registry has accepted —
// with pooled clients this stays at one per client process, however many
// operations flow.
func (r *Registry) Sessions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions
}

// LookupsServed reports how many lookup/list operations the registry has
// answered; the client-side resolution cache keeps this far below the
// number of by-name dials.
func (r *Registry) LookupsServed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups
}

func (r *Registry) serve(st orbStream) {
	tel := r.telemetry()
	// Count protocol bytes without re-keying r.conns: the raw stream stays
	// the session's identity for Close.
	counted := telemetry.CountStream(st,
		tel.Counter("reg.bytes_in"), tel.Counter("reg.bytes_out"))
	defer func() {
		r.mu.Lock()
		delete(r.conns, st)
		r.mu.Unlock()
		st.Close()
	}()
	for {
		req, err := ReadRequest(counted)
		if err != nil {
			return
		}
		tel.Trace(req.TraceID, "reg.recv", "op="+req.Op)
		// Traced requests get a replica-side child span — which shard group
		// leg a flight hit, and how long the replica worked on it.
		sp := tel.StartSpanCtx(telemetry.SpanContext{Trace: req.TraceID, Span: req.Span}, "reg."+req.Op)
		sp.Annotate("shard", strconv.Itoa(req.Shard))
		resp := r.handle(req)
		sp.End()
		resp.TraceID = req.TraceID
		if err := WriteResponse(counted, resp); err != nil {
			return
		}
	}
}

// reqShards resolves a request's shard address to hosted shard ids:
// ShardAll means every hosted shard, anything else names exactly one,
// which must be hosted here — a client whose shard map says otherwise is
// talking to the wrong group and must hear so, not get silently empty
// results.
func (r *Registry) reqShards(shard int) ([]int, *Response) {
	if shard == ShardAll {
		return r.ShardIDs(), nil
	}
	r.mu.Lock()
	_, ok := r.shards[shard]
	r.mu.Unlock()
	if !ok {
		return nil, &Response{Error: fmt.Sprintf(
			"replica %s does not host shard %d", r.tr.NodeName(), shard)}
	}
	return []int{shard}, nil
}

func (r *Registry) handle(req *Request) *Response {
	r.telemetry().Counter("reg.ops." + req.Op).Inc()
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegPublish:
		node := req.Node
		if node == "" && len(req.Entries) > 0 {
			node = req.Entries[0].Node
		}
		if node == "" {
			return &Response{Error: "publish without node"}
		}
		if _, errResp := r.reqShards(req.Shard); errResp != nil {
			return errResp
		}
		now := r.rt.Now()
		rec := record{entries: append([]Entry(nil), req.Entries...), stamp: now}
		if req.TTLMillis > 0 {
			rec.leased = true
			rec.expires = now.Add(time.Duration(req.TTLMillis) * time.Millisecond)
		}
		r.mu.Lock()
		r.shards[req.Shard].records[node] = rec
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegAnnounceBatch:
		if req.Node == "" {
			return &Response{Error: "publish without node"}
		}
		now := r.rt.Now()
		r.mu.Lock()
		for _, sp := range req.Batch {
			if r.shards[sp.Shard] == nil {
				r.mu.Unlock()
				return &Response{Error: fmt.Sprintf(
					"replica %s does not host shard %d", r.tr.NodeName(), sp.Shard)}
			}
		}
		for _, sp := range req.Batch {
			rec := record{entries: append([]Entry(nil), sp.Entries...), stamp: now}
			if req.TTLMillis > 0 {
				rec.leased = true
				rec.expires = now.Add(time.Duration(req.TTLMillis) * time.Millisecond)
			}
			r.shards[sp.Shard].records[req.Node] = rec
		}
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegRenewBatch:
		// Extend a publisher's leases in place — entries stay as announced,
		// only the deadline (and the version stamp, so the renewal
		// propagates to peers) moves. A shard with no live leased record
		// for the node is reported Missing: the publisher's full announce
		// re-establishes it.
		if req.Node == "" {
			return &Response{Error: "renew without node"}
		}
		if req.TTLMillis <= 0 {
			return &Response{Error: "renew without ttl"}
		}
		now := r.rt.Now()
		targets := req.Shards
		sums := req.Sums
		if len(sums) != len(targets) {
			sums = nil // unaligned or absent: no content check (old client)
		}
		r.mu.Lock()
		if len(targets) == 0 {
			targets = r.shardIDsLocked()
		}
		var missing []int
		for i, id := range targets {
			sh := r.shards[id]
			if sh == nil {
				missing = append(missing, id)
				continue
			}
			rec, ok := sh.records[req.Node]
			if !ok || rec.deleted || !rec.leased || now >= rec.expires {
				missing = append(missing, id)
				continue
			}
			if sums != nil && EntriesSum(rec.entries) != sums[i] {
				// This replica's copy is not what the publisher leased — it
				// diverged before this replica entered the rotation (failover
				// onto a peer the last announce never reached). Extending the
				// deadline would pin the stale content alive; make the
				// publisher re-announce instead.
				missing = append(missing, id)
				continue
			}
			rec.expires = now.Add(time.Duration(req.TTLMillis) * time.Millisecond)
			rec.stamp = now
			sh.records[req.Node] = rec
		}
		r.mu.Unlock()
		sort.Ints(missing)
		return &Response{OK: true, Missing: missing}
	case OpRegWithdraw:
		// A withdraw leaves a tombstone, not a bare delete: anti-entropy
		// from a replica that has not seen the withdraw yet must not
		// resurrect the entries. The tombstone itself is soft state and
		// falls out after TombstoneTTL. Every hosted shard is tombstoned —
		// the withdrawing node's entries may be spread across all of them.
		now := r.rt.Now()
		r.mu.Lock()
		for _, sh := range r.shards {
			sh.records[req.Node] = record{
				stamp: now, deleted: true, leased: true, expires: now.Add(TombstoneTTL),
			}
		}
		r.mu.Unlock()
		return &Response{OK: true}
	case OpRegLookup:
		ids, errResp := r.reqShards(req.Shard)
		if errResp != nil {
			return errResp
		}
		return &Response{OK: true, Entries: r.lookupIn(ids, req.Kind, req.Name, true)}
	case OpRegList:
		return &Response{OK: true, Entries: r.lookupIn(r.ShardIDs(), "", "", true)}
	case OpRegSync:
		ids, errResp := r.reqShards(req.Shard)
		if errResp != nil {
			return errResp
		}
		r.mergeShard(ids[0], req.Sync)
		return &Response{OK: true, Sync: r.snapshotShard(ids[0])}
	case OpRegDigest:
		ids, errResp := r.reqShards(req.Shard)
		if errResp != nil {
			return errResp
		}
		fresher, want := r.diffDigest(ids[0], req.Digest)
		r.telemetry().Counter("reg.shard.records_sent").Add(int64(len(fresher)))
		return &Response{OK: true, Sync: fresher, Want: want}
	case OpRegPush:
		ids, errResp := r.reqShards(req.Shard)
		if errResp != nil {
			return errResp
		}
		r.mergeShard(ids[0], req.Sync)
		r.telemetry().Counter("reg.shard.records_recv").Add(int64(len(req.Sync)))
		return &Response{OK: true}
	case OpRegStatus:
		st := r.Status()
		return &Response{OK: true, Status: &st}
	default:
		return &Response{Error: fmt.Sprintf("unknown registry operation %q", req.Op)}
	}
}

// Lookup returns the published, unexpired entries matching the filters
// across every hosted shard; empty kind or name matches everything.
// Results are ordered by node, kind, name, and carry the lease time
// remaining.
func (r *Registry) Lookup(kind, name string) []Entry {
	return r.lookupIn(r.ShardIDs(), kind, name, false)
}

func (r *Registry) lookupIn(shards []int, kind, name string, remote bool) []Entry {
	now := r.rt.Now()
	r.mu.Lock()
	if remote {
		r.lookups++
	}
	var out []Entry
	for _, id := range shards {
		sh := r.shards[id]
		if sh == nil {
			continue
		}
		for node, rec := range sh.records {
			if rec.leased && now >= rec.expires {
				// Expired lease or tombstone: the publisher died without
				// withdrawing, or the withdraw has been remembered long
				// enough. Reap lazily — correctness needs no background
				// sweeper, and lazy reaping behaves identically under Sim
				// and Wall.
				delete(sh.records, node)
				continue
			}
			if rec.deleted {
				continue
			}
			var remain int64
			if rec.leased {
				remain = int64(rec.expires.Sub(now) / time.Millisecond)
				if remain <= 0 {
					remain = 1
				}
			}
			for _, e := range rec.entries {
				if (kind == "" || e.Kind == kind) && (name == "" || e.Name == name) {
					e.TTLMillis = remain
					out = append(out, e)
				}
			}
		}
	}
	r.mu.Unlock()
	sortEntries(out)
	return out
}

// sortEntries orders lookup results by node, kind, name — the registry's
// canonical, deterministic answer order, shared by replicas and by clients
// merging cross-shard results.
func sortEntries(out []Entry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
}

// RegistryClient talks to the grid-wide registry from one process. Each
// replica group gets a single pooled session to one of its replicas: the
// framed stream is dialed once, reused for every operation, re-dialed
// transparently when it breaks, and failed over to the next reachable
// replica of the group when its host dies or partitions away (per-shard
// sticky failover). Operations route by shard — ShardOf on the entry name
// — so a by-name lookup costs one round-trip to one group however many
// shards the directory runs, and a renewal burst costs one batched frame
// per group. Resolve results are additionally cached for a short TTL, so
// the hot by-name dial path usually skips the registry round-trip
// entirely. An unsharded client (NewRegistryClient) is the S=1 special
// case: one group, one session, wire frames identical to the pre-sharding
// protocol.
type RegistryClient struct {
	rt vtime.Runtime
	tr orb.Transport

	groups   [][]string    // distinct replica groups, each a preference order
	shardGrp []int         // shard → index into groups; len is the shard count
	sess     []*regSession // one pooled session per distinct group

	tel atomic.Pointer[telemetry.Registry]

	// renewOff flips when a replica refuses reg-renew-batch (old daemon):
	// renewals fall back to full announces permanently, today's behavior.
	renewOff atomic.Bool

	mu       sync.Mutex
	cacheTTL time.Duration
	cache    map[cacheKey]cachedEntry
	// sums fingerprints (EntriesSum) the per-shard entry sets of the last
	// PublishTTL through this client, indexed by shard; nil until the first
	// publish. Renewals send them so a replica holding a diverged copy —
	// one the announce never reached before failover — refuses the
	// deadline bump and forces a re-announce.
	sums []uint32
}

// regSession is one replica group's pooled session state.
type regSession struct {
	replicas []string
	// sem serializes exchanges on the pooled stream. It is a virtual-time
	// semaphore, not a mutex: an exchange blocks in network I/O, and under
	// Sim a plain mutex held across a parked actor would stall the clock.
	sem *vtime.Semaphore
	cur int       // replica the pooled session points at (sticky)
	st  orbStream // pooled session to replicas[cur]; nil until the first exchange
}

type cacheKey struct{ kind, name string }

// cachedEntry holds the ordered dialable candidates of one resolution.
type cachedEntry struct {
	list    []Entry
	expires vtime.Time
}

// DefaultResolveCacheTTL bounds how long a cached resolution may serve
// dials before the registry is consulted again.
const DefaultResolveCacheTTL = time.Second

// NewRegistryClient returns a pooled client dialing the registry replicas
// hosted on the given nodes through the given transport, scheduling on rt.
// The list is a preference order: operations stick to the first replica
// that answers (deployments put the caller's zone-local replica first) and
// fail over down the list when it dies or partitions away. This is the
// unsharded (S=1) client; NewShardedRegistryClient routes a partitioned
// directory.
func NewRegistryClient(rt vtime.Runtime, tr orb.Transport, replicas ...string) *RegistryClient {
	return NewShardedRegistryClient(rt, tr, [][]string{replicas})
}

// NewShardedRegistryClient returns a pooled client for a hash-partitioned
// registry: groups[s] lists, in preference order, the replicas owning
// shard s. Groups shared by several shards (the common case when zones
// outnumber shards or vice versa) share one pooled session, so failover
// stickiness is per group, not per shard.
func NewShardedRegistryClient(rt vtime.Runtime, tr orb.Transport, groups [][]string) *RegistryClient {
	if len(groups) == 0 {
		groups = [][]string{nil}
	}
	c := &RegistryClient{
		rt:       rt,
		tr:       tr,
		shardGrp: make([]int, len(groups)),
		cacheTTL: DefaultResolveCacheTTL,
		cache:    make(map[cacheKey]cachedEntry),
	}
	seen := map[string]int{}
	for s, g := range groups {
		sig := strings.Join(g, "\x00")
		gi, ok := seen[sig]
		if !ok {
			gi = len(c.groups)
			seen[sig] = gi
			c.groups = append(c.groups, append([]string(nil), g...))
			c.sess = append(c.sess, &regSession{
				replicas: append([]string(nil), g...),
				sem: vtime.NewSemaphore(rt,
					fmt.Sprintf("gatekeeper: registry session %s#%d", tr.NodeName(), gi), 1),
			})
		}
		c.shardGrp[s] = gi
	}
	return c
}

// UseTelemetry points the client at a telemetry registry: resolution-cache
// hits/misses and replica failovers start being counted. Nil (the default)
// records nothing.
func (c *RegistryClient) UseTelemetry(tel *telemetry.Registry) { c.tel.Store(tel) }

func (c *RegistryClient) telemetry() *telemetry.Registry { return c.tel.Load() }

// ShardCount returns the number of shards this client routes across (1 for
// an unsharded client).
func (c *RegistryClient) ShardCount() int { return len(c.shardGrp) }

// Groups returns the shard → replica-group map this client routes with, in
// each group's preference order.
func (c *RegistryClient) Groups() [][]string {
	out := make([][]string, len(c.shardGrp))
	for s, gi := range c.shardGrp {
		out[s] = append([]string(nil), c.groups[gi]...)
	}
	return out
}

// Replicas returns every configured replica in preference order, distinct
// groups concatenated (first-seen order, duplicates dropped).
func (c *RegistryClient) Replicas() []string {
	var out []string
	seen := map[string]bool{}
	for _, g := range c.groups {
		for _, n := range g {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// RegistryNode returns the replica shard 0's pooled session currently
// prefers.
func (c *RegistryClient) RegistryNode() string {
	s := c.sess[c.shardGrp[0]]
	if len(s.replicas) == 0 {
		return ""
	}
	if err := s.sem.Acquire(); err != nil {
		return ""
	}
	defer s.sem.Release()
	return s.replicas[s.cur]
}

// SetCacheTTL adjusts the resolution-cache lifetime; zero or negative
// disables caching. Existing cached resolutions are dropped.
func (c *RegistryClient) SetCacheTTL(d time.Duration) {
	c.mu.Lock()
	c.cacheTTL = d
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Close tears the pooled sessions down. A later operation re-dials.
func (c *RegistryClient) Close() {
	for _, s := range c.sess {
		if err := s.sem.Acquire(); err != nil {
			continue
		}
		if s.st != nil {
			_ = s.st.Close()
			s.st = nil
		}
		s.sem.Release()
	}
}

// sessionFor returns the pooled session owning a shard.
func (c *RegistryClient) sessionFor(shard int) *regSession {
	if shard < 0 || shard >= len(c.shardGrp) {
		shard = 0
	}
	return c.sess[c.shardGrp[shard]]
}

// shardFieldFor returns the Shard value a request addressed to the given
// shard should carry: the shard id when the directory is partitioned, and
// zero — omitted on the wire — for the S=1 client, whose frames must stay
// byte-identical to the pre-sharding protocol.
func (c *RegistryClient) shardFieldFor(shard int) int {
	if len(c.shardGrp) <= 1 {
		return 0
	}
	return shard
}

// do performs one request/response exchange on one shard's session: on the
// pooled session when it is healthy, re-dialing once when it broke since
// the last exchange, and failing over down the group's replica list when
// the current replica's host is dead or unreachable. A replica that
// answers — even with an application error — ends the scan: refusals are
// answers, not failures.
func (c *RegistryClient) do(ctx telemetry.SpanContext, shard int, req *Request) (*Response, error) {
	resps, err := c.doGroup(ctx, c.sessionFor(shard), []*Request{req})
	if err != nil {
		return nil, err
	}
	return resps[0], resps[0].Err()
}

// doGroup performs a batch of exchanges as one pipelined flight on a
// group's pooled session (see do for session and failover semantics — the
// batch fails over and retries as a unit within its group, which is safe
// for the registry's idempotent, last-writer-wins operations).
//
// doGroup is the single chokepoint of client registry traffic, so tracing
// lives here: every request without an ID gets the flight's shared trace ID
// (batched announce/renew/lookup frames used to leave untraced), and a
// caller span in ctx hangs a per-flight child span annotated with the
// replica that answered and any failover the flight took.
func (c *RegistryClient) doGroup(ctx telemetry.SpanContext, s *regSession, reqs []*Request) ([]*Response, error) {
	tel := c.telemetry()
	sp := tel.StartSpanCtx(ctx, "regc.flight")
	defer sp.End()
	trace, span := ctx.Trace, ""
	if sc := sp.Context(); sc.Valid() {
		trace, span = sc.Trace, sc.Span
	}
	if trace == "" {
		trace = tel.NextTraceID()
	}
	for _, q := range reqs {
		if q.TraceID == "" {
			q.TraceID, q.Span = trace, span
		}
	}
	sp.Annotate("ops", strconv.Itoa(len(reqs)))
	if err := s.sem.Acquire(); err != nil {
		return nil, err
	}
	defer s.sem.Release()
	if len(s.replicas) == 0 {
		return nil, fmt.Errorf("gatekeeper: no registry replicas configured on %s", c.tr.NodeName())
	}
	reach, hasReach := c.tr.(orb.Reachability)
	var errs []error
	tryOrder := make([]int, 0, len(s.replicas))
	tryOrder = append(tryOrder, s.cur)
	for i := range s.replicas {
		if i != s.cur {
			tryOrder = append(tryOrder, i)
		}
	}
	for pos, i := range tryOrder {
		node := s.replicas[i]
		// Check reachability before dialing: an unknown or partitioned
		// replica host must be skipped here, not fall into the transport's
		// resolver fallback — this client may BE that resolver, and
		// resolving through itself would re-enter the session semaphore it
		// is holding.
		if hasReach && !reach.CanReach(node) {
			errs = append(errs, fmt.Errorf("replica %s unreachable from %s", node, c.tr.NodeName()))
			continue
		}
		resps, err := c.exchangeAll(s, i, reqs)
		if err == nil {
			sp.Annotate("replica", node)
			if pos > 0 {
				// The sticky replica was unusable and a later one answered.
				c.telemetry().Counter("regc.failovers").Inc()
				sp.Annotate("failovers", strconv.Itoa(pos))
			}
			return resps, nil
		}
		errs = append(errs, fmt.Errorf("replica %s: %w", node, err))
	}
	return nil, fmt.Errorf("gatekeeper: no usable registry replica from %s: %w",
		c.tr.NodeName(), errors.Join(errs...))
}

// exchangeAll runs a batch of request/responses on a group's replica i —
// all writes, then all reads, so the batch costs one round-trip —
// re-dialing once if the pooled session broke since the last exchange
// (registry restarted, stream torn down). On success the session stays
// pinned to i.
func (c *RegistryClient) exchangeAll(s *regSession, i int, reqs []*Request) ([]*Response, error) {
	if i != s.cur && s.st != nil {
		_ = s.st.Close()
		s.st = nil
	}
	s.cur = i
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if s.st == nil {
			st, err := c.tr.Dial(s.replicas[i], RegistryService)
			if err != nil {
				return nil, err
			}
			s.st = st
		}
		disarm := ArmControlDeadline(s.st)
		resps, err := Pipeline(s.st, reqs)
		if err == nil {
			disarm()
			return resps, nil
		}
		lastErr = err
		// Broken session: drop it and retry once on a fresh dial. The whole
		// batch replays — at-least-once, like the single-exchange retry
		// before it, and safe against the registry's idempotent ops.
		_ = s.st.Close()
		s.st = nil
	}
	return nil, lastErr
}

// exchangeWith is a one-shot exchange pinned to a specific replica,
// outside the pooled sessions — the operator path behind per-replica
// status and lookup, where failover would defeat the point. Like doGroup,
// it stamps un-traced requests and hangs a child span off a caller span.
func (c *RegistryClient) exchangeWith(ctx telemetry.SpanContext, node string, req *Request) (*Response, error) {
	tel := c.telemetry()
	sp := tel.StartSpanCtx(ctx, "regc.replica")
	sp.Annotate("replica", node)
	defer sp.End()
	if req.TraceID == "" {
		if sc := sp.Context(); sc.Valid() {
			req.TraceID, req.Span = sc.Trace, sc.Span
		} else if id := tel.NextTraceID(); id != "" {
			req.TraceID = id
		}
	}
	if reach, ok := c.tr.(orb.Reachability); ok && !reach.CanReach(node) {
		return nil, fmt.Errorf("gatekeeper: replica %s unreachable from %s", node, c.tr.NodeName())
	}
	st, err := c.tr.Dial(node, RegistryService)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: dialing replica %s: %w", node, err)
	}
	defer st.Close()
	defer ArmControlDeadline(st)()
	if err := WriteRequest(st, req); err != nil {
		return nil, fmt.Errorf("gatekeeper: to replica %s: %w", node, err)
	}
	resp, err := ReadResponse(st)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: from replica %s: %w", node, err)
	}
	return resp, resp.Err()
}

// StatusOf fetches one replica's replication status (live entry counts,
// per-peer and per-shard sync lag). It never fails over: the named replica
// answers or the error says why.
func (c *RegistryClient) StatusOf(node string) (*RegStatus, error) {
	resp, err := c.exchangeWith(telemetry.SpanContext{}, node, &Request{Op: OpRegStatus})
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("gatekeeper: replica %s returned no status", node)
	}
	return resp.Status, nil
}

// LookupAt queries one specific replica's view, without failover — the
// operator path for comparing replicas' replication state. Against a
// sharded replica it searches every shard the replica hosts.
func (c *RegistryClient) LookupAt(node, kind, name string) ([]Entry, error) {
	return c.LookupAtCtx(telemetry.SpanContext{}, node, kind, name)
}

// LookupAtCtx is LookupAt under a caller's span — each per-replica probe of
// a traced operation shows up as its own leg.
func (c *RegistryClient) LookupAtCtx(ctx telemetry.SpanContext, node, kind, name string) ([]Entry, error) {
	req := &Request{Op: OpRegLookup, Kind: kind, Name: name}
	if len(c.shardGrp) > 1 {
		req.Shard = ShardAll
	}
	resp, err := c.exchangeWith(ctx, node, req)
	if err != nil {
		return nil, err
	}
	c.learnAddrs(resp.Entries)
	return resp.Entries, nil
}

// learnAddrs feeds endpoint advertisements carried by registry entries into
// the transport's address book, when it keeps one (wall transports). This
// is how an attached controller — or any daemon — becomes able to dial
// nodes it has never been configured with: the registry itself is the
// address distribution channel.
func (c *RegistryClient) learnAddrs(entries []Entry) {
	al, ok := c.tr.(orb.AddrLearner)
	if !ok {
		return
	}
	for _, e := range entries {
		if e.Addr != "" {
			al.LearnAddr(e.Node, e.Addr)
		}
	}
}

// Publish replaces the registry's entries for node with the given set,
// without a lease (the entries stay until withdrawn).
func (c *RegistryClient) Publish(node string, entries []Entry) error {
	return c.PublishTTL(node, entries, 0)
}

// PublishTTL replaces the registry's entries for node under a soft-state
// lease: they expire ttl after the registry accepts them unless
// re-published. Non-positive ttl means no lease. On a sharded directory
// the entries split by name hash and every replica group receives its
// shards' slices in one announce-batch frame — including empty slices,
// which clear entries that churned out of a shard. The publish lands on
// each group's preferred replica and reaches the rest within one sync
// interval.
func (c *RegistryClient) PublishTTL(node string, entries []Entry, ttl time.Duration) error {
	return c.PublishTTLCtx(telemetry.SpanContext{}, node, entries, ttl)
}

// PublishTTLCtx is PublishTTL under a caller's span: each replica group's
// announce-batch flight becomes a child leg of the caller's trace.
func (c *RegistryClient) PublishTTLCtx(ctx telemetry.SpanContext, node string, entries []Entry, ttl time.Duration) error {
	defer c.invalidate()
	var ttlMillis int64
	if ttl > 0 {
		ttlMillis = int64(ttl / time.Millisecond)
		if ttlMillis <= 0 {
			ttlMillis = 1 // sub-millisecond leases still lease
		}
	}
	if len(c.shardGrp) <= 1 {
		// Unsharded: the original single publish, frame-identical to the
		// pre-sharding client.
		c.storeSums([][]Entry{entries})
		_, err := c.do(ctx, 0, &Request{Op: OpRegPublish, Node: node, Entries: entries, TTLMillis: ttlMillis})
		return err
	}
	byShard := make([][]Entry, len(c.shardGrp))
	for _, e := range entries {
		s := ShardOf(e.Name, len(c.shardGrp))
		byShard[s] = append(byShard[s], e)
	}
	c.storeSums(byShard)
	var errs []error
	for gi, s := range c.sess {
		var batch []ShardPublish
		for shard, g := range c.shardGrp {
			if g == gi {
				batch = append(batch, ShardPublish{Shard: shard, Entries: byShard[shard]})
			}
		}
		req := &Request{Op: OpRegAnnounceBatch, Node: node, TTLMillis: ttlMillis, Batch: batch}
		resps, err := c.doGroup(ctx, s, []*Request{req})
		if err == nil {
			err = resps[0].Err()
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		c.telemetry().Counter("regc.announce_batches").Inc()
	}
	return errors.Join(errs...)
}

// PublishShardTTL replaces one shard's slice of node's entries with a
// plain per-shard publish — the frame a batch-unaware client must send
// once per shard to replace its full entry set. It exists for operator
// tooling that patches a single shard, and as the unbatched baseline of
// the registry-load benchmark; PublishTTL lands the same update in one
// announce-batch frame per replica group.
func (c *RegistryClient) PublishShardTTL(node string, shard int, entries []Entry, ttl time.Duration) error {
	defer c.invalidate()
	var ttlMillis int64
	if ttl > 0 {
		ttlMillis = int64(ttl / time.Millisecond)
		if ttlMillis <= 0 {
			ttlMillis = 1
		}
	}
	_, err := c.do(telemetry.SpanContext{}, shard, &Request{Op: OpRegPublish, Node: node,
		Shard: c.shardFieldFor(shard), Entries: entries, TTLMillis: ttlMillis})
	if err == nil {
		// Keep the renewal fingerprint of the patched shard honest, so a
		// later RenewLease asserts against what this publish installed.
		c.mu.Lock()
		if shard >= 0 && shard < len(c.sums) {
			c.sums[shard] = EntriesSum(entries)
		}
		c.mu.Unlock()
	}
	return err
}

// storeSums remembers the per-shard entry-set fingerprints of an announce,
// for later renewals to assert against.
func (c *RegistryClient) storeSums(byShard [][]Entry) {
	sums := make([]uint32, len(byShard))
	for s, entries := range byShard {
		sums[s] = EntriesSum(entries)
	}
	c.mu.Lock()
	c.sums = sums
	c.mu.Unlock()
}

// errRenewUnsupported marks a registry too old for reg-renew-batch; the
// caller falls back to full announces, and the client remembers so later
// renewals skip the doomed round-trip.
var errRenewUnsupported = errors.New("gatekeeper: registry does not support lease renewal")

// RenewLease extends node's published leases to ttl from now without
// resending the entries — one batched frame per replica group instead of a
// full announce. It fails (and the caller must fall back to Announce) when
// any group reports the lease missing there — the record expired or was
// never established — or when a replica predates the operation.
func (c *RegistryClient) RenewLease(node string, ttl time.Duration) error {
	return c.RenewLeaseCtx(telemetry.SpanContext{}, node, ttl)
}

// RenewLeaseCtx is RenewLease under a caller's span — traced renewals show
// their per-group renew-batch flights.
func (c *RegistryClient) RenewLeaseCtx(ctx telemetry.SpanContext, node string, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("gatekeeper: non-positive lease TTL %v", ttl)
	}
	if c.renewOff.Load() {
		return errRenewUnsupported
	}
	ttlMillis := int64(ttl / time.Millisecond)
	if ttlMillis <= 0 {
		ttlMillis = 1
	}
	c.mu.Lock()
	sums := c.sums
	c.mu.Unlock()
	var missing []int
	for gi, s := range c.sess {
		var shards []int
		var shardSums []uint32
		for shard, g := range c.shardGrp {
			if g == gi {
				shards = append(shards, shard)
				if sums != nil {
					shardSums = append(shardSums, sums[shard])
				}
			}
		}
		req := &Request{Op: OpRegRenewBatch, Node: node, TTLMillis: ttlMillis,
			Shards: shards, Sums: shardSums}
		resps, err := c.doGroup(ctx, s, []*Request{req})
		if err != nil {
			return err
		}
		if err := resps[0].Err(); err != nil {
			if strings.Contains(resps[0].Error, "unknown registry operation") {
				c.renewOff.Store(true)
				return errRenewUnsupported
			}
			return err
		}
		missing = append(missing, resps[0].Missing...)
	}
	if len(missing) > 0 {
		return fmt.Errorf("gatekeeper: lease for %s missing in shards %v", node, missing)
	}
	c.telemetry().Counter("regc.renew_batches").Inc()
	return nil
}

// Withdraw drops every entry published by node, in every shard. The
// tombstones left behind propagate within each shard's replica group
// within one sync interval.
func (c *RegistryClient) Withdraw(node string) error {
	defer c.invalidate()
	var errs []error
	for _, s := range c.sess {
		resps, err := c.doGroup(telemetry.SpanContext{}, s, []*Request{{Op: OpRegWithdraw, Node: node}})
		if err == nil {
			err = resps[0].Err()
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// invalidate drops the resolution cache after a mutation through this
// client, so its own writes are immediately visible to its reads.
func (c *RegistryClient) invalidate() {
	c.mu.Lock()
	c.cache = make(map[cacheKey]cachedEntry)
	c.mu.Unlock()
}

// Lookup queries the registry; empty kind or name matches everything. A
// named lookup routes to the owning shard's group — one round-trip
// regardless of shard count; an unnamed one fans out to every group (its
// owned shards pipelined on one flight) and merges. Lookups always hit the
// registry — only Resolve results are cached.
func (c *RegistryClient) Lookup(kind, name string) ([]Entry, error) {
	return c.LookupCtx(telemetry.SpanContext{}, kind, name)
}

// LookupCtx is Lookup under a caller's span — the shard-routed (or fanned)
// flights become child legs of the caller's trace.
func (c *RegistryClient) LookupCtx(ctx telemetry.SpanContext, kind, name string) ([]Entry, error) {
	if name != "" || len(c.shardGrp) <= 1 {
		shard := ShardOf(name, len(c.shardGrp))
		resp, err := c.do(ctx, shard, &Request{
			Op: OpRegLookup, Kind: kind, Name: name, Shard: c.shardFieldFor(shard)})
		if err != nil {
			return nil, err
		}
		c.learnAddrs(resp.Entries)
		return resp.Entries, nil
	}
	var out []Entry
	for gi, s := range c.sess {
		var reqs []*Request
		for shard, g := range c.shardGrp {
			if g == gi {
				reqs = append(reqs, &Request{Op: OpRegLookup, Kind: kind, Name: name, Shard: shard})
			}
		}
		resps, err := c.doGroup(ctx, s, reqs)
		if err != nil {
			return nil, err
		}
		for _, resp := range resps {
			if err := resp.Err(); err != nil {
				return nil, err
			}
			c.learnAddrs(resp.Entries)
			out = append(out, resp.Entries...)
		}
	}
	// Shards partition by name, so the concatenation has no duplicates —
	// it just needs the registry's canonical order restored.
	sortEntries(out)
	return out, nil
}

// LookupQuery names one lookup in a LookupBatch.
type LookupQuery struct {
	Kind string
	Name string
}

// LookupBatch answers several lookups with one pipelined flight per
// involved replica group: each query routes to its name's shard (unnamed
// queries fan out to every shard) and the per-group batches ride single
// round-trips. Failover is per group — one dead replica fails over inside
// its group without touching the other groups' flights. Results are
// positional — out[i] answers queries[i].
func (c *RegistryClient) LookupBatch(queries []LookupQuery) ([][]Entry, error) {
	return c.LookupBatchCtx(telemetry.SpanContext{}, queries)
}

// LookupBatchCtx is LookupBatch under a caller's span.
func (c *RegistryClient) LookupBatchCtx(ctx telemetry.SpanContext, queries []LookupQuery) ([][]Entry, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	perReqs := make([][]*Request, len(c.sess))
	perQIdx := make([][]int, len(c.sess))
	for qi, q := range queries {
		if q.Name != "" || len(c.shardGrp) <= 1 {
			shard := ShardOf(q.Name, len(c.shardGrp))
			gi := c.shardGrp[shard]
			perReqs[gi] = append(perReqs[gi], &Request{
				Op: OpRegLookup, Kind: q.Kind, Name: q.Name, Shard: c.shardFieldFor(shard)})
			perQIdx[gi] = append(perQIdx[gi], qi)
			continue
		}
		for shard, gi := range c.shardGrp {
			perReqs[gi] = append(perReqs[gi], &Request{
				Op: OpRegLookup, Kind: q.Kind, Name: q.Name, Shard: shard})
			perQIdx[gi] = append(perQIdx[gi], qi)
		}
	}
	out := make([][]Entry, len(queries))
	for gi, s := range c.sess {
		if len(perReqs[gi]) == 0 {
			continue
		}
		resps, err := c.doGroup(ctx, s, perReqs[gi])
		if err != nil {
			return nil, err
		}
		for k, resp := range resps {
			qi := perQIdx[gi][k]
			if err := resp.Err(); err != nil {
				return nil, fmt.Errorf("lookup %s/%s: %w", queries[qi].Kind, queries[qi].Name, err)
			}
			c.learnAddrs(resp.Entries)
			out[qi] = append(out[qi], resp.Entries...)
		}
	}
	if len(c.shardGrp) > 1 {
		// Cross-shard merges concatenated disjoint slices; restore the
		// registry's canonical node/kind/name order per query.
		for qi := range out {
			sortEntries(out[qi])
		}
	}
	return out, nil
}

// Resolve returns the best dialable entry for a published service name:
// among the matches it prefers, deterministically, an entry whose node the
// caller's transport can reach (shares a fabric with), falling back to the
// first dialable entry in the registry's node/kind/name order. The
// candidate list is cached for the client's cache TTL.
func (c *RegistryClient) Resolve(kind, name string) (Entry, error) {
	return c.ResolveCtx(telemetry.SpanContext{}, kind, name)
}

// ResolveCtx is Resolve under a caller's span — a traced by-name resolve
// shows whether it was served from cache or crossed the wire, and to which
// replica.
func (c *RegistryClient) ResolveCtx(ctx telemetry.SpanContext, kind, name string) (Entry, error) {
	list, err := c.candidates(ctx, kind, name)
	if err != nil {
		return Entry{}, err
	}
	return list[0], nil
}

// candidates returns the dialable entries for (kind, name) in preference
// order — reachable nodes first, registry order within each class — from
// the cache when fresh.
func (c *RegistryClient) candidates(ctx telemetry.SpanContext, kind, name string) ([]Entry, error) {
	if list, ok := c.cachedList(kind, name); ok {
		c.telemetry().Counter("regc.cache_hits").Inc()
		return list, nil
	}
	c.telemetry().Counter("regc.cache_misses").Inc()
	entries, err := c.LookupCtx(ctx, kind, name)
	if err != nil {
		return nil, err
	}
	list := c.orderDialable(entries)
	if len(list) == 0 {
		return nil, fmt.Errorf("gatekeeper: no dialable %s service %q in registry", kind, name)
	}
	c.storeList(kind, name, list)
	return list, nil
}

// orderDialable filters lookup results down to dialable entries and orders
// them for failover: reachable nodes first, registry order within each
// class. Unreachable candidates stay in the list, after every reachable
// one — the fallback is deterministic and the dial surfaces the topology
// error.
func (c *RegistryClient) orderDialable(entries []Entry) []Entry {
	reach, hasReach := c.tr.(orb.Reachability)
	var preferred, fallback []Entry
	for _, e := range entries {
		if e.Service == "" {
			continue
		}
		if !hasReach || reach.CanReach(e.Node) {
			preferred = append(preferred, e)
		} else {
			fallback = append(fallback, e)
		}
	}
	return append(preferred, fallback...)
}

func (c *RegistryClient) cachedList(kind, name string) ([]Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ce, ok := c.cache[cacheKey{kind, name}]
	if !ok || c.rt.Now() >= ce.expires {
		return nil, false
	}
	return ce.list, true
}

func (c *RegistryClient) storeList(kind, name string, list []Entry) {
	c.mu.Lock()
	if c.cacheTTL > 0 {
		c.cache[cacheKey{kind, name}] = cachedEntry{list: list, expires: c.rt.Now().Add(c.cacheTTL)}
	}
	c.mu.Unlock()
}

// ResolveVLink implements vlink.Resolver, making the registry client the
// production resolver behind Linker.DialService and the DialName fallback.
// Because do() fails over inside each group, by-name dialing keeps working
// across a replica crash without the linker noticing — and because named
// lookups route by shard, the resolver path stays one round-trip however
// far the directory is partitioned.
func (c *RegistryClient) ResolveVLink(kind, name string) ([]vlink.Resolved, error) {
	return c.ResolveVLinkCtx(telemetry.SpanContext{}, kind, name)
}

// ResolveVLinkCtx implements vlink.SpanResolver: a traced by-name dial
// threads its span through the resolution flight.
func (c *RegistryClient) ResolveVLinkCtx(ctx telemetry.SpanContext, kind, name string) ([]vlink.Resolved, error) {
	list, err := c.candidates(ctx, kind, name)
	if err != nil {
		return nil, err
	}
	return toResolved(list), nil
}

// ResolveVLinkBatch implements vlink.BatchResolver: names already in the
// resolution cache are served from it, and all the misses go out as one
// LookupBatch — a single pipelined flight per replica group however far the
// directory is sharded, instead of one round trip per name. Resolved misses
// are stored back into the cache, so a batch doubles as a warm-up for
// subsequent one-name dials of the same services.
func (c *RegistryClient) ResolveVLinkBatch(kind string, names []string) ([][]vlink.Resolved, error) {
	out := make([][]vlink.Resolved, len(names))
	var queries []LookupQuery
	var missIdx []int
	for i, name := range names {
		if list, ok := c.cachedList(kind, name); ok {
			c.telemetry().Counter("regc.cache_hits").Inc()
			out[i] = toResolved(list)
			continue
		}
		c.telemetry().Counter("regc.cache_misses").Inc()
		queries = append(queries, LookupQuery{Kind: kind, Name: name})
		missIdx = append(missIdx, i)
	}
	if len(queries) == 0 {
		return out, nil
	}
	results, err := c.LookupBatch(queries)
	if err != nil {
		return nil, err
	}
	for qi, i := range missIdx {
		list := c.orderDialable(results[qi])
		if len(list) == 0 {
			continue // per-contract: a miss is an empty slot, not an error
		}
		c.storeList(kind, names[i], list)
		out[i] = toResolved(list)
	}
	return out, nil
}

func toResolved(list []Entry) []vlink.Resolved {
	out := make([]vlink.Resolved, len(list))
	for i, e := range list {
		out[i] = vlink.Resolved{Node: e.Node, Service: e.Service}
	}
	return out
}

var _ vlink.Resolver = (*RegistryClient)(nil)
var _ vlink.BatchResolver = (*RegistryClient)(nil)
var _ vlink.SpanResolver = (*RegistryClient)(nil)

// DialService is VLink connection by registry name — a thin shim over
// Linker.DialServiceVia for callers holding a client they have not
// installed as the linker's resolver.
func DialService(ln *vlink.Linker, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	return ln.DialServiceVia(rc, kind, name)
}

// DialServiceOn resolves through the registry and dials over an arbitrary
// transport — the wall-clock twin of Linker.DialService, used where no
// simulated linker exists (e.g. real TCP deployments).
func DialServiceOn(tr orb.Transport, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	return DialServiceOnCtx(telemetry.SpanContext{}, tr, rc, kind, name)
}

// DialServiceOnCtx is DialServiceOn under a caller's span: the resolve
// flight joins the caller's trace.
func DialServiceOnCtx(ctx telemetry.SpanContext, tr orb.Transport, rc *RegistryClient, kind, name string) (vlink.Stream, error) {
	e, err := rc.ResolveCtx(ctx, kind, name)
	if err != nil {
		return nil, err
	}
	return tr.Dial(e.Node, e.Service)
}
