package gatekeeper

import (
	"bytes"
	"reflect"
	"testing"
)

func TestProtocolRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpLoad, Module: "soap"},
		{Op: OpUnload, Module: "vlink", Cascade: true},
		{Op: OpListModules},
		{Op: OpListServices},
		{Op: OpStats},
		{Op: OpAnnounce},
		{Op: OpRegLookup, Kind: "vlink", Name: "demo:echo"},
		{Op: OpRegWithdraw, Node: "n3"},
		{Op: OpRegPublish, Node: "n0", Entries: []Entry{
			{Node: "n0", Kind: "module", Name: "gatekeeper"},
			{Node: "n0", Kind: "orb", Name: "omniORB-3", Service: "giop"},
		}},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		req := req
		if err := WriteRequest(&buf, &req); err != nil {
			t.Fatalf("write %+v: %v", req, err)
		}
	}
	// All frames are parsed back from one contiguous stream, in order.
	for _, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip = %+v, want %+v", *got, want)
		}
	}

	resps := []Response{
		{OK: true},
		{Error: "no module type \"nope\" registered"},
		{OK: true, Modules: []string{"gatekeeper", "soap", "vlink"}},
		{OK: true, Services: []string{"padico:gatekeeper", "soap:sys"}},
		{OK: true, Stats: &Stats{
			Node:    "n1",
			Modules: []string{"vlink"},
			ORBs:    map[string]string{"mico": "giop"},
			Devices: []DeviceStats{{Name: "myri0", Kind: "san", Routed: 17, Pending: 2}},
		}},
		{OK: true, Entries: []Entry{{Node: "n2", Kind: "vlink", Name: "x", Service: "x"}}},
	}
	buf.Reset()
	for _, resp := range resps {
		resp := resp
		if err := WriteResponse(&buf, &resp); err != nil {
			t.Fatalf("write %+v: %v", resp, err)
		}
	}
	for _, want := range resps {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip = %+v, want %+v", *got, want)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	// Truncated frame: length promises more than the stream holds.
	if _, err := ReadRequest(bytes.NewReader([]byte{0, 0, 0, 9, '{', '}'})); err == nil {
		t.Error("truncated frame accepted")
	}
	// Zero and oversized lengths are rejected before any allocation.
	if _, err := ReadRequest(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	if _, err := ReadRequest(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Valid frame, invalid JSON.
	bad := append([]byte{0, 0, 0, 3}, []byte("nope")...)
	if _, err := ReadRequest(bytes.NewReader(bad)); err == nil {
		t.Error("bad JSON accepted")
	}
	// Valid JSON, no op.
	var buf bytes.Buffer
	if err := writeFrame(&buf, map[string]string{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(&buf); err == nil {
		t.Error("request without op accepted")
	}
	// A response's Err surfaces the server-side message.
	r := Response{Error: "boom"}
	if err := r.Err(); err == nil || err.Error() != "gatekeeper: boom" {
		t.Errorf("Err() = %v", err)
	}
	if err := (&Response{OK: true}).Err(); err != nil {
		t.Errorf("ok response errored: %v", err)
	}
}
