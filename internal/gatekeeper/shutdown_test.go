package gatekeeper

import (
	"testing"
	"time"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// TestWallCloseLeaksNoGoroutines is the goleak-style accounting for the
// control plane under the wall clock, where goroutines are real and a
// long-lived daemon pays for every leak: two registry replicas under
// anti-entropy with a deliberately huge sync interval, a lease-holding
// gatekeeper, and a pooled client are all started, exercised, and closed
// mid-interval. Every runtime-spawned goroutine (accept loops, per-session
// handlers, the sync loop, lease actors) must exit promptly — the sync
// loop in particular must be woken from its interval wait by Close rather
// than sleeping the rest of the hour out.
func TestWallCloseLeaksNoGoroutines(t *testing.T) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()

	// An interval far beyond the test timeout: if Close does not interrupt
	// the wait, wall.Wait() hangs and the watchdog below fails the test.
	const interval = time.Hour
	regA, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "lk-a"})
	if err != nil {
		t.Fatal(err)
	}
	regB, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "lk-b"})
	if err != nil {
		t.Fatal(err)
	}
	regA.StartSync([]string{"lk-b"}, interval)
	regB.StartSync([]string{"lk-a"}, interval)

	target := &stubTarget{mods: map[string]bool{"vlink": true}}
	gk, err := Serve(wall, orb.TCPTransport{Stack: stack, Name: "lk-host"}, target)
	if err != nil {
		t.Fatal(err)
	}
	gk.UseRegistry(NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "lk-host"}, "lk-a", "lk-b"))
	if err := gk.StartLease(time.Hour); err != nil {
		t.Fatal(err)
	}

	// Exercise every goroutine-spawning path: a pooled client session on
	// each replica and an operator control connection.
	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "lk-obs"}, "lk-a")
	if _, err := rc.Lookup("", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.StatusOf("lk-b"); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(wall, orb.TCPTransport{Stack: stack, Name: "lk-ctl"})
	if err := ctl.Ping("lk-host"); err != nil {
		t.Fatal(err)
	}
	// Give both sync loops time to run their first round and park on the
	// hour-long interval — the state the fix targets.
	time.Sleep(50 * time.Millisecond)

	rc.Close()
	gk.Close()
	regA.Close()
	regB.Close()

	done := make(chan struct{})
	go func() {
		wall.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("control-plane goroutines leaked past Close (sync loop or session handler still alive)")
	}
}

// TestCloseUnderSANTraffic is the regression for the PR 3 gotcha: closing
// a stream on the SAN (cross-paradigm) path sends a FIN that blocks in
// virtual time, so no mutex may be held across such a Close — an actor
// stuck on that mutex would freeze the Sim clock and the run would die
// with a DeadlockError. The test closes a registry whose pooled sessions
// ride a Myrinet SAN while other actors hammer the registry's mutex-
// protected paths; reintroducing a lock-across-Close in registry.Close,
// noteSync or the client makes this test panic with a vtime deadlock.
func TestCloseUnderSANTraffic(t *testing.T) {
	g := core.NewGrid()
	nodes := g.AddNodes("san", 3)
	if _, err := g.AddMyrinet("myri0", nodes); err != nil {
		t.Fatal(err)
	}
	g.Run(func() {
		procs := make([]*core.Process, len(nodes))
		for i, nd := range nodes {
			p, err := g.Launch(nd)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Load("vlink"); err != nil {
				t.Fatal(err)
			}
			procs[i] = p
		}
		// Two replicas syncing at a tight interval over the SAN: pooled
		// peer sessions exist on both sides when the close lands.
		const interval = 5 * time.Millisecond
		regA, err := StartRegistry(g.Sim, orb.VLinkTransport{Linker: procs[0].Linker()})
		if err != nil {
			t.Fatal(err)
		}
		regB, err := StartRegistry(g.Sim, orb.VLinkTransport{Linker: procs[1].Linker()})
		if err != nil {
			t.Fatal(err)
		}
		defer regB.Close()
		regA.StartSync([]string{nodes[1].Name}, interval)
		regB.StartSync([]string{nodes[0].Name}, interval)

		// A third process hammers both replicas over SAN streams while the
		// primary closes mid-traffic.
		rc := NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()},
			nodes[0].Name, nodes[1].Name)
		defer rc.Close()
		rc.SetCacheTTL(0)
		e := Entry{Node: nodes[2].Name, Kind: "vlink", Name: "san:svc", Service: "san:svc"}
		if err := rc.PublishTTL(nodes[2].Name, []Entry{e}, time.Minute); err != nil {
			t.Fatal(err)
		}
		wg := vtime.NewWaitGroup(g.Sim, "san-hammer")
		wg.Add(1)
		g.Sim.Go("hammer", func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _ = rc.Lookup("", "") // failures mid-close are expected; deadlock is not
				g.Sim.Sleep(interval / 2)
			}
		})
		g.Sim.Sleep(4 * interval) // let sync sessions pool up on the SAN
		regA.Close()              // the regression point: FIN under vtime
		_ = wg.Wait()
		// Survivor still answers after the close storm.
		if _, err := rc.Lookup("vlink", "san:svc"); err != nil {
			t.Fatalf("survivor lookup after SAN close: %v", err)
		}
	})
}
