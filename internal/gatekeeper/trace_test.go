package gatekeeper

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"padico/internal/orb"
	"padico/internal/telemetry"
)

// resolveTraceRun executes one traced operator resolve on a fresh 2-node
// grid — registry on n0, seat on n1 — and returns every span the trace left
// behind anywhere in the grid, sorted for comparison.
func resolveTraceRun(t *testing.T) []telemetry.Span {
	t.Helper()
	g, nodes := newGrid(t, 2, "ethernet")
	var spans []telemetry.Span
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		publishEcho(t, procs[0], "n0")

		tel := procs[1].Telemetry()
		tel.SetSpanSampling(1)
		rc := clientFor(procs[1], "n0")
		rc.UseTelemetry(tel)
		rc.SetCacheTTL(0)

		sp := tel.StartSpan("ctl.resolve")
		sp.Annotate("kind", "vlink")
		sp.Annotate("name", "demo:echo")
		if _, err := rc.LookupAtCtx(sp.Context(), "n0", "vlink", "demo:echo"); err != nil {
			t.Fatalf("lookup at replica: %v", err)
		}
		if _, err := rc.ResolveCtx(sp.Context(), "vlink", "demo:echo"); err != nil {
			t.Fatalf("resolve: %v", err)
		}
		sp.End()

		trace := sp.TraceID()
		spans = append(tel.Spans(trace), procs[0].Telemetry().Spans(trace)...)
	})
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Node != spans[j].Node {
			return spans[i].Node < spans[j].Node
		}
		return spans[i].ID < spans[j].ID
	})
	return spans
}

// TestCausalSpanTreeSim is the tentpole's determinism proof: one traced
// resolve leaves a single causal tree spanning the seat and the registry
// replica — every span carries the same trace ID, every non-root span's
// parent exists, the replica's serve spans hang under the seat's client
// legs — and a second identical run reproduces the tree byte for byte,
// durations included, because IDs and clocks are all virtual.
func TestCausalSpanTreeSim(t *testing.T) {
	spans := resolveTraceRun(t)
	if len(spans) < 5 {
		t.Fatalf("trace left %d spans, want at least 5 (root, 2 client legs, 2 replica serves): %+v",
			len(spans), spans)
	}
	byID := map[string]telemetry.Span{}
	nodeSet := map[string]bool{}
	ops := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		nodeSet[sp.Node] = true
		ops[sp.Op]++
		if sp.Trace != spans[0].Trace {
			t.Fatalf("span %s carries trace %q, tree is %q", sp.ID, sp.Trace, spans[0].Trace)
		}
	}
	if !nodeSet["n0"] || !nodeSet["n1"] {
		t.Fatalf("tree spans nodes %v, want both n0 and n1", nodeSet)
	}
	roots := 0
	for _, sp := range spans {
		if sp.Parent == "" {
			roots++
			if sp.Op != "ctl.resolve" {
				t.Fatalf("root span is %q, want ctl.resolve", sp.Op)
			}
			if sp.Notes["kind"] != "vlink" || sp.Notes["name"] != "demo:echo" {
				t.Fatalf("root notes = %v", sp.Notes)
			}
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %s (%s) has parent %s, which no node recorded", sp.ID, sp.Op, sp.Parent)
		}
		if sp.StartMicros < parent.StartMicros {
			t.Fatalf("span %s starts at %dus before its parent's %dus", sp.ID, sp.StartMicros, parent.StartMicros)
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots, want exactly 1", roots)
	}
	// The client legs and the replica's serve spans are all present: the
	// direct per-replica lookup and the routed flight on the seat, one
	// reg-lookup serve on the replica under each.
	if ops["regc.replica"] != 1 || ops["regc.flight"] != 1 || ops["reg."+OpRegLookup] != 2 {
		t.Fatalf("ops in tree = %v", ops)
	}
	for _, sp := range spans {
		if sp.Node == "n0" && byID[sp.Parent].Node != "n1" {
			t.Fatalf("replica span %s hangs under %s, want a seat-side parent", sp.ID, sp.Parent)
		}
	}
	// Run-twice-equal: virtual clocks and counter-minted IDs make the whole
	// tree — durations included — reproducible.
	again := resolveTraceRun(t)
	if fmt.Sprint(spans) != fmt.Sprint(again) {
		t.Fatalf("second run diverged:\n run1: %+v\n run2: %+v", spans, again)
	}
}

// TestBatchFramesCarryTrace is the regression for the sharded-registry batch
// frames silently dropping trace IDs: every reg-announce-batch and
// reg-renew-batch frame a flight sends must land on the replica with a
// non-empty trace — one trace per flight — even when the client's process
// has sampling off (the daemon default, where no spans ride along).
func TestBatchFramesCarryTrace(t *testing.T) {
	const shards = 2
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.SetShards(shards)
		regA.HostShards(0)
		regB.SetShards(shards)
		regB.HostShards(1)
		regA.UseTelemetry(procs[0].Telemetry())
		regB.UseTelemetry(procs[1].Telemetry())

		rc := NewShardedRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()},
			[][]string{{"n0"}, {"n1"}})
		rc.UseTelemetry(procs[2].Telemetry()) // sampling off: bare trace IDs only
		entries := []Entry{
			{Node: "n2", Kind: "vlink", Name: nameInShard(t, 0, shards, "bt"), Service: "s0"},
			{Node: "n2", Kind: "vlink", Name: nameInShard(t, 1, shards, "bt"), Service: "s1"},
		}
		if err := rc.PublishTTL("n2", entries, time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := rc.RenewLease("n2", time.Minute); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 2; i++ {
			evs := procs[i].Telemetry().Events(0)
			for _, op := range []string{OpRegAnnounceBatch, OpRegRenewBatch} {
				found := false
				for _, e := range evs {
					if e.What != "reg.recv" || !strings.Contains(e.Detail, "op="+op) {
						continue
					}
					found = true
					if e.Trace == "" {
						t.Fatalf("n%d received %s with no trace ID: %+v", i, op, e)
					}
				}
				if !found {
					t.Fatalf("n%d ring has no reg.recv for %s: %v", i, op, evs)
				}
			}
		}
	})
}

// TestAntiEntropyRoundsCarryTrace pins the other half of the batch-frame
// regression: anti-entropy traffic — the first full reg-sync and the
// reg-digest rounds after it — reaches the responder with one non-empty
// trace ID per round, so a round's frames stitch together across both
// replicas' event rings.
func TestAntiEntropyRoundsCarryTrace(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		for i := 0; i < 2; i++ {
			if err := procs[i].Load("registry"); err != nil {
				t.Fatal(err)
			}
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.UseTelemetry(procs[0].Telemetry())
		regB.UseTelemetry(procs[1].Telemetry())

		rc := clientFor(procs[2], "n0")
		if err := rc.PublishTTL("m0",
			[]Entry{{Node: "m0", Kind: "vlink", Name: "seed"}}, time.Minute); err != nil {
			t.Fatal(err)
		}
		regA.StartSync([]string{"n1"}, syncInterval)
		g.Sim.Sleep(3*syncInterval + time.Millisecond)

		traces := map[string]string{} // op -> trace of the first sighting
		for _, e := range procs[1].Telemetry().Events(0) {
			if e.What != "reg.recv" {
				continue
			}
			op := strings.TrimPrefix(e.Detail, "op=")
			if e.Trace == "" {
				t.Fatalf("n1 received %s with no trace ID: %+v", op, e)
			}
			if _, ok := traces[op]; !ok {
				traces[op] = e.Trace
			}
		}
		if traces[OpRegSync] == "" {
			t.Fatalf("responder never saw a full %s round: %v", OpRegSync, traces)
		}
		if traces[OpRegDigest] == "" {
			t.Fatalf("responder never saw a %s round: %v", OpRegDigest, traces)
		}
		if traces[OpRegSync] == traces[OpRegDigest] {
			t.Fatal("distinct anti-entropy rounds shared one trace ID")
		}
	})
}

// TestTraceOpCollectsSpans drives the collection op end to end in Sim: a
// traced exchange leaves spans on the target, OpTrace returns exactly that
// trace's spans, OpTracePut ingests a seat's pushed spans and anchors the
// node's "last trace" on the freshest pushed root.
func TestTraceOpCollectsSpans(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])
		tel := procs[0].Telemetry()
		tel.SetSpanSampling(1)

		// A traced exchange: the target's gk serve span lands in its buffer.
		req := &Request{Op: OpListModules}
		if _, err := ctl.Do("n1", req); err != nil {
			t.Fatal(err)
		}
		if req.TraceID == "" || req.Span == "" {
			t.Fatalf("sampled seat did not stamp span context: trace=%q span=%q", req.TraceID, req.Span)
		}

		resp, err := ctl.Do("n1", &Request{Op: OpTrace, Name: req.TraceID})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Spans) != 1 || resp.Spans[0].Op != "gk."+OpListModules {
			t.Fatalf("OpTrace returned %+v, want the one gk serve span", resp.Spans)
		}
		if resp.Spans[0].Parent != req.Span || resp.Spans[0].Trace != req.TraceID {
			t.Fatalf("serve span %+v not parented under the request's span %q", resp.Spans[0], req.Span)
		}

		// Push a seat-recorded tree at the node; the freshest root becomes
		// its last trace, and a fresh collector can read the spans back.
		seat := []telemetry.Span{
			{Trace: "ctl-9", ID: "ctl-s1", Op: "ctl.resolve", Node: "ctl", StartMicros: 10},
			{Trace: "ctl-9", ID: "ctl-s2", Parent: "ctl-s1", Op: "regc.flight", Node: "ctl", StartMicros: 12},
		}
		put := &Request{Op: OpTracePut, Spans: seat, TraceID: tel.NextTraceID()}
		if _, err := ctl.Do("n1", put); err != nil {
			t.Fatal(err)
		}
		last, err := ctl.Do("n1", &Request{Op: OpTrace})
		if err != nil {
			t.Fatal(err)
		}
		if last.LastTrace != "ctl-9" {
			t.Fatalf("last trace = %q, want ctl-9", last.LastTrace)
		}
		got, err := ctl.Do("n1", &Request{Op: OpTrace, Name: "ctl-9"})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Spans) != 2 || got.Spans[0].ID != "ctl-s1" || got.Spans[1].Parent != "ctl-s1" {
			t.Fatalf("collected pushed spans = %+v", got.Spans)
		}
	})
}
