package gatekeeper

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/telemetry"
	"padico/internal/vtime"
)

// Target is the thing a gatekeeper steers. In a Padico process it is the
// process's module table (see TargetFor); tests steer stub targets over
// real TCP with the same server.
type Target interface {
	// NodeName identifies the steered process's machine.
	NodeName() string
	// LoadModule loads a module by registered type name.
	LoadModule(name string) error
	// UnloadModule unloads a module; with cascade, dependents go first.
	UnloadModule(name string, cascade bool) error
	// Modules returns the loaded module table.
	Modules() []string
	// Services returns the VLink service table.
	Services() []string
	// Report returns the full control-plane report, including the
	// (comparatively expensive) per-device arbitration counters; the
	// cheap accessors above serve the frequent list operations.
	Report() Stats
}

// Gatekeeper serves the remote-control protocol for one target.
type Gatekeeper struct {
	rt     vtime.Runtime
	tr     orb.Transport
	target Target
	lst    orb.Acceptor

	renewals atomic.Int64 // completed lease renewals (reported in stats)

	mu         sync.Mutex
	tel        *telemetry.Registry // nil until UseTelemetry; all sites nil-safe
	reg        *RegistryClient
	conns      map[orbStream]struct{}
	leaseTTL   time.Duration
	leaseTimer vtime.Timer
	endpoint   string          // advertised real TCP endpoint (wall deployments)
	infoFn     func() NodeInfo // deployment descriptor behind OpInfo
	annPending bool            // an async announce actor is alive
	annDirty   bool            // churn happened since it last read the table
	renewDue   bool            // a lease renewal rides the next announce
	retired    bool            // Withdraw ran: never announce again
	closed     bool
}

// Serve binds the gatekeeper service on the transport and starts accepting
// control connections.
func Serve(rt vtime.Runtime, tr orb.Transport, target Target) (*Gatekeeper, error) {
	lst, err := tr.Listen(Service)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", Service, err)
	}
	g := &Gatekeeper{rt: rt, tr: tr, target: target, lst: lst,
		conns: make(map[orbStream]struct{})}
	rt.Go("gatekeeper:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			rt.Go("gatekeeper:conn", func() { g.serve(st) })
		}
	})
	return g, nil
}

// Close stops the gatekeeper: no new control connections are accepted and
// every open one is torn down, so an unloaded gatekeeper no longer steers
// its process through lingering operator sessions.
func (g *Gatekeeper) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	conns := make([]orbStream, 0, len(g.conns))
	for st := range g.conns {
		conns = append(conns, st)
	}
	timer := g.leaseTimer
	g.leaseTimer = nil
	rc := g.reg
	g.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if rc != nil {
		rc.Close()
	}
	_ = g.lst.Close()
	for _, st := range conns {
		_ = st.Close()
	}
}

// UseTelemetry points the gatekeeper at the process's telemetry registry:
// control connections start counting requests, bytes and handle latency,
// trace IDs get recorded, and the metrics/events operations answer from it.
func (g *Gatekeeper) UseTelemetry(tel *telemetry.Registry) {
	g.mu.Lock()
	g.tel = tel
	g.mu.Unlock()
}

func (g *Gatekeeper) telemetry() *telemetry.Registry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tel
}

// UseRegistry points the gatekeeper at the grid-wide registry; Announce and
// the "announce" operation publish through it.
func (g *Gatekeeper) UseRegistry(rc *RegistryClient) {
	g.mu.Lock()
	g.reg = rc
	g.mu.Unlock()
}

// Registry returns the configured registry client, if any.
func (g *Gatekeeper) Registry() *RegistryClient {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reg
}

// SetEndpoint records the daemon's advertised real TCP endpoint; every
// announced entry carries it, so clients anywhere on the wall grid learn
// how to dial this node from the registry alone.
func (g *Gatekeeper) SetEndpoint(addr string) {
	g.mu.Lock()
	g.endpoint = addr
	g.mu.Unlock()
}

// ProvideInfo installs the deployment descriptor answered to OpInfo — live
// deployments snapshot their registry placement and address book here.
func (g *Gatekeeper) ProvideInfo(f func() NodeInfo) {
	g.mu.Lock()
	g.infoFn = f
	g.mu.Unlock()
}

// WatchModules wires the gatekeeper to a process's module-event hook so the
// registry follows every load/unload without anyone calling Announce by
// hand. The hook must not block the loader, so the announce rides a fresh
// actor. The returned cancel removes the hook.
func (g *Gatekeeper) WatchModules(p *core.Process) (cancel func()) {
	return p.OnModuleEvent(func(core.ModuleEvent) { g.announceAsync() })
}

// Entries snapshots the target's publishable services: loaded modules, the
// VLink service table, and the per-profile ORB endpoints. With an endpoint
// set, every entry advertises it.
func (g *Gatekeeper) Entries() []Entry {
	g.mu.Lock()
	addr := g.endpoint
	g.mu.Unlock()
	rep := g.target.Report()
	var out []Entry
	for _, m := range rep.Modules {
		out = append(out, Entry{Node: rep.Node, Kind: "module", Name: m, Addr: addr})
	}
	for _, s := range rep.Services {
		out = append(out, Entry{Node: rep.Node, Kind: "vlink", Name: s, Service: s, Addr: addr})
	}
	for prof, svc := range rep.ORBs {
		out = append(out, Entry{Node: rep.Node, Kind: "orb", Name: prof, Service: svc, Addr: addr})
	}
	return out
}

// Announce publishes the target's current services to the registry,
// replacing this node's previous entries. With a lease running, the
// publish carries the lease TTL so the entries stay soft state.
func (g *Gatekeeper) Announce() error { return g.announce(telemetry.SpanContext{}) }

// announce is Announce threading a caller's span context into the registry
// client, so a steered or traced announce shows its batched flights.
func (g *Gatekeeper) announce(ctx telemetry.SpanContext) error {
	g.mu.Lock()
	rc, ttl, retired := g.reg, g.leaseTTL, g.retired
	g.mu.Unlock()
	if rc == nil {
		return fmt.Errorf("gatekeeper: no registry configured on %s", g.target.NodeName())
	}
	if retired {
		return fmt.Errorf("gatekeeper: %s has withdrawn from the registry", g.target.NodeName())
	}
	return rc.PublishTTLCtx(ctx, g.target.NodeName(), g.Entries(), ttl)
}

// Withdraw is the clean-shutdown counterpart of StartLease: it stops lease
// renewal, retires the gatekeeper from announcing (so no stray renewal
// resurrects the entries), and retracts this node's entries from the
// registry — which tombstones them grid-wide within one sync interval
// instead of leaving them to dangle until the lease TTL runs out. A
// crashed process never gets here and still relies on lease expiry.
func (g *Gatekeeper) Withdraw() error {
	g.mu.Lock()
	rc := g.reg
	timer := g.leaseTimer
	g.leaseTimer = nil
	g.leaseTTL = 0
	g.retired = true
	g.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if rc == nil {
		return nil
	}
	return rc.Withdraw(g.target.NodeName())
}

// DefaultLeaseTTL is the registry lease deployments announce under: a
// crashed process's entries outlive it by at most this long.
const DefaultLeaseTTL = 5 * time.Second

// StartLease turns the gatekeeper's registry presence into soft state: it
// announces immediately with the given TTL and re-announces every ttl/2
// from a runtime timer (virtual under Sim, real under Wall), so a process
// that dies without withdrawing falls out of Lookup within ttl, while a
// merely partitioned one re-appears as soon as an announce gets through.
// The first announce's error is returned; the renewal loop runs regardless
// (best effort) until the gatekeeper closes.
func (g *Gatekeeper) StartLease(ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("gatekeeper: non-positive lease TTL %v", ttl)
	}
	g.mu.Lock()
	if g.reg == nil {
		g.mu.Unlock()
		return fmt.Errorf("gatekeeper: no registry configured on %s", g.target.NodeName())
	}
	g.leaseTTL = ttl
	g.mu.Unlock()
	err := g.Announce()
	g.scheduleLease()
	return err
}

// scheduleLease arms the next renewal. The timer callback must not block
// (Sim runs it on the scheduler's watch), so it only marks the renewal due
// and kicks the shared announce coalescer: a renewal that lands while
// module churn is already publishing rides that announce's round-trip
// instead of paying its own, and a burst of overdue renewals (stalled
// registry recovering) collapses into one flight.
func (g *Gatekeeper) scheduleLease() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed || g.leaseTTL <= 0 {
		return
	}
	g.leaseTimer = g.rt.AfterFunc(g.leaseTTL/2, func() {
		g.mu.Lock()
		g.renewDue = true
		g.mu.Unlock()
		g.kickAnnouncer()
		g.scheduleLease()
	})
}

// announceAsync re-announces from a fresh actor — the module-event hook
// path, which must not block the loader. Bursts of events (a dependency
// chain loading, a cascade unloading) are coalesced: one actor runs at a
// time and re-reads the table once more if churn arrived while it was
// publishing, so an N-module operation costs O(1) registry round-trips,
// not N.
func (g *Gatekeeper) announceAsync() {
	g.mu.Lock()
	if g.closed || g.retired || g.reg == nil {
		g.mu.Unlock()
		return
	}
	g.annDirty = true
	g.mu.Unlock()
	g.kickAnnouncer()
}

// kickAnnouncer ensures the coalescing announce actor is running. The
// actor drains churn (annDirty → full announce) and renewals (renewDue
// alone → in-place lease extension, one batched frame per replica group,
// falling back to a full announce when the registry cannot extend: an old
// replica, or a lease that already expired there).
func (g *Gatekeeper) kickAnnouncer() {
	g.mu.Lock()
	if g.closed || g.retired || g.reg == nil || g.annPending {
		g.mu.Unlock()
		return
	}
	g.annPending = true
	g.mu.Unlock()
	g.rt.Go("gatekeeper:announce:"+g.target.NodeName(), func() {
		for {
			g.mu.Lock()
			if g.closed || (!g.annDirty && !g.renewDue) {
				g.annPending = false
				g.mu.Unlock()
				return
			}
			dirty := g.annDirty
			renew := g.renewDue
			rc, ttl := g.reg, g.leaseTTL
			g.annDirty, g.renewDue = false, false
			g.mu.Unlock()
			// Root span per announce round — recorded only when this
			// daemon's sampling policy says so, so steady-state renewals
			// stay free by default.
			sp := g.telemetry().StartSpan("gk.announce")
			if renew && !dirty {
				sp.Annotate("renew", "true")
			}
			var err error
			if dirty || rc == nil || ttl <= 0 {
				err = g.announce(sp.Context()) // Entries() snapshots the table at publish time
			} else if err = rc.RenewLeaseCtx(sp.Context(), g.target.NodeName(), ttl); err != nil {
				// The cheap path didn't take — re-establish the lease with
				// the full entry set.
				sp.Annotate("renew_fallback", "true")
				err = g.announce(sp.Context())
			}
			sp.End()
			if renew {
				if err == nil {
					g.renewals.Add(1)
					g.telemetry().Counter("gk.lease_renewals").Inc()
				} else {
					g.telemetry().Counter("gk.lease_renew_failures").Inc()
				}
			}
		}
	})
}

// serve handles one control connection: a sequence of framed requests.
func (g *Gatekeeper) serve(raw orbStream) {
	tel := g.telemetry()
	// Count the connection's protocol bytes; with no telemetry configured
	// the nil counters drop them.
	var st orbStream = telemetry.CountStream(raw,
		tel.Counter("gk.bytes_in"), tel.Counter("gk.bytes_out"))
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		st.Close()
		return
	}
	g.conns[st] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.conns, st)
		g.mu.Unlock()
		st.Close()
	}()
	for {
		req, err := ReadRequest(st)
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		// Mark busy: a Close triggered by this very request (e.g. an
		// unload of the gatekeeper module) must let the response flush
		// before the connection dies.
		delete(g.conns, st)
		g.mu.Unlock()
		tel.Counter("gk.requests").Inc()
		tel.Trace(req.TraceID, "gk.recv", "op="+req.Op)
		// Requests carrying a span context get a server-side child span —
		// the root's sampling decision propagates, local policy does not
		// apply. Span-less requests cost one comparison here.
		sp := tel.StartSpanCtx(telemetry.SpanContext{Trace: req.TraceID, Span: req.Span}, "gk."+req.Op)
		start := tel.Now()
		resp := g.handle(req, sp)
		tel.Histogram("gk.handle").Observe(tel.Since(start))
		sp.End()
		resp.TraceID = req.TraceID
		err = WriteResponse(st, resp)
		g.mu.Lock()
		closed := g.closed
		if !closed {
			g.conns[st] = struct{}{}
		}
		g.mu.Unlock()
		if err != nil || closed {
			return
		}
	}
}

// handle dispatches one request. sp is the server-side span of this request
// (nil when untraced), threaded into handlers that fan further out so their
// downstream flights parent under it.
func (g *Gatekeeper) handle(req *Request, sp *telemetry.ActiveSpan) *Response {
	fail := func(err error) *Response { return &Response{Error: err.Error()} }
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpLoad:
		if err := g.target.LoadModule(req.Module); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpUnload:
		if err := g.target.UnloadModule(req.Module, req.Cascade); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpListModules:
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpListServices:
		return &Response{OK: true, Services: g.target.Services()}
	case OpStats:
		rep := g.target.Report()
		rep.UptimeMillis = int64(g.rt.Now().Duration() / time.Millisecond)
		rep.LeaseRenewals = g.renewals.Load()
		sort.Slice(rep.Devices, func(i, j int) bool {
			return rep.Devices[i].Name < rep.Devices[j].Name
		})
		return &Response{OK: true, Stats: &rep}
	case OpMetrics:
		// Stamp uptime into the snapshot so scrapers can turn counters into
		// rates without a second stats round-trip.
		g.telemetry().Gauge("uptime_ms").Set(int64(g.rt.Now().Duration() / time.Millisecond))
		snap := g.telemetry().Snapshot()
		if snap.Node == "" {
			snap.Node = g.target.NodeName()
		}
		return &Response{OK: true, Metrics: snap}
	case OpEvents:
		return &Response{OK: true, Events: g.telemetry().Events(req.Max)}
	case OpTrace:
		tel := g.telemetry()
		last, at := tel.LastTrace()
		id := req.Name
		if id == "" {
			id = last
		}
		resp := &Response{OK: true, LastTrace: last, LastTraceAtMicros: at}
		if id != "" {
			resp.Spans = tel.Spans(id)
		}
		return resp
	case OpTracePut:
		tel := g.telemetry()
		tel.PutSpans(req.Spans)
		// The freshest root among the pushed spans anchors `trace -last`.
		for i := len(req.Spans) - 1; i >= 0; i-- {
			if s := req.Spans[i]; s.Parent == "" && s.Trace != "" {
				tel.NoteLastTrace(s.Trace)
				break
			}
		}
		return &Response{OK: true}
	case OpAnnounce:
		if err := g.announce(sp.Context()); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Entries: g.Entries()}
	case OpInfo:
		g.mu.Lock()
		f, ep := g.infoFn, g.endpoint
		g.mu.Unlock()
		info := NodeInfo{}
		if f != nil {
			info = f()
		}
		if info.Node == "" {
			info.Node = g.target.NodeName()
		}
		if info.Addr == "" {
			info.Addr = ep
		}
		return &Response{OK: true, Info: &info}
	default:
		return fail(fmt.Errorf("unknown operation %q", req.Op))
	}
}

// orbStream is the stream type flowing out of orb.Acceptor.
type orbStream interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}

// processTarget steers a Padico process.
type processTarget struct{ p *core.Process }

// TargetFor adapts a Padico process into a steerable Target.
func TargetFor(p *core.Process) Target { return processTarget{p} }

func (t processTarget) NodeName() string { return t.p.Node().Name }

func (t processTarget) LoadModule(name string) error { return t.p.Load(name) }

func (t processTarget) Modules() []string { return t.p.Modules() }

func (t processTarget) Services() []string { return t.p.Services() }

func (t processTarget) UnloadModule(name string, cascade bool) error {
	if cascade {
		return t.p.UnloadCascade(name)
	}
	return t.p.Unload(name)
}

func (t processTarget) Report() Stats {
	node := t.p.Node()
	rep := Stats{
		Node:     node.Name,
		Modules:  t.p.Modules(),
		Services: t.p.Services(),
		ORBs:     t.p.ORBServices(),
	}
	for _, dev := range t.p.Grid().Arb.Devices() {
		if !dev.Fabric.Attached(node) {
			continue
		}
		routed, dropped := dev.Stats()
		rep.Devices = append(rep.Devices, DeviceStats{
			Name:    dev.Name,
			Kind:    deviceKind(dev.Kind),
			Routed:  routed,
			Dropped: dropped,
			Pending: dev.PendingMsgs(),
		})
	}
	return rep
}

func deviceKind(k simnet.DeviceKind) string {
	switch k {
	case simnet.SAN:
		return "san"
	case simnet.LAN:
		return "lan"
	default:
		return "wan"
	}
}

// The gatekeeper and registry are themselves dynamically loadable modules:
// a process becomes remotely steerable by loading "gatekeeper", and any one
// process hosts the grid-wide registry by loading "registry".
func init() {
	core.RegisterModuleType("gatekeeper", func() core.Module { return &gkModule{} })
	core.RegisterModuleType("registry", func() core.Module { return &regModule{} })
}

var (
	instMu      sync.Mutex
	gatekeepers = make(map[*core.Process]*Gatekeeper)
	registries  = make(map[*core.Process]*Registry)
)

// For returns the gatekeeper serving a process, if the "gatekeeper" module
// is loaded there.
func For(p *core.Process) (*Gatekeeper, bool) {
	instMu.Lock()
	defer instMu.Unlock()
	g, ok := gatekeepers[p]
	return g, ok
}

// RegistryOn returns the registry hosted by a process, if the "registry"
// module is loaded there.
func RegistryOn(p *core.Process) (*Registry, bool) {
	instMu.Lock()
	defer instMu.Unlock()
	r, ok := registries[p]
	return r, ok
}

type gkModule struct {
	p          *core.Process
	gk         *Gatekeeper
	cancelHook func()
}

func (m *gkModule) Name() string       { return "gatekeeper" }
func (m *gkModule) Requires() []string { return []string{"vlink"} }
func (m *gkModule) Init(p *core.Process) error {
	gk, err := Serve(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()}, TargetFor(p))
	if err != nil {
		return err
	}
	gk.UseTelemetry(p.Telemetry())
	m.p, m.gk = p, gk
	// Module churn re-announces automatically: the registry follows every
	// load/unload without anyone calling Announce by hand.
	m.cancelHook = gk.WatchModules(p)
	instMu.Lock()
	gatekeepers[p] = gk
	instMu.Unlock()
	return nil
}
func (m *gkModule) Stop() error {
	m.cancelHook()
	instMu.Lock()
	delete(gatekeepers, m.p)
	instMu.Unlock()
	m.gk.Close()
	return nil
}

// Drain implements core.Drainer: a cleanly closing process retracts its
// registry entries while its links are still up, so they vanish from
// discovery at once instead of dangling until the lease TTL.
func (m *gkModule) Drain() { _ = m.gk.Withdraw() }

type regModule struct {
	p   *core.Process
	reg *Registry
}

func (m *regModule) Name() string       { return "registry" }
func (m *regModule) Requires() []string { return []string{"vlink"} }
func (m *regModule) Init(p *core.Process) error {
	reg, err := StartRegistry(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()})
	if err != nil {
		return err
	}
	reg.UseTelemetry(p.Telemetry())
	m.p, m.reg = p, reg
	instMu.Lock()
	registries[p] = reg
	instMu.Unlock()
	return nil
}
func (m *regModule) Stop() error {
	instMu.Lock()
	delete(registries, m.p)
	instMu.Unlock()
	m.reg.Close()
	return nil
}
