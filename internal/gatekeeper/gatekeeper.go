package gatekeeper

import (
	"fmt"
	"sync"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// Target is the thing a gatekeeper steers. In a Padico process it is the
// process's module table (see TargetFor); tests steer stub targets over
// real TCP with the same server.
type Target interface {
	// NodeName identifies the steered process's machine.
	NodeName() string
	// LoadModule loads a module by registered type name.
	LoadModule(name string) error
	// UnloadModule unloads a module; with cascade, dependents go first.
	UnloadModule(name string, cascade bool) error
	// Modules returns the loaded module table.
	Modules() []string
	// Services returns the VLink service table.
	Services() []string
	// Report returns the full control-plane report, including the
	// (comparatively expensive) per-device arbitration counters; the
	// cheap accessors above serve the frequent list operations.
	Report() Stats
}

// Gatekeeper serves the remote-control protocol for one target.
type Gatekeeper struct {
	rt     vtime.Runtime
	tr     orb.Transport
	target Target
	lst    orb.Acceptor

	mu     sync.Mutex
	reg    *RegistryClient
	conns  map[orbStream]struct{}
	closed bool
}

// Serve binds the gatekeeper service on the transport and starts accepting
// control connections.
func Serve(rt vtime.Runtime, tr orb.Transport, target Target) (*Gatekeeper, error) {
	lst, err := tr.Listen(Service)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: binding %s: %w", Service, err)
	}
	g := &Gatekeeper{rt: rt, tr: tr, target: target, lst: lst,
		conns: make(map[orbStream]struct{})}
	rt.Go("gatekeeper:accept:"+tr.NodeName(), func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			rt.Go("gatekeeper:conn", func() { g.serve(st) })
		}
	})
	return g, nil
}

// Close stops the gatekeeper: no new control connections are accepted and
// every open one is torn down, so an unloaded gatekeeper no longer steers
// its process through lingering operator sessions.
func (g *Gatekeeper) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	conns := make([]orbStream, 0, len(g.conns))
	for st := range g.conns {
		conns = append(conns, st)
	}
	g.mu.Unlock()
	_ = g.lst.Close()
	for _, st := range conns {
		_ = st.Close()
	}
}

// UseRegistry points the gatekeeper at the grid-wide registry; Announce and
// the "announce" operation publish through it.
func (g *Gatekeeper) UseRegistry(rc *RegistryClient) {
	g.mu.Lock()
	g.reg = rc
	g.mu.Unlock()
}

// Registry returns the configured registry client, if any.
func (g *Gatekeeper) Registry() *RegistryClient {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reg
}

// Entries snapshots the target's publishable services: loaded modules, the
// VLink service table, and the per-profile ORB endpoints.
func (g *Gatekeeper) Entries() []Entry {
	rep := g.target.Report()
	var out []Entry
	for _, m := range rep.Modules {
		out = append(out, Entry{Node: rep.Node, Kind: "module", Name: m})
	}
	for _, s := range rep.Services {
		out = append(out, Entry{Node: rep.Node, Kind: "vlink", Name: s, Service: s})
	}
	for prof, svc := range rep.ORBs {
		out = append(out, Entry{Node: rep.Node, Kind: "orb", Name: prof, Service: svc})
	}
	return out
}

// Announce publishes the target's current services to the registry,
// replacing this node's previous entries.
func (g *Gatekeeper) Announce() error {
	rc := g.Registry()
	if rc == nil {
		return fmt.Errorf("gatekeeper: no registry configured on %s", g.target.NodeName())
	}
	return rc.Publish(g.target.NodeName(), g.Entries())
}

// serve handles one control connection: a sequence of framed requests.
func (g *Gatekeeper) serve(st orbStream) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		st.Close()
		return
	}
	g.conns[st] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.conns, st)
		g.mu.Unlock()
		st.Close()
	}()
	for {
		req, err := ReadRequest(st)
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		// Mark busy: a Close triggered by this very request (e.g. an
		// unload of the gatekeeper module) must let the response flush
		// before the connection dies.
		delete(g.conns, st)
		g.mu.Unlock()
		err = WriteResponse(st, g.handle(req))
		g.mu.Lock()
		closed := g.closed
		if !closed {
			g.conns[st] = struct{}{}
		}
		g.mu.Unlock()
		if err != nil || closed {
			return
		}
	}
}

func (g *Gatekeeper) handle(req *Request) *Response {
	fail := func(err error) *Response { return &Response{Error: err.Error()} }
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpLoad:
		if err := g.target.LoadModule(req.Module); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpUnload:
		if err := g.target.UnloadModule(req.Module, req.Cascade); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpListModules:
		return &Response{OK: true, Modules: g.target.Modules()}
	case OpListServices:
		return &Response{OK: true, Services: g.target.Services()}
	case OpStats:
		rep := g.target.Report()
		return &Response{OK: true, Stats: &rep}
	case OpAnnounce:
		if err := g.Announce(); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Entries: g.Entries()}
	default:
		return fail(fmt.Errorf("unknown operation %q", req.Op))
	}
}

// orbStream is the stream type flowing out of orb.Acceptor.
type orbStream interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}

// processTarget steers a Padico process.
type processTarget struct{ p *core.Process }

// TargetFor adapts a Padico process into a steerable Target.
func TargetFor(p *core.Process) Target { return processTarget{p} }

func (t processTarget) NodeName() string { return t.p.Node().Name }

func (t processTarget) LoadModule(name string) error { return t.p.Load(name) }

func (t processTarget) Modules() []string { return t.p.Modules() }

func (t processTarget) Services() []string { return t.p.Services() }

func (t processTarget) UnloadModule(name string, cascade bool) error {
	if cascade {
		return t.p.UnloadCascade(name)
	}
	return t.p.Unload(name)
}

func (t processTarget) Report() Stats {
	node := t.p.Node()
	rep := Stats{
		Node:     node.Name,
		Modules:  t.p.Modules(),
		Services: t.p.Services(),
		ORBs:     t.p.ORBServices(),
	}
	for _, dev := range t.p.Grid().Arb.Devices() {
		if !dev.Fabric.Attached(node) {
			continue
		}
		routed, dropped := dev.Stats()
		rep.Devices = append(rep.Devices, DeviceStats{
			Name:    dev.Name,
			Kind:    deviceKind(dev.Kind),
			Routed:  routed,
			Dropped: dropped,
			Pending: dev.PendingMsgs(),
		})
	}
	return rep
}

func deviceKind(k simnet.DeviceKind) string {
	switch k {
	case simnet.SAN:
		return "san"
	case simnet.LAN:
		return "lan"
	default:
		return "wan"
	}
}

// The gatekeeper and registry are themselves dynamically loadable modules:
// a process becomes remotely steerable by loading "gatekeeper", and any one
// process hosts the grid-wide registry by loading "registry".
func init() {
	core.RegisterModuleType("gatekeeper", func() core.Module { return &gkModule{} })
	core.RegisterModuleType("registry", func() core.Module { return &regModule{} })
}

var (
	instMu      sync.Mutex
	gatekeepers = make(map[*core.Process]*Gatekeeper)
	registries  = make(map[*core.Process]*Registry)
)

// For returns the gatekeeper serving a process, if the "gatekeeper" module
// is loaded there.
func For(p *core.Process) (*Gatekeeper, bool) {
	instMu.Lock()
	defer instMu.Unlock()
	g, ok := gatekeepers[p]
	return g, ok
}

// RegistryOn returns the registry hosted by a process, if the "registry"
// module is loaded there.
func RegistryOn(p *core.Process) (*Registry, bool) {
	instMu.Lock()
	defer instMu.Unlock()
	r, ok := registries[p]
	return r, ok
}

type gkModule struct {
	p  *core.Process
	gk *Gatekeeper
}

func (m *gkModule) Name() string       { return "gatekeeper" }
func (m *gkModule) Requires() []string { return []string{"vlink"} }
func (m *gkModule) Init(p *core.Process) error {
	gk, err := Serve(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()}, TargetFor(p))
	if err != nil {
		return err
	}
	m.p, m.gk = p, gk
	instMu.Lock()
	gatekeepers[p] = gk
	instMu.Unlock()
	return nil
}
func (m *gkModule) Stop() error {
	instMu.Lock()
	delete(gatekeepers, m.p)
	instMu.Unlock()
	m.gk.Close()
	return nil
}

type regModule struct {
	p   *core.Process
	reg *Registry
}

func (m *regModule) Name() string       { return "registry" }
func (m *regModule) Requires() []string { return []string{"vlink"} }
func (m *regModule) Init(p *core.Process) error {
	reg, err := StartRegistry(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()})
	if err != nil {
		return err
	}
	m.p, m.reg = p, reg
	instMu.Lock()
	registries[p] = reg
	instMu.Unlock()
	return nil
}
func (m *regModule) Stop() error {
	instMu.Lock()
	delete(registries, m.p)
	instMu.Unlock()
	m.reg.Close()
	return nil
}
