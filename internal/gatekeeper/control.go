package gatekeeper

import (
	"fmt"
	"sync/atomic"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/telemetry"
	"padico/internal/vtime"
)

// Controller is the PadicoControl client side: it dials gatekeepers from
// one seat (any process of the deployment, or a wall-clock TCP host) and
// steers them, one process at a time or fanning out to the whole grid.
type Controller struct {
	rt  vtime.Runtime
	tr  orb.Transport
	tel atomic.Pointer[telemetry.Registry]
}

// NewController returns a controller dialing through the given transport.
func NewController(rt vtime.Runtime, tr orb.Transport) *Controller {
	return &Controller{rt: rt, tr: tr}
}

// FromProcess seats the controller in a Padico process, dialing over its
// VLink linker and minting trace IDs from its telemetry — so any
// cross-node steering from that seat is stitchable across event rings.
func FromProcess(p *core.Process) *Controller {
	c := NewController(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()})
	c.UseTelemetry(p.Telemetry())
	return c
}

// UseTelemetry gives the controller a telemetry registry: every outgoing
// request without a trace ID gets one minted here, and the send is recorded
// in the seat's own event ring. Nil (the default) leaves requests untraced.
func (c *Controller) UseTelemetry(tel *telemetry.Registry) { c.tel.Store(tel) }

func (c *Controller) telemetry() *telemetry.Registry { return c.tel.Load() }

// Conn is a persistent control connection to one gatekeeper, carrying any
// number of request/response exchanges.
type Conn struct {
	node string
	st   orbStream
	tel  *telemetry.Registry
}

// Dial opens a control connection to the gatekeeper on a node.
func (c *Controller) Dial(node string) (*Conn, error) {
	st, err := c.tr.Dial(node, Service)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: dialing %s: %w", node, err)
	}
	return &Conn{node: node, st: st, tel: c.telemetry()}, nil
}

// Node returns the steered node's name.
func (cn *Conn) Node() string { return cn.node }

// Do performs one request/response exchange. A transport failure closes
// the connection; a refused operation returns the response's error with a
// usable *Response. With seat telemetry configured, an untraced request is
// stamped with a fresh trace ID before it leaves; the gatekeeper echoes it
// on the response and records it in its ring.
func (cn *Conn) Do(req *Request) (*Response, error) {
	if req.TraceID == "" {
		if id := cn.tel.NextTraceID(); id != "" {
			req.TraceID = id
		}
	}
	cn.tel.Trace(req.TraceID, "ctl.send", "node="+cn.node+" op="+req.Op)
	defer ArmControlDeadline(cn.st)()
	if err := WriteRequest(cn.st, req); err != nil {
		return nil, fmt.Errorf("gatekeeper: to %s: %w", cn.node, err)
	}
	resp, err := ReadResponse(cn.st)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: from %s: %w", cn.node, err)
	}
	return resp, resp.Err()
}

// Close releases the connection.
func (cn *Conn) Close() { _ = cn.st.Close() }

// Do is a one-shot exchange with the gatekeeper on a node.
func (c *Controller) Do(node string, req *Request) (*Response, error) {
	cn, err := c.Dial(node)
	if err != nil {
		return nil, err
	}
	defer cn.Close()
	return cn.Do(req)
}

// Ping round-trips with a node's gatekeeper.
func (c *Controller) Ping(node string) error {
	_, err := c.Do(node, &Request{Op: OpPing})
	return err
}

// Load loads a module on a node and returns the resulting module table.
func (c *Controller) Load(node, module string) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpLoad, Module: module})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Unload unloads a module on a node; with cascade, dependents go first.
func (c *Controller) Unload(node, module string, cascade bool) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpUnload, Module: module, Cascade: cascade})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Modules lists the modules loaded on a node.
func (c *Controller) Modules(node string) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpListModules})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Info fetches a node's deployment descriptor: advertised endpoint,
// registry placement and peer address book in a live deployment.
func (c *Controller) Info(node string) (*NodeInfo, error) {
	resp, err := c.Do(node, &Request{Op: OpInfo})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no info", node)
	}
	return resp.Info, nil
}

// Stats fetches a node's control-plane report.
func (c *Controller) Stats(node string) (*Stats, error) {
	resp, err := c.Do(node, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no stats", node)
	}
	return resp.Stats, nil
}

// Metrics scrapes a node's telemetry snapshot through the metrics op.
func (c *Controller) Metrics(node string) (*telemetry.Snapshot, error) {
	resp, err := c.Do(node, &Request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no metrics", node)
	}
	return resp.Metrics, nil
}

// Events fetches up to max recent trace events from a node's ring (0 = all
// retained), oldest first.
func (c *Controller) Events(node string, max int) ([]telemetry.Event, error) {
	resp, err := c.Do(node, &Request{Op: OpEvents, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// FanResult is one node's outcome in a fan-out.
type FanResult struct {
	Node string
	Resp *Response
	Err  error
}

// Fanout sends the same request to every node concurrently (one actor per
// node, batched under a wait group) and returns the results in the input
// order — the whole-deployment steering path.
func (c *Controller) Fanout(nodes []string, req *Request) []FanResult {
	// One fan-out is one logical exchange: mint a single trace ID up front
	// (every node's ring records the same ID) — and never from the fanned
	// actors, which share this request.
	if req.TraceID == "" {
		if id := c.telemetry().NextTraceID(); id != "" {
			req.TraceID = id
		}
	}
	out := make([]FanResult, len(nodes))
	wg := vtime.NewWaitGroup(c.rt, "gatekeeper: fanout")
	for i, node := range nodes {
		i, node := i, node
		wg.Add(1)
		c.rt.Go("gatekeeper:fanout:"+node, func() {
			defer wg.Done()
			resp, err := c.Do(node, req)
			out[i] = FanResult{Node: node, Resp: resp, Err: err}
		})
	}
	_ = wg.Wait()
	return out
}
