package gatekeeper

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/telemetry"
	"padico/internal/vtime"
)

// Controller is the PadicoControl client side: it dials gatekeepers from
// one seat (any process of the deployment, or a wall-clock TCP host) and
// steers them, one process at a time or fanning out to the whole grid.
//
// Connections are pooled per node: the first exchange dials, later ones
// reuse the live control stream (on the wall clock that stream is one mux
// stream on the shared per-node-pair session, so steady-state steering
// performs zero TCP dials). A broken pooled stream is redialed once
// transparently; a timed-out exchange is not retried — a wedged peer must
// surface as a fast failure, not a doubled stall.
type Controller struct {
	rt  vtime.Runtime
	tr  orb.Transport
	tel atomic.Pointer[telemetry.Registry]

	// mu guards the pool map only — never held across network I/O (under
	// the simulator that would freeze the virtual clock).
	mu   sync.Mutex
	pool map[string]*pooledConn
}

// pooledConn is one node's slot in the controller pool. sem serializes
// exchanges on the stream (a vtime.Semaphore, so waiting parks correctly
// under the simulator); mu guards only the conn pointer itself.
type pooledConn struct {
	sem *vtime.Semaphore
	mu  sync.Mutex
	cn  *Conn
}

func (pc *pooledConn) get() *Conn {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.cn
}

func (pc *pooledConn) set(cn *Conn) {
	pc.mu.Lock()
	pc.cn = cn
	pc.mu.Unlock()
}

// drop clears the slot if it still holds cn, returning it for closing.
func (pc *pooledConn) drop(cn *Conn) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.cn != cn {
		return false
	}
	pc.cn = nil
	return true
}

// NewController returns a controller dialing through the given transport.
func NewController(rt vtime.Runtime, tr orb.Transport) *Controller {
	return &Controller{rt: rt, tr: tr, pool: make(map[string]*pooledConn)}
}

// FromProcess seats the controller in a Padico process, dialing over its
// VLink linker and minting trace IDs from its telemetry — so any
// cross-node steering from that seat is stitchable across event rings.
func FromProcess(p *core.Process) *Controller {
	c := NewController(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()})
	c.UseTelemetry(p.Telemetry())
	return c
}

// UseTelemetry gives the controller a telemetry registry: every outgoing
// request without a trace ID gets one minted here, and the send is recorded
// in the seat's own event ring. Nil (the default) leaves requests untraced.
func (c *Controller) UseTelemetry(tel *telemetry.Registry) { c.tel.Store(tel) }

func (c *Controller) telemetry() *telemetry.Registry { return c.tel.Load() }

// Conn is a persistent control connection to one gatekeeper, carrying any
// number of request/response exchanges.
type Conn struct {
	node string
	st   orbStream
	tel  *telemetry.Registry
}

// Dial opens a control connection to the gatekeeper on a node.
func (c *Controller) Dial(node string) (*Conn, error) {
	st, err := c.tr.Dial(node, Service)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: dialing %s: %w", node, err)
	}
	return &Conn{node: node, st: st, tel: c.telemetry()}, nil
}

// Node returns the steered node's name.
func (cn *Conn) Node() string { return cn.node }

// Do performs one request/response exchange. A transport failure closes
// the connection; a refused operation returns the response's error with a
// usable *Response. With seat telemetry configured, an untraced request is
// stamped with a fresh trace ID before it leaves; the gatekeeper echoes it
// on the response and records it in its ring.
func (cn *Conn) Do(req *Request) (*Response, error) { return cn.DoTimeout(req, ControlTimeout) }

// DoTimeout is Do with a caller-chosen exchange deadline — health probes
// must judge a peer wedged far sooner than ControlTimeout allows.
func (cn *Conn) DoTimeout(req *Request, d time.Duration) (*Response, error) {
	// An untraced request becomes a root span when the seat samples it —
	// the span context rides the frame so the gatekeeper parents under it.
	// Unsampled (or span-less) seats keep the flat trace-ID mint, so event
	// rings stay stitched either way. Requests arriving pre-stamped belong
	// to a caller's span and are left alone.
	var sp *telemetry.ActiveSpan
	if req.TraceID == "" {
		if sp = cn.tel.StartSpan("ctl." + req.Op); sp != nil {
			sp.Annotate("to", cn.node)
			sc := sp.Context()
			req.TraceID, req.Span = sc.Trace, sc.Span
		} else if id := cn.tel.NextTraceID(); id != "" {
			req.TraceID = id
		}
	}
	defer sp.End()
	cn.tel.Trace(req.TraceID, "ctl.send", "node="+cn.node+" op="+req.Op)
	defer ArmDeadline(cn.st, d)()
	if err := WriteRequest(cn.st, req); err != nil {
		return nil, fmt.Errorf("gatekeeper: to %s: %w", cn.node, err)
	}
	resp, err := ReadResponse(cn.st)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: from %s: %w", cn.node, err)
	}
	return resp, resp.Err()
}

// Pipeline issues a batch of requests on this connection as one flight
// (all writes, then all reads — see the protocol-level Pipeline). Each
// request is trace-stamped like Do.
func (cn *Conn) Pipeline(reqs []*Request) ([]*Response, error) {
	// One pipelined batch is one flight: a single root span covers every
	// untraced request in it (each still records its own ctl.send event).
	var sp *telemetry.ActiveSpan
	spanTried := false
	for _, req := range reqs {
		if req.TraceID == "" {
			if !spanTried {
				spanTried = true
				if sp = cn.tel.StartSpan("ctl.pipeline"); sp != nil {
					sp.Annotate("to", cn.node)
				}
			}
			if sc := sp.Context(); sc.Valid() {
				req.TraceID, req.Span = sc.Trace, sc.Span
			} else if id := cn.tel.NextTraceID(); id != "" {
				req.TraceID = id
			}
		}
		cn.tel.Trace(req.TraceID, "ctl.send", "node="+cn.node+" op="+req.Op)
	}
	defer sp.End()
	defer ArmControlDeadline(cn.st)()
	resps, err := Pipeline(cn.st, reqs)
	if err != nil {
		return resps, fmt.Errorf("gatekeeper: pipeline to %s: %w", cn.node, err)
	}
	return resps, nil
}

// Close releases the connection.
func (cn *Conn) Close() { _ = cn.st.Close() }

// slot returns a node's pool entry, creating it on first use.
func (c *Controller) slot(node string) *pooledConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc, ok := c.pool[node]
	if !ok {
		pc = &pooledConn{sem: vtime.NewSemaphore(c.rt, "gatekeeper: control session "+node, 1)}
		c.pool[node] = pc
	}
	return pc
}

// isTimeout reports an exchange that failed by deadline rather than by a
// broken stream — the peer is wedged, and redialing would only double the
// stall.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// exchange runs one operation against a node's pooled connection: dial on
// first use, retry once on a stale stream (a redeployed or restarted peer
// breaks the pooled conn; the retry dials fresh), never retry a timeout.
// op reports (response-or-nil, error); a non-nil response — even an
// application error — proves the stream healthy.
func (c *Controller) exchange(node string, op func(cn *Conn) (*Response, error)) (*Response, error) {
	pc := c.slot(node)
	if err := pc.sem.Acquire(); err != nil {
		return nil, fmt.Errorf("gatekeeper: control session %s: %w", node, err)
	}
	defer pc.sem.Release()
	for attempt := 0; ; attempt++ {
		cn := pc.get()
		fresh := cn == nil
		if fresh {
			var err error
			if cn, err = c.Dial(node); err != nil {
				return nil, err
			}
			pc.set(cn)
		}
		resp, err := op(cn)
		if err == nil || resp != nil {
			return resp, err
		}
		// Transport failure: the pooled stream is dead either way.
		if pc.drop(cn) {
			cn.Close()
		}
		if fresh || attempt > 0 || isTimeout(err) {
			return nil, err
		}
	}
}

// Do is one exchange with the gatekeeper on a node, over the pooled
// control connection.
func (c *Controller) Do(node string, req *Request) (*Response, error) {
	return c.exchange(node, func(cn *Conn) (*Response, error) { return cn.Do(req) })
}

// DoTimeout is Do with a caller-chosen exchange deadline and no stale-
// stream retry on timeout — the health-probe path.
func (c *Controller) DoTimeout(node string, req *Request, d time.Duration) (*Response, error) {
	return c.exchange(node, func(cn *Conn) (*Response, error) { return cn.DoTimeout(req, d) })
}

// DoPipelined issues a batch of requests to one node as a single flight on
// the pooled connection: one round-trip's latency for the lot. On a stale
// pooled stream the whole batch is retried once as a unit.
func (c *Controller) DoPipelined(node string, reqs []*Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	var resps []*Response
	_, err := c.exchange(node, func(cn *Conn) (*Response, error) {
		var err error
		resps, err = cn.Pipeline(reqs)
		if err != nil {
			if len(resps) > 0 {
				// Mid-batch failure: responses were consumed, so the batch
				// cannot be replayed safely. Surface a healthy-stream marker
				// to stop the retry, and the error itself.
				return &Response{OK: false, Error: err.Error()}, err
			}
			return nil, err
		}
		return resps[0], nil
	})
	if err != nil {
		return nil, err
	}
	return resps, nil
}

// Close releases every pooled control connection. The controller remains
// usable afterwards; later exchanges dial afresh.
func (c *Controller) Close() {
	c.mu.Lock()
	pool := c.pool
	c.pool = make(map[string]*pooledConn)
	c.mu.Unlock()
	for _, pc := range pool {
		if cn := pc.get(); cn != nil && pc.drop(cn) {
			cn.Close()
		}
	}
}

// Ping round-trips with a node's gatekeeper.
func (c *Controller) Ping(node string) error {
	_, err := c.Do(node, &Request{Op: OpPing})
	return err
}

// Load loads a module on a node and returns the resulting module table.
func (c *Controller) Load(node, module string) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpLoad, Module: module})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Unload unloads a module on a node; with cascade, dependents go first.
func (c *Controller) Unload(node, module string, cascade bool) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpUnload, Module: module, Cascade: cascade})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Modules lists the modules loaded on a node.
func (c *Controller) Modules(node string) ([]string, error) {
	resp, err := c.Do(node, &Request{Op: OpListModules})
	if err != nil {
		return nil, err
	}
	return resp.Modules, nil
}

// Info fetches a node's deployment descriptor: advertised endpoint,
// registry placement and peer address book in a live deployment.
func (c *Controller) Info(node string) (*NodeInfo, error) {
	resp, err := c.Do(node, &Request{Op: OpInfo})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no info", node)
	}
	return resp.Info, nil
}

// Stats fetches a node's control-plane report.
func (c *Controller) Stats(node string) (*Stats, error) {
	resp, err := c.Do(node, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no stats", node)
	}
	return resp.Stats, nil
}

// Metrics scrapes a node's telemetry snapshot through the metrics op.
func (c *Controller) Metrics(node string) (*telemetry.Snapshot, error) {
	resp, err := c.Do(node, &Request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return nil, fmt.Errorf("gatekeeper: %s returned no metrics", node)
	}
	return resp.Metrics, nil
}

// Events fetches up to max recent trace events from a node's ring (0 = all
// retained), oldest first.
func (c *Controller) Events(node string, max int) ([]telemetry.Event, error) {
	resp, err := c.Do(node, &Request{Op: OpEvents, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// FanResult is one node's outcome in a fan-out.
type FanResult struct {
	Node string
	Resp *Response
	Err  error
}

// Fanout sends the same request to every node concurrently (one actor per
// node, batched under a wait group) and returns the results in the input
// order — the whole-deployment steering path.
func (c *Controller) Fanout(nodes []string, req *Request) []FanResult {
	// One fan-out is one logical exchange: mint a single trace ID up front
	// (every node's ring records the same ID) — and never from the fanned
	// actors, which share this request. When the seat samples spans, the
	// fan-out is the root and each leg gets its own child span — stamped
	// into a per-node shallow copy, because stamping the shared request
	// from concurrent actors would race.
	tel := c.telemetry()
	var root *telemetry.ActiveSpan
	if req.TraceID == "" {
		if root = tel.StartSpan("ctl." + req.Op); root != nil {
			sc := root.Context()
			req.TraceID, req.Span = sc.Trace, sc.Span
		} else if id := tel.NextTraceID(); id != "" {
			req.TraceID = id
		}
	}
	defer root.End()
	out := make([]FanResult, len(nodes))
	wg := vtime.NewWaitGroup(c.rt, "gatekeeper: fanout")
	for i, node := range nodes {
		i, node := i, node
		wg.Add(1)
		c.rt.Go("gatekeeper:fanout:"+node, func() {
			defer wg.Done()
			r := req
			var leg *telemetry.ActiveSpan
			if root != nil {
				leg = root.Child("ctl.send")
				leg.Annotate("to", node)
				cp := *req
				cp.Span = leg.Context().Span
				r = &cp
			}
			resp, err := c.Do(node, r)
			if err != nil {
				leg.Annotate("error", err.Error())
			}
			leg.End()
			out[i] = FanResult{Node: node, Resp: resp, Err: err}
		})
	}
	_ = wg.Wait()
	return out
}
