// Package gatekeeper is PadicoTM's remote-control plane, reproducing the
// paper's gatekeeper service (§4.2): every Padico process runs a gatekeeper
// module through which an operator — the PadicoControl role — remotely
// loads, runs and unloads modules at run time, inspects the module table
// and the arbitration counters, and publishes the process's services to a
// grid-wide registry answering discovery queries.
//
// The wire protocol is a small framed request/response exchange carried
// over the ORB's Transport abstraction, so it transparently rides VLink
// (sockets on LAN/WAN, cross-paradigm Madeleine streams on a SAN) in the
// simulator and genuine loopback TCP under the wall clock — the same
// portability argument the paper makes for the middleware itself.
package gatekeeper

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"padico/internal/pool"
	"padico/internal/telemetry"
)

// Service is the well-known VLink service name every gatekeeper listens on.
const Service = "padico:gatekeeper"

// RegistryService is the well-known service name of the grid-wide registry.
const RegistryService = "padico:registry"

// Operation names understood by the gatekeeper (and, for the Reg* set, by
// the registry server).
const (
	OpPing         = "ping"
	OpLoad         = "load"
	OpUnload       = "unload"
	OpListModules  = "list-modules"
	OpListServices = "list-services"
	OpStats        = "stats"
	OpAnnounce     = "announce" // push this process's services to the registry
	OpInfo         = "info"     // deployment descriptor: endpoint, registries, peers

	OpRegPublish  = "reg-publish"
	OpRegWithdraw = "reg-withdraw"
	OpRegLookup   = "reg-lookup"
	OpRegList     = "reg-list"
	OpRegSync     = "reg-sync"   // anti-entropy exchange between replicas
	OpRegStatus   = "reg-status" // one replica's replication status

	OpMetrics = "metrics" // telemetry snapshot: counters, gauges, histograms
	OpEvents  = "events"  // recent control-plane trace events
)

// Entry is one published service in the grid-wide registry.
type Entry struct {
	Node    string `json:"node"`              // hosting node name
	Kind    string `json:"kind"`              // "vlink" | "orb" | "module"
	Name    string `json:"name"`              // service/profile/module name
	Service string `json:"service,omitempty"` // dialable VLink service name, if any
	// Addr is the real TCP endpoint of the hosting daemon in a live (wall)
	// deployment, advertised so any client holding the entry can dial the
	// node without static address configuration. Empty in the simulator,
	// where node names resolve through the simulated network instead.
	Addr string `json:"addr,omitempty"`
	// TTLMillis is output-only, set on lookup responses: milliseconds of
	// lease left before the entry expires un-renewed. Zero means the entry
	// is permanent (published without a lease).
	TTLMillis int64 `json:"ttl_remaining_ms,omitempty"`
}

// SyncRecord carries one publishing node's record in an anti-entropy
// exchange between registry replicas. Leases travel as remaining TTL (not
// deadlines), so the receiver re-anchors them on its own clock; versions
// travel as the stamp the accepting replica assigned, for last-writer-wins
// merging.
type SyncRecord struct {
	Node    string  `json:"node"`
	Entries []Entry `json:"entries,omitempty"`
	// TTLMillis is the lease remaining on this record when the snapshot
	// was taken; zero means permanent (never for tombstones).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// StampMicros is the record's version: the runtime instant (µs) at
	// which a replica accepted the publish or withdraw that produced it.
	// The freshest stamp wins on merge.
	StampMicros int64 `json:"stamp_us"`
	// Deleted marks a withdraw tombstone: the node's entries are gone and
	// must not be resurrected by older sync copies while it lasts.
	Deleted bool `json:"deleted,omitempty"`
}

// NodeInfo is one process's deployment descriptor, answered to OpInfo. In a
// live deployment it is how an attaching controller bootstraps: the first
// daemon it reaches names every registry replica and hands over its address
// book, so one endpoint on the command line suffices to steer the grid.
type NodeInfo struct {
	Node string `json:"node"`
	Zone string `json:"zone,omitempty"`
	// Addr is the advertised control endpoint of this process's daemon
	// (empty in the simulator).
	Addr string `json:"addr,omitempty"`
	// Registries names the nodes hosting registry replicas, in this
	// process's preference order.
	Registries []string `json:"registries,omitempty"`
	// Peers is the process's current node → endpoint address book.
	Peers map[string]string `json:"peers,omitempty"`
}

// PeerSyncStatus is one peer replica's view in a RegStatus.
type PeerSyncStatus struct {
	Node  string `json:"node"`
	Syncs int64  `json:"syncs"`    // successful anti-entropy exchanges
	Fails int64  `json:"failures"` // failed attempts (unreachable peer, broken session)
	// LagMillis is the time since the last successful exchange with this
	// peer; -1 when none has succeeded yet.
	LagMillis int64 `json:"lag_ms"`
}

// RegStatus is one registry replica's replication report.
type RegStatus struct {
	Node    string           `json:"node"`    // replica host
	Nodes   int              `json:"nodes"`   // publishing nodes with live records
	Entries int              `json:"entries"` // live entries across those nodes
	Peers   []PeerSyncStatus `json:"peers,omitempty"`
}

// DeviceStats mirrors one arbitration device's counters as seen from a
// process's node.
type DeviceStats struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Routed  int64  `json:"routed"`  // messages demultiplexed (SAN)
	Dropped int64  `json:"dropped"` // malformed envelopes dropped
	Pending int    `json:"pending"` // messages held for unopened ports
}

// Stats is a process's control-plane report.
type Stats struct {
	Node     string            `json:"node"`
	Modules  []string          `json:"modules"`
	Services []string          `json:"services,omitempty"`
	ORBs     map[string]string `json:"orbs,omitempty"` // profile → GIOP service
	Devices  []DeviceStats     `json:"devices,omitempty"`
	// UptimeMillis is how long the process's runtime has been up — virtual
	// milliseconds under Sim, wall milliseconds in a live daemon.
	UptimeMillis int64 `json:"uptime_ms,omitempty"`
	// LeaseRenewals counts registry lease renewals completed by the
	// gatekeeper's timer since the lease started.
	LeaseRenewals int64 `json:"lease_renewals,omitempty"`
}

// Request is one gatekeeper/registry command.
type Request struct {
	Op      string  `json:"op"`
	Module  string  `json:"module,omitempty"`  // load/unload target
	Cascade bool    `json:"cascade,omitempty"` // unload dependents first
	Kind    string  `json:"kind,omitempty"`    // lookup filter
	Name    string  `json:"name,omitempty"`    // lookup filter
	Node    string  `json:"node,omitempty"`    // withdraw target
	Entries []Entry `json:"entries,omitempty"` // publish payload
	// TTLMillis is the soft-state lease on a publish: the entries fall out
	// of Lookup this many milliseconds after the registry accepts them
	// unless re-published. Zero or negative means no lease (permanent).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// From names the replica initiating a reg-sync exchange.
	From string `json:"from,omitempty"`
	// Sync is the initiator's record snapshot on a reg-sync.
	Sync []SyncRecord `json:"sync,omitempty"`
	// TraceID stitches one control exchange across processes: the caller
	// mints it, every hop records it in its event ring, and the response
	// echoes it. Empty from old clients — fully backward-compatible.
	TraceID string `json:"trace,omitempty"`
	// Max bounds the number of events answered to an events request
	// (0 = all retained).
	Max int `json:"max,omitempty"`
}

// Response answers one Request.
type Response struct {
	OK       bool     `json:"ok"`
	Error    string   `json:"error,omitempty"`
	Modules  []string `json:"modules,omitempty"`
	Services []string `json:"services,omitempty"`
	Stats    *Stats   `json:"stats,omitempty"`
	Entries  []Entry  `json:"entries,omitempty"`
	// Sync is the responder's record snapshot answering a reg-sync, so one
	// exchange reconciles both directions (push-pull anti-entropy).
	Sync []SyncRecord `json:"sync,omitempty"`
	// Status answers a reg-status.
	Status *RegStatus `json:"status,omitempty"`
	// Info answers an info request.
	Info *NodeInfo `json:"info,omitempty"`
	// TraceID echoes the request's trace ID.
	TraceID string `json:"trace,omitempty"`
	// Metrics answers a metrics request with the process's telemetry
	// snapshot.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Events answers an events request with recent trace events, oldest
	// first.
	Events []telemetry.Event `json:"events,omitempty"`
}

// Err converts a failed response into an error.
func (r *Response) Err() error {
	if r.OK {
		return nil
	}
	if r.Error == "" {
		return fmt.Errorf("gatekeeper: request failed")
	}
	return fmt.Errorf("gatekeeper: %s", r.Error)
}

// maxFrame bounds one protocol frame; control traffic is tiny, so anything
// bigger is a framing error, not a legitimate message.
const maxFrame = 1 << 20

// ControlTimeout bounds one control-plane request/response exchange on
// transports with real deadlines (wall TCP). Control operations are small
// and fast; a peer that accepts the request and then says nothing for this
// long is wedged, and the caller must get an error so pooled-session
// serialization fails over instead of parking forever. Simulated streams
// carry no deadlines — vtime's deadlock detection plays that role there.
const ControlTimeout = 30 * time.Second

// deadlineConn is the optional stream refinement real TCP conns provide.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// ArmControlDeadline bounds the reads of one control exchange on st, when
// the stream supports deadlines (wall conns do, simulated ones do not).
// The returned disarm clears the deadline so pooled sessions can idle.
func ArmControlDeadline(st any) (disarm func()) { return ArmDeadline(st, ControlTimeout) }

// ArmDeadline bounds the reads of one exchange on st with a caller-chosen
// timeout — health probes, for example, must judge a peer wedged far
// sooner than ControlTimeout allows. No-op on streams without deadlines.
func ArmDeadline(st any, d time.Duration) (disarm func()) {
	dc, ok := st.(deadlineConn)
	if !ok {
		return func() {}
	}
	_ = dc.SetReadDeadline(time.Now().Add(d))
	return func() { _ = dc.SetReadDeadline(time.Time{}) }
}

// frameEncoder is one pooled encode context: the output buffer (length
// prefix + JSON body built in place) and a json.Encoder bound to it, so a
// steady-state writeFrame allocates neither a body nor a frame copy.
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var frameEncoders = sync.Pool{New: func() any {
	e := new(frameEncoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// writeFrame sends a 4-byte big-endian length followed by the JSON body in
// one Write. The body carries json.Encoder's trailing newline, which every
// decoder (ours and old daemons': json.Unmarshal) ignores as whitespace —
// the frames stay wire-compatible both directions.
func writeFrame(w io.Writer, v any) error {
	e := frameEncoders.Get().(*frameEncoder)
	defer frameEncoders.Put(e)
	e.buf.Reset()
	var lenb [4]byte
	e.buf.Write(lenb[:]) // length placeholder, patched below
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("gatekeeper: encode: %w", err)
	}
	frame := e.buf.Bytes()
	body := len(frame) - 4
	if body > maxFrame {
		return fmt.Errorf("gatekeeper: frame too large (%d bytes)", body)
	}
	binary.BigEndian.PutUint32(frame, uint32(body))
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader, v any) error {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("gatekeeper: bad frame size %d", n)
	}
	// The body buffer is pooled: json.Unmarshal copies what it keeps, so
	// the bytes are recyclable the moment decoding returns.
	body := pool.Get(int(n))
	defer pool.Put(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("gatekeeper: decode: %w", err)
	}
	return nil
}

// Pipeline issues a batch of requests as one flight: every request is
// written back-to-back onto the stream, then the responses are read in
// order — N exchanges for one round-trip's worth of latency instead of N.
// Servers process frames sequentially per stream, so pipelining is
// compatible with every peer, old daemons included. On error the responses
// collected so far are returned alongside it.
func Pipeline(st io.ReadWriter, reqs []*Request) ([]*Response, error) {
	for _, req := range reqs {
		if err := WriteRequest(st, req); err != nil {
			return nil, err
		}
	}
	resps := make([]*Response, 0, len(reqs))
	for range reqs {
		resp, err := ReadResponse(st)
		if err != nil {
			return resps, err
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// WriteRequest frames a request onto the stream.
func WriteRequest(w io.Writer, req *Request) error { return writeFrame(w, req) }

// ReadRequest reads one framed request.
func ReadRequest(r io.Reader) (*Request, error) {
	req := new(Request)
	if err := readFrame(r, req); err != nil {
		return nil, err
	}
	if req.Op == "" {
		return nil, fmt.Errorf("gatekeeper: request without op")
	}
	return req, nil
}

// WriteResponse frames a response onto the stream.
func WriteResponse(w io.Writer, resp *Response) error { return writeFrame(w, resp) }

// ReadResponse reads one framed response.
func ReadResponse(r io.Reader) (*Response, error) {
	resp := new(Response)
	if err := readFrame(r, resp); err != nil {
		return nil, err
	}
	return resp, nil
}
