// Package gatekeeper is PadicoTM's remote-control plane, reproducing the
// paper's gatekeeper service (§4.2): every Padico process runs a gatekeeper
// module through which an operator — the PadicoControl role — remotely
// loads, runs and unloads modules at run time, inspects the module table
// and the arbitration counters, and publishes the process's services to a
// grid-wide registry answering discovery queries.
//
// The wire protocol is a small framed request/response exchange carried
// over the ORB's Transport abstraction, so it transparently rides VLink
// (sockets on LAN/WAN, cross-paradigm Madeleine streams on a SAN) in the
// simulator and genuine loopback TCP under the wall clock — the same
// portability argument the paper makes for the middleware itself.
package gatekeeper

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"padico/internal/pool"
	"padico/internal/telemetry"
)

// Service is the well-known VLink service name every gatekeeper listens on.
const Service = "padico:gatekeeper"

// RegistryService is the well-known service name of the grid-wide registry.
const RegistryService = "padico:registry"

// Operation names understood by the gatekeeper (and, for the Reg* set, by
// the registry server).
const (
	OpPing         = "ping"
	OpLoad         = "load"
	OpUnload       = "unload"
	OpListModules  = "list-modules"
	OpListServices = "list-services"
	OpStats        = "stats"
	OpAnnounce     = "announce" // push this process's services to the registry
	OpInfo         = "info"     // deployment descriptor: endpoint, registries, peers

	OpRegPublish  = "reg-publish"
	OpRegWithdraw = "reg-withdraw"
	OpRegLookup   = "reg-lookup"
	OpRegList     = "reg-list"
	OpRegSync     = "reg-sync"   // anti-entropy exchange between replicas
	OpRegStatus   = "reg-status" // one replica's replication status

	// Sharded-registry operations. Old daemons answer them with an
	// "unknown registry operation" refusal, which clients detect and fall
	// back from, so mixed-version grids keep working.
	OpRegAnnounceBatch = "reg-announce-batch" // per-shard publishes, one frame per replica group
	OpRegRenewBatch    = "reg-renew-batch"    // extend a node's leases without resending entries
	OpRegDigest        = "reg-digest"         // incremental anti-entropy: version digests first
	OpRegPush          = "reg-push"           // records a digest round found the peer missing

	OpMetrics = "metrics" // telemetry snapshot: counters, gauges, histograms
	OpEvents  = "events"  // recent control-plane trace events

	// Causal-tracing collection. OpTrace returns the node's buffered spans
	// for one trace ID (empty ID: the node's most recent operator-initiated
	// trace). OpTracePut ingests finished spans recorded elsewhere — an
	// attached seat flushes its buffer to a daemon before exiting, so
	// `padico-ctl trace -last` can reconstruct the tree after the seat
	// process is gone.
	OpTrace    = "trace"
	OpTracePut = "trace-put"
)

// Entry is one published service in the grid-wide registry.
type Entry struct {
	Node    string `json:"node"`              // hosting node name
	Kind    string `json:"kind"`              // "vlink" | "orb" | "module"
	Name    string `json:"name"`              // service/profile/module name
	Service string `json:"service,omitempty"` // dialable VLink service name, if any
	// Addr is the real TCP endpoint of the hosting daemon in a live (wall)
	// deployment, advertised so any client holding the entry can dial the
	// node without static address configuration. Empty in the simulator,
	// where node names resolve through the simulated network instead.
	Addr string `json:"addr,omitempty"`
	// TTLMillis is output-only, set on lookup responses: milliseconds of
	// lease left before the entry expires un-renewed. Zero means the entry
	// is permanent (published without a lease).
	TTLMillis int64 `json:"ttl_remaining_ms,omitempty"`
}

// EntriesSum fingerprints an entry set for lease renewal: FNV-1a over the
// identity fields of every entry, order-independent (per-entry hashes are
// XOR-folded), so the publisher's announce-time slice and the replica's
// stored copy agree however either happens to be ordered. TTLMillis is
// excluded — it is lookup output, not published content.
func EntriesSum(entries []Entry) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	var sum uint32
	for _, e := range entries {
		h := uint32(offset32)
		for _, s := range []string{e.Node, e.Kind, e.Name, e.Service, e.Addr} {
			for i := 0; i < len(s); i++ {
				h ^= uint32(s[i])
				h *= prime32
			}
			h ^= 0xff // field separator: ("a","") must not collide with ("","a")
			h *= prime32
		}
		sum ^= h
	}
	return sum
}

// SyncRecord carries one publishing node's record in an anti-entropy
// exchange between registry replicas. Leases travel as remaining TTL (not
// deadlines), so the receiver re-anchors them on its own clock; versions
// travel as the stamp the accepting replica assigned, for last-writer-wins
// merging.
type SyncRecord struct {
	Node    string  `json:"node"`
	Entries []Entry `json:"entries,omitempty"`
	// TTLMillis is the lease remaining on this record when the snapshot
	// was taken; zero means permanent (never for tombstones).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// StampMicros is the record's version: the runtime instant (µs) at
	// which a replica accepted the publish or withdraw that produced it.
	// The freshest stamp wins on merge.
	StampMicros int64 `json:"stamp_us"`
	// Deleted marks a withdraw tombstone: the node's entries are gone and
	// must not be resurrected by older sync copies while it lasts.
	Deleted bool `json:"deleted,omitempty"`
}

// ShardPublish is one shard's slice of a node's entry set inside an
// announce-batch: the whole burst rides one frame per replica group instead
// of one frame per shard. An empty Entries still replaces — module churn
// that emptied a shard must clear the stale entries there.
type ShardPublish struct {
	Shard   int     `json:"shard"`
	Entries []Entry `json:"entries,omitempty"`
}

// NodeInfo is one process's deployment descriptor, answered to OpInfo. In a
// live deployment it is how an attaching controller bootstraps: the first
// daemon it reaches names every registry replica and hands over its address
// book, so one endpoint on the command line suffices to steer the grid.
type NodeInfo struct {
	Node string `json:"node"`
	Zone string `json:"zone,omitempty"`
	// Addr is the advertised control endpoint of this process's daemon
	// (empty in the simulator).
	Addr string `json:"addr,omitempty"`
	// Registries names the nodes hosting registry replicas, in this
	// process's preference order.
	Registries []string `json:"registries,omitempty"`
	// Shards is the shard → replica-group map of a hash-partitioned
	// registry, in this process's per-group preference order. Omitted by
	// single-shard deployments, where Registries alone describes the
	// directory — the S=1 wire format is unchanged.
	Shards [][]string `json:"shard_groups,omitempty"`
	// Peers is the process's current node → endpoint address book.
	Peers map[string]string `json:"peers,omitempty"`
}

// PeerSyncStatus is one peer replica's view in a RegStatus.
type PeerSyncStatus struct {
	Node  string `json:"node"`
	Syncs int64  `json:"syncs"`    // successful anti-entropy exchanges
	Fails int64  `json:"failures"` // failed attempts (unreachable peer, broken session)
	// LagMillis is the time since the last successful exchange with this
	// peer; -1 when none has succeeded yet.
	LagMillis int64 `json:"lag_ms"`
}

// ShardStatus is one hosted shard's slice of a RegStatus.
type ShardStatus struct {
	Shard   int              `json:"shard"`
	Nodes   int              `json:"nodes"`   // publishing nodes with live records in this shard
	Entries int              `json:"entries"` // live entries across those nodes
	Peers   []PeerSyncStatus `json:"peers,omitempty"`
}

// RegStatus is one registry replica's replication report. The top-level
// counts aggregate across every hosted shard (a node publishing into two
// shards counts once); Shards breaks them down per shard.
type RegStatus struct {
	Node    string           `json:"node"`    // replica host
	Nodes   int              `json:"nodes"`   // publishing nodes with live records
	Entries int              `json:"entries"` // live entries across those nodes
	Peers   []PeerSyncStatus `json:"peers,omitempty"`
	Shards  []ShardStatus    `json:"shards,omitempty"`
}

// DeviceStats mirrors one arbitration device's counters as seen from a
// process's node.
type DeviceStats struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Routed  int64  `json:"routed"`  // messages demultiplexed (SAN)
	Dropped int64  `json:"dropped"` // malformed envelopes dropped
	Pending int    `json:"pending"` // messages held for unopened ports
}

// Stats is a process's control-plane report.
type Stats struct {
	Node     string            `json:"node"`
	Modules  []string          `json:"modules"`
	Services []string          `json:"services,omitempty"`
	ORBs     map[string]string `json:"orbs,omitempty"` // profile → GIOP service
	Devices  []DeviceStats     `json:"devices,omitempty"`
	// UptimeMillis is how long the process's runtime has been up — virtual
	// milliseconds under Sim, wall milliseconds in a live daemon.
	UptimeMillis int64 `json:"uptime_ms,omitempty"`
	// LeaseRenewals counts registry lease renewals completed by the
	// gatekeeper's timer since the lease started.
	LeaseRenewals int64 `json:"lease_renewals,omitempty"`
}

// Request is one gatekeeper/registry command.
type Request struct {
	Op      string  `json:"op"`
	Module  string  `json:"module,omitempty"`  // load/unload target
	Cascade bool    `json:"cascade,omitempty"` // unload dependents first
	Kind    string  `json:"kind,omitempty"`    // lookup filter
	Name    string  `json:"name,omitempty"`    // lookup filter
	Node    string  `json:"node,omitempty"`    // withdraw target
	Entries []Entry `json:"entries,omitempty"` // publish payload
	// TTLMillis is the soft-state lease on a publish: the entries fall out
	// of Lookup this many milliseconds after the registry accepts them
	// unless re-published. Zero or negative means no lease (permanent).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// From names the replica initiating a reg-sync exchange.
	From string `json:"from,omitempty"`
	// Sync is the initiator's record snapshot on a reg-sync (or the pushed
	// records on a reg-push).
	Sync []SyncRecord `json:"sync,omitempty"`
	// Shard addresses one shard of a hash-partitioned registry on the
	// registry operations. Zero (omitted on the wire) is shard 0 — the only
	// shard of an unsharded deployment, keeping S=1 frames byte-identical
	// to pre-sharding clients. ShardAll asks a lookup/list to search every
	// shard the replica hosts.
	Shard int `json:"shard,omitempty"`
	// Batch carries the per-shard publishes of a reg-announce-batch.
	Batch []ShardPublish `json:"batch,omitempty"`
	// Shards names the shards a reg-renew-batch extends the node's lease in.
	Shards []int `json:"shards,omitempty"`
	// Sums, aligned with Shards, fingerprints the entry set the publisher
	// believes each shard leases (EntriesSum). A replica whose record does
	// not match reports the shard Missing instead of extending the lease:
	// renewing in place is only sound for content the replica actually
	// holds — a replica that joined the rotation through failover may hold
	// a pre-divergence copy, and a bare deadline bump would keep that stale
	// record alive forever. Omitted (old clients): no content check.
	Sums []uint32 `json:"sums,omitempty"`
	// Digest is the initiator's shard version vector on a reg-digest:
	// publishing node → freshest record stamp (µs). The responder answers
	// with the records it holds fresher plus the Want-list of nodes the
	// initiator holds fresher.
	Digest map[string]int64 `json:"digest,omitempty"`
	// TraceID stitches one control exchange across processes: the caller
	// mints it, every hop records it in its event ring, and the response
	// echoes it. Empty from old clients — fully backward-compatible.
	TraceID string `json:"trace,omitempty"`
	// Span is the caller's span ID within TraceID — the parent the receiver
	// hangs its own span under. Empty when the caller traces without spans
	// (events-only) or predates the span model.
	Span string `json:"span,omitempty"`
	// Spans carries finished spans on a trace-put.
	Spans []telemetry.Span `json:"spans,omitempty"`
	// Max bounds the number of events answered to an events request
	// (0 = all retained).
	Max int `json:"max,omitempty"`
}

// Response answers one Request.
type Response struct {
	OK       bool     `json:"ok"`
	Error    string   `json:"error,omitempty"`
	Modules  []string `json:"modules,omitempty"`
	Services []string `json:"services,omitempty"`
	Stats    *Stats   `json:"stats,omitempty"`
	Entries  []Entry  `json:"entries,omitempty"`
	// Sync is the responder's record snapshot answering a reg-sync, so one
	// exchange reconciles both directions (push-pull anti-entropy). On a
	// reg-digest it carries only the records the responder holds fresher
	// than the initiator's digest.
	Sync []SyncRecord `json:"sync,omitempty"`
	// Want names the publishing nodes the reg-digest initiator holds
	// fresher than the responder; the initiator pushes them back.
	Want []string `json:"want,omitempty"`
	// Missing names the shards a reg-renew-batch found no live leased
	// record in — the publisher must fall back to a full announce there.
	Missing []int `json:"missing,omitempty"`
	// Status answers a reg-status.
	Status *RegStatus `json:"status,omitempty"`
	// Info answers an info request.
	Info *NodeInfo `json:"info,omitempty"`
	// TraceID echoes the request's trace ID.
	TraceID string `json:"trace,omitempty"`
	// Metrics answers a metrics request with the process's telemetry
	// snapshot.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Events answers an events request with recent trace events, oldest
	// first.
	Events []telemetry.Event `json:"events,omitempty"`
	// Spans answers a trace request with the node's buffered spans for the
	// requested trace, oldest first.
	Spans []telemetry.Span `json:"spans,omitempty"`
	// LastTrace and LastTraceAtMicros report the node's most recent
	// operator-initiated trace on a trace request, so `trace -last` can
	// pick the freshest anchor across the grid.
	LastTrace         string `json:"last_trace,omitempty"`
	LastTraceAtMicros int64  `json:"last_trace_us,omitempty"`
}

// Err converts a failed response into an error.
func (r *Response) Err() error {
	if r.OK {
		return nil
	}
	if r.Error == "" {
		return fmt.Errorf("gatekeeper: request failed")
	}
	return fmt.Errorf("gatekeeper: %s", r.Error)
}

// maxFrame bounds one protocol frame; control traffic is tiny, so anything
// bigger is a framing error, not a legitimate message.
const maxFrame = 1 << 20

// ControlTimeout bounds one control-plane request/response exchange on
// transports with real deadlines (wall TCP). Control operations are small
// and fast; a peer that accepts the request and then says nothing for this
// long is wedged, and the caller must get an error so pooled-session
// serialization fails over instead of parking forever. Simulated streams
// carry no deadlines — vtime's deadlock detection plays that role there.
const ControlTimeout = 30 * time.Second

// deadlineConn is the optional stream refinement real TCP conns provide.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// ArmControlDeadline bounds the reads of one control exchange on st, when
// the stream supports deadlines (wall conns do, simulated ones do not).
// The returned disarm clears the deadline so pooled sessions can idle.
func ArmControlDeadline(st any) (disarm func()) { return ArmDeadline(st, ControlTimeout) }

// ArmDeadline bounds the reads of one exchange on st with a caller-chosen
// timeout — health probes, for example, must judge a peer wedged far
// sooner than ControlTimeout allows. No-op on streams without deadlines.
func ArmDeadline(st any, d time.Duration) (disarm func()) {
	dc, ok := st.(deadlineConn)
	if !ok {
		return func() {}
	}
	_ = dc.SetReadDeadline(time.Now().Add(d))
	return func() { _ = dc.SetReadDeadline(time.Time{}) }
}

// frameEncoder is one pooled encode context: the output buffer (length
// prefix + JSON body built in place) and a json.Encoder bound to it, so a
// steady-state writeFrame allocates neither a body nor a frame copy.
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var frameEncoders = sync.Pool{New: func() any {
	e := new(frameEncoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// writeFrame sends a 4-byte big-endian length followed by the JSON body in
// one Write. The body carries json.Encoder's trailing newline, which every
// decoder (ours and old daemons': json.Unmarshal) ignores as whitespace —
// the frames stay wire-compatible both directions.
func writeFrame(w io.Writer, v any) error {
	e := frameEncoders.Get().(*frameEncoder)
	defer frameEncoders.Put(e)
	e.buf.Reset()
	var lenb [4]byte
	e.buf.Write(lenb[:]) // length placeholder, patched below
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("gatekeeper: encode: %w", err)
	}
	frame := e.buf.Bytes()
	body := len(frame) - 4
	if body > maxFrame {
		return fmt.Errorf("gatekeeper: frame too large (%d bytes)", body)
	}
	binary.BigEndian.PutUint32(frame, uint32(body))
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader, v any) error {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("gatekeeper: bad frame size %d", n)
	}
	// The body buffer is pooled: json.Unmarshal copies what it keeps, so
	// the bytes are recyclable the moment decoding returns.
	body := pool.Get(int(n))
	defer pool.Put(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("gatekeeper: decode: %w", err)
	}
	return nil
}

// Pipeline issues a batch of requests as one flight: every request is
// written back-to-back onto the stream, then the responses are read in
// order — N exchanges for one round-trip's worth of latency instead of N.
// Servers process frames sequentially per stream, so pipelining is
// compatible with every peer, old daemons included. On error the responses
// collected so far are returned alongside it.
func Pipeline(st io.ReadWriter, reqs []*Request) ([]*Response, error) {
	for _, req := range reqs {
		if err := WriteRequest(st, req); err != nil {
			return nil, err
		}
	}
	resps := make([]*Response, 0, len(reqs))
	for range reqs {
		resp, err := ReadResponse(st)
		if err != nil {
			return resps, err
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// WriteRequest frames a request onto the stream.
func WriteRequest(w io.Writer, req *Request) error { return writeFrame(w, req) }

// ReadRequest reads one framed request.
func ReadRequest(r io.Reader) (*Request, error) {
	req := new(Request)
	if err := readFrame(r, req); err != nil {
		return nil, err
	}
	if req.Op == "" {
		return nil, fmt.Errorf("gatekeeper: request without op")
	}
	return req, nil
}

// WriteResponse frames a response onto the stream.
func WriteResponse(w io.Writer, resp *Response) error { return writeFrame(w, resp) }

// ReadResponse reads one framed response.
func ReadResponse(r io.Reader) (*Response, error) {
	resp := new(Response)
	if err := readFrame(r, resp); err != nil {
		return nil, err
	}
	return resp, nil
}
