package gatekeeper

// The registry partitions its directory by published name: entry names are
// FNV-1a-hashed into S shards, each owned by its own replica group, so a
// by-name lookup touches exactly one group however large the grid's service
// table grows. S=1 degenerates to the unsharded registry — every name maps
// to shard 0 and the wire carries no shard field at all.

// ShardAll addresses every shard a replica hosts on a lookup/list request —
// the operator path, where one replica's whole holdings are the question.
const ShardAll = -1

// ShardOf maps a published service name to its shard: FNV-1a over the name,
// mod the shard count. Deterministic across processes and runs — every
// client, replica and tool computes the same placement from the same name.
// Non-positive shard counts collapse to a single shard.
func ShardOf(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}
