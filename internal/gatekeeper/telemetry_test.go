package gatekeeper

import (
	"testing"
	"time"

	"padico/internal/telemetry"
)

// TestTracePropagationAcrossNodes is the cross-node tracing e2e: a control
// exchange minted on the seat carries its trace ID through the framed
// protocol, the target's gatekeeper records the same ID in its event ring,
// and the response echoes it back — so one grep over per-node rings
// stitches the whole exchange together.
func TestTracePropagationAcrossNodes(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])

		cn, err := ctl.Dial("n1")
		if err != nil {
			t.Fatal(err)
		}
		defer cn.Close()
		req := &Request{Op: OpListModules}
		resp, err := cn.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if req.TraceID == "" {
			t.Fatal("seat telemetry did not mint a trace ID")
		}
		if resp.TraceID != req.TraceID {
			t.Fatalf("response trace %q, want echo of %q", resp.TraceID, req.TraceID)
		}

		find := func(events []telemetry.Event, what string) (telemetry.Event, bool) {
			for _, e := range events {
				if e.What == what && e.Trace == req.TraceID {
					return e, true
				}
			}
			return telemetry.Event{}, false
		}
		sent, ok := find(procs[0].Telemetry().Events(0), "ctl.send")
		if !ok {
			t.Fatalf("seat ring has no ctl.send for trace %q: %v",
				req.TraceID, procs[0].Telemetry().Events(0))
		}
		recv, ok := find(procs[1].Telemetry().Events(0), "gk.recv")
		if !ok {
			t.Fatalf("target ring has no gk.recv for trace %q: %v",
				req.TraceID, procs[1].Telemetry().Events(0))
		}
		if sent.Detail != "node=n1 op="+OpListModules || recv.Detail != "op="+OpListModules {
			t.Fatalf("event details: sent=%q recv=%q", sent.Detail, recv.Detail)
		}

		// A fan-out is one logical exchange: every target records the SAME
		// trace ID.
		fanReq := &Request{Op: OpPing}
		for _, r := range ctl.Fanout([]string{"n0", "n1"}, fanReq) {
			if r.Err != nil {
				t.Fatalf("fanout %s: %v", r.Node, r.Err)
			}
			if r.Resp.TraceID != fanReq.TraceID {
				t.Fatalf("%s echoed trace %q, fanout minted %q", r.Node, r.Resp.TraceID, fanReq.TraceID)
			}
		}
		for _, p := range procs {
			if _, ok := find(p.Telemetry().Events(0), "gk.recv"); !ok && fanReq.TraceID == req.TraceID {
				t.Fatalf("%s ring missing fanout trace", p.Node().Name)
			}
		}
	})
}

// TestMetricsOpSim exercises the metrics op under virtual time: control
// traffic shows up in the target's counters and handle-latency histogram,
// and the scrape carries the node name.
func TestMetricsOpSim(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])

		const pings = 5
		for i := 0; i < pings; i++ {
			if err := ctl.Ping("n1"); err != nil {
				t.Fatal(err)
			}
		}
		// Advance the virtual clock past a millisecond: pooled control
		// connections make ping rounds so cheap that the sim clock would
		// otherwise still read 0 ms when the uptime gauge is stamped.
		procs[0].Runtime().Sleep(5 * time.Millisecond)
		snap, err := ctl.Metrics("n1")
		if err != nil {
			t.Fatal(err)
		}
		if snap.Node != "n1" {
			t.Fatalf("snapshot node = %q", snap.Node)
		}
		// pings + the metrics request itself.
		if got := snap.Counter("gk.requests"); got < pings+1 {
			t.Fatalf("gk.requests = %d, want >= %d", got, pings+1)
		}
		if h := snap.Hist("gk.handle"); h.Count < pings || h.P99Micros < h.P50Micros {
			t.Fatalf("gk.handle histogram = %+v", h)
		}
		if snap.Counter("gk.bytes_in") == 0 || snap.Counter("gk.bytes_out") == 0 {
			t.Fatalf("byte counters empty: in=%d out=%d",
				snap.Counter("gk.bytes_in"), snap.Counter("gk.bytes_out"))
		}
		if snap.Gauge("uptime_ms") <= 0 {
			t.Fatalf("uptime gauge = %d", snap.Gauge("uptime_ms"))
		}

		// The events op returns the ring through the protocol, trace IDs
		// intact, and honors the max cap.
		events, err := ctl.Events("n1", 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 2 {
			t.Fatalf("events(max=2) returned %d", len(events))
		}
		for _, e := range events {
			if e.What != "gk.recv" || e.Trace == "" {
				t.Fatalf("unexpected ring event %+v", e)
			}
		}
	})
}
