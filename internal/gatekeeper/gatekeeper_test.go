package gatekeeper

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/soap"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// newGrid builds an n-node grid wired with the requested fabrics, so the
// control plane can be exercised over the straight (ethernet sockets) and
// cross-paradigm (Myrinet/Madeleine) VLink mappings.
func newGrid(t *testing.T, n int, fabrics ...string) (*core.Grid, []*simnet.Node) {
	t.Helper()
	g := core.NewGrid()
	nodes := g.AddNodes("n", n)
	for _, f := range fabrics {
		var err error
		switch f {
		case "myrinet":
			_, err = g.AddMyrinet("myri0", nodes)
		case "ethernet":
			_, err = g.AddEthernet("eth0", nodes)
		default:
			t.Fatalf("unknown fabric %q", f)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return g, nodes
}

func launchSteerable(t *testing.T, g *core.Grid, nodes []*simnet.Node) []*core.Process {
	t.Helper()
	procs := make([]*core.Process, len(nodes))
	for i, nd := range nodes {
		p, err := g.Launch(nd)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Load("gatekeeper"); err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	return procs
}

// TestSteerStraight is the acceptance scenario over the socket stack: list
// modules on every process, hot-load "soap" into one, invoke it, unload it.
func TestSteerStraight(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])

		if err := ctl.Ping("n1"); err != nil {
			t.Fatalf("ping: %v", err)
		}
		mods, err := ctl.Modules("n1")
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(mods) != "[gatekeeper vlink]" {
			t.Fatalf("initial modules = %v", mods)
		}

		// Hot-load the SOAP middleware into n1, mid-run, remotely.
		mods, err = ctl.Load("n1", "soap")
		if err != nil {
			t.Fatalf("remote load: %v", err)
		}
		if !procs[1].Loaded("soap") {
			t.Fatalf("soap not loaded on n1 (modules %v)", mods)
		}
		// The freshly loaded middleware answers real SOAP calls.
		out, err := soap.NewClient(procs[0].Linker()).Call(nodes[1], "sys", "modules")
		if err != nil {
			t.Fatalf("soap call after hot-load: %v", err)
		}
		if !strings.Contains(fmt.Sprint(out), "soap") {
			t.Fatalf("sys/modules = %v", out)
		}

		// Stats report the module table, service table and device counters.
		stats, err := ctl.Stats("n1")
		if err != nil {
			t.Fatal(err)
		}
		if stats.Node != "n1" || !strings.Contains(fmt.Sprint(stats.Modules), "soap") {
			t.Fatalf("stats = %+v", stats)
		}
		if !strings.Contains(fmt.Sprint(stats.Services), "soap:sys") ||
			!strings.Contains(fmt.Sprint(stats.Services), Service) {
			t.Fatalf("stats services = %v", stats.Services)
		}
		if len(stats.Devices) != 1 || stats.Devices[0].Name != "eth0" {
			t.Fatalf("stats devices = %+v", stats.Devices)
		}

		// Unload, and verify the middleware is gone.
		if _, err := ctl.Unload("n1", "soap", false); err != nil {
			t.Fatalf("remote unload: %v", err)
		}
		if procs[1].Loaded("soap") {
			t.Fatal("soap still loaded after remote unload")
		}
		if _, err := soap.NewClient(procs[0].Linker()).Call(nodes[1], "sys", "modules"); err == nil {
			t.Fatal("soap service survived unload")
		}

		// Refused operations surface the server-side error.
		if _, err := ctl.Load("n1", "no-such-module"); err == nil {
			t.Fatal("unknown module loaded")
		}
		if _, err := ctl.Unload("n1", "soap", false); err == nil {
			t.Fatal("unloaded a module that is not loaded")
		}
		if _, err := ctl.Unload("n1", "vlink", false); err == nil {
			t.Fatal("unloaded vlink while gatekeeper requires it")
		}

		// An idle persistent control connection, opened before the
		// gatekeeper goes away, must die with it — no steering a
		// decommissioned process through lingering sessions.
		lingering, err := ctl.Dial("n1")
		if err != nil {
			t.Fatal(err)
		}
		defer lingering.Close()

		// Dependency-aware cascade: unloading vlink takes the gatekeeper
		// (its dependent) down first — the response still arrives on the
		// already-open stream.
		if _, err := ctl.Unload("n1", "vlink", true); err != nil {
			t.Fatalf("cascade unload: %v", err)
		}
		if procs[1].Loaded("gatekeeper") || procs[1].Loaded("vlink") {
			t.Fatalf("cascade left %v", procs[1].Modules())
		}
		if err := ctl.Ping("n1"); err == nil {
			t.Fatal("gatekeeper still answering after cascade unload")
		}
		if _, err := lingering.Do(&Request{Op: OpLoad, Module: "soap"}); err == nil {
			t.Fatal("lingering connection still steers the process")
		}
	})
}

// TestSteerCrossParadigm drives the same control protocol over a SAN-only
// grid, where VLink emulates the stream on multiplexed Madeleine ports.
func TestSteerCrossParadigm(t *testing.T) {
	g, nodes := newGrid(t, 2, "myrinet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])
		if err := ctl.Ping("n1"); err != nil {
			t.Fatalf("ping over SAN: %v", err)
		}
		if _, err := ctl.Load("n1", "mpi"); err != nil {
			t.Fatalf("load over SAN: %v", err)
		}
		if !procs[1].Loaded("mpi") {
			t.Fatal("mpi not loaded")
		}
		stats, err := ctl.Stats("n1")
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Devices) != 1 || stats.Devices[0].Kind != "san" {
			t.Fatalf("devices = %+v", stats.Devices)
		}
		// The control exchange itself rode the SAN: messages were demuxed.
		if stats.Devices[0].Routed == 0 {
			t.Fatal("no messages demultiplexed on the SAN")
		}
		if _, err := ctl.Unload("n1", "mpi", false); err != nil {
			t.Fatalf("unload over SAN: %v", err)
		}
	})
}

// TestFanout steers a whole deployment at once: the same request goes to
// every process concurrently, including the controller's own.
func TestFanout(t *testing.T) {
	g, nodes := newGrid(t, 4, "ethernet", "myrinet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		ctl := FromProcess(procs[0])
		names := make([]string, len(nodes))
		for i, nd := range nodes {
			names[i] = nd.Name
		}
		results := ctl.Fanout(names, &Request{Op: OpLoad, Module: "soap"})
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("fanout to %s: %v", r.Node, r.Err)
			}
			if r.Node != names[i] {
				t.Fatalf("result %d for %s, want %s", i, r.Node, names[i])
			}
			if !procs[i].Loaded("soap") {
				t.Fatalf("soap missing on %s", r.Node)
			}
		}
		// A mixed fan-out reports per-node outcomes without aborting.
		results = ctl.Fanout(names[:2], &Request{Op: OpUnload, Module: "soap"})
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("unload on %s: %v", r.Node, r.Err)
			}
		}
		results = ctl.Fanout(names, &Request{Op: OpUnload, Module: "soap"})
		if results[0].Err == nil || results[1].Err == nil {
			t.Fatal("double unload succeeded")
		}
		if results[2].Err != nil || results[3].Err != nil {
			t.Fatalf("unload failed on still-loaded nodes: %v %v", results[2].Err, results[3].Err)
		}
	})
}

// stubTarget lets the TCP test steer something without a simulated grid.
type stubTarget struct {
	mu   sync.Mutex
	mods map[string]bool
}

func (s *stubTarget) NodeName() string { return "tcp-host" }
func (s *stubTarget) LoadModule(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mods[name] {
		return nil
	}
	if name == "bad" {
		return fmt.Errorf("no module type %q registered", name)
	}
	s.mods[name] = true
	return nil
}
func (s *stubTarget) UnloadModule(name string, cascade bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.mods[name] {
		return fmt.Errorf("module %q not loaded", name)
	}
	delete(s.mods, name)
	return nil
}
func (s *stubTarget) Modules() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var mods []string
	for m := range s.mods {
		mods = append(mods, m)
	}
	return mods
}
func (s *stubTarget) Services() []string { return nil }
func (s *stubTarget) Report() Stats {
	return Stats{Node: "tcp-host", Modules: s.Modules()}
}

// TestSteerOverRealTCP runs the same gatekeeper server and controller over
// genuine loopback TCP under the wall clock — the kernel network path.
func TestSteerOverRealTCP(t *testing.T) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	target := &stubTarget{mods: map[string]bool{"vlink": true}}
	gk, err := Serve(wall, orb.TCPTransport{Stack: stack, Name: "tcp-host"}, target)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()

	ctl := NewController(wall, orb.TCPTransport{Stack: stack, Name: "operator"})
	if err := ctl.Ping("tcp-host"); err != nil {
		t.Fatalf("ping over TCP: %v", err)
	}
	if _, err := ctl.Load("tcp-host", "soap"); err != nil {
		t.Fatalf("load over TCP: %v", err)
	}
	mods, err := ctl.Modules("tcp-host")
	if err != nil || !strings.Contains(fmt.Sprint(mods), "soap") {
		t.Fatalf("modules over TCP = %v, %v", mods, err)
	}
	if _, err := ctl.Load("tcp-host", "bad"); err == nil {
		t.Fatal("bad module loaded")
	}
	if _, err := ctl.Unload("tcp-host", "soap", false); err != nil {
		t.Fatalf("unload over TCP: %v", err)
	}
	if _, err := ctl.Unload("tcp-host", "soap", false); err == nil {
		t.Fatal("double unload succeeded")
	}
	// A persistent connection carries many exchanges.
	cn, err := ctl.Dial("tcp-host")
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	for i := 0; i < 5; i++ {
		if _, err := cn.Do(&Request{Op: OpPing}); err != nil {
			t.Fatalf("persistent ping %d: %v", i, err)
		}
	}
	// Unknown operations are refused, not fatal to the connection.
	if _, err := cn.Do(&Request{Op: "reboot"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := cn.Do(&Request{Op: OpPing}); err != nil {
		t.Fatalf("connection died after refused op: %v", err)
	}
}
