package gatekeeper

import (
	"errors"
	"strings"
	"testing"
	"time"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/sockets"
	"padico/internal/vlink"
)

// clientFor builds a pooled registry client seated on a process.
func clientFor(p *core.Process, regNode string) *RegistryClient {
	return NewRegistryClient(p.Runtime(), orb.VLinkTransport{Linker: p.Linker()}, regNode)
}

// TestLinkerDialServiceViaRegistry: the tentpole path — a linker with a
// registry-backed resolver dials a service hosted on a node the caller
// never names, and DialName transparently re-resolves when handed a stale
// node name.
func TestLinkerDialServiceViaRegistry(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		publishEcho(t, procs[1], "n0")

		// No resolver installed: DialService refuses, DialName on an
		// unknown node fails as before.
		if _, err := procs[2].Linker().DialService("vlink", "demo:echo"); !errors.Is(err, vlink.ErrNoResolver) {
			t.Fatalf("DialService without resolver = %v", err)
		}
		if _, err := procs[2].Linker().DialName("ghost", "demo:echo"); err == nil {
			t.Fatal("unknown node dialed without resolver")
		}

		rc := clientFor(procs[2], "n0")
		procs[2].Linker().SetResolver(rc)

		// The caller says only "demo:echo" — the registry finds n1.
		st, err := procs[2].Linker().DialService("vlink", "demo:echo")
		if err != nil {
			t.Fatalf("DialService: %v", err)
		}
		if _, err := st.Write([]byte("name")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "name" {
			t.Fatalf("echo = %q, %v", buf, err)
		}
		st.Close()

		// A stale placement ("the service used to run on old-n9") is
		// transparently re-resolved through the registry.
		st, err = procs[2].Linker().DialName("old-n9", "demo:echo")
		if err != nil {
			t.Fatalf("DialName with stale node: %v", err)
		}
		st.Close()

		// A name nobody published still fails, with the resolver error.
		if _, err := procs[2].Linker().DialService("vlink", "no:such"); err == nil {
			t.Fatal("unpublished service resolved")
		}
	})
}

// TestResolvePrefersSharedFabric: on a partitioned topology (eth0 covers
// n0,n1; eth1 covers n1,n2) the same service is published from both
// partitions; each caller resolves to the replica it can actually reach,
// and the fallback stays deterministic.
func TestResolvePrefersSharedFabric(t *testing.T) {
	g := core.NewGrid()
	nodes := g.AddNodes("n", 3)
	if _, err := g.AddEthernet("eth0", nodes[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEthernet("eth1", nodes[1:]); err != nil {
		t.Fatal(err)
	}
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		// Registry on n1, the only node both partitions reach.
		if err := procs[1].Load("registry"); err != nil {
			t.Fatal(err)
		}
		publishEcho(t, procs[0], "n1")
		publishEcho(t, procs[2], "n1")

		// n2 shares no fabric with n0; resolution must prefer the n2
		// replica over the lexicographically-first n0 entry.
		rc2 := clientFor(procs[2], "n1")
		e, err := rc2.Resolve("vlink", "demo:echo")
		if err != nil {
			t.Fatalf("resolve from n2: %v", err)
		}
		if e.Node != "n2" {
			t.Fatalf("n2 resolved demo:echo to %s, want its reachable replica n2", e.Node)
		}
		st, err := DialService(procs[2].Linker(), rc2, "vlink", "demo:echo")
		if err != nil {
			t.Fatalf("dial preferred replica: %v", err)
		}
		st.Close()

		// And symmetrically from the other partition.
		rc0 := clientFor(procs[0], "n1")
		if e, err := rc0.Resolve("vlink", "demo:echo"); err != nil || e.Node != "n0" {
			t.Fatalf("n0 resolved demo:echo to %v, %v", e, err)
		}

		// A service with no reachable replica falls back to the first
		// dialable entry in registry order — deterministic, and the dial
		// surfaces the topology error.
		lst, err := procs[0].Linker().Listen("island:svc")
		if err != nil {
			t.Fatal(err)
		}
		defer lst.Close()
		gk0, _ := For(procs[0])
		if err := gk0.Announce(); err != nil {
			t.Fatal(err)
		}
		rc2.SetCacheTTL(0)
		if e, err := rc2.Resolve("vlink", "island:svc"); err != nil || e.Node != "n0" {
			t.Fatalf("unreachable fallback = %v, %v", e, err)
		}
		if _, err := DialService(procs[2].Linker(), rc2, "vlink", "island:svc"); err == nil {
			t.Fatal("dialed across a partition")
		}

		// DialName's stale-node fallback must refuse a service that runs
		// on several nodes: the caller named a node, and silently picking
		// a replica would steer the wrong process.
		procs[2].Linker().SetResolver(rc2)
		if _, err := procs[2].Linker().DialName("ghost", "demo:echo"); err == nil ||
			!strings.Contains(err.Error(), "several nodes") {
			t.Fatalf("ambiguous stale-node fallback = %v, want refusal", err)
		}
	})
}

// TestUnreachableRegistryHostFailsFast: a client whose registry host is
// unknown or partitioned errors immediately — even when the client itself
// is installed as the linker's resolver, where dialing through the
// resolver fallback would re-enter the client's own session semaphore.
func TestUnreachableRegistryHostFailsFast(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		rc := clientFor(procs[1], "no-such-host")
		procs[1].Linker().SetResolver(rc)
		if _, err := rc.Lookup("", ""); err == nil ||
			!strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("lookup against unknown registry host = %v, want fast unreachable error", err)
		}
	})
}

// TestLeaseExpirySim: under the simulated runtime, a process that dies
// without withdrawing falls out of Lookup once its lease TTL passes,
// while renewals keep a live process visible well past the TTL.
func TestLeaseExpirySim(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		gk, _ := For(procs[1])
		gk.UseRegistry(clientFor(procs[1], "n0"))
		const ttl = 200 * time.Millisecond
		if err := gk.StartLease(ttl); err != nil {
			t.Fatalf("start lease: %v", err)
		}

		rc := clientFor(procs[2], "n0")
		rc.SetCacheTTL(0)
		probe := func() int {
			entries, err := rc.Lookup("vlink", Service)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			n := 0
			for _, e := range entries {
				if e.Node == "n1" {
					n++
				}
			}
			return n
		}
		if probe() != 1 {
			t.Fatal("n1 not announced under lease")
		}
		// Three TTLs of virtual time with the process alive: the renewal
		// loop keeps the entries fresh.
		g.Sim.Sleep(3 * ttl)
		if probe() != 1 {
			t.Fatal("lease renewal lost a live process")
		}
		// Kill n1 without a withdraw: renewals stop, the lease runs out.
		procs[1].Shutdown()
		g.Sim.Sleep(ttl + ttl/2)
		if probe() != 0 {
			t.Fatal("dead process still in registry after its lease TTL")
		}
	})
}

// TestChurnReannounce: a local load/unload on a live process reaches the
// registry with no manual Announce, via the core module-event hook.
func TestChurnReannounce(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		gk, _ := For(procs[1])
		gk.UseRegistry(clientFor(procs[1], "n0"))
		if err := gk.Announce(); err != nil {
			t.Fatal(err)
		}
		rc := clientFor(procs[0], "n0")
		rc.SetCacheTTL(0)

		if err := procs[1].Load("soap"); err != nil {
			t.Fatal(err)
		}
		g.Sim.Sleep(10 * time.Millisecond) // the hook announces asynchronously
		entries, err := rc.Lookup("module", "soap")
		if err != nil || len(entries) != 1 {
			t.Fatalf("soap after hot-load = %v, %v (no auto re-announce?)", entries, err)
		}
		if _, err := rc.Resolve("vlink", "soap:sys"); err != nil {
			t.Fatalf("soap:sys not resolvable after hot-load: %v", err)
		}

		if err := procs[1].Unload("soap"); err != nil {
			t.Fatal(err)
		}
		g.Sim.Sleep(10 * time.Millisecond)
		entries, err = rc.Lookup("module", "soap")
		if err != nil || len(entries) != 0 {
			t.Fatalf("soap after unload = %v, %v (unload not reflected)", entries, err)
		}
	})
}

// TestPooledSessionSingleStream: any number of operations from one client
// ride one underlying stream, and the resolution cache keeps repeat
// resolves off the wire within a TTL window.
func TestPooledSessionSingleStream(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		reg, ok := RegistryOn(procs[0])
		if !ok {
			t.Fatal("registry instance not tracked")
		}
		base := reg.Sessions() // gatekeeper announces may have connected already

		rc := clientFor(procs[1], "n0")
		for i := 0; i < 10; i++ {
			if _, err := rc.Lookup("", ""); err != nil {
				t.Fatalf("lookup %d: %v", i, err)
			}
		}
		if err := rc.Publish("n1", []Entry{{Node: "n1", Kind: "vlink", Name: "x", Service: "x"}}); err != nil {
			t.Fatal(err)
		}
		if got := reg.Sessions() - base; got != 1 {
			t.Fatalf("11 operations used %d sessions, want 1 pooled session", got)
		}

		// Cached resolution: repeated resolves inside the TTL hit the
		// registry once.
		served := reg.LookupsServed()
		for i := 0; i < 5; i++ {
			if _, err := rc.Resolve("vlink", "x"); err != nil {
				t.Fatalf("resolve %d: %v", i, err)
			}
		}
		if got := reg.LookupsServed() - served; got != 1 {
			t.Fatalf("5 cached resolves cost %d registry lookups, want 1", got)
		}
		// Past the TTL window the registry is consulted again.
		g.Sim.Sleep(DefaultResolveCacheTTL + time.Millisecond)
		if _, err := rc.Resolve("vlink", "x"); err != nil {
			t.Fatal(err)
		}
		if got := reg.LookupsServed() - served; got != 2 {
			t.Fatalf("post-TTL resolve cost %d lookups total, want 2", got)
		}
		// A mutation through this client invalidates its cache at once.
		if err := rc.Withdraw("n1"); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Resolve("vlink", "x"); err == nil ||
			!strings.Contains(err.Error(), "no dialable") {
			t.Fatalf("resolve after withdraw = %v, want registry miss", err)
		}
		rc.Close()
	})
}
