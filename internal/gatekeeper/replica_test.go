package gatekeeper

import (
	"strings"
	"testing"
	"time"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/sockets"
)

// syncInterval is the short anti-entropy period replica tests run at.
const syncInterval = 50 * time.Millisecond

// listenEcho binds an echo service on a process without touching the
// gatekeeper — replica tests wire their own clients.
func listenEcho(t *testing.T, p *core.Process, service string) {
	t.Helper()
	lst, err := p.Linker().Listen(service)
	if err != nil {
		t.Fatal(err)
	}
	p.Runtime().Go("echo", func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			p.Runtime().Go("echo:conn", func() {
				defer st.Close()
				buf := make([]byte, 64)
				for {
					n, err := st.Read(buf)
					if err != nil {
						return
					}
					if _, err := st.Write(buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})
}

// TestSyncMergeSemantics exercises the anti-entropy merge rules directly:
// last-writer-wins on the version stamp, expired records dropped on merge,
// tombstones blocking resurrection, and fresh publishes clearing
// tombstones.
func TestSyncMergeSemantics(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		regA, err := StartRegistry(g.Sim, orb.VLinkTransport{Linker: procs[0].Linker()})
		if err != nil {
			t.Fatal(err)
		}
		defer regA.Close()

		entry := func(node string) []Entry {
			return []Entry{{Node: node, Kind: "vlink", Name: "svc", Service: "svc"}}
		}
		count := func(r *Registry) int { return len(r.Lookup("vlink", "svc")) }

		// A leased record merges in and re-anchors its remaining TTL.
		regA.merge([]SyncRecord{{Node: "m0", Entries: entry("m0"), TTLMillis: 500, StampMicros: 100}})
		if count(regA) != 1 {
			t.Fatal("leased record did not merge")
		}
		// An older stamp must not overwrite it (LWW), a newer one must.
		regA.merge([]SyncRecord{{Node: "m0", Entries: nil, TTLMillis: 500, StampMicros: 50}})
		if count(regA) != 1 {
			t.Fatal("older stamp overwrote a fresher record")
		}
		regA.merge([]SyncRecord{{Node: "m0", Entries: nil, TTLMillis: 500, StampMicros: 200}})
		if count(regA) != 0 {
			t.Fatal("newer stamp did not win the merge")
		}

		// Expired incoming records are dropped on merge.
		regA.merge([]SyncRecord{{Node: "m1", Entries: entry("m1"), TTLMillis: 0, StampMicros: 300, Deleted: true}})
		regA.merge([]SyncRecord{{Node: "m2", Entries: entry("m2"), TTLMillis: -5, StampMicros: 300}})
		if count(regA) != 0 {
			t.Fatal("expired/empty records merged in")
		}

		// A tombstone blocks an older copy from resurrecting the entries…
		regA.merge([]SyncRecord{{Node: "m3", TTLMillis: 1000, StampMicros: 500, Deleted: true}})
		regA.merge([]SyncRecord{{Node: "m3", Entries: entry("m3"), TTLMillis: 500, StampMicros: 400}})
		if count(regA) != 0 {
			t.Fatal("tombstone did not block an older record")
		}
		// …but a genuinely newer publish clears it.
		regA.merge([]SyncRecord{{Node: "m3", Entries: entry("m3"), TTLMillis: 500, StampMicros: 600}})
		if count(regA) != 1 {
			t.Fatal("fresh publish lost to a stale tombstone")
		}

		// Snapshots never ship expired state: after the leases run out,
		// the snapshot is empty and the records were reaped.
		g.Sim.Sleep(2 * time.Second)
		if snap := regA.snapshot(); len(snap) != 0 {
			t.Fatalf("snapshot shipped expired records: %v", snap)
		}
	})
}

// TestReplicaSyncPropagatesEntries is the cross-zone acceptance at the
// gatekeeper layer: an entry published to one replica becomes resolvable
// through the other within one sync interval, and a withdraw's tombstone
// propagates just as fast — no lease expiry involved.
func TestReplicaSyncPropagatesEntries(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		if err := procs[1].Load("registry"); err != nil {
			t.Fatal(err)
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.StartSync([]string{"n1"}, syncInterval)
		regB.StartSync([]string{"n0"}, syncInterval)

		listenEcho(t, procs[2], "demo:echo")
		rcA := clientFor(procs[2], "n0")
		rcA.SetCacheTTL(0)
		if err := rcA.PublishTTL("n2",
			[]Entry{{Node: "n2", Kind: "vlink", Name: "demo:echo", Service: "demo:echo"}},
			time.Minute); err != nil {
			t.Fatal(err)
		}
		// The other replica serves the entry within one sync interval.
		g.Sim.Sleep(syncInterval + time.Millisecond)
		rcB := clientFor(procs[2], "n1")
		rcB.SetCacheTTL(0)
		e, err := rcB.Resolve("vlink", "demo:echo")
		if err != nil || e.Node != "n2" {
			t.Fatalf("replica n1 after one sync interval: %v, %v", e, err)
		}
		// The lookup response reports the lease time remaining.
		entries, err := rcB.Lookup("vlink", "demo:echo")
		if err != nil || len(entries) != 1 || entries[0].TTLMillis <= 0 {
			t.Fatalf("replicated entry TTL = %v, %v", entries, err)
		}

		// A withdraw through one replica tombstones the entries on the
		// other within one sync interval — clean shutdown does not wait
		// for lease expiry.
		if err := rcA.Withdraw("n2"); err != nil {
			t.Fatal(err)
		}
		g.Sim.Sleep(syncInterval + time.Millisecond)
		if _, err := rcB.Resolve("vlink", "demo:echo"); err == nil {
			t.Fatal("withdrawn entry still resolvable through the peer replica")
		}
	})
}

// TestReplicaFailoverSim is the kill-the-primary acceptance under the
// deterministic runtime: with two replicas, shutting the primary's host
// down leaves DialService and lease renewal working through the survivor.
func TestReplicaFailoverSim(t *testing.T) {
	g, nodes := newGrid(t, 4, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		if err := procs[1].Load("registry"); err != nil {
			t.Fatal(err)
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[1])
		regA.StartSync([]string{"n1"}, syncInterval)
		regB.StartSync([]string{"n0"}, syncInterval)

		// n3 serves an echo and leases its table against [n0, n1]; n2
		// resolves through the same replica list.
		listenEcho(t, procs[3], "demo:echo")
		gk3, _ := For(procs[3])
		gk3.UseRegistry(NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[3].Linker()}, "n0", "n1"))
		const ttl = 400 * time.Millisecond
		if err := gk3.StartLease(ttl); err != nil {
			t.Fatal(err)
		}
		rc := NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[2].Linker()}, "n0", "n1")
		rc.SetCacheTTL(0)
		procs[2].Linker().SetResolver(rc)

		dialEcho := func(stage string) {
			st, err := procs[2].Linker().DialService("vlink", "demo:echo")
			if err != nil {
				t.Fatalf("%s: DialService: %v", stage, err)
			}
			if _, err := st.Write([]byte("ping")); err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			buf := make([]byte, 4)
			if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "ping" {
				t.Fatalf("%s: echo = %q, %v", stage, buf, err)
			}
			st.Close()
		}
		dialEcho("before kill")

		// Let the announce replicate, then crash the primary replica's
		// whole process mid-run.
		g.Sim.Sleep(syncInterval + time.Millisecond)
		procs[0].Shutdown()

		// By-name dialing fails over to n1 transparently.
		dialEcho("after kill")

		// Lease renewal keeps flowing through the survivor: well past the
		// TTL, n3's entries are still current on n1.
		g.Sim.Sleep(3 * ttl)
		rcB := clientFor(procs[2], "n1")
		rcB.SetCacheTTL(0)
		entries, err := rcB.Lookup("vlink", "demo:echo")
		if err != nil || len(entries) != 1 {
			t.Fatalf("lease did not survive the failover: %v, %v", entries, err)
		}
		dialEcho("well after kill")
	})
}

// TestReplicaPartition: two zones whose members cannot see the other
// zone's replica host — only the replicas themselves share a WAN to sync
// over. Publishes stay zone-local and still become visible in the other
// zone within one sync interval; a client whose preferred replica is
// unreachable skips it (without dialing through its own resolver) and
// works through the replica it can reach.
func TestReplicaPartition(t *testing.T) {
	g := core.NewGrid()
	r0 := g.Net.NewNode("r0")
	a1 := g.Net.NewNode("a1")
	r1 := g.Net.NewNode("r1")
	b1 := g.Net.NewNode("b1")
	if _, err := g.AddEthernet("ethA", []*simnet.Node{r0, a1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEthernet("ethB", []*simnet.Node{r1, b1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddWAN("wan0", []*simnet.Node{r0, r1}, 5e6, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	g.Run(func() {
		procs := launchSteerable(t, g, []*simnet.Node{r0, a1, r1, b1})
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		if err := procs[2].Load("registry"); err != nil {
			t.Fatal(err)
		}
		regA, _ := RegistryOn(procs[0])
		regB, _ := RegistryOn(procs[2])
		regA.StartSync([]string{"r1"}, syncInterval)
		regB.StartSync([]string{"r0"}, syncInterval)

		// a1 publishes an echo; its only reachable replica is r0.
		listenEcho(t, procs[1], "zoneA:echo")
		rcA := NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[1].Linker()}, "r0", "r1")
		rcA.SetCacheTTL(0)
		if err := rcA.PublishTTL("a1",
			[]Entry{{Node: "a1", Kind: "vlink", Name: "zoneA:echo", Service: "zoneA:echo"}},
			time.Minute); err != nil {
			t.Fatal(err)
		}

		// b1 prefers the (for it unreachable) r0 in its list: operations
		// must skip it and land on r1 — and see zone A's entry there after
		// one WAN sync round.
		g.Sim.Sleep(syncInterval + 15*time.Millisecond)
		rcB := NewRegistryClient(g.Sim, orb.VLinkTransport{Linker: procs[3].Linker()}, "r0", "r1")
		rcB.SetCacheTTL(0)
		entries, err := rcB.Lookup("vlink", "zoneA:echo")
		if err != nil {
			t.Fatalf("lookup across the partition: %v", err)
		}
		if len(entries) != 1 || entries[0].Node != "a1" {
			t.Fatalf("zone A entry not replicated into zone B: %v", entries)
		}
		// The per-replica status confirms who served whom: r1 synced with
		// r0 and holds the record; b1 cannot query r0 at all.
		if _, err := rcB.StatusOf("r0"); err == nil ||
			!strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("status of unreachable replica = %v, want unreachable error", err)
		}
		st, err := rcB.StatusOf("r1")
		if err != nil || st.Nodes == 0 {
			t.Fatalf("status of local replica = %+v, %v", st, err)
		}
		for _, p := range st.Peers {
			if p.Node == "r0" && p.Syncs == 0 {
				t.Fatalf("r1 never synced with r0: %+v", st.Peers)
			}
		}
	})
}
