package gatekeeper

import (
	"testing"

	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/sockets"
)

// publishEcho registers an application VLink service on a process and
// announces it (with the rest of the process's table) to the registry.
func publishEcho(t *testing.T, p *core.Process, regNode string) {
	t.Helper()
	lst, err := p.Linker().Listen("demo:echo")
	if err != nil {
		t.Fatal(err)
	}
	p.Runtime().Go("echo", func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			p.Runtime().Go("echo:conn", func() {
				defer st.Close()
				buf := make([]byte, 64)
				for {
					n, err := st.Read(buf)
					if err != nil {
						return
					}
					if _, err := st.Write(buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})
	gk, ok := For(p)
	if !ok {
		t.Fatal("no gatekeeper on publishing process")
	}
	gk.UseRegistry(NewRegistryClient(p.Linker().Runtime(), orb.VLinkTransport{Linker: p.Linker()}, regNode))
	if err := gk.Announce(); err != nil {
		t.Fatalf("announce: %v", err)
	}
}

// resolveAndEcho looks the service up from another node and round-trips
// bytes over the resolved stream.
func resolveAndEcho(t *testing.T, p *core.Process, regNode, wantNode string) {
	t.Helper()
	rc := NewRegistryClient(p.Linker().Runtime(), orb.VLinkTransport{Linker: p.Linker()}, regNode)
	e, err := rc.Resolve("vlink", "demo:echo")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if e.Node != wantNode {
		t.Fatalf("demo:echo resolved to %s, want %s", e.Node, wantNode)
	}
	st, err := DialService(p.Linker(), rc, "vlink", "demo:echo")
	if err != nil {
		t.Fatalf("dial by name: %v", err)
	}
	defer st.Close()
	if _, err := st.Write([]byte("grid")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "grid" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
}

// TestRegistryDiscoveryStraight: a service published on node A resolves
// from node B and the stream maps straight over ethernet sockets.
func TestRegistryDiscoveryStraight(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		publishEcho(t, procs[1], "n0")
		resolveAndEcho(t, procs[2], "n0", "n1")

		// The announce also published the module table and the gatekeeper
		// service itself.
		rc := NewRegistryClient(procs[2].Linker().Runtime(), orb.VLinkTransport{Linker: procs[2].Linker()}, "n0")
		entries, err := rc.Lookup("module", "")
		if err != nil {
			t.Fatal(err)
		}
		found := map[string]bool{}
		for _, e := range entries {
			found[e.Name] = true
		}
		if !found["gatekeeper"] || !found["vlink"] {
			t.Fatalf("published modules = %v", entries)
		}
		if _, err := rc.Resolve("vlink", Service); err != nil {
			t.Fatalf("gatekeeper service not discoverable: %v", err)
		}

		// Withdraw drops the node's entries; resolution then fails.
		if err := rc.Withdraw("n1"); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Resolve("vlink", "demo:echo"); err == nil {
			t.Fatal("resolved a withdrawn service")
		}
	})
}

// TestRegistryDiscoveryCrossParadigm: the same lookup path over a SAN-only
// grid, where both the registry exchange and the resolved stream ride the
// cross-paradigm Madeleine mapping.
func TestRegistryDiscoveryCrossParadigm(t *testing.T) {
	g, nodes := newGrid(t, 2, "myrinet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		publishEcho(t, procs[0], "n0")
		resolveAndEcho(t, procs[1], "n0", "n0")

		// The whole exchange was demultiplexed over the exclusive SAN.
		dev, ok := g.Arb.Device("myri0")
		if !ok {
			t.Fatal("no myri0")
		}
		if routed, _ := dev.Stats(); routed == 0 {
			t.Fatal("registry traffic did not ride the SAN")
		}
	})
}

// TestRegistryReannounce: announcing twice replaces, not duplicates, a
// node's entries, so the registry follows load/unload churn.
func TestRegistryReannounce(t *testing.T) {
	g, nodes := newGrid(t, 2, "ethernet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		gk, _ := For(procs[1])
		gk.UseRegistry(NewRegistryClient(procs[1].Linker().Runtime(), orb.VLinkTransport{Linker: procs[1].Linker()}, "n0"))
		if err := gk.Announce(); err != nil {
			t.Fatal(err)
		}
		if err := procs[1].Load("soap"); err != nil {
			t.Fatal(err)
		}
		if err := gk.Announce(); err != nil {
			t.Fatal(err)
		}
		rc := gk.Registry()
		entries, err := rc.Lookup("module", "soap")
		if err != nil || len(entries) != 1 {
			t.Fatalf("soap entries = %v, %v", entries, err)
		}
		// Exactly one gatekeeper entry for n1 despite two announces.
		entries, err = rc.Lookup("module", "gatekeeper")
		if err != nil || len(entries) != 1 {
			t.Fatalf("gatekeeper entries = %v, %v", entries, err)
		}
		if _, err := rc.Resolve("vlink", "soap:sys"); err != nil {
			t.Fatalf("soap:sys not discoverable after reannounce: %v", err)
		}

		// The registry itself refuses malformed publishes and unknown ops.
		if err := rc.Publish("", nil); err == nil {
			t.Fatal("publish without node accepted")
		}
		reg, ok := RegistryOn(procs[0])
		if !ok {
			t.Fatal("registry instance not tracked")
		}
		if resp := reg.handle(&Request{Op: "nope"}); resp.OK {
			t.Fatal("unknown registry op accepted")
		}
	})
}

// TestDeployedRegistryEndToEnd drives the path deploy.LaunchAll wires up:
// every spawned process announced itself, so any node resolves any other
// node's gatekeeper through the registry on the first node.
func TestDeployedRegistryEndToEnd(t *testing.T) {
	g, nodes := newGrid(t, 3, "ethernet", "myrinet")
	g.Run(func() {
		procs := launchSteerable(t, g, nodes)
		if err := procs[0].Load("registry"); err != nil {
			t.Fatal(err)
		}
		for _, p := range procs {
			gk, _ := For(p)
			gk.UseRegistry(NewRegistryClient(p.Linker().Runtime(), orb.VLinkTransport{Linker: p.Linker()}, "n0"))
			if err := gk.Announce(); err != nil {
				t.Fatal(err)
			}
		}
		rc := NewRegistryClient(procs[2].Linker().Runtime(), orb.VLinkTransport{Linker: procs[2].Linker()}, "n0")
		entries, err := rc.Lookup("vlink", Service)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("gatekeepers discovered = %v", entries)
		}
	})
}
