package gatekeeper

import (
	"testing"
	"time"

	"padico/internal/orb"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// wallEcho serves one echo service on a TCP transport host and returns the
// published registry entry for it.
func wallEcho(t testing.TB, stack *sockets.TCPStack, host, service string) Entry {
	t.Helper()
	lst, err := (orb.TCPTransport{Stack: stack, Name: host}).Listen(service)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	go func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				buf := make([]byte, 64)
				for {
					n, err := st.Read(buf)
					if err != nil {
						return
					}
					if _, err := st.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return Entry{Node: host, Kind: "vlink", Name: service, Service: service}
}

// TestResolutionOverRealTCP drives the whole name-resolution layer over
// genuine loopback TCP under the wall clock: a pooled client publishes and
// resolves through a real registry, the resolved service is dialed purely
// by name, N operations share one stream, and a broken session re-dials
// transparently after a registry restart.
func TestResolutionOverRealTCP(t *testing.T) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	reg, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-host"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "client"}, "reg-host")
	defer rc.Close()
	e := wallEcho(t, stack, "svc-host", "wall:echo")
	if err := rc.Publish("svc-host", []Entry{e}); err != nil {
		t.Fatal(err)
	}

	// Dial by name: the client code never mentions svc-host.
	tr := orb.TCPTransport{Stack: stack, Name: "client"}
	st, err := DialServiceOn(tr, rc, "vlink", "wall:echo")
	if err != nil {
		t.Fatalf("dial by name over TCP: %v", err)
	}
	if _, err := st.Write([]byte("tcp")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "tcp" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	st.Close()

	// Many operations, one pooled session.
	for i := 0; i < 10; i++ {
		if _, err := rc.Lookup("", ""); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if got := reg.Sessions(); got != 1 {
		t.Fatalf("operations used %d sessions, want 1", got)
	}

	// Registry restart: the pooled session broke underneath the client;
	// the next operation re-dials transparently.
	reg.Close()
	reg2, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-host"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if err := rc.Publish("svc-host", []Entry{e}); err != nil {
		t.Fatalf("publish after registry restart: %v", err)
	}
	if e2, err := rc.Resolve("vlink", "wall:echo"); err != nil || e2.Node != "svc-host" {
		t.Fatalf("resolve after restart = %v, %v", e2, err)
	}
	if got := reg2.Sessions(); got != 1 {
		t.Fatalf("re-dial opened %d sessions on the new registry, want 1", got)
	}
}

// TestLeaseExpiryWall is the lease-liveness acceptance under the wall
// clock: renewals keep a live gatekeeper visible across several TTLs, and
// a killed one (closed without withdrawing) disappears once its lease
// runs out.
func TestLeaseExpiryWall(t *testing.T) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	reg, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-host"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	target := &stubTarget{mods: map[string]bool{"vlink": true}}
	gk, err := Serve(wall, orb.TCPTransport{Stack: stack, Name: "tcp-host"}, target)
	if err != nil {
		t.Fatal(err)
	}
	gk.UseRegistry(NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "tcp-host"}, "reg-host"))
	const ttl = 100 * time.Millisecond
	if err := gk.StartLease(ttl); err != nil {
		t.Fatalf("start lease: %v", err)
	}

	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "observer"}, "reg-host")
	defer rc.Close()
	rc.SetCacheTTL(0)
	probe := func() int {
		entries, err := rc.Lookup("module", "vlink")
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		return len(entries)
	}
	if probe() != 1 {
		t.Fatal("gatekeeper not announced under lease")
	}
	// Stay alive across three TTLs: renewals must keep the entries fresh.
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		if probe() != 1 {
			t.Fatal("live gatekeeper fell out of the registry despite renewals")
		}
		time.Sleep(ttl / 4)
	}
	// Kill the process without a withdraw; the lease must run out.
	gk.Close()
	time.Sleep(ttl + ttl/2)
	if probe() != 0 {
		t.Fatal("dead gatekeeper still in the registry after its lease TTL")
	}
}

// TestReplicaFailoverOverRealTCP is the kill-the-primary acceptance over
// genuine loopback TCP under the wall clock: two replicas under
// anti-entropy, a replica-list client, and a lease-holding gatekeeper all
// keep working when the primary replica dies mid-run.
func TestReplicaFailoverOverRealTCP(t *testing.T) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	const interval = 50 * time.Millisecond
	regA, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer regA.Close()
	regB, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer regB.Close()
	regA.StartSync([]string{"reg-b"}, interval)
	regB.StartSync([]string{"reg-a"}, interval)

	// A gatekeeper leases its table against the replica pair.
	target := &stubTarget{mods: map[string]bool{"vlink": true}}
	gk, err := Serve(wall, orb.TCPTransport{Stack: stack, Name: "tcp-host"}, target)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	gk.UseRegistry(NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "tcp-host"}, "reg-a", "reg-b"))
	const ttl = 200 * time.Millisecond
	if err := gk.StartLease(ttl); err != nil {
		t.Fatal(err)
	}

	// An application service published to the primary replicates to the
	// peer within one sync interval.
	e := wallEcho(t, stack, "svc-host", "wall:ha-echo")
	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "client"}, "reg-a", "reg-b")
	defer rc.Close()
	rc.SetCacheTTL(0)
	if err := rc.PublishTTL("svc-host", []Entry{e}, time.Minute); err != nil {
		t.Fatal(err)
	}
	time.Sleep(interval + 20*time.Millisecond)
	if got := regB.Lookup("vlink", "wall:ha-echo"); len(got) != 1 {
		t.Fatalf("entry not replicated to reg-b within a sync interval: %v", got)
	}

	// Kill the primary. DialService fails over to reg-b transparently.
	regA.Close()
	tr := orb.TCPTransport{Stack: stack, Name: "client"}
	st, err := DialServiceOn(tr, rc, "vlink", "wall:ha-echo")
	if err != nil {
		t.Fatalf("dial by name after primary death: %v", err)
	}
	if _, err := st.Write([]byte("ha!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := sockets.ReadFull(st, buf); err != nil || string(buf) != "ha!" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	st.Close()

	// Lease renewal keeps flowing through the survivor: well past the
	// TTL, the gatekeeper's entries are still current on reg-b.
	time.Sleep(3 * ttl)
	if got := regB.Lookup("module", "vlink"); len(got) != 1 {
		t.Fatalf("lease did not survive the failover: %v", got)
	}
	// And the gatekeeper's client is pinned to the survivor now.
	if got := gk.Registry().RegistryNode(); got != "reg-b" {
		t.Fatalf("lease client pinned to %q, want reg-b", got)
	}
}

// BenchmarkCachedResolve measures the by-name resolution hot path over
// real TCP with the client cache on: however many dials, the registry is
// consulted at most once per cache-TTL window (the reported
// registry_lookups/op metric stays ~0).
func BenchmarkCachedResolve(b *testing.B) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	reg, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-host"})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "client"}, "reg-host")
	defer rc.Close()
	rc.SetCacheTTL(time.Hour) // one TTL window spans the whole benchmark
	e := Entry{Node: "svc-host", Kind: "vlink", Name: "bench:svc", Service: "bench:svc"}
	if err := rc.Publish("svc-host", []Entry{e}); err != nil {
		b.Fatal(err)
	}
	if _, err := rc.Resolve("vlink", "bench:svc"); err != nil { // warm the cache
		b.Fatal(err)
	}
	served := reg.LookupsServed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Resolve("vlink", "bench:svc"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	extra := reg.LookupsServed() - served
	if extra > 0 {
		b.Fatalf("%d resolves inside one TTL window hit the registry %d times, want 0", b.N, extra)
	}
	b.ReportMetric(float64(extra)/float64(b.N), "registry_lookups/op")
}

// BenchmarkUncachedResolve is the contrast: with the cache off, every
// resolve is a registry round-trip (still on the single pooled session).
func BenchmarkUncachedResolve(b *testing.B) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	reg, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-host"})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "client"}, "reg-host")
	defer rc.Close()
	rc.SetCacheTTL(0)
	e := Entry{Node: "svc-host", Kind: "vlink", Name: "bench:svc", Service: "bench:svc"}
	if err := rc.Publish("svc-host", []Entry{e}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Resolve("vlink", "bench:svc"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := reg.Sessions(); got != 1 {
		b.Fatalf("uncached resolves used %d sessions, want 1 pooled", got)
	}
}

// BenchmarkFailedOverResolve measures the resolution path after a replica
// failover: the client's preferred replica is dead, so the first exchange
// pays the failover scan, and every subsequent one rides the pooled
// session to the survivor — steady state must match the uncached single-
// replica path, not pay per-operation failover probes.
func BenchmarkFailedOverResolve(b *testing.B) {
	stack := sockets.NewTCPStack()
	wall := vtime.NewWall()
	reg, err := StartRegistry(wall, orb.TCPTransport{Stack: stack, Name: "reg-live"})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	// "reg-dead" never starts: the preferred replica is unreachable from
	// the first exchange on.
	rc := NewRegistryClient(wall, orb.TCPTransport{Stack: stack, Name: "client"}, "reg-dead", "reg-live")
	defer rc.Close()
	rc.SetCacheTTL(0)
	e := Entry{Node: "svc-host", Kind: "vlink", Name: "bench:svc", Service: "bench:svc"}
	if err := rc.Publish("svc-host", []Entry{e}); err != nil {
		b.Fatal(err)
	}
	if _, err := rc.Resolve("vlink", "bench:svc"); err != nil { // pay the failover once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Resolve("vlink", "bench:svc"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := reg.Sessions(); got != 1 {
		b.Fatalf("failed-over resolves used %d sessions on the survivor, want 1 pooled", got)
	}
}
