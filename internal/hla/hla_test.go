package hla

import (
	"testing"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

func newFederationGrid(t *testing.T, n int) (*vtime.Sim, *arbitration.Arbiter, []*vlink.Linker, []*simnet.Node) {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	var nodes []*simnet.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.NewNode("h"+string(rune('0'+i))))
	}
	arb := arbitration.New(net)
	if _, err := arb.AddSock(net.NewEthernet100("eth0", nodes)); err != nil {
		t.Fatal(err)
	}
	var lns []*vlink.Linker
	for _, nd := range nodes {
		lns = append(lns, vlink.NewLinker(arb, nd))
	}
	return s, arb, lns, nodes
}

func TestPublishSubscribeReflect(t *testing.T) {
	s, arb, lns, nodes := newFederationGrid(t, 3)
	s.Run(func() {
		defer arb.Close()
		for _, ln := range lns {
			defer ln.Close()
		}
		rti, err := StartRTI(lns[0])
		if err != nil {
			t.Fatalf("rti: %v", err)
		}
		defer rti.Close()

		pub, err := Join(lns[1], nodes[0], "transportSim", "chemistry")
		if err != nil {
			t.Fatalf("join pub: %v", err)
		}
		sub, err := Join(lns[2], nodes[0], "transportSim", "visu")
		if err != nil {
			t.Fatalf("join sub: %v", err)
		}
		if err := sub.Subscribe("Density"); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		s.Sleep(1_000_000) // let the subscription register
		if err := pub.Publish("Density", 42, []byte{1, 2, 3}); err != nil {
			t.Fatalf("publish: %v", err)
		}
		u, err := sub.Reflect()
		if err != nil {
			t.Fatalf("reflect: %v", err)
		}
		if u.Class != "Density" || u.Timestamp != 42 || len(u.Data) != 3 {
			t.Fatalf("update = %+v", u)
		}
		pub.Resign()
		sub.Resign()
		if _, err := sub.Reflect(); err == nil {
			t.Fatal("reflect after resign succeeded")
		}
	})
}

func TestPublisherDoesNotEchoToItself(t *testing.T) {
	s, arb, lns, nodes := newFederationGrid(t, 2)
	s.Run(func() {
		defer arb.Close()
		for _, ln := range lns {
			defer ln.Close()
		}
		rti, _ := StartRTI(lns[0])
		defer rti.Close()
		f, err := Join(lns[1], nodes[0], "fed", "solo")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Resign()
		if err := f.Subscribe("X"); err != nil {
			t.Fatal(err)
		}
		s.Sleep(1_000_000)
		if err := f.Publish("X", 1, []byte("self")); err != nil {
			t.Fatal(err)
		}
		s.Sleep(2_000_000)
		if got, ok := f.in.TryPop(); ok {
			t.Fatalf("publisher reflected its own update: %+v", got)
		}
	})
}

func TestUnsubscribedClassNotDelivered(t *testing.T) {
	s, arb, lns, nodes := newFederationGrid(t, 3)
	s.Run(func() {
		defer arb.Close()
		for _, ln := range lns {
			defer ln.Close()
		}
		rti, _ := StartRTI(lns[0])
		defer rti.Close()
		pub, _ := Join(lns[1], nodes[0], "fed", "p")
		sub, _ := Join(lns[2], nodes[0], "fed", "s")
		defer pub.Resign()
		defer sub.Resign()
		_ = sub.Subscribe("Wanted")
		s.Sleep(1_000_000)
		_ = pub.Publish("Unwanted", 5, []byte("no"))
		_ = pub.Publish("Wanted", 6, []byte("yes"))
		u, err := sub.Reflect()
		if err != nil || u.Class != "Wanted" || string(u.Data) != "yes" {
			t.Fatalf("update = %+v, %v", u, err)
		}
	})
}

func TestRecordRoundtrip(t *testing.T) {
	rec := buildRecord('P', []byte("member"), []byte("class"), []byte{9, 9})
	if rec[4] != 'P' {
		t.Fatal("kind lost")
	}
	fields := splitRecord(rec[5:], 3)
	if fields == nil || fields[0] != "member" || fields[1] != "class" || len(fields[2]) != 2 {
		t.Fatalf("fields = %v", fields)
	}
	if splitRecord([]byte{0, 0}, 1) != nil {
		t.Fatal("truncated record parsed")
	}
	if splitRecord([]byte{0, 0, 0, 9, 'x'}, 1) != nil {
		t.Fatal("overlong field parsed")
	}
}
