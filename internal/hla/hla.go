// Package hla substitutes the Certi HLA (High Level Architecture) port of
// §4.3.4: a distributed-simulation run-time infrastructure with
// federations, publish/subscribe object attributes and time-stamp-ordered
// delivery, running over VLink like every other distributed middleware on
// PadicoTM.
package hla

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// RTI is the run-time infrastructure process: it hosts federations and
// routes attribute updates to subscribed federates in timestamp order.
type RTI struct {
	ln  *vlink.Linker
	lst *vlink.Listener

	mu   sync.Mutex
	feds map[string]*federation
}

type federation struct {
	name    string
	members map[string]*memberConn
	subs    map[string]map[string]bool // attribute class → member names
	nextSeq uint64
}

type memberConn struct {
	name string
	st   vlink.Stream
	wsem *vtime.Semaphore
}

// StartRTI serves the infrastructure on the linker's node.
func StartRTI(ln *vlink.Linker) (*RTI, error) {
	lst, err := ln.Listen("hla:rti")
	if err != nil {
		return nil, err
	}
	r := &RTI{ln: ln, lst: lst, feds: make(map[string]*federation)}
	ln.Runtime().Go("hla:rti", func() {
		for {
			st, err := lst.Accept()
			if err != nil {
				return
			}
			ln.Runtime().Go("hla:member", func() { r.serve(st) })
		}
	})
	return r, nil
}

// Close stops the RTI.
func (r *RTI) Close() { _ = r.lst.Close() }

// Wire protocol: length-prefixed records
//
//	JOIN  'J' fed member
//	SUB   'S' fed member class
//	PUB   'P' fed member class timestamp(8B) payload
//	EVT   'E' class timestamp(8B) payload      (RTI → federate)
func (r *RTI) serve(st vlink.Stream) {
	var fed *federation
	var me *memberConn
	defer func() {
		st.Close()
		if fed != nil && me != nil {
			r.mu.Lock()
			delete(fed.members, me.name)
			r.mu.Unlock()
		}
	}()
	for {
		rec, err := readRecord(st)
		if err != nil {
			return
		}
		if len(rec) < 1 {
			continue
		}
		r.chargeNode(len(rec))
		switch rec[0] {
		case 'J':
			fields := splitRecord(rec[1:], 2)
			if fields == nil {
				return
			}
			r.mu.Lock()
			f, ok := r.feds[fields[0]]
			if !ok {
				f = &federation{
					name:    fields[0],
					members: make(map[string]*memberConn),
					subs:    make(map[string]map[string]bool),
				}
				r.feds[fields[0]] = f
			}
			me = &memberConn{name: fields[1], st: st,
				wsem: vtime.NewSemaphore(r.ln.Runtime(), "hla: member write", 1)}
			f.members[fields[1]] = me
			fed = f
			r.mu.Unlock()
		case 'S':
			fields := splitRecord(rec[1:], 3)
			if fields == nil || fed == nil {
				return
			}
			r.mu.Lock()
			if fed.subs[fields[2]] == nil {
				fed.subs[fields[2]] = make(map[string]bool)
			}
			fed.subs[fields[2]][fields[1]] = true
			r.mu.Unlock()
		case 'P':
			fields := splitRecord(rec[1:], 3)
			if fields == nil || fed == nil || len(fields[2]) < 8 {
				return
			}
			class := fields[1]
			payload := fields[2]
			r.mu.Lock()
			var targets []*memberConn
			for name := range fed.subs[class] {
				if m, ok := fed.members[name]; ok && name != fields[0] {
					targets = append(targets, m)
				}
			}
			sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })
			r.mu.Unlock()
			evt := buildRecord('E', []byte(class), []byte(payload))
			for _, m := range targets {
				if err := m.wsem.Acquire(); err != nil {
					continue
				}
				_, _ = m.st.Write(evt)
				m.wsem.Release()
			}
		}
	}
}

func (r *RTI) chargeNode(bytes int) {
	if nd := r.ln.Node(); nd != nil {
		nd.Charge(simnet.HLACost, bytes)
	}
}

// Update is a received attribute reflection.
type Update struct {
	Class     string
	Timestamp uint64
	Data      []byte
}

// Federate is one member of a federation.
type Federate struct {
	ln   *vlink.Linker
	st   vlink.Stream
	wsem *vtime.Semaphore
	name string
	in   *vtime.Queue[Update]
}

// Join connects a federate to the RTI node's federation.
func Join(ln *vlink.Linker, rtiNode *simnet.Node, federationName, memberName string) (*Federate, error) {
	st, err := ln.Dial(rtiNode, "hla:rti")
	if err != nil {
		return nil, fmt.Errorf("hla: joining %s: %w", federationName, err)
	}
	f := &Federate{
		ln:   ln,
		st:   st,
		wsem: vtime.NewSemaphore(ln.Runtime(), "hla: federate write", 1),
		name: memberName,
		in:   vtime.NewQueue[Update](ln.Runtime(), "hla: reflections for "+memberName),
	}
	if err := f.send('J', []byte(federationName), []byte(memberName), nil); err != nil {
		st.Close()
		return nil, err
	}
	ln.Runtime().Go("hla:federate:"+memberName, f.pump)
	return f, nil
}

// Subscribe registers interest in an attribute class.
func (f *Federate) Subscribe(class string) error {
	return f.send('S', []byte(f.name), []byte(f.name), []byte(class))
}

// Publish sends a timestamped attribute update to subscribers.
func (f *Federate) Publish(class string, timestamp uint64, data []byte) error {
	payload := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(payload, timestamp)
	copy(payload[8:], data)
	return f.send('P', []byte(f.name), []byte(class), payload)
}

// Reflect blocks for the next update delivered to this federate.
func (f *Federate) Reflect() (Update, error) {
	u, err := f.in.Pop()
	if err != nil {
		return Update{}, errors.New("hla: federate resigned")
	}
	return u, nil
}

// Resign leaves the federation.
func (f *Federate) Resign() {
	f.st.Close()
	f.in.Close()
}

func (f *Federate) pump() {
	for {
		rec, err := readRecord(f.st)
		if err != nil {
			f.in.Close()
			return
		}
		if len(rec) < 1 || rec[0] != 'E' {
			continue
		}
		fields := splitRecord(rec[1:], 2)
		if fields == nil || len(fields[1]) < 8 {
			continue
		}
		if nd := f.ln.Node(); nd != nil {
			nd.Charge(simnet.HLACost, len(rec))
		}
		f.in.Push(Update{
			Class:     fields[0],
			Timestamp: binary.BigEndian.Uint64([]byte(fields[1])),
			Data:      []byte(fields[1][8:]),
		})
	}
}

func (f *Federate) send(kind byte, a, b, c []byte) error {
	if nd := f.ln.Node(); nd != nil {
		nd.Charge(simnet.HLACost, len(a)+len(b)+len(c))
	}
	var rec []byte
	switch kind {
	case 'J':
		rec = buildRecord('J', a, b)
	case 'S':
		rec = buildRecord('S', a, b, c)
	case 'P':
		rec = buildRecord('P', a, b, c)
	}
	if err := f.wsem.Acquire(); err != nil {
		return err
	}
	defer f.wsem.Release()
	_, err := f.st.Write(rec)
	return err
}

// buildRecord frames kind + length-prefixed fields with an outer length.
func buildRecord(kind byte, fields ...[]byte) []byte {
	inner := []byte{kind}
	for _, f := range fields {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(f)))
		inner = append(inner, l[:]...)
		inner = append(inner, f...)
	}
	out := make([]byte, 4+len(inner))
	binary.BigEndian.PutUint32(out, uint32(len(inner)))
	copy(out[4:], inner)
	return out
}

func readRecord(st vlink.Stream) ([]byte, error) {
	var l [4]byte
	if _, err := io.ReadFull(st, l[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(l[:])
	if n == 0 || n > 1<<28 {
		return nil, errors.New("hla: bad record size")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(st, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// splitRecord parses n length-prefixed fields.
func splitRecord(b []byte, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil
		}
		l := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil
		}
		out = append(out, string(b[:l]))
		b = b[l:]
	}
	return out
}
