package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"padico/internal/vtime"
)

func TestSpanNilSafety(t *testing.T) {
	var r *Registry
	r.SetSpanSampling(1)
	if sp := r.StartSpan("op"); sp != nil {
		t.Fatalf("nil registry minted a span: %+v", sp)
	}
	if sp := r.StartSpanCtx(SpanContext{Trace: "t", Span: "s"}, "op"); sp != nil {
		t.Fatalf("nil registry minted a child span: %+v", sp)
	}
	if got := r.Spans(""); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	r.PutSpans([]Span{{Trace: "t", ID: "x"}})
	r.NoteLastTrace("t")
	if id, at := r.LastTrace(); id != "" || at != 0 {
		t.Fatalf("nil LastTrace = %q, %d", id, at)
	}
	// A nil handle is a universal no-op.
	var sp *ActiveSpan
	sp.Annotate("k", "v")
	if sp.Context().Valid() || sp.TraceID() != "" {
		t.Fatal("nil span has a valid context")
	}
	if sp.Child("sub") != nil {
		t.Fatal("nil span minted a child")
	}
	sp.End()
}

// TestSpanTreeDeterministicUnderSim builds a small tree on the virtual clock
// and asserts the exact IDs, edges, starts and durations — the reproducibility
// claim that lets a Sim test pin a whole causal tree.
func TestSpanTreeDeterministicUnderSim(t *testing.T) {
	run := func() []Span {
		sim := vtime.NewSim()
		r := New("n0", sim)
		r.SetSpanSampling(1)
		sim.Run(func() {
			root := r.StartSpan("ctl.resolve")
			root.Annotate("kind", "vlink")
			sim.Sleep(time.Millisecond)
			child := root.Child("regc.flight")
			sim.Sleep(2 * time.Millisecond)
			child.End()
			sim.Sleep(time.Millisecond)
			root.End()
		})
		return r.Spans("")
	}
	spans := run()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	child, root := spans[0], spans[1] // buffer holds finish order
	if root.Trace != "n0-1" || root.ID != "n0-s1" || root.Parent != "" {
		t.Fatalf("root = %+v", root)
	}
	if child.Trace != "n0-1" || child.ID != "n0-s2" || child.Parent != "n0-s1" {
		t.Fatalf("child = %+v", child)
	}
	if root.StartMicros != 0 || root.DurationMicros != 4000 {
		t.Fatalf("root timing = +%dus %dus, want +0us 4000us", root.StartMicros, root.DurationMicros)
	}
	if child.StartMicros != 1000 || child.DurationMicros != 2000 {
		t.Fatalf("child timing = +%dus %dus, want +1000us 2000us", child.StartMicros, child.DurationMicros)
	}
	if root.Notes["kind"] != "vlink" {
		t.Fatalf("root notes = %v", root.Notes)
	}
	// Run-twice-equal: the same program yields byte-identical spans.
	again := run()
	for i := range spans {
		if fmt.Sprint(spans[i]) != fmt.Sprint(again[i]) {
			t.Fatalf("run 2 span %d = %+v, want %+v", i, again[i], spans[i])
		}
	}
}

func TestSpanSampling(t *testing.T) {
	r := New("n0", nil)
	// Default: sampling off, roots refused.
	if sp := r.StartSpan("op"); sp != nil {
		t.Fatal("unsampled registry minted a root")
	}
	// But a remote parent's decision propagates regardless.
	if sp := r.StartSpanCtx(SpanContext{Trace: "t1", Span: "s1"}, "op"); sp == nil {
		t.Fatal("child of a remote parent refused while sampling off")
	}
	// An invalid context is not a parent.
	if sp := r.StartSpanCtx(SpanContext{Trace: "t1"}, "op"); sp != nil {
		t.Fatal("child minted from an invalid context")
	}
	// 1-in-3: deterministic counter, so exactly ceil(9/3) roots.
	r.SetSpanSampling(3)
	minted := 0
	for i := 0; i < 9; i++ {
		if sp := r.StartSpan("op"); sp != nil {
			minted++
			sp.End()
		}
	}
	if minted != 3 {
		t.Fatalf("1-in-3 sampling minted %d of 9, want 3", minted)
	}
	r.SetSpanSampling(-5) // clamps to off
	if sp := r.StartSpan("op"); sp != nil {
		t.Fatal("negative sampling rate minted a root")
	}
}

func TestSpanBufferBound(t *testing.T) {
	r := New("n0", nil)
	r.spanCap = 4
	r.SetSpanSampling(1)
	for i := 0; i < 6; i++ {
		sp := r.StartSpan("op")
		sp.Annotate("i", fmt.Sprint(i))
		sp.End()
	}
	got := r.Spans("")
	if len(got) != 4 {
		t.Fatalf("buffer kept %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := fmt.Sprint(i + 2); sp.Notes["i"] != want { // spans 0,1 evicted
			t.Fatalf("span %d notes = %v, want i=%s", i, sp.Notes, want)
		}
	}
	// Filtering by trace ID returns only that trace's spans.
	if byTrace := r.Spans(got[1].Trace); len(byTrace) != 1 || byTrace[0].ID != got[1].ID {
		t.Fatalf("Spans(%q) = %v", got[1].Trace, byTrace)
	}
}

func TestSpanAnnotationBound(t *testing.T) {
	r := New("n0", nil)
	r.SetSpanSampling(1)
	sp := r.StartSpan("op")
	for i := 0; i < maxSpanNotes+5; i++ {
		sp.Annotate(fmt.Sprintf("k%d", i), "v")
	}
	sp.Annotate("k0", "updated") // existing keys stay writable at the cap
	sp.End()
	sp.Annotate("late", "ignored") // after End: dropped, not recorded
	got := r.Spans("")
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	if len(got[0].Notes) != maxSpanNotes {
		t.Fatalf("span kept %d notes, want %d", len(got[0].Notes), maxSpanNotes)
	}
	if got[0].Notes["k0"] != "updated" {
		t.Fatalf("k0 = %q, want updated", got[0].Notes["k0"])
	}
	if _, ok := got[0].Notes["late"]; ok {
		t.Fatal("annotation after End was recorded")
	}
}

func TestLastTrace(t *testing.T) {
	sim := vtime.NewSim()
	r := New("n0", sim)
	sim.Run(func() {
		sim.Sleep(3 * time.Millisecond)
		r.NoteLastTrace("ctl-7")
	})
	if id, at := r.LastTrace(); id != "ctl-7" || at != 3000 {
		t.Fatalf("LastTrace = %q at %dus, want ctl-7 at 3000us", id, at)
	}
	r.NoteLastTrace("") // empty IDs never overwrite
	if id, _ := r.LastTrace(); id != "ctl-7" {
		t.Fatalf("empty NoteLastTrace overwrote: %q", id)
	}
}

func TestPutSpansIngest(t *testing.T) {
	r := New("daemon", nil)
	r.PutSpans([]Span{
		{Trace: "ctl-1", ID: "ctl-s1", Op: "ctl.resolve", Node: "ctl"},
		{Trace: "ctl-1", ID: "ctl-s2", Parent: "ctl-s1", Op: "regc.flight", Node: "ctl"},
	})
	got := r.Spans("ctl-1")
	if len(got) != 2 || got[0].Node != "ctl" || got[1].Parent != "ctl-s1" {
		t.Fatalf("ingested spans = %v", got)
	}
}

// TestConcurrentSpans hammers the span path from many goroutines; under
// -race this is the concurrency proof for recording, annotation, collection
// and the sampling counter.
func TestConcurrentSpans(t *testing.T) {
	r := New("n0", vtime.NewWall())
	r.SetSpanSampling(2)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := r.StartSpan("work")
				root.Annotate("w", fmt.Sprint(w))
				child := root.Child("sub")
				child.Annotate("i", fmt.Sprint(i))
				child.End()
				root.End()
				if i%50 == 0 {
					_ = r.Spans("")
					r.NoteLastTrace(root.TraceID())
					_, _ = r.LastTrace()
				}
				if remote := r.StartSpanCtx(SpanContext{Trace: "ext", Span: "p"}, "serve"); remote != nil {
					remote.End()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Spans("")); got != DefaultSpanBufferSize {
		t.Fatalf("buffer holds %d spans, want full %d", got, DefaultSpanBufferSize)
	}
}
