package telemetry

import (
	"fmt"
	"strconv"
)

// Event is one control-plane trace record. Seq orders events within a
// process; AtMicros is the registry clock (virtual under Sim — identical on
// every run — or wall). Trace carries the request's trace ID so one
// cross-node exchange can be stitched together from each hop's ring.
type Event struct {
	Seq      int64  `json:"seq"`
	AtMicros int64  `json:"at_us"`
	Trace    string `json:"trace,omitempty"`
	What     string `json:"what"`
	Detail   string `json:"detail,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d t=%dus %s", e.Seq, e.AtMicros, e.What)
	if e.Trace != "" {
		s += " trace=" + e.Trace
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace appends an event to the ring, evicting the oldest when full.
// Nil-safe.
func (r *Registry) Trace(traceID, what, detail string) {
	if r == nil {
		return
	}
	at := r.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev := Event{Seq: r.seq, AtMicros: at, Trace: traceID, What: what, Detail: detail}
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, ev)
		return
	}
	// Circular overwrite: O(1) per event. A memmove-style eviction would put
	// an O(ringCap) copy on every traced request once the ring warms up —
	// measurable against the framed-RTT budget.
	r.ring[r.ringHead] = ev
	r.ringHead++
	if r.ringHead == len(r.ring) {
		r.ringHead = 0
	}
}

// Events returns up to max most-recent events, oldest first (all when
// max <= 0). The slice is a copy. Nil-safe.
func (r *Registry) Events(max int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	total := len(r.ring)
	n := total
	if max > 0 && max < n {
		n = max
	}
	// Oldest-first order starts at ringHead (0 until the ring first fills);
	// the newest n entries are the tail of that order.
	out := make([]Event, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, r.ring[(r.ringHead+i)%total])
	}
	return out
}

// NextTraceID mints a process-unique trace ID: the node name plus a
// sequence number. No randomness, no clock — under Sim the IDs of a given
// run are reproducible. Nil-safe: a nil registry returns "".
func (r *Registry) NextTraceID() string {
	if r == nil {
		return ""
	}
	return r.node + "-" + strconv.FormatInt(r.traceSeq.Add(1), 10)
}
