package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"padico/internal/vtime"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(7)
	r.Histogram("x").Observe(time.Millisecond)
	r.Trace("", "noop", "")
	if got := r.NextTraceID(); got != "" {
		t.Fatalf("nil NextTraceID = %q", got)
	}
	if ev := r.Events(0); ev != nil {
		t.Fatalf("nil Events = %v", ev)
	}
	snap := r.Snapshot()
	if snap.Counter("x") != 0 || snap.Gauge("x") != 0 || snap.Hist("x").Count != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New("n0", nil)
	c := r.Counter("dials")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters refuse to go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("dials") != c {
		t.Fatal("counter handle not cached per name")
	}
	g := r.Gauge("backoff")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestHistogramDeterministicUnderSim drives observations from virtual-time
// measurements inside a Sim run and asserts the exact snapshot: same
// program, same virtual durations, same quantiles, every run.
func TestHistogramDeterministicUnderSim(t *testing.T) {
	sim := vtime.NewSim()
	r := New("n0", sim)
	sim.Run(func() {
		for i := 0; i < 100; i++ {
			start := sim.Now()
			sim.Sleep(time.Duration(i+1) * 100 * time.Microsecond) // 100us..10ms
			r.Histogram("op").Observe(sim.Now().Sub(start))
		}
	})
	st := r.Histogram("op").Stat()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.SumMicros != 505000 { // sum of 100us..10ms in 100us steps
		t.Fatalf("sum = %dus, want 505000", st.SumMicros)
	}
	// Median observation is ~5ms -> bucket (4096,8192]; p99 is ~9.9ms ->
	// bucket (8192,16384]. Exact because Sim is deterministic.
	if st.P50Micros != 8192 {
		t.Fatalf("p50 = %dus, want 8192", st.P50Micros)
	}
	if st.P99Micros != 16384 {
		t.Fatalf("p99 = %dus, want 16384", st.P99Micros)
	}
	if st.MaxMicros != 10000 {
		t.Fatalf("max = %dus, want 10000", st.MaxMicros)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {1 << 60, histBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.us); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}

// TestTraceRingUnderSim checks the virtual timestamps and eviction order of
// the event ring inside a deterministic run.
func TestTraceRingUnderSim(t *testing.T) {
	sim := vtime.NewSim()
	r := New("n0", sim)
	r.ringCap = 4
	sim.Run(func() {
		for i := 0; i < 6; i++ {
			sim.Sleep(time.Millisecond)
			r.Trace(r.NextTraceID(), "step", fmt.Sprintf("i=%d", i))
		}
	})
	evs := r.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := int64(i + 3) // events 1,2 evicted
		wantAt := int64((i + 3) * 1000)
		if ev.Seq != wantSeq || ev.AtMicros != wantAt {
			t.Fatalf("event %d = seq %d at %dus, want seq %d at %dus",
				i, ev.Seq, ev.AtMicros, wantSeq, wantAt)
		}
		if ev.Trace != fmt.Sprintf("n0-%d", wantSeq) {
			t.Fatalf("event %d trace = %q", i, ev.Trace)
		}
	}
	if got := r.Events(2); len(got) != 2 || got[0].Seq != 5 {
		t.Fatalf("Events(2) = %v", got)
	}
}

// TestConcurrentWrites hammers one registry from many goroutines; run with
// -race this is the lock-freedom proof for the hot path.
func TestConcurrentWrites(t *testing.T) {
	r := New("n0", vtime.NewWall())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Trace(r.NextTraceID(), "work", "")
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("c"); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := snap.Hist("h").Count; got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New("n0", nil)
	r.Counter("wall.bytes_in").Add(42)
	r.Gauge("launch.backoff_ms").Set(250)
	r.Histogram("resolve").Observe(3 * time.Microsecond)
	var sb strings.Builder
	snap := r.Snapshot()
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"padico_wall_bytes_in{node=\"n0\"} 42\n",
		"padico_launch_backoff_ms{node=\"n0\"} 250\n",
		"padico_resolve_count{node=\"n0\"} 1\n",
		"padico_resolve_sum_us{node=\"n0\"} 3\n",
		"padico_resolve_p99_us{node=\"n0\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters then gauges then hists, each sorted: stable output.
	var sb2 strings.Builder
	if err := snap.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("exposition not deterministic")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := New("n0", vtime.NewWall())
	r.Counter("dials").Add(7)
	srv, err := StartHTTP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "padico_dials{node=\"n0\"} 7") {
		t.Fatalf("/metrics output:\n%s", body)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
}

func TestCountedStream(t *testing.T) {
	r := New("n0", nil)
	in, out := r.Counter("in"), r.Counter("out")
	a, b := newPipe()
	cs := CountStream(a, in, out)
	go func() {
		_, _ = b.Write([]byte("hello"))
		buf := make([]byte, 8)
		_, _ = b.Read(buf)
		b.Close()
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(cs, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write([]byte("ok!")); err != nil {
		t.Fatal(err)
	}
	if err := cs.SetReadDeadline(time.Time{}); err != nil {
		t.Fatalf("no-op deadline errored: %v", err)
	}
	cs.Close()
	if in.Value() != 5 || out.Value() != 3 {
		t.Fatalf("counted in=%d out=%d, want 5/3", in.Value(), out.Value())
	}
}

// newPipe builds an in-memory bidirectional stream pair.
func newPipe() (io.ReadWriteCloser, io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return pipeEnd{ar, aw}, pipeEnd{br, bw}
}

type pipeEnd struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipeEnd) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p pipeEnd) Close() error                { p.r.Close(); return p.w.Close() }
