package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Metric names are prefixed padico_ and lower-cased with dots
// mapped to underscores; every sample carries a node label. Histograms
// export _count, _sum_us, _p50_us, _p99_us and _max_us series. Keys are
// emitted sorted, so the output is stable for tests and diffing.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	label := fmt.Sprintf("{node=%q}", s.Node)
	emit := func(name string, v int64) error {
		_, err := fmt.Fprintf(w, "padico_%s%s %d\n", promName(name), label, v)
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if err := emit(k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if err := emit(k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Hists) {
		h := s.Hists[k]
		for _, series := range []struct {
			suffix string
			v      int64
		}{
			{"_count", h.Count},
			{"_sum_us", h.SumMicros},
			{"_p50_us", h.P50Micros},
			{"_p99_us", h.P99Micros},
			{"_max_us", h.MaxMicros},
		} {
			if err := emit(k+series.suffix, series.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes a metric name for the Prometheus exposition.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, name)
}

// HTTPServer is a live observability endpoint: /metrics in Prometheus text
// plus the standard net/http/pprof handlers under /debug/pprof/.
type HTTPServer struct {
	lst net.Listener
	srv *http.Server
}

// StartHTTP binds addr and serves /metrics for the given registry along
// with the pprof suite. The returned server is already accepting; callers
// own Close. Pprof runs on the real runtime stack regardless of which
// clock the registry uses, so profiles of a live daemon are always honest.
func StartHTTP(addr string, tel *Registry) (*HTTPServer, error) {
	lst, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Stamp uptime at scrape time, exactly as the gatekeeper metrics
		// op does, so both exposure paths let scrapers derive rates.
		tel.Gauge("uptime_ms").Set(tel.Now() / 1000)
		snap := tel.Snapshot()
		_ = snap.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &HTTPServer{lst: lst, srv: &http.Server{Handler: mux}}
	go func() { _ = hs.srv.Serve(lst) }()
	return hs, nil
}

// Addr returns the bound listen address (useful with ":0").
func (h *HTTPServer) Addr() string { return h.lst.Addr().String() }

// Close stops accepting and tears the server down. Nil-safe.
func (h *HTTPServer) Close() error {
	if h == nil {
		return nil
	}
	return h.srv.Close()
}
