package telemetry

import (
	"io"
	"time"
)

// CountedStream wraps a bidirectional stream and feeds bytes-in/bytes-out
// counters on every Read/Write. It preserves the optional SetReadDeadline
// capability of the inner stream so gatekeeper.ArmControlDeadline still
// sees it through the wrapper (wall TCP streams keep their read deadlines;
// sim streams, which never expose the method, stay deadline-free).
type CountedStream struct {
	inner    io.ReadWriteCloser
	in, out  *Counter
	deadline interface{ SetReadDeadline(time.Time) error }
}

// CountStream wraps st so reads feed in and writes feed out. Nil counters
// are fine (they drop the numbers); a nil stream returns nil.
func CountStream(st io.ReadWriteCloser, in, out *Counter) *CountedStream {
	if st == nil {
		return nil
	}
	cs := &CountedStream{inner: st, in: in, out: out}
	if d, ok := st.(interface{ SetReadDeadline(time.Time) error }); ok {
		cs.deadline = d
	}
	return cs
}

func (c *CountedStream) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *CountedStream) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	c.out.Add(int64(n))
	return n, err
}

func (c *CountedStream) Close() error { return c.inner.Close() }

// SetReadDeadline delegates to the inner stream when it supports deadlines
// and is a no-op otherwise (sim streams have no deadline to arm).
func (c *CountedStream) SetReadDeadline(t time.Time) error {
	if c.deadline != nil {
		return c.deadline.SetReadDeadline(t)
	}
	return nil
}

// Inner returns the wrapped stream.
func (c *CountedStream) Inner() io.ReadWriteCloser { return c.inner }
