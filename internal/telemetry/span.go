package telemetry

import (
	"strconv"
	"sync"
)

// Span is one recorded operation in a causal trace: where it ran, what it
// did, when it started on that process's clock, how long it took, and which
// span caused it. IDs are deterministic — minted from per-process sequence
// counters, never from randomness or the clock — so a Sim run produces the
// same tree every time. A trace is reconstructed by collecting every
// process's spans for one TraceID and joining Parent edges.
type Span struct {
	Trace          string            `json:"trace"`
	ID             string            `json:"id"`
	Parent         string            `json:"parent,omitempty"`
	Op             string            `json:"op"`
	Node           string            `json:"node"`
	StartMicros    int64             `json:"start_us"`
	DurationMicros int64             `json:"dur_us"`
	Notes          map[string]string `json:"notes,omitempty"`
}

// SpanContext is the wire-portable address of a live span: the trace it
// belongs to and the span itself. It rides the framed protocol's trace/span
// fields; a receiver that starts work on behalf of the request parents its
// own span under Span.
type SpanContext struct {
	Trace string
	Span  string
}

// Valid reports whether the context names a real parent to hang spans off.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != "" }

// DefaultSpanBufferSize bounds the per-process span flight recorder: old
// spans fall off as new ones land, keeping a long-lived daemon's memory
// flat while holding enough history to reconstruct recent operations.
const DefaultSpanBufferSize = 512

// maxSpanNotes bounds per-span annotations so a loop annotating in error
// paths cannot balloon a span.
const maxSpanNotes = 8

// ActiveSpan is an in-flight span handle. All methods are nil-safe no-ops,
// so callers thread them unconditionally: an unsampled operation costs one
// atomic load and a nil check per instrumentation site.
type ActiveSpan struct {
	r    *Registry
	mu   sync.Mutex
	span Span
	done bool
}

// SetSpanSampling sets the head-based sampling policy for locally minted
// root spans: 0 disables (the default — untraced hot paths stay near free),
// 1 records every root, n>1 records one root in every n. The decision is a
// deterministic counter, not a coin flip, so Sim runs reproduce. Child
// spans of a remote parent are NOT subject to local sampling: the root's
// decision propagates with the context. Nil-safe.
func (r *Registry) SetSpanSampling(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.sampleEvery.Store(int64(n))
}

// sampleRoot is the head-based sampling decision for one would-be root.
func (r *Registry) sampleRoot() bool {
	every := r.sampleEvery.Load()
	if every <= 0 {
		return false
	}
	if every == 1 {
		return true
	}
	return (r.sampleTick.Add(1)-1)%every == 0
}

// nextSpanID mints a process-unique span ID: node name plus "s" plus a
// sequence number — deterministic, like NextTraceID.
func (r *Registry) nextSpanID() string {
	return r.node + "-s" + strconv.FormatInt(r.spanSeq.Add(1), 10)
}

// StartSpan starts a root span for a locally initiated operation, minting a
// fresh trace ID. Returns nil (a no-op handle) when the registry is nil or
// head-based sampling rejects the root — callers must tolerate nil and fall
// back to plain trace-ID minting where events still want an ID.
func (r *Registry) StartSpan(op string) *ActiveSpan {
	if r == nil || !r.sampleRoot() {
		return nil
	}
	return &ActiveSpan{r: r, span: Span{
		Trace:       r.NextTraceID(),
		ID:          r.nextSpanID(),
		Op:          op,
		Node:        r.node,
		StartMicros: r.Now(),
	}}
}

// StartSpanCtx starts a span as the child of a remote parent carried in
// ctx. Recording is unconditional when ctx is valid — the root's sampling
// decision propagates down the call tree — and nil when it is not, so
// un-traced requests cost one comparison. Nil-safe.
func (r *Registry) StartSpanCtx(ctx SpanContext, op string) *ActiveSpan {
	if r == nil || !ctx.Valid() {
		return nil
	}
	return &ActiveSpan{r: r, span: Span{
		Trace:       ctx.Trace,
		ID:          r.nextSpanID(),
		Parent:      ctx.Span,
		Op:          op,
		Node:        r.node,
		StartMicros: r.Now(),
	}}
}

// Context returns the span's wire context, for stamping into outbound
// requests. Nil-safe (zero context, which is not Valid).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.span.Trace, Span: s.span.ID}
}

// TraceID returns the span's trace ID. Nil-safe ("").
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

// Child starts a span under this one on the same process. Nil-safe: a nil
// parent yields a nil child.
func (s *ActiveSpan) Child(op string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.r.StartSpanCtx(s.Context(), op)
}

// Annotate attaches a bounded key/value note (first maxSpanNotes keys win).
// Nil-safe; safe from concurrent goroutines.
func (s *ActiveSpan) Annotate(key, value string) {
	if s == nil || key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.span.Notes == nil {
		s.span.Notes = make(map[string]string, 4)
	}
	if _, ok := s.span.Notes[key]; !ok && len(s.span.Notes) >= maxSpanNotes {
		return
	}
	s.span.Notes[key] = value
}

// End stamps the span's duration from the registry clock and commits it to
// the process's span buffer. Idempotent and nil-safe.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	sp := s.span
	s.mu.Unlock()
	sp.DurationMicros = s.r.Now() - sp.StartMicros
	if sp.DurationMicros < 0 {
		sp.DurationMicros = 0
	}
	s.r.putSpan(sp)
}

// putSpan appends one finished span to the bounded buffer, evicting the
// oldest when full.
func (r *Registry) putSpan(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spanCap == 0 {
		r.spanCap = DefaultSpanBufferSize
	}
	if len(r.spans) < r.spanCap {
		r.spans = append(r.spans, sp)
		return
	}
	// Circular overwrite, same as the event ring: O(1) per span keeps the
	// always-on sampling tier off the memmove treadmill.
	r.spans[r.spanHead] = sp
	r.spanHead++
	if r.spanHead == len(r.spans) {
		r.spanHead = 0
	}
}

// Spans returns the buffered spans for one trace, oldest first (all
// buffered spans when traceID is empty). The slice is a copy. Nil-safe.
func (r *Registry) Spans(traceID string) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for i := range r.spans {
		sp := r.spans[(r.spanHead+i)%len(r.spans)]
		if traceID == "" || sp.Trace == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// PutSpans ingests finished spans recorded elsewhere (an attached seat
// flushing its buffer to a daemon before exiting, so the trace survives the
// seat process). Nil-safe.
func (r *Registry) PutSpans(spans []Span) {
	for _, sp := range spans {
		r.putSpan(sp)
	}
}

// NoteLastTrace records id as the most recent operator-initiated trace,
// stamped with the registry clock — the anchor `padico-ctl trace -last`
// resolves against. Nil-safe.
func (r *Registry) NoteLastTrace(id string) {
	if r == nil || id == "" {
		return
	}
	at := r.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastTrace, r.lastTraceAt = id, at
}

// LastTrace returns the most recently noted trace ID and its clock stamp in
// microseconds. Nil-safe ("", 0).
func (r *Registry) LastTrace() (string, int64) {
	if r == nil {
		return "", 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastTrace, r.lastTraceAt
}
