// Package telemetry is Padico's measurement substrate: a dependency-free
// per-process metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with p50/p99 snapshots) plus a bounded ring buffer of
// control-plane trace events. It is the layer the ROADMAP's perf trajectory
// stands on — every hot path (registry sync, by-name resolution, wall
// framing, supervision) records here, and the gatekeeper's "metrics" op,
// padico-d's optional HTTP listener and `padico-ctl top` all render the
// same snapshots.
//
// The registry is clock-generic: it timestamps events through a
// vtime.Runtime, so the very same instrumentation is deterministic under
// the simulator (virtual microseconds) and honest under the wall clock.
// Metric writes are lock-free atomics — safe from any goroutine, including
// SAN traffic paths driven by the virtual-time scheduler.
//
// Every accessor is nil-safe: a component holding a nil *Registry (or a nil
// *Counter from one) records nothing and allocates nothing, so
// instrumentation sites stay unconditional.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/vtime"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only go
// up). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter. Nil-safe (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (either direction). Nil-safe.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge. Nil-safe (zero).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every latency histogram: bucket
// i counts observations in [2^(i-1), 2^i) microseconds (bucket 0 holds
// sub-microsecond observations), so 48 buckets span sub-µs to ~4.5 years —
// nothing a control plane measures falls off either end.
const histBuckets = 48

// Histogram is a fixed-bucket latency histogram: power-of-two microsecond
// buckets, recorded with one atomic add per observation — no locks on the
// hot path — and summarized as approximate quantiles (the upper bound of
// the bucket holding the quantile). Under the simulator, observations are
// virtual durations and snapshots are fully deterministic.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	max     atomic.Int64 // microseconds
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(us int64) int {
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) // floor(log2(us)) + 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpperUS is the inclusive upper bound (µs) reported for a bucket.
func bucketUpperUS(i int) int64 {
	if i <= 0 {
		return 1
	}
	return int64(1) << i
}

// Observe records one latency. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := int64(d / time.Microsecond)
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
	h.buckets[bucketOf(us)].Add(1)
}

// Stat summarizes the histogram. Nil-safe (zero stat).
func (h *Histogram) Stat() HistStat {
	if h == nil {
		return HistStat{}
	}
	var counts [histBuckets]int64
	// Load buckets first, then the total as the floor of what the quantile
	// scan must account for: concurrent observes may land between loads, and
	// quantile ranks beyond the loaded buckets clamp to the max bucket seen.
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := HistStat{
		Count:     total,
		SumMicros: h.sum.Load(),
		MaxMicros: h.max.Load(),
	}
	if total == 0 {
		return st
	}
	quantile := func(q float64) int64 {
		rank := int64(q*float64(total) + 0.5)
		if rank < 1 {
			rank = 1
		}
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if cum >= rank {
				return bucketUpperUS(i)
			}
		}
		return bucketUpperUS(histBuckets - 1)
	}
	st.P50Micros = quantile(0.50)
	st.P99Micros = quantile(0.99)
	return st
}

// HistStat is one histogram's snapshot: count, sum, and approximate
// quantiles in microseconds (quantiles report the upper bound of the
// power-of-two bucket holding the rank).
type HistStat struct {
	Count     int64 `json:"count"`
	SumMicros int64 `json:"sum_us"`
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
	MaxMicros int64 `json:"max_us"`
}

// Snapshot is a registry's full state at one instant, JSON-serializable so
// it rides the gatekeeper protocol unchanged.
type Snapshot struct {
	Node     string              `json:"node,omitempty"`
	Counters map[string]int64    `json:"counters,omitempty"`
	Gauges   map[string]int64    `json:"gauges,omitempty"`
	Hists    map[string]HistStat `json:"hists,omitempty"`
}

// Counter returns a snapshot counter value (zero when absent or nil).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Gauge returns a snapshot gauge value (zero when absent or nil).
func (s *Snapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Gauges[name]
}

// Hist returns a snapshot histogram stat (zero when absent or nil).
func (s *Snapshot) Hist(name string) HistStat {
	if s == nil {
		return HistStat{}
	}
	return s.Hists[name]
}

// Registry is one process's metric and trace namespace. Metrics are created
// lazily on first use and live forever (the catalog is small and fixed);
// handles are cached by the instrumented components, so steady-state
// recording never touches the registry lock.
type Registry struct {
	node string
	rt   vtime.Runtime // may be nil: events then carry no timestamps

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	ring     []Event // trace ring buffer, ringCap entries, seq-stamped
	ringCap  int
	ringHead int // once full: index of the oldest event (next overwrite slot)
	seq      int64

	spans       []Span // span flight recorder, spanCap entries
	spanCap     int
	spanHead    int    // once full: index of the oldest span (next overwrite slot)
	lastTrace   string // most recent operator-initiated trace (see NoteLastTrace)
	lastTraceAt int64

	traceSeq    atomic.Int64
	spanSeq     atomic.Int64
	sampleEvery atomic.Int64 // root-span head sampling: 0 off, 1 all, n 1-in-n
	sampleTick  atomic.Int64
}

// DefaultRingSize bounds the per-process trace ring: old events fall off as
// new ones arrive, so a long-lived daemon's memory stays flat.
const DefaultRingSize = 256

// New returns a registry for a node. rt timestamps trace events — the
// simulator for deterministic virtual stamps, the wall clock for real ones,
// or nil for none.
func New(node string, rt vtime.Runtime) *Registry {
	return &Registry{
		node:     node,
		rt:       rt,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ringCap:  DefaultRingSize,
		spanCap:  DefaultSpanBufferSize,
	}
}

// Node returns the registry's node name. Nil-safe.
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Now returns the registry clock's instant in microseconds (zero without a
// clock). Nil-safe.
func (r *Registry) Now() int64 {
	if r == nil || r.rt == nil {
		return 0
	}
	return int64(r.rt.Now().Duration() / time.Microsecond)
}

// Since returns the elapsed duration since a start instant taken from the
// registry clock (zero without a clock). Nil-safe.
func (r *Registry) Since(startMicros int64) time.Duration {
	if r == nil || r.rt == nil {
		return 0
	}
	return time.Duration(r.Now()-startMicros) * time.Microsecond
}

// Counter returns (creating on first use) the named counter. Nil-safe: a
// nil registry returns a nil counter, which records nothing.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named latency histogram.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric. The maps are fresh copies, safe to
// serialize or mutate. Nil-safe (empty snapshot). It returns a pointer so
// the Snapshot's own pointer-receiver accessors (Counter, Gauge, Hist) are
// callable directly on the result — r.Snapshot().Counter("x") — instead of
// forcing callers to bind the value to a variable first.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	snap := &Snapshot{
		Node:     r.node,
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Hists:    make(map[string]HistStat, len(hists)),
	}
	for _, c := range counters {
		snap.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		snap.Hists[h.name] = h.Stat()
	}
	return snap
}

// sortedKeys returns m's keys sorted — stable rendering order for tables
// and the Prometheus exposition.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
