package gridccm

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"padico/internal/cdr"
	"padico/internal/idl"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/redistrib"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// Member identifies one SPMD member of a parallel component: its process's
// ORB and the component-internal MPI communicator. A sequential component
// is a 1-member parallel component with a nil communicator.
type Member struct {
	ORB  *orb.ORB
	Comm *mpi.Comm // nil allowed when Size == 1
	Rank int
	Size int
	Node *simnet.Node // nil under the wall clock
}

func (m Member) charge(c simnet.Cost, bytes int) {
	if m.Node != nil {
		m.Node.Charge(c, bytes)
	}
}

// syncRounds is the dissemination-barrier depth of the member group.
func (m Member) syncRounds() int {
	r := 0
	for p := 1; p < m.Size; p *= 2 {
		r++
	}
	return r
}

// sync is the GridCCM coordination step run before and after each parallel
// invocation: an MPI barrier plus the layer's per-round bookkeeping.
func (m Member) sync() error {
	if m.Size <= 1 || m.Comm == nil {
		return nil
	}
	rounds := m.syncRounds()
	m.charge(simnet.GridCCMRoundCost, 0)
	for i := 1; i < rounds; i++ {
		m.charge(simnet.GridCCMRoundCost, 0)
	}
	return m.Comm.Barrier()
}

// ServedParallel is the result of serving a parallel component: the derived
// (internal) references of every member plus the sequential-interoperability
// reference on member 0.
type ServedParallel struct {
	Derived    []orb.IOR
	Sequential orb.IOR
}

// Serve activates the GridCCM server-side layer on this member: the derived
// interface on every member, and on member 0 the unmodified original
// interface so standard sequential CORBA clients interoperate. Every member
// must call Serve concurrently (SPMD).
func Serve(m Member, key, ifaceName string, port *PortPar, user orb.Servant) (*ServedParallel, error) {
	repo := m.ORB.Repo()
	iface, ok := repo.Interface(ifaceName)
	if !ok {
		return nil, fmt.Errorf("gridccm: unknown interface %q", ifaceName)
	}
	derived, err := Derive(repo, iface, port)
	if err != nil {
		return nil, err
	}
	layer := &serverLayer{
		m:       m,
		iface:   iface,
		port:    port,
		user:    user,
		pending: make(map[string]*gather),
	}
	myIOR, err := m.ORB.Activate(key+"!par", derived.Name, layer)
	if err != nil {
		return nil, err
	}
	// Exchange member references.
	all := []orb.IOR{myIOR}
	if m.Size > 1 {
		gathered, err := m.Comm.Allgather([]byte(myIOR.String()))
		if err != nil {
			return nil, err
		}
		all = make([]orb.IOR, m.Size)
		for i, b := range gathered {
			ior, err := orb.ParseIOR(string(b))
			if err != nil {
				return nil, err
			}
			all[i] = ior
		}
	}
	served := &ServedParallel{
		Derived:    all,
		Sequential: orb.IOR{Node: all[0].Node, Key: key, Iface: ifaceName},
	}
	// Member 0 bridges sequential clients: it accepts the original
	// interface and becomes a one-member client of the parallel group.
	if m.Rank == 0 {
		bridgeRef, err := Bind(
			Member{ORB: m.ORB, Rank: 0, Size: 1, Node: m.Node},
			key+"!seq", ifaceName, port, all)
		if err != nil {
			return nil, err
		}
		if _, err := m.ORB.Activate(key, ifaceName, &seqBridge{
			iface: iface, port: port, par: bridgeRef, user: user,
		}); err != nil {
			return nil, err
		}
	}
	return served, nil
}

// serverLayer is the GridCCM interposition layer on the server side: it
// reassembles distributed arguments from client chunks and invokes the user
// servant exactly once per member per request.
type serverLayer struct {
	m     Member
	iface *idl.Interface
	port  *PortPar
	user  orb.Servant

	mu      sync.Mutex
	pending map[string]*gather
}

type gather struct {
	need    int
	have    int
	buf     any   // assembled local block of the distributed argument
	repl    []any // replicated arguments (from any chunk; identical)
	waiters []vtime.Waiter
	done    bool
	err     error
}

func (s *serverLayer) Invoke(op string, args []any) ([]any, error) {
	opPar, ok := s.port.Op(op)
	if !ok {
		return nil, &orb.SystemException{Msg: "BAD_OPERATION: " + op + " (not parallel)"}
	}
	origOp, _ := s.iface.Op(op)
	view, ok := args[0].(map[string]any)
	if !ok {
		return nil, &orb.SystemException{Msg: "MARSHAL: missing GridCCM view"}
	}
	clientID, _ := view["client"].(string)
	reqID, _ := view["reqId"].(uint32)
	clientRank := int(view["clientRank"].(uint32))
	clientCount := int(view["clientCount"].(uint32))
	total := int(args[1].(uint32))

	// Recover the chunk and replicated arguments from the derived
	// signature: view, total, then parameters in original order.
	distIdx := -1
	var chunk any
	var repl []any
	ai := 2
	for _, p := range origOp.Params {
		if opPar.Arg(p.Name) == "block" {
			distIdx = len(repl) // position within the original arg list
			chunk = args[ai]
		} else {
			repl = append(repl, args[ai])
		}
		ai++
	}

	ns := s.m.Size
	plan, tr, err := invocationPlan(total, clientCount, ns, distIdx >= 0, clientRank, s.m.Rank)
	if err != nil {
		return nil, &orb.SystemException{Msg: err.Error()}
	}
	need := len(redistrib.Incoming(plan, s.m.Rank))

	key := fmt.Sprintf("%s/%d/%s", clientID, reqID, op)
	s.mu.Lock()
	g, exists := s.pending[key]
	if !exists {
		g = &gather{need: need}
		if distIdx >= 0 {
			myLen := redistrib.NewBlock(total, ns).Count(s.m.Rank)
			g.buf = seqMake(chunk, myLen)
		}
		s.pending[key] = g
	}
	g.repl = repl
	if distIdx >= 0 && tr != nil {
		myLo := blockLo(total, ns, s.m.Rank)
		if err := seqCopyAt(g.buf, tr.Lo-myLo, chunk); err != nil {
			s.mu.Unlock()
			return nil, &orb.SystemException{Msg: err.Error()}
		}
	}
	g.have++
	ready := g.have == g.need
	if !ready {
		waiter := newWaiter(s.m, "gridccm: awaiting sibling chunks "+key)
		g.waiters = append(g.waiters, waiter)
		s.mu.Unlock()
		if err := waiter.Wait(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		err := g.err
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return []any{}, nil
	}
	s.mu.Unlock()

	// Last chunk arrived: build the user arguments and upcall once.
	userArgs := make([]any, 0, len(origOp.Params))
	ri := 0
	for _, p := range origOp.Params {
		if opPar.Arg(p.Name) == "block" {
			if g.buf == nil {
				g.buf = seqMake(nil, 0)
			}
			userArgs = append(userArgs, g.buf)
		} else {
			userArgs = append(userArgs, g.repl[ri])
			ri++
		}
	}
	_, uerr := s.user.Invoke(op, userArgs)

	s.mu.Lock()
	g.done = true
	g.err = uerr
	ws := g.waiters
	delete(s.pending, key)
	s.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
	if uerr != nil {
		return nil, uerr
	}
	return []any{}, nil
}

// invocationPlan computes the redistribution schedule of one invocation and
// this pair's transfer. Without a distributed argument (or with an empty
// one) the "plan" spreads one virtual token per server over the clients, so
// every member still executes the operation exactly once.
func invocationPlan(total, nc, ns int, hasDist bool, from, to int) ([]redistrib.Transfer, *redistrib.Transfer, error) {
	if !hasDist || total == 0 {
		plan, err := redistrib.Schedule(redistrib.NewBlock(ns, nc), redistrib.NewBlock(ns, ns))
		if err != nil {
			return nil, nil, err
		}
		return plan, nil, nil
	}
	plan, err := redistrib.Schedule(redistrib.NewBlock(total, nc), redistrib.NewBlock(total, ns))
	if err != nil {
		return nil, nil, err
	}
	for i := range plan {
		if plan[i].From == from && plan[i].To == to {
			return plan, &plan[i], nil
		}
	}
	return plan, nil, nil
}

func blockLo(total, parts, p int) int {
	rs := redistrib.NewBlock(total, parts).OwnedRanges(p)
	if len(rs) == 0 {
		return 0
	}
	return rs[0].Lo
}

// newWaiter allocates a runtime waiter for the member's ORB runtime.
func newWaiter(m Member, reason string) vtime.Waiter {
	return m.runtime().NewWaiter(reason)
}

func (m Member) runtime() vtime.Runtime { return m.ORB.Runtime() }

// seqBridge serves the unmodified original interface on member 0 for
// sequential clients: parallel operations are re-entered through a
// one-member client layer (scattering the full argument over the group);
// other operations go straight to the user servant.
type seqBridge struct {
	iface *idl.Interface
	port  *PortPar
	par   *ParallelRef
	user  orb.Servant
}

func (b *seqBridge) Invoke(op string, args []any) ([]any, error) {
	opPar, ok := b.port.Op(op)
	if !ok {
		return b.user.Invoke(op, args)
	}
	origOp, _ := b.iface.Op(op)
	wrapped := make([]any, len(args))
	for i, p := range origOp.Params {
		if opPar.Arg(p.Name) == "block" {
			n, isSeq := orb.SeqLen(args[i])
			if !isSeq {
				return nil, &orb.SystemException{Msg: "MARSHAL: distributed arg is not a sequence"}
			}
			wrapped[i] = Distributed{Total: n, Chunk: args[i]}
		} else {
			wrapped[i] = args[i]
		}
	}
	if err := b.par.Invoke(op, wrapped...); err != nil {
		return nil, err
	}
	return []any{}, nil
}

// ParallelRef is the client-side GridCCM layer: a parallel reference to a
// parallel component. All client members invoke collectively; distributed
// arguments are passed as Distributed{Total, local chunk}.
type ParallelRef struct {
	m        Member
	clientID string
	iface    *idl.Interface
	port     *PortPar
	refs     []*orb.ObjRef

	mu  sync.Mutex
	seq uint32
}

// Bind builds this member's parallel reference from the served component's
// derived member references.
func Bind(m Member, clientID, ifaceName string, port *PortPar, derived []orb.IOR) (*ParallelRef, error) {
	repo := m.ORB.Repo()
	iface, ok := repo.Interface(ifaceName)
	if !ok {
		return nil, fmt.Errorf("gridccm: unknown interface %q", ifaceName)
	}
	if _, err := Derive(repo, iface, port); err != nil {
		return nil, err
	}
	p := &ParallelRef{m: m, clientID: clientID, iface: iface, port: port}
	for _, ior := range derived {
		ref, err := m.ORB.Object(ior)
		if err != nil {
			return nil, err
		}
		p.refs = append(p.refs, ref)
	}
	if len(p.refs) == 0 {
		return nil, errors.New("gridccm: no server members")
	}
	return p, nil
}

// Servers returns the number of server members.
func (p *ParallelRef) Servers() int { return len(p.refs) }

// Invoke performs one SPMD-collective parallel invocation. Every client
// member calls it with the same operation; block-distributed arguments are
// wrapped in Distributed carrying this member's local chunk.
func (p *ParallelRef) Invoke(op string, args ...any) error {
	opPar, ok := p.port.Op(op)
	if !ok {
		return fmt.Errorf("gridccm: operation %q is not parallel; use the sequential reference", op)
	}
	origOp, ok := p.iface.Op(op)
	if !ok {
		return fmt.Errorf("gridccm: unknown operation %q", op)
	}
	if len(args) != len(origOp.Params) {
		return fmt.Errorf("gridccm: %s takes %d arguments, got %d", op, len(origOp.Params), len(args))
	}
	// Pre-invocation coordination across client members.
	if err := p.m.sync(); err != nil {
		return err
	}
	p.mu.Lock()
	p.seq++
	reqID := p.seq
	p.mu.Unlock()

	// Locate the distributed argument.
	var dist *Distributed
	var distParam *idl.Param
	var repl []any
	for i := range origOp.Params {
		param := &origOp.Params[i]
		if opPar.Arg(param.Name) == "block" {
			d, ok := args[i].(Distributed)
			if !ok {
				return fmt.Errorf("gridccm: argument %q of %s must be a gridccm.Distributed", param.Name, op)
			}
			dist = &d
			distParam = param
		} else {
			repl = append(repl, args[i])
		}
	}

	nc, ns := p.m.Size, len(p.refs)
	total := 0
	if dist != nil {
		total = dist.Total
		n, isSeq := orb.SeqLen(dist.Chunk)
		if !isSeq {
			return fmt.Errorf("gridccm: chunk of %s is not a sequence", op)
		}
		want := redistrib.NewBlock(total, nc).Count(p.m.Rank)
		if n != want {
			return fmt.Errorf("gridccm: member %d holds %d elements of %q, block layout expects %d",
				p.m.Rank, n, distParam.Name, want)
		}
		// The layer builds the distributed view of the argument: one
		// copy, plus the redistribution pass when real fragmentation
		// happens (more than one member on either side).
		bytes := chunkWireBytes(distParam.Type.Elem, dist.Chunk)
		perByte := simnet.GridCCMViewCost.PerByte
		if nc > 1 || ns > 1 {
			levels := math.Log2(float64(max(nc, ns)))
			perByte += simnet.GridCCMRedistCost.PerByte + simnet.GridCCMLevelPerByte*levels
		}
		p.m.charge(simnet.Cost{PerByte: perByte}, bytes)
	}

	plan, _, err := invocationPlan(total, nc, ns, dist != nil, 0, 0)
	if err != nil {
		return err
	}
	view := map[string]any{
		"client":      p.clientID,
		"reqId":       reqID,
		"clientRank":  uint32(p.m.Rank),
		"clientCount": uint32(nc),
	}

	// Fire this member's fragments concurrently (one per target server).
	myLo := blockLo(total, nc, p.m.Rank)
	outs := redistrib.Outgoing(plan, p.m.Rank)
	errs := make([]error, len(outs))
	wg := vtime.NewWaitGroup(p.m.runtime(), "gridccm: fragments of "+op)
	for k, tr := range outs {
		wg.Add(1)
		p.m.runtime().Go("gridccm:frag", func() {
			defer wg.Done()
			derivedArgs := []any{view, uint32(total)}
			if dist != nil {
				sub, err := seqSlice(dist.Chunk, tr.Lo-myLo, tr.Hi-myLo)
				if err != nil {
					errs[k] = err
					return
				}
				derivedArgs = append(derivedArgs, sub)
			}
			derivedArgs = append(derivedArgs, repl...)
			_, err := p.refs[tr.To].Invoke(op, derivedArgs...)
			errs[k] = err
		})
	}
	if err := wg.Wait(); err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	// Post-invocation coordination.
	return p.m.sync()
}

// chunkWireBytes estimates the wire size of a chunk for cost accounting.
func chunkWireBytes(elem *idl.Type, chunk any) int {
	n, _ := orb.SeqLen(chunk)
	switch elem.Kind {
	case idl.KindOctet, idl.KindBool:
		return n
	case idl.KindShort, idl.KindUShort:
		return 2 * n
	case idl.KindLong, idl.KindULong, idl.KindFloat, idl.KindEnum:
		return 4 * n
	case idl.KindLongLong, idl.KindULongLong, idl.KindDouble:
		return 8 * n
	default:
		// Variable-size elements: measure by marshalling once (this is
		// the view-construction copy the layer performs anyway).
		w := cdr.NewWriter(cdr.BigEndian)
		if err := orb.MarshalValue(w, idl.SequenceOf(elem), chunk); err != nil {
			return n
		}
		return w.Len()
	}
}
