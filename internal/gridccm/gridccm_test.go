package gridccm

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/idl"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

const portIDL = `
module Coupling {
    typedef sequence<double> Vector;
    interface Transport {
        void setDensity(in Vector density, in double dt);
        void tick();
        long status();
    };
};
`

const parallelXML = `
<parallel component="TransportComp">
  <port name="sim">
    <operation name="setDensity">
      <argument name="density" distribution="block"/>
      <argument name="dt" distribution="replicated"/>
    </operation>
    <operation name="tick"/>
  </port>
</parallel>`

// testGrid holds a simulated grid with one ORB+linker per node.
type testGrid struct {
	sim     *vtime.Sim
	arb     *arbitration.Arbiter
	nodes   []*simnet.Node
	orbs    []*orb.ORB
	linkers []*vlink.Linker
}

func newTestGrid(t *testing.T, n int, profile simnet.ORBProfile) *testGrid {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &testGrid{sim: s}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	g.arb = arbitration.New(net)
	if _, err := g.arb.AddSAN(net.NewMyrinet2000("myri0", g.nodes)); err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.nodes {
		ln := vlink.NewLinker(g.arb, nd)
		g.linkers = append(g.linkers, ln)
		repo := idl.NewRepository()
		repo.MustParse(portIDL)
		o, err := orb.New(orb.Config{
			Transport: orb.VLinkTransport{Linker: ln},
			Repo:      repo, Profile: profile, Runtime: s, Node: nd,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.orbs = append(g.orbs, o)
	}
	return g
}

func (g *testGrid) close() {
	for _, o := range g.orbs {
		o.Shutdown()
	}
	for _, ln := range g.linkers {
		ln.Close()
	}
	g.arb.Close()
}

// transportImpl records what the user servant received on each member.
type transportImpl struct {
	mu      sync.Mutex
	rank    int
	got     []float64
	dt      float64
	ticks   int
	comm    *mpi.Comm // nil for 1-member groups
	barrier bool      // run an MPI barrier inside the op (Figure 8 workload)
}

func (ti *transportImpl) Invoke(op string, args []any) ([]any, error) {
	switch op {
	case "setDensity":
		ti.mu.Lock()
		ti.got = args[0].([]float64)
		ti.dt = args[1].(float64)
		ti.mu.Unlock()
		if ti.barrier && ti.comm != nil {
			if err := ti.comm.Barrier(); err != nil {
				return nil, err
			}
		}
		return []any{}, nil
	case "tick":
		ti.mu.Lock()
		ti.ticks++
		ti.mu.Unlock()
		if ti.barrier && ti.comm != nil {
			if err := ti.comm.Barrier(); err != nil {
				return nil, err
			}
		}
		return []any{}, nil
	case "status":
		ti.mu.Lock()
		defer ti.mu.Unlock()
		return []any{int32(ti.ticks)}, nil
	default:
		return nil, &orb.SystemException{Msg: "BAD_OPERATION: " + op}
	}
}

// deployParallel spins up a parallel component over serverNodes and a
// parallel client over clientNodes, returning per-member refs and impls.
// Runs inside the simulation.
func deployParallel(t *testing.T, g *testGrid, clientIdx, serverIdx []int, barrier bool) ([]*ParallelRef, []*transportImpl) {
	t.Helper()
	desc, err := ParseParallelDesc([]byte(parallelXML))
	if err != nil {
		t.Fatalf("desc: %v", err)
	}
	port, _ := desc.Port("sim")

	nServers := len(serverIdx)
	impls := make([]*transportImpl, nServers)
	servedCh := make(chan *ServedParallel, nServers)

	var serverNodes []*simnet.Node
	for _, i := range serverIdx {
		serverNodes = append(serverNodes, g.nodes[i])
	}
	wg := vtime.NewWaitGroup(g.sim, "serve")
	for r := 0; r < nServers; r++ {
		wg.Add(1)
		g.sim.Go("server-member", func() {
			defer wg.Done()
			var comm *mpi.Comm
			if nServers > 1 {
				var err error
				comm, err = mpi.Join(g.arb, "srv", serverNodes, r)
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
			}
			impl := &transportImpl{rank: r, comm: comm, barrier: barrier}
			impls[r] = impl
			m := Member{ORB: g.orbs[serverIdx[r]], Comm: comm, Rank: r, Size: nServers, Node: g.nodes[serverIdx[r]]}
			served, err := Serve(m, "transport", "Coupling::Transport", port, impl)
			if err != nil {
				t.Errorf("serve: %v", err)
				return
			}
			servedCh <- served
		})
	}
	if err := wg.Wait(); err != nil {
		t.Fatal(err)
	}
	served := <-servedCh

	nClients := len(clientIdx)
	refs := make([]*ParallelRef, nClients)
	var clientNodes []*simnet.Node
	for _, i := range clientIdx {
		clientNodes = append(clientNodes, g.nodes[i])
	}
	wg2 := vtime.NewWaitGroup(g.sim, "bind")
	for r := 0; r < nClients; r++ {
		wg2.Add(1)
		g.sim.Go("client-member", func() {
			defer wg2.Done()
			var comm *mpi.Comm
			if nClients > 1 {
				var err error
				comm, err = mpi.Join(g.arb, "cli", clientNodes, r)
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
			}
			m := Member{ORB: g.orbs[clientIdx[r]], Comm: comm, Rank: r, Size: nClients, Node: g.nodes[clientIdx[r]]}
			ref, err := Bind(m, "chemClient", "Coupling::Transport", port, served.Derived)
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			refs[r] = ref
		})
	}
	if err := wg2.Wait(); err != nil {
		t.Fatal(err)
	}
	return refs, impls
}

// invokeAll performs one collective invocation from every client member,
// each holding its block of a vector 0..total-1.
func invokeAll(t *testing.T, g *testGrid, refs []*ParallelRef, total int, dt float64) {
	t.Helper()
	nc := len(refs)
	wg := vtime.NewWaitGroup(g.sim, "invoke")
	for r := 0; r < nc; r++ {
		wg.Add(1)
		g.sim.Go("invoker", func() {
			defer wg.Done()
			lo, hi := blockRange(total, nc, r)
			chunk := make([]float64, hi-lo)
			for i := range chunk {
				chunk[i] = float64(lo + i)
			}
			err := refs[r].Invoke("setDensity", Distributed{Total: total, Chunk: chunk}, dt)
			if err != nil {
				t.Errorf("invoke rank %d: %v", r, err)
			}
		})
	}
	_ = wg.Wait()
}

func blockRange(total, parts, p int) (int, int) {
	q, r := total/parts, total%parts
	if p < r {
		lo := p * (q + 1)
		return lo, lo + q + 1
	}
	lo := r*(q+1) + (p-r)*q
	return lo, lo + q
}

func checkAssembled(t *testing.T, impls []*transportImpl, total int, dt float64) {
	t.Helper()
	ns := len(impls)
	for j, impl := range impls {
		lo, hi := blockRange(total, ns, j)
		impl.mu.Lock()
		if len(impl.got) != hi-lo {
			t.Errorf("server %d got %d elements, want %d", j, len(impl.got), hi-lo)
			impl.mu.Unlock()
			continue
		}
		for i, v := range impl.got {
			if v != float64(lo+i) {
				t.Errorf("server %d element %d = %v, want %v", j, i, v, float64(lo+i))
				break
			}
		}
		if impl.dt != dt {
			t.Errorf("server %d dt = %v", j, impl.dt)
		}
		impl.mu.Unlock()
	}
}

func TestParallelInvocationMtoN(t *testing.T) {
	cases := []struct{ nc, ns int }{
		{1, 1}, {2, 2}, {4, 4}, {2, 4}, {4, 2}, {3, 5}, {5, 3}, {1, 4}, {4, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dto%d", tc.nc, tc.ns), func(t *testing.T) {
			g := newTestGrid(t, tc.nc+tc.ns, simnet.Mico)
			g.sim.Run(func() {
				defer g.close()
				clientIdx := make([]int, tc.nc)
				serverIdx := make([]int, tc.ns)
				for i := range clientIdx {
					clientIdx[i] = i
				}
				for i := range serverIdx {
					serverIdx[i] = tc.nc + i
				}
				refs, impls := deployParallel(t, g, clientIdx, serverIdx, false)
				const total = 1003 // deliberately not divisible
				invokeAll(t, g, refs, total, 0.25)
				checkAssembled(t, impls, total, 0.25)
			})
		})
	}
}

func TestParallelOpWithoutDistributedArg(t *testing.T) {
	g := newTestGrid(t, 4, simnet.Mico)
	g.sim.Run(func() {
		defer g.close()
		refs, impls := deployParallel(t, g, []int{0, 1}, []int{2, 3}, false)
		wg := vtime.NewWaitGroup(g.sim, "tick")
		for r := range refs {
			wg.Add(1)
			g.sim.Go("ticker", func() {
				defer wg.Done()
				if err := refs[r].Invoke("tick"); err != nil {
					t.Errorf("tick rank %d: %v", r, err)
				}
			})
		}
		_ = wg.Wait()
		for j, impl := range impls {
			impl.mu.Lock()
			if impl.ticks != 1 {
				t.Errorf("server %d executed tick %d times, want exactly 1", j, impl.ticks)
			}
			impl.mu.Unlock()
		}
	})
}

func TestSequentialClientInterop(t *testing.T) {
	// A standard CORBA client calls the unmodified original interface on
	// member 0; the data still reaches every member.
	g := newTestGrid(t, 3, simnet.Mico)
	g.sim.Run(func() {
		defer g.close()
		desc, _ := ParseParallelDesc([]byte(parallelXML))
		port, _ := desc.Port("sim")
		impls := make([]*transportImpl, 2)
		servedCh := make(chan *ServedParallel, 2)
		serverNodes := []*simnet.Node{g.nodes[0], g.nodes[1]}
		wg := vtime.NewWaitGroup(g.sim, "serve")
		for r := 0; r < 2; r++ {
			wg.Add(1)
			g.sim.Go("member", func() {
				defer wg.Done()
				comm, err := mpi.Join(g.arb, "srv", serverNodes, r)
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				impls[r] = &transportImpl{rank: r, comm: comm}
				served, err := Serve(Member{
					ORB: g.orbs[r], Comm: comm, Rank: r, Size: 2, Node: g.nodes[r],
				}, "transport", "Coupling::Transport", port, impls[r])
				if err != nil {
					t.Errorf("serve: %v", err)
					return
				}
				servedCh <- served
			})
		}
		_ = wg.Wait()
		served := <-servedCh

		// Sequential client on node 2 uses the plain typed reference.
		ref, err := g.orbs[2].Object(served.Sequential)
		if err != nil {
			t.Fatalf("object: %v", err)
		}
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(i)
		}
		if _, err := ref.Invoke("setDensity", data, 0.5); err != nil {
			t.Fatalf("sequential invoke: %v", err)
		}
		checkAssembled(t, impls, 10, 0.5)
		// Non-parallel op routes to member 0's user servant.
		if _, err := ref.Invoke("tick"); err != nil {
			t.Fatalf("tick: %v", err)
		}
		vals, err := ref.Invoke("status")
		if err != nil || vals[0].(int32) != 1 {
			t.Fatalf("status = %v, %v", vals, err)
		}
	})
}

func TestFigure8LatencyShape(t *testing.T) {
	// Figure 8: latency 62/93/123/148 µs for 1/2/4/8 nodes a side with
	// MicoCCM. Latency is defined as in the paper: the Mico-equivalent
	// one-way latency plus coordination and the in-op MPI barrier —
	// i.e. half the measured round trip of a minimal invocation.
	want := map[int]time.Duration{
		1: 62 * time.Microsecond,
		2: 93 * time.Microsecond,
		4: 123 * time.Microsecond,
		8: 148 * time.Microsecond,
	}
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("%dx%d", n, n), func(t *testing.T) {
			g := newTestGrid(t, 2*n, simnet.Mico)
			g.sim.Run(func() {
				defer g.close()
				clientIdx := make([]int, n)
				serverIdx := make([]int, n)
				for i := 0; i < n; i++ {
					clientIdx[i], serverIdx[i] = i, n+i
				}
				refs, _ := deployParallel(t, g, clientIdx, serverIdx, true)
				// Warm-up aligns members and establishes connections.
				invokeAll(t, g, refs, n, 0)
				const iters = 4
				start := g.sim.Now()
				for k := 0; k < iters; k++ {
					invokeAll(t, g, refs, n, 0)
				}
				half := g.sim.Now().Sub(start) / (2 * iters)
				w := want[n]
				if half < w-w/10 || half > w+w/10 {
					t.Errorf("n=%d: latency = %v, want %v ±10%%", n, half, w)
				}
			})
		})
	}
}

func TestDescriptorValidation(t *testing.T) {
	cases := map[string]string{
		"bad dist": `<parallel component="C"><port name="p">
			<operation name="f"><argument name="x" distribution="diagonal"/></operation>
		</port></parallel>`,
		"dup op": `<parallel component="C"><port name="p">
			<operation name="f"/><operation name="f"/>
		</port></parallel>`,
		"no component": `<parallel><port name="p"/></parallel>`,
		"not xml":      `<<<`,
	}
	for name, src := range cases {
		if _, err := ParseParallelDesc([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	d, err := ParseParallelDesc([]byte(parallelXML))
	if err != nil {
		t.Fatal(err)
	}
	port, ok := d.Port("sim")
	if !ok {
		t.Fatal("port sim missing")
	}
	op, ok := port.Op("setDensity")
	if !ok || op.Arg("density") != "block" || op.Arg("dt") != "replicated" || op.Arg("ghost") != "replicated" {
		t.Fatalf("op = %+v", op)
	}
	if _, ok := d.Port("nope"); ok {
		t.Error("ghost port found")
	}
}

func TestDeriveRejectsBadShapes(t *testing.T) {
	repo := idl.NewRepository()
	repo.MustParse(`
		interface Bad1 { long f(in sequence<double> v); };
		interface Bad2 { void g(out double x); };
		interface Bad3 { void h(in double x); };
		interface Bad4 { void k(in sequence<double> a, in sequence<double> b); };
	`)
	mk := func(op, arg string) *PortPar {
		return &PortPar{Name: "p", Ops: []OpPar{{Name: op, Args: []ArgPar{{Name: arg, Dist: "block"}}}}}
	}
	for _, tc := range []struct{ iface, op, arg string }{
		{"Bad1", "f", "v"}, // non-void
		{"Bad2", "g", "x"}, // out param
		{"Bad3", "h", "x"}, // non-sequence distributed
	} {
		iface, _ := repo.Interface(tc.iface)
		if _, err := Derive(repo, iface, mk(tc.op, tc.arg)); err == nil {
			t.Errorf("%s.%s accepted", tc.iface, tc.op)
		}
	}
	// Two block args.
	iface, _ := repo.Interface("Bad4")
	port := &PortPar{Name: "p", Ops: []OpPar{{Name: "k", Args: []ArgPar{
		{Name: "a", Dist: "block"}, {Name: "b", Dist: "block"}}}}}
	if _, err := Derive(repo, iface, port); err == nil {
		t.Error("two block args accepted")
	}
	// Unknown op.
	if _, err := Derive(repo, iface, mk("ghost", "a")); err == nil {
		t.Error("ghost op accepted")
	}
}

func TestDerivedInterfaceShape(t *testing.T) {
	repo := idl.NewRepository()
	repo.MustParse(portIDL)
	iface, _ := repo.Interface("Coupling::Transport")
	desc, _ := ParseParallelDesc([]byte(parallelXML))
	port, _ := desc.Port("sim")
	derived, err := Derive(repo, iface, port)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Name != "Coupling::Transport_gccm" {
		t.Fatalf("derived name = %s", derived.Name)
	}
	op, ok := derived.Op("setDensity")
	if !ok {
		t.Fatal("derived setDensity missing")
	}
	// view, total, density_chunk, dt
	if len(op.Params) != 4 || op.Params[0].Name != "view" ||
		op.Params[1].Name != "total" || op.Params[2].Name != "density_chunk" ||
		op.Params[3].Name != "dt" {
		t.Fatalf("derived params = %v", op.Params)
	}
	if op.Params[2].Type.Kind != idl.KindSequence {
		t.Fatalf("chunk type = %v", op.Params[2].Type)
	}
	idlText := RenderIDL(derived)
	for _, want := range []string{"struct View", "setDensity", "density_chunk", "GridCCM"} {
		if !strings.Contains(idlText, want) {
			t.Errorf("rendered IDL missing %q:\n%s", want, idlText)
		}
	}
}

func TestInvokeValidation(t *testing.T) {
	g := newTestGrid(t, 2, simnet.Mico)
	g.sim.Run(func() {
		defer g.close()
		refs, _ := deployParallel(t, g, []int{0}, []int{1}, false)
		ref := refs[0]
		if err := ref.Invoke("status"); err == nil {
			t.Error("non-parallel op through parallel ref succeeded")
		}
		if err := ref.Invoke("setDensity", []float64{1}, 0.1); err == nil {
			t.Error("raw slice (not Distributed) accepted")
		}
		if err := ref.Invoke("setDensity", Distributed{Total: 10, Chunk: make([]float64, 3)}, 0.1); err == nil {
			t.Error("wrong chunk size accepted")
		}
		if err := ref.Invoke("setDensity", Distributed{Total: 1, Chunk: []float64{1}}); err == nil {
			t.Error("wrong arity accepted")
		}
	})
}
