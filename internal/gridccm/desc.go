// Package gridccm implements GridCCM (§4.2): the paper's extension of the
// CORBA Component Model with parallel components. An SPMD code runs as N
// members, one CCM component per process; an interposition layer between
// the user code and the stub intercepts invocations on operations declared
// parallel in an XML descriptor, redistributes the distributed (sequence)
// arguments from the M client members onto the N server members, and
// invokes a *derived* internal interface so that all nodes of both
// components take part in the communication — aggregate bandwidth with no
// master bottleneck, exactly Figure 3 of the paper.
//
// The original IDL is never modified and parallel components remain
// interoperable with sequential clients: member 0 additionally serves the
// original interface and scatters incoming data itself.
package gridccm

import (
	"encoding/xml"
	"fmt"
)

// ParallelDesc is the XML description of a component's parallelism, the
// second input of the GridCCM compiler (Figure 5).
type ParallelDesc struct {
	XMLName   xml.Name  `xml:"parallel"`
	Component string    `xml:"component,attr"`
	Ports     []PortPar `xml:"port"`
}

// PortPar declares the parallel operations of one facet.
type PortPar struct {
	Name string  `xml:"name,attr"`
	Ops  []OpPar `xml:"operation"`
}

// OpPar declares one parallel operation and the distribution of its
// arguments.
type OpPar struct {
	Name string   `xml:"name,attr"`
	Args []ArgPar `xml:"argument"`
}

// ArgPar gives one argument's distribution: "block" (the sequence is
// spread over the members) or "replicated" (every member gets the value).
type ArgPar struct {
	Name string `xml:"name,attr"`
	Dist string `xml:"distribution,attr"`
}

// Distributed wraps a block-distributed sequence argument in an SPMD
// invocation: each member passes its local block and the total logical
// length.
type Distributed struct {
	Total int
	Chunk any
}

// ParseParallelDesc decodes and validates a parallelism descriptor.
func ParseParallelDesc(data []byte) (*ParallelDesc, error) {
	var d ParallelDesc
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("gridccm: parallelism descriptor: %w", err)
	}
	if d.Component == "" {
		return nil, fmt.Errorf("gridccm: descriptor missing component attribute")
	}
	seen := map[string]bool{}
	for _, port := range d.Ports {
		for _, op := range port.Ops {
			key := port.Name + "." + op.Name
			if seen[key] {
				return nil, fmt.Errorf("gridccm: duplicate operation %s", key)
			}
			seen[key] = true
			for _, a := range op.Args {
				if a.Dist != "block" && a.Dist != "replicated" {
					return nil, fmt.Errorf("gridccm: %s argument %q: unknown distribution %q",
						key, a.Name, a.Dist)
				}
			}
		}
	}
	return &d, nil
}

// Port returns the descriptor of one facet, if declared parallel.
func (d *ParallelDesc) Port(name string) (*PortPar, bool) {
	for i := range d.Ports {
		if d.Ports[i].Name == name {
			return &d.Ports[i], true
		}
	}
	return nil, false
}

// Op returns the parallel declaration of an operation on a port.
func (p *PortPar) Op(name string) (*OpPar, bool) {
	for i := range p.Ops {
		if p.Ops[i].Name == name {
			return &p.Ops[i], true
		}
	}
	return nil, false
}

// Arg returns an argument's declared distribution ("replicated" when not
// listed, matching the paper's default).
func (o *OpPar) Arg(name string) string {
	for _, a := range o.Args {
		if a.Name == name {
			return a.Dist
		}
	}
	return "replicated"
}
