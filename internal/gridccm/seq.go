package gridccm

import "fmt"

// Typed sequence helpers covering the ORB's value mapping for sequences.

// seqMake allocates a sequence of n elements with the same dynamic type as
// the sample (defaulting to []any for a nil sample).
func seqMake(like any, n int) any {
	switch like.(type) {
	case []byte:
		return make([]byte, n)
	case []float64:
		return make([]float64, n)
	case []int32:
		return make([]int32, n)
	case []string:
		return make([]string, n)
	default:
		return make([]any, n)
	}
}

// seqSlice returns chunk[lo:hi] preserving the dynamic type.
func seqSlice(v any, lo, hi int) (any, error) {
	switch xs := v.(type) {
	case []byte:
		if hi > len(xs) {
			return nil, fmt.Errorf("gridccm: slice [%d:%d) beyond %d", lo, hi, len(xs))
		}
		return xs[lo:hi], nil
	case []float64:
		if hi > len(xs) {
			return nil, fmt.Errorf("gridccm: slice [%d:%d) beyond %d", lo, hi, len(xs))
		}
		return xs[lo:hi], nil
	case []int32:
		if hi > len(xs) {
			return nil, fmt.Errorf("gridccm: slice [%d:%d) beyond %d", lo, hi, len(xs))
		}
		return xs[lo:hi], nil
	case []string:
		if hi > len(xs) {
			return nil, fmt.Errorf("gridccm: slice [%d:%d) beyond %d", lo, hi, len(xs))
		}
		return xs[lo:hi], nil
	case []any:
		if hi > len(xs) {
			return nil, fmt.Errorf("gridccm: slice [%d:%d) beyond %d", lo, hi, len(xs))
		}
		return xs[lo:hi], nil
	default:
		return nil, fmt.Errorf("gridccm: %T is not a sequence", v)
	}
}

// seqCopyAt copies src into dst starting at offset off.
func seqCopyAt(dst any, off int, src any) error {
	switch d := dst.(type) {
	case []byte:
		s, ok := src.([]byte)
		if !ok || off+len(s) > len(d) {
			return copyErr(dst, off, src)
		}
		copy(d[off:], s)
	case []float64:
		s, ok := src.([]float64)
		if !ok || off+len(s) > len(d) {
			return copyErr(dst, off, src)
		}
		copy(d[off:], s)
	case []int32:
		s, ok := src.([]int32)
		if !ok || off+len(s) > len(d) {
			return copyErr(dst, off, src)
		}
		copy(d[off:], s)
	case []string:
		s, ok := src.([]string)
		if !ok || off+len(s) > len(d) {
			return copyErr(dst, off, src)
		}
		copy(d[off:], s)
	case []any:
		s, ok := src.([]any)
		if !ok || off+len(s) > len(d) {
			return copyErr(dst, off, src)
		}
		copy(d[off:], s)
	default:
		return fmt.Errorf("gridccm: %T is not a sequence", dst)
	}
	return nil
}

func copyErr(dst any, off int, src any) error {
	return fmt.Errorf("gridccm: cannot copy %T into %T at offset %d", src, dst, off)
}
