package madeleine

import (
	"encoding/binary"
	"fmt"

	"padico/internal/pool"
)

// Packer builds a Madeleine message incrementally, mirroring the original
// begin_packing/pack/end_packing API. Blocks packed in Express mode land in
// the eagerly-delivered header; Cheaper mode appends to the bulk payload.
// Each block is length-prefixed so Unpacker can return the exact regions.
//
// Packing buffers are drawn from the shared byte pool; Message transfers
// their ownership out, so a Packer may be reused for the next message
// without touching the previous one.
type Packer struct {
	hdr     []byte
	payload []byte
}

// PackMode selects where a packed block travels.
type PackMode int

const (
	// Express blocks are carried in the message header: delivered and
	// readable before the bulk payload (used for control information).
	Express PackMode = iota
	// Cheaper blocks use the cheapest path for bulk data.
	Cheaper
)

// Pack appends one block in the given mode.
func (p *Packer) Pack(data []byte, mode PackMode) {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(data)))
	if mode == Express {
		p.hdr = packBlock(p.hdr, lenbuf, data)
		return
	}
	p.payload = packBlock(p.payload, lenbuf, data)
}

// packBlock appends one length-prefixed block, growing buf through the
// shared pool so steady-state packing recycles backing arrays instead of
// allocating them.
func packBlock(buf []byte, lenbuf [4]byte, data []byte) []byte {
	buf = pool.Grow(buf, len(buf)+4+len(data))
	buf = append(buf, lenbuf[:]...)
	return append(buf, data...)
}

// Message finalizes the packing (end_packing) and returns the wire message,
// transferring buffer ownership out of the Packer: the Packer is left empty
// and ready to pack the next message. When the caller is the message's sole
// owner and done with it, Message.Recycle returns the buffers to the pool —
// see its caveats before calling it on anything delivered in-process.
func (p *Packer) Message() Message {
	m := Message{Header: p.hdr, Payload: p.payload}
	p.hdr, p.payload = nil, nil
	return m
}

// Reset abandons the message packed so far, recycling its buffers. A
// previously finalized Message is unaffected — Message transferred those
// buffers out.
func (p *Packer) Reset() {
	pool.Put(p.hdr)
	pool.Put(p.payload)
	p.hdr, p.payload = nil, nil
}

// Unpacker walks a received message block by block.
type Unpacker struct {
	msg        Message
	hoff, poff int
}

// NewUnpacker starts unpacking msg.
func NewUnpacker(msg Message) *Unpacker { return &Unpacker{msg: msg} }

// Unpack returns the next block packed in the given mode. Blocks of each
// mode must be unpacked in the order they were packed.
func (u *Unpacker) Unpack(mode PackMode) ([]byte, error) {
	buf, off := u.msg.Payload, &u.poff
	if mode == Express {
		buf, off = u.msg.Header, &u.hoff
	}
	if *off+4 > len(buf) {
		return nil, fmt.Errorf("madeleine: unpack past end of %v region", mode)
	}
	n := int(binary.BigEndian.Uint32(buf[*off:]))
	*off += 4
	if *off+n > len(buf) {
		return nil, fmt.Errorf("madeleine: corrupt block length %d", n)
	}
	b := buf[*off : *off+n]
	*off += n
	return b, nil
}

func (m PackMode) String() string {
	if m == Express {
		return "express"
	}
	return "cheaper"
}
