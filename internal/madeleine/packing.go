package madeleine

import (
	"encoding/binary"
	"fmt"
)

// Packer builds a Madeleine message incrementally, mirroring the original
// begin_packing/pack/end_packing API. Blocks packed in Express mode land in
// the eagerly-delivered header; Cheaper mode appends to the bulk payload.
// Each block is length-prefixed so Unpacker can return the exact regions.
type Packer struct {
	hdr     []byte
	payload []byte
}

// PackMode selects where a packed block travels.
type PackMode int

const (
	// Express blocks are carried in the message header: delivered and
	// readable before the bulk payload (used for control information).
	Express PackMode = iota
	// Cheaper blocks use the cheapest path for bulk data.
	Cheaper
)

// Pack appends one block in the given mode.
func (p *Packer) Pack(data []byte, mode PackMode) {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(data)))
	switch mode {
	case Express:
		p.hdr = append(p.hdr, lenbuf[:]...)
		p.hdr = append(p.hdr, data...)
	default:
		p.payload = append(p.payload, lenbuf[:]...)
		p.payload = append(p.payload, data...)
	}
}

// Message finalizes the packing (end_packing) and returns the wire message.
func (p *Packer) Message() Message {
	return Message{Header: p.hdr, Payload: p.payload}
}

// Unpacker walks a received message block by block.
type Unpacker struct {
	msg        Message
	hoff, poff int
}

// NewUnpacker starts unpacking msg.
func NewUnpacker(msg Message) *Unpacker { return &Unpacker{msg: msg} }

// Unpack returns the next block packed in the given mode. Blocks of each
// mode must be unpacked in the order they were packed.
func (u *Unpacker) Unpack(mode PackMode) ([]byte, error) {
	buf, off := u.msg.Payload, &u.poff
	if mode == Express {
		buf, off = u.msg.Header, &u.hoff
	}
	if *off+4 > len(buf) {
		return nil, fmt.Errorf("madeleine: unpack past end of %v region", mode)
	}
	n := int(binary.BigEndian.Uint32(buf[*off:]))
	*off += 4
	if *off+n > len(buf) {
		return nil, fmt.Errorf("madeleine: corrupt block length %d", n)
	}
	b := buf[*off : *off+n]
	*off += n
	return b, nil
}

func (m PackMode) String() string {
	if m == Express {
		return "express"
	}
	return "cheaper"
}
