// Package madeleine is the parallel-paradigm low-level network library,
// substituting the Madeleine II library the original PadicoTM builds on.
// It drives SAN fabrics (Myrinet, SCI) with message semantics: channels
// spanning a fixed node set, per-node endpoints, and two-part messages
// (an express header delivered eagerly and a bulk payload, mirroring
// Madeleine's express/cheaper packing modes).
//
// Exclusive-driver semantics are enforced here: fabrics marked Exclusive
// (BIP/GM-style) admit a single open channel. This is precisely the
// conflict the paper's arbitration layer exists to resolve — PadicoTM opens
// the device once and multiplexes it (see package arbitration).
package madeleine

import (
	"errors"
	"fmt"
	"sync"

	"padico/internal/pool"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// ErrDeviceBusy is returned when opening a channel on an exclusive fabric
// that already has an owner (e.g. Myrinet through a BIP-like driver).
var ErrDeviceBusy = errors.New("madeleine: exclusive device already opened by another client")

// ErrClosed is returned on operations against a closed channel or endpoint.
var ErrClosed = errors.New("madeleine: channel closed")

// Message is a two-part Madeleine message: a small express header (always
// delivered, cheap to inspect) and the bulk payload.
type Message struct {
	Header  []byte
	Payload []byte
}

// Len returns the total wire size of the message.
func (m Message) Len() int { return len(m.Header) + len(m.Payload) }

// Recycle returns the message's buffers to the shared byte pool and empties
// the message. Strictly opt-in, and only for the message's sole owner:
// simulated delivery hands the SAME backing arrays to the receiver, so a
// sender must never recycle a message it has sent in-process, and a
// receiver may recycle only when its protocol guarantees the sender
// transferred ownership. When in doubt, don't — skipping Recycle is always
// correct, it merely leaves the buffers to the garbage collector.
func (m *Message) Recycle() {
	pool.Put(m.Header)
	pool.Put(m.Payload)
	m.Header, m.Payload = nil, nil
}

var owners sync.Map // *simnet.Fabric -> *Channel

// Channel is a Madeleine communication channel: a fixed set of nodes on one
// SAN fabric, with one endpoint per node addressed by rank.
type Channel struct {
	fabric *simnet.Fabric
	net    *simnet.Net
	eps    []*Endpoint
	cost   simnet.Cost
	closed bool
	mu     sync.Mutex
}

// Open creates a channel over all nodes of the fabric. On exclusive fabrics
// only one open channel may exist at a time.
func Open(fabric *simnet.Fabric) (*Channel, error) {
	return OpenCost(fabric, simnet.MadeleineCost)
}

// OpenCost is Open with an explicit per-layer cost (used by ablations).
func OpenCost(fabric *simnet.Fabric, cost simnet.Cost) (*Channel, error) {
	if fabric.Kind != simnet.SAN {
		return nil, fmt.Errorf("madeleine: fabric %q is %v, not a SAN", fabric.Name, fabric.Kind)
	}
	ch := &Channel{fabric: fabric, net: fabric.Net(), cost: cost}
	if fabric.Exclusive {
		if _, loaded := owners.LoadOrStore(fabric, ch); loaded {
			return nil, fmt.Errorf("%w: fabric %q", ErrDeviceBusy, fabric.Name)
		}
	}
	rt := ch.net.Runtime()
	for rank, nd := range fabric.Nodes() {
		ch.eps = append(ch.eps, &Endpoint{
			ch:   ch,
			rank: rank,
			node: nd,
			in:   vtime.NewQueue[Delivery](rt, fmt.Sprintf("madeleine: recv on %s", nd.Name)),
		})
	}
	return ch, nil
}

// Close releases the channel and the exclusive driver, closing every
// endpoint's receive queue.
func (c *Channel) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.fabric.Exclusive {
		owners.CompareAndDelete(c.fabric, c)
	}
	for _, ep := range c.eps {
		ep.in.Close()
	}
}

// Size returns the number of ranks in the channel.
func (c *Channel) Size() int { return len(c.eps) }

// Endpoint returns the endpoint for the given rank.
func (c *Channel) Endpoint(rank int) (*Endpoint, error) {
	if rank < 0 || rank >= len(c.eps) {
		return nil, fmt.Errorf("madeleine: rank %d out of range [0,%d)", rank, len(c.eps))
	}
	return c.eps[rank], nil
}

// Fabric returns the underlying device.
func (c *Channel) Fabric() *simnet.Fabric { return c.fabric }

// Delivery is a received message with its source rank.
type Delivery struct {
	Src int
	Msg Message
}

// Endpoint is one rank's attachment to a channel.
type Endpoint struct {
	ch   *Channel
	rank int
	node *simnet.Node
	in   *vtime.Queue[Delivery]
}

// Rank returns the endpoint's logical number in the channel.
func (e *Endpoint) Rank() int { return e.rank }

// Node returns the machine hosting this endpoint.
func (e *Endpoint) Node() *simnet.Node { return e.node }

// Send transmits msg to the destination rank, blocking the caller until the
// message has arrived (Madeleine's synchronous semantics for the bulk
// part). The layer's protocol cost is charged to the caller.
func (e *Endpoint) Send(dst int, msg Message) error {
	c := e.ch
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if dst < 0 || dst >= len(c.eps) {
		return fmt.Errorf("madeleine: send to rank %d out of range [0,%d)", dst, len(c.eps))
	}
	to := c.eps[dst]
	e.node.Charge(c.cost, msg.Len())
	path, err := c.fabric.Path(e.node, to.node)
	if err != nil {
		return err
	}
	if err := c.net.Transfer(path, msg.Len()); err != nil {
		return err
	}
	to.in.Push(Delivery{Src: e.rank, Msg: msg})
	return nil
}

// Recv blocks until a message arrives from any rank and returns it.
func (e *Endpoint) Recv() (Delivery, error) {
	d, err := e.in.Pop()
	if err != nil {
		if errors.Is(err, vtime.ErrClosed) {
			return Delivery{}, ErrClosed
		}
		return Delivery{}, err
	}
	return d, nil
}

// TryRecv returns a pending message without blocking.
func (e *Endpoint) TryRecv() (Delivery, bool) { return e.in.TryPop() }

// Pending reports the number of undelivered messages.
func (e *Endpoint) Pending() int { return e.in.Len() }
