package madeleine

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"padico/internal/simnet"
	"padico/internal/vtime"
)

func newSAN(n int) (*vtime.Sim, *simnet.Fabric) {
	s := vtime.NewSim()
	net := simnet.New(s)
	var nodes []*simnet.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.NewNode("n"+string(rune('0'+i))))
	}
	return s, net.NewMyrinet2000("myri", nodes)
}

func TestSendRecvRoundtrip(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, err := Open(fab)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer ch.Close()
		e0, _ := ch.Endpoint(0)
		e1, _ := ch.Endpoint(1)
		s.Go("sender", func() {
			err := e0.Send(1, Message{Header: []byte("hdr"), Payload: []byte("payload")})
			if err != nil {
				t.Errorf("send: %v", err)
			}
		})
		d, err := e1.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if d.Src != 0 || string(d.Msg.Header) != "hdr" || string(d.Msg.Payload) != "payload" {
			t.Fatalf("got %+v", d)
		}
	})
}

func TestSendTiming(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, _ := Open(fab)
		defer ch.Close()
		e0, _ := ch.Endpoint(0)
		e1, _ := ch.Endpoint(1)
		sentCh := make(chan time.Duration, 1)
		s.Go("sender", func() {
			start := s.Now()
			_ = e0.Send(1, Message{Payload: make([]byte, 1_000_000)})
			sentCh <- s.Now().Sub(start)
		})
		if _, err := e1.Recv(); err != nil {
			t.Fatalf("recv: %v", err)
		}
		sent := <-sentCh
		// 2 µs Madeleine + 0.1667 ns/B + 4 ms wire + 7 µs latency ≈ 4.176 ms
		lo := 4170 * time.Microsecond
		hi := 4180 * time.Microsecond
		if sent < lo || sent > hi {
			t.Fatalf("1MB send took %v, want ≈4.176ms", sent)
		}
	})
}

func TestExclusiveDriverConflict(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, err := Open(fab)
		if err != nil {
			t.Fatalf("first open: %v", err)
		}
		if _, err := Open(fab); !errors.Is(err, ErrDeviceBusy) {
			t.Fatalf("second open err = %v, want ErrDeviceBusy", err)
		}
		ch.Close()
		ch2, err := Open(fab)
		if err != nil {
			t.Fatalf("open after close: %v", err)
		}
		ch2.Close()
	})
}

func TestOpenRejectsNonSAN(t *testing.T) {
	s := vtime.NewSim()
	net := simnet.New(s)
	a, b := net.NewNode("a"), net.NewNode("b")
	eth := net.NewEthernet100("eth", []*simnet.Node{a, b})
	if _, err := Open(eth); err == nil {
		t.Fatal("opened a Madeleine channel on Ethernet")
	}
}

func TestBadRanks(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, _ := Open(fab)
		defer ch.Close()
		if _, err := ch.Endpoint(5); err == nil {
			t.Error("Endpoint(5) succeeded")
		}
		if _, err := ch.Endpoint(-1); err == nil {
			t.Error("Endpoint(-1) succeeded")
		}
		e0, _ := ch.Endpoint(0)
		if err := e0.Send(9, Message{}); err == nil {
			t.Error("send to rank 9 succeeded")
		}
	})
}

func TestClosedChannelOps(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, _ := Open(fab)
		e0, _ := ch.Endpoint(0)
		e1, _ := ch.Endpoint(1)
		ch.Close()
		ch.Close() // idempotent
		if err := e0.Send(1, Message{Header: []byte("x")}); !errors.Is(err, ErrClosed) {
			t.Errorf("send on closed = %v", err)
		}
		if _, err := e1.Recv(); !errors.Is(err, ErrClosed) {
			t.Errorf("recv on closed = %v", err)
		}
	})
}

func TestTryRecvAndPending(t *testing.T) {
	s, fab := newSAN(2)
	s.Run(func() {
		ch, _ := Open(fab)
		defer ch.Close()
		e0, _ := ch.Endpoint(0)
		e1, _ := ch.Endpoint(1)
		if _, ok := e1.TryRecv(); ok {
			t.Error("TryRecv on empty endpoint = ok")
		}
		done := vtime.NewWaitGroup(s, "join")
		done.Add(1)
		s.Go("sender", func() {
			_ = e0.Send(1, Message{Header: []byte("a")})
			done.Done()
		})
		_ = done.Wait()
		if e1.Pending() != 1 {
			t.Fatalf("Pending = %d", e1.Pending())
		}
		if d, ok := e1.TryRecv(); !ok || string(d.Msg.Header) != "a" {
			t.Fatalf("TryRecv = %+v, %v", d, ok)
		}
	})
}

func TestManyToOneOrderingPerSender(t *testing.T) {
	s, fab := newSAN(3)
	s.Run(func() {
		ch, _ := Open(fab)
		defer ch.Close()
		for r := 0; r < 2; r++ {
			ep, _ := ch.Endpoint(r)
			s.Go("sender", func() {
				for i := byte(0); i < 5; i++ {
					_ = ep.Send(2, Message{Header: []byte{byte(ep.Rank()), i}})
				}
			})
		}
		e2, _ := ch.Endpoint(2)
		next := map[byte]byte{0: 0, 1: 0}
		for i := 0; i < 10; i++ {
			d, err := e2.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			src, seq := d.Msg.Header[0], d.Msg.Header[1]
			if seq != next[src] {
				t.Fatalf("out of order from %d: got %d want %d", src, seq, next[src])
			}
			next[src]++
		}
	})
}

func TestPackerUnpackerRoundtrip(t *testing.T) {
	var p Packer
	p.Pack([]byte("control"), Express)
	p.Pack([]byte("bulk-1"), Cheaper)
	p.Pack([]byte("more-control"), Express)
	p.Pack([]byte("bulk-2"), Cheaper)
	m := p.Message()
	u := NewUnpacker(m)
	for _, want := range []struct {
		mode PackMode
		data string
	}{{Express, "control"}, {Express, "more-control"}, {Cheaper, "bulk-1"}, {Cheaper, "bulk-2"}} {
		got, err := u.Unpack(want.mode)
		if err != nil {
			t.Fatalf("unpack %v: %v", want.mode, err)
		}
		if string(got) != want.data {
			t.Fatalf("unpack %v = %q, want %q", want.mode, got, want.data)
		}
	}
	if _, err := u.Unpack(Express); err == nil {
		t.Error("unpack past end succeeded")
	}
}

func TestPackerProperty(t *testing.T) {
	f := func(blocks [][]byte, modes []bool) bool {
		if len(blocks) > 16 {
			return true
		}
		var p Packer
		for i, b := range blocks {
			mode := Cheaper
			if i < len(modes) && modes[i] {
				mode = Express
			}
			p.Pack(b, mode)
		}
		u := NewUnpacker(p.Message())
		for i, b := range blocks {
			mode := Cheaper
			if i < len(modes) && modes[i] {
				mode = Express
			}
			got, err := u.Unpack(mode)
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackerCorruptLength(t *testing.T) {
	u := NewUnpacker(Message{Header: []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}})
	if _, err := u.Unpack(Express); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

// TestPackerOwnershipTransfer pins the pooled-Packer contract: Message
// empties the Packer, reuse packs a fresh message without disturbing the
// first, and Recycle + repack runs allocation-free in steady state.
func TestPackerOwnershipTransfer(t *testing.T) {
	var p Packer
	p.Pack([]byte("first-hdr"), Express)
	p.Pack([]byte("first-bulk"), Cheaper)
	m1 := p.Message()

	// The Packer relinquished its buffers: the next message must not share
	// backing with (or clobber) the finalized one.
	p.Pack([]byte("SECOND-HDR"), Express)
	m2 := p.Message()
	if got, _ := NewUnpacker(m1).Unpack(Express); string(got) != "first-hdr" {
		t.Fatalf("first message corrupted by reuse: header block %q", got)
	}
	if got, _ := NewUnpacker(m2).Unpack(Express); string(got) != "SECOND-HDR" {
		t.Fatalf("second message header block %q", got)
	}
	m1.Recycle()
	m2.Recycle()
	if m1.Len() != 0 {
		t.Fatalf("recycled message still reports %d bytes", m1.Len())
	}

	// Reset drops a half-packed message; the Packer stays usable.
	p.Pack([]byte("abandoned"), Cheaper)
	p.Reset()
	p.Pack([]byte("kept"), Cheaper)
	m := p.Message()
	if got, _ := NewUnpacker(m).Unpack(Cheaper); string(got) != "kept" {
		t.Fatalf("after Reset, payload block %q", got)
	}
	m.Recycle()

	// Steady state: pack → finalize → recycle draws every buffer from the
	// pool. (The Message value itself lives on the stack.)
	block := bytes.Repeat([]byte{0xAB}, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		var p Packer
		p.Pack(block, Express)
		p.Pack(block, Cheaper)
		p.Pack(block, Cheaper)
		m := p.Message()
		m.Recycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state pack/recycle allocates %.1f per message", allocs)
	}
}
