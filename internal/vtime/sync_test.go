package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFOOrder(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		q := NewQueue[int](s, "q")
		for i := 0; i < 10; i++ {
			q.Push(i)
		}
		for i := 0; i < 10; i++ {
			v, err := q.Pop()
			if err != nil || v != i {
				t.Fatalf("Pop = %d,%v want %d", v, err, i)
			}
		}
	})
}

func TestQueueBlockingHandoff(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		q := NewQueue[string](s, "q")
		s.Go("producer", func() {
			s.Sleep(3 * time.Microsecond)
			q.Push("hello")
		})
		v, err := q.Pop()
		if err != nil || v != "hello" {
			t.Fatalf("Pop = %q,%v", v, err)
		}
		if s.Now() != Time(3*time.Microsecond) {
			t.Fatalf("Pop returned at %v, want 3µs", s.Now())
		}
	})
}

func TestQueueCloseWakesReceivers(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		q := NewQueue[int](s, "q")
		got := make(chan error, 2)
		for i := 0; i < 2; i++ {
			s.Go("recv", func() {
				_, err := q.Pop()
				got <- err
			})
		}
		s.Sleep(time.Microsecond)
		q.Close()
		s.Sleep(time.Microsecond)
		for i := 0; i < 2; i++ {
			if err := <-got; err != ErrClosed {
				t.Errorf("Pop err = %v, want ErrClosed", err)
			}
		}
	})
}

func TestQueueDrainAfterClose(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		q := NewQueue[int](s, "q")
		q.Push(1)
		q.Push(2)
		q.Close()
		if v, err := q.Pop(); err != nil || v != 1 {
			t.Fatalf("Pop = %d,%v", v, err)
		}
		if v, ok := q.TryPop(); !ok || v != 2 {
			t.Fatalf("TryPop = %d,%v", v, ok)
		}
		if _, err := q.Pop(); err != ErrClosed {
			t.Fatalf("Pop on drained closed queue: %v", err)
		}
		q.Push(3) // no-op after close
		if q.Len() != 0 {
			t.Fatal("Push after Close stored an item")
		}
	})
}

func TestQueuePeekAndLen(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		q := NewQueue[int](s, "q")
		if _, ok := q.Peek(); ok {
			t.Fatal("Peek on empty queue = ok")
		}
		q.Push(7)
		q.Push(8)
		if v, ok := q.Peek(); !ok || v != 7 {
			t.Fatalf("Peek = %d,%v", v, ok)
		}
		if q.Len() != 2 {
			t.Fatalf("Len = %d", q.Len())
		}
	})
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		sem := NewSemaphore(s, "sem", 2)
		var mu sync.Mutex
		var cur, peak int
		wg := NewWaitGroup(s, "join")
		for i := 0; i < 8; i++ {
			wg.Add(1)
			s.Go("user", func() {
				if err := sem.Acquire(); err != nil {
					t.Errorf("acquire: %v", err)
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				s.Sleep(10 * time.Microsecond)
				mu.Lock()
				cur--
				mu.Unlock()
				sem.Release()
				wg.Done()
			})
		}
		_ = wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		if peak > 2 {
			t.Fatalf("peak concurrency %d exceeds semaphore limit 2", peak)
		}
		if want := Time(40 * time.Microsecond); s.Now() != want {
			t.Fatalf("8 tasks / 2 slots / 10µs each took %v, want %v", s.Now(), want)
		}
	})
}

func TestWaitGroupZeroWaitReturnsImmediately(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		wg := NewWaitGroup(s, "wg")
		if err := wg.Wait(); err != nil {
			t.Fatalf("wait: %v", err)
		}
	})
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative counter")
			}
		}()
		wg := NewWaitGroup(s, "wg")
		wg.Done()
	})
}

// Property: any push sequence pops back in identical order (single
// consumer), regardless of interleaved blocking.
func TestQueueOrderProperty(t *testing.T) {
	f := func(vals []int16) bool {
		s := NewSim()
		ok := true
		s.Run(func() {
			q := NewQueue[int16](s, "q")
			s.Go("producer", func() {
				for _, v := range vals {
					s.Sleep(time.Microsecond)
					q.Push(v)
				}
				q.Close()
			})
			var got []int16
			for {
				v, err := q.Pop()
				if err != nil {
					break
				}
				got = append(got, v)
			}
			if len(got) != len(vals) {
				ok = false
				return
			}
			for i := range vals {
				if got[i] != vals[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueUnderWallClock(t *testing.T) {
	w := NewWall()
	q := NewQueue[int](w, "q")
	done := make(chan int, 1)
	w.Go("consumer", func() {
		v, err := q.Pop()
		if err != nil {
			t.Errorf("pop: %v", err)
		}
		done <- v
	})
	q.Push(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("wall-clock queue handoff timed out")
	}
	w.Wait()
}
