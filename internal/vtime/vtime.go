// Package vtime provides the execution substrate for Padico: a deterministic
// discrete-event virtual-time scheduler (Sim) and a wall-clock twin (Wall),
// both implementing the Runtime interface.
//
// Middleware code (Madeleine, MPI, the ORB, GridCCM, ...) is written in a
// natural blocking style against Runtime. Under Sim, every blocking point
// parks the calling goroutine; when all registered actors are parked, the
// scheduler advances the virtual clock to the earliest pending event and
// wakes its waiters. Timing is therefore deterministic and has the
// microsecond resolution the paper's evaluation needs, while the very same
// code paths run unchanged under Wall (used with the real-TCP driver).
//
// Discipline for code running under Sim: goroutines that participate must be
// spawned with Runtime.Go, and any cross-actor blocking must go through
// vtime primitives (Waiter, Queue, Semaphore, WaitGroup). Blocking on plain
// Go channels between actors would stall the virtual clock.
package vtime

import (
	"errors"
	"fmt"
	"time"
)

// Time is an instant on a Runtime's clock, in nanoseconds since the runtime
// started. Virtual runtimes start at 0.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration returns t as a duration since the runtime epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds since the runtime epoch.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds returns t expressed in microseconds since the runtime epoch.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return time.Duration(t).String() }

// ErrAborted is returned from blocking operations when the runtime is shut
// down while the caller is parked. Long-running daemon actors use it to
// unwind cleanly.
var ErrAborted = errors.New("vtime: runtime terminated")

// Waiter is a one-shot parking primitive. A goroutine calls Wait to block
// until another party calls Fire. Firing before Wait makes Wait return
// immediately. Waiters are single-use.
type Waiter interface {
	// Wait blocks the calling actor until Fire is called. It returns
	// ErrAborted if the runtime terminates first.
	Wait() error
	// Fire releases the waiter. It is idempotent and may be called from
	// any goroutine, including timer callbacks.
	Fire()
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running.
	Stop() bool
}

// Runtime is the execution substrate: either the deterministic simulator
// (Sim) or the wall clock (Wall).
type Runtime interface {
	// Now returns the current instant.
	Now() Time
	// Sleep blocks the calling actor for d.
	Sleep(d time.Duration)
	// Go spawns f as a new actor. The name is used in deadlock
	// diagnostics.
	Go(name string, f func())
	// NewWaiter allocates a one-shot parking primitive. The reason is
	// used in deadlock diagnostics.
	NewWaiter(reason string) Waiter
	// AfterFunc schedules f to run at Now+d. Under Sim, f runs on the
	// scheduler's watch and must not block; it may fire waiters, push to
	// queues and schedule further timers.
	AfterFunc(d time.Duration, f func()) Timer
}

// DeadlockError describes a virtual-time deadlock: live actors exist, none
// is runnable, and no timer event is pending.
type DeadlockError struct {
	Now    Time
	Parked []string // reasons of parked waiters
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at t=%v: %d parked waiter(s): %v",
		e.Now, len(e.Parked), e.Parked)
}
