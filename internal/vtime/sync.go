package vtime

import (
	"errors"
	"sync"
)

// ErrClosed is returned by blocking primitives that were closed while (or
// before) the caller waited.
var ErrClosed = errors.New("vtime: closed")

// Queue is an unbounded FIFO usable from any Runtime. Push never blocks;
// Pop parks the caller until an item or Close arrives. It is the canonical
// cross-actor handoff primitive under Sim.
type Queue[T any] struct {
	rt      Runtime
	reason  string
	mu      sync.Mutex
	items   []T
	waiters []Waiter
	closed  bool
}

// NewQueue returns an empty queue. The reason labels parked receivers in
// deadlock diagnostics.
func NewQueue[T any](rt Runtime, reason string) *Queue[T] {
	return &Queue[T]{rt: rt, reason: reason}
}

// Push appends v and wakes one parked receiver, if any. Push on a closed
// queue is a no-op.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, v)
	w := q.takeWaiterLocked()
	q.mu.Unlock()
	if w != nil {
		w.Fire()
	}
}

// Pop removes and returns the oldest item, parking the caller while the
// queue is empty. It returns ErrClosed once the queue is closed and
// drained, or ErrAborted if the runtime terminates.
func (q *Queue[T]) Pop() (T, error) {
	var zero T
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			v := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return v, nil
		}
		if q.closed {
			q.mu.Unlock()
			return zero, ErrClosed
		}
		w := q.rt.NewWaiter(q.reason)
		q.waiters = append(q.waiters, w)
		q.mu.Unlock()
		if err := w.Wait(); err != nil {
			return zero, err
		}
	}
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed and wakes every parked receiver. Items
// already queued may still be drained by Pop/TryPop.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *Queue[T]) takeWaiterLocked() Waiter {
	if len(q.waiters) == 0 {
		return nil
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	return w
}

// Semaphore is a counting semaphore over a Runtime.
type Semaphore struct {
	rt      Runtime
	reason  string
	mu      sync.Mutex
	tokens  int
	waiters []Waiter
}

// NewSemaphore returns a semaphore holding n tokens.
func NewSemaphore(rt Runtime, reason string, n int) *Semaphore {
	return &Semaphore{rt: rt, reason: reason, tokens: n}
}

// Acquire takes one token, parking the caller until one is available.
func (s *Semaphore) Acquire() error {
	for {
		s.mu.Lock()
		if s.tokens > 0 {
			s.tokens--
			s.mu.Unlock()
			return nil
		}
		w := s.rt.NewWaiter(s.reason)
		s.waiters = append(s.waiters, w)
		s.mu.Unlock()
		if err := w.Wait(); err != nil {
			return err
		}
	}
}

// Release returns one token and wakes one parked acquirer, if any.
func (s *Semaphore) Release() {
	s.mu.Lock()
	s.tokens++
	var w Waiter
	if len(s.waiters) > 0 {
		w = s.waiters[0]
		s.waiters = s.waiters[1:]
	}
	s.mu.Unlock()
	if w != nil {
		w.Fire()
	}
}

// WaitGroup mirrors sync.WaitGroup over a Runtime.
type WaitGroup struct {
	rt      Runtime
	reason  string
	mu      sync.Mutex
	count   int
	waiters []Waiter
}

// NewWaitGroup returns a wait group with a zero count.
func NewWaitGroup(rt Runtime, reason string) *WaitGroup {
	return &WaitGroup{rt: rt, reason: reason}
}

// Add adjusts the count by delta. It panics if the count goes negative.
func (g *WaitGroup) Add(delta int) {
	g.mu.Lock()
	g.count += delta
	if g.count < 0 {
		g.mu.Unlock()
		panic("vtime: negative WaitGroup counter")
	}
	var ws []Waiter
	if g.count == 0 {
		ws = g.waiters
		g.waiters = nil
	}
	g.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
}

// Done decrements the count by one.
func (g *WaitGroup) Done() { g.Add(-1) }

// Wait parks the caller until the count reaches zero.
func (g *WaitGroup) Wait() error {
	for {
		g.mu.Lock()
		if g.count == 0 {
			g.mu.Unlock()
			return nil
		}
		w := g.rt.NewWaiter(g.reason)
		g.waiters = append(g.waiters, w)
		g.mu.Unlock()
		if err := w.Wait(); err != nil {
			return err
		}
	}
}
