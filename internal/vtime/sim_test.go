package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimSleepAdvancesClock(t *testing.T) {
	s := NewSim()
	var end Time
	s.Run(func() {
		s.Sleep(5 * time.Microsecond)
		s.Sleep(7 * time.Microsecond)
		end = s.Now()
	})
	if want := Time(12 * time.Microsecond); end != want {
		t.Fatalf("clock = %v, want %v", end, want)
	}
}

func TestSimZeroAndNegativeSleep(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		if s.Now() != 0 {
			t.Errorf("clock moved on non-positive sleep: %v", s.Now())
		}
	})
}

func TestSimParallelSleepsOverlap(t *testing.T) {
	s := NewSim()
	var end Time
	s.Run(func() {
		done := NewWaitGroup(s, "join")
		done.Add(3)
		for i := 0; i < 3; i++ {
			s.Go("sleeper", func() {
				s.Sleep(100 * time.Microsecond)
				done.Done()
			})
		}
		if err := done.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
		end = s.Now()
	})
	// Three concurrent 100us sleeps take 100us of virtual time, not 300.
	if want := Time(100 * time.Microsecond); end != want {
		t.Fatalf("clock = %v, want %v", end, want)
	}
}

func TestSimWaiterFireBeforeWait(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		w := s.NewWaiter("pre-fired")
		w.Fire()
		if err := w.Wait(); err != nil {
			t.Errorf("Wait after Fire: %v", err)
		}
	})
}

func TestSimWaiterCrossActor(t *testing.T) {
	s := NewSim()
	var order []string
	var mu sync.Mutex
	note := func(what string) {
		mu.Lock()
		order = append(order, what)
		mu.Unlock()
	}
	s.Run(func() {
		w := s.NewWaiter("handoff")
		s.Go("firer", func() {
			s.Sleep(10 * time.Microsecond)
			note("fire")
			w.Fire()
		})
		if err := w.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
		note("woken")
		if got := s.Now(); got != Time(10*time.Microsecond) {
			t.Errorf("woken at %v, want 10µs", got)
		}
	})
	if len(order) != 2 || order[0] != "fire" || order[1] != "woken" {
		t.Fatalf("order = %v", order)
	}
}

func TestSimAfterFuncOrderAndStop(t *testing.T) {
	s := NewSim()
	var got []int
	s.Run(func() {
		s.AfterFunc(30*time.Microsecond, func() { got = append(got, 3) })
		s.AfterFunc(10*time.Microsecond, func() { got = append(got, 1) })
		tm := s.AfterFunc(20*time.Microsecond, func() { got = append(got, 2) })
		if !tm.Stop() {
			t.Error("Stop on pending timer = false")
		}
		if tm.Stop() {
			t.Error("second Stop = true")
		}
		s.Sleep(50 * time.Microsecond)
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("callbacks = %v, want [1 3]", got)
	}
}

func TestSimTimerStopAfterFire(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		fired := false
		tm := s.AfterFunc(time.Microsecond, func() { fired = true })
		s.Sleep(2 * time.Microsecond)
		if !fired {
			t.Fatal("timer did not fire")
		}
		if tm.Stop() {
			t.Error("Stop after fire = true")
		}
	})
}

func TestSimDeadlockDetection(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		dl, ok := r.(*DeadlockError)
		if !ok {
			t.Fatalf("panic value %T, want *DeadlockError", r)
		}
		if len(dl.Parked) != 1 || dl.Parked[0] != "never-fired" {
			t.Fatalf("parked = %v", dl.Parked)
		}
	}()
	s := NewSim()
	s.Run(func() {
		w := s.NewWaiter("never-fired")
		_ = w.Wait()
	})
}

func TestSimDaemonAbortedOnShutdown(t *testing.T) {
	s := NewSim()
	var aborted atomic.Bool
	release := make(chan struct{})
	s.Run(func() {
		q := NewQueue[int](s, "daemon-recv")
		s.Go("daemon", func() {
			// Parks forever; must be released with ErrAborted when
			// the main actor exits... except the daemon is itself an
			// actor, so it keeps the sim alive. Use a queue close
			// instead, which is the documented shutdown pattern.
			_, err := q.Pop()
			if err == ErrClosed {
				aborted.Store(true)
			}
			close(release)
		})
		s.Sleep(time.Microsecond)
		q.Close()
	})
	<-release
	if !aborted.Load() {
		t.Fatal("daemon did not observe ErrClosed")
	}
}

func TestSimManyActorsDeterministicClock(t *testing.T) {
	// Same workload twice must give identical virtual end times.
	run := func() Time {
		s := NewSim()
		var end Time
		s.Run(func() {
			wg := NewWaitGroup(s, "join")
			for i := 0; i < 50; i++ {
				wg.Add(1)
				d := time.Duration(i%7+1) * time.Microsecond
				s.Go("worker", func() {
					for j := 0; j < 5; j++ {
						s.Sleep(d)
					}
					wg.Done()
				})
			}
			_ = wg.Wait()
			end = s.Now()
		})
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic clock: %v vs %v", a, b)
	}
	if want := Time(35 * time.Microsecond); a != want {
		t.Fatalf("end = %v, want %v (slowest worker 5*7µs)", a, want)
	}
}

func TestWallRuntimeBasics(t *testing.T) {
	w := NewWall()
	before := w.Now()
	w.Sleep(time.Millisecond)
	if w.Now()-before < Time(time.Millisecond) {
		t.Error("wall Sleep returned too early")
	}
	done := make(chan struct{})
	wt := w.NewWaiter("x")
	w.Go("firer", func() { wt.Fire(); close(done) })
	if err := wt.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	<-done
	w.Wait()
}

func TestWallAfterFunc(t *testing.T) {
	w := NewWall()
	ch := make(chan struct{})
	w.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	tm := w.AfterFunc(time.Hour, func() {})
	if !tm.Stop() {
		t.Error("Stop pending wall timer = false")
	}
}
