package vtime

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// Sim is the deterministic virtual-time runtime. Construct with NewSim,
// spawn actors with Go (or run a root actor with Run), and let blocking
// primitives drive the clock. The zero value is not usable.
type Sim struct {
	mu        sync.Mutex
	schedCond *sync.Cond // scheduler wakes when runnable drops to 0
	doneCond  *sync.Cond // Run wakes when actors drops to 0
	now       Time
	seq       int64
	events    eventHeap
	runnable  int // actors currently executing (not parked)
	actors    int // live actors
	parked    map[*simWaiter]struct{}
	started   bool
	stopped   bool
	deadlock  *DeadlockError // set by the scheduler on deadlock
}

// NewSim returns a fresh simulator with the clock at 0.
func NewSim() *Sim {
	s := &Sim{parked: make(map[*simWaiter]struct{})}
	s.schedCond = sync.NewCond(&s.mu)
	s.doneCond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual instant.
func (s *Sim) Now() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns f as a new actor. Must not be called after Run has returned.
func (s *Sim) Go(name string, f func()) {
	s.mu.Lock()
	s.actors++
	s.runnable++
	s.mu.Unlock()
	go func() {
		defer s.exitActor()
		f()
	}()
}

func (s *Sim) exitActor() {
	s.mu.Lock()
	s.actors--
	s.runnable--
	if s.runnable == 0 {
		s.schedCond.Signal()
	}
	if s.actors == 0 {
		s.doneCond.Broadcast()
	}
	s.mu.Unlock()
}

// Run executes main as the root actor and blocks until every actor has
// finished. When the last actor exits, the runtime terminates: any waiter
// parked by leftover daemon goroutines is released with ErrAborted so they
// can unwind. Run panics with *DeadlockError if the simulation deadlocks.
// A Sim is single-use: Run must be called exactly once.
func (s *Sim) Run(main func()) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("vtime: Sim.Run called twice")
	}
	s.started = true
	s.mu.Unlock()

	// Register the root actor before the scheduler starts: actors spawned
	// ahead of Run (eager daemons) may already be parked, and the
	// scheduler must not mistake that for a deadlock.
	s.Go("main", main)
	go s.schedule()

	s.mu.Lock()
	for s.actors > 0 && s.deadlock == nil {
		s.doneCond.Wait()
	}
	dl := s.deadlock
	s.stopped = true
	s.schedCond.Signal()
	// Release anything still parked (there should be nothing unless a
	// non-actor goroutine parked, which is a usage error, but be safe).
	for w := range s.parked {
		w.abort()
	}
	s.mu.Unlock()
	if dl != nil {
		panic(dl)
	}
}

// schedule is the scheduler loop: whenever no actor is runnable, advance the
// clock to the earliest event batch and dispatch it.
func (s *Sim) schedule() {
	for {
		s.mu.Lock()
		for !s.stopped && !(s.runnable == 0 && s.actors > 0) {
			s.schedCond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		// Drop cancelled events at the head.
		for len(s.events) > 0 && s.events[0].cancelled {
			heap.Pop(&s.events)
		}
		if len(s.events) == 0 {
			// Live actors, nothing runnable, no pending event.
			reasons := make([]string, 0, len(s.parked))
			for w := range s.parked {
				reasons = append(reasons, w.reason)
			}
			sort.Strings(reasons)
			s.deadlock = &DeadlockError{Now: s.now, Parked: reasons}
			s.doneCond.Broadcast()
			s.mu.Unlock()
			return
		}
		t := s.events[0].at
		s.now = t
		var fns []func()
		for len(s.events) > 0 && s.events[0].at == t {
			ev := heap.Pop(&s.events).(*event)
			if ev.cancelled {
				continue
			}
			ev.done = true
			if ev.w != nil {
				s.fireLocked(ev.w)
			}
			if ev.fn != nil {
				fns = append(fns, ev.fn)
			}
		}
		if len(fns) > 0 {
			// The scheduler counts as runnable while callbacks run,
			// so the clock cannot advance underneath them.
			s.runnable++
			s.mu.Unlock()
			for _, fn := range fns {
				fn()
			}
			s.mu.Lock()
			s.runnable--
			if s.runnable == 0 {
				// Re-check immediately on next loop iteration.
			}
		}
		s.mu.Unlock()
	}
}

// Sleep parks the calling actor for d of virtual time. Non-positive d
// returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	w := s.newWaiter("sleep")
	s.mu.Lock()
	s.scheduleLocked(s.now.Add(d), w, nil)
	s.mu.Unlock()
	_ = w.Wait()
}

// NewWaiter allocates a one-shot parking primitive.
func (s *Sim) NewWaiter(reason string) Waiter { return s.newWaiter(reason) }

func (s *Sim) newWaiter(reason string) *simWaiter {
	return &simWaiter{s: s, reason: reason, ch: make(chan struct{})}
}

// AfterFunc schedules f to run at Now+d on the scheduler's watch. f must
// not block; it may fire waiters, push to queues and schedule timers.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	ev := s.scheduleLocked(s.now.Add(d), nil, f)
	s.mu.Unlock()
	return &simTimer{s: s, ev: ev}
}

func (s *Sim) scheduleLocked(at Time, w *simWaiter, fn func()) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, w: w, fn: fn}
	heap.Push(&s.events, ev)
	if s.runnable == 0 {
		s.schedCond.Signal()
	}
	return ev
}

func (s *Sim) fireLocked(w *simWaiter) {
	if w.fired {
		return
	}
	w.fired = true
	if _, ok := s.parked[w]; ok {
		delete(s.parked, w)
		s.runnable++
	}
	close(w.ch)
}

type simTimer struct {
	s  *Sim
	ev *event
}

func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.done || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// simWaiter implements Waiter under Sim.
type simWaiter struct {
	s       *Sim
	reason  string
	ch      chan struct{}
	fired   bool
	aborted bool
}

func (w *simWaiter) Wait() error {
	s := w.s
	s.mu.Lock()
	if !w.fired {
		s.runnable--
		s.parked[w] = struct{}{}
		if s.runnable == 0 {
			s.schedCond.Signal()
		}
		s.mu.Unlock()
		<-w.ch
	} else {
		s.mu.Unlock()
	}
	if w.aborted {
		return ErrAborted
	}
	return nil
}

func (w *simWaiter) Fire() {
	w.s.mu.Lock()
	w.s.fireLocked(w)
	w.s.mu.Unlock()
}

// abort releases the waiter with ErrAborted; caller holds s.mu.
func (w *simWaiter) abort() {
	if w.fired {
		return
	}
	w.fired = true
	w.aborted = true
	if _, ok := w.s.parked[w]; ok {
		delete(w.s.parked, w)
		w.s.runnable++
	}
	close(w.ch)
}

// event is a pending simulator event: either a waiter wake-up or a callback.
type event struct {
	at        Time
	seq       int64
	w         *simWaiter
	fn        func()
	cancelled bool
	done      bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
