package vtime

import (
	"sync"
	"time"
)

// Wall is the wall-clock Runtime. It maps every primitive onto the Go
// runtime directly, so middleware written against Runtime runs unchanged
// over real transports (e.g. the TCP sockets driver).
type Wall struct {
	start time.Time
	wg    sync.WaitGroup
}

// NewWall returns a wall-clock runtime whose epoch is now.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now returns the elapsed wall time since the runtime was created.
func (w *Wall) Now() Time { return Time(time.Since(w.start)) }

// Sleep blocks the calling goroutine for d of real time.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go spawns f as a plain goroutine, tracked so Wait can join it.
func (w *Wall) Go(name string, f func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		f()
	}()
}

// Wait blocks until every goroutine spawned with Go has returned.
func (w *Wall) Wait() { w.wg.Wait() }

// NewWaiter allocates a channel-backed one-shot waiter.
func (w *Wall) NewWaiter(reason string) Waiter {
	return &wallWaiter{ch: make(chan struct{})}
}

// AfterFunc schedules f on a real timer.
func (w *Wall) AfterFunc(d time.Duration, f func()) Timer {
	return wallTimer{time.AfterFunc(d, f)}
}

type wallTimer struct{ t *time.Timer }

func (t wallTimer) Stop() bool { return t.t.Stop() }

type wallWaiter struct {
	once sync.Once
	ch   chan struct{}
}

func (w *wallWaiter) Wait() error {
	<-w.ch
	return nil
}

func (w *wallWaiter) Fire() { w.once.Do(func() { close(w.ch) }) }
