package pool

import (
	"bytes"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {512, 0}, {513, 1}, {1024, 1}, {4096, 3},
		{1 << 20, maxShift - minShift},
		{1<<20 + 1, -1}, {0, -1}, {-5, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(700)
	if len(b) != 700 || cap(b) != 1024 {
		t.Fatalf("Get(700): len=%d cap=%d, want 700/1024", len(b), cap(b))
	}
	Put(b)
	// Oversized requests degrade to plain allocations.
	big := Get(2 << 20)
	if len(big) != 2<<20 {
		t.Fatalf("Get(2MiB): len=%d", len(big))
	}
	Put(big) // must not panic or poison a class
}

func TestGrowPreservesContents(t *testing.T) {
	b := Get(16)
	copy(b, "0123456789abcdef")
	b = Grow(b, 5000)
	if cap(b) < 5000 {
		t.Fatalf("Grow: cap=%d, want >= 5000", cap(b))
	}
	if !bytes.Equal(b[:16], []byte("0123456789abcdef")) {
		t.Fatalf("Grow lost contents: %q", b[:16])
	}
	Put(b)
}

func TestGetZeroAlloc(t *testing.T) {
	// Warm the class, then verify steady-state Get/Put does not allocate.
	Put(Get(4096))
	n := testing.AllocsPerRun(100, func() {
		b := Get(4096)
		Put(b)
	})
	if n > 0 {
		t.Fatalf("Get/Put allocated %v times per run, want 0", n)
	}
}
