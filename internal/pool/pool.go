// Package pool is the data plane's shared byte-buffer pool: wall mux
// framing, the gatekeeper protocol's frame encode/decode and madeleine
// packing all draw their scratch buffers here instead of the heap, so the
// framed hot paths run allocation-free in steady state.
//
// Buffers are recycled in power-of-two size classes between 512 B and
// 1 MiB. A Get outside that range falls back to a plain allocation and a
// Put of such a buffer is dropped — the pool is an optimization, never a
// correctness dependency, and callers may always treat the returned slice
// as ordinary memory.
//
// Each class is a bounded channel freelist rather than a sync.Pool: slice
// headers move through a channel without boxing, so a steady-state Get/Put
// cycle performs zero allocations (a sync.Pool of []byte would allocate an
// interface box or a *[]byte on every Put). Each class retains at most
// ~256 KiB of idle buffers; overflow falls to the garbage collector.
package pool

import (
	"math/bits"
)

const (
	minShift = 9  // smallest pooled class: 512 B
	maxShift = 20 // largest pooled class: 1 MiB

	// classRetain bounds idle memory per class; a class keeps at most
	// classRetain/size buffers (minimum 4).
	classRetain = 256 << 10
)

var classes [maxShift - minShift + 1]chan []byte

func init() {
	for i := range classes {
		n := classRetain >> (i + minShift)
		if n < 4 {
			n = 4
		}
		classes[i] = make(chan []byte, n)
	}
}

// classFor returns the index of the smallest class holding n bytes, or -1
// when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxShift {
		return -1
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < minShift {
		s = minShift
	}
	return s - minShift
}

// Get returns a length-n slice backed by pooled storage (capacity may
// exceed n). The contents are unspecified — callers must overwrite before
// reading.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	select {
	case b := <-classes[c]:
		return b[:n]
	default:
		return make([]byte, n, 1<<(c+minShift))
	}
}

// Put recycles a buffer obtained from Get (or any slice of a pooled size).
// Undersized and oversized buffers are dropped silently; the caller must
// not use b afterwards.
func Put(b []byte) {
	c := classFor(cap(b))
	if c < 0 || cap(b) != 1<<(c+minShift) {
		return // foreign capacity: let the GC take it
	}
	select {
	case classes[c] <- b[:cap(b)]:
	default: // class is full: let the GC take it
	}
}

// Grow returns a slice with b's contents and capacity for at least need
// bytes, drawing the larger backing from the pool and recycling the old
// one when it came from here. The append idiom for pooled buffers:
//
//	buf = pool.Grow(buf, len(buf)+n)
//	buf = append(buf, data...)
func Grow(b []byte, need int) []byte {
	if cap(b) >= need {
		return b
	}
	nb := Get(need)[:len(b)]
	copy(nb[:len(b)], b)
	Put(b)
	return nb
}
