package deploy

import (
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"padico/internal/gatekeeper"
	"padico/internal/orb"
)

const topoXML = `
<grid name="paper-testbed">
  <node name="c0" zone="irisa"/>
  <node name="c1" zone="irisa"/>
  <node name="x0" zone="companyX"/>
  <node name="x1" zone="companyX"/>
  <fabric kind="myrinet" name="myri0" nodes="c0,c1"/>
  <fabric kind="ethernet" name="eth0" nodes="c0,c1,x0,x1"/>
  <fabric kind="wan" name="wan0" nodes="c1,x0" trunkMBs="5" trunkMs="10"/>
</grid>`

func TestParseAndBuildTopology(t *testing.T) {
	topo, err := ParseTopology([]byte(topoXML))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if topo.Name != "paper-testbed" || len(topo.Nodes) != 4 || len(topo.Fabrics) != 3 {
		t.Fatalf("topo = %+v", topo)
	}
	p, err := Build(topo)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(p.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(p.Nodes))
	}
	devs := p.Grid.Arb.Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %d", len(devs))
	}
	if p.Zones["x0"] != "companyX" || p.Zones["c0"] != "irisa" {
		t.Fatal("zones lost")
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // substring of the rejection ("" = accepted)
	}{
		{"ok", `<grid><node name="a"/><fabric kind="ethernet" name="e" nodes="a"/></grid>`, ""},
		{"dup node", `<grid><node name="a"/><node name="a"/></grid>`, `duplicate node "a"`},
		{"nameless node", `<grid><node/></grid>`, "node without name"},
		{"bad kind", `<grid><node name="a"/><fabric kind="tokenring" name="t" nodes="a"/></grid>`, `unknown kind "tokenring"`},
		{"unknown member", `<grid><node name="a"/><fabric kind="ethernet" name="e" nodes="a,ghost"/></grid>`, `unknown node "ghost"`},
		{"not xml", `<<<`, "topology"},
		// Duplicate fabrics used to parse fine and silently shadow each
		// other in the device table; they are rejected like nodes now.
		{"dup fabric", `<grid><node name="a"/><fabric kind="ethernet" name="e" nodes="a"/><fabric kind="wan" name="e" nodes="a"/></grid>`, `duplicate fabric "e"`},
		{"nameless fabric", `<grid><node name="a"/><fabric kind="ethernet" nodes="a"/></grid>`, "fabric without name"},
	}
	for _, tc := range cases {
		_, err := ParseTopology([]byte(tc.src))
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRegistryPlacementEdgeCases pins the placement rule (first node of
// every administrative zone, in name order) on the degenerate grids, and
// verifies the simulator's LaunchAll realizes exactly the placement
// Topology.RegistryPlacement promises — the same function live padico-d
// daemons and the padico-launch planner consult, so a simulated grid and a
// live one started from the same XML always agree on where replicas live.
func TestRegistryPlacementEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		nodes string // name[:zone] comma list
		want  []string
	}{
		{"single node", "only", []string{"only"}},
		{"single node zoned", "only:z", []string{"only"}},
		{"all one zone", "c:z,a:z,b:z", []string{"a"}},
		{"empty zone attributes", "b,a,c", []string{"a"}},
		{"one zone empty one named", "b,a,y:z,x:z", []string{"a", "x"}},
		{"zone per node", "b:zb,a:za,c:zc", []string{"a", "b", "c"}},
	}
	for _, tc := range cases {
		var sb strings.Builder
		sb.WriteString(`<grid name="edge">`)
		var names []string
		for _, nd := range strings.Split(tc.nodes, ",") {
			name, zone, _ := strings.Cut(nd, ":")
			names = append(names, name)
			fmt.Fprintf(&sb, `<node name="%s" zone="%s"/>`, name, zone)
		}
		fmt.Fprintf(&sb, `<fabric name="eth" kind="ethernet" nodes="%s"/></grid>`, strings.Join(names, ","))
		topo, err := ParseTopology([]byte(sb.String()))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		if got := topo.RegistryPlacement(); !slices.Equal(got, tc.want) {
			t.Errorf("%s: RegistryPlacement = %v, want %v", tc.name, got, tc.want)
		}
		zones := topo.ZoneMap()
		if len(zones) != len(names) {
			t.Errorf("%s: ZoneMap has %d entries, want %d", tc.name, len(zones), len(names))
		}
		for _, nd := range strings.Split(tc.nodes, ",") {
			name, zone, _ := strings.Cut(nd, ":")
			if zones[name] != zone {
				t.Errorf("%s: ZoneMap[%s] = %q, want %q", tc.name, name, zones[name], zone)
			}
		}

		// The simulator must realize the same placement.
		p, err := Build(topo)
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		p.Grid.Run(func() {
			if _, err := p.LaunchAll(); err != nil {
				t.Fatalf("%s: launch: %v", tc.name, err)
			}
			if !slices.Equal(p.Registries, tc.want) {
				t.Errorf("%s: LaunchAll placed replicas on %v, want %v", tc.name, p.Registries, tc.want)
			}
		})
	}
}

// TestLiveDaemonPlacementAgreement boots one real daemon from a grid XML's
// placement (the padico-d -grid path) and checks it assumes exactly what
// the simulator realizes for the same topology.
func TestLiveDaemonPlacementAgreement(t *testing.T) {
	src := []byte(`<grid name="agree">
	  <node name="m0" zone="za"/>
	  <node name="m1" zone="zb"/>
	  <node name="m2" zone="zb"/>
	  <fabric name="eth" kind="ethernet" nodes="m0,m1,m2"/>
	</grid>`)
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	p.Grid.Run(func() {
		if _, err := p.LaunchAll(); err != nil {
			t.Fatal(err)
		}
	})

	d, err := StartDaemon(DaemonConfig{
		Node:       "m1",
		Zone:       topo.ZoneMap()["m1"],
		Registries: topo.RegistryPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Registries(); !slices.Equal(got, p.Registries) {
		t.Fatalf("live daemon assumes replicas on %v, simulator placed %v", got, p.Registries)
	}
}

func TestDiscoveryInventory(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	machines := p.Discover()
	if len(machines) != 4 {
		t.Fatalf("machines = %d", len(machines))
	}
	byName := map[string]Machine{}
	for _, m := range machines {
		byName[m.Name] = m
	}
	if !byName["c0"].SAN || byName["x0"].SAN {
		t.Fatalf("SAN detection wrong: %+v / %+v", byName["c0"], byName["x0"])
	}
	if len(byName["c1"].Fabrics) != 3 { // myri + eth + wan
		t.Fatalf("c1 fabrics = %v", byName["c1"].Fabrics)
	}
}

func TestSelectAndResolveHost(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	machines := p.Discover()

	sanOnly := Select(machines, Constraint{NeedSAN: true})
	if len(sanOnly) != 2 {
		t.Fatalf("SAN machines = %v", sanOnly)
	}
	companyX := Select(machines, Constraint{Zone: "companyX"})
	if len(companyX) != 2 || !strings.HasPrefix(companyX[0].Name, "x") {
		t.Fatalf("companyX = %v", companyX)
	}

	used := map[string]bool{}
	// Literal host.
	h, err := p.ResolveHost("c0", used)
	if err != nil || h != "c0" {
		t.Fatalf("literal = %q, %v", h, err)
	}
	if _, err := p.ResolveHost("ghost", used); err == nil {
		t.Fatal("unknown literal resolved")
	}
	// Constraint query: the paper's localization scenario.
	h1, err := p.ResolveHost("?zone=companyX", used)
	if err != nil || !strings.HasPrefix(h1, "x") {
		t.Fatalf("query1 = %q, %v", h1, err)
	}
	h2, err := p.ResolveHost("?zone=companyX", used)
	if err != nil || h2 == h1 {
		t.Fatalf("query2 = %q (reused %q), %v", h2, h1, err)
	}
	if _, err := p.ResolveHost("?zone=companyX", used); err == nil {
		t.Fatal("third companyX machine appeared out of thin air")
	}
	if _, err := p.ResolveHost("?zone=companyX&san=true", map[string]bool{}); err == nil {
		t.Fatal("companyX has no SAN but query succeeded")
	}
	if _, err := p.ResolveHost("?flavor=blue", used); err == nil {
		t.Fatal("unknown query key accepted")
	}
	if _, err := p.ResolveHost("?zone", used); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func TestLaunchAll(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		if len(procs) != 4 {
			t.Fatalf("procs = %d", len(procs))
		}
		for name, proc := range procs {
			if proc.Node().Name != name {
				t.Fatalf("proc %s on node %s", name, proc.Node().Name)
			}
		}
	})
}

// TestLaunchAllControlPlane: every spawned process is remotely steerable
// out of the box — gatekeepers everywhere, the registry on the first node,
// services announced, and the whole deployment steerable by fan-out.
func TestLaunchAllControlPlane(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		for name, proc := range procs {
			if !proc.Loaded("gatekeeper") {
				t.Fatalf("no gatekeeper on %s", name)
			}
			if _, ok := gatekeeper.For(proc); !ok {
				t.Fatalf("gatekeeper instance not tracked on %s", name)
			}
		}
		// A registry replica lives on the first node of each zone.
		if got := strings.Join(p.Registries, ","); got != "c0,x0" {
			t.Fatalf("replica placement = %s, want c0,x0", got)
		}
		if !procs["c0"].Loaded("registry") || !procs["x0"].Loaded("registry") {
			t.Fatal("registry replicas not on c0 and x0")
		}
		// Every process announced to its zone-local replica; one
		// anti-entropy round makes all of them visible from any replica.
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		rc := gatekeeper.NewRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["x1"].Linker()}, "c0")
		entries, err := rc.Lookup("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 4 {
			t.Fatalf("announced gatekeepers = %v", entries)
		}
		// Steer the whole deployment from one seat.
		ctl := gatekeeper.FromProcess(procs["c0"])
		results := ctl.Fanout([]string{"c0", "c1", "x0", "x1"},
			&gatekeeper.Request{Op: gatekeeper.OpListModules})
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("fanout to %s: %v", r.Node, r.Err)
			}
		}
		// LaunchAll installed the registry client as every linker's
		// resolver: any process dials any service purely by name.
		st, err := procs["x1"].Linker().DialService("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatalf("by-name dial from deployed process: %v", err)
		}
		st.Close()
	})
}

// TestLaunchAllBestEffortAnnounce: a node sharing no fabric with the
// registry host launches fine — it just stays unpublished (no error), as
// the announce path is best effort.
func TestLaunchAllBestEffortAnnounce(t *testing.T) {
	const isolatedXML = `
<grid name="partitioned">
  <node name="a0"/>
  <node name="a1"/>
  <node name="z-island"/>
  <fabric kind="ethernet" name="eth0" nodes="a0,a1"/>
  <fabric kind="ethernet" name="eth1" nodes="z-island"/>
</grid>`
	topo, err := ParseTopology([]byte(isolatedXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatalf("launch with unreachable node: %v", err)
		}
		// The island process is up and steerable locally despite never
		// reaching the registry.
		if !procs["z-island"].Loaded("gatekeeper") {
			t.Fatal("island process lost its gatekeeper")
		}
		rc := gatekeeper.NewRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["a1"].Linker()}, "a0")
		entries, err := rc.Lookup("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatal(err)
		}
		nodes := map[string]bool{}
		for _, e := range entries {
			nodes[e.Node] = true
		}
		if !nodes["a0"] || !nodes["a1"] || nodes["z-island"] {
			t.Fatalf("published gatekeepers = %v, want a0+a1 only", entries)
		}
	})
}

// TestLaunchAllLeaseLiveness: deployments announce under the default
// lease, so a process that dies without withdrawing falls out of the
// registry on its own while the survivors stay visible through renewals.
func TestLaunchAllLeaseLiveness(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatal(err)
		}
		rc := gatekeeper.NewRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["c1"].Linker()}, "c0")
		rc.SetCacheTTL(0)
		count := func() int {
			entries, err := rc.Lookup("vlink", gatekeeper.Service)
			if err != nil {
				t.Fatal(err)
			}
			return len(entries)
		}
		// One sync interval replicates the companyX-zone announces to c0.
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		if count() != 4 {
			t.Fatalf("announced gatekeepers = %d, want 4", count())
		}
		procs["x1"].Shutdown() // dies without withdrawing
		p.Grid.Sim.Sleep(gatekeeper.DefaultLeaseTTL + time.Second)
		if count() != 3 {
			t.Fatalf("gatekeepers after x1 died = %d, want 3 (lease expiry)", count())
		}
	})
}

// TestLaunchAllReplicaFailover: killing one zone's registry replica —
// process and all — leaves by-name dialing and lease renewal in that zone
// working through the other zone's replica.
func TestLaunchAllReplicaFailover(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatal(err)
		}
		// An application service in the irisa zone, announced through the
		// zone-local replica c0 and replicated to x0.
		lst, err := procs["c1"].Linker().Listen("ha:svc")
		if err != nil {
			t.Fatal(err)
		}
		defer lst.Close()
		gk, _ := gatekeeper.For(procs["c1"])
		if err := gk.Announce(); err != nil {
			t.Fatal(err)
		}
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)

		// Crash the irisa replica host mid-run (no withdraw, no drain).
		procs["c0"].Shutdown()

		// c1's resolver fails over to x0: by-name dialing still works…
		st, err := procs["x1"].Linker().DialService("vlink", "ha:svc")
		if err != nil {
			t.Fatalf("by-name dial after replica crash: %v", err)
		}
		st.Close()
		// …including from the zone that just lost its replica.
		st, err = procs["c1"].Linker().DialService("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatalf("by-name dial from the orphaned zone: %v", err)
		}
		st.Close()

		// Lease renewal follows the failover: well past the lease TTL,
		// c1 is still registered on the surviving replica.
		p.Grid.Sim.Sleep(gatekeeper.DefaultLeaseTTL + time.Second)
		rc := gatekeeper.NewRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["x1"].Linker()}, "x0")
		rc.SetCacheTTL(0)
		entries, err := rc.Lookup("vlink", "ha:svc")
		if err != nil || len(entries) != 1 {
			t.Fatalf("c1's lease did not survive its replica's crash: %v, %v", entries, err)
		}
		// The crashed c0's own entries expired instead of lingering.
		entries, err = rc.Lookup("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Node == "c0" {
				t.Fatalf("crashed replica host still published: %v", entries)
			}
		}
	})
}

// TestProcessCloseWithdraws: a cleanly closed process retracts its entries
// at once — locally immediately, grid-wide within one sync interval via
// the tombstone — while a crashed one (plain Shutdown, covered by
// TestLaunchAllLeaseLiveness) waits out its lease TTL.
func TestProcessCloseWithdraws(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAll()
		if err != nil {
			t.Fatal(err)
		}
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		lookupAt := func(replica string) int {
			rc := gatekeeper.NewRegistryClient(p.Grid.Sim,
				orb.VLinkTransport{Linker: procs["c1"].Linker()}, replica)
			rc.SetCacheTTL(0)
			entries, err := rc.Lookup("vlink", gatekeeper.Service)
			if err != nil {
				t.Fatalf("lookup at %s: %v", replica, err)
			}
			n := 0
			for _, e := range entries {
				if e.Node == "x1" {
					n++
				}
			}
			return n
		}
		if lookupAt("c0") != 1 || lookupAt("x0") != 1 {
			t.Fatal("x1 not registered on both replicas before close")
		}
		procs["x1"].Close()
		// Gone from its zone-local replica immediately — no lease wait.
		if lookupAt("x0") != 0 {
			t.Fatal("cleanly closed x1 still in its local replica")
		}
		// The tombstone reaches the other replica within a sync interval.
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		if lookupAt("c0") != 0 {
			t.Fatal("withdraw tombstone did not replicate")
		}
	})
}

// TestLaunchAllOnPlacement: the -registry override path — explicit replica
// placement replaces the per-zone default and rejects unknown hosts.
func TestLaunchAllOnPlacement(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAllOn([]string{"c1", "x1"})
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(p.Registries, ","); got != "c1,x1" {
			t.Fatalf("placement = %q, want c1,x1", got)
		}
		for _, n := range []string{"c1", "x1"} {
			if !procs[n].Loaded("registry") {
				t.Fatalf("no replica on %s", n)
			}
		}
		if procs["c0"].Loaded("registry") {
			t.Fatal("default placement used despite override")
		}
	})
	topo2, _ := ParseTopology([]byte(topoXML))
	p2, _ := Build(topo2)
	p2.Grid.Run(func() {
		if _, err := p2.LaunchAllOn([]string{"ghost"}); err == nil {
			t.Fatal("unknown registry host accepted")
		}
	})
}
