package deploy

import (
	"fmt"
	"testing"

	"padico/internal/ccm"
	"padico/internal/gridccm"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// TestPaperScenarioEndToEnd walks the paper's whole story in one run:
// a grid described in XML (two zones, SAN + WAN), machine discovery with a
// localization constraint, Padico processes with dynamically loaded
// middleware, a CCM assembly deployed through remote containers, and a
// GridCCM parallel transport component invoked by a sequential chemistry
// client with block redistribution — data checked element by element.
func TestPaperScenarioEndToEnd(t *testing.T) {
	const topoXML = `
	<grid name="e2e">
	  <node name="c0" zone="irisa"/>
	  <node name="c1" zone="irisa"/>
	  <node name="c2" zone="irisa"/>
	  <node name="x0" zone="companyX"/>
	  <fabric kind="myrinet" name="myri0" nodes="c0,c1,c2"/>
	  <fabric kind="ethernet" name="eth0" nodes="c0,c1,c2,x0"/>
	</grid>`
	const appIDL = `
	module Coupling {
	    typedef sequence<double> Field;
	    interface Transport { void setDensity(in Field density, in double dt); };
	    interface Monitor   { long observed(); };
	};`
	const parXML = `
	<parallel component="TransportComp">
	  <port name="sim">
	    <operation name="setDensity">
	      <argument name="density" distribution="block"/>
	    </operation>
	  </port>
	</parallel>`

	topo, err := ParseTopology([]byte(topoXML))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}

	// The company-X machine is discoverable and distinct from the SAN pool.
	machines := platform.Discover()
	if got := len(Select(machines, Constraint{Zone: "companyX"})); got != 1 {
		t.Fatalf("companyX machines = %d", got)
	}
	sanPool := Select(machines, Constraint{Zone: "irisa", NeedSAN: true})
	if len(sanPool) != 3 {
		t.Fatalf("SAN pool = %v", sanPool)
	}

	desc, err := gridccm.ParseParallelDesc([]byte(parXML))
	if err != nil {
		t.Fatal(err)
	}
	port, _ := desc.Port("sim")

	platform.Grid.Run(func() {
		grid := platform.Grid
		procs, err := platform.LaunchAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range procs {
			p.Repo().MustParse(appIDL)
			if err := p.Load("corba:" + simnet.Mico.Name); err != nil {
				t.Fatal(err)
			}
		}

		// Parallel transport component: 2 SPMD members on the SAN pool.
		transNodes := []*simnet.Node{platform.Nodes["c0"], platform.Nodes["c1"]}
		received := make([][]float64, 2)
		servedCh := make(chan *gridccm.ServedParallel, 2)
		wg := vtime.NewWaitGroup(grid.Sim, "serve")
		for r := 0; r < 2; r++ {
			wg.Add(1)
			grid.Sim.Go("member", func() {
				defer wg.Done()
				comm, err := mpi.Join(grid.Arb, "trans", transNodes, r)
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				o, err := procs[transNodes[r].Name].ORB(simnet.Mico)
				if err != nil {
					t.Errorf("orb: %v", err)
					return
				}
				served, err := gridccm.Serve(gridccm.Member{
					ORB: o, Comm: comm, Rank: r, Size: 2, Node: transNodes[r],
				}, "transport", "Coupling::Transport", port, orb.HandlerMap{
					"setDensity": func(args []any) ([]any, error) {
						received[r] = args[0].([]float64)
						if err := comm.Barrier(); err != nil {
							return nil, err
						}
						return []any{}, nil
					},
				})
				if err != nil {
					t.Errorf("serve: %v", err)
					return
				}
				servedCh <- served
			})
		}
		if err := wg.Wait(); err != nil {
			t.Fatal(err)
		}
		served := <-servedCh

		// The chemistry client is a plain CCM component on the company-X
		// machine (localization constraint): it reaches the parallel
		// component through the unmodified sequential interface.
		xProc := procs["x0"]
		o, err := xProc.ORB(simnet.Mico)
		if err != nil {
			t.Fatal(err)
		}
		container, err := ccm.NewContainer(o, "c@x0")
		if err != nil {
			t.Fatal(err)
		}
		if err := container.Install(&ccm.Class{
			Name:        "ChemComp",
			Receptacles: map[string]string{"transport": "Coupling::Transport"},
			New:         func() ccm.Impl { return &chemImpl{} },
		}); err != nil {
			t.Fatal(err)
		}
		inst, err := container.Create("ChemComp", "chem")
		if err != nil {
			t.Fatal(err)
		}
		instRef, _ := o.Object(inst.IOR())
		if _, err := instRef.Invoke("connect", "transport", served.Sequential.String()); err != nil {
			t.Fatalf("connect: %v", err)
		}

		// Invoke: the field crosses Ethernet to member 0, then GridCCM
		// scatters it block-wise over the Myrinet members.
		const n = 101
		field := make([]float64, n)
		for i := range field {
			field[i] = float64(i) * 0.5
		}
		chem := inst.Impl().(*chemImpl)
		if _, err := chem.transport.Invoke("setDensity", field, 0.1); err != nil {
			t.Fatalf("invoke: %v", err)
		}

		// Member 0 gets ceil(101/2)=51 elements, member 1 gets 50.
		if len(received[0]) != 51 || len(received[1]) != 50 {
			t.Fatalf("block sizes = %d, %d", len(received[0]), len(received[1]))
		}
		for i, v := range received[0] {
			if v != float64(i)*0.5 {
				t.Fatalf("member 0 elem %d = %v", i, v)
			}
		}
		for i, v := range received[1] {
			if want := float64(51+i) * 0.5; v != want {
				t.Fatalf("member 1 elem %d = %v, want %v", i, v, want)
			}
		}
		fmt.Println("end-to-end: XML grid → discovery → CCM deployment → GridCCM redistribution OK")
	})
}

type chemImpl struct {
	ccm.Base
	transport *orb.ObjRef
}

func (c *chemImpl) Connect(_ string, ref *orb.ObjRef) error {
	c.transport = ref
	return nil
}
