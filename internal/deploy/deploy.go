// Package deploy covers the paper's §2 deployment scenarios: grid
// topologies described in XML, machine discovery when node features are
// not known statically, localization constraints ("company X's chemistry
// code must stay on company X's machines"), and launching Padico processes
// over the resulting grid.
package deploy

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"time"

	"padico/internal/core"
	"padico/internal/gatekeeper"
	"padico/internal/orb"
	"padico/internal/simnet"
)

// Topology is the XML description of a grid.
type Topology struct {
	XMLName xml.Name     `xml:"grid"`
	Name    string       `xml:"name,attr"`
	Nodes   []NodeDecl   `xml:"node"`
	Fabrics []FabricDecl `xml:"fabric"`
}

// NodeDecl declares one machine, optionally inside an administrative zone.
type NodeDecl struct {
	Name string `xml:"name,attr"`
	Zone string `xml:"zone,attr"`
}

// FabricDecl declares one network device.
type FabricDecl struct {
	Name     string  `xml:"name,attr"`
	Kind     string  `xml:"kind,attr"`  // myrinet|ethernet|wan
	Nodes    string  `xml:"nodes,attr"` // comma-separated node names
	TrunkMBs float64 `xml:"trunkMBs,attr"`
	TrunkMs  float64 `xml:"trunkMs,attr"`
}

// ParseTopology decodes and validates a grid description.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := xml.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("deploy: topology: %w", err)
	}
	names := map[string]bool{}
	for _, n := range t.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("deploy: node without name")
		}
		if names[n.Name] {
			return nil, fmt.Errorf("deploy: duplicate node %q", n.Name)
		}
		names[n.Name] = true
	}
	fabrics := map[string]bool{}
	for _, f := range t.Fabrics {
		if f.Name == "" {
			return nil, fmt.Errorf("deploy: fabric without name")
		}
		// A duplicate would silently shadow its namesake in the device
		// table (nodes are already rejected; fabrics must be too).
		if fabrics[f.Name] {
			return nil, fmt.Errorf("deploy: duplicate fabric %q", f.Name)
		}
		fabrics[f.Name] = true
		switch f.Kind {
		case "myrinet", "ethernet", "wan":
		default:
			return nil, fmt.Errorf("deploy: fabric %q has unknown kind %q", f.Name, f.Kind)
		}
		for _, nd := range SplitList(f.Nodes) {
			if !names[nd] {
				return nil, fmt.Errorf("deploy: fabric %q references unknown node %q", f.Name, nd)
			}
		}
	}
	return &t, nil
}

// SplitList splits a comma-separated list, trimming whitespace and
// dropping empty elements — the parsing shared by topology attributes and
// the command-line tools' list flags.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// FormatShardGroups encodes a shard → replica-group placement for a
// command line: groups joined by ";", each group's nodes by ",". The
// inverse of ParseShardGroups.
func FormatShardGroups(groups [][]string) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = strings.Join(g, ",")
	}
	return strings.Join(parts, ";")
}

// ParseShardGroups decodes a -shard-groups flag value: semicolon-separated
// shard replica groups, each a comma-separated node list. Empty groups are
// rejected — every shard needs at least one replica.
func ParseShardGroups(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([][]string, len(parts))
	for i, part := range parts {
		g := SplitList(part)
		if len(g) == 0 {
			return nil, fmt.Errorf("deploy: shard %d has an empty replica group", i)
		}
		out[i] = g
	}
	return out, nil
}

// Platform is a built grid with its inventory.
type Platform struct {
	Grid  *core.Grid
	Nodes map[string]*simnet.Node
	Zones map[string]string // node → zone
	// Registries is the registry-replica placement LaunchAll realized:
	// one replica host per administrative zone by default, or the override
	// handed to LaunchAllOn. Sorted by node name. Under LaunchAllSharded it
	// is the union of every shard group's hosts.
	Registries []string
	// ShardGroups is the shard → replica-group placement LaunchAllSharded
	// realized; a single group under unsharded launches.
	ShardGroups [][]string
}

// Build realizes a topology: nodes, fabrics under arbitration, inventory.
func Build(t *Topology) (*Platform, error) {
	g := core.NewGrid()
	p := &Platform{Grid: g, Nodes: map[string]*simnet.Node{}, Zones: map[string]string{}}
	for _, nd := range t.Nodes {
		node := g.Net.NewNode(nd.Name)
		p.Nodes[nd.Name] = node
		p.Zones[nd.Name] = nd.Zone
	}
	for _, f := range t.Fabrics {
		var members []*simnet.Node
		for _, name := range SplitList(f.Nodes) {
			members = append(members, p.Nodes[name])
		}
		var err error
		switch f.Kind {
		case "myrinet":
			_, err = g.AddMyrinet(f.Name, members)
		case "ethernet":
			_, err = g.AddEthernet(f.Name, members)
		case "wan":
			bps := f.TrunkMBs * 1e6
			if bps <= 0 {
				bps = 5e6
			}
			lat := time.Duration(f.TrunkMs * float64(time.Millisecond))
			if lat <= 0 {
				lat = time.Millisecond
			}
			_, err = g.AddWAN(f.Name, members, bps, lat)
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: building fabric %q: %w", f.Name, err)
		}
	}
	return p, nil
}

// Machine is one discovered machine's features (§2: "the features of the
// machines are not known statically").
type Machine struct {
	Name    string
	Zone    string
	Fabrics []string // device names, fastest first
	SAN     bool
}

// Discover inventories the platform through the arbitration layer.
func (p *Platform) Discover() []Machine {
	var out []Machine
	for name, node := range p.Nodes {
		m := Machine{Name: name, Zone: p.Zones[name]}
		for _, dev := range p.Grid.Arb.Devices() {
			if dev.Fabric.Attached(node) {
				m.Fabrics = append(m.Fabrics, dev.Name)
				if dev.Kind == simnet.SAN {
					m.SAN = true
				}
			}
		}
		sort.Strings(m.Fabrics)
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Constraint filters machines during placement.
type Constraint struct {
	Zone    string // require this administrative zone ("" = any)
	NeedSAN bool   // require a SAN-attached machine
}

// Select returns the machines satisfying the constraint.
func Select(machines []Machine, c Constraint) []Machine {
	var out []Machine
	for _, m := range machines {
		if c.Zone != "" && m.Zone != c.Zone {
			continue
		}
		if c.NeedSAN && !m.SAN {
			continue
		}
		out = append(out, m)
	}
	return out
}

// ResolveHost resolves an assembly host field: either a literal node name
// or a constraint query "?zone=companyX&san=true" evaluated against the
// discovered inventory (§2's localization scenario).
func (p *Platform) ResolveHost(host string, used map[string]bool) (string, error) {
	if !strings.HasPrefix(host, "?") {
		if _, ok := p.Nodes[host]; !ok {
			return "", fmt.Errorf("deploy: unknown host %q", host)
		}
		return host, nil
	}
	var c Constraint
	for _, kv := range strings.Split(host[1:], "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", fmt.Errorf("deploy: bad host query %q", host)
		}
		switch k {
		case "zone":
			c.Zone = v
		case "san":
			c.NeedSAN = v == "true"
		default:
			return "", fmt.Errorf("deploy: unknown host query key %q", k)
		}
	}
	for _, m := range Select(p.Discover(), c) {
		if !used[m.Name] {
			used[m.Name] = true
			return m.Name, nil
		}
	}
	return "", fmt.Errorf("deploy: no free machine satisfies %q", host)
}

// defaultRegistryNodes is the replica placement LaunchAll uses when not
// overridden: the first node (in name order) of every administrative zone
// hosts that zone's registry replica. A grid without zone attributes is
// one zone and gets one replica on its first node, the pre-replication
// behaviour.
func (p *Platform) defaultRegistryNodes() []string {
	return defaultRegistryPlacement(p.Zones)
}

// defaultRegistryPlacement computes the replica placement for a node → zone
// map: the first node (in name order) of every zone. Shared by simulated
// platforms and live daemons reading the same grid XML, so both modes agree
// on where replicas live.
func defaultRegistryPlacement(zones map[string]string) []string {
	perZone := map[string]string{}
	for n, zone := range zones {
		if cur, ok := perZone[zone]; !ok || n < cur {
			perZone[zone] = n
		}
	}
	out := make([]string, 0, len(perZone))
	for _, n := range perZone {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ShardPlacement computes the shard → replica-group placement for a
// hash-partitioned registry over a node → zone map: shard s's group takes
// the (s mod |zone|)-th node (in name order) of every administrative zone,
// so each shard keeps one replica per zone (a zone-local announce target
// for every publisher) while consecutive shards land on different machines
// — the directory's load spreads across the zone instead of piling onto
// its first node. S=1 collapses to the default single-group placement.
// Deterministic: every launcher, daemon and tool reading the same grid XML
// computes the same groups.
func ShardPlacement(zones map[string]string, shards int) [][]string {
	if shards <= 1 {
		return [][]string{defaultRegistryPlacement(zones)}
	}
	byZone := map[string][]string{}
	for n, zone := range zones {
		byZone[zone] = append(byZone[zone], n)
	}
	zoneNames := make([]string, 0, len(byZone))
	for zone := range byZone {
		zoneNames = append(zoneNames, zone)
		sort.Strings(byZone[zone])
	}
	sort.Strings(zoneNames)
	out := make([][]string, shards)
	for s := range out {
		seen := map[string]bool{}
		var g []string
		for _, zone := range zoneNames {
			nodes := byZone[zone]
			pick := nodes[s%len(nodes)]
			if !seen[pick] {
				seen[pick] = true
				g = append(g, pick)
			}
		}
		sort.Strings(g)
		out[s] = g
	}
	return out
}

// ShardPlacement returns the topology's shard → replica-group placement
// for a hash-partitioned registry — the seam shared by the simulator's
// LaunchAllSharded, padico-launch plans and padico-d daemons, so every
// layer agrees on which nodes own which shard.
func (t *Topology) ShardPlacement(shards int) [][]string {
	return ShardPlacement(t.ZoneMap(), shards)
}

// ZoneMap returns the topology's node → zone map.
func (t *Topology) ZoneMap() map[string]string {
	out := make(map[string]string, len(t.Nodes))
	for _, n := range t.Nodes {
		out[n.Name] = n.Zone
	}
	return out
}

// RegistryPlacement returns the default registry-replica placement for a
// topology: the first node of each administrative zone — what LaunchAll
// realizes in the simulator and what padico-d daemons assume when started
// from the same grid XML without an explicit -registries override.
func (t *Topology) RegistryPlacement() []string {
	return defaultRegistryPlacement(t.ZoneMap())
}

// LaunchAll starts one Padico process per node and returns them by name.
// Every process is spawned remotely steerable and name-resolving: it gets
// a gatekeeper module; the first node of each zone hosts a registry
// replica and the replicas reconcile through periodic anti-entropy sync;
// each gatekeeper holds a soft-state lease against its zone-local replica
// (announce with TTL, periodic renewal, automatic re-announce on module
// churn, failover to a surviving replica when the local one dies); every
// linker resolves unknown names through the replicated registry; and a
// cleanly closed process (Process.Close) withdraws its entries instead of
// letting them dangle until lease expiry. By-name VLink dialing therefore
// works grid-wide, without callers knowing placements and without any
// single registry host being a point of failure.
func (p *Platform) LaunchAll() (map[string]*core.Process, error) {
	return p.LaunchAllOn(nil)
}

// LaunchAllOn is LaunchAll with an explicit registry-replica placement;
// nil means one replica on the first node of each zone.
func (p *Platform) LaunchAllOn(regNodes []string) (map[string]*core.Process, error) {
	if len(regNodes) == 0 {
		regNodes = p.defaultRegistryNodes()
	} else {
		regNodes = append([]string(nil), regNodes...)
		sort.Strings(regNodes)
	}
	return p.launchAll([][]string{regNodes})
}

// LaunchAllSharded is LaunchAll over a hash-partitioned registry: the
// directory splits into the given number of shards placed by
// ShardPlacement, every replica hosts and reconciles exactly the shards
// its groups assign it, and every gatekeeper gets a sharded client that
// routes announces and lookups by name hash. shards <= 1 is LaunchAll.
func (p *Platform) LaunchAllSharded(shards int) (map[string]*core.Process, error) {
	return p.launchAll(ShardPlacement(p.Zones, shards))
}

// launchAll realizes a launch for a shard → replica-group placement; a
// single group is the unsharded S=1 deployment.
func (p *Platform) launchAll(groups [][]string) (map[string]*core.Process, error) {
	shards := len(groups)
	isReplica := map[string]bool{}
	var regNodes []string
	for _, g := range groups {
		for _, n := range g {
			if _, ok := p.Nodes[n]; !ok {
				return nil, fmt.Errorf("deploy: registry host %q is not a grid node", n)
			}
			if !isReplica[n] {
				isReplica[n] = true
				regNodes = append(regNodes, n)
			}
		}
	}
	sort.Strings(regNodes)
	p.Registries = regNodes
	p.ShardGroups = groups
	zoneReplica := map[string]string{} // zone → its replica host, if any
	for _, n := range regNodes {
		zone := p.Zones[n]
		if cur, ok := zoneReplica[zone]; !ok || n < cur {
			zoneReplica[zone] = n
		}
	}

	out := make(map[string]*core.Process, len(p.Nodes))
	names := make([]string, 0, len(p.Nodes))
	for n := range p.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		proc, err := p.Grid.Launch(p.Nodes[n])
		if err != nil {
			return nil, err
		}
		out[n] = proc
	}
	for _, n := range names {
		if err := out[n].Load("gatekeeper"); err != nil {
			return nil, fmt.Errorf("deploy: gatekeeper on %s: %w", n, err)
		}
	}
	for _, n := range regNodes {
		if err := out[n].Load("registry"); err != nil {
			return nil, fmt.Errorf("deploy: registry on %s: %w", n, err)
		}
	}
	// Declare each replica's hosted shards before any anti-entropy or
	// client traffic: a replica must refuse shards it does not own.
	if shards > 1 {
		owned := map[string][]int{}
		for s, g := range groups {
			for _, n := range g {
				owned[n] = append(owned[n], s)
			}
		}
		for _, n := range regNodes {
			if reg, ok := gatekeeper.RegistryOn(out[n]); ok {
				reg.SetShards(shards)
				reg.HostShards(owned[n]...)
			}
		}
	}
	// Wire anti-entropy after every replica listens, so the first sync
	// round already reaches live peers.
	for s, g := range groups {
		for _, n := range g {
			if reg, ok := gatekeeper.RegistryOn(out[n]); ok {
				reg.StartShardSync(s, g, gatekeeper.DefaultSyncInterval)
			}
		}
	}
	for _, n := range names {
		gk, ok := gatekeeper.For(out[n])
		if !ok {
			continue
		}
		tr := orb.VLinkTransport{Linker: out[n].Linker()}
		var rc *gatekeeper.RegistryClient
		if shards > 1 {
			pref := make([][]string, shards)
			for s, g := range groups {
				pref[s] = p.groupOrder(n, g)
			}
			rc = gatekeeper.NewShardedRegistryClient(p.Grid.Runtime(), tr, pref)
		} else {
			rc = gatekeeper.NewRegistryClient(p.Grid.Runtime(), tr,
				p.replicaOrder(n, regNodes, zoneReplica)...)
		}
		rc.UseTelemetry(out[n].Telemetry())
		gk.UseRegistry(rc)
		out[n].Linker().SetResolver(rc)
		// Best-effort: a node that reaches no replica simply stays
		// unpublished; the lease loop keeps retrying, so it appears as
		// soon as an announce gets through.
		_ = gk.StartLease(gatekeeper.DefaultLeaseTTL)
	}
	return out, nil
}

// groupOrder is one process's preference order within one shard group: the
// group's replica in the process's own zone first (announces land a LAN
// hop away; anti-entropy carries them across zones), the rest in name
// order as failover targets.
func (p *Platform) groupOrder(node string, group []string) []string {
	local := ""
	for _, n := range group {
		if p.Zones[n] == p.Zones[node] && (local == "" || n < local) {
			local = n
		}
	}
	if local == "" {
		return append([]string(nil), group...)
	}
	out := make([]string, 0, len(group))
	out = append(out, local)
	for _, n := range group {
		if n != local {
			out = append(out, n)
		}
	}
	return out
}

// replicaOrder is one process's replica preference list: its zone-local
// replica first (publishes and leases land there; anti-entropy carries
// them to the rest), then the remaining replicas in name order as
// failover targets.
func (p *Platform) replicaOrder(node string, regNodes []string, zoneReplica map[string]string) []string {
	local, hasLocal := zoneReplica[p.Zones[node]]
	if !hasLocal {
		return regNodes
	}
	out := make([]string, 0, len(regNodes))
	out = append(out, local)
	for _, n := range regNodes {
		if n != local {
			out = append(out, n)
		}
	}
	return out
}
