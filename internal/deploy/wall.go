package deploy

// This file is the wall-clock half of the package: one padico-d daemon per
// OS process, steered live over real TCP. This is the split the simulator
// conflates — LaunchAll both *describes* a grid and *steers* it inside one
// process; StartDaemon and Attach separate the two, so `padico-ctl -attach`
// controls processes it did not create, the way PadicoControl steers a
// running grid in the paper.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padico/internal/core"
	"padico/internal/gatekeeper"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/telemetry"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// DaemonConfig describes one padico-d node daemon.
type DaemonConfig struct {
	// Node is the daemon's node name (required).
	Node string
	// Zone is the administrative zone, advertised in the deployment
	// descriptor.
	Zone string
	// Listen is the bind address of the real TCP control listener;
	// "127.0.0.1:0" when empty.
	Listen string
	// Advertise is the endpoint other processes should dial; the actual
	// listen address when empty.
	Advertise string
	// Registries names the nodes hosting registry replicas, in client
	// preference order. Empty means this daemon hosts the only replica.
	Registries []string
	// ShardGroups is the shard → replica-group placement of a
	// hash-partitioned registry (deploy.ShardPlacement output). Empty means
	// a single shard whose group is Registries — the unsharded deployment.
	// When set, Registries is derived as the union of the groups.
	ShardGroups [][]string
	// Peers seeds the address book with node → endpoint mappings —
	// minimally the registry replicas, so the first announce can land.
	// Everything else is learned from registry entries at run time.
	Peers map[string]string
	// Modules are loaded at boot, after "vlink".
	Modules []string
	// LeaseTTL is the registry lease (DefaultLeaseTTL when zero).
	LeaseTTL time.Duration
	// SyncInterval is the anti-entropy period for a hosted replica
	// (DefaultSyncInterval when zero).
	SyncInterval time.Duration
	// HTTP, when non-empty, binds an observability listener at this
	// address serving Prometheus-text /metrics and net/http/pprof.
	HTTP string
	// Epoch is the daemon's restart generation: 0 on first spawn, bumped
	// by the supervisor on every respawn. Reported as the daemon_restarts
	// gauge so `padico-ctl top` sources restart counts from the metrics op.
	Epoch int
	// TraceSample is the daemon's root-span head-sampling policy: 0 (the
	// default) records no locally initiated root spans, 1 records all,
	// n records one in every n. Spans arriving with a remote parent are
	// always recorded — the root's decision propagates.
	TraceSample int
}

// Daemon is one running padico-d: a genuine Padico process on the wall
// clock, its gatekeeper and (optionally) registry replica served on a real
// TCP listener, and a gateway bridging inbound wall connections to the
// process's in-process VLink services.
type Daemon struct {
	Wall *vtime.Wall
	Grid *core.Grid
	Proc *core.Process
	Host *sockets.WallHost
	GK   *gatekeeper.Gatekeeper
	Reg  *gatekeeper.Registry  // nil unless this node hosts a replica
	HTTP *telemetry.HTTPServer // nil unless cfg.HTTP was set

	cfg         DaemonConfig
	registries  []string
	cancelWatch func()
	closeOnce   sync.Once
}

// Telemetry returns the daemon's process-wide metric/trace registry — the
// one shared by the gatekeeper's metrics op, the registry replica, the wall
// host and the /metrics endpoint.
func (d *Daemon) Telemetry() *telemetry.Registry { return d.Proc.Telemetry() }

// StartDaemon boots one node daemon. The first registry announce is best
// effort: when the replicas come up later (daemons boot in any order), the
// lease renewal publishes as soon as one is reachable.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Node == "" {
		return nil, fmt.Errorf("deploy: daemon needs a node name")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = gatekeeper.DefaultLeaseTTL
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = gatekeeper.DefaultSyncInterval
	}
	groups := cfg.ShardGroups
	var registries []string
	if len(groups) > 0 {
		seen := map[string]bool{}
		for _, g := range groups {
			for _, n := range g {
				if !seen[n] {
					seen[n] = true
					registries = append(registries, n)
				}
			}
		}
		sort.Strings(registries)
		if len(registries) == 0 {
			return nil, fmt.Errorf("deploy: daemon %s: empty shard groups", cfg.Node)
		}
	} else {
		registries = append([]string(nil), cfg.Registries...)
		if len(registries) == 0 {
			registries = []string{cfg.Node}
		}
		groups = [][]string{registries}
	}

	// The daemon's Padico process proper: a wall-clock grid holding just
	// this machine, so the whole module system (SOAP, CORBA profiles, HLA,
	// MPI readiness) runs exactly as in the simulator — only the clock and
	// the cross-process transport differ.
	wall := vtime.NewWall()
	grid := core.NewGridOn(wall)
	node := grid.Net.NewNode(cfg.Node)
	if _, err := grid.AddEthernet("local", []*simnet.Node{node}); err != nil {
		return nil, fmt.Errorf("deploy: daemon %s: %w", cfg.Node, err)
	}
	proc, err := grid.Launch(node)
	if err != nil {
		return nil, fmt.Errorf("deploy: daemon %s: %w", cfg.Node, err)
	}
	if err := proc.Load("vlink"); err != nil {
		proc.Shutdown()
		return nil, fmt.Errorf("deploy: daemon %s: %w", cfg.Node, err)
	}

	tel := proc.Telemetry()
	tel.Gauge("daemon_restarts").Set(int64(cfg.Epoch))
	tel.SetSpanSampling(cfg.TraceSample)

	host := sockets.NewWallHost(cfg.Node)
	host.SetTelemetry(tel)
	addr, err := host.ListenTCP(cfg.Listen)
	if err != nil {
		proc.Shutdown()
		return nil, err
	}
	adv := cfg.Advertise
	if adv == "" {
		adv = addr
	}
	for n, a := range cfg.Peers {
		host.Register(n, a)
	}
	host.Pin(cfg.Node, adv) // learning must never redirect a node away from itself
	tr := orb.WallTransport{Host: host}

	d := &Daemon{Wall: wall, Grid: grid, Proc: proc, Host: host,
		cfg: cfg, registries: registries}
	fail := func(err error) (*Daemon, error) {
		d.Close()
		return nil, err
	}

	// Registry replica, if this node hosts one: served on the same real
	// listener, reconciling per hosted shard with each shard group's peers
	// over real TCP. The single-group case degenerates to the unsharded
	// replica: shard 0, the whole replica list as its group.
	if slices.Contains(registries, cfg.Node) {
		reg, err := gatekeeper.StartRegistry(wall, tr)
		if err != nil {
			return fail(fmt.Errorf("deploy: daemon %s: %w", cfg.Node, err))
		}
		reg.UseTelemetry(tel)
		d.Reg = reg
		if len(groups) > 1 {
			var owned []int
			for s, g := range groups {
				if slices.Contains(g, cfg.Node) {
					owned = append(owned, s)
				}
			}
			reg.SetShards(len(groups))
			reg.HostShards(owned...)
		}
		for s, g := range groups {
			if slices.Contains(g, cfg.Node) {
				reg.StartShardSync(s, g, cfg.SyncInterval)
			}
		}
	}

	gk, err := gatekeeper.Serve(wall, tr, gatekeeper.TargetFor(proc))
	if err != nil {
		return fail(fmt.Errorf("deploy: daemon %s: %w", cfg.Node, err))
	}
	gk.UseTelemetry(tel)
	d.GK = gk
	gk.SetEndpoint(adv)
	gk.ProvideInfo(func() gatekeeper.NodeInfo {
		info := gatekeeper.NodeInfo{
			Node:       cfg.Node,
			Zone:       cfg.Zone,
			Addr:       adv,
			Registries: append([]string(nil), registries...),
			Peers:      host.Book(),
		}
		if len(groups) > 1 {
			info.Shards = groups
		}
		return info
	})
	var rc *gatekeeper.RegistryClient
	if len(groups) > 1 {
		pref := make([][]string, len(groups))
		for s, g := range groups {
			pref[s] = replicaPreference(cfg.Node, g)
		}
		rc = gatekeeper.NewShardedRegistryClient(wall, tr, pref)
	} else {
		rc = gatekeeper.NewRegistryClient(wall, tr, replicaPreference(cfg.Node, registries)...)
	}
	rc.UseTelemetry(tel)
	gk.UseRegistry(rc)
	d.cancelWatch = gk.WatchModules(proc)

	// Observability listener: Prometheus /metrics plus pprof, sharing the
	// process's telemetry with the gatekeeper's metrics op.
	if cfg.HTTP != "" {
		hs, err := telemetry.StartHTTP(cfg.HTTP, tel)
		if err != nil {
			return fail(fmt.Errorf("deploy: daemon %s: http listener: %w", cfg.Node, err))
		}
		d.HTTP = hs
	}

	// Gateway: an inbound wall connection naming a service the mux does not
	// serve (soap:sys, a GIOP endpoint, any application listener) is dialed
	// on the process's own linker and proxied — every in-process service is
	// remotely reachable without the middleware knowing about real TCP.
	host.SetFallback(func(service string) (io.ReadWriteCloser, error) {
		return proc.Linker().DialName(cfg.Node, service)
	})

	// The lease starts before any module loads: module churn fires async
	// announces, and those must already carry the lease TTL — a lease-less
	// publish racing in after StartLease would leave this node's record
	// permanent, dangling forever if the daemon then crashed. Best effort
	// by design: see the function comment.
	_ = gk.StartLease(cfg.LeaseTTL)
	for _, m := range cfg.Modules {
		if err := proc.Load(m); err != nil {
			return fail(fmt.Errorf("deploy: daemon %s: loading %s: %w", cfg.Node, m, err))
		}
	}
	return d, nil
}

// replicaPreference orders a node's replica list: its own replica first
// when it hosts one (publishes land locally; anti-entropy spreads them),
// the rest in configured order as failover targets.
func replicaPreference(node string, registries []string) []string {
	if !slices.Contains(registries, node) {
		return registries
	}
	out := make([]string, 0, len(registries))
	out = append(out, node)
	for _, n := range registries {
		if n != node {
			out = append(out, n)
		}
	}
	return out
}

// Addr returns the daemon's advertised control endpoint.
func (d *Daemon) Addr() string {
	if d.cfg.Advertise != "" {
		return d.cfg.Advertise
	}
	return d.Host.Addr()
}

// Node returns the daemon's node name.
func (d *Daemon) Node() string { return d.cfg.Node }

// Registries returns the replica placement this daemon is configured with.
func (d *Daemon) Registries() []string { return append([]string(nil), d.registries...) }

// Close shuts the daemon down cleanly: it withdraws from the registry
// while its links are still up (entries vanish grid-wide within one sync
// interval), then stops the control plane, the replica, the listener and
// the Padico process.
func (d *Daemon) Close() {
	d.closeOnce.Do(func() {
		if d.cancelWatch != nil {
			d.cancelWatch()
		}
		if d.GK != nil {
			_ = d.GK.Withdraw()
		}
		if d.Reg != nil {
			// The withdraw landed on the local replica (self-first
			// preference), which is about to die with this daemon: push
			// one last sync round so the tombstone reaches the survivors
			// now — they only initiate exchanges with live peers, so it
			// would otherwise be lost and Close would degrade to Kill.
			d.Reg.SyncNow()
		}
		if d.GK != nil {
			d.GK.Close() // closes the registry client too
		}
		if d.Reg != nil {
			d.Reg.Close()
		}
		_ = d.HTTP.Close()
		d.Host.Close()
		d.Proc.Close()
	})
}

// Kill is the crash counterpart of Close: no withdraw, no drain — the
// daemon's registry entries dangle until their lease expires, exactly like
// a machine losing power. Tests use it to exercise failover.
func (d *Daemon) Kill() {
	d.closeOnce.Do(func() {
		if d.cancelWatch != nil {
			d.cancelWatch()
		}
		if d.GK != nil {
			d.GK.Close()
		}
		if d.Reg != nil {
			d.Reg.Close()
		}
		_ = d.HTTP.Close()
		d.Host.Close()
		d.Proc.Shutdown()
	})
}

// WallDeployment is a live grid as seen by an attached controller: the
// operator's seat dials daemons over real TCP, resolves through the
// replicated registry, and constructs no simulated network whatsoever.
type WallDeployment struct {
	Wall *vtime.Wall
	Host *sockets.WallHost
	Tr   orb.WallTransport
	Ctl  *gatekeeper.Controller

	rc         *gatekeeper.RegistryClient
	registries []string
	nodes      []string
	warnings   []error
	closeOnce  sync.Once
}

// attachSeq disambiguates seat telemetry identities when one process
// attaches repeatedly (tests, scripts driving realMain in a loop).
var attachSeq atomic.Int64

// Attach connects the operator seat to a live deployment through one or
// more daemon endpoints ("host:port"). Any one reachable daemon suffices:
// its deployment descriptor names the registry replicas and hands over its
// address book, and the registry's own entries (each advertising its
// daemon's endpoint) fill in the rest of the grid.
func Attach(addrs []string) (*WallDeployment, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("deploy: attach needs at least one daemon endpoint")
	}
	wall := vtime.NewWall()
	host := sockets.NewWallHost("padico-ctl")
	// The seat gets its own telemetry: it mints the trace IDs that stitch
	// operator exchanges across daemon event rings. Operator commands are
	// rare and always interesting, so the seat samples every root span —
	// each attached command yields a collectable causal tree. The identity
	// must be unique per attach, not a bare "padico-ctl": daemons buffer
	// spans across many tool invocations, each of which restarts its trace
	// sequence at 1 — identically named seats would collide on trace IDs
	// and merge unrelated commands into one tree.
	seatTel := telemetry.New(fmt.Sprintf("padico-ctl-%d-%d", os.Getpid(), attachSeq.Add(1)), wall)
	seatTel.SetSpanSampling(1)
	host.SetTelemetry(seatTel)
	tr := orb.WallTransport{Host: host}

	var errs []error
	nodeSet := map[string]bool{}
	regSet := map[string]bool{}
	var regOrder []string
	var shardGroups [][]string
	for _, addr := range addrs {
		info, err := fetchInfo(host, addr)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if len(shardGroups) == 0 && len(info.Shards) > 1 {
			shardGroups = info.Shards
		}
		for n, a := range info.Peers {
			if n != info.Node {
				host.Register(n, a)
			}
		}
		// The endpoint that answered from this seat beats whatever the
		// daemon advertises for itself — NATs and multi-homed hosts make
		// the operator's view authoritative for the operator. Pinning
		// keeps later peer descriptors and registry-entry learning from
		// clobbering it.
		host.Pin(info.Node, addr)
		nodeSet[info.Node] = true
		for _, r := range info.Registries {
			if !regSet[r] {
				regSet[r] = true
				regOrder = append(regOrder, r)
			}
		}
	}
	if len(nodeSet) == 0 {
		host.Close()
		return nil, fmt.Errorf("deploy: no daemon reachable: %w", errors.Join(errs...))
	}
	if len(regOrder) == 0 {
		host.Close()
		return nil, fmt.Errorf("deploy: attached daemons advertise no registry replica")
	}

	ctl := gatekeeper.NewController(wall, tr)
	ctl.UseTelemetry(seatTel)
	// A sharded deployment advertises its shard map in the descriptor; the
	// seat routes by it. Otherwise the classic single-group client.
	var rc *gatekeeper.RegistryClient
	if len(shardGroups) > 1 {
		rc = gatekeeper.NewShardedRegistryClient(wall, tr, shardGroups)
	} else {
		rc = gatekeeper.NewRegistryClient(wall, tr, regOrder...)
	}
	rc.UseTelemetry(seatTel)
	w := &WallDeployment{Wall: wall, Host: host, Tr: tr,
		Ctl:        ctl,
		rc:         rc,
		registries: regOrder,
		// A partially successful attach is usable, but the operator named
		// every endpoint on purpose — the ones that failed must be
		// reported, not silently dropped from the grid view.
		warnings: errs,
	}
	// Grid-wide discovery: every publishing node appears in the registry
	// with its endpoint, so one list yields the full node set and teaches
	// the address book how to dial it. Best effort — a deployment whose
	// replicas are all down can still be pinged/steered node by node.
	if entries, err := w.rc.Lookup("", ""); err == nil {
		for _, e := range entries {
			nodeSet[e.Node] = true
		}
	}
	for n := range nodeSet {
		w.nodes = append(w.nodes, n)
	}
	sort.Strings(w.nodes)
	return w, nil
}

// fetchInfo bootstraps one daemon: dial its gatekeeper by raw endpoint and
// ask for the deployment descriptor.
func fetchInfo(host *sockets.WallHost, addr string) (*gatekeeper.NodeInfo, error) {
	st, err := host.DialAddr(addr, gatekeeper.Service)
	if err != nil {
		return nil, fmt.Errorf("deploy: attach %s: %w", addr, err)
	}
	defer st.Close()
	defer gatekeeper.ArmControlDeadline(st)()
	if err := gatekeeper.WriteRequest(st, &gatekeeper.Request{Op: gatekeeper.OpInfo}); err != nil {
		return nil, fmt.Errorf("deploy: attach %s: %w", addr, err)
	}
	resp, err := gatekeeper.ReadResponse(st)
	if err != nil {
		return nil, fmt.Errorf("deploy: attach %s: %w", addr, err)
	}
	if err := resp.Err(); err != nil {
		return nil, fmt.Errorf("deploy: attach %s: %w", addr, err)
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("deploy: attach %s: daemon returned no info", addr)
	}
	return resp.Info, nil
}

// Nodes returns the discovered node names, sorted.
func (w *WallDeployment) Nodes() []string { return append([]string(nil), w.nodes...) }

// Warnings returns the per-endpoint failures of a partially successful
// attach (daemons named on the command line that did not answer).
func (w *WallDeployment) Warnings() []error { return append([]error(nil), w.warnings...) }

// Registries returns the replica placement the deployment advertises.
func (w *WallDeployment) Registries() []string { return append([]string(nil), w.registries...) }

// Registry returns the seat's replicated-registry client.
func (w *WallDeployment) Registry() *gatekeeper.RegistryClient { return w.rc }

// Telemetry returns the seat's own metric/trace registry — where the wall
// host's session and stream gauges, dial counters and controller traces
// land. This is the seat's view of the data plane, not any daemon's.
func (w *WallDeployment) Telemetry() *telemetry.Registry { return w.Host.Telemetry() }

// DialService resolves a published service by name and dials it over the
// wall transport — through the owning daemon's gateway when the service
// lives on the process's internal linker.
func (w *WallDeployment) DialService(kind, name string) (vlink.Stream, error) {
	return gatekeeper.DialServiceOn(w.Tr, w.rc, kind, name)
}

// Close releases the seat: the pooled control sessions, the registry
// session and the dialer. The deployment itself keeps running — that is
// the point.
func (w *WallDeployment) Close() {
	w.closeOnce.Do(func() {
		w.Ctl.Close()
		w.rc.Close()
		w.Host.Close()
	})
}
