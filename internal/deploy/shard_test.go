package deploy

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"padico/internal/gatekeeper"
	"padico/internal/orb"
)

func TestShardPlacement(t *testing.T) {
	zones := map[string]string{
		"c0": "irisa", "c1": "irisa", "c2": "irisa",
		"x0": "companyX", "x1": "companyX",
	}
	// S<=1 collapses to the default single-group placement: the first node
	// of every zone.
	for _, s := range []int{0, 1} {
		got := ShardPlacement(zones, s)
		if !reflect.DeepEqual(got, [][]string{{"c0", "x0"}}) {
			t.Fatalf("ShardPlacement(S=%d) = %v, want the default placement", s, got)
		}
	}
	// S=4: every shard keeps one replica per zone, consecutive shards
	// round-robin within each zone's name order.
	got := ShardPlacement(zones, 4)
	want := [][]string{
		{"c0", "x0"}, // s=0: irisa[0], companyX[0]
		{"c1", "x1"}, // s=1: irisa[1], companyX[1]
		{"c2", "x0"}, // s=2: irisa[2], companyX[0]
		{"c0", "x1"}, // s=3: irisa[0 again], companyX[1]
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ShardPlacement(S=4) = %v, want %v", got, want)
	}
	// Deterministic across calls (map iteration must not leak in).
	for i := 0; i < 16; i++ {
		if !reflect.DeepEqual(ShardPlacement(zones, 4), want) {
			t.Fatal("ShardPlacement is not deterministic")
		}
	}
	// A single-zone grid still spreads shards across the zone's nodes.
	one := map[string]string{"a0": "z", "a1": "z"}
	got = ShardPlacement(one, 3)
	want = [][]string{{"a0"}, {"a1"}, {"a0"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-zone ShardPlacement = %v, want %v", got, want)
	}
}

func TestShardGroupsCodec(t *testing.T) {
	groups := [][]string{{"c0", "x0"}, {"c1", "x1"}, {"c2", "x0"}}
	enc := FormatShardGroups(groups)
	if enc != "c0,x0;c1,x1;c2,x0" {
		t.Fatalf("FormatShardGroups = %q", enc)
	}
	dec, err := ParseShardGroups(enc)
	if err != nil || !reflect.DeepEqual(dec, groups) {
		t.Fatalf("roundtrip = %v, %v", dec, err)
	}
	if dec, err := ParseShardGroups(""); err != nil || dec != nil {
		t.Fatalf("empty spec = %v, %v, want nil, nil", dec, err)
	}
	if _, err := ParseShardGroups("c0;;c1"); err == nil ||
		!strings.Contains(err.Error(), "empty replica group") {
		t.Fatalf("empty group accepted: %v", err)
	}
}

// TestLaunchAllSharded: the simulator end of the shared placement seam. A
// sharded launch places each shard's replica group by ShardPlacement,
// loads the registry on the union of group hosts, wires every process with
// a sharded client, and the whole deployment still resolves by name —
// including entries that live in different shards.
func TestLaunchAllSharded(t *testing.T) {
	const shards = 4
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAllSharded(shards)
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		want := topo.ShardPlacement(shards)
		if !reflect.DeepEqual(p.ShardGroups, want) {
			t.Fatalf("platform shard groups = %v, want %v", p.ShardGroups, want)
		}
		// Registries is the sorted union of the groups' hosts, and each of
		// them runs a replica hosting exactly its owned shards.
		union := map[string][]int{}
		for s, g := range want {
			for _, n := range g {
				union[n] = append(union[n], s)
			}
		}
		if len(p.Registries) != len(union) {
			t.Fatalf("registries = %v, want hosts %v", p.Registries, union)
		}
		for _, n := range p.Registries {
			if !procs[n].Loaded("registry") {
				t.Fatalf("no registry replica on group host %s", n)
			}
			reg, _ := gatekeeper.RegistryOn(procs[n])
			if got := reg.ShardIDs(); !reflect.DeepEqual(got, union[n]) {
				t.Fatalf("%s hosts shards %v, want %v", n, got, union[n])
			}
		}

		// Every process announced through its sharded client; after one
		// sync interval the gatekeeper service resolves from anywhere, and
		// by-name dialing works across shards.
		p.Grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		rc := gatekeeper.NewShardedRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["x1"].Linker()}, want)
		rc.SetCacheTTL(0)
		entries, err := rc.Lookup("vlink", gatekeeper.Service)
		if err != nil || len(entries) != 4 {
			t.Fatalf("announced gatekeepers = %v, %v (want all 4)", entries, err)
		}
		st, err := procs["x1"].Linker().DialService("vlink", gatekeeper.Service)
		if err != nil {
			t.Fatalf("by-name dial on the sharded deployment: %v", err)
		}
		st.Close()

		// The per-shard status of a group host reports only its owned
		// shards, with the grid-wide shard count driving the breakdown.
		host := p.Registries[0]
		stat, err := rc.StatusOf(host)
		if err != nil {
			t.Fatal(err)
		}
		if len(stat.Shards) != len(union[host]) {
			t.Fatalf("%s status shards = %+v, want %d shards", host, stat.Shards, len(union[host]))
		}
	})
}

// TestLaunchAllShardedSingleShard: S=1 goes through the exact same
// entry point and reproduces the classic single-group deployment.
func TestLaunchAllShardedSingleShard(t *testing.T) {
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		if _, err := p.LaunchAllSharded(1); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if got := strings.Join(p.Registries, ","); got != "c0,x0" {
			t.Fatalf("S=1 placement = %s, want the classic c0,x0", got)
		}
		if len(p.ShardGroups) != 1 {
			t.Fatalf("S=1 shard groups = %v", p.ShardGroups)
		}
	})
}

// TestShardedLeaseRenewalKeepsEntriesLive: on a sharded deployment the
// gatekeeper's lease loop renews through renew-batch frames; entries
// published into different shards stay live well past several TTLs.
func TestShardedLeaseRenewalKeepsEntriesLive(t *testing.T) {
	const shards = 3
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAllSharded(shards)
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		p.Grid.Sim.Sleep(4 * gatekeeper.DefaultLeaseTTL)
		rc := gatekeeper.NewShardedRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["c1"].Linker()}, p.ShardGroups)
		rc.SetCacheTTL(0)
		entries, err := rc.Lookup("vlink", gatekeeper.Service)
		if err != nil || len(entries) != 4 {
			t.Fatalf("after 10 TTLs of renewals: %v, %v (want all 4 gatekeepers live)", entries, err)
		}
		for _, e := range entries {
			if e.TTLMillis <= 0 {
				t.Fatalf("entry %+v has no live lease", e)
			}
		}
	})
}

// entriesByShard is a helper assertion: every entry's name must belong to
// the shard of the replica serving it.
func entriesByShard(t *testing.T, entries []gatekeeper.Entry, shards int, owned []int) {
	t.Helper()
	own := map[int]bool{}
	for _, s := range owned {
		own[s] = true
	}
	for _, e := range entries {
		if s := gatekeeper.ShardOf(e.Name, shards); !own[s] {
			t.Fatalf("entry %q (shard %d) served by a replica owning %v", e.Name, s, owned)
		}
	}
}

// TestShardedReplicaHoldsOnlyOwnedShards: publishes spread across shards
// land only on owning replicas — a group host never stores another
// shard's records.
func TestShardedReplicaHoldsOnlyOwnedShards(t *testing.T) {
	const shards = 4
	topo, _ := ParseTopology([]byte(topoXML))
	p, _ := Build(topo)
	p.Grid.Run(func() {
		procs, err := p.LaunchAllSharded(shards)
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		rc := gatekeeper.NewShardedRegistryClient(p.Grid.Sim,
			orb.VLinkTransport{Linker: procs["x1"].Linker()}, p.ShardGroups)
		rc.SetCacheTTL(0)
		var entries []gatekeeper.Entry
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("spread%d", i)
			entries = append(entries, gatekeeper.Entry{Node: "x1", Kind: "vlink", Name: name})
		}
		if err := rc.PublishTTL("x1", entries, time.Minute); err != nil {
			t.Fatal(err)
		}
		owned := map[string][]int{}
		for s, g := range p.ShardGroups {
			for _, n := range g {
				owned[n] = append(owned[n], s)
			}
		}
		for _, host := range p.Registries {
			got, err := rc.LookupAt(host, "vlink", "")
			if err != nil {
				t.Fatalf("LookupAt %s: %v", host, err)
			}
			entriesByShard(t, got, shards, owned[host])
		}
	})
}
