package deploy

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWallMetricsHTTPAndOpAgree boots one daemon with its observability
// HTTP listener on and asserts the two scrape paths tell the same story:
// the supervisor-stamped restart generation reads identically through the
// gatekeeper metrics op and the Prometheus endpoint, monotonic counters
// only grow between the two scrapes, and pprof answers.
func TestWallMetricsHTTPAndOpAgree(t *testing.T) {
	d, err := StartDaemon(DaemonConfig{
		Node: "m0", Zone: "a", Registries: []string{"m0"},
		LeaseTTL: 500 * time.Millisecond, SyncInterval: 50 * time.Millisecond,
		HTTP: "127.0.0.1:0", Epoch: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.HTTP == nil {
		t.Fatal("daemon has no HTTP server despite cfg.HTTP")
	}

	dep, err := Attach([]string{d.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	const pings = 5
	for i := 0; i < pings; i++ {
		if err := dep.Ctl.Ping("m0"); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := dep.Ctl.Metrics("m0")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Gauge("daemon_restarts"); got != 7 {
		t.Fatalf("metrics op daemon_restarts = %d, want the spawn epoch 7", got)
	}
	opReqs := snap.Counter("gk.requests")
	if opReqs < pings+1 {
		t.Fatalf("metrics op gk.requests = %d, want >= %d", opReqs, pings+1)
	}

	// The HTTP scrape runs after the op scrape: the gauge must agree
	// exactly, the request counter may only have grown.
	resp, err := http.Get("http://" + d.HTTP.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	text := string(body)
	if !strings.Contains(text, `padico_daemon_restarts{node="m0"} 7`) {
		t.Fatalf("/metrics missing the epoch gauge:\n%s", text)
	}
	httpReqs := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, `padico_gk_requests{node="m0"} `); ok {
			httpReqs, err = strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad gk.requests sample %q: %v", line, err)
			}
		}
	}
	if httpReqs < opReqs {
		t.Fatalf("/metrics gk.requests = %d, op scrape saw %d earlier — counter went backwards", httpReqs, opReqs)
	}

	// Latency histograms export their quantile series.
	if !strings.Contains(text, `padico_gk_handle_p99_us{node="m0"}`) {
		t.Fatalf("/metrics missing gk.handle quantiles:\n%s", text)
	}

	// pprof rides the same listener.
	pp, err := http.Get("http://" + d.HTTP.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: status %d", pp.StatusCode)
	}
}
