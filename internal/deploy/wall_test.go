package deploy

import (
	"testing"
	"time"

	"padico/internal/gatekeeper"
	"padico/internal/soap"
)

// startTrio boots the canonical live test grid on loopback TCP: three
// daemons in two zones, registry replicas on w0 and w1, addresses seeded
// the way an operator would — each daemon knows the replicas, nothing else.
func startTrio(t *testing.T) (d0, d1, d2 *Daemon) {
	t.Helper()
	const (
		lease = 500 * time.Millisecond
		sync  = 50 * time.Millisecond
	)
	regs := []string{"w0", "w1"}
	var err error
	d0, err = StartDaemon(DaemonConfig{Node: "w0", Zone: "a", Registries: regs,
		LeaseTTL: lease, SyncInterval: sync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d0.Close)
	d1, err = StartDaemon(DaemonConfig{Node: "w1", Zone: "b", Registries: regs,
		Peers: map[string]string{"w0": d0.Addr()}, LeaseTTL: lease, SyncInterval: sync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d1.Close)
	d2, err = StartDaemon(DaemonConfig{Node: "w2", Zone: "b", Registries: regs,
		Peers:    map[string]string{"w0": d0.Addr(), "w1": d1.Addr()},
		LeaseTTL: lease, SyncInterval: sync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Close)
	return d0, d1, d2
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWallDeploymentEndToEnd is the live-deployment acceptance: ≥2 genuine
// padico-d instances on loopback TCP, an attached controller steering them
// with no simnet anywhere in the control path, soap hot-loaded remotely,
// name resolution through the replicated registry, and failover when a
// replica-hosting daemon is killed mid-run.
func TestWallDeploymentEndToEnd(t *testing.T) {
	d0, _, _ := startTrio(t)

	// Attach through ONE endpoint: the descriptor + registry entries must
	// reveal the whole grid.
	dep, err := Attach([]string{d0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Registry().SetCacheTTL(0)

	waitFor(t, "all three daemons in the registry", 5*time.Second, func() bool {
		entries, err := dep.Registry().Lookup("module", "vlink")
		return err == nil && len(entries) == 3
	})
	if got := dep.Registries(); len(got) != 2 || got[0] != "w0" || got[1] != "w1" {
		t.Fatalf("attached registries = %v, want [w0 w1]", got)
	}

	// Refresh the discovered node set now that every lease landed.
	dep2, err := Attach([]string{d0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep2.Close()
	dep2.Registry().SetCacheTTL(0)
	if nodes := dep2.Nodes(); len(nodes) != 3 {
		t.Fatalf("discovered nodes = %v, want 3", nodes)
	}

	// Steer every daemon over real TCP: fan-out ping and list.
	for _, r := range dep2.Ctl.Fanout(dep2.Nodes(), &gatekeeper.Request{Op: gatekeeper.OpPing}) {
		if r.Err != nil {
			t.Fatalf("ping %s: %v", r.Node, r.Err)
		}
	}

	// Hot-load soap into w2 remotely; its lease re-announce publishes the
	// soap:sys VLink service grid-wide.
	if _, err := dep2.Ctl.Load("w2", "soap"); err != nil {
		t.Fatalf("remote load soap: %v", err)
	}
	waitFor(t, "soap:sys in the registry", 5*time.Second, func() bool {
		entries, err := dep2.Registry().Lookup("vlink", "soap:sys")
		return err == nil && len(entries) == 1
	})

	// Resolve by name and dial through w2's wall gateway into its
	// in-process SOAP server.
	st, err := dep2.DialService("vlink", "soap:sys")
	if err != nil {
		t.Fatalf("dial soap:sys by name: %v", err)
	}
	answer, err := soap.Call(st, "echo", "live")
	st.Close()
	if err != nil || len(answer) != 1 || answer[0] != "live" {
		t.Fatalf("soap echo over the gateway = %v, %v", answer, err)
	}

	// Kill the preferred replica (crash semantics: no withdraw). The
	// surviving replica already holds the records via anti-entropy, so
	// resolution and dialing keep working through failover.
	d0.Kill()
	waitFor(t, "failover resolution of soap:sys", 5*time.Second, func() bool {
		st, err := dep2.DialService("vlink", "soap:sys")
		if err != nil {
			return false
		}
		st.Close()
		return true
	})
	if node := dep2.Registry().RegistryNode(); node != "w1" {
		t.Fatalf("seat's registry client pinned to %q after failover, want w1", node)
	}

	// The dead daemon's own entries fall out once its lease expires.
	waitFor(t, "w0's lease to expire on the survivor", 5*time.Second, func() bool {
		entries, err := dep2.Registry().Lookup("module", "vlink")
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Node == "w0" {
				return false
			}
		}
		return true
	})
}

// TestWallCleanCloseWithdraws is Close vs Kill: a cleanly closed daemon
// vanishes from the registry within a sync interval — well before its
// lease TTL — because it withdraws while its links are still up.
func TestWallCleanCloseWithdraws(t *testing.T) {
	_, _, d2 := startTrio(t)

	dep, err := Attach([]string{d2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Registry().SetCacheTTL(0)

	waitFor(t, "w2 announced", 5*time.Second, func() bool {
		entries, err := dep.Registry().Lookup("", "")
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Node == "w2" {
				return true
			}
		}
		return false
	})

	closed := time.Now()
	d2.Close()
	waitFor(t, "w2 withdrawn from the registry", 2*time.Second, func() bool {
		entries, err := dep.Registry().Lookup("", "")
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Node == "w2" {
				return false
			}
		}
		return true
	})
	// Withdraw must beat lease expiry by a clear margin (the tombstone
	// propagates within one 50ms sync interval; the lease is 500ms).
	if waited := time.Since(closed); waited > 400*time.Millisecond {
		t.Fatalf("withdraw took %v — indistinguishable from lease expiry", waited)
	}
}

// TestWallReplicaCloseWithdraws is the harder variant: the closing daemon
// HOSTS a replica, so its withdraw lands on its own (dying) local replica.
// Close must push one final sync round so the tombstone reaches the
// survivors — otherwise clean shutdown of a replica host silently degrades
// to crash semantics and its entries linger on the other replicas until
// lease expiry.
func TestWallReplicaCloseWithdraws(t *testing.T) {
	_, d1, _ := startTrio(t)

	// Observe through the OTHER replica (w0): the tombstone must arrive
	// there, not just on d1's own replica.
	dep, err := Attach([]string{d1.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Registry().SetCacheTTL(0)
	hasW1At := func(rep string) bool {
		entries, err := dep.Registry().LookupAt(rep, "", "")
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Node == "w1" {
				return true
			}
		}
		return false
	}
	waitFor(t, "w1 replicated to w0", 5*time.Second, func() bool { return hasW1At("w0") })

	closed := time.Now()
	d1.Close()
	waitFor(t, "w1's tombstone on the surviving replica", 2*time.Second, func() bool { return !hasW1At("w0") })
	if waited := time.Since(closed); waited > 400*time.Millisecond {
		t.Fatalf("replica-host withdraw took %v — indistinguishable from lease expiry", waited)
	}
}

// TestAttachEndpointLearning verifies the address-distribution channel: an
// attached seat that was told about ONE daemon dials every other node by
// name, because registry entries advertise their daemon's endpoint.
func TestAttachEndpointLearning(t *testing.T) {
	d0, _, _ := startTrio(t)

	dep, err := Attach([]string{d0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Registry().SetCacheTTL(0)
	waitFor(t, "grid discovery", 5*time.Second, func() bool {
		entries, err := dep.Registry().Lookup("module", "vlink")
		return err == nil && len(entries) == 3
	})
	// w2's endpoint was never configured anywhere on the seat: it must
	// have been learned from the registry.
	if err := dep.Ctl.Ping("w2"); err != nil {
		t.Fatalf("ping w2 through a learned endpoint: %v", err)
	}
	info, err := dep.Ctl.Info("w2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Node != "w2" || info.Zone != "b" || info.Addr == "" {
		t.Fatalf("w2 info = %+v", info)
	}
}
