// Package redistrib computes data redistribution schedules for GridCCM
// (§4.2.2): how the blocks of a sequence distributed over M client nodes
// map onto N server nodes. The paper's current implementation distributes
// 1-D arrays (IDL sequences) block-wise; this package implements block,
// cyclic and block-cyclic descriptions, with the M→N block→block schedule
// used by the parallel-component runtime, and coalescing of adjacent
// fragments.
package redistrib

import (
	"fmt"
	"sort"
)

// Layout describes how a 1-D array of Total elements is spread over Parts
// owners.
type Layout struct {
	Kind  Kind
	Total int
	Parts int
	Block int // block size for BlockCyclic
}

// Kind enumerates distribution families.
type Kind int

// Distribution kinds.
const (
	// Block gives owner i one contiguous run (the GridCCM default).
	Block Kind = iota
	// Cyclic deals elements round-robin.
	Cyclic
	// BlockCyclic deals fixed-size blocks round-robin.
	BlockCyclic
)

func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block-cyclic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NewBlock builds the standard block layout: ceil-sized leading blocks.
func NewBlock(total, parts int) Layout { return Layout{Kind: Block, Total: total, Parts: parts} }

// NewCyclic builds a round-robin layout.
func NewCyclic(total, parts int) Layout { return Layout{Kind: Cyclic, Total: total, Parts: parts} }

// NewBlockCyclic builds a block-cyclic layout with the given block size.
func NewBlockCyclic(total, parts, block int) Layout {
	return Layout{Kind: BlockCyclic, Total: total, Parts: parts, Block: block}
}

// Range is a half-open run of global indices [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Owner returns the owner of global index i.
func (l Layout) Owner(i int) int {
	if i < 0 || i >= l.Total {
		return -1
	}
	switch l.Kind {
	case Block:
		q, r := l.Total/l.Parts, l.Total%l.Parts
		// Owners 0..r-1 hold q+1 elements, the rest hold q.
		if i < r*(q+1) {
			return i / (q + 1)
		}
		return r + (i-r*(q+1))/q
	case Cyclic:
		return i % l.Parts
	default: // BlockCyclic
		return (i / l.Block) % l.Parts
	}
}

// OwnedRanges returns the global index runs owned by part p, in order.
func (l Layout) OwnedRanges(p int) []Range {
	if p < 0 || p >= l.Parts || l.Total == 0 {
		return nil
	}
	switch l.Kind {
	case Block:
		q, r := l.Total/l.Parts, l.Total%l.Parts
		var lo int
		if p < r {
			lo = p * (q + 1)
			return []Range{{Lo: lo, Hi: lo + q + 1}}
		}
		lo = r*(q+1) + (p-r)*q
		if q == 0 {
			return nil
		}
		return []Range{{Lo: lo, Hi: lo + q}}
	case Cyclic:
		var out []Range
		for i := p; i < l.Total; i += l.Parts {
			out = append(out, Range{Lo: i, Hi: i + 1})
		}
		return coalesce(out)
	default: // BlockCyclic
		var out []Range
		for blk := p; ; blk += l.Parts {
			lo := blk * l.Block
			if lo >= l.Total {
				break
			}
			hi := lo + l.Block
			if hi > l.Total {
				hi = l.Total
			}
			out = append(out, Range{Lo: lo, Hi: hi})
		}
		return coalesce(out)
	}
}

// Count returns how many elements part p owns.
func (l Layout) Count(p int) int {
	n := 0
	for _, r := range l.OwnedRanges(p) {
		n += r.Len()
	}
	return n
}

// Transfer is one fragment of a redistribution schedule: the elements
// [Lo,Hi) move from source part From to destination part To.
type Transfer struct {
	From, To int
	Range
}

// Schedule computes the full redistribution plan from one layout to
// another over the same Total, with adjacent fragments coalesced.
func Schedule(from, to Layout) ([]Transfer, error) {
	if from.Total != to.Total {
		return nil, fmt.Errorf("redistrib: layouts cover %d vs %d elements", from.Total, to.Total)
	}
	var out []Transfer
	for p := 0; p < from.Parts; p++ {
		for _, r := range from.OwnedRanges(p) {
			// Split r by destination owner.
			i := r.Lo
			for i < r.Hi {
				owner := to.Owner(i)
				j := i + 1
				for j < r.Hi && to.Owner(j) == owner {
					j++
				}
				out = append(out, Transfer{From: p, To: owner, Range: Range{Lo: i, Hi: j}})
				i = j
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		if out[a].To != out[b].To {
			return out[a].To < out[b].To
		}
		return out[a].Lo < out[b].Lo
	})
	return coalesceTransfers(out), nil
}

// Outgoing filters a schedule to the transfers leaving part p.
func Outgoing(plan []Transfer, p int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.From == p {
			out = append(out, t)
		}
	}
	return out
}

// Incoming filters a schedule to the transfers arriving at part p.
func Incoming(plan []Transfer, p int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.To == p {
			out = append(out, t)
		}
	}
	return out
}

func coalesce(rs []Range) []Range {
	if len(rs) == 0 {
		return nil
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		if last := &out[len(out)-1]; last.Hi == r.Lo {
			last.Hi = r.Hi
		} else {
			out = append(out, r)
		}
	}
	return out
}

func coalesceTransfers(ts []Transfer) []Transfer {
	if len(ts) == 0 {
		return nil
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		last := &out[len(out)-1]
		if last.From == t.From && last.To == t.To && last.Hi == t.Lo {
			last.Hi = t.Hi
		} else {
			out = append(out, t)
		}
	}
	return out
}
