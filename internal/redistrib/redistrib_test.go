package redistrib

import (
	"testing"
	"testing/quick"
)

func TestBlockLayoutShapes(t *testing.T) {
	// 10 over 4 → 3,3,2,2.
	l := NewBlock(10, 4)
	wantCounts := []int{3, 3, 2, 2}
	for p, want := range wantCounts {
		if got := l.Count(p); got != want {
			t.Errorf("count(%d) = %d, want %d", p, got, want)
		}
	}
	if rs := l.OwnedRanges(0); len(rs) != 1 || rs[0] != (Range{0, 3}) {
		t.Errorf("ranges(0) = %v", rs)
	}
	if rs := l.OwnedRanges(3); len(rs) != 1 || rs[0] != (Range{8, 10}) {
		t.Errorf("ranges(3) = %v", rs)
	}
}

func TestBlockMorePartsThanElements(t *testing.T) {
	l := NewBlock(2, 5)
	total := 0
	for p := 0; p < 5; p++ {
		total += l.Count(p)
	}
	if total != 2 {
		t.Fatalf("total owned = %d", total)
	}
	if l.Count(0) != 1 || l.Count(1) != 1 || l.Count(2) != 0 {
		t.Fatalf("counts = %d %d %d", l.Count(0), l.Count(1), l.Count(2))
	}
}

func TestCyclicAndBlockCyclic(t *testing.T) {
	c := NewCyclic(7, 3)
	if c.Owner(0) != 0 || c.Owner(4) != 1 || c.Owner(5) != 2 {
		t.Error("cyclic owners wrong")
	}
	if got := c.Count(0); got != 3 { // 0,3,6
		t.Errorf("cyclic count(0) = %d", got)
	}
	bc := NewBlockCyclic(10, 2, 3)
	// blocks: [0,3)→0, [3,6)→1, [6,9)→0, [9,10)→1
	if bc.Owner(2) != 0 || bc.Owner(3) != 1 || bc.Owner(7) != 0 || bc.Owner(9) != 1 {
		t.Error("block-cyclic owners wrong")
	}
	rs := bc.OwnedRanges(0)
	if len(rs) != 2 || rs[0] != (Range{0, 3}) || rs[1] != (Range{6, 9}) {
		t.Errorf("block-cyclic ranges(0) = %v", rs)
	}
}

func TestOwnerOutOfRange(t *testing.T) {
	l := NewBlock(5, 2)
	if l.Owner(-1) != -1 || l.Owner(5) != -1 {
		t.Error("out-of-range index got an owner")
	}
	if l.OwnedRanges(9) != nil || l.OwnedRanges(-1) != nil {
		t.Error("out-of-range part owns ranges")
	}
}

func TestIdentityScheduleIsOneToOne(t *testing.T) {
	// Same layout both sides: each part sends itself exactly one fragment.
	from, to := NewBlock(1000, 4), NewBlock(1000, 4)
	plan, err := Schedule(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan = %v", plan)
	}
	for _, tr := range plan {
		if tr.From != tr.To {
			t.Errorf("identity schedule moves %d→%d", tr.From, tr.To)
		}
	}
}

func TestMToNSchedule(t *testing.T) {
	// 2 clients → 4 servers over 8 elements: client 0 holds [0,4) which
	// splits into servers 0 ([0,2)) and 1 ([2,4)).
	plan, err := Schedule(NewBlock(8, 2), NewBlock(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan = %v", plan)
	}
	if plan[0] != (Transfer{From: 0, To: 0, Range: Range{0, 2}}) ||
		plan[1] != (Transfer{From: 0, To: 1, Range: Range{2, 4}}) {
		t.Fatalf("plan = %v", plan)
	}
	out := Outgoing(plan, 1)
	if len(out) != 2 || out[0].To != 2 || out[1].To != 3 {
		t.Fatalf("outgoing(1) = %v", out)
	}
	in := Incoming(plan, 2)
	if len(in) != 1 || in[0].From != 1 {
		t.Fatalf("incoming(2) = %v", in)
	}
}

func TestScheduleMismatchedTotals(t *testing.T) {
	if _, err := Schedule(NewBlock(10, 2), NewBlock(11, 2)); err == nil {
		t.Fatal("mismatched totals accepted")
	}
}

func TestCyclicToBlockCoalesces(t *testing.T) {
	plan, err := Schedule(NewCyclic(8, 2), NewBlock(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Cyclic part 0 owns {0,2,4,6}: each is a separate fragment (no
	// adjacency), destinations 0,0,1,1.
	out := Outgoing(plan, 0)
	if len(out) != 4 {
		t.Fatalf("outgoing(0) = %v", out)
	}
}

// Property: every schedule is a partition — each global index moves exactly
// once, from its real source to its real destination.
func TestSchedulePartitionProperty(t *testing.T) {
	f := func(total16 uint16, m8, n8, kindF, kindT uint8) bool {
		total := int(total16%5000) + 1
		m := int(m8%8) + 1
		n := int(n8%8) + 1
		mk := func(k uint8, parts int) Layout {
			switch k % 3 {
			case 0:
				return NewBlock(total, parts)
			case 1:
				return NewCyclic(total, parts)
			default:
				return NewBlockCyclic(total, parts, int(k%7)+1)
			}
		}
		from, to := mk(kindF, m), mk(kindT, n)
		plan, err := Schedule(from, to)
		if err != nil {
			return false
		}
		seen := make([]int, total)
		for _, tr := range plan {
			if tr.Lo < 0 || tr.Hi > total || tr.Lo >= tr.Hi {
				return false
			}
			for i := tr.Lo; i < tr.Hi; i++ {
				seen[i]++
				if from.Owner(i) != tr.From || to.Owner(i) != tr.To {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counts over all parts sum to Total for every kind.
func TestCountConservationProperty(t *testing.T) {
	f := func(total16 uint16, parts8, kind, blk uint8) bool {
		total := int(total16 % 10000)
		parts := int(parts8%16) + 1
		var l Layout
		switch kind % 3 {
		case 0:
			l = NewBlock(total, parts)
		case 1:
			l = NewCyclic(total, parts)
		default:
			l = NewBlockCyclic(total, parts, int(blk%9)+1)
		}
		sum := 0
		for p := 0; p < parts; p++ {
			sum += l.Count(p)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" ||
		BlockCyclic.String() != "block-cyclic" || Kind(9).String() == "" {
		t.Error("Kind.String broken")
	}
}
