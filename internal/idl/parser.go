package idl

import (
	"fmt"
	"strings"
)

// Parse compiles IDL source into the repository. It may be called several
// times; later files see earlier declarations (like an include path).
func (r *Repository) Parse(src string) error {
	toks, err := lex(src)
	if err != nil {
		return err
	}
	p := &parser{repo: r, toks: toks}
	if err := p.spec(); err != nil {
		return err
	}
	return p.resolveAll()
}

// MustParse is Parse panicking on error, for static IDL in tests/examples.
func (r *Repository) MustParse(src string) {
	if err := r.Parse(src); err != nil {
		panic(err)
	}
}

type parser struct {
	repo  *Repository
	toks  []token
	pos   int
	scope []string // module nesting

	// named references pending resolution, with the scope they appeared in
	unresolved []*pendingRef
}

type pendingRef struct {
	t     *Type
	scope []string
	line  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("idl:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if p.cur().text != text {
		return p.errf("expected %q, got %s", text, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, got %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) qualify(name string) string {
	if len(p.scope) == 0 {
		return name
	}
	return strings.Join(p.scope, "::") + "::" + name
}

// spec := { module | definition }
func (p *parser) spec() error {
	for p.cur().kind != tokEOF {
		if err := p.definition(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) definition() error {
	switch p.cur().text {
	case "module":
		return p.module()
	case "struct":
		return p.structDecl()
	case "interface":
		return p.interfaceDecl()
	case "typedef":
		return p.typedefDecl()
	case "enum":
		return p.enumDecl()
	default:
		return p.errf("expected declaration, got %s", p.cur())
	}
}

func (p *parser) module() error {
	p.pos++ // module
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	p.scope = append(p.scope, name)
	for p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return p.errf("unterminated module %s", name)
		}
		if err := p.definition(); err != nil {
			return err
		}
	}
	p.pos++ // }
	p.scope = p.scope[:len(p.scope)-1]
	return p.expect(";")
}

func (p *parser) structDecl() error {
	p.pos++ // struct
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	st := &Type{Kind: KindStruct, Name: p.qualify(name)}
	for p.cur().text != "}" {
		ft, err := p.typeSpec()
		if err != nil {
			return err
		}
		fname, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		st.Fields = append(st.Fields, Field{Name: fname, Type: ft})
	}
	p.pos++ // }
	if err := p.expect(";"); err != nil {
		return err
	}
	p.repo.types[st.Name] = st
	return nil
}

func (p *parser) enumDecl() error {
	p.pos++ // enum
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	et := &Type{Kind: KindEnum, Name: p.qualify(name)}
	for {
		label, err := p.ident()
		if err != nil {
			return err
		}
		et.Labels = append(et.Labels, label)
		if p.cur().text != "," {
			break
		}
		p.pos++
	}
	if err := p.expect("}"); err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	p.repo.types[et.Name] = et
	return nil
}

func (p *parser) typedefDecl() error {
	p.pos++ // typedef
	t, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	// A typedef aliases the underlying type under a new name. Sequences
	// and basic types are shared structurally.
	p.repo.types[p.qualify(name)] = t
	return nil
}

func (p *parser) interfaceDecl() error {
	p.pos++ // interface
	name, err := p.ident()
	if err != nil {
		return err
	}
	iface := &Interface{Name: p.qualify(name), repo: p.repo}
	if p.cur().text == ":" {
		p.pos++
		base, err := p.scopedName()
		if err != nil {
			return err
		}
		iface.Base = p.resolveInterfaceName(base)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for p.cur().text != "}" {
		if err := p.interfaceMember(iface); err != nil {
			return err
		}
	}
	p.pos++ // }
	if err := p.expect(";"); err != nil {
		return err
	}
	p.repo.ifaces[iface.Name] = iface
	// An interface name is also usable as an object-reference type.
	p.repo.types[iface.Name] = &Type{Kind: KindObjRef, Name: iface.Name}
	return nil
}

func (p *parser) interfaceMember(iface *Interface) error {
	readonly := false
	if p.cur().text == "readonly" {
		readonly = true
		p.pos++
	}
	if p.cur().text == "attribute" {
		p.pos++
		t, err := p.typeSpec()
		if err != nil {
			return err
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		iface.Attrs = append(iface.Attrs, Attribute{Name: name, Type: t, ReadOnly: readonly})
		return nil
	}
	if readonly {
		return p.errf("readonly must precede attribute")
	}
	oneway := false
	if p.cur().text == "oneway" {
		oneway = true
		p.pos++
	}
	result, err := p.typeSpec()
	if err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	op := &Operation{Name: name, Result: result, Oneway: oneway}
	for p.cur().text != ")" {
		if len(op.Params) > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		var dir Dir
		switch p.cur().text {
		case "in":
			dir = In
		case "out":
			dir = Out
		case "inout":
			dir = InOut
		default:
			return p.errf("expected parameter direction, got %s", p.cur())
		}
		p.pos++
		pt, err := p.typeSpec()
		if err != nil {
			return err
		}
		pname, err := p.ident()
		if err != nil {
			return err
		}
		op.Params = append(op.Params, Param{Name: pname, Dir: dir, Type: pt})
	}
	p.pos++ // )
	if err := p.expect(";"); err != nil {
		return err
	}
	if oneway && (op.Result.Kind != KindVoid || len(op.Outs()) > 0) {
		return p.errf("oneway operation %s must be void with in parameters only", name)
	}
	iface.Ops = append(iface.Ops, op)
	return nil
}

// typeSpec := basic | "sequence" "<" typeSpec ">" | scopedName
func (p *parser) typeSpec() (*Type, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected type, got %s", t)
	}
	switch t.text {
	case "void":
		p.pos++
		return Basic(KindVoid), nil
	case "boolean":
		p.pos++
		return Basic(KindBool), nil
	case "octet":
		p.pos++
		return Basic(KindOctet), nil
	case "short":
		p.pos++
		return Basic(KindShort), nil
	case "float":
		p.pos++
		return Basic(KindFloat), nil
	case "double":
		p.pos++
		return Basic(KindDouble), nil
	case "string":
		p.pos++
		return Basic(KindString), nil
	case "long":
		p.pos++
		if p.cur().text == "long" {
			p.pos++
			return Basic(KindLongLong), nil
		}
		return Basic(KindLong), nil
	case "unsigned":
		p.pos++
		switch p.cur().text {
		case "short":
			p.pos++
			return Basic(KindUShort), nil
		case "long":
			p.pos++
			if p.cur().text == "long" {
				p.pos++
				return Basic(KindULongLong), nil
			}
			return Basic(KindULong), nil
		}
		return nil, p.errf("expected short/long after unsigned")
	case "sequence":
		p.pos++
		if err := p.expect("<"); err != nil {
			return nil, err
		}
		elem, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if err := p.expect(">"); err != nil {
			return nil, err
		}
		return SequenceOf(elem), nil
	default:
		name, err := p.scopedName()
		if err != nil {
			return nil, err
		}
		ref := &Type{Kind: kindNamed, Name: name}
		p.unresolved = append(p.unresolved, &pendingRef{
			t:     ref,
			scope: append([]string(nil), p.scope...),
			line:  t.line,
		})
		return ref, nil
	}
}

// scopedName := ident { "::" ident }
func (p *parser) scopedName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.cur().kind == tokScope {
		p.pos++
		part, err := p.ident()
		if err != nil {
			return "", err
		}
		name += "::" + part
	}
	return name, nil
}

// resolveInterfaceName resolves a possibly-unqualified base interface name
// at the point of use (bases must be declared before the derived
// interface, as in IDL).
func (p *parser) resolveInterfaceName(name string) string {
	for i := len(p.scope); i >= 0; i-- {
		fq := strings.Join(append(append([]string(nil), p.scope[:i]...), name), "::")
		if _, ok := p.repo.ifaces[fq]; ok {
			return fq
		}
	}
	return name
}

// resolveAll replaces named references with their declarations.
func (p *parser) resolveAll() error {
	for _, ref := range p.unresolved {
		resolved := p.lookup(ref.scope, ref.t.Name)
		if resolved == nil {
			return fmt.Errorf("idl:%d: undefined type %q", ref.line, ref.t.Name)
		}
		*ref.t = *resolved
	}
	return nil
}

func (p *parser) lookup(scope []string, name string) *Type {
	for i := len(scope); i >= 0; i-- {
		fq := strings.Join(append(append([]string(nil), scope[:i]...), name), "::")
		if t, ok := p.repo.types[fq]; ok {
			return t
		}
	}
	return nil
}
