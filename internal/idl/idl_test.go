package idl

import (
	"strings"
	"testing"
)

const exampleIDL = `
// The paper's §2 code-coupling example.
module Coupling {
    typedef sequence<double> Vector;

    struct Sample {
        long step;
        double time;
        Vector values;
    };

    enum Phase { INIT, RUNNING, DONE };

    interface Transport {
        void setPorosity(in Vector porosity);
        Vector step(in double dt, out long iterations);
        readonly attribute Phase phase;
    };

    interface Chemistry : Transport {
        oneway void log(in string message);
        double density(in Sample s, inout Vector scratch);
    };
};
`

func parse(t *testing.T) *Repository {
	t.Helper()
	r := NewRepository()
	if err := r.Parse(exampleIDL); err != nil {
		t.Fatalf("parse: %v", err)
	}
	return r
}

func TestParseModuleAndTypes(t *testing.T) {
	r := parse(t)
	vec, ok := r.Type("Coupling::Vector")
	if !ok || vec.Kind != KindSequence || vec.Elem.Kind != KindDouble {
		t.Fatalf("Vector = %+v, %v", vec, ok)
	}
	st, ok := r.Type("Coupling::Sample")
	if !ok || st.Kind != KindStruct || len(st.Fields) != 3 {
		t.Fatalf("Sample = %+v", st)
	}
	if st.Fields[2].Name != "values" || st.Fields[2].Type.Kind != KindSequence {
		t.Fatalf("Sample.values = %+v", st.Fields[2])
	}
	en, ok := r.Type("Coupling::Phase")
	if !ok || en.Kind != KindEnum || len(en.Labels) != 3 || en.Labels[1] != "RUNNING" {
		t.Fatalf("Phase = %+v", en)
	}
}

func TestParseInterface(t *testing.T) {
	r := parse(t)
	tr, ok := r.Interface("Coupling::Transport")
	if !ok {
		t.Fatal("Transport not found")
	}
	set, ok := tr.Op("setPorosity")
	if !ok || len(set.Params) != 1 || set.Params[0].Dir != In {
		t.Fatalf("setPorosity = %+v", set)
	}
	if set.Params[0].Type.Kind != KindSequence {
		t.Fatalf("setPorosity param type = %v", set.Params[0].Type)
	}
	step, _ := tr.Op("step")
	if step.Result.Kind != KindSequence || len(step.Outs()) != 1 || len(step.Ins()) != 1 {
		t.Fatalf("step = %v", step)
	}
	attr, ok := tr.Attr("phase")
	if !ok || !attr.ReadOnly || attr.Type.Kind != KindEnum {
		t.Fatalf("phase attr = %+v", attr)
	}
}

func TestInheritance(t *testing.T) {
	r := parse(t)
	ch, ok := r.Interface("Coupling::Chemistry")
	if !ok {
		t.Fatal("Chemistry not found")
	}
	if ch.Base != "Coupling::Transport" {
		t.Fatalf("base = %q", ch.Base)
	}
	// Inherited op resolves through the chain.
	if _, ok := ch.Op("setPorosity"); !ok {
		t.Error("inherited op not found")
	}
	if _, ok := ch.Attr("phase"); !ok {
		t.Error("inherited attr not found")
	}
	if _, ok := ch.Op("nonexistent"); ok {
		t.Error("ghost op found")
	}
	all := ch.AllOps()
	if len(all) != 4 { // setPorosity, step, log, density
		t.Fatalf("AllOps = %d ops", len(all))
	}
	lg, _ := ch.Op("log")
	if !lg.Oneway {
		t.Error("log not oneway")
	}
	den, _ := ch.Op("density")
	if den.Params[1].Dir != InOut {
		t.Errorf("density scratch dir = %v", den.Params[1].Dir)
	}
	if den.Params[0].Type.Kind != KindStruct {
		t.Errorf("density sample kind = %v", den.Params[0].Type.Kind)
	}
}

func TestInterfaceAsObjRefType(t *testing.T) {
	r := NewRepository()
	r.MustParse(`
		interface Callback { void notify(in string what); };
		interface Registry { void register(in Callback cb); };
	`)
	reg, _ := r.Interface("Registry")
	op, _ := reg.Op("register")
	if op.Params[0].Type.Kind != KindObjRef || op.Params[0].Type.Name != "Callback" {
		t.Fatalf("callback param = %+v", op.Params[0].Type)
	}
}

func TestAllPrimitiveTypes(t *testing.T) {
	r := NewRepository()
	r.MustParse(`
		interface Prims {
			void all(in boolean a, in octet b, in short c, in unsigned short d,
			         in long e, in unsigned long f, in long long g,
			         in unsigned long long h, in float i, in double j, in string k);
		};
	`)
	p, _ := r.Interface("Prims")
	op, _ := p.Op("all")
	want := []Kind{KindBool, KindOctet, KindShort, KindUShort, KindLong,
		KindULong, KindLongLong, KindULongLong, KindFloat, KindDouble, KindString}
	for i, k := range want {
		if op.Params[i].Type.Kind != k {
			t.Errorf("param %d = %v, want %v", i, op.Params[i].Type.Kind, k)
		}
	}
}

func TestNestedSequences(t *testing.T) {
	// The paper: "a 2D array can be mapped to a sequence of sequences".
	r := NewRepository()
	r.MustParse(`typedef sequence<sequence<double>> Matrix;
		interface M { void set(in Matrix m); };`)
	m, _ := r.Type("Matrix")
	if m.Kind != KindSequence || m.Elem.Kind != KindSequence || m.Elem.Elem.Kind != KindDouble {
		t.Fatalf("Matrix = %v", m)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undefined type":     `interface I { void f(in Missing x); };`,
		"oneway non-void":    `interface I { oneway long f(in long x); };`,
		"oneway with out":    `interface I { oneway void f(out long x); };`,
		"bad direction":      `interface I { void f(long x); };`,
		"unterminated":       `module M { struct S { long x; };`,
		"garbage":            `$$$$`,
		"unsigned float":     `interface I { void f(in unsigned float x); };`,
		"unterminated block": `/* comment interface I {};`,
		"readonly op":        `interface I { readonly void f(); };`,
	}
	for name, src := range cases {
		r := NewRepository()
		if err := r.Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestCommentsAndPragmas(t *testing.T) {
	r := NewRepository()
	r.MustParse(`
		#include <orb.idl>
		#pragma prefix "irisa.fr"
		// line comment
		/* block
		   comment */
		interface I { void f(); }; // trailing
	`)
	if _, ok := r.Interface("I"); !ok {
		t.Fatal("interface lost among comments")
	}
}

func TestMultipleParseCalls(t *testing.T) {
	r := NewRepository()
	r.MustParse(`module A { struct S { long x; }; };`)
	// Second file references the first (include-style).
	if err := r.Parse(`interface UsesS { void f(in A::S s); };`); err != nil {
		t.Fatalf("cross-file reference: %v", err)
	}
	u, _ := r.Interface("UsesS")
	op, _ := u.Op("f")
	if op.Params[0].Type.Kind != KindStruct || op.Params[0].Type.Name != "A::S" {
		t.Fatalf("param = %+v", op.Params[0].Type)
	}
}

func TestScopedLookupInnerFirst(t *testing.T) {
	r := NewRepository()
	r.MustParse(`
		struct T { long outer; };
		module M {
			struct T { double inner; };
			interface I { void f(in T t); };
		};
	`)
	i, _ := r.Interface("M::I")
	op, _ := i.Op("f")
	if op.Params[0].Type.Fields[0].Name != "inner" {
		t.Fatalf("scoped lookup picked %+v", op.Params[0].Type)
	}
}

func TestStringRendering(t *testing.T) {
	r := parse(t)
	ch, _ := r.Interface("Coupling::Chemistry")
	den, _ := ch.Op("density")
	s := den.String()
	for _, want := range []string{"double density(", "in Coupling::Sample s", "inout sequence<double> scratch"} {
		if !strings.Contains(s, want) {
			t.Errorf("op string %q missing %q", s, want)
		}
	}
	lg, _ := ch.Op("log")
	if !strings.HasPrefix(lg.String(), "oneway void log(") {
		t.Errorf("log string = %q", lg.String())
	}
}

func TestProgrammaticRegistration(t *testing.T) {
	r := NewRepository()
	iface := &Interface{
		Name: "NameService",
		Ops: []*Operation{
			{Name: "bind", Result: Basic(KindVoid), Params: []Param{
				{Name: "name", Dir: In, Type: Basic(KindString)},
				{Name: "ref", Dir: In, Type: Basic(KindString)},
			}},
		},
	}
	r.RegisterInterface(iface)
	got, ok := r.Interface("NameService")
	if !ok {
		t.Fatal("registered interface not found")
	}
	if _, ok := got.Op("bind"); !ok {
		t.Fatal("registered op not found")
	}
	r.RegisterType("Blob", SequenceOf(Basic(KindOctet)))
	if tp, ok := r.Type("Blob"); !ok || tp.Elem.Kind != KindOctet {
		t.Fatal("registered type not found")
	}
}
