// Package idl implements the subset of the OMG Interface Definition
// Language that Padico's CORBA substrate and the GridCCM compiler consume:
// modules, interfaces (operations, attributes, single inheritance), structs,
// enums, typedefs and sequences over the basic types.
//
// Parsed declarations live in a Repository, the equivalent of an interface
// repository: the ORB uses it to drive dynamic (DII-style) marshalling and
// GridCCM uses it to synthesize the derived data-distribution interfaces of
// the paper's Figure 5.
package idl

import (
	"fmt"
	"strings"
)

// Kind enumerates IDL type constructors.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindBool
	KindOctet
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindSequence
	KindStruct
	KindEnum
	KindObjRef // interface reference
	kindNamed  // unresolved reference (parser-internal)
)

var kindNames = map[Kind]string{
	KindVoid: "void", KindBool: "boolean", KindOctet: "octet",
	KindShort: "short", KindUShort: "unsigned short", KindLong: "long",
	KindULong: "unsigned long", KindLongLong: "long long",
	KindULongLong: "unsigned long long", KindFloat: "float",
	KindDouble: "double", KindString: "string", KindSequence: "sequence",
	KindStruct: "struct", KindEnum: "enum", KindObjRef: "Object",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Type is one IDL type. Basic kinds use only Kind; sequences carry Elem;
// structs carry Fields; enums carry Labels; object references carry the
// interface Name.
type Type struct {
	Kind   Kind
	Name   string // declared name for struct/enum/objref (fully qualified)
	Elem   *Type  // sequence element
	Fields []Field
	Labels []string
}

// Field is one struct member.
type Field struct {
	Name string
	Type *Type
}

// String renders the type in IDL syntax.
func (t *Type) String() string {
	switch t.Kind {
	case KindSequence:
		return fmt.Sprintf("sequence<%s>", t.Elem)
	case KindStruct, KindEnum, KindObjRef, kindNamed:
		return t.Name
	default:
		return t.Kind.String()
	}
}

// Basic returns the singleton for a basic kind.
func Basic(k Kind) *Type { return basicTypes[k] }

var basicTypes = map[Kind]*Type{}

func init() {
	for k := KindVoid; k <= KindString; k++ {
		basicTypes[k] = &Type{Kind: k}
	}
}

// SequenceOf builds a sequence type.
func SequenceOf(elem *Type) *Type { return &Type{Kind: KindSequence, Elem: elem} }

// Dir is a parameter passing direction.
type Dir int

// Parameter directions.
const (
	In Dir = iota
	Out
	InOut
)

func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "inout"
	}
}

// Param is one operation parameter.
type Param struct {
	Name string
	Dir  Dir
	Type *Type
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Result *Type
	Params []Param
	Oneway bool
}

// Ins returns the parameters the client sends (in and inout).
func (o *Operation) Ins() []Param {
	var ps []Param
	for _, p := range o.Params {
		if p.Dir == In || p.Dir == InOut {
			ps = append(ps, p)
		}
	}
	return ps
}

// Outs returns the parameters the server returns (out and inout).
func (o *Operation) Outs() []Param {
	var ps []Param
	for _, p := range o.Params {
		if p.Dir == Out || p.Dir == InOut {
			ps = append(ps, p)
		}
	}
	return ps
}

// String renders the operation signature in IDL syntax.
func (o *Operation) String() string {
	var b strings.Builder
	if o.Oneway {
		b.WriteString("oneway ")
	}
	fmt.Fprintf(&b, "%s %s(", o.Result, o.Name)
	for i, p := range o.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s %s", p.Dir, p.Type, p.Name)
	}
	b.WriteString(")")
	return b.String()
}

// Attribute is one interface attribute (a get/set pair on the wire).
type Attribute struct {
	Name     string
	Type     *Type
	ReadOnly bool
}

// Interface is one IDL interface.
type Interface struct {
	Name  string // fully qualified
	Base  string // fully qualified base interface, or ""
	Ops   []*Operation
	Attrs []Attribute

	repo *Repository
}

// Op resolves an operation by name, searching the inheritance chain.
func (i *Interface) Op(name string) (*Operation, bool) {
	for _, o := range i.Ops {
		if o.Name == name {
			return o, true
		}
	}
	if i.Base != "" && i.repo != nil {
		if base, ok := i.repo.Interface(i.Base); ok {
			return base.Op(name)
		}
	}
	return nil, false
}

// Attr resolves an attribute by name, searching the inheritance chain.
func (i *Interface) Attr(name string) (*Attribute, bool) {
	for k := range i.Attrs {
		if i.Attrs[k].Name == name {
			return &i.Attrs[k], true
		}
	}
	if i.Base != "" && i.repo != nil {
		if base, ok := i.repo.Interface(i.Base); ok {
			return base.Attr(name)
		}
	}
	return nil, false
}

// AllOps returns the operations of the interface and its ancestors.
func (i *Interface) AllOps() []*Operation {
	var ops []*Operation
	if i.Base != "" && i.repo != nil {
		if base, ok := i.repo.Interface(i.Base); ok {
			ops = append(ops, base.AllOps()...)
		}
	}
	return append(ops, i.Ops...)
}

// Repository holds parsed declarations keyed by fully-qualified name
// ("Module::Name").
type Repository struct {
	types  map[string]*Type
	ifaces map[string]*Interface
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		types:  make(map[string]*Type),
		ifaces: make(map[string]*Interface),
	}
}

// Interface looks up an interface by fully-qualified name.
func (r *Repository) Interface(name string) (*Interface, bool) {
	i, ok := r.ifaces[name]
	return i, ok
}

// Type looks up a declared type by fully-qualified name.
func (r *Repository) Type(name string) (*Type, bool) {
	t, ok := r.types[name]
	return t, ok
}

// Interfaces returns the names of all registered interfaces.
func (r *Repository) Interfaces() []string {
	var out []string
	for n := range r.ifaces {
		out = append(out, n)
	}
	return out
}

// RegisterInterface installs a programmatically-built interface (used by
// infrastructure services like the name service and by GridCCM's derived
// interfaces).
func (r *Repository) RegisterInterface(i *Interface) {
	i.repo = r
	r.ifaces[i.Name] = i
}

// RegisterType installs a programmatically-built named type.
func (r *Repository) RegisterType(name string, t *Type) {
	t.Name = name
	r.types[name] = t
}
