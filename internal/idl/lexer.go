package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokPunct // { } ( ) < > , ; :
	tokScope // ::
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits IDL source into tokens, skipping // and /* */ comments and the
// #pragma/#include lines real IDL files carry.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // preprocessor line: skip to newline
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("idl:%d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			toks = append(toks, token{kind: tokScope, text: "::", line: line})
			i += 2
		case strings.ContainsRune("{}()<>,;:", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		default:
			return nil, fmt.Errorf("idl:%d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
