package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"padico/internal/simnet"
)

// Reserved internal tag space: collectives use negative tags so they can
// never match user receives. Each collective call on a communicator must be
// entered by all ranks in the same order (standard MPI requirement); the
// per-collective base spreads concurrent phases of tree algorithms apart.
const (
	tagBarrier  = -1000
	tagBcast    = -2000
	tagReduce   = -3000
	tagGather   = -4000
	tagScatter  = -5000
	tagAlltoall = -7000
)

// nextColl issues the collective sequence number. Successive collectives
// (possibly with different roots, hence different tree parents) spread
// their reserved tags apart so a fast rank's call N+1 can never match a
// slow rank's pending call N.
func (c *Comm) nextColl() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collSeq++
	return (c.collSeq % 99) * 10
}

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// ceil(log2 n) rounds of paired messages — on the calibrated Myrinet stack
// this measures ~11 µs per round, matching the paper's Figure 8 latencies.
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.Rank()
	seq := c.nextColl()
	rounds := ceilLog2(n)
	for k := 0; k < rounds; k++ {
		dist := 1 << k
		to := (me + dist) % n
		from := (me - dist + n) % n
		sreq := c.Isend2(to, tagBarrier-seq-k, nil)
		if _, _, err := c.recv(from, tagBarrier-seq-k); err != nil {
			return err
		}
		if _, _, err := sreq.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Isend2 is Isend without the user-tag validation, for internal tags.
func (c *Comm) Isend2(dst, tag int, data []byte) *Request {
	r := &Request{w: c.rt.NewWaiter("mpi: isend")}
	c.rt.Go("mpi:isend", func() {
		err := c.send(dst, tag, data)
		r.complete(nil, Status{}, err)
	})
	return r
}

// Bcast distributes root's buffer to every rank along a binomial tree and
// returns the received buffer (root returns data unchanged).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	seq := c.nextColl()
	tag := tagBcast - seq
	// Rotate so the tree is rooted at rank 0.
	vrank := (c.Rank() - root + n) % n
	if vrank != 0 {
		got, _, err := c.recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		data = got
	}
	// Forward to children in the binomial tree.
	for dist := nextPow2(n) / 2; dist >= 1; dist /= 2 {
		if vrank%(2*dist) == 0 {
			child := vrank + dist
			if child < n {
				real := (child + root) % n
				if err := c.send(real, tag, data); err != nil {
					return nil, err
				}
			}
		}
	}
	return data, nil
}

// ReduceFunc combines two buffers element-wise into a new buffer.
type ReduceFunc func(a, b []byte) []byte

// Reduce folds every rank's contribution into root using a binomial tree.
// Non-root ranks return nil.
func (c *Comm) Reduce(root int, data []byte, f ReduceFunc) ([]byte, error) {
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	seq := c.nextColl()
	tag := tagReduce - seq
	vrank := (c.Rank() - root + n) % n
	acc := data
	for dist := 1; dist < n; dist *= 2 {
		if vrank%(2*dist) == 0 {
			child := vrank + dist
			if child < n {
				got, _, err := c.recv((child+root)%n, tag)
				if err != nil {
					return nil, err
				}
				acc = f(acc, got)
			}
		} else {
			parent := vrank - dist
			if err := c.send((parent+root)%n, tag, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(data []byte, f ReduceFunc) ([]byte, error) {
	acc, err := c.Reduce(0, data, f)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, acc)
}

// Gather collects every rank's block at root, ordered by rank. Non-root
// ranks return nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	seq := c.nextColl()
	tag := tagGather - seq
	if c.Rank() != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 0; i < c.Size()-1; i++ {
		got, st, err := c.recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = got
	}
	return out, nil
}

// Scatter distributes blocks[i] from root to rank i and returns this rank's
// block. Only root's blocks argument is consulted.
func (c *Comm) Scatter(root int, blocks [][]byte) ([]byte, error) {
	if c.Rank() == root && len(blocks) != c.Size() {
		return nil, fmt.Errorf("mpi: scatter needs %d blocks, got %d", c.Size(), len(blocks))
	}
	seq := c.nextColl()
	tag := tagScatter - seq
	if c.Rank() == root {
		reqs := make([]*Request, 0, c.Size()-1)
		for i, b := range blocks {
			if i == root {
				continue
			}
			reqs = append(reqs, c.Isend2(i, tag, b))
		}
		if err := WaitAll(reqs...); err != nil {
			return nil, err
		}
		return blocks[root], nil
	}
	got, _, err := c.recv(root, tag)
	return got, err
}

// Allgather collects every rank's block everywhere.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	all, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	flat, lens := flatten(all, c.Size(), c.Rank() == 0)
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	lens, err = c.bcastLens(lens)
	if err != nil {
		return nil, err
	}
	return unflatten(flat, lens), nil
}

func (c *Comm) bcastLens(lens []int) ([]int, error) {
	var enc []byte
	if c.Rank() == 0 {
		enc = make([]byte, 4*len(lens))
		for i, l := range lens {
			binary.BigEndian.PutUint32(enc[4*i:], uint32(l))
		}
	}
	enc, err := c.Bcast(0, enc)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(enc)/4)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint32(enc[4*i:]))
	}
	return out, nil
}

func flatten(blocks [][]byte, n int, isRoot bool) (flat []byte, lens []int) {
	if !isRoot {
		return nil, nil
	}
	lens = make([]int, n)
	for i, b := range blocks {
		lens[i] = len(b)
		flat = append(flat, b...)
	}
	return flat, lens
}

func unflatten(flat []byte, lens []int) [][]byte {
	out := make([][]byte, len(lens))
	off := 0
	for i, l := range lens {
		out[i] = flat[off : off+l]
		off += l
	}
	return out
}

// Alltoall sends blocks[i] to rank i and returns the blocks received from
// every rank (rotation algorithm, correct for any group size).
func (c *Comm) Alltoall(blocks [][]byte) ([][]byte, error) {
	n := c.Size()
	if len(blocks) != n {
		return nil, fmt.Errorf("mpi: alltoall needs %d blocks, got %d", n, len(blocks))
	}
	me := c.Rank()
	seq := c.nextColl()
	out := make([][]byte, n)
	out[me] = blocks[me]
	for step := 1; step < n; step++ {
		to := (me + step) % n
		from := (me - step + n) % n
		tag := tagAlltoall - seq - step
		got, _, err := c.sendrecvInternal(to, tag, blocks[to], from, tag)
		if err != nil {
			return nil, err
		}
		out[from] = got
	}
	return out, nil
}

func (c *Comm) sendrecvInternal(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	sreq := c.Isend2(dst, sendTag, data)
	rdata, st, err := c.recv(src, recvTag)
	if _, _, serr := sreq.Wait(); serr != nil && err == nil {
		err = serr
	}
	return rdata, st, err
}

// Split partitions the communicator: ranks passing the same color form a
// new communicator ordered by (key, rank), built over a fresh circuit.
// Every rank must call Split collectively; ranks passing color < 0 receive
// a nil communicator (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()
	// Allgather (color, key, rank).
	triple := make([]byte, 12)
	binary.BigEndian.PutUint32(triple[0:], uint32(int32(color)))
	binary.BigEndian.PutUint32(triple[4:], uint32(int32(key)))
	binary.BigEndian.PutUint32(triple[8:], uint32(c.Rank()))
	all, err := c.Allgather(triple)
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ color, key, rank int }
	var group []member
	for _, b := range all {
		m := member{
			color: int(int32(binary.BigEndian.Uint32(b[0:]))),
			key:   int(int32(binary.BigEndian.Uint32(b[4:]))),
			rank:  int(int32(binary.BigEndian.Uint32(b[8:]))),
		}
		if m.color == color {
			group = append(group, m)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	nodes := make([]*simnet.Node, len(group))
	self := -1
	for i, m := range group {
		nodes[i] = c.c.Node(m.rank)
		if m.rank == c.Rank() {
			self = i
		}
	}
	name := fmt.Sprintf("%s/split%d/c%d", c.c.Name(), epoch, color)
	return Join(c.arb, name, nodes, self)
}

func ceilLog2(n int) int {
	r := 0
	for p := 1; p < n; p *= 2 {
		r++
	}
	return r
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Float64 element helpers for numeric workloads.

// Float64Bytes encodes a float64 slice.
func Float64Bytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesFloat64 decodes a float64 slice.
func BytesFloat64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// SumFloat64 is a ReduceFunc adding float64 vectors element-wise.
func SumFloat64(a, b []byte) []byte {
	av, bv := BytesFloat64(a), BytesFloat64(b)
	for i := range av {
		av[i] += bv[i]
	}
	return Float64Bytes(av)
}

// MaxFloat64 is a ReduceFunc taking the element-wise maximum.
func MaxFloat64(a, b []byte) []byte {
	av, bv := BytesFloat64(a), BytesFloat64(b)
	for i := range av {
		if bv[i] > av[i] {
			av[i] = bv[i]
		}
	}
	return Float64Bytes(av)
}
