package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// world spins up an n-rank communicator over a Myrinet SAN and runs body on
// every rank concurrently.
func world(t *testing.T, n int, body func(c *Comm)) {
	t.Helper()
	worldOn(t, n, true, body)
}

func worldOn(t *testing.T, n int, san bool, body func(c *Comm)) {
	t.Helper()
	s := vtime.NewSim()
	net := simnet.New(s)
	var nodes []*simnet.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	arb := arbitration.New(net)
	if san {
		if _, err := arb.AddSAN(net.NewMyrinet2000("myri0", nodes)); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := arb.AddSock(net.NewEthernet100("eth0", nodes)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(func() {
		defer arb.Close()
		wg := vtime.NewWaitGroup(s, "ranks")
		for i := 0; i < n; i++ {
			wg.Add(1)
			s.Go(fmt.Sprintf("rank%d", i), func() {
				defer wg.Done()
				c, err := Join(arb, "world", nodes, i)
				if err != nil {
					t.Errorf("join rank %d: %v", i, err)
					return
				}
				defer c.Free()
				body(c)
			})
		}
		_ = wg.Wait()
	})
}

func TestSendRecvBasic(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.Send(1, 42, []byte("payload")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			data, st, err := c.Recv(0, 42)
			if err != nil || string(data) != "payload" {
				t.Errorf("recv = %q, %v", data, err)
			}
			if st.Source != 0 || st.Tag != 42 || st.Len != 7 {
				t.Errorf("status = %+v", st)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	world(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			_ = c.Send(2, 7, []byte("from0"))
		case 1:
			_ = c.Send(2, 8, []byte("from1"))
		case 2:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				data, st, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				seen[st.Source] = true
				want := fmt.Sprintf("from%d", st.Source)
				if string(data) != want {
					t.Errorf("got %q from %d", data, st.Source)
				}
			}
			if !seen[0] || !seen[1] {
				t.Errorf("sources seen: %v", seen)
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag B must not consume an earlier message with tag A.
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			_ = c.Send(1, 1, []byte("first-tag1"))
			_ = c.Send(1, 2, []byte("then-tag2"))
		} else {
			data2, _, err := c.Recv(0, 2)
			if err != nil || string(data2) != "then-tag2" {
				t.Errorf("tag2 = %q, %v", data2, err)
			}
			data1, _, err := c.Recv(0, 1)
			if err != nil || string(data1) != "first-tag1" {
				t.Errorf("tag1 = %q, %v", data1, err)
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	world(t, 2, func(c *Comm) {
		const k = 10
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				_ = c.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				data, _, err := c.Recv(0, 5)
				if err != nil || data[0] != byte(i) {
					t.Errorf("msg %d = %v, %v", i, data, err)
				}
			}
		}
	})
}

func TestNegativeTagsRejected(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.Send(1, -5, nil); err == nil {
				t.Error("negative send tag accepted")
			}
			if _, _, err := c.Recv(1, -5); err == nil {
				t.Error("negative recv tag accepted")
			}
			_ = c.Send(1, 0, nil) // release peer
		} else {
			_, _, _ = c.Recv(0, 0)
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	world(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		r := c.Irecv(peer, 3)
		s := c.Isend(peer, 3, []byte{byte(c.Rank())})
		if err := WaitAll(s); err != nil {
			t.Errorf("isend: %v", err)
		}
		data, st, err := r.Wait()
		if err != nil || data[0] != byte(peer) || st.Source != peer {
			t.Errorf("irecv = %v, %+v, %v", data, st, err)
		}
		if !r.Test() {
			t.Error("Test false after Wait")
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	world(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		out := []byte{byte(c.Rank() + 100)}
		in, _, err := c.Sendrecv(peer, 9, out, peer, 9)
		if err != nil || in[0] != byte(peer+100) {
			t.Errorf("sendrecv = %v, %v", in, err)
		}
	})
}

func TestProbe(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			_ = c.Send(1, 4, []byte("xyz"))
		} else {
			// Wait until it lands.
			for {
				if st, ok := c.Probe(0, 4); ok {
					if st.Len != 3 {
						t.Errorf("probe len = %d", st.Len)
					}
					break
				}
				c.rt.Sleep(time.Microsecond)
			}
			if _, ok := c.Probe(0, 99); ok {
				t.Error("probe matched wrong tag")
			}
			_, _, _ = c.Recv(0, 4)
		}
	})
}

func TestLatencyMatchesPaper(t *testing.T) {
	// §4.4: MPI latency over PadicoTM/Myrinet-2000 is 11 µs (half
	// round-trip of a minimal message).
	world(t, 2, func(c *Comm) {
		const iters = 10
		if c.Rank() == 0 {
			start := c.rt.Now()
			for i := 0; i < iters; i++ {
				_ = c.Send(1, 0, []byte{1})
				_, _, _ = c.Recv(1, 0)
			}
			rt := c.rt.Now().Sub(start)
			half := rt / (2 * iters)
			if half < 10*time.Microsecond || half > 12*time.Microsecond {
				t.Errorf("half round-trip = %v, want ≈11µs", half)
			}
		} else {
			for i := 0; i < iters; i++ {
				_, _, _ = c.Recv(0, 0)
				_ = c.Send(0, 0, []byte{1})
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			world(t, n, func(c *Comm) {
				// Rank r sleeps r*10µs; after the barrier everyone's
				// clock must be at least the slowest rank's time.
				c.rt.Sleep(time.Duration(c.Rank()) * 10 * time.Microsecond)
				if err := c.Barrier(); err != nil {
					t.Errorf("barrier: %v", err)
					return
				}
				slowest := vtime.Time(time.Duration(n-1) * 10 * time.Microsecond)
				if c.rt.Now() < slowest {
					t.Errorf("rank %d left barrier at %v before slowest entered (%v)",
						c.Rank(), c.rt.Now(), slowest)
				}
			})
		})
	}
}

func TestBarrierCostLog2(t *testing.T) {
	// 8 ranks ⇒ 3 dissemination rounds ≈ 3×11 µs on calibrated Myrinet.
	world(t, 8, func(c *Comm) {
		_ = c.Barrier() // warm-up: align all ranks
		start := c.rt.Now()
		if err := c.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
		}
		d := c.rt.Now().Sub(start)
		if d < 30*time.Microsecond || d > 40*time.Microsecond {
			t.Errorf("8-rank barrier took %v, want ≈33µs", d)
		}
	})
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			world(t, n, func(c *Comm) {
				for root := 0; root < n; root++ {
					var buf []byte
					if c.Rank() == root {
						buf = []byte(fmt.Sprintf("root%d", root))
					}
					got, err := c.Bcast(root, buf)
					if err != nil {
						t.Errorf("bcast root %d: %v", root, err)
						return
					}
					if string(got) != fmt.Sprintf("root%d", root) {
						t.Errorf("rank %d bcast(root=%d) = %q", c.Rank(), root, got)
					}
				}
			})
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			world(t, n, func(c *Comm) {
				mine := Float64Bytes([]float64{float64(c.Rank()), 1})
				got, err := c.Reduce(0, mine, SumFloat64)
				if err != nil {
					t.Errorf("reduce: %v", err)
					return
				}
				if c.Rank() == 0 {
					v := BytesFloat64(got)
					wantSum := float64(n*(n-1)) / 2
					if v[0] != wantSum || v[1] != float64(n) {
						t.Errorf("reduce = %v, want [%v %v]", v, wantSum, n)
					}
				} else if got != nil {
					t.Errorf("non-root got %v", got)
				}
			})
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	world(t, 5, func(c *Comm) {
		mine := Float64Bytes([]float64{float64(c.Rank() * 10)})
		got, err := c.Allreduce(mine, MaxFloat64)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if v := BytesFloat64(got); v[0] != 40 {
			t.Errorf("rank %d allreduce max = %v", c.Rank(), v)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	world(t, 4, func(c *Comm) {
		// Gather: root assembles rank-stamped blocks.
		blocks, err := c.Gather(2, []byte{byte(c.Rank())})
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if c.Rank() == 2 {
			for i, b := range blocks {
				if len(b) != 1 || b[0] != byte(i) {
					t.Errorf("gathered[%d] = %v", i, b)
				}
			}
		} else if blocks != nil {
			t.Errorf("non-root gathered %v", blocks)
		}
		// Scatter: root hands rank i its block.
		var out [][]byte
		if c.Rank() == 1 {
			for i := 0; i < 4; i++ {
				out = append(out, []byte{byte(i * 3)})
			}
		}
		got, err := c.Scatter(1, out)
		if err != nil || len(got) != 1 || got[0] != byte(c.Rank()*3) {
			t.Errorf("scatter = %v, %v", got, err)
		}
	})
}

func TestScatterWrongBlockCount(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				t.Error("scatter with 1 block for 2 ranks succeeded")
			}
			// Unblock peer with a real scatter.
			_, _ = c.Scatter(0, [][]byte{{1}, {2}})
		} else {
			if got, err := c.Scatter(0, nil); err != nil || got[0] != 2 {
				t.Errorf("scatter = %v, %v", got, err)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			world(t, n, func(c *Comm) {
				mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1) // ragged
				all, err := c.Allgather(mine)
				if err != nil {
					t.Errorf("allgather: %v", err)
					return
				}
				for i, b := range all {
					if len(b) != i+1 || (len(b) > 0 && b[0] != byte(i)) {
						t.Errorf("rank %d: all[%d] = %v", c.Rank(), i, b)
					}
				}
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			world(t, n, func(c *Comm) {
				blocks := make([][]byte, n)
				for i := range blocks {
					blocks[i] = []byte{byte(c.Rank()), byte(i)}
				}
				got, err := c.Alltoall(blocks)
				if err != nil {
					t.Errorf("alltoall: %v", err)
					return
				}
				for i, b := range got {
					if b[0] != byte(i) || b[1] != byte(c.Rank()) {
						t.Errorf("rank %d: from %d = %v", c.Rank(), i, b)
					}
				}
			})
		})
	}
}

func TestSplitEvenOdd(t *testing.T) {
	world(t, 6, func(c *Comm) {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		defer sub.Free()
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		// The new communicator works: sum the parent ranks.
		mine := Float64Bytes([]float64{float64(c.Rank())})
		got, err := sub.Allreduce(mine, SumFloat64)
		if err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		want := 0.0 + 2 + 4
		if color == 1 {
			want = 1 + 3 + 5
		}
		if v := BytesFloat64(got); v[0] != want {
			t.Errorf("sub sum = %v, want %v", v, want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	world(t, 3, func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if c.Rank() == 2 {
			if sub != nil {
				t.Error("undefined rank got a communicator")
			}
			return
		}
		defer sub.Free()
		if sub.Size() != 2 {
			t.Errorf("sub size = %d", sub.Size())
		}
	})
}

func TestCommOverEthernetCrossParadigm(t *testing.T) {
	worldOn(t, 4, false, func(c *Comm) {
		if c.Mapping() != "cross-paradigm" {
			t.Errorf("mapping = %s", c.Mapping())
		}
		// Semantics are identical over sockets.
		peer := (c.Rank() + 1) % 4
		from := (c.Rank() + 3) % 4
		in, _, err := c.Sendrecv(peer, 1, []byte{byte(c.Rank())}, from, 1)
		if err != nil || in[0] != byte(from) {
			t.Errorf("sendrecv = %v, %v", in, err)
		}
		if err := c.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
		}
	})
}

func TestFreeUnblocksReceivers(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			done := make(chan error, 1)
			c.rt.Go("blocked-recv", func() {
				_, _, err := c.Recv(1, 77)
				done <- err
			})
			c.rt.Sleep(time.Microsecond)
			c.Free()
			if err := <-done; err != ErrClosed {
				t.Errorf("recv after free = %v, want ErrClosed", err)
			}
			if err := c.Send(1, 0, nil); err != ErrClosed {
				t.Errorf("send after free = %v", err)
			}
		}
	})
}

func TestSendBadRank(t *testing.T) {
	world(t, 2, func(c *Comm) {
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("send to rank 5 succeeded")
		}
	})
}

func TestFloat64Roundtrip(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, 3e100, -0.0}
	got := BytesFloat64(Float64Bytes(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("roundtrip[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}
