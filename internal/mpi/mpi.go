// Package mpi is the MPI middleware of the reproduction, standing in for
// the MPICH/Madeleine port the paper runs on PadicoTM (§4.3.4). It is built
// entirely on the Circuit abstract interface, so the same code runs
// straight on the SAN or cross-paradigm over sockets — which is exactly the
// paper's portability claim.
//
// The subset implemented is what the paper's workloads exercise, plus the
// usual core: blocking and nonblocking point-to-point with (source, tag)
// matching and wildcards, and the collectives Barrier (dissemination),
// Bcast/Reduce (binomial trees), Allreduce, Gather, Scatter, Allgather,
// Alltoall, plus communicator Split.
//
// Buffers are passed reference-style (the simulator's zero-copy path, like
// Madeleine's rendezvous mode): a sender must not modify a buffer before
// the matching receive returns it.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"padico/internal/arbitration"
	"padico/internal/circuit"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned on operations against a freed communicator.
var ErrClosed = errors.New("mpi: communicator freed")

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// Comm is an MPI communicator: a group with a private message-matching
// space carried by one circuit.
type Comm struct {
	rt   vtime.Runtime
	arb  *arbitration.Arbiter
	c    *circuit.Circuit
	node *simnet.Node

	mu      sync.Mutex
	store   []*inMsg // unexpected-message queue, arrival order
	waiters []*matcher
	closed  bool
	epoch   int // Split epoch, for circuit naming
	collSeq int // collective sequence, for reserved-tag spreading
}

type inMsg struct {
	src, tag int
	data     []byte
}

type matcher struct {
	src, tag int
	got      *inMsg
	err      error
	w        vtime.Waiter
}

// Join creates this rank's endpoint of communicator name over the members.
// Every member must call Join concurrently (SPMD startup). The world
// communicator of a Padico process group is conventionally named "world".
func Join(arb *arbitration.Arbiter, name string, members []*simnet.Node, self int) (*Comm, error) {
	cir, err := circuit.Open(arb, "mpi:"+name, members, self)
	if err != nil {
		return nil, fmt.Errorf("mpi: %w", err)
	}
	comm := &Comm{rt: arb.Runtime(), arb: arb, c: cir, node: members[self]}
	comm.rt.Go("mpi:pump:"+cir.Name(), comm.pump)
	return comm, nil
}

// Rank returns the calling process's rank in the communicator.
func (c *Comm) Rank() int { return c.c.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.c.Size() }

// Node returns the machine hosting this rank.
func (c *Comm) Node() *simnet.Node { return c.node }

// Mapping reports the circuit mapping in use ("straight"/"cross-paradigm").
func (c *Comm) Mapping() string { return c.c.Mapping() }

// Free releases the communicator. Pending receives fail with ErrClosed.
func (c *Comm) Free() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ws := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	_ = c.c.Close()
	for _, m := range ws {
		m.err = ErrClosed
		m.w.Fire()
	}
}

// pump drains the circuit into the matching engine.
func (c *Comm) pump() {
	for {
		msg, err := c.c.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			ws := c.waiters
			c.waiters = nil
			c.mu.Unlock()
			for _, m := range ws {
				m.err = ErrClosed
				m.w.Fire()
			}
			return
		}
		if len(msg.Header) < 4 {
			continue
		}
		in := &inMsg{
			src:  msg.Src,
			tag:  int(int32(binary.BigEndian.Uint32(msg.Header))),
			data: msg.Payload,
		}
		c.mu.Lock()
		delivered := false
		for i, m := range c.waiters {
			if m.matches(in.src, in.tag) {
				m.got = in
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				c.mu.Unlock()
				m.w.Fire()
				delivered = true
				break
			}
		}
		if !delivered {
			c.store = append(c.store, in)
			c.mu.Unlock()
		}
	}
}

func (m *matcher) matches(src, tag int) bool {
	return (m.src == AnySource || m.src == src) && (m.tag == AnyTag || m.tag == tag)
}

// Send transmits data to dst with the given tag, blocking until the message
// has been delivered to the destination process (synchronous-mode send, the
// behaviour of the rendezvous path the paper's MPI uses for bandwidth).
// User tags must be non-negative; negative tags are reserved for
// collectives.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", dst, c.Size())
	}
	c.node.Charge(simnet.MPICost, len(data))
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(int32(tag)))
	return c.c.Send(dst, hdr[:], data)
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource and AnyTag are accepted.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	if tag < 0 && tag != AnyTag {
		return nil, Status{}, fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]byte, Status, error) {
	c.mu.Lock()
	if c.closed && len(c.store) == 0 {
		c.mu.Unlock()
		return nil, Status{}, ErrClosed
	}
	m := &matcher{src: src, tag: tag}
	for i, in := range c.store {
		if m.matches(in.src, in.tag) {
			c.store = append(c.store[:i], c.store[i+1:]...)
			c.mu.Unlock()
			return in.data, Status{Source: in.src, Tag: in.tag, Len: len(in.data)}, nil
		}
	}
	if c.closed {
		c.mu.Unlock()
		return nil, Status{}, ErrClosed
	}
	m.w = c.rt.NewWaiter(fmt.Sprintf("mpi: recv(src=%d, tag=%d) on rank %d", src, tag, c.Rank()))
	c.waiters = append(c.waiters, m)
	c.mu.Unlock()
	if err := m.w.Wait(); err != nil {
		return nil, Status{}, err
	}
	if m.err != nil {
		return nil, Status{}, m.err
	}
	in := m.got
	return in.data, Status{Source: in.src, Tag: in.tag, Len: len(in.data)}, nil
}

// Probe reports whether a matching message is already queued, without
// receiving it.
func (c *Comm) Probe(src, tag int) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &matcher{src: src, tag: tag}
	for _, in := range c.store {
		if m.matches(in.src, in.tag) {
			return Status{Source: in.src, Tag: in.tag, Len: len(in.data)}, true
		}
	}
	return Status{}, false
}

// Request is a nonblocking operation handle.
type Request struct {
	mu     sync.Mutex
	data   []byte
	status Status
	err    error
	done   bool
	w      vtime.Waiter
}

// Isend starts a nonblocking send. Completion means the message was
// delivered. Two Isends to the same destination may be delivered in either
// order; use Send for strict non-overtaking.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	r := &Request{w: c.rt.NewWaiter("mpi: isend")}
	c.rt.Go("mpi:isend", func() {
		err := c.Send(dst, tag, data)
		r.complete(nil, Status{}, err)
	})
	return r
}

// Irecv starts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{w: c.rt.NewWaiter("mpi: irecv")}
	c.rt.Go("mpi:irecv", func() {
		data, st, err := c.Recv(src, tag)
		r.complete(data, st, err)
	})
	return r
}

func (r *Request) complete(data []byte, st Status, err error) {
	r.mu.Lock()
	r.data, r.status, r.err, r.done = data, st, err, true
	r.mu.Unlock()
	r.w.Fire()
}

// Wait blocks until the operation completes.
func (r *Request) Wait() ([]byte, Status, error) {
	_ = r.w.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data, r.status, r.err
}

// Test polls for completion.
func (r *Request) Test() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// WaitAll waits for every request.
func WaitAll(reqs ...*Request) error {
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Sendrecv performs a combined send and receive (both progress
// concurrently, avoiding the classic exchange deadlock).
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	sreq := c.Isend(dst, sendTag, data)
	rdata, st, err := c.Recv(src, recvTag)
	if _, _, serr := sreq.Wait(); serr != nil && err == nil {
		err = serr
	}
	return rdata, st, err
}
