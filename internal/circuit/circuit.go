// Package circuit implements PadicoTM's parallel-oriented abstract
// interface (§4.3.2): a named group of nodes with logical ranks exchanging
// tagged messages, independent of the underlying hardware.
//
// The mapping onto the arbitration layer is chosen automatically: on a SAN
// covering every member the mapping is *straight* (a multiplexed Madeleine
// port); otherwise it is *cross-paradigm* — a mesh of framed socket streams
// presenting the very same message API, so middleware built on Circuit
// (e.g. MPI) deploys unchanged on LAN/WAN grids.
package circuit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// ErrClosed is returned on operations against a closed circuit.
var ErrClosed = errors.New("circuit: closed")

// Msg is a received circuit message.
type Msg struct {
	Src     int // sender's circuit rank
	Header  []byte
	Payload []byte
}

// Circuit is one process's endpoint in a named group. All members must
// open the circuit (SPMD style); ranks follow the member slice order.
type Circuit struct {
	name    string
	rank    int
	members []*simnet.Node
	be      backend
	mapping string
}

type backend interface {
	send(dst int, hdr, payload []byte) error
	recv() (Msg, error)
	close() error
}

// Open joins the named circuit as members[self], selecting the best device
// that attaches every member. It blocks until the group is connected, so
// every member must call Open concurrently.
func Open(arb *arbitration.Arbiter, name string, members []*simnet.Node, self int) (*Circuit, error) {
	if self < 0 || self >= len(members) {
		return nil, fmt.Errorf("circuit: self %d out of range [0,%d)", self, len(members))
	}
	dev, err := arb.Select(members...)
	if err != nil {
		return nil, fmt.Errorf("circuit %q: %w", name, err)
	}
	return OpenOn(arb, dev, name, members, self)
}

// OpenOn is Open with an explicit device (used by ablation benchmarks and
// tests; normal callers let Open select).
func OpenOn(arb *arbitration.Arbiter, dev *arbitration.Device, name string, members []*simnet.Node, self int) (*Circuit, error) {
	c := &Circuit{name: name, rank: self, members: append([]*simnet.Node(nil), members...)}
	var err error
	if dev.Kind == simnet.SAN {
		c.mapping = "straight"
		c.be, err = newStraight(dev, name, members, self)
	} else {
		c.mapping = "cross-paradigm"
		c.be, err = newCross(arb, dev, name, members, self)
	}
	if err != nil {
		return nil, fmt.Errorf("circuit %q: %w", name, err)
	}
	return c, nil
}

// Name returns the circuit's group name.
func (c *Circuit) Name() string { return c.name }

// Rank returns this member's logical number.
func (c *Circuit) Rank() int { return c.rank }

// Size returns the group size.
func (c *Circuit) Size() int { return len(c.members) }

// Mapping reports "straight" or "cross-paradigm".
func (c *Circuit) Mapping() string { return c.mapping }

// Node returns the machine hosting the given rank.
func (c *Circuit) Node(rank int) *simnet.Node { return c.members[rank] }

// Send transmits a message to the destination rank.
func (c *Circuit) Send(dst int, hdr, payload []byte) error {
	if dst < 0 || dst >= len(c.members) {
		return fmt.Errorf("circuit: dst %d out of range [0,%d)", dst, len(c.members))
	}
	return c.be.send(dst, hdr, payload)
}

// Recv blocks until a message arrives from any rank.
func (c *Circuit) Recv() (Msg, error) { return c.be.recv() }

// Close tears this member's endpoint down.
func (c *Circuit) Close() error { return c.be.close() }

// ---- straight mapping: multiplexed Madeleine port on a SAN ----

type straight struct {
	port      *arbitration.Port
	toDevice  []int       // circuit rank -> device rank
	toCircuit map[int]int // device rank -> circuit rank
	self      *simnet.Node
}

func newStraight(dev *arbitration.Device, name string, members []*simnet.Node, self int) (*straight, error) {
	port, err := dev.OpenPort(members[self], "cir:"+name)
	if err != nil {
		return nil, err
	}
	s := &straight{port: port, toCircuit: make(map[int]int), self: members[self]}
	for cr, nd := range members {
		dr, err := dev.Rank(nd)
		if err != nil {
			port.Close()
			return nil, err
		}
		s.toDevice = append(s.toDevice, dr)
		s.toCircuit[dr] = cr
	}
	return s, nil
}

func (s *straight) send(dst int, hdr, payload []byte) error {
	s.self.Charge(simnet.CircuitCost, len(hdr)+len(payload))
	return s.port.Send(s.toDevice[dst], hdr, payload)
}

func (s *straight) recv() (Msg, error) {
	m, err := s.port.Recv()
	if err != nil {
		return Msg{}, ErrClosed
	}
	cr, ok := s.toCircuit[m.Src]
	if !ok {
		return Msg{}, fmt.Errorf("circuit: message from rank %d outside group", m.Src)
	}
	return Msg{Src: cr, Header: m.Header, Payload: m.Payload}, nil
}

func (s *straight) close() error {
	s.port.Close()
	return nil
}

// ---- cross-paradigm mapping: framed socket mesh on LAN/WAN ----

type cross struct {
	rt    vtime.Runtime
	self  int
	node  *simnet.Node
	conns []sockets.Conn // by peer circuit rank (nil for self)
	in    *vtime.Queue[Msg]
	lst   sockets.Listener
}

// circuitPort derives the rendezvous TCP port for a circuit name. The
// post-dial handshake verifies the name, so an unlucky hash collision is
// detected rather than silently cross-wired.
func circuitPort(name string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return 18000 + int(h.Sum32()%10000)
}

func newCross(arb *arbitration.Arbiter, dev *arbitration.Device, name string, members []*simnet.Node, self int) (*cross, error) {
	prov, err := dev.Provider(members[self])
	if err != nil {
		return nil, err
	}
	c := &cross{
		rt:    arb.Runtime(),
		self:  self,
		node:  members[self],
		conns: make([]sockets.Conn, len(members)),
		in:    vtime.NewQueue[Msg](arb.Runtime(), "circuit: cross recv "+name),
	}
	port := circuitPort(name)
	lst, err := prov.Listen(port)
	if err != nil {
		return nil, err
	}
	c.lst = lst

	// Rendezvous: higher ranks dial lower ranks; every pair gets exactly
	// one stream. Accept the len(members)-1-self inbound connections and
	// dial the self outbound ones concurrently.
	type result struct {
		rank int
		conn sockets.Conn
		err  error
	}
	results := vtime.NewQueue[result](c.rt, "circuit: rendezvous "+name)
	expect := 0
	for peer := range members {
		switch {
		case peer == self:
			continue
		case peer < self: // we dial
			expect++
			c.rt.Go("circuit:dial", func() {
				conn, err := dialPeer(c.rt, prov, members[peer].Name, port, name, self)
				results.Push(result{rank: peer, conn: conn, err: err})
			})
		default: // peer dials us
			expect++
			c.rt.Go("circuit:accept", func() {
				conn, rank, err := acceptPeer(lst, name)
				results.Push(result{rank: rank, conn: conn, err: err})
			})
		}
	}
	for i := 0; i < expect; i++ {
		r, err := results.Pop()
		if err != nil {
			return nil, err
		}
		if r.err != nil {
			return nil, fmt.Errorf("circuit %q rendezvous: %w", name, r.err)
		}
		if r.rank < 0 || r.rank >= len(members) || c.conns[r.rank] != nil {
			return nil, fmt.Errorf("circuit %q: bad peer rank %d in handshake", name, r.rank)
		}
		c.conns[r.rank] = r.conn
	}
	// One reader loop per peer stream.
	for rank, conn := range c.conns {
		if conn == nil {
			continue
		}
		c.rt.Go("circuit:reader", func() { c.readLoop(rank, conn) })
	}
	return c, nil
}

func dialPeer(rt vtime.Runtime, prov sockets.Provider, host string, port int, name string, selfRank int) (sockets.Conn, error) {
	addr := sockets.JoinAddr(host, port)
	var conn sockets.Conn
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		conn, err = prov.Dial(addr)
		if err == nil {
			break
		}
		if !errors.Is(err, sockets.ErrRefused) {
			return nil, err
		}
		rt.Sleep(100 * time.Microsecond) // peer not listening yet
	}
	if err != nil {
		return nil, err
	}
	// Handshake: our rank + circuit name.
	var hs [8]byte
	binary.BigEndian.PutUint32(hs[:4], uint32(selfRank))
	binary.BigEndian.PutUint32(hs[4:], uint32(len(name)))
	if _, err := conn.Write(append(hs[:], name...)); err != nil {
		return nil, err
	}
	return conn, nil
}

func acceptPeer(lst sockets.Listener, name string) (sockets.Conn, int, error) {
	conn, err := lst.Accept()
	if err != nil {
		return nil, -1, err
	}
	var hs [8]byte
	if err := sockets.ReadFull(conn, hs[:]); err != nil {
		return nil, -1, err
	}
	rank := int(binary.BigEndian.Uint32(hs[:4]))
	nameLen := int(binary.BigEndian.Uint32(hs[4:]))
	got := make([]byte, nameLen)
	if err := sockets.ReadFull(conn, got); err != nil {
		return nil, -1, err
	}
	if string(got) != name {
		return nil, -1, fmt.Errorf("circuit rendezvous port collision: peer joined %q", got)
	}
	return conn, rank, nil
}

// frame: [4B header length][4B payload length][header][payload]
func (c *cross) send(dst int, hdr, payload []byte) error {
	c.node.Charge(simnet.CircuitCost, len(hdr)+len(payload))
	if dst == c.self {
		h := append([]byte(nil), hdr...)
		p := append([]byte(nil), payload...)
		c.in.Push(Msg{Src: c.self, Header: h, Payload: p})
		return nil
	}
	conn := c.conns[dst]
	if conn == nil {
		return ErrClosed
	}
	frame := make([]byte, 8+len(hdr)+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(hdr)))
	binary.BigEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[8:], hdr)
	copy(frame[8+len(hdr):], payload)
	_, err := conn.Write(frame)
	return err
}

func (c *cross) readLoop(peer int, conn sockets.Conn) {
	for {
		var lens [8]byte
		if err := sockets.ReadFull(conn, lens[:]); err != nil {
			return // EOF on close
		}
		hl := int(binary.BigEndian.Uint32(lens[:4]))
		pl := int(binary.BigEndian.Uint32(lens[4:8]))
		buf := make([]byte, hl+pl)
		if err := sockets.ReadFull(conn, buf); err != nil {
			return
		}
		c.in.Push(Msg{Src: peer, Header: buf[:hl], Payload: buf[hl:]})
	}
}

func (c *cross) recv() (Msg, error) {
	m, err := c.in.Pop()
	if err != nil {
		return Msg{}, ErrClosed
	}
	return m, nil
}

func (c *cross) close() error {
	c.lst.Close()
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
	c.in.Close()
	return nil
}

var _ io.Closer = (*Circuit)(nil)
